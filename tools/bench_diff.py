#!/usr/bin/env python3
"""Compare two bench_perf JSON dumps for semantic parity.

The dispatch tiers (BITFUSION_DISPATCH=switch|threaded|specialized)
may only differ in *timing*: every semantic field of the interp
section -- mac counts, stats/memory parity, memoization and fusion
flags -- must be identical across runs. CI runs bench_perf once per
tier and feeds the dumps through this script pairwise; a mismatch
means a tier computed something different, which the perf numbers
would happily hide.

Usage: bench_diff.py A.json B.json
Exits 0 when the semantic entries match, 1 with a report otherwise.
Only stdlib is used.
"""

import json
import sys

# Metrics that must be identical across dispatch tiers. Everything
# else (throughputs, speedups, build/wall times) is timing.
SEMANTIC_METRICS = {"macs", "stats_parity", "memoized", "fused"}


def semantic_entries(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "bitfusion-bench-1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    out = {}
    for e in doc.get("entries", []):
        if e.get("section") != "interp":
            continue
        if e.get("metric") not in SEMANTIC_METRICS:
            continue
        out[(e["name"], e["metric"])] = e["value"]
    if not out:
        sys.exit(f"{path}: no semantic interp entries found")
    return out


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__.strip().splitlines()[-3].strip())
    a_path, b_path = argv[1], argv[2]
    a = semantic_entries(a_path)
    b = semantic_entries(b_path)

    problems = []
    for key in sorted(set(a) | set(b)):
        name, metric = key
        if key not in a:
            problems.append(f"{name}.{metric}: only in {b_path}")
        elif key not in b:
            problems.append(f"{name}.{metric}: only in {a_path}")
        elif a[key] != b[key]:
            problems.append(
                f"{name}.{metric}: {a[key]} ({a_path}) != "
                f"{b[key]} ({b_path})"
            )

    if problems:
        print(f"bench_diff: {a_path} vs {b_path} diverged:")
        for p in problems:
            print(f"  {p}")
        return 1
    print(
        f"bench_diff: {a_path} and {b_path} agree on "
        f"{len(a)} semantic entries"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
