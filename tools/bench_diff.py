#!/usr/bin/env python3
"""Compare two bench JSON dumps for semantic parity.

Two kinds of dumps ride the bitfusion-bench-1 schema:

- bench_perf interp/sweep dumps. The dispatch tiers
  (BITFUSION_DISPATCH=switch|threaded|specialized) may only differ
  in *timing*: every semantic field of the interp section -- mac
  counts, stats/memory parity, memoization and fusion flags -- must
  be identical across runs. CI runs bench_perf once per tier and
  feeds the dumps through this script pairwise.
- bench_serve_scale serve/serve_scale dumps. The serving engine's
  virtual-clock results (served/shed/miss counts, p99 latency,
  energy) are deterministic for a fixed seed on any machine, so CI
  regenerates the dump and diffs it against the committed BENCH
  trajectory file.

Wall-clock entries (wall_ms, wall_ns_per_req, throughputs, build
times) are timing and never compared. A semantic mismatch means a
run computed something different, which the perf numbers would
happily hide.

Usage: bench_diff.py A.json B.json
Exits 0 when the semantic entries match, 1 with a report otherwise.
Only stdlib is used.
"""

import json
import sys

# Semantic (must-match) metrics per section. Everything else
# (throughputs, speedups, build/wall times) is timing.
SEMANTIC_METRICS = {
    "interp": {"macs", "stats_parity", "memoized", "fused"},
    "serve": {
        "requests",
        "samples",
        "batches",
        "shed",
        "misses",
        "p99_us",
        "energy_j",
    },
    "serve_scale": {
        "requests",
        "shed",
        "misses",
        "p99_us",
        "energy_j",
    },
    # Persistent artifact store (bench_perf): what was resolved and
    # that the warm passes never compiled/lowered; the wall times and
    # speedups around them are timing.
    "store": {
        "artifacts",
        "cold_compiles",
        "warm_compiles",
        "plan_blocks",
        "warm_plan_builds",
        "store_ok",
    },
}


def semantic_entries(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "bitfusion-bench-1":
        sys.exit(f"{path}: unexpected schema {doc.get('schema')!r}")
    out = {}
    for e in doc.get("entries", []):
        metrics = SEMANTIC_METRICS.get(e.get("section"))
        if metrics is None or e.get("metric") not in metrics:
            continue
        out[(e.get("section"), e["name"], e["metric"])] = e["value"]
    if not out:
        sys.exit(f"{path}: no semantic entries found")
    return out


def main(argv):
    if len(argv) != 3:
        sys.exit("usage: bench_diff.py A.json B.json")
    a_path, b_path = argv[1], argv[2]
    a = semantic_entries(a_path)
    b = semantic_entries(b_path)

    problems = []
    for key in sorted(set(a) | set(b)):
        section, name, metric = key
        label = f"{section}.{name}.{metric}"
        if key not in a:
            problems.append(f"{label}: only in {b_path}")
        elif key not in b:
            problems.append(f"{label}: only in {a_path}")
        elif a[key] != b[key]:
            problems.append(
                f"{label}: {a[key]} ({a_path}) != "
                f"{b[key]} ({b_path})"
            )

    if problems:
        print(f"bench_diff: {a_path} vs {b_path} diverged:")
        for p in problems:
            print(f"  {p}")
        return 1
    print(
        f"bench_diff: {a_path} and {b_path} agree on "
        f"{len(a)} semantic entries"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
