/**
 * @file
 * bitfusion_serve: drive the dynamic-batching serving layer.
 *
 *   bitfusion_serve --platform bitfusion --timing overlap
 *   bitfusion_serve --requests 1000 --seed 7 --mean-gap-us 1500
 *                   --max-wait-us 500 --deadline-us 20000
 *   bitfusion_serve --replicas 4 --scheduler edf --deadline-us 20000
 *   bitfusion_serve --fleet bitfusion,bitfusion:16nm,eyeriss
 *   bitfusion_serve --trace trace.txt --json report.json
 *   bitfusion_serve --closed-loop 8 --requests 512
 *
 * Default mode is a seeded synthetic open-loop trace (Poisson
 * arrivals over the eight paper benchmarks); --trace serves a trace
 * file instead (see docs/serving.md for the format), and
 * --closed-loop N runs N always-outstanding clients. --replicas R
 * serves the platform on R identical replicas, --fleet lists a
 * heterogeneous fleet, and --scheduler picks the dispatch policy.
 * Output is byte-identical for a fixed seed/trace regardless of
 * --threads.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/logging.h"
#include "src/core/artifact_cache.h"
#include "src/core/artifact_store.h"
#include "src/serve/scheduler.h"
#include "src/serve/serving_engine.h"

namespace {

using namespace bitfusion;
using namespace bitfusion::serve;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--platform KIND[:VARIANT]] [--timing simple|overlap]\n"
        "  fleet: [--replicas R] [--fleet KIND[:VARIANT],...]\n"
        "      [--scheduler %s] [--slo-us B]\n"
        "  open loop (default): [--requests N] [--seed S]\n"
        "      [--mean-gap-us G] [--req-samples MAX] [--deadline-us D]\n"
        "      [--networks A,B,...] [--trace PATH] [--dump-trace PATH]\n"
        "  arrivals: [--arrival poisson|mmpp] [--mmpp-burst-x M]\n"
        "      [--mmpp-burst-us T] [--mmpp-calm-us T]\n"
        "      [--diurnal-period-us P --diurnal-amplitude A]\n"
        "      [--flash-at-us T --flash-for-us T --flash-x M]\n"
        "  closed loop: --closed-loop CLIENTS [--requests N]\n"
        "      [--samples PER_REQUEST] [--seed S] [--deadline-us D]\n"
        "      [--networks A,B,...]\n"
        "  batching: [--max-batch B] [--max-wait-us W]\n"
        "      [--switch-penalty-us P]\n"
        "  admission: [--max-queue-depth N] [--shed-unmeetable]\n"
        "  faults: [--fail-replica ID@T[:for=D]]...\n"
        "      [--fail-rack ID@T[:for=D]]... [--rack-size N]\n"
        "      [--mtbf-us M --mttr-us R] [--fault-seed S]\n"
        "  retries: [--retry-max N] [--retry-backoff-us B]\n"
        "      [--retry-jitter F] [--retry-budget N]\n"
        "      [--hedge-us D | --hedge-p99-x M]\n"
        "  output: [--json PATH] [--per-request] [--threads N]\n"
        "      [--store DIR] [--store-max-bytes N]\n"
        "      [--streaming-stats] [--active-window]\n"
        "  registries: [--list-platforms] [--list-schedulers]\n",
        argv0, schedulerNames().c_str());
    return 2;
}

/** One line per registered platform kind: kind, variants, help. */
void
printPlatforms()
{
    std::printf("platforms (--platform / --fleet KIND[:VARIANT]):\n");
    for (const auto &entry : PlatformRegistry::builtin().entries()) {
        std::printf("  %-11s %-40s %s\n", entry.kind.c_str(),
                    entry.variants.c_str(), entry.help.c_str());
    }
}

/** One line per registered scheduler: name and help. */
void
printSchedulers()
{
    std::printf("schedulers (--scheduler NAME):\n");
    for (const auto &entry : SchedulerRegistry::builtin().entries()) {
        std::printf("  %-11s %s\n", entry.name.c_str(),
                    entry.help.c_str());
    }
}

std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::istringstream in(csv);
    std::string item;
    while (std::getline(in, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

void
printPercentiles(const char *label, const Percentiles &p)
{
    std::printf("%s p50 %10.1f   p95 %10.1f   p99 %10.1f   "
                "mean %10.1f   max %10.1f\n",
                label, p.p50, p.p95, p.p99, p.mean, p.max);
}

void
printReport(const ServeReport &report)
{
    if (report.fleetReport()) {
        std::printf("=== Serving %s (%s, scheduler=%s, timing=%s, "
                    "max batch %u, window %.0f us) ===\n\n",
                    report.platform.c_str(), report.mode.c_str(),
                    report.scheduler.c_str(), toString(report.timing),
                    report.maxBatch, report.maxWaitUs);
    } else {
        std::printf("=== Serving %s (%s, timing=%s, max batch %u"
                    ", window %.0f us) ===\n\n",
                    report.platform.c_str(), report.mode.c_str(),
                    toString(report.timing), report.maxBatch,
                    report.maxWaitUs);
    }
    std::printf("requests: %zu (%llu samples) in %.1f ms of virtual "
                "time\n",
                report.requestCount,
                static_cast<unsigned long long>(report.totalSamples),
                report.makespanUs / 1000.0);
    std::printf("batches:  %zu dispatched, mean fill %.1f%%, %zu "
                "distinct (network, batch) shapes\n",
                report.batchCount, 100.0 * report.batchFill(),
                report.distinctBatchShapes);
    std::printf("throughput: %.1f requests/s, %.1f samples/s%s\n\n",
                report.requestsPerSec(), report.samplesPerSec(),
                report.activeWindow ? " (active window)" : "");
    printPercentiles(report.streamingStats ? "latency (us)*"
                                           : "latency (us):",
                     report.latencyUs());
    printPercentiles(report.streamingStats ? "queue   (us)*"
                                           : "queue   (us):",
                     report.queueUs());
    if (report.streamingStats)
        std::printf("  (* p50/p95/p99 are streaming P2 estimates)\n");
    std::printf("\ndeadline misses: %zu\n", report.deadlineMisses);
    if (report.admissionControl) {
        std::printf("shed: %zu (%zu by queue depth, %zu by "
                    "unmeetable deadline)\n",
                    report.shedRequests, report.shedByDepth,
                    report.shedByDeadline);
        if (report.faultReport)
            std::printf("  (%zu shed while the fleet was degraded)\n",
                        report.shedDegraded);
    }
    if (report.switchReport) {
        std::printf("network switches: %zu (%.1f us reload penalty "
                    "total)\n",
                    report.networkSwitches,
                    report.switchPenaltyTotalUs);
    }
    if (report.faultReport) {
        std::printf("\navailability: fleet %.2f%%, goodput %.2f%% "
                    "(%zu issued, %zu served, %zu shed, %zu "
                    "abandoned)\n",
                    100.0 * report.fleetAvailability(),
                    100.0 * report.goodput(), report.requestsIssued,
                    report.requestCount, report.shedRequests,
                    report.requestsAbandoned);
        std::printf("faults: %zu batches lost, %zu request losses, "
                    "%zu recovered, %zu retries issued\n",
                    report.lostBatches, report.requestLossEvents,
                    report.requestsRecovered, report.retriesIssued);
        if (report.hedgesIssued > 0) {
            std::printf("hedges: %zu issued, %zu won, %zu cancelled, "
                        "%zu lost\n",
                        report.hedgesIssued, report.hedgesWon,
                        report.hedgesCancelled, report.hedgesLost);
        }
        if (report.lastRecoveryUs > 0.0) {
            std::printf("recovery: last at %.1f ms, drained %.1f ms "
                        "later\n",
                        report.lastRecoveryUs / 1000.0,
                        report.drainAfterRecoveryUs / 1000.0);
        }
    }
    if (report.fleetReport() || report.faultReport) {
        std::printf("replicas:\n");
        for (std::size_t r = 0; r < report.replicas.size(); ++r) {
            const ReplicaUsage &usage = report.replicas[r];
            std::printf("  [%zu] %-34s %5zu batches  %6llu samples  "
                        "util %5.1f%%",
                        r, usage.platform.c_str(), usage.batches,
                        static_cast<unsigned long long>(usage.samples),
                        100.0 * usage.utilization);
            if (usage.energyJ > 0.0)
                std::printf("  %.4f J", usage.energyJ);
            if (report.faultReport) {
                std::printf("  down %.1f us  lost %zu  wasted %.1f us",
                            usage.downUs, usage.lostBatches,
                            usage.wastedUs);
            }
            std::printf("\n");
        }
    }
    if (report.energyJ > 0.0) {
        std::printf("energy: %.4f J (%.2f uJ/sample)\n", report.energyJ,
                    1e6 * report.energyJ /
                        static_cast<double>(report.totalSamples));
    } else {
        std::printf("energy: - (platform models time only)\n");
    }
    std::printf("artifact cache: %zu compiles, %zu hits\n",
                report.compiles, report.cacheHits);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string platformToken = "bitfusion";
    std::string fleetTokens;
    std::string tracePath, dumpTracePath, jsonPath;
    TraceSpec traceSpec;
    ClosedLoopSpec closedSpec;
    ServeOptions options;
    bool closedLoop = false;
    bool perRequest = false;
    std::uint64_t storeMaxBytes = 0;
    bool platformGiven = false;
    bool fleetGiven = false;
    bool replicasGiven = false;
    std::string openOnlyFlag, closedOnlyFlag, generatorFlag;
    std::string mmppKnob, flashKnob;

    // Time-valued flags accept fractions; counts and seeds must be
    // exact integers (a seed routed through a double would silently
    // round above 2^53).
    const auto numArg = [&](int &i, const char *flag) {
        return cli::doubleArg(argc, argv, i, flag);
    };
    const auto intArg = [&](int &i, const char *flag) {
        return cli::uintArg(argc, argv, i, flag);
    };
    // Flags stored in 32-bit fields reject what a cast would truncate.
    const auto int32Arg = [&](int &i, const char *flag) {
        return static_cast<unsigned>(
            cli::uintArg(argc, argv, i, flag, UINT32_MAX));
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--platform" && i + 1 < argc) {
            platformToken = argv[++i];
            platformGiven = true;
        } else if (arg == "--fleet" && i + 1 < argc) {
            fleetTokens = argv[++i];
            fleetGiven = true;
        } else if (arg == "--replicas") {
            options.replicas = int32Arg(i, "--replicas");
            replicasGiven = true;
        } else if (arg == "--scheduler" && i + 1 < argc) {
            options.scheduler = argv[++i];
        } else if (arg == "--slo-us") {
            options.sloBudgetUs = numArg(i, "--slo-us");
        } else if (arg == "--timing") {
            options.timing = timingArg(argc, argv, i);
        } else if (arg == "--threads") {
            options.threads = int32Arg(i, "--threads");
        } else if (arg == "--requests") {
            traceSpec.requests =
                static_cast<std::size_t>(intArg(i, "--requests"));
            closedSpec.requests = traceSpec.requests;
            generatorFlag = arg;
        } else if (arg == "--seed") {
            traceSpec.seed = intArg(i, "--seed");
            closedSpec.seed = traceSpec.seed;
            generatorFlag = arg;
        } else if (arg == "--mean-gap-us") {
            traceSpec.meanGapUs = numArg(i, "--mean-gap-us");
            openOnlyFlag = arg;
            generatorFlag = arg;
        } else if (arg == "--req-samples") {
            traceSpec.maxSamples = int32Arg(i, "--req-samples");
            openOnlyFlag = arg;
            generatorFlag = arg;
        } else if (arg == "--deadline-us") {
            traceSpec.deadlineSlackUs = numArg(i, "--deadline-us");
            closedSpec.deadlineSlackUs = traceSpec.deadlineSlackUs;
            generatorFlag = arg;
        } else if (arg == "--networks" && i + 1 < argc) {
            traceSpec.networks = splitList(argv[++i]);
            closedSpec.networks = traceSpec.networks;
            generatorFlag = arg;
        } else if (arg == "--arrival" && i + 1 < argc) {
            const std::string process = argv[++i];
            if (process == "poisson") {
                traceSpec.process = ArrivalProcess::Poisson;
            } else if (process == "mmpp") {
                traceSpec.process = ArrivalProcess::Mmpp;
            } else {
                std::fprintf(stderr,
                             "--arrival must be poisson or mmpp, "
                             "got '%s'\n",
                             process.c_str());
                return 2;
            }
            openOnlyFlag = arg;
            generatorFlag = arg;
        } else if (arg == "--mmpp-burst-x") {
            traceSpec.burstRateMultiplier = numArg(i, "--mmpp-burst-x");
            mmppKnob = arg;
            openOnlyFlag = arg;
            generatorFlag = arg;
        } else if (arg == "--mmpp-burst-us") {
            traceSpec.meanBurstUs = numArg(i, "--mmpp-burst-us");
            mmppKnob = arg;
            openOnlyFlag = arg;
            generatorFlag = arg;
        } else if (arg == "--mmpp-calm-us") {
            traceSpec.meanCalmUs = numArg(i, "--mmpp-calm-us");
            mmppKnob = arg;
            openOnlyFlag = arg;
            generatorFlag = arg;
        } else if (arg == "--diurnal-period-us") {
            traceSpec.diurnalPeriodUs =
                numArg(i, "--diurnal-period-us");
            openOnlyFlag = arg;
            generatorFlag = arg;
        } else if (arg == "--diurnal-amplitude") {
            traceSpec.diurnalAmplitude =
                numArg(i, "--diurnal-amplitude");
            openOnlyFlag = arg;
            generatorFlag = arg;
        } else if (arg == "--flash-at-us") {
            traceSpec.flashStartUs = numArg(i, "--flash-at-us");
            flashKnob = arg;
            openOnlyFlag = arg;
            generatorFlag = arg;
        } else if (arg == "--flash-for-us") {
            traceSpec.flashDurationUs = numArg(i, "--flash-for-us");
            flashKnob = arg;
            openOnlyFlag = arg;
            generatorFlag = arg;
        } else if (arg == "--flash-x") {
            traceSpec.flashMultiplier = numArg(i, "--flash-x");
            flashKnob = arg;
            openOnlyFlag = arg;
            generatorFlag = arg;
        } else if (arg == "--max-queue-depth") {
            options.maxQueueDepth =
                static_cast<std::size_t>(intArg(i, "--max-queue-depth"));
            openOnlyFlag = arg;
        } else if (arg == "--shed-unmeetable") {
            options.shedUnmeetable = true;
        } else if (arg == "--streaming-stats") {
            options.streamingStats = true;
        } else if (arg == "--active-window") {
            options.activeWindowStats = true;
        } else if (arg == "--max-batch") {
            options.maxBatch = int32Arg(i, "--max-batch");
        } else if (arg == "--max-wait-us") {
            options.maxWaitUs = numArg(i, "--max-wait-us");
        } else if (arg == "--switch-penalty-us") {
            options.switchPenaltyUs = numArg(i, "--switch-penalty-us");
        } else if (arg == "--fail-replica" && i + 1 < argc) {
            options.faults.replicaEvents.push_back(
                parseFaultEvent(argv[++i], "--fail-replica"));
        } else if (arg == "--fail-rack" && i + 1 < argc) {
            options.faults.rackEvents.push_back(
                parseFaultEvent(argv[++i], "--fail-rack"));
        } else if (arg == "--rack-size") {
            options.faults.rackSize =
                static_cast<std::size_t>(intArg(i, "--rack-size"));
        } else if (arg == "--mtbf-us") {
            options.faults.mtbfUs = numArg(i, "--mtbf-us");
        } else if (arg == "--mttr-us") {
            options.faults.mttrUs = numArg(i, "--mttr-us");
        } else if (arg == "--fault-seed") {
            options.faults.seed = intArg(i, "--fault-seed");
        } else if (arg == "--retry-max") {
            options.retry.maxAttempts = int32Arg(i, "--retry-max");
        } else if (arg == "--retry-backoff-us") {
            options.retry.backoffBaseUs =
                numArg(i, "--retry-backoff-us");
        } else if (arg == "--retry-jitter") {
            options.retry.jitterFrac = numArg(i, "--retry-jitter");
        } else if (arg == "--retry-budget") {
            options.retry.retryBudget =
                static_cast<std::size_t>(intArg(i, "--retry-budget"));
        } else if (arg == "--hedge-us") {
            options.retry.hedgeDelayUs = numArg(i, "--hedge-us");
        } else if (arg == "--hedge-p99-x") {
            options.retry.hedgeP99Multiplier =
                numArg(i, "--hedge-p99-x");
        } else if (arg == "--closed-loop") {
            closedLoop = true;
            closedSpec.clients = int32Arg(i, "--closed-loop");
        } else if (arg == "--samples") {
            closedSpec.samples = int32Arg(i, "--samples");
            closedOnlyFlag = arg;
        } else if (arg == "--trace" && i + 1 < argc) {
            tracePath = argv[++i];
            openOnlyFlag = arg;
        } else if (arg == "--dump-trace" && i + 1 < argc) {
            dumpTracePath = argv[++i];
            openOnlyFlag = arg;
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (arg == "--store" && i + 1 < argc) {
            ArtifactStore::setProcessRoot(argv[++i]);
        } else if (arg == "--store-max-bytes") {
            storeMaxBytes =
                static_cast<std::uint64_t>(intArg(i, "--store-max-bytes"));
        } else if (arg == "--per-request") {
            perRequest = true;
        } else if (arg == "--list-platforms") {
            printPlatforms();
            return 0;
        } else if (arg == "--list-schedulers") {
            printSchedulers();
            return 0;
        } else {
            return usage(argv[0]);
        }
    }
    // A flag that only affects the other mode would be silently
    // ignored; reject it so nobody benchmarks the wrong workload.
    if (closedLoop && !openOnlyFlag.empty()) {
        std::fprintf(stderr, "%s only applies to open-loop mode\n",
                     openOnlyFlag.c_str());
        return 2;
    }
    if (!closedLoop && !closedOnlyFlag.empty()) {
        std::fprintf(stderr,
                     "%s only applies to --closed-loop mode\n",
                     closedOnlyFlag.c_str());
        return 2;
    }
    // A trace file fixes the workload; request-generator flags would
    // be silently overridden by it.
    if (!tracePath.empty() && !generatorFlag.empty()) {
        std::fprintf(stderr,
                     "%s configures the synthetic generator and has "
                     "no effect with --trace\n",
                     generatorFlag.c_str());
        return 2;
    }
    // A fleet list names every replica itself.
    if (fleetGiven && platformGiven) {
        std::fprintf(stderr,
                     "--fleet lists every replica; it conflicts with "
                     "--platform\n");
        return 2;
    }
    if (fleetGiven && replicasGiven) {
        std::fprintf(stderr,
                     "--fleet lists every replica; it conflicts with "
                     "--replicas\n");
        return 2;
    }
    if (options.replicas == 0) {
        std::fprintf(stderr, "--replicas must be at least 1\n");
        return 2;
    }
    // Burst-process knobs that the selected process would silently
    // ignore are rejected the same way mode-mismatched flags are.
    if (!mmppKnob.empty() &&
        traceSpec.process != ArrivalProcess::Mmpp) {
        std::fprintf(stderr, "%s only applies with --arrival mmpp\n",
                     mmppKnob.c_str());
        return 2;
    }
    if ((traceSpec.diurnalPeriodUs > 0.0) !=
        (traceSpec.diurnalAmplitude > 0.0)) {
        std::fprintf(stderr,
                     "the diurnal envelope needs both "
                     "--diurnal-period-us and --diurnal-amplitude\n");
        return 2;
    }
    if (!flashKnob.empty() && traceSpec.flashDurationUs <= 0.0) {
        std::fprintf(stderr,
                     "the flash crowd needs a positive window "
                     "(--flash-for-us)\n");
        return 2;
    }
    if (traceSpec.flashDurationUs > 0.0 &&
        traceSpec.flashMultiplier <= 1.0) {
        std::fprintf(stderr,
                     "the flash crowd needs a multiplier above 1 "
                     "(--flash-x)\n");
        return 2;
    }
    // Mis-paired scheduler knobs would silently change the policy
    // under the benchmark; fail fast instead.
    if (options.scheduler == "slo" && options.sloBudgetUs <= 0.0) {
        std::fprintf(stderr,
                     "--scheduler slo needs a latency budget "
                     "(--slo-us B)\n");
        return 2;
    }
    if (options.scheduler != "slo" && options.sloBudgetUs > 0.0) {
        std::fprintf(stderr,
                     "--slo-us only applies to --scheduler slo\n");
        return 2;
    }
    if (options.scheduler == "lookahead" && options.maxWaitUs <= 0.0) {
        std::fprintf(stderr,
                     "--scheduler lookahead needs a starvation bound "
                     "(--max-wait-us W)\n");
        return 2;
    }
    if ((options.scheduler == "edf" || options.scheduler == "slo") &&
        options.maxWaitUs > 0.0) {
        std::fprintf(stderr,
                     "--max-wait-us only applies to the fifo and "
                     "lookahead schedulers (%s never idles on a "
                     "timer)\n",
                     options.scheduler.c_str());
        return 2;
    }

    // The GC budget trims the store after the run; without a store
    // it would silently do nothing.
    if (storeMaxBytes > 0 && ArtifactStore::process() == nullptr) {
        std::fprintf(stderr,
                     "--store-max-bytes needs a store (--store DIR "
                     "or BITFUSION_STORE)\n");
        return 2;
    }

    // Per-request records exist to be dumped; holding them for a
    // million-request run nobody asked to inspect wastes O(requests)
    // memory, so retention follows --per-request.
    options.retainRecords = perRequest;

    std::vector<PlatformSpec> fleet;
    if (fleetGiven) {
        fleet = PlatformRegistry::builtin().parseFleet(fleetTokens);
    } else {
        fleet.push_back(PlatformRegistry::builtin().parse(platformToken));
    }
    ServingEngine engine(std::move(fleet), options);

    // Request sizes are bounded by the coalescing cap; both are
    // known from the flags, so fail before any work happens.
    const unsigned cap = engine.maxBatch();
    const unsigned perRequestSamples =
        closedLoop ? closedSpec.samples
                   : (tracePath.empty() ? traceSpec.maxSamples : 0);
    if (perRequestSamples > cap) {
        std::fprintf(stderr,
                     "%s %u exceeds the max batch of %u samples "
                     "(--max-batch or the platform batch)\n",
                     closedLoop ? "--samples" : "--req-samples",
                     perRequestSamples, cap);
        return 2;
    }

    ServeReport report;
    if (closedLoop) {
        report = engine.runClosedLoop(closedSpec);
    } else {
        std::vector<InferenceRequest> trace;
        if (!tracePath.empty()) {
            std::ifstream in(tracePath);
            if (!in)
                BF_FATAL("cannot read trace '", tracePath, "'");
            std::stringstream text;
            text << in.rdbuf();
            trace = parseTrace(text.str(), tracePath);
        } else {
            trace = syntheticTrace(traceSpec);
        }
        if (!dumpTracePath.empty()) {
            std::ofstream out(dumpTracePath);
            if (!out)
                BF_FATAL("cannot write trace to '", dumpTracePath, "'");
            out << formatTrace(trace);
        }
        report = engine.run(trace);
    }

    printReport(report);
    if (!jsonPath.empty()) {
        std::ofstream out(jsonPath);
        if (!out)
            BF_FATAL("cannot write JSON to '", jsonPath, "'");
        out << report.json(perRequest) << "\n";
    }
    if (const ArtifactStore *store = ArtifactStore::process()) {
        // stderr so cold and warm runs keep identical stdout/JSON.
        const auto st = store->stats();
        std::fprintf(stderr,
                     "store %s: %zu loads, %zu publishes, %zu misses, "
                     "%zu corrupt; compiles this process: %zu, "
                     "plan builds: %zu\n",
                     store->root().c_str(), st.hits, st.publishes,
                     st.misses, st.corrupt,
                     ArtifactCache::process().compileCount(),
                     ArtifactCache::process().planCount());
        if (storeMaxBytes > 0) {
            // Trim after this run's publishes so the store caps at
            // the budget between invocations.
            const auto gc = store->gc(storeMaxBytes);
            std::fprintf(stderr,
                         "store gc: %zu records evicted (%llu bytes) "
                         "to fit %llu bytes\n",
                         gc.evicted,
                         static_cast<unsigned long long>(
                             gc.evictedBytes),
                         static_cast<unsigned long long>(
                             storeMaxBytes));
        }
    }
    return 0;
}
