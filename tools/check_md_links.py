#!/usr/bin/env python3
"""Check that relative markdown links resolve.

Usage: check_md_links.py FILE.md [FILE.md ...]

For every inline markdown link [text](target) in the given files:
  - external links (scheme://, mailto:) are skipped;
  - relative file targets must exist on disk (resolved against the
    linking file's directory);
  - fragments must point at a heading that exists in the target file
    (GitHub-style slugs: lowercase, punctuation stripped, spaces to
    dashes), including pure in-page '#fragment' links.

Exits non-zero listing every broken link. Stdlib only.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")


def slugify(heading: str) -> str:
    heading = heading.strip().lower()
    # Drop inline code/emphasis markers, then punctuation.
    heading = re.sub(r"[`*_]", "", heading)
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def headings(path: Path) -> set:
    slugs = set()
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence and line.startswith("#"):
            slugs.add(slugify(line.lstrip("#")))
    return slugs


def check(path: Path) -> list:
    errors = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK.finditer(line):
            target = match.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):
                continue  # external (https:, mailto:, ...)
            file_part, _, fragment = target.partition("#")
            dest = (path.parent / file_part).resolve() if file_part \
                else path.resolve()
            if not dest.exists():
                errors.append(f"{path}:{lineno}: broken link "
                              f"'{target}' (no such file)")
                continue
            if fragment and dest.suffix == ".md":
                if fragment not in headings(dest):
                    errors.append(f"{path}:{lineno}: broken anchor "
                                  f"'{target}' (no such heading)")
    return errors


def main(argv: list) -> int:
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            errors.append(f"{name}: no such file")
            continue
        errors.extend(check(path))
    for error in errors:
        print(error, file=sys.stderr)
    if not errors:
        print(f"checked {len(argv) - 1} file(s): all links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
