/**
 * @file
 * bitfusion_store_gc: bound a persistent artifact store's disk use.
 *
 *   bitfusion_store_gc --store DIR --max-bytes N [--dry-run]
 *
 * Evicts valid records, oldest first, until the store fits in
 * --max-bytes. Only files that parse as complete, checksummed
 * records filed under their own key are candidates: in-flight
 * "*.tmp" publishes, foreign files, and corrupt records are never
 * deleted (see ArtifactStore::gc). --dry-run ranks and reports
 * without removing anything. Exit status 0 on any completed pass.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "src/common/cli.h"
#include "src/core/artifact_store.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --store DIR --max-bytes N [--dry-run]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root;
    std::uint64_t maxBytes = 0;
    bool maxBytesGiven = false;
    bool dryRun = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--store" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--max-bytes") {
            maxBytes = bitfusion::cli::uintArg(argc, argv, i,
                                               "--max-bytes");
            maxBytesGiven = true;
        } else if (arg == "--dry-run") {
            dryRun = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (root.empty() || !maxBytesGiven)
        return usage(argv[0]);

    const bitfusion::ArtifactStore store(root);
    const auto result = store.gc(maxBytes, dryRun);
    std::printf("store %s: %zu records (%llu bytes), %s%zu evicted "
                "(%llu bytes), %zu retained (%llu bytes), %zu "
                "skipped\n",
                store.root().c_str(), result.scanned,
                static_cast<unsigned long long>(result.retainedBytes +
                                                result.evictedBytes),
                dryRun ? "would be " : "", result.evicted,
                static_cast<unsigned long long>(result.evictedBytes),
                result.retained,
                static_cast<unsigned long long>(result.retainedBytes),
                result.skipped);
    return 0;
}
