/**
 * @file
 * bitfusion_sweep: reproduce any paper figure from one binary.
 *
 *   bitfusion_sweep --list
 *   bitfusion_sweep --figure fig13 [--threads N] [--json PATH]
 *                   [--per-layer]
 *   bitfusion_sweep --all [--threads N]
 *
 * Figures run on the parallel sweep engine; output is the same
 * ASCII table the matching bench binary prints, plus optional
 * machine-readable JSON.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/runner/figures.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --figure ID [--threads N] [--json PATH] "
                 "[--per-layer]\n"
                 "       %s --all [--threads N]\n"
                 "       %s --list\n",
                 argv0, argv0, argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bitfusion::figures;

    std::vector<std::string> ids;
    FigureOptions options;
    bool list = false, run_all = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--figure" && i + 1 < argc) {
            ids.push_back(argv[++i]);
        } else if (arg == "--threads" && i + 1 < argc) {
            options.threads =
                static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (arg == "--json" && i + 1 < argc) {
            options.jsonPath = argv[++i];
        } else if (arg == "--per-layer") {
            options.perLayer = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--all") {
            run_all = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (list) {
        for (const auto &figure : all())
            std::printf("%-18s %s\n", figure.id.c_str(),
                        figure.title.c_str());
        return 0;
    }
    if (run_all) {
        for (const auto &figure : all())
            ids.push_back(figure.id);
    }
    if (ids.empty())
        return usage(argv[0]);

    for (const auto &id : ids) {
        if (find(id) == nullptr) {
            std::fprintf(stderr, "unknown figure '%s' (try --list)\n",
                         id.c_str());
            return 2;
        }
    }
    return runAll(ids, options);
}
