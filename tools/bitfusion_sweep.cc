/**
 * @file
 * bitfusion_sweep: reproduce any paper figure from one binary.
 *
 *   bitfusion_sweep --list
 *   bitfusion_sweep --figure fig13 [--threads N] [--json PATH]
 *                   [--per-layer] [--timing simple|overlap]
 *   bitfusion_sweep --all [--threads N]
 *   bitfusion_sweep --platform eyeriss --platform bitfusion
 *                   [--batch N] [--timing ...]
 *
 * Figures run on the parallel sweep engine; output is the same
 * ASCII table the matching bench binary prints, plus optional
 * machine-readable JSON. --platform runs an ad-hoc heterogeneous
 * comparison of any registered platforms (kind[:variant], e.g.
 * eyeriss, stripes, gpu:titan-xp-int8, bitfusion:16nm) over the
 * eight paper benchmarks.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/core/artifact_cache.h"
#include "src/core/artifact_store.h"
#include "src/core/platform_registry.h"
#include "src/runner/figures.h"
#include "src/serve/scheduler.h"

namespace {

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --figure ID [--threads N] [--json PATH] "
                 "[--per-layer] [--timing simple|overlap] "
                 "[--store DIR]\n"
                 "       %s --all [--threads N]\n"
                 "       %s --platform KIND[:VARIANT] [...] [--batch N]\n"
                 "       %s --list | --list-platforms | "
                 "--list-schedulers\n",
                 argv0, argv0, argv0, argv0);
    return 2;
}

/**
 * Store traffic summary on stderr (stdout stays byte-identical
 * between cold and warm runs; CI's store smoke greps this).
 */
void
printStoreSummary()
{
    const bitfusion::ArtifactStore *store =
        bitfusion::ArtifactStore::process();
    if (store == nullptr)
        return;
    const auto st = store->stats();
    const auto &cache = bitfusion::ArtifactCache::process();
    std::fprintf(stderr,
                 "store %s: %zu loads, %zu publishes, %zu misses, "
                 "%zu corrupt; compiles this process: %zu, "
                 "plan builds: %zu\n",
                 store->root().c_str(), st.hits, st.publishes,
                 st.misses, st.corrupt, cache.compileCount(),
                 cache.planCount());
}

/** One line per registered platform kind: kind, variants, help. */
void
printPlatforms()
{
    std::printf("platforms (--platform KIND[:VARIANT]):\n");
    for (const auto &entry :
         bitfusion::PlatformRegistry::builtin().entries()) {
        std::printf("  %-11s %-40s %s\n", entry.kind.c_str(),
                    entry.variants.c_str(), entry.help.c_str());
    }
}

/** One line per registered scheduler: name and help. */
void
printSchedulers()
{
    std::printf("schedulers (--scheduler NAME, bitfusion_serve):\n");
    for (const auto &entry :
         bitfusion::serve::SchedulerRegistry::builtin().entries()) {
        std::printf("  %-11s %s\n", entry.name.c_str(),
                    entry.help.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bitfusion;
    using namespace bitfusion::figures;

    std::vector<std::string> ids;
    std::vector<std::string> platforms;
    FigureOptions options;
    unsigned batch = 0;
    bool list = false, run_all = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--figure" && i + 1 < argc) {
            ids.push_back(argv[++i]);
        } else if (arg == "--platform" && i + 1 < argc) {
            platforms.push_back(argv[++i]);
        } else if (arg == "--batch" && i + 1 < argc) {
            char *end = nullptr;
            const long value = std::strtol(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || value <= 0) {
                std::fprintf(stderr,
                             "--batch needs a positive integer, got "
                             "'%s'\n",
                             argv[i]);
                return 2;
            }
            batch = static_cast<unsigned>(value);
        } else if (arg == "--threads") {
            options.threads = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--threads", UINT32_MAX));
        } else if (arg == "--json" && i + 1 < argc) {
            options.jsonPath = argv[++i];
        } else if (arg == "--per-layer") {
            options.perLayer = true;
        } else if (arg == "--timing") {
            options.timing = timingArg(argc, argv, i);
        } else if (arg == "--store" && i + 1 < argc) {
            ArtifactStore::setProcessRoot(argv[++i]);
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--list-platforms") {
            printPlatforms();
            return 0;
        } else if (arg == "--list-schedulers") {
            printSchedulers();
            return 0;
        } else if (arg == "--all") {
            run_all = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (list) {
        for (const auto &figure : all())
            std::printf("%-18s %s\n", figure.id.c_str(),
                        figure.title.c_str());
        std::printf("\n");
        printPlatforms();
        return 0;
    }
    if (!platforms.empty()) {
        if (run_all || !ids.empty())
            return usage(argv[0]);
        const int rc = runPlatforms(platforms, batch, options);
        printStoreSummary();
        return rc;
    }
    if (run_all) {
        for (const auto &figure : all())
            ids.push_back(figure.id);
    }
    if (ids.empty())
        return usage(argv[0]);

    for (const auto &id : ids) {
        if (find(id) == nullptr) {
            std::fprintf(stderr, "unknown figure '%s' (try --list)\n",
                         id.c_str());
            return 2;
        }
    }
    const int rc = runAll(ids, options);
    printStoreSummary();
    return rc;
}
