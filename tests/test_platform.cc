/**
 * @file
 * Platform-interface tests: parity between registry-built platforms
 * and the concrete model classes (field-for-field RunStats equality
 * on AlexNet/LSTM at batch 16), PlatformSpec/registry round-trips,
 * CLI parsing, compiled-artifact reuse, and the LayerWalk timing
 * models (overlap never exceeds simple).
 */

#include <gtest/gtest.h>

#include "src/baselines/eyeriss.h"
#include "src/baselines/gpu.h"
#include "src/baselines/stripes.h"
#include "src/compiler/codegen.h"
#include "src/core/platform_registry.h"
#include "src/dnn/model_zoo.h"
#include "src/sim/bitfusion_platform.h"
#include "src/sim/simulator.h"

namespace bitfusion {
namespace {

/** Field-for-field equality of two runs (exact, including energy). */
void
expectSameRun(const RunStats &a, const RunStats &b)
{
    EXPECT_EQ(a.platform, b.platform);
    EXPECT_EQ(a.network, b.network);
    EXPECT_EQ(a.batch, b.batch);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.freqMHz, b.freqMHz);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (std::size_t i = 0; i < a.layers.size(); ++i) {
        const LayerStats &la = a.layers[i];
        const LayerStats &lb = b.layers[i];
        EXPECT_EQ(la.name, lb.name) << i;
        EXPECT_EQ(la.config, lb.config) << i;
        EXPECT_EQ(la.macs, lb.macs) << i;
        EXPECT_EQ(la.computeCycles, lb.computeCycles) << i;
        EXPECT_EQ(la.memCycles, lb.memCycles) << i;
        EXPECT_EQ(la.cycles, lb.cycles) << i;
        EXPECT_EQ(la.dramLoadBits, lb.dramLoadBits) << i;
        EXPECT_EQ(la.dramStoreBits, lb.dramStoreBits) << i;
        EXPECT_EQ(la.sramBits, lb.sramBits) << i;
        EXPECT_EQ(la.rfBits, lb.rfBits) << i;
        EXPECT_DOUBLE_EQ(la.utilization, lb.utilization) << i;
        EXPECT_DOUBLE_EQ(la.energy.computeJ, lb.energy.computeJ) << i;
        EXPECT_DOUBLE_EQ(la.energy.bufferJ, lb.energy.bufferJ) << i;
        EXPECT_DOUBLE_EQ(la.energy.rfJ, lb.energy.rfJ) << i;
        EXPECT_DOUBLE_EQ(la.energy.dramJ, lb.energy.dramJ) << i;
    }
}

/** The two parity benchmarks of the suite, at the paper's batch 16. */
std::vector<zoo::Benchmark>
parityBenchmarks()
{
    return {zoo::alexnet(), zoo::lstm()};
}

TEST(PlatformParity, BitFusionMatchesSimulator)
{
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    const Simulator direct(cfg);
    const auto platform = PlatformRegistry::builtin().build(
        bitfusionPlatform(cfg));
    for (const auto &bench : parityBenchmarks()) {
        expectSameRun(direct.run(Compiler(cfg).compile(bench.quantized)),
                      platform->run(bench.quantized));
    }
}

TEST(PlatformParity, EyerissMatchesModel)
{
    const EyerissModel direct;
    const auto platform =
        PlatformRegistry::builtin().build(eyerissPlatform());
    for (const auto &bench : parityBenchmarks()) {
        expectSameRun(direct.run(bench.baseline),
                      platform->run(bench.baseline));
    }
}

TEST(PlatformParity, StripesMatchesModel)
{
    const StripesModel direct;
    const auto platform =
        PlatformRegistry::builtin().build(stripesPlatform());
    for (const auto &bench : parityBenchmarks()) {
        expectSameRun(direct.run(bench.quantized),
                      platform->run(bench.quantized));
    }
}

TEST(PlatformParity, GpuMatchesModel)
{
    const GpuModel direct(GpuSpec::titanXpInt8());
    const auto platform = PlatformRegistry::builtin().build(
        gpuPlatform(GpuSpec::titanXpInt8()));
    for (const auto &bench : parityBenchmarks()) {
        expectSameRun(direct.run(bench.baseline),
                      platform->run(bench.baseline));
    }
}

TEST(PlatformParity, CompiledArtifactMatchesDirectRun)
{
    const Simulator sim(AcceleratorConfig::eyerissMatched45());
    const Network &net = zoo::alexnet().quantized;
    const PlatformArtifactPtr artifact = sim.compile(net);
    ASSERT_NE(artifact, nullptr);
    RunOptions opts;
    opts.artifact = artifact.get();
    expectSameRun(sim.run(net), sim.run(net, opts));
}

TEST(PlatformRegistry, RoundTripDescribe)
{
    const PlatformRegistry &reg = PlatformRegistry::builtin();
    const struct
    {
        PlatformSpec spec;
        const char *kind;
        const char *name;
    } cases[] = {
        {bitfusionPlatform(AcceleratorConfig::eyerissMatched45()),
         "bitfusion", "bitfusion-eyeriss-matched-45nm"},
        {eyerissPlatform(), "eyeriss", "eyeriss-45nm"},
        {stripesPlatform(), "stripes", "stripes-45nm"},
        {gpuPlatform(GpuSpec::titanXpFp32()), "gpu",
         "titan-xp-fp32"},
    };
    for (const auto &c : cases) {
        EXPECT_EQ(c.spec.kind, c.kind);
        const auto platform = reg.build(c.spec);
        const PlatformInfo info = platform->describe();
        EXPECT_EQ(info.kind, c.kind);
        EXPECT_EQ(info.name, c.name);
        EXPECT_EQ(platform->name(), info.name);
        EXPECT_EQ(info.batch, c.spec.effectiveBatch());
        EXPECT_EQ(info.batch, 16u); // paper default everywhere
        EXPECT_FALSE(info.compute.empty());
    }
}

TEST(PlatformRegistry, BatchOverrideAppliesAtBuild)
{
    const PlatformRegistry &reg = PlatformRegistry::builtin();
    PlatformSpec spec = eyerissPlatform();
    spec.batch = 4;
    EXPECT_EQ(spec.effectiveBatch(), 4u);
    EXPECT_EQ(reg.build(spec)->describe().batch, 4u);

    PlatformSpec gpu = gpuPlatform(GpuSpec::tegraX2Fp32());
    EXPECT_EQ(gpu.effectiveBatch(), kGpuDefaultBatch);
    gpu.batch = 64;
    EXPECT_EQ(reg.build(gpu)->describe().batch, 64u);
}

TEST(PlatformRegistry, ParsesCliTokens)
{
    const PlatformRegistry &reg = PlatformRegistry::builtin();
    EXPECT_EQ(reg.parse("eyeriss").kind, "eyeriss");
    EXPECT_EQ(reg.parse("stripes").kind, "stripes");
    EXPECT_EQ(reg.parse("bitfusion").name,
              "bitfusion-eyeriss-matched-45nm");
    EXPECT_EQ(reg.parse("bitfusion:16nm").name, "bitfusion-4096fu-16nm");
    // Variant names are case- and separator-insensitive.
    EXPECT_EQ(reg.parse("gpu:titanxp-int8").name, "titan-xp-int8");
    EXPECT_EQ(reg.parse("gpu:Titan-Xp-FP32").name, "titan-xp-fp32");
    EXPECT_EQ(reg.parse("gpu:tegra-x2").name, "tegra-x2-fp32");
    // The quantized-variant choice matches the paper methodology.
    EXPECT_TRUE(reg.parse("bitfusion").runsQuantized);
    EXPECT_TRUE(reg.parse("stripes").runsQuantized);
    EXPECT_FALSE(reg.parse("eyeriss").runsQuantized);
    EXPECT_FALSE(reg.parse("gpu:titanxp-int8").runsQuantized);
}

TEST(PlatformRegistryDeath, RejectsUnknownTokens)
{
    const PlatformRegistry &reg = PlatformRegistry::builtin();
    EXPECT_DEATH(reg.parse("tpu"), "unknown platform");
    EXPECT_DEATH(reg.parse("gpu:v100"), "unknown gpu variant");
    EXPECT_DEATH(reg.parse("eyeriss:v2"), "takes no variant");
}

TEST(TimingModel, ParseAndName)
{
    TimingModel m = TimingModel::Overlap;
    EXPECT_TRUE(parseTimingModel("simple", m));
    EXPECT_EQ(m, TimingModel::Simple);
    EXPECT_TRUE(parseTimingModel("overlap", m));
    EXPECT_EQ(m, TimingModel::Overlap);
    EXPECT_FALSE(parseTimingModel("exact", m));
    EXPECT_STREQ(toString(TimingModel::Simple), "simple");
    EXPECT_STREQ(toString(TimingModel::Overlap), "overlap");
}

TEST(TimingModel, OverlapNeverExceedsSimple)
{
    // The acceptance property of the phase pipeline: overlap can
    // only hide stall cycles, never add them, on every platform.
    const PlatformRegistry &reg = PlatformRegistry::builtin();
    const PlatformSpec specs[] = {
        bitfusionPlatform(AcceleratorConfig::eyerissMatched45()),
        eyerissPlatform(),
        stripesPlatform(),
        gpuPlatform(GpuSpec::titanXpFp32()),
    };
    for (const auto &spec : specs) {
        const auto platform = reg.build(spec);
        for (const auto &bench : zoo::all()) {
            const Network &net =
                spec.runsQuantized ? bench.quantized : bench.baseline;
            RunOptions simple, overlap;
            overlap.timing = TimingModel::Overlap;
            const RunStats s = platform->run(net, simple);
            const RunStats o = platform->run(net, overlap);
            EXPECT_LE(o.totalCycles, s.totalCycles)
                << spec.name << "/" << bench.name;
        }
    }
}

TEST(TimingModel, OverlapHidesPerLayerPipelineFill)
{
    // Multi-layer Bit Fusion run: simple pays rows+cols fill per MAC
    // schedule, overlap pays the deepest fill once, so the gap is at
    // least (#schedules - 1) * (rows + cols) when compute-bound.
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    const Simulator sim(cfg);
    const CompiledNetwork net =
        Compiler(cfg).compile(zoo::alexnet().quantized);
    const RunStats s = sim.run(net, TimingModel::Simple);
    const RunStats o = sim.run(net, TimingModel::Overlap);
    ASSERT_GT(net.schedules.size(), 1u);
    EXPECT_LT(o.totalCycles, s.totalCycles);
}

TEST(TimingModel, OverlapPreservesTrafficAndEnergy)
{
    // The timing model only re-composes phase times; traffic,
    // utilization, and energy bookkeeping are identical.
    const EyerissModel m;
    RunOptions overlap;
    overlap.timing = TimingModel::Overlap;
    const RunStats s = m.run(zoo::lstm().baseline);
    const RunStats o = m.run(zoo::lstm().baseline, overlap);
    ASSERT_EQ(s.layers.size(), o.layers.size());
    EXPECT_DOUBLE_EQ(s.energy().totalJ(), o.energy().totalJ());
    for (std::size_t i = 0; i < s.layers.size(); ++i) {
        EXPECT_EQ(s.layers[i].dramLoadBits, o.layers[i].dramLoadBits);
        EXPECT_EQ(s.layers[i].dramStoreBits, o.layers[i].dramStoreBits);
        EXPECT_EQ(s.layers[i].sramBits, o.layers[i].sramBits);
        EXPECT_EQ(s.layers[i].computeCycles, o.layers[i].computeCycles);
        EXPECT_EQ(s.layers[i].memCycles, o.layers[i].memCycles);
    }
}

TEST(LayerWalk, SimpleMatchesSeedFormula)
{
    const LayerPhases p =
        LayerPhases::fromBits(1000, 6400, 1600, 128, 24);
    EXPECT_DOUBLE_EQ(p.computeUnits, 1000.0);
    EXPECT_DOUBLE_EQ(p.memUnits, 63.0); // divCeil(6400 + 1600, 128)
    // max(compute, mem) + fill.
    EXPECT_DOUBLE_EQ(LayerWalk::simpleUnits(p), 1024.0);
}

TEST(LayerWalk, OverlapBoundByBusierChannelPlusOneFill)
{
    // Two layers, one compute-bound and one memory-bound; overlap
    // collapses to max(sum compute + one fill, sum mem).
    LayerPhases a; // compute-bound
    a.computeUnits = 1000.0;
    a.memUnits = 100.0;
    a.fillUnits = 24.0;
    LayerPhases b; // memory-bound
    b.computeUnits = 50.0;
    b.memUnits = 700.0;
    b.fillUnits = 24.0;

    LayerWalk simple(TimingModel::Simple);
    simple.add(LayerStats{}, a);
    simple.add(LayerStats{}, b);
    RunStats rs_simple;
    EXPECT_DOUBLE_EQ(simple.finish(rs_simple), 1024.0 + 724.0);
    EXPECT_EQ(rs_simple.totalCycles, 1748u);
    EXPECT_EQ(rs_simple.layers[0].cycles, 1024u);
    EXPECT_EQ(rs_simple.layers[1].cycles, 724u);

    LayerWalk overlap(TimingModel::Overlap);
    overlap.add(LayerStats{}, a);
    overlap.add(LayerStats{}, b);
    RunStats rs_overlap;
    // max(1000 + 50 + 24, 100 + 700) = 1074: layer b's memory phase
    // is prefetched behind layer a's compute, and only one array
    // fill is exposed.
    EXPECT_DOUBLE_EQ(overlap.finish(rs_overlap), 1074.0);
    EXPECT_EQ(rs_overlap.totalCycles, 1074u);
    // Exposed-cycle attribution follows the bottleneck channel.
    EXPECT_EQ(rs_overlap.layers[0].cycles, 1024u);
    EXPECT_EQ(rs_overlap.layers[1].cycles, 50u);
}

TEST(Simulator, AuxLayersReportRealUtilization)
{
    // Satellite fix: standalone pooling/activation schedules used to
    // hard-code utilization 0.
    AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    cfg.layerFusion = false; // keep aux layers as separate schedules
    const Simulator sim(cfg);
    const CompiledNetwork net =
        Compiler(cfg).compile(zoo::alexnet().quantized);
    unsigned auxSeen = 0;
    for (const auto &sched : net.schedules) {
        if (sched.usesMacArray)
            continue;
        ++auxSeen;
        const LayerStats st = sim.runSchedule(sched);
        EXPECT_GT(st.utilization, 0.0) << st.name;
        EXPECT_LE(st.utilization, 1.0 + 1e-9) << st.name;
    }
    EXPECT_GT(auxSeen, 0u);
}

} // namespace
} // namespace bitfusion
