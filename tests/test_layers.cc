/**
 * @file
 * Tests for the DNN substrate: layer op/footprint accounting, GEMM
 * lowering, network aggregation, and bitwidth profiles.
 */

#include <gtest/gtest.h>

#include "src/dnn/model_zoo.h"
#include "src/dnn/network.h"

namespace bitfusion {
namespace {

TEST(Layer, ConvShapeAndMacs)
{
    // AlexNet conv1: 3x227x227 -> 96x55x55, k11 s4.
    const Layer l =
        Layer::conv("c", 3, 227, 227, 96, 11, 4, 0, zoo::cfg8x8());
    EXPECT_EQ(l.outH(), 55u);
    EXPECT_EQ(l.outW(), 55u);
    EXPECT_EQ(l.macsPerSample(), 96ULL * 55 * 55 * 3 * 11 * 11);
    EXPECT_EQ(l.weightCount(), 96ULL * 3 * 11 * 11);
    EXPECT_EQ(l.inputCount(), 3ULL * 227 * 227);
    EXPECT_EQ(l.outputCount(), 96ULL * 55 * 55);
}

TEST(Layer, ConvWithPaddingAndGroups)
{
    // AlexNet conv2: 96x27x27 -> 256x27x27, k5 s1 p2, groups 2.
    const Layer l =
        Layer::conv("c", 96, 27, 27, 256, 5, 1, 2, zoo::cfg8x8(), 2);
    EXPECT_EQ(l.outH(), 27u);
    EXPECT_EQ(l.macsPerSample(), 256ULL * 27 * 27 * 48 * 25);
    EXPECT_EQ(l.weightCount(), 256ULL * 48 * 25);
}

TEST(Layer, FcAccounting)
{
    const Layer l = Layer::fc("f", 4096, 1000, zoo::cfg8x8());
    EXPECT_EQ(l.macsPerSample(), 4096ULL * 1000);
    EXPECT_EQ(l.weightCount(), 4096ULL * 1000);
    EXPECT_EQ(l.inputCount(), 4096u);
    EXPECT_EQ(l.outputCount(), 1000u);
    EXPECT_EQ(l.auxOpsPerSample(), 0u);
}

TEST(Layer, PoolAccounting)
{
    const Layer l = Layer::pool("p", 64, 28, 28, 2, 2);
    EXPECT_EQ(l.outH(), 14u);
    EXPECT_EQ(l.macsPerSample(), 0u);
    EXPECT_EQ(l.auxOpsPerSample(), 64ULL * 14 * 14 * 4);
    EXPECT_EQ(l.weightCount(), 0u);
    EXPECT_FALSE(l.usesMacArray());
}

TEST(Layer, ActivationAccounting)
{
    const Layer l = Layer::activation("a", 64, 13, 13);
    EXPECT_EQ(l.auxOpsPerSample(), 64ULL * 13 * 13);
    EXPECT_EQ(l.outputCount(), l.inputCount());
    EXPECT_FALSE(l.usesMacArray());
}

TEST(Layer, RnnAccounting)
{
    const Layer l = Layer::rnn("r", 512, 1024, zoo::cfg4x4());
    EXPECT_EQ(l.macsPerSample(), (512ULL + 1024) * 1024);
    EXPECT_EQ(l.weightCount(), (512ULL + 1024) * 1024);
    EXPECT_EQ(l.inputCount(), 512u + 1024u);
    EXPECT_EQ(l.outputCount(), 1024u);
}

TEST(Layer, LstmAccounting)
{
    const Layer l = Layer::lstm("l", 512, 512, zoo::cfg4x4());
    EXPECT_EQ(l.macsPerSample(), 4ULL * 1024 * 512);
    EXPECT_EQ(l.outputCount(), 1024u); // hidden + cell state
    EXPECT_EQ(l.auxOpsPerSample(), 7ULL * 512);
}

TEST(Layer, GemmShapes)
{
    const Layer conv =
        Layer::conv("c", 64, 16, 16, 128, 3, 1, 1, zoo::cfg2x2());
    const auto g = conv.gemmShape();
    EXPECT_EQ(g.m, 128u);
    EXPECT_EQ(g.k, 64ULL * 9);
    EXPECT_EQ(g.n, 256u);
    // MAC conservation: m*k*n == macs.
    EXPECT_EQ(g.m * g.k * g.n, conv.macsPerSample());

    const Layer fc = Layer::fc("f", 256, 64, zoo::cfg2x2());
    const auto gf = fc.gemmShape();
    EXPECT_EQ(gf.m * gf.k * gf.n, fc.macsPerSample());

    const Layer lstm = Layer::lstm("l", 100, 200, zoo::cfg4x4());
    const auto gl = lstm.gemmShape();
    EXPECT_EQ(gl.m * gl.k * gl.n, lstm.macsPerSample());
}

TEST(Layer, WeightBitsUseLayerBitwidth)
{
    Layer l = Layer::fc("f", 10, 10, zoo::cfg4x1());
    EXPECT_EQ(l.weightBits(), 100u); // 1-bit weights
    l.bits = zoo::cfg8x8();
    EXPECT_EQ(l.weightBits(), 800u);
}

TEST(LayerDeath, KernelLargerThanInputPanics)
{
    const Layer l = Layer::conv("c", 3, 4, 4, 8, 7, 1, 0, zoo::cfg8x8());
    EXPECT_DEATH(l.outH(), "kernel");
}

TEST(LayerDeath, GroupsMustDivideChannels)
{
    EXPECT_DEATH(
        Layer::conv("c", 3, 8, 8, 8, 3, 1, 1, zoo::cfg8x8(), 2),
        "groups");
}

TEST(Network, Aggregation)
{
    Network net("tiny", {});
    net.add(Layer::conv("c1", 3, 8, 8, 4, 3, 1, 1, zoo::cfg8x8()));
    net.add(Layer::activation("a1", 4, 8, 8));
    net.add(Layer::fc("f1", 256, 10, zoo::cfg2x2()));
    EXPECT_EQ(net.layers().size(), 3u);
    EXPECT_EQ(net.totalMacs(),
              net.layers()[0].macsPerSample() +
                  net.layers()[2].macsPerSample());
    EXPECT_EQ(net.totalAuxOps(), 4ULL * 8 * 8);
    EXPECT_GT(net.macFraction(), 0.9);
}

TEST(Network, MacBitwidthProfileSumsToOne)
{
    for (const auto &b : zoo::all()) {
        double total = 0.0;
        for (const auto &[k, v] : b.quantized.macBitwidthProfile())
            total += v;
        EXPECT_NEAR(total, 1.0, 1e-9) << b.name;
    }
}

TEST(Network, WeightBitwidthProfileSumsToOne)
{
    for (const auto &b : zoo::all()) {
        double total = 0.0;
        for (const auto &[k, v] : b.quantized.weightBitwidthProfile())
            total += v;
        EXPECT_NEAR(total, 1.0, 1e-9) << b.name;
    }
}

} // namespace
} // namespace bitfusion
