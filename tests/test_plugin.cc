/**
 * @file
 * Out-of-tree extension tests: a toy backend and a toy scheduler
 * registered through the same PlatformRegistry::add() and
 * SchedulerRegistry::add() doors a real plug-in would use -- no file
 * under src/core/ or src/serve/ knows they exist -- then driven
 * through the sweep grid, a heterogeneous serving fleet, and the
 * shared ArtifactCache. Also pins the registry failure modes
 * (duplicate kinds, unknown kinds/variants/schedulers), the
 * compileKey contract between a PlatformSpec and the Platform it
 * builds, and the GPU baseline's board-power energy model against
 * the pre-energy golden cycle counts.
 */

#include <gtest/gtest.h>

#include "src/baselines/diannao.h"
#include "src/baselines/gpu.h"
#include "src/baselines/mxu.h"
#include "src/core/artifact_cache.h"
#include "src/core/platform_registry.h"
#include "src/dnn/model_zoo.h"
#include "src/runner/sweep.h"
#include "src/serve/scheduler.h"
#include "src/serve/serving_engine.h"

namespace bitfusion {
namespace {

using serve::BatchPlan;
using serve::InferenceRequest;
using serve::Scheduler;
using serve::SchedulerContext;
using serve::SchedulerKnobs;
using serve::SchedulerRegistry;
using serve::ServeOptions;
using serve::ServeReport;
using serve::ServingEngine;

// ------------------------------------------------- The toy backend

/** Config of the toy platform: a flat-rate MAC engine. */
struct ToyConfig
{
    std::string name = "toy";
    double macsPerCycle = 1024.0;
    unsigned batch = 4;
};

/** Artifact the toy compile step produces (layer count). */
struct ToyArtifact : PlatformArtifact
{
    std::size_t layerCount = 0;
};

/**
 * Flat-rate platform: every MAC-array layer takes macs/macsPerCycle
 * cycles, no memory phases. Small on purpose -- the tests exercise
 * the registries and caches, not the model.
 */
class ToyPlatform : public Platform
{
  public:
    explicit ToyPlatform(ToyConfig cfg) : cfg(std::move(cfg)) {}

    using Platform::run;

    std::string name() const override { return cfg.name; }

    PlatformInfo
    describe() const override
    {
        PlatformInfo info;
        info.name = cfg.name;
        info.kind = "toy";
        info.compute = "flat-rate MAC engine";
        info.freqMHz = 1000.0;
        info.batch = cfg.batch;
        return info;
    }

    std::string
    compileKey() const override
    {
        return "toy/" + std::to_string(cfg.macsPerCycle);
    }

    PlatformArtifactPtr
    compile(const Network &net) const override
    {
        auto artifact = std::make_shared<ToyArtifact>();
        artifact->layerCount = net.layers().size();
        return artifact;
    }

    RunStats
    run(const Network &net, const RunOptions &opts) const override
    {
        RunStats rs;
        rs.platform = cfg.name;
        rs.network = net.name();
        rs.batch = cfg.batch;
        rs.freqMHz = 1000.0;
        LayerWalk walk(opts.timing);
        for (const auto &layer : net.layers()) {
            if (!layer.usesMacArray())
                continue;
            LayerStats st;
            st.name = layer.name;
            st.config = "toy";
            st.macs = layer.macsPerSample() * cfg.batch;
            st.computeCycles = static_cast<std::uint64_t>(
                static_cast<double>(st.macs) / cfg.macsPerCycle);
            st.utilization = 1.0;
            LayerPhases phases;
            phases.computeUnits =
                static_cast<double>(st.computeCycles);
            walk.add(std::move(st), phases);
        }
        walk.finish(rs);
        return rs;
    }

  private:
    ToyConfig cfg;
};

/** Spec factory, exactly as an out-of-tree backend would write it. */
PlatformSpec
toyPlatform(ToyConfig cfg = {})
{
    PlatformConfig::Ops<ToyConfig> ops;
    ops.batch = [](const ToyConfig &c) { return c.batch; };
    ops.equals = [](const ToyConfig &a, const ToyConfig &b) {
        return a.name == b.name && a.macsPerCycle == b.macsPerCycle &&
               a.batch == b.batch;
    };
    ops.describe = [](const ToyConfig &c) {
        return c.name + ": flat-rate MAC engine";
    };
    ops.compileKey = [](const ToyConfig &c) {
        return "toy/" + std::to_string(c.macsPerCycle);
    };
    PlatformSpec spec;
    spec.name = cfg.name;
    spec.kind = "toy";
    spec.config = PlatformConfig::wrap(std::move(cfg), ops);
    spec.runsQuantized = true;
    return spec;
}

PlatformRegistry::Entry
toyEntry()
{
    return {"toy", "(no variants)", "flat-rate test backend",
            [](const std::string &variant) {
                if (!variant.empty())
                    BF_FATAL("toy takes no variant, got '", variant,
                             "'");
                return toyPlatform();
            },
            [](const PlatformSpec &spec) -> std::unique_ptr<Platform> {
                ToyConfig cfg = spec.config.as<ToyConfig>();
                if (spec.batch != 0)
                    cfg.batch = spec.batch;
                return std::make_unique<ToyPlatform>(std::move(cfg));
            }};
}

// ----------------------------------------------- The toy scheduler

/** Dispatches exactly the head-of-line request, immediately. */
class SingleScheduler : public Scheduler
{
  public:
    const char *name() const override { return "single"; }

    BatchPlan
    plan(SchedulerContext &ctx, double now) override
    {
        const InferenceRequest &head = ctx.queue().front();
        BatchPlan plan;
        plan.members = {0};
        plan.network = head.network;
        plan.samples = head.samples;
        plan.dispatchUs = now;
        return plan;
    }
};

SchedulerRegistry::Entry
singleEntry()
{
    return {"single", "one request per batch (test policy)",
            [] { return std::make_unique<SingleScheduler>(); },
            nullptr};
}

/**
 * Register the toy backend and scheduler exactly once per process,
 * through the public add() doors only.
 */
void
registerToys()
{
    static const bool once = [] {
        PlatformRegistry::builtin().add(toyEntry());
        SchedulerRegistry::builtin().add(singleEntry());
        return true;
    }();
    (void)once;
}

/** Catalog entry whose quantized and baseline variants coincide. */
zoo::Benchmark
tinyBench(const std::string &name, unsigned out_c)
{
    Network net(name, {});
    net.add(Layer::fc("fc1", 64, out_c, zoo::cfg8x8()));
    net.add(Layer::fc("fc2", out_c, 16, zoo::cfg4x4()));
    zoo::Benchmark bench;
    bench.name = name;
    bench.quantized = net;
    bench.baseline = net;
    return bench;
}

// ------------------------------------------------------- The tests

TEST(PluginBackend, ParsesAndBuildsThroughTheRegistry)
{
    registerToys();
    const PlatformRegistry &reg = PlatformRegistry::builtin();
    const PlatformSpec spec = reg.parse("toy");
    EXPECT_EQ(spec.kind, "toy");
    EXPECT_EQ(spec.name, "toy");
    EXPECT_EQ(spec.config.describe(), "toy: flat-rate MAC engine");
    const auto platform = reg.build(spec);
    EXPECT_EQ(platform->name(), "toy");
    EXPECT_EQ(platform->describe().kind, "toy");

    // The spec's batch override reaches the built platform.
    PlatformSpec batched = reg.parse("toy");
    batched.batch = 9;
    EXPECT_EQ(reg.build(batched)->describe().batch, 9u);
}

TEST(PluginBackend, RunsThroughTheSweepGrid)
{
    registerToys();
    ArtifactCache cache;
    SweepSpec spec;
    spec.name = "plugin";
    spec.platforms = {PlatformRegistry::builtin().parse("toy"),
                      PlatformRegistry::builtin().parse("mxu")};
    spec.networks = {
        SweepNetwork::fromBenchmark(tinyBench("netA", 64)),
        SweepNetwork::fromBenchmark(tinyBench("netB", 128))};

    SweepOptions opts;
    opts.threads = 2;
    opts.cache = &cache;
    const SweepResult result = SweepRunner(opts).run(spec);

    ASSERT_EQ(result.cells().size(), 4u);
    for (const auto &cell : result.cells())
        EXPECT_GT(cell.stats.totalCycles, 0u) << cell.platform;
    // The toy backend compiles (one artifact per network); the MXU
    // has no compile step and stays off the cache's counters.
    EXPECT_EQ(cache.compileCount(), 2u);
    EXPECT_EQ(cache.size(), 2u);
}

TEST(PluginBackend, ArtifactCacheReusesAcrossSweeps)
{
    registerToys();
    ArtifactCache cache;
    SweepSpec spec;
    spec.name = "plugin-cache";
    spec.platforms = {PlatformRegistry::builtin().parse("toy")};
    spec.networks = {
        SweepNetwork::fromBenchmark(tinyBench("netA", 64))};
    SweepOptions opts;
    opts.threads = 1;
    opts.cache = &cache;

    SweepRunner(opts).run(spec);
    EXPECT_EQ(cache.compileCount(), 1u);
    SweepRunner(opts).run(spec);
    EXPECT_EQ(cache.compileCount(), 1u);
    EXPECT_GE(cache.hitCount(), 1u);
}

TEST(PluginScheduler, DrivesAHeterogeneousFleet)
{
    registerToys();
    ArtifactCache cache;
    ServeOptions opts;
    opts.threads = 1;
    opts.scheduler = "single";
    opts.maxBatch = 8;
    opts.cache = &cache;
    ServingEngine engine({PlatformRegistry::builtin().parse("toy"),
                          PlatformRegistry::builtin().parse("dadiannao")},
                         opts);
    engine.setCatalog({tinyBench("netA", 64), tinyBench("netB", 128)});

    std::vector<InferenceRequest> trace;
    for (std::uint64_t i = 0; i < 12; ++i) {
        InferenceRequest r;
        r.id = i;
        r.network = (i % 2 != 0u) ? "netB" : "netA";
        r.samples = 2;
        r.arrivalUs = static_cast<double>(i) * 50.0;
        trace.push_back(r);
    }
    const ServeReport report = engine.run(trace);
    EXPECT_EQ(report.requests.size(), 12u);
    ASSERT_EQ(report.replicas.size(), 2u);
    // "single" never coalesces: one batch per request.
    EXPECT_EQ(report.batches.size(), 12u);
    EXPECT_EQ(report.scheduler, "single");
    EXPECT_TRUE(report.fleetReport());
}

TEST(PluginRegistryDeath, DuplicateAndUnknownNamesAreFatal)
{
    registerToys();
    EXPECT_DEATH(PlatformRegistry::builtin().add(toyEntry()),
                 "duplicate platform kind");
    EXPECT_DEATH(SchedulerRegistry::builtin().add(singleEntry()),
                 "duplicate scheduler");
    EXPECT_DEATH(PlatformRegistry::builtin().parse("npu"),
                 "unknown platform");
    EXPECT_DEATH(SchedulerRegistry::builtin().make("rr"),
                 "unknown scheduler");
    EXPECT_DEATH(PlatformRegistry::builtin().parse("toy:v2"),
                 "toy takes no variant");
    EXPECT_DEATH(PlatformRegistry::builtin().parse("mxu:v3"),
                 "unknown mxu variant");
    EXPECT_DEATH(PlatformRegistry::builtin().parse("dadiannao:pudiannao"),
                 "unknown dadiannao variant");
}

TEST(CompileKeyContract, SpecKeyMatchesBuiltPlatformKey)
{
    registerToys();
    const PlatformRegistry &reg = PlatformRegistry::builtin();
    // No batch overrides here: the bitfusion compile key includes
    // the batch, so the contract is stated on the parsed spec.
    const char *tokens[] = {"bitfusion", "bitfusion:16nm", "eyeriss",
                            "stripes",   "gpu:titan-xp-int8",
                            "mxu",       "mxu:edge",
                            "dadiannao", "dadiannao:diannao",
                            "toy"};
    for (const char *token : tokens) {
        const PlatformSpec spec = reg.parse(token);
        const auto platform = reg.build(spec);
        EXPECT_EQ(spec.config.compileKey(), platform->compileKey())
            << token;
    }
}

TEST(PluginListings, NewKindsAndPoliciesAreEnumerable)
{
    registerToys();
    bool saw_mxu = false, saw_diannao = false, saw_toy = false;
    for (const auto &entry : PlatformRegistry::builtin().entries()) {
        saw_mxu |= entry.kind == "mxu";
        saw_diannao |= entry.kind == "dadiannao";
        saw_toy |= entry.kind == "toy";
        EXPECT_FALSE(entry.help.empty()) << entry.kind;
        EXPECT_FALSE(entry.variants.empty()) << entry.kind;
    }
    EXPECT_TRUE(saw_mxu);
    EXPECT_TRUE(saw_diannao);
    EXPECT_TRUE(saw_toy);

    bool saw_single = false;
    for (const auto &entry : SchedulerRegistry::builtin().entries()) {
        saw_single |= entry.name == "single";
        EXPECT_FALSE(entry.help.empty()) << entry.name;
    }
    EXPECT_TRUE(saw_single);
    EXPECT_NE(SchedulerRegistry::builtin().names().find("single"),
              std::string::npos);
}

// ------------------------------------------- GPU energy satellite

/**
 * Cycle counts copied from tests/golden/fig17.json as generated
 * before the GPU energy model existed: the energy satellite must not
 * move a single timing digit.
 */
TEST(GpuEnergy, CyclesPinnedToPreEnergyGolden)
{
    const struct
    {
        GpuSpec spec;
        const char *network;
        std::uint64_t cycles;
    } pins[] = {
        {GpuSpec::tegraX2Fp32(), "AlexNet", 69151125ull},
        {GpuSpec::tegraX2Fp32(), "LSTM", 1258571ull},
        {GpuSpec::titanXpFp32(), "AlexNet", 3206947ull},
        {GpuSpec::titanXpInt8(), "AlexNet", 2028342ull},
        {GpuSpec::titanXpInt8(), "LSTM", 58760ull},
    };
    for (const auto &pin : pins) {
        const zoo::Benchmark bench =
            std::string(pin.network) == "LSTM" ? zoo::lstm()
                                               : zoo::alexnet();
        const GpuModel model(pin.spec);
        EXPECT_EQ(model.run(bench.baseline).totalCycles, pin.cycles)
            << pin.spec.name << " " << pin.network;
    }
}

TEST(GpuEnergy, BoardPowerTimesTime)
{
    const GpuModel model(GpuSpec::titanXpInt8());
    const RunStats rs = model.run(zoo::alexnet().baseline);
    const double totalJ = rs.energy().totalJ();
    ASSERT_GT(totalJ, 0.0);
    // Energy is board power x the Simple-timing wall time; the only
    // slack is totalCycles' truncation to whole nanoseconds.
    const double expected =
        GpuSpec::titanXpInt8().boardPowerW * rs.seconds();
    EXPECT_NEAR(totalJ, expected, 1e-3 * expected);
    // All of it is modeled as compute (board-level, not component).
    EXPECT_DOUBLE_EQ(totalJ, rs.energy().computeJ);
}

TEST(GpuEnergy, InvariantAcrossTimingModels)
{
    const GpuModel model(GpuSpec::tegraX2Fp32());
    RunOptions simple, overlap;
    simple.timing = TimingModel::Simple;
    overlap.timing = TimingModel::Overlap;
    const Network &net = zoo::lstm().baseline;
    const RunStats a = model.run(net, simple);
    const RunStats b = model.run(net, overlap);
    EXPECT_DOUBLE_EQ(a.energy().totalJ(), b.energy().totalJ());
    EXPECT_LE(b.totalCycles, a.totalCycles);
}

// --------------------------------------- New-backend model checks

TEST(MxuModel, TilePassesCoverTheGemm)
{
    MxuConfig cfg;
    cfg.rows = 256;
    cfg.cols = 256;
    const MxuModel model(cfg);
    EXPECT_EQ(model.tilePasses(256, 256), 1ull);
    EXPECT_EQ(model.tilePasses(257, 256), 2ull);
    EXPECT_EQ(model.tilePasses(512, 512), 4ull);
    EXPECT_EQ(model.tilePasses(1, 1), 1ull);
}

TEST(MxuModel, ParseRoundTripsVariants)
{
    const PlatformRegistry &reg = PlatformRegistry::builtin();
    EXPECT_EQ(reg.parse("mxu").name, "mxu-v1");
    EXPECT_EQ(reg.parse("mxu:v1").name, "mxu-v1");
    EXPECT_EQ(reg.parse("mxu:edge").name, "mxu-edge");
    EXPECT_EQ(reg.parse("mxu:edge").kind, "mxu");
    EXPECT_EQ(reg.parse("mxu").config.as<MxuConfig>().rows, 256u);
    EXPECT_EQ(reg.parse("mxu:edge").config.as<MxuConfig>().rows, 64u);
}

TEST(DianNaoModel, ResidencyFollowsTheEdram)
{
    const DianNaoModel dadiannao{DianNaoConfig::dadiannao()};
    // AlexNet's ~61M 16-bit weights overflow the 36 MB eDRAM; the
    // LSTM fits with room to spare.
    EXPECT_FALSE(dadiannao.weightsFit(zoo::alexnet().baseline));
    EXPECT_TRUE(dadiannao.weightsFit(zoo::lstm().baseline));
    // The original DianNao streams everything.
    const DianNaoModel diannao{DianNaoConfig::diannao()};
    EXPECT_FALSE(diannao.weightsFit(zoo::lstm().baseline));

    // Residency zeroes the weight DRAM term.
    const RunStats resident = dadiannao.run(zoo::lstm().baseline);
    const RunStats streamed = diannao.run(zoo::lstm().baseline);
    std::uint64_t resident_load = 0, streamed_load = 0;
    for (const auto &l : resident.layers)
        resident_load += l.dramLoadBits;
    for (const auto &l : streamed.layers)
        streamed_load += l.dramLoadBits;
    EXPECT_LT(resident_load, streamed_load);
}

TEST(DianNaoModel, ParseRoundTripsVariants)
{
    const PlatformRegistry &reg = PlatformRegistry::builtin();
    EXPECT_EQ(reg.parse("dadiannao").name, "dadiannao");
    EXPECT_EQ(reg.parse("dadiannao:diannao").name, "diannao");
    EXPECT_EQ(reg.parse("dadiannao:diannao").kind, "dadiannao");
    EXPECT_EQ(
        reg.parse("dadiannao").config.as<DianNaoConfig>().tiles, 16u);
    EXPECT_EQ(reg.parse("dadiannao:diannao")
                  .config.as<DianNaoConfig>()
                  .tiles,
              1u);
    EXPECT_FALSE(reg.parse("dadiannao").runsQuantized);
}

// ----------------------------------------- Config handle contract

TEST(PlatformConfig, ValueSemanticsAndEquality)
{
    const PlatformSpec a = toyPlatform();
    PlatformSpec b = a; // deep copy through clone()
    EXPECT_TRUE(a.config == b.config);
    EXPECT_EQ(a.config.describe(), b.config.describe());

    ToyConfig faster;
    faster.macsPerCycle = 2048.0;
    const PlatformSpec c = toyPlatform(faster);
    EXPECT_FALSE(a.config == c.config);

    // Cross-type comparison is false, not fatal.
    EXPECT_FALSE(a.config ==
                 PlatformRegistry::builtin().parse("mxu").config);

    // get_if: typed access without commitment.
    EXPECT_NE(a.config.get_if<ToyConfig>(), nullptr);
    EXPECT_EQ(a.config.get_if<MxuConfig>(), nullptr);

    PlatformConfig empty;
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.batch(), 0u);
    EXPECT_TRUE(empty == PlatformConfig{});
    EXPECT_FALSE(empty == a.config);
}

} // namespace
} // namespace bitfusion
