/**
 * @file
 * Randomized property sweeps over the compiler and timing models:
 * for thousands of random GEMM shapes, the tiler must produce
 * feasible tiles whose traffic beats naive schedules, and the
 * systolic mapping must respect conservation and monotonicity
 * invariants.
 */

#include <gtest/gtest.h>

#include "src/common/prng.h"
#include "src/compiler/tiling.h"
#include "src/dnn/model_zoo.h"
#include "src/sim/systolic.h"

namespace bitfusion {
namespace {

FusionConfig
randomConfig(Prng &prng)
{
    static const unsigned widths[] = {1, 2, 4, 8, 16};
    FusionConfig c;
    c.aBits = widths[prng.below(5)];
    c.wBits = widths[prng.below(5)];
    c.aSigned = c.aBits > 1 && prng.below(2);
    c.wSigned = c.wBits > 1 && prng.below(2);
    return c;
}

class RandomGemmSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomGemmSweep, TilerInvariants)
{
    Prng prng(1000 + GetParam());
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    const Tiler tiler(cfg);
    for (int trial = 0; trial < 40; ++trial) {
        const std::uint64_t m = 1 + prng.below(8192);
        const std::uint64_t k = 1 + prng.below(16384);
        const std::uint64_t n = 1 + prng.below(65536);
        const FusionConfig bits = randomConfig(prng);
        const Tiling t = tiler.chooseTiles(m, k, n, bits, 8);

        // Feasibility.
        ASSERT_GE(t.mt, 1u);
        ASSERT_GE(t.kt, 1u);
        ASSERT_GE(t.nt, 1u);
        ASSERT_LE(t.mt, m);
        ASSERT_LE(t.kt, k);
        ASSERT_LE(t.nt, n);
        if (t.mt * t.kt > 1) {
            ASSERT_LE(t.mt * t.kt * bits.wBits, cfg.wbufBits / 2);
        }

        // The chosen tile's traffic never exceeds the trivial
        // (1,1,1)-ish fallback tile's traffic.
        const std::uint64_t w_bits = m * k * bits.wBits;
        const std::uint64_t i_bits = k * n * bits.aBits;
        const Tiling naive{1, std::min<std::uint64_t>(k, cfg.rows), 1};
        const LoopOrder order =
            tiler.chooseOrder(t, m, k, n, w_bits, i_bits, 0);
        const std::uint64_t chosen = Tiler::trafficBits(
            order, t, m, k, n, w_bits, i_bits, 0);
        const std::uint64_t fallback = std::min(
            Tiler::trafficBits(LoopOrder::InputStationary, naive, m, k,
                               n, w_bits, i_bits, 0),
            Tiler::trafficBits(LoopOrder::WeightStationary, naive, m, k,
                               n, w_bits, i_bits, 0));
        ASSERT_LE(chosen, fallback)
            << "m=" << m << " k=" << k << " n=" << n << " "
            << bits.toString();

        // Lower bound: every operand moves at least once.
        ASSERT_GE(chosen, std::min(w_bits, i_bits));
    }
}

TEST_P(RandomGemmSweep, SystolicInvariants)
{
    Prng prng(2000 + GetParam());
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    const SystolicArray arr(cfg);
    for (int trial = 0; trial < 40; ++trial) {
        const std::uint64_t m = 1 + prng.below(4096);
        const std::uint64_t k = 1 + prng.below(8192);
        const std::uint64_t n = 1 + prng.below(32768);
        const FusionConfig bits = randomConfig(prng);
        const SystolicTiming t = arr.map(m, k, n, n, bits);

        // Utilization in (0, 1]; cycles bounded below by ideal.
        ASSERT_GT(t.utilization, 0.0);
        ASSERT_LE(t.utilization, 1.0 + 1e-9);
        const double ideal =
            static_cast<double>(m) * k * n /
            static_cast<double>(arr.peakMacsPerCycle(bits));
        ASSERT_GE(static_cast<double>(t.cycles), ideal - 1.0);

        // Pass accounting covers the full GEMM.
        ASSERT_GE(t.mPasses * cfg.cols *
                      bits.fusedPEs(cfg.bricksPerUnit),
                  m);
        ASSERT_GE(t.kPasses * cfg.rows, k);

        // Doubling n at most doubles-ish the cycles and never
        // reduces utilization.
        const SystolicTiming t2 = arr.map(m, k, 2 * n, 2 * n, bits);
        ASSERT_GE(t2.cycles, t.cycles);
        ASSERT_LE(t2.cycles, 2 * t.cycles + cfg.rows + cfg.cols);
        ASSERT_GE(t2.utilization, t.utilization - 1e-9);
    }
}

TEST_P(RandomGemmSweep, WiderOperandsNeverIncreaseThroughput)
{
    Prng prng(3000 + GetParam());
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    const SystolicArray arr(cfg);
    for (int trial = 0; trial < 30; ++trial) {
        const std::uint64_t m = 1 + prng.below(2048);
        const std::uint64_t k = 1 + prng.below(4096);
        const std::uint64_t n = 1 + prng.below(8192);
        // Fix activations, widen weights monotonically.
        std::uint64_t prev = 0;
        for (unsigned wb : {1, 2, 4, 8, 16}) {
            FusionConfig c{4, wb, false, wb > 1};
            const SystolicTiming t = arr.map(m, k, n, n, c);
            ASSERT_GE(t.cycles, prev) << "wb=" << wb;
            prev = t.cycles;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGemmSweep, ::testing::Range(0, 8));

} // namespace
} // namespace bitfusion
