/**
 * @file
 * Golden-model tests: hand-computed cases and algebraic properties
 * of the fixed-point reference executor.
 */

#include <gtest/gtest.h>

#include "src/common/prng.h"
#include "src/dnn/model_zoo.h"
#include "src/dnn/reference.h"

namespace bitfusion {
namespace {

TEST(Tensor, ShapeAndIndexing)
{
    Tensor t(2, 3, 4);
    EXPECT_EQ(t.size(), 24u);
    t.at(1, 2, 3) = 42;
    EXPECT_EQ(t.at(1, 2, 3), 42);
    EXPECT_EQ(t[23], 42); // last element in CHW order
}

TEST(TensorDeath, OutOfRangePanics)
{
    Tensor t(2, 3, 4);
    EXPECT_DEATH(t.at(2, 0, 0), "out of range");
}

TEST(Tensor, FillRandomRespectsBitwidth)
{
    Prng prng(5);
    Tensor t(4, 4, 4);
    t.fillRandom(prng, 4, true);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_GE(t[i], -8);
        EXPECT_LE(t[i], 7);
    }
}

TEST(Reference, ConvIdentityKernel)
{
    // 1x1 kernel with weight 1 reproduces the input.
    const Layer l = Layer::conv("c", 1, 3, 3, 1, 1, 1, 0, zoo::cfg8x8());
    Tensor in(1, 3, 3);
    for (std::size_t i = 0; i < in.size(); ++i)
        in[i] = static_cast<std::int64_t>(i) + 1;
    Tensor w(static_cast<std::size_t>(1));
    w[0] = 1;
    const Tensor out = Reference::conv(l, in, w);
    for (std::size_t i = 0; i < in.size(); ++i)
        EXPECT_EQ(out[i], in[i]);
}

TEST(Reference, ConvHandComputed)
{
    // 1 channel 3x3 input, 2x2 kernel of ones, stride 1, no pad:
    // each output is the sum of a 2x2 window.
    Layer l = Layer::conv("c", 1, 3, 3, 1, 2, 1, 0, zoo::cfg8x8());
    Tensor in(1, 3, 3);
    std::int64_t v = 1;
    for (std::size_t i = 0; i < 9; ++i)
        in[i] = v++;
    Tensor w(static_cast<std::size_t>(4));
    for (int i = 0; i < 4; ++i)
        w[i] = 1;
    const Tensor out = Reference::conv(l, in, w);
    EXPECT_EQ(out.at(0, 0, 0), 1 + 2 + 4 + 5);
    EXPECT_EQ(out.at(0, 0, 1), 2 + 3 + 5 + 6);
    EXPECT_EQ(out.at(0, 1, 0), 4 + 5 + 7 + 8);
    EXPECT_EQ(out.at(0, 1, 1), 5 + 6 + 8 + 9);
}

TEST(Reference, ConvPaddingContributesZero)
{
    // 1x1 input, 3x3 kernel, pad 1: only the center tap fires.
    const Layer l = Layer::conv("c", 1, 1, 1, 1, 3, 1, 1, zoo::cfg8x8());
    Tensor in(1, 1, 1);
    in[0] = 7;
    Tensor w(static_cast<std::size_t>(9));
    for (int i = 0; i < 9; ++i)
        w[i] = i + 1; // center tap (1,1) has weight 5
    const Tensor out = Reference::conv(l, in, w);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 7 * 5);
}

TEST(Reference, ConvLinearity)
{
    // conv(2*x, w) == 2*conv(x, w).
    const Layer l = Layer::conv("c", 2, 5, 5, 3, 3, 1, 1, zoo::cfg8x8());
    Prng prng(77);
    Tensor in(2, 5, 5);
    in.fillRandom(prng, 6, false);
    Tensor w(l.weightCount());
    w.fillRandom(prng, 4, true);
    Tensor in2 = in;
    for (std::size_t i = 0; i < in2.size(); ++i)
        in2[i] *= 2;
    const Tensor a = Reference::conv(l, in, w);
    const Tensor b = Reference::conv(l, in2, w);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(b[i], 2 * a[i]);
}

TEST(Reference, GroupedConvEqualsPerGroupConv)
{
    // A 2-group conv equals two independent convs on channel halves.
    const Layer g2 =
        Layer::conv("c", 4, 5, 5, 6, 3, 1, 1, zoo::cfg8x8(), 2);
    Prng prng(78);
    Tensor in(4, 5, 5);
    in.fillRandom(prng, 4, false);
    Tensor w(g2.weightCount());
    w.fillRandom(prng, 4, true);
    const Tensor out = Reference::conv(g2, in, w);

    const Layer half =
        Layer::conv("h", 2, 5, 5, 3, 3, 1, 1, zoo::cfg8x8());
    for (unsigned g = 0; g < 2; ++g) {
        Tensor in_half(2, 5, 5);
        for (unsigned c = 0; c < 2; ++c)
            for (unsigned y = 0; y < 5; ++y)
                for (unsigned x = 0; x < 5; ++x)
                    in_half.at(c, y, x) = in.at(g * 2 + c, y, x);
        Tensor w_half(half.weightCount());
        for (std::size_t i = 0; i < w_half.size(); ++i)
            w_half[i] = w[g * w_half.size() + i];
        const Tensor out_half = Reference::conv(half, in_half, w_half);
        for (unsigned oc = 0; oc < 3; ++oc)
            for (unsigned y = 0; y < 5; ++y)
                for (unsigned x = 0; x < 5; ++x)
                    EXPECT_EQ(out.at(g * 3 + oc, y, x),
                              out_half.at(oc, y, x));
    }
}

TEST(Reference, FcHandComputed)
{
    const Layer l = Layer::fc("f", 3, 2, zoo::cfg8x8());
    Tensor in(static_cast<std::size_t>(3));
    in[0] = 1;
    in[1] = 2;
    in[2] = 3;
    Tensor w(static_cast<std::size_t>(6));
    // Row 0: [1, 0, -1]; row 1: [2, 2, 2].
    w[0] = 1; w[1] = 0; w[2] = -1;
    w[3] = 2; w[4] = 2; w[5] = 2;
    const Tensor out = Reference::fullyConnected(l, in, w);
    EXPECT_EQ(out[0], 1 - 3);
    EXPECT_EQ(out[1], 12);
}

TEST(Reference, MaxPoolHandComputed)
{
    const Layer l = Layer::pool("p", 1, 4, 4, 2, 2);
    Tensor in(1, 4, 4);
    std::int64_t v = 0;
    for (std::size_t i = 0; i < 16; ++i)
        in[i] = v++;
    const Tensor out = Reference::maxPool(l, in);
    EXPECT_EQ(out.at(0, 0, 0), 5);
    EXPECT_EQ(out.at(0, 0, 1), 7);
    EXPECT_EQ(out.at(0, 1, 0), 13);
    EXPECT_EQ(out.at(0, 1, 1), 15);
}

TEST(Reference, ReluClampsNegatives)
{
    Tensor t(static_cast<std::size_t>(4));
    t[0] = -5;
    t[1] = 0;
    t[2] = 5;
    t[3] = -1;
    const Tensor r = Reference::relu(t);
    EXPECT_EQ(r[0], 0);
    EXPECT_EQ(r[1], 0);
    EXPECT_EQ(r[2], 5);
    EXPECT_EQ(r[3], 0);
}

TEST(Reference, RequantizeShiftsAndClamps)
{
    Tensor t(static_cast<std::size_t>(3));
    t[0] = 1024;
    t[1] = 100000;
    t[2] = 3;
    const Tensor q = Reference::requantize(t, 8, 4);
    EXPECT_EQ(q[0], 64);
    EXPECT_EQ(q[1], 255); // clamped
    EXPECT_EQ(q[2], 0);
}

TEST(Reference, RnnCellHandComputed)
{
    const Layer l = Layer::rnn("r", 2, 2, zoo::cfg4x4());
    Tensor x(static_cast<std::size_t>(2)), h(static_cast<std::size_t>(2));
    x[0] = 1;
    x[1] = 2;
    h[0] = 3;
    h[1] = 4;
    // Wx = [[1,1],[0,-1]], Wh = [[2,0],[1,1]].
    Tensor w(static_cast<std::size_t>(8));
    w[0] = 1; w[1] = 1; w[2] = 0; w[3] = -1;
    w[4] = 2; w[5] = 0; w[6] = 1; w[7] = 1;
    const Tensor out = Reference::rnnCell(l, x, h, w);
    // h'[0] = relu(1+2 + 6+0) = 9; h'[1] = relu(0-2 + 3+4) = 5.
    EXPECT_EQ(out[0], 9);
    EXPECT_EQ(out[1], 5);
}

TEST(Reference, RnnCellAppliesRelu)
{
    const Layer l = Layer::rnn("r", 1, 1, zoo::cfg4x4());
    Tensor x(static_cast<std::size_t>(1)), h(static_cast<std::size_t>(1));
    x[0] = 1;
    h[0] = 0;
    Tensor w(static_cast<std::size_t>(2));
    w[0] = -5;
    w[1] = 0;
    EXPECT_EQ(Reference::rnnCell(l, x, h, w)[0], 0);
}

} // namespace
} // namespace bitfusion
