/**
 * @file
 * Million-request serving tests: P-squared streaming percentiles
 * against the exact nearest-rank values, bursty arrival generation
 * (MMPP / diurnal / flash crowd), admission-control shed accounting,
 * the shortest-round-trip trace format, active-window throughput,
 * and byte-parity of the contended scheduler goldens after the
 * queue-compaction and interning rewrite.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/prng.h"
#include "src/common/streaming_stats.h"
#include "src/core/artifact_cache.h"
#include "src/dnn/model_zoo.h"
#include "src/serve/serving_engine.h"
#include "src/sim/bitfusion_platform.h"

namespace bitfusion {
namespace {

using serve::ArrivalProcess;
using serve::InferenceRequest;
using serve::Percentiles;
using serve::ServeOptions;
using serve::ServeReport;
using serve::ServingEngine;
using serve::TraceSpec;

/** Small two-layer network so engine runs stay fast. */
Network
tinyNet(const std::string &name, unsigned out_c)
{
    Network net(name, {});
    net.add(Layer::fc("fc1", 64, out_c, zoo::cfg8x8()));
    net.add(Layer::fc("fc2", out_c, 16, zoo::cfg4x4()));
    return net;
}

/** Catalog entry whose quantized and baseline variants coincide. */
zoo::Benchmark
tinyBench(const std::string &name, unsigned out_c)
{
    zoo::Benchmark bench;
    bench.name = name;
    bench.quantized = tinyNet(name, out_c);
    bench.baseline = bench.quantized;
    return bench;
}

PlatformSpec
bfSpec()
{
    return bitfusionPlatform(AcceleratorConfig::eyerissMatched45(), "bf");
}

/** Engine over tiny networks with a private cache. */
ServingEngine
tinyEngine(ArtifactCache &cache, ServeOptions opts)
{
    opts.threads = 1;
    if (opts.maxBatch == 0)
        opts.maxBatch = 4;
    opts.cache = &cache;
    ServingEngine engine(bfSpec(), opts);
    engine.setCatalog({tinyBench("netA", 64), tinyBench("netB", 128)});
    return engine;
}

InferenceRequest
req(std::uint64_t id, const std::string &network, unsigned samples,
    double arrivalUs, double deadlineUs = 0.0)
{
    InferenceRequest r;
    r.id = id;
    r.network = network;
    r.samples = samples;
    r.arrivalUs = arrivalUs;
    r.deadlineUs = deadlineUs;
    return r;
}

/**
 * Assert the streaming estimate lands within the documented bound of
 * the exact nearest-rank value: 2% relative plus a small absolute
 * floor (src/common/streaming_stats.h).
 */
void
expectWithinBounds(double estimate, double exact, double absFloor)
{
    EXPECT_NEAR(estimate, exact, 0.02 * std::abs(exact) + absFloor)
        << "estimate " << estimate << " vs exact " << exact;
}

/** Exact-vs-streaming comparison over one generated sample. */
template <typename Draw>
void
checkStreamingAccuracy(Draw &&draw, std::size_t n, double absFloor)
{
    StreamingSummary stream;
    std::vector<double> values;
    values.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = draw();
        stream.add(x);
        values.push_back(x);
    }
    const Percentiles exact = serve::percentiles(values);
    ASSERT_EQ(stream.count(), n);
    EXPECT_NEAR(stream.mean(), exact.mean,
                1e-9 * std::abs(exact.mean));
    EXPECT_DOUBLE_EQ(stream.max(), exact.max);
    expectWithinBounds(stream.p50(), exact.p50, absFloor);
    expectWithinBounds(stream.p95(), exact.p95, absFloor);
    expectWithinBounds(stream.p99(), exact.p99, absFloor);
}

TEST(StreamingStats, ExactNearestRankUpToFiveObservations)
{
    // Until the markers prime, value() must equal serve::percentiles
    // over the prefix -- the estimator degrades gracefully on tiny
    // runs instead of reporting half-initialized markers.
    const double sample[] = {42.0, 7.0, 99.0, 1.0, 60.0};
    for (double q : {0.5, 0.95, 0.99}) {
        P2Quantile estimator(q);
        std::vector<double> prefix;
        EXPECT_DOUBLE_EQ(estimator.value(), 0.0);
        for (double x : sample) {
            estimator.add(x);
            prefix.push_back(x);
            std::vector<double> sorted = prefix;
            std::sort(sorted.begin(), sorted.end());
            std::size_t idx = static_cast<std::size_t>(
                std::ceil(q * static_cast<double>(sorted.size())));
            if (idx == 0)
                idx = 1;
            EXPECT_DOUBLE_EQ(estimator.value(), sorted[idx - 1])
                << "q=" << q << " after " << prefix.size();
        }
    }
}

TEST(StreamingStats, UniformWithinDocumentedBounds)
{
    Prng prng(11);
    checkStreamingAccuracy([&] { return 1000.0 * prng.nextDouble(); },
                           20000, 2.0);
}

TEST(StreamingStats, ExponentialWithinDocumentedBounds)
{
    Prng prng(12);
    checkStreamingAccuracy([&] { return prng.nextExponential(100.0); },
                           20000, 2.0);
}

TEST(StreamingStats, BimodalWithinDocumentedBounds)
{
    // 80% fast mode near 100 us, 20% slow mode near 950 us -- the
    // shape a latency distribution with a saturated tail takes.
    Prng prng(13);
    checkStreamingAccuracy(
        [&] {
            if (prng.nextDouble() < 0.8)
                return 50.0 + 100.0 * prng.nextDouble();
            return 900.0 + 100.0 * prng.nextDouble();
        },
        20000, 5.0);
}

TEST(StreamingStats, DeterministicForFixedOrder)
{
    const auto run = [] {
        StreamingSummary s;
        Prng prng(5);
        for (int i = 0; i < 5000; ++i)
            s.add(prng.nextExponential(40.0));
        return s;
    };
    const StreamingSummary a = run();
    const StreamingSummary b = run();
    EXPECT_DOUBLE_EQ(a.p50(), b.p50());
    EXPECT_DOUBLE_EQ(a.p95(), b.p95());
    EXPECT_DOUBLE_EQ(a.p99(), b.p99());
    EXPECT_DOUBLE_EQ(a.mean(), b.mean());
    EXPECT_DOUBLE_EQ(a.max(), b.max());
}

// --------------------------------------------------- streaming engine

TEST(ServeStreaming, MatchesExactRunWithinBounds)
{
    TraceSpec spec;
    spec.seed = 21;
    spec.requests = 600;
    spec.meanGapUs = 400.0;
    spec.networks = {"netA", "netB"};

    ArtifactCache cacheExact, cacheStream;
    ServeOptions exactOpts;
    ServingEngine exact = tinyEngine(cacheExact, exactOpts);
    ServeOptions streamOpts;
    streamOpts.streamingStats = true;
    streamOpts.retainRecords = false;
    ServingEngine streaming = tinyEngine(cacheStream, streamOpts);

    const auto trace = serve::syntheticTrace(spec);
    const ServeReport exactReport = exact.run(trace);
    const ServeReport streamReport = streaming.run(trace);

    // Everything except the percentile estimates is exact.
    EXPECT_TRUE(streamReport.streamingStats);
    EXPECT_FALSE(exactReport.streamingStats);
    EXPECT_TRUE(streamReport.requests.empty());
    EXPECT_TRUE(streamReport.batches.empty());
    EXPECT_EQ(streamReport.requestCount, exactReport.requestCount);
    EXPECT_EQ(streamReport.batchCount, exactReport.batchCount);
    EXPECT_EQ(streamReport.totalSamples, exactReport.totalSamples);
    EXPECT_EQ(streamReport.deadlineMisses, exactReport.deadlineMisses);
    EXPECT_DOUBLE_EQ(streamReport.energyJ, exactReport.energyJ);
    EXPECT_DOUBLE_EQ(streamReport.makespanUs, exactReport.makespanUs);

    const Percentiles pe = exactReport.latencyUs();
    const Percentiles ps = streamReport.latencyUs();
    EXPECT_NEAR(ps.mean, pe.mean, 1e-9 * std::abs(pe.mean));
    EXPECT_DOUBLE_EQ(ps.max, pe.max);
    // 600 observations is far below the 2e4 the 2% bound is
    // documented at; allow 5% + floor here.
    const auto close = [](double est, double ref) {
        EXPECT_NEAR(est, ref, 0.05 * std::abs(ref) + 25.0)
            << est << " vs " << ref;
    };
    close(ps.p50, pe.p50);
    close(ps.p95, pe.p95);
    close(ps.p99, pe.p99);
}

TEST(ServeStreaming, DeterministicAcrossThreadsAndReruns)
{
    TraceSpec spec;
    spec.seed = 8;
    spec.requests = 300;
    spec.meanGapUs = 500.0;
    spec.networks = {"netA", "netB"};
    const auto trace = serve::syntheticTrace(spec);

    const auto runWith = [&](unsigned threads) {
        ArtifactCache cache;
        ServeOptions opts;
        opts.streamingStats = true;
        opts.retainRecords = false;
        opts.maxBatch = 4;
        opts.cache = &cache;
        opts.threads = threads;
        ServingEngine engine(bfSpec(), opts);
        engine.setCatalog(
            {tinyBench("netA", 64), tinyBench("netB", 128)});
        return engine.run(trace).json();
    };
    const std::string serial = runWith(1);
    EXPECT_EQ(runWith(8), serial);
    EXPECT_EQ(runWith(1), serial);
}

// -------------------------------------------------- admission control

TEST(ServeAdmission, DepthBoundShedsAndCountsSeparately)
{
    ArtifactCache cache;
    ServeOptions opts;
    opts.maxQueueDepth = 4;
    ServingEngine engine = tinyEngine(cache, opts);
    std::vector<InferenceRequest> trace;
    for (std::uint64_t i = 0; i < 8; ++i)
        trace.push_back(req(i, "netA", 1, 0.0));

    const ServeReport report = engine.run(trace);
    EXPECT_TRUE(report.admissionControl);
    EXPECT_EQ(report.requestCount, 4u);
    EXPECT_EQ(report.shedRequests, 4u);
    EXPECT_EQ(report.shedByDepth, 4u);
    EXPECT_EQ(report.shedByDeadline, 0u);
    EXPECT_EQ(report.deadlineMisses, 0u);
    // Served records never include shed requests.
    ASSERT_EQ(report.requests.size(), 4u);
    for (const auto &r : report.requests)
        EXPECT_LT(r.request.id, 4u);
    EXPECT_NE(report.json().find("\"shed\": 4"), std::string::npos);
}

TEST(ServeAdmission, UnmeetableDeadlineShedsInsteadOfMissing)
{
    // B's deadline (50 us) already passed when it arrives (100 us):
    // a guaranteed miss. Without shedUnmeetable it serves and counts
    // as a miss; with it, admission control sheds it.
    const std::vector<InferenceRequest> trace = {
        req(0, "netA", 1, 0.0),
        req(1, "netA", 1, 100.0, 50.0),
    };

    ArtifactCache cacheMiss;
    ServeOptions missOpts;
    ServingEngine missing = tinyEngine(cacheMiss, missOpts);
    const ServeReport missed = missing.run(trace);
    EXPECT_FALSE(missed.admissionControl);
    EXPECT_EQ(missed.requestCount, 2u);
    EXPECT_EQ(missed.deadlineMisses, 1u);
    EXPECT_EQ(missed.shedRequests, 0u);
    EXPECT_EQ(missed.json().find("\"shed\""), std::string::npos);

    ArtifactCache cacheShed;
    ServeOptions shedOpts;
    shedOpts.shedUnmeetable = true;
    ServingEngine shedding = tinyEngine(cacheShed, shedOpts);
    const ServeReport shed = shedding.run(trace);
    EXPECT_TRUE(shed.admissionControl);
    EXPECT_EQ(shed.requestCount, 1u);
    EXPECT_EQ(shed.deadlineMisses, 0u);
    EXPECT_EQ(shed.shedRequests, 1u);
    EXPECT_EQ(shed.shedByDeadline, 1u);
    EXPECT_EQ(shed.shedByDepth, 0u);
}

TEST(ServeAdmission, MeetableDeadlineIsNotShed)
{
    // An idle replica can dispatch at arrival, so a future deadline
    // is meetable and the request must be admitted even if the
    // dispatch later turns out tight.
    ArtifactCache cache;
    ServeOptions opts;
    opts.shedUnmeetable = true;
    ServingEngine engine = tinyEngine(cache, opts);
    const ServeReport report =
        engine.run({req(0, "netA", 1, 0.0, 500000.0)});
    EXPECT_EQ(report.requestCount, 1u);
    EXPECT_EQ(report.shedRequests, 0u);
}

TEST(ServeAdmission, ClosedLoopDepthShedIsFatal)
{
    ArtifactCache cache;
    ServeOptions opts;
    opts.maxQueueDepth = 2;
    ServingEngine engine = tinyEngine(cache, opts);
    serve::ClosedLoopSpec load;
    load.clients = 4;
    load.requests = 8;
    load.networks = {"netA"};
    EXPECT_DEATH(engine.runClosedLoop(load),
                 "cannot shed by queue depth");
}

TEST(ServeAdmission, ClosedLoopDeadlineShedReissuesAndTerminates)
{
    // Impossible slack: every request sheds at absorption, the shed
    // client reissues with a fresh deadline at the shed time, and the
    // issued quota still bounds the run. Served + shed covers the
    // whole quota.
    ArtifactCache cache;
    ServeOptions opts;
    opts.shedUnmeetable = true;
    ServingEngine engine = tinyEngine(cache, opts);
    serve::ClosedLoopSpec load;
    load.clients = 2;
    load.requests = 12;
    load.networks = {"netA"};
    load.deadlineSlackUs = 1.0;
    const ServeReport report = engine.runClosedLoop(load);
    EXPECT_TRUE(report.admissionControl);
    EXPECT_EQ(report.requestCount + report.shedRequests, 12u);
    EXPECT_EQ(report.shedByDepth, 0u);
    EXPECT_EQ(report.shedRequests, report.shedByDeadline);
}

// ------------------------------------------------------ bursty traces

TEST(ServeTrace, BurstyFlagTracksTheKnobs)
{
    TraceSpec spec;
    EXPECT_FALSE(spec.bursty());
    // Dormant MMPP knobs do not make a Poisson spec bursty.
    spec.burstRateMultiplier = 99.0;
    spec.meanBurstUs = 1.0;
    EXPECT_FALSE(spec.bursty());
    spec.process = ArrivalProcess::Mmpp;
    EXPECT_TRUE(spec.bursty());
    spec = TraceSpec{};
    spec.diurnalPeriodUs = 1000.0;
    spec.diurnalAmplitude = 0.5;
    EXPECT_TRUE(spec.bursty());
    spec = TraceSpec{};
    spec.flashDurationUs = 100.0;
    spec.flashMultiplier = 4.0;
    EXPECT_TRUE(spec.bursty());
}

TEST(ServeTrace, DormantKnobsPreserveTheLegacyPoissonStream)
{
    TraceSpec legacy;
    legacy.seed = 3;
    legacy.requests = 500;
    legacy.meanGapUs = 700.0;
    legacy.deadlineSlackUs = 9000.0;

    TraceSpec knobs = legacy;
    knobs.burstRateMultiplier = 17.0;
    knobs.meanBurstUs = 5.0;
    knobs.meanCalmUs = 5.0;
    knobs.flashMultiplier = 50.0; // no window -> dormant

    EXPECT_EQ(serve::formatTrace(serve::syntheticTrace(knobs)),
              serve::formatTrace(serve::syntheticTrace(legacy)));
}

TEST(ServeTrace, MmppIsSeededAndArrivalOrdered)
{
    TraceSpec spec;
    spec.seed = 19;
    spec.requests = 2000;
    spec.meanGapUs = 500.0;
    spec.process = ArrivalProcess::Mmpp;
    spec.burstRateMultiplier = 6.0;
    spec.meanBurstUs = 10000.0;
    spec.meanCalmUs = 50000.0;

    const auto trace = serve::syntheticTrace(spec);
    ASSERT_EQ(trace.size(), 2000u);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].arrivalUs, trace[i - 1].arrivalUs);
    EXPECT_EQ(serve::formatTrace(serve::syntheticTrace(spec)),
              serve::formatTrace(trace));

    // The modulated stream is a different draw sequence than the
    // constant-rate one.
    TraceSpec poisson = spec;
    poisson.process = ArrivalProcess::Poisson;
    EXPECT_NE(serve::formatTrace(serve::syntheticTrace(poisson)),
              serve::formatTrace(trace));
}

TEST(ServeTrace, FlashCrowdConcentratesArrivals)
{
    TraceSpec calm;
    calm.seed = 4;
    calm.requests = 2000;
    calm.meanGapUs = 100.0;

    TraceSpec flash = calm;
    flash.flashStartUs = 0.0;
    flash.flashDurationUs = 50000.0;
    flash.flashMultiplier = 10.0;

    const auto countInWindow = [](const TraceSpec &spec) {
        std::size_t inWindow = 0;
        for (const auto &r : serve::syntheticTrace(spec))
            if (r.arrivalUs < 50000.0)
                ++inWindow;
        return inWindow;
    };
    const std::size_t base = countInWindow(calm);
    const std::size_t crowded = countInWindow(flash);
    // A 10x window should pull several times the baseline mass
    // forward; assert a loose 2x so the test is not seed-brittle.
    EXPECT_GE(crowded, 2 * base);
}

TEST(ServeTrace, DiurnalEnvelopeIsDeterministicAndOrdered)
{
    TraceSpec spec;
    spec.seed = 6;
    spec.requests = 1500;
    spec.meanGapUs = 200.0;
    spec.diurnalPeriodUs = 100000.0;
    spec.diurnalAmplitude = 0.9;

    const auto trace = serve::syntheticTrace(spec);
    ASSERT_EQ(trace.size(), 1500u);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].arrivalUs, trace[i - 1].arrivalUs);
    EXPECT_EQ(serve::formatTrace(serve::syntheticTrace(spec)),
              serve::formatTrace(trace));
}

TEST(ServeTrace, RejectsInvalidBurstKnobs)
{
    TraceSpec mmpp;
    mmpp.process = ArrivalProcess::Mmpp;
    mmpp.burstRateMultiplier = 0.5;
    EXPECT_DEATH(serve::syntheticTrace(mmpp), "must be >= 1");

    TraceSpec dwell;
    dwell.process = ArrivalProcess::Mmpp;
    dwell.meanBurstUs = 0.0;
    EXPECT_DEATH(serve::syntheticTrace(dwell),
                 "dwell time means must be positive");

    TraceSpec diurnal;
    diurnal.diurnalPeriodUs = 1000.0;
    diurnal.diurnalAmplitude = 1.0;
    EXPECT_DEATH(serve::syntheticTrace(diurnal),
                 "amplitude must lie in \\[0, 1\\)");

    TraceSpec flash;
    flash.flashDurationUs = 100.0;
    flash.flashMultiplier = 0.0;
    EXPECT_DEATH(serve::syntheticTrace(flash),
                 "flash crowd multiplier must be >= 1");
}

TEST(ServeTrace, TenThousandRequestsRoundTripExactly)
{
    // The shortest-round-trip format must reproduce every double
    // bit-for-bit through format -> parse, and reformatting the
    // parsed trace must be byte-identical.
    TraceSpec spec;
    spec.seed = 77;
    spec.requests = 10000;
    spec.meanGapUs = 333.3;
    spec.deadlineSlackUs = 12345.6789;
    spec.process = ArrivalProcess::Mmpp;
    spec.burstRateMultiplier = 5.0;

    const auto trace = serve::syntheticTrace(spec);
    ASSERT_EQ(trace.size(), 10000u);
    const std::string text = serve::formatTrace(trace);
    const auto parsed = serve::parseTrace(text);
    ASSERT_EQ(parsed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(parsed[i].network, trace[i].network);
        EXPECT_EQ(parsed[i].samples, trace[i].samples);
        EXPECT_DOUBLE_EQ(parsed[i].arrivalUs, trace[i].arrivalUs);
        EXPECT_DOUBLE_EQ(parsed[i].deadlineUs, trace[i].deadlineUs);
    }
    EXPECT_EQ(serve::formatTrace(parsed), text);
}

// --------------------------------------------- active-window throughput

TEST(ServeWindow, ActiveWindowDropsTheLeadingIdleTime)
{
    // Same trace, offset one second: the virtual-time-0 definition
    // dilutes throughput with the idle lead-in; the active window
    // does not.
    const std::vector<InferenceRequest> trace = {
        req(0, "netA", 1, 1000000.0),
        req(1, "netA", 1, 1000050.0),
    };

    ArtifactCache cacheOff, cacheOn;
    ServeOptions off;
    ServingEngine plain = tinyEngine(cacheOff, off);
    ServeOptions on = off;
    on.activeWindowStats = true;
    ServingEngine windowed = tinyEngine(cacheOn, on);

    const ServeReport whole = plain.run(trace);
    const ServeReport active = windowed.run(trace);
    EXPECT_FALSE(whole.activeWindow);
    EXPECT_TRUE(active.activeWindow);
    EXPECT_DOUBLE_EQ(whole.throughputWindowUs(), whole.makespanUs);
    EXPECT_DOUBLE_EQ(active.firstArrivalUs, 1000000.0);
    EXPECT_DOUBLE_EQ(active.throughputWindowUs(),
                     active.makespanUs - 1000000.0);
    EXPECT_GT(active.requestsPerSec(), whole.requestsPerSec());
    // The gate keeps the default report format untouched.
    EXPECT_EQ(whole.json().find("active_window"), std::string::npos);
    EXPECT_NE(active.json().find("\"active_window_us\""),
              std::string::npos);
}

// ------------------------------------------------- contended goldens

std::string
readGolden(const char *name)
{
    std::ifstream in(std::string(BITFUSION_SOURCE_DIR) +
                     "/tests/golden/" + name);
    EXPECT_TRUE(in.good()) << name;
    std::stringstream text;
    text << in.rdbuf();
    std::string expected = text.str();
    EXPECT_FALSE(expected.empty()) << name;
    if (!expected.empty() && expected.back() == '\n')
        expected.pop_back(); // the CLI appends one newline
    return expected;
}

TEST(ServeParity, EdfContendedReportMatchesTheGolden)
{
    // The exact workload behind tests/golden/serve_edf_contended.json
    // (bitfusion_serve --replicas 2 --scheduler edf --requests 400
    // --seed 13 --mean-gap-us 300 --deadline-us 15000 --per-request):
    // locks the queue-compaction and interning rewrite as
    // behavior-preserving under contention.
    TraceSpec traceSpec;
    traceSpec.seed = 13;
    traceSpec.requests = 400;
    traceSpec.meanGapUs = 300.0;
    traceSpec.deadlineSlackUs = 15000.0;

    // A private cache reproduces the CLI's cold process: the
    // report's compile/hit counters are part of the golden.
    ArtifactCache cache;
    ServeOptions opts;
    opts.cache = &cache;
    opts.threads = 1;
    opts.replicas = 2;
    opts.scheduler = "edf";
    ServingEngine engine(PlatformRegistry::builtin().parse("bitfusion"),
                         opts);
    const ServeReport report = engine.run(serve::syntheticTrace(traceSpec));
    EXPECT_EQ(report.json(true), readGolden("serve_edf_contended.json"));
}

TEST(ServeParity, LookaheadContendedReportMatchesTheGolden)
{
    // tests/golden/serve_lookahead_contended.json: --replicas 2
    // --scheduler lookahead --max-wait-us 800 --requests 400
    // --seed 13 --mean-gap-us 300 --per-request.
    TraceSpec traceSpec;
    traceSpec.seed = 13;
    traceSpec.requests = 400;
    traceSpec.meanGapUs = 300.0;

    ArtifactCache cache;
    ServeOptions opts;
    opts.cache = &cache;
    opts.threads = 1;
    opts.replicas = 2;
    opts.scheduler = "lookahead";
    opts.maxWaitUs = 800.0;
    ServingEngine engine(PlatformRegistry::builtin().parse("bitfusion"),
                         opts);
    const ServeReport report = engine.run(serve::syntheticTrace(traceSpec));
    EXPECT_EQ(report.json(true),
              readGolden("serve_lookahead_contended.json"));
}

} // namespace
} // namespace bitfusion
