/**
 * @file
 * Compiled-plan vs reference-walk interpreter parity.
 *
 * The ExecPlan fast path (src/isa/exec_plan.h) must be bit-identical
 * to Interpreter::runLegacy in everything observable -- final memory
 * contents and every InterpStats field (including bufHighWater and
 * bitBrickOps, which the plan derives from static analysis and the
 * memoized product table instead of executing the slow way) -- on
 * EVERY dispatch tier: the portable switch loop, computed-goto
 * threaded code, and the specialized program with the fused MAC-nest
 * kernels (src/isa/dispatch.h). This
 * suite checks that across the model zoo (shrunken to interpreter
 * scale, quantized and baseline variants), across randomized
 * compiler-emitted conv/fc blocks on every paper bitwidth config,
 * on randomized hand-built blocks that stress nest shapes the
 * compiler never emits (sparse loop ids, set-rows DMA, pooling and
 * activation ops at odd levels), and on a zero-trip nest (reachable
 * through decoded word streams, which bypass the builder's
 * nonzero-iterations assert). It also covers the memoized product
 * table directly and the plan cache.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "src/arch/decompose.h"
#include "src/common/prng.h"
#include "src/compiler/codegen.h"
#include "src/core/artifact_cache.h"
#include "src/dnn/model_zoo.h"
#include "src/dnn/tensor.h"
#include "src/isa/exec_plan.h"
#include "src/isa/interpreter.h"
#include "src/isa/memory.h"

namespace bitfusion {
namespace {

AcceleratorConfig
batch1Config()
{
    AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    cfg.batch = 1;
    return cfg;
}

/** Compare every InterpStats field with a named message. */
void
expectStatsEqual(const InterpStats &legacy, const InterpStats &plan,
                 const std::string &what)
{
    for (unsigned b = 0; b < 3; ++b) {
        EXPECT_EQ(legacy.dramLoadElems[b], plan.dramLoadElems[b])
            << what << " dramLoadElems[" << b << "]";
        EXPECT_EQ(legacy.dramStoreElems[b], plan.dramStoreElems[b])
            << what << " dramStoreElems[" << b << "]";
        EXPECT_EQ(legacy.bufReads[b], plan.bufReads[b])
            << what << " bufReads[" << b << "]";
        EXPECT_EQ(legacy.bufWrites[b], plan.bufWrites[b])
            << what << " bufWrites[" << b << "]";
        EXPECT_EQ(legacy.bufHighWater[b], plan.bufHighWater[b])
            << what << " bufHighWater[" << b << "]";
    }
    EXPECT_EQ(legacy.macs, plan.macs) << what << " macs";
    EXPECT_EQ(legacy.bitBrickOps, plan.bitBrickOps)
        << what << " bitBrickOps";
    EXPECT_EQ(legacy.auxOps, plan.auxOps) << what << " auxOps";
    EXPECT_TRUE(legacy == plan) << what << " InterpStats operator==";
}

void
expectMemoryEqual(const MemoryModel &a, const MemoryModel &b,
                  const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::uint64_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.read(i), b.read(i)) << what << " address " << i;
}

constexpr DispatchTier kAllTiers[kDispatchTierCount] = {
    DispatchTier::Switch, DispatchTier::Threaded,
    DispatchTier::Specialized};

/**
 * Run one block through the reference walk and through the compiled
 * plan on every dispatch tier, each on its own copy of @p seed; all
 * four executions must agree on stats and memory bit-for-bit.
 */
void
checkBlockParity(const InstructionBlock &block, const MemoryModel &seed,
                 const std::string &what)
{
    MemoryModel legacyMem = seed;
    Interpreter legacy(legacyMem);
    legacy.runLegacy(block);

    const auto plan = ExecPlan::build(block);
    for (DispatchTier tier : kAllTiers) {
        const std::string where =
            what + " [" + dispatchTierName(tier) + "]";
        MemoryModel planMem = seed;
        Interpreter interp(planMem);
        interp.run(*plan, tier);
        expectStatsEqual(legacy.stats(), interp.stats(), where);
        expectMemoryEqual(legacyMem, planMem, where);
    }
}

// ------------------------------------------------ model-zoo parity

/**
 * Shrink a zoo layer to interpreter scale while preserving its kind,
 * bitwidths, signedness, kernel, stride, padding, and groups -- the
 * properties the lowering actually branches on. Channel counts stay
 * multiples of the group count so the layer remains valid.
 */
Layer
shrinkLayer(const Layer &l)
{
    Layer s = l;
    const unsigned g = std::max(1u, l.groups);
    auto capChannels = [g](unsigned c, unsigned cap) {
        unsigned limit = std::max(g, cap - cap % g);
        unsigned v = std::min(c, limit);
        v -= v % g;
        return std::max(v, g);
    };
    switch (l.kind) {
      case LayerKind::Conv:
        s.inC = capChannels(l.inC, 8);
        s.outC = capChannels(l.outC, 8);
        s.inH = std::min(l.inH, std::max(l.kH, 6u));
        s.inW = std::min(l.inW, std::max(l.kW, 6u));
        break;
      case LayerKind::FullyConnected:
      case LayerKind::Rnn:
      case LayerKind::Lstm:
        s.inC = std::min(l.inC, 48u);
        s.outC = std::min(l.outC, 24u);
        break;
      case LayerKind::Pool:
        s.inC = std::min(l.inC, 6u);
        s.inH = std::min(l.inH, std::max(l.kH * 2, 8u));
        s.inW = std::min(l.inW, std::max(l.kW * 2, 8u));
        break;
      case LayerKind::Activation:
        s.inC = std::min(l.inC, 4u);
        s.inH = std::min(l.inH, 6u);
        s.inW = std::min(l.inW, 6u);
        break;
    }
    return s;
}

Network
shrinkNetwork(const Network &net)
{
    std::vector<Layer> layers;
    for (const Layer &l : net.layers())
        layers.push_back(shrinkLayer(l));
    return Network(net.name() + "-small", layers);
}

/**
 * Memory image for a compiled network: every block's input and
 * weight regions filled with representable random values (the
 * output regions stay zero; MAC blocks preload them as initial
 * accumulators, which needs no representability).
 */
MemoryModel
seedMemory(const CompiledNetwork &cn, unsigned seed)
{
    // The plans' static memory-extent analysis bounds every address
    // any block can touch (the gemm view of RNN/LSTM blocks reads
    // and writes more than the per-layer element counts suggest).
    std::uint64_t total = 0;
    for (const LayerSchedule &sched : cn.schedules)
        total = std::max(
            total, ExecPlan::build(sched.block)->memoryExtent());

    MemoryModel mem;
    mem.allocate(total);
    Prng prng(seed);
    for (const LayerSchedule &sched : cn.schedules) {
        const Layer &l = sched.layer;
        const auto &base = sched.block.baseAddr;
        const std::uint64_t inElems =
            l.kind == LayerKind::Conv
                ? static_cast<std::uint64_t>(l.inC) *
                      (l.inH + 2 * l.pad) * (l.inW + 2 * l.pad)
                : l.inputCount();
        for (std::uint64_t i = 0; i < inElems; ++i)
            mem.write(base[0] + i,
                      l.bits.aSigned ? prng.nextSigned(l.bits.aBits)
                                     : prng.nextUnsigned(l.bits.aBits));
        if (sched.usesMacArray) {
            for (std::uint64_t i = 0; i < l.weightCount(); ++i)
                mem.write(base[2] + i,
                          l.bits.wSigned
                              ? prng.nextSigned(l.bits.wBits)
                              : prng.nextUnsigned(l.bits.wBits));
        }
    }
    return mem;
}

TEST(PlanParity, ModelZooStatsAndMemoryIdentical)
{
    const Compiler compiler(batch1Config());
    unsigned seed = 100;
    for (const zoo::Benchmark &bench : zoo::all()) {
        for (const Network *variant :
             {&bench.quantized, &bench.baseline}) {
            const Network net = shrinkNetwork(*variant);
            const CompiledNetwork cn = compiler.compile(net);
            const MemoryModel seedMem = seedMemory(cn, ++seed);

            MemoryModel legacyMem = seedMem;
            Interpreter legacy(legacyMem);
            for (const LayerSchedule &sched : cn.schedules)
                legacy.runLegacy(sched.block);
            // The zoo exercises both MAC paths: memoized (<= 8x8)
            // and exact 16-bit fallback.
            EXPECT_GT(legacy.stats().macs, 0u) << net.name();

            for (DispatchTier tier : kAllTiers) {
                const std::string where = net.name() + " [" +
                                          dispatchTierName(tier) + "]";
                MemoryModel planMem = seedMem;
                Interpreter plan(planMem);
                for (const LayerSchedule &sched : cn.schedules)
                    plan.run(*ExecPlan::build(sched.block), tier);
                expectStatsEqual(legacy.stats(), plan.stats(), where);
                expectMemoryEqual(legacyMem, planMem, where);
            }
        }
    }
}

// --------------------------------------- compiler-emitted blocks

TEST(PlanParity, RandomConvBlocksAllConfigs)
{
    const Compiler compiler(batch1Config());
    const FusionConfig cfgs[] = {zoo::cfg1x1(), zoo::cfg2x2(),
                                 zoo::cfg4x1(), zoo::cfg4x4(),
                                 zoo::cfg8x8(), zoo::cfg16x16()};
    unsigned seed = 500;
    for (const FusionConfig &cfg : cfgs) {
        const Layer layer =
            Layer::conv("c", 4, 7, 7, 6, 3, 1, 1, cfg, 2);
        Prng prng(++seed);
        Tensor input(layer.inC, layer.inH, layer.inW);
        input.fillRandom(prng, cfg.aBits, cfg.aSigned);
        Tensor weights(layer.weightCount());
        weights.fillRandom(prng, cfg.wBits, cfg.wSigned);

        MemoryModel mem;
        BlockBases bases;
        const unsigned hp = layer.inH + 2 * layer.pad;
        const unsigned wp = layer.inW + 2 * layer.pad;
        bases.input = mem.allocate(
            static_cast<std::size_t>(layer.inC) * hp * wp);
        for (unsigned c = 0; c < layer.inC; ++c)
            for (unsigned y = 0; y < layer.inH; ++y)
                for (unsigned x = 0; x < layer.inW; ++x)
                    mem.write(bases.input +
                                  (static_cast<std::uint64_t>(c) * hp +
                                   (y + layer.pad)) *
                                      wp +
                                  (x + layer.pad),
                              input.at(c, y, x));
        bases.weights = mem.allocate(weights.size());
        for (std::size_t i = 0; i < weights.size(); ++i)
            mem.write(bases.weights + i, weights[i]);
        bases.output = mem.allocate(layer.outputCount());

        ActFusion act;
        act.enabled = true;
        act.shift = 3;
        act.outBits = 8;
        checkBlockParity(compiler.emitConv(layer, bases, 3, act), mem,
                         "conv " + cfg.toString());
    }
}

TEST(PlanParity, RandomFcBlocksAllConfigs)
{
    const Compiler compiler(batch1Config());
    const FusionConfig cfgs[] = {zoo::cfg1x1(), zoo::cfg2x2(),
                                 zoo::cfg4x1(), zoo::cfg4x4(),
                                 zoo::cfg8x8(), zoo::cfg16x16()};
    unsigned seed = 600;
    for (const FusionConfig &cfg : cfgs) {
        const Layer layer = Layer::fc("f", 24, 10, cfg);
        Prng prng(++seed);
        Tensor input(static_cast<std::size_t>(layer.inC));
        input.fillRandom(prng, cfg.aBits, cfg.aSigned);
        Tensor weights(layer.weightCount());
        weights.fillRandom(prng, cfg.wBits, cfg.wSigned);

        MemoryModel mem;
        BlockBases bases;
        bases.input = mem.allocate(input.size());
        for (std::size_t i = 0; i < input.size(); ++i)
            mem.write(bases.input + i, input[i]);
        bases.weights = mem.allocate(weights.size());
        for (std::size_t i = 0; i < weights.size(); ++i)
            mem.write(bases.weights + i, weights[i]);
        bases.output = mem.allocate(layer.outC);

        // The 2-D set-rows weight DMA makes this the interesting
        // case for the plan's row handling.
        checkBlockParity(compiler.emitFc(layer, bases, 5, 8), mem,
                         "fc " + cfg.toString());
    }
}

// --------------------------------------------- randomized blocks

/**
 * Build a random valid block the compiler would never emit: sparse
 * loop ids, random per-level placement of transfers, set-rows 2-D
 * weight DMA, and a MAC or pooling body. Every rd-buf is covered by
 * a prior ld-mem fill, so both interpreter paths stay within their
 * bounds contracts.
 */
InstructionBlock
fuzzBlock(Prng &prng, MemoryModel &mem)
{
    const FusionConfig cfgs[] = {zoo::cfg1x1(), zoo::cfg2x2(),
                                 zoo::cfg4x1(), zoo::cfg4x4(),
                                 zoo::cfg8x8(), zoo::cfg16x16()};
    const FusionConfig cfg = cfgs[prng.below(6)];
    const unsigned depth = 1 + static_cast<unsigned>(prng.below(4));

    // Sparse, shuffled loop ids in [0, 48).
    std::vector<unsigned> ids;
    for (unsigned i = 0; i < 48; ++i)
        ids.push_back(i);
    for (unsigned i = 47; i > 0; --i)
        std::swap(ids[i], ids[prng.below(i + 1)]);
    ids.resize(depth);

    // 1..3 iterations each (the ISA forbids zero-trip loops).
    std::vector<std::uint64_t> iters(depth);
    for (unsigned d = 0; d < depth; ++d)
        iters[d] = 1 + prng.below(3);

    InstructionBlock b;
    b.name = "fuzz";
    b.config = cfg;
    b.actShift = static_cast<unsigned>(prng.below(4));
    b.actOutBits = prng.below(2) ? 8 : 0;

    auto &ins = b.instructions;
    ins.push_back(Instruction::setup(cfg.aBits, cfg.wBits, cfg.aSigned,
                                     cfg.wSigned));
    for (unsigned d = 0; d < depth; ++d)
        ins.push_back(Instruction::loop(ids[d], iters[d]));

    const auto IB = BufferId::Ibuf;
    const auto OB = BufferId::Obuf;
    const auto WB = BufferId::Wbuf;
    const auto ACC = AddrSpace::BufAccess;
    const auto MEM = AddrSpace::Mem;
    const auto FILL = AddrSpace::BufFill;

    // The OBUF read/write level; IB/WB are read at the innermost
    // level, OB at obLevel (mirroring the compiler's accumulator
    // placement, but at a random height).
    const unsigned obLevel =
        1 + static_cast<unsigned>(prng.below(depth));

    // Access expressions: random (declared-loop, stride) terms whose
    // loops are active at the op's level.
    auto maxAddr = [&](unsigned buf) {
        std::uint64_t top = 0;
        for (const Instruction &inst : ins) {
            if (inst.op != Opcode::GenAddr ||
                inst.buffer() != static_cast<BufferId>(buf) ||
                inst.space() != ACC) {
                continue;
            }
            for (unsigned d = 0; d < depth; ++d)
                if (ids[d] == inst.id && iters[d] > 0)
                    top += (iters[d] - 1) * inst.fullImm();
        }
        return top;
    };
    auto emitAccess = [&](BufferId buf, unsigned level) {
        for (unsigned d = 0; d < level; ++d)
            if (prng.below(2))
                ins.push_back(Instruction::genAddr(
                    buf, ACC, ids[d], 1 + prng.below(3)));
    };
    emitAccess(IB, depth);
    emitAccess(WB, depth);
    emitAccess(OB, obLevel);

    const std::uint64_t ibufNeed =
        maxAddr(static_cast<unsigned>(IB)) + 1;
    const std::uint64_t obufNeed =
        maxAddr(static_cast<unsigned>(OB)) + 1;
    const std::uint64_t wbufAccessNeed =
        maxAddr(static_cast<unsigned>(WB)) + 1;

    // WBUF loads through a set-rows 2-D DMA; rows * words covers the
    // access range.
    const std::uint64_t wbRows = 1 + prng.below(3);
    const std::uint64_t wbWords = divCeil(wbufAccessNeed, wbRows);
    ins.push_back(
        Instruction::genAddr(WB, MEM, addr_id::dmaRow, wbWords));
    ins.push_back(
        Instruction::genAddr(WB, FILL, addr_id::dmaRow, wbWords));

    // Memory regions (base addresses via the shared bump model).
    const std::uint64_t ibufBase = mem.allocate(ibufNeed);
    const std::uint64_t obufBase = mem.allocate(obufNeed);
    const std::uint64_t wbufBase = mem.allocate(wbRows * wbWords);
    b.baseAddr = {ibufBase, obufBase, wbufBase};
    Prng fill(prng.next());
    for (std::uint64_t i = 0; i < ibufNeed; ++i)
        mem.write(ibufBase + i,
                  cfg.aSigned ? fill.nextSigned(cfg.aBits)
                              : fill.nextUnsigned(cfg.aBits));
    for (std::uint64_t i = 0; i < wbRows * wbWords; ++i)
        mem.write(wbufBase + i,
                  cfg.wSigned ? fill.nextSigned(cfg.wBits)
                              : fill.nextUnsigned(cfg.wBits));

    // Body: fills at a level above the reads, a MAC or pooling
    // reduction at the innermost level, a store on the way out.
    const unsigned ldLevel =
        static_cast<unsigned>(prng.below(obLevel + 1));
    ins.push_back(Instruction::ldMem(IB, ldLevel, ibufNeed));
    ins.push_back(Instruction::setRows(ldLevel, wbRows));
    ins.push_back(Instruction::ldMem(WB, ldLevel, wbWords));
    ins.push_back(Instruction::ldMem(OB, ldLevel, obufNeed));
    const bool pooling = prng.below(4) == 0;
    ins.push_back(Instruction::rdBuf(OB, obLevel));
    if (pooling) {
        ins.push_back(Instruction::compute(ComputeFn::Reset, obLevel));
        ins.push_back(Instruction::rdBuf(IB, depth));
        ins.push_back(Instruction::compute(ComputeFn::Max, depth));
    } else {
        ins.push_back(Instruction::rdBuf(IB, depth));
        ins.push_back(Instruction::rdBuf(WB, depth));
        ins.push_back(Instruction::compute(ComputeFn::Mac, depth));
    }
    ins.push_back(Instruction::wrBuf(OB, obLevel, true));
    ins.push_back(Instruction::stMem(OB, ldLevel, obufNeed, true,
                                     prng.below(2) != 0));
    ins.push_back(Instruction::blockEnd(0));
    b.validate();
    return b;
}

TEST(PlanParity, FuzzedBlocks)
{
    Prng prng(20260731);
    for (unsigned round = 0; round < 60; ++round) {
        MemoryModel mem;
        const InstructionBlock block = fuzzBlock(prng, mem);
        checkBlockParity(block, mem,
                         "fuzz round " + std::to_string(round));
    }
}

TEST(PlanParity, ZeroTripLoopRunsPrologueAndEpilogueOnly)
{
    // The Instruction::loop builder rejects zero iterations, but a
    // decoded word stream does not: a block arriving through
    // decodeWords can carry a zero-trip loop, and both paths must
    // agree (pre/post spans outside the loop still run; the body
    // and its stats never happen).
    InstructionBlock b;
    b.name = "zero-trip";
    b.config = zoo::cfg8x8();
    auto &ins = b.instructions;
    ins.push_back(Instruction::setup(8, 8, false, true));
    ins.push_back(Instruction::loop(3, 2));
    ins.push_back(Instruction::loop(7, 1)); // imm zeroed below
    ins.push_back(Instruction::genAddr(BufferId::Ibuf,
                                       AddrSpace::BufAccess, 3, 1));
    ins.push_back(Instruction::genAddr(BufferId::Obuf,
                                       AddrSpace::BufAccess, 3, 1));
    ins.push_back(Instruction::ldMem(BufferId::Ibuf, 0, 2));
    ins.push_back(Instruction::rdBuf(BufferId::Ibuf, 1));
    ins.push_back(Instruction::rdBuf(BufferId::Wbuf, 2));
    ins.push_back(Instruction::compute(ComputeFn::Mac, 2));
    ins.push_back(Instruction::wrBuf(BufferId::Obuf, 1, true));
    ins.push_back(Instruction::stMem(BufferId::Obuf, 0, 2, true));
    ins.push_back(Instruction::blockEnd(0));
    // Zero the inner loop's iteration count the way a word stream
    // would deliver it.
    for (Instruction &inst : ins)
        if (inst.op == Opcode::Loop && inst.id == 7)
            inst.imm = 0;
    b.validate();

    MemoryModel mem;
    const std::uint64_t base = mem.allocate(4);
    mem.write(base + 0, 5);
    mem.write(base + 1, 7);
    b.baseAddr = {base, base + 2, base};
    checkBlockParity(b, mem, "zero-trip");

    // The inner body never ran: no MACs, no WBUF reads; the outer
    // level's rd/wr and the transfers did.
    MemoryModel planMem = mem;
    Interpreter interp(planMem);
    interp.run(*ExecPlan::build(b));
    EXPECT_EQ(interp.stats().macs, 0u);
    EXPECT_EQ(interp.stats().bufReads[2], 0u);
    EXPECT_EQ(interp.stats().bufReads[0], 2u);
    EXPECT_EQ(interp.stats().bufWrites[1], 2u);
    EXPECT_EQ(interp.stats().dramLoadElems[0], 2u);
    EXPECT_EQ(interp.stats().dramStoreElems[1], 2u);
}

TEST(PlanParity, UnknownComputeFnIsANoOpOnBothPaths)
{
    // fn() is a raw 3-bit field: a decoded word stream can carry
    // 4..7, which the reference walk's switch executes as a silent
    // no-op. The lowering must drop it the same way (and count
    // nothing), not execute garbage.
    InstructionBlock b;
    b.name = "unknown-fn";
    b.config = zoo::cfg8x8();
    auto &ins = b.instructions;
    ins.push_back(Instruction::setup(8, 8, false, true));
    ins.push_back(Instruction::loop(0, 3));
    ins.push_back(Instruction::genAddr(BufferId::Ibuf,
                                       AddrSpace::BufAccess, 0, 1));
    ins.push_back(Instruction::genAddr(BufferId::Obuf,
                                       AddrSpace::BufAccess, 0, 1));
    ins.push_back(Instruction::ldMem(BufferId::Ibuf, 0, 3));
    ins.push_back(Instruction::rdBuf(BufferId::Ibuf, 1));
    Instruction bogus = Instruction::compute(ComputeFn::Mac, 1);
    bogus.spec = (bogus.spec & ~0x7u) | 0x5; // fn 5: undefined
    ins.push_back(bogus);
    ins.push_back(Instruction::wrBuf(BufferId::Obuf, 1, true));
    ins.push_back(Instruction::stMem(BufferId::Obuf, 0, 3, true));
    ins.push_back(Instruction::blockEnd(0));
    b.validate();

    MemoryModel mem;
    const std::uint64_t base = mem.allocate(6);
    for (unsigned i = 0; i < 3; ++i)
        mem.write(base + i, i + 1);
    b.baseAddr = {base, base + 3, base};
    checkBlockParity(b, mem, "unknown-fn");

    MemoryModel planMem = mem;
    Interpreter interp(planMem);
    interp.run(*ExecPlan::build(b));
    EXPECT_EQ(interp.stats().macs, 0u);
    EXPECT_EQ(interp.stats().auxOps, 0u);
}

// ----------------------------------------------- plan internals

TEST(ExecPlanStatic, BufferSizesCoverDynamicHighWater)
{
    const Compiler compiler(batch1Config());
    const Layer layer = Layer::fc("f", 96, 40, zoo::cfg8x8());
    MemoryModel mem;
    BlockBases bases;
    bases.input = mem.allocate(layer.inputCount());
    bases.weights = mem.allocate(layer.weightCount());
    bases.output = mem.allocate(layer.outputCount());
    const InstructionBlock block = compiler.emitFc(layer, bases, 8, 16);

    const auto plan = ExecPlan::build(block);
    Interpreter interp(mem);
    interp.run(*plan);
    for (unsigned b = 0; b < 3; ++b)
        EXPECT_GE(plan->bufferSizes()[b],
                  interp.stats().bufHighWater[b])
            << "buffer " << b;
    EXPECT_TRUE(plan->memoized());
}

TEST(ExecPlanStatic, SixteenBitFallsBackToExactDecomposition)
{
    const Compiler compiler(batch1Config());
    const Layer layer = Layer::fc("f", 8, 4, zoo::cfg16x16());
    MemoryModel mem;
    BlockBases bases;
    bases.input = mem.allocate(layer.inputCount());
    bases.weights = mem.allocate(layer.weightCount());
    bases.output = mem.allocate(layer.outputCount());
    const auto plan =
        ExecPlan::build(compiler.emitFc(layer, bases, 4, 8));
    EXPECT_FALSE(plan->memoized());
}

// ------------------------------------------- fused-nest recognition

TEST(ExecPlanFusion, CompilerConvNestIsFused)
{
    const Compiler compiler(batch1Config());
    const Layer layer =
        Layer::conv("c", 4, 7, 7, 6, 3, 1, 1, zoo::cfg8x8(), 2);
    MemoryModel mem;
    BlockBases bases;
    const unsigned hp = layer.inH + 2 * layer.pad;
    const unsigned wp = layer.inW + 2 * layer.pad;
    bases.input =
        mem.allocate(static_cast<std::size_t>(layer.inC) * hp * wp);
    bases.weights = mem.allocate(layer.weightCount());
    bases.output = mem.allocate(layer.outputCount());
    const auto plan =
        ExecPlan::build(compiler.emitConv(layer, bases, 3, ActFusion{}));
    // The conv reduction nest is icpg x kH x kW.
    EXPECT_TRUE(plan->fused());
    EXPECT_EQ(plan->fusedDims(), 3u);
    EXPECT_EQ(plan->kernelName(), "mac8u.8s");
    EXPECT_TRUE(plan->memoized());
}

TEST(ExecPlanFusion, CompilerFcNestIsFusedOnEveryWidth)
{
    const Compiler compiler(batch1Config());
    auto fcPlan = [&](const FusionConfig &cfg) {
        const Layer layer = Layer::fc("f", 16, 6, cfg);
        MemoryModel mem;
        BlockBases bases;
        bases.input = mem.allocate(layer.inputCount());
        bases.weights = mem.allocate(layer.weightCount());
        bases.output = mem.allocate(layer.outputCount());
        return ExecPlan::build(compiler.emitFc(layer, bases, 4, 8));
    };

    const auto p8 = fcPlan(zoo::cfg8x8());
    EXPECT_TRUE(p8->fused());
    EXPECT_EQ(p8->fusedDims(), 1u);
    EXPECT_TRUE(p8->memoized());
    EXPECT_EQ(p8->kernelName(), "mac8u.8s");

    // 16-bit has no product table, but the fused kernel covers it:
    // the 1x legacy-speed fallback of earlier revisions is gone.
    const auto p16 = fcPlan(zoo::cfg16x16());
    EXPECT_TRUE(p16->fused());
    EXPECT_EQ(p16->fusedDims(), 1u);
    EXPECT_FALSE(p16->memoized());
    EXPECT_EQ(p16->kernelName(), "mac16s.16s");

    const auto p41 = fcPlan(zoo::cfg4x1());
    EXPECT_TRUE(p41->fused());
    EXPECT_EQ(p41->kernelName(), "mac4u.1u");
}

TEST(ExecPlanFusion, PoolingBodyIsNotFused)
{
    // A pooling reduction (Reset / rd-buf / Max) must not match the
    // MAC-nest pattern.
    InstructionBlock b;
    b.name = "pool";
    b.config = zoo::cfg8x8();
    auto &ins = b.instructions;
    ins.push_back(Instruction::setup(8, 8, false, true));
    ins.push_back(Instruction::loop(0, 2));
    ins.push_back(Instruction::loop(1, 2));
    ins.push_back(Instruction::genAddr(BufferId::Ibuf,
                                       AddrSpace::BufAccess, 1, 1));
    ins.push_back(Instruction::genAddr(BufferId::Obuf,
                                       AddrSpace::BufAccess, 0, 1));
    ins.push_back(Instruction::ldMem(BufferId::Ibuf, 0, 2));
    ins.push_back(Instruction::ldMem(BufferId::Obuf, 0, 2));
    ins.push_back(Instruction::rdBuf(BufferId::Obuf, 1));
    ins.push_back(Instruction::compute(ComputeFn::Reset, 1));
    ins.push_back(Instruction::rdBuf(BufferId::Ibuf, 2));
    ins.push_back(Instruction::compute(ComputeFn::Max, 2));
    ins.push_back(Instruction::wrBuf(BufferId::Obuf, 1, true));
    ins.push_back(Instruction::stMem(BufferId::Obuf, 0, 2, true));
    ins.push_back(Instruction::blockEnd(0));
    b.validate();

    MemoryModel mem;
    const std::uint64_t base = mem.allocate(4);
    mem.write(base + 0, 9);
    mem.write(base + 1, 4);
    b.baseAddr = {base, base + 2, base};

    const auto plan = ExecPlan::build(b);
    EXPECT_FALSE(plan->fused());
    EXPECT_EQ(plan->fusedDims(), 0u);
    EXPECT_EQ(plan->kernelName(), "");
    checkBlockParity(b, mem, "pool");
}

TEST(PlanParity, RegistersObservableAfterFusedNest)
{
    // An op outside the fused nest that reads the operand registers
    // (a MAC at the accumulator level) must see exactly the values
    // the last per-element body iteration would have left: the last
    // elements read from IBUF and WBUF.
    InstructionBlock b;
    b.name = "register-observer";
    b.config = zoo::cfg8x8();
    auto &ins = b.instructions;
    ins.push_back(Instruction::setup(8, 8, false, true));
    ins.push_back(Instruction::loop(0, 2));
    ins.push_back(Instruction::loop(1, 3));
    ins.push_back(Instruction::genAddr(BufferId::Ibuf,
                                       AddrSpace::BufAccess, 1, 1));
    ins.push_back(Instruction::genAddr(BufferId::Wbuf,
                                       AddrSpace::BufAccess, 1, 1));
    ins.push_back(Instruction::genAddr(BufferId::Obuf,
                                       AddrSpace::BufAccess, 0, 1));
    ins.push_back(Instruction::ldMem(BufferId::Ibuf, 0, 3));
    ins.push_back(Instruction::ldMem(BufferId::Wbuf, 0, 3));
    ins.push_back(Instruction::ldMem(BufferId::Obuf, 0, 2));
    ins.push_back(Instruction::rdBuf(BufferId::Obuf, 1));
    // Observer: on the second outer iteration this MACs the register
    // values left by the first fused-nest dispatch.
    ins.push_back(Instruction::compute(ComputeFn::Mac, 1));
    ins.push_back(Instruction::rdBuf(BufferId::Ibuf, 2));
    ins.push_back(Instruction::rdBuf(BufferId::Wbuf, 2));
    ins.push_back(Instruction::compute(ComputeFn::Mac, 2));
    ins.push_back(Instruction::wrBuf(BufferId::Obuf, 1, true));
    ins.push_back(Instruction::stMem(BufferId::Obuf, 0, 2, true));
    ins.push_back(Instruction::blockEnd(0));
    b.validate();

    MemoryModel mem;
    const std::uint64_t ib = mem.allocate(3);
    const std::uint64_t ob = mem.allocate(2);
    const std::uint64_t wb = mem.allocate(3);
    const std::int64_t acts[3] = {5, 2, 7};
    const std::int64_t wgts[3] = {3, -1, -4};
    for (unsigned i = 0; i < 3; ++i) {
        mem.write(ib + i, acts[i]);
        mem.write(wb + i, wgts[i]);
    }
    b.baseAddr = {ib, ob, wb};

    const auto plan = ExecPlan::build(b);
    EXPECT_TRUE(plan->fused());
    EXPECT_EQ(plan->fusedDims(), 1u);
    checkBlockParity(b, mem, "register-observer");

    // Spell the expectation out: output 1 is (regIn * regWgt after
    // nest 0) + the second nest, i.e. 7 * -4 + (5*3 + 2*-1 + 7*-4).
    MemoryModel specMem = mem;
    Interpreter interp(specMem);
    interp.run(*plan, DispatchTier::Specialized);
    EXPECT_EQ(specMem.read(ob + 0), 5 * 3 + 2 * -1 + 7 * -4);
    EXPECT_EQ(specMem.read(ob + 1),
              7 * -4 + (5 * 3 + 2 * -1 + 7 * -4));
}

TEST(PlanParity, ZeroTripFusedNestExecutesNothing)
{
    // A recognized MAC nest whose static trip count is zero (decoded
    // word streams can deliver zero-trip loops) must run no body at
    // all on any tier -- the specialized program simply omits the
    // fused op.
    InstructionBlock b;
    b.name = "zero-trip-fused";
    b.config = zoo::cfg8x8();
    auto &ins = b.instructions;
    ins.push_back(Instruction::setup(8, 8, false, true));
    ins.push_back(Instruction::loop(0, 2));
    ins.push_back(Instruction::loop(1, 1)); // imm zeroed below
    ins.push_back(Instruction::genAddr(BufferId::Ibuf,
                                       AddrSpace::BufAccess, 1, 1));
    ins.push_back(Instruction::genAddr(BufferId::Wbuf,
                                       AddrSpace::BufAccess, 1, 1));
    ins.push_back(Instruction::genAddr(BufferId::Obuf,
                                       AddrSpace::BufAccess, 0, 1));
    ins.push_back(Instruction::ldMem(BufferId::Ibuf, 0, 1));
    ins.push_back(Instruction::ldMem(BufferId::Wbuf, 0, 1));
    ins.push_back(Instruction::ldMem(BufferId::Obuf, 0, 2));
    ins.push_back(Instruction::rdBuf(BufferId::Obuf, 1));
    ins.push_back(Instruction::rdBuf(BufferId::Ibuf, 2));
    ins.push_back(Instruction::rdBuf(BufferId::Wbuf, 2));
    ins.push_back(Instruction::compute(ComputeFn::Mac, 2));
    ins.push_back(Instruction::wrBuf(BufferId::Obuf, 1, true));
    ins.push_back(Instruction::stMem(BufferId::Obuf, 0, 2, true));
    ins.push_back(Instruction::blockEnd(0));
    for (Instruction &inst : ins)
        if (inst.op == Opcode::Loop && inst.id == 1)
            inst.imm = 0;
    b.validate();

    MemoryModel mem;
    const std::uint64_t base = mem.allocate(4);
    mem.write(base + 0, 11);
    b.baseAddr = {base, base + 2, base + 1};

    const auto plan = ExecPlan::build(b);
    EXPECT_TRUE(plan->fused());
    checkBlockParity(b, mem, "zero-trip-fused");

    MemoryModel specMem = mem;
    Interpreter interp(specMem);
    interp.run(*plan, DispatchTier::Specialized);
    EXPECT_EQ(interp.stats().macs, 0u);
    EXPECT_EQ(interp.stats().bufReads[0], 0u);
    EXPECT_EQ(interp.stats().bufReads[2], 0u);
}

using ExecPlanDeathTest = ::testing::Test;

TEST(ExecPlanDeathTest, SpecializedTierRejectsUnrepresentableWeight)
{
    // The fused kernel's range mask must reproduce the reference
    // walk's representability failure, not silently accumulate an
    // out-of-range operand.
    const Compiler compiler(batch1Config());
    const Layer layer = Layer::fc("f", 8, 4, zoo::cfg8x8());
    MemoryModel mem;
    BlockBases bases;
    bases.input = mem.allocate(layer.inputCount());
    bases.weights = mem.allocate(layer.weightCount());
    bases.output = mem.allocate(layer.outputCount());
    const InstructionBlock block = compiler.emitFc(layer, bases, 4, 8);
    const auto plan = ExecPlan::build(block);
    ASSERT_TRUE(plan->fused());

    // 200 does not fit 8-bit signed weights.
    mem.write(bases.weights, 200);
    Interpreter interp(mem);
    EXPECT_DEATH(interp.run(*plan, DispatchTier::Specialized),
                 "not representable");
}

// --------------------------------------------- dispatch tiers

TEST(DispatchTierTest, NamesParseRoundTrip)
{
    for (DispatchTier tier : kAllTiers) {
        DispatchTier parsed;
        ASSERT_TRUE(parseDispatchTier(dispatchTierName(tier), parsed))
            << dispatchTierName(tier);
        EXPECT_EQ(parsed, tier);
    }
    DispatchTier out;
    EXPECT_FALSE(parseDispatchTier("", out));
    EXPECT_FALSE(parseDispatchTier("fast", out));
    EXPECT_FALSE(parseDispatchTier("Switch", out));

    // The default is the top rung unless BITFUSION_DISPATCH says
    // otherwise (the CI parity jobs set it; a plain test run won't).
    if (std::getenv("BITFUSION_DISPATCH") == nullptr) {
        EXPECT_EQ(defaultDispatchTier(), DispatchTier::Specialized);
    }
}

TEST(ProductTable, MatchesExactDecomposition)
{
    for (const FusionConfig &cfg :
         {zoo::cfg1x1(), zoo::cfg2x2(), zoo::cfg4x1(), zoo::cfg4x4(),
          zoo::cfg8x8()}) {
        const ProductTable *table = productTableFor(cfg);
        ASSERT_NE(table, nullptr) << cfg.toString();
        // The decomposition size is value-independent.
        EXPECT_EQ(table->opsPerMac,
                  static_cast<std::uint64_t>(bitBrickLanes(cfg.aBits)) *
                      bitBrickLanes(cfg.wBits))
            << cfg.toString();
        // Exhaustive: every raw pair reproduces the exact path.
        for (std::uint64_t ra = 0; ra < (1ULL << cfg.aBits); ++ra) {
            const std::int64_t a =
                cfg.aSigned ? signExtend(ra, cfg.aBits)
                            : static_cast<std::int64_t>(ra);
            for (std::uint64_t rw = 0; rw < (1ULL << cfg.wBits);
                 ++rw) {
                const std::int64_t w =
                    cfg.wSigned ? signExtend(rw, cfg.wBits)
                                : static_cast<std::int64_t>(rw);
                const auto ops = decomposeMultiply(a, w, cfg);
                ASSERT_EQ(table->products[(ra << cfg.wBits) | rw],
                          evaluateDecomposition(ops))
                    << cfg.toString() << " a=" << a << " w=" << w;
                ASSERT_EQ(table->products[(ra << cfg.wBits) | rw],
                          a * w)
                    << cfg.toString() << " a=" << a << " w=" << w;
            }
        }
    }
    EXPECT_EQ(productTableFor(zoo::cfg16x16()), nullptr);
}

TEST(ProductTable, AllSignednessCombosMatchNativeProducts)
{
    // The memo entries are filled with native a*w; every signedness
    // combination must still equal the exact decomposition path.
    for (bool aSigned : {false, true}) {
        for (bool wSigned : {false, true}) {
            const FusionConfig cfg{4, 4, aSigned, wSigned};
            const ProductTable *table = productTableFor(cfg);
            ASSERT_NE(table, nullptr);
            for (std::uint64_t ra = 0; ra < 16; ++ra) {
                const std::int64_t a =
                    aSigned ? signExtend(ra, 4)
                            : static_cast<std::int64_t>(ra);
                for (std::uint64_t rw = 0; rw < 16; ++rw) {
                    const std::int64_t w =
                        wSigned ? signExtend(rw, 4)
                                : static_cast<std::int64_t>(rw);
                    const std::int64_t memo =
                        table->products[(ra << 4) | rw];
                    ASSERT_EQ(memo, a * w)
                        << cfg.toString() << " a=" << a << " w=" << w;
                    ASSERT_EQ(memo, evaluateDecomposition(
                                        decomposeMultiply(a, w, cfg)))
                        << cfg.toString() << " a=" << a << " w=" << w;
                }
            }
        }
    }
}

TEST(ProductTable, CacheCountersTrackBuildsAndHits)
{
    const ProductTableCacheStats s0 = productTableCacheStats();
    const ProductTable *first = productTableFor(zoo::cfg8x8());
    const ProductTableCacheStats s1 = productTableCacheStats();
    // Whether another test built this table already or not, the call
    // was one build or one hit -- never more.
    EXPECT_EQ((s1.builds - s0.builds) + (s1.hits - s0.hits), 1u);
    EXPECT_LE(s1.builds - s0.builds, 1u);

    const ProductTable *again = productTableFor(zoo::cfg8x8());
    const ProductTableCacheStats s2 = productTableCacheStats();
    EXPECT_EQ(again, first);
    EXPECT_EQ(s2.builds, s1.builds) << "table was rebuilt";
    EXPECT_EQ(s2.hits, s1.hits + 1);
}

TEST(WideConfigProducts, SampledPairsMatchExactDecomposition)
{
    // The configs with no product table run the fused kernel's
    // native multiply; this pins a*w == the BitBrick decomposition
    // on the 16-bit and mixed-width configs at the range corners and
    // on random samples.
    const FusionConfig cfgs[] = {FusionConfig{16, 16, true, true},
                                 FusionConfig{16, 16, false, false},
                                 FusionConfig{16, 8, true, true},
                                 FusionConfig{8, 16, false, true},
                                 FusionConfig{16, 4, true, false},
                                 FusionConfig{2, 16, false, true}};
    Prng prng(20260808);
    for (const FusionConfig &cfg : cfgs) {
        auto corners = [](unsigned bits, bool sgn) {
            return sgn ? std::vector<std::int64_t>{signedMin(bits), -1,
                                                   0, 1,
                                                   signedMax(bits)}
                       : std::vector<std::int64_t>{0, 1,
                                                   unsignedMax(bits)};
        };
        std::vector<std::int64_t> as = corners(cfg.aBits, cfg.aSigned);
        std::vector<std::int64_t> ws = corners(cfg.wBits, cfg.wSigned);
        for (unsigned i = 0; i < 24; ++i) {
            as.push_back(cfg.aSigned ? prng.nextSigned(cfg.aBits)
                                     : prng.nextUnsigned(cfg.aBits));
            ws.push_back(cfg.wSigned ? prng.nextSigned(cfg.wBits)
                                     : prng.nextUnsigned(cfg.wBits));
        }
        for (std::int64_t a : as) {
            for (std::int64_t w : ws) {
                ASSERT_EQ(a * w, evaluateDecomposition(
                                     decomposeMultiply(a, w, cfg)))
                    << cfg.toString() << " a=" << a << " w=" << w;
            }
        }
    }
}

// --------------------------------------------------- plan cache

TEST(PlanCache, SameContentSharesOneLowering)
{
    const Compiler compiler(batch1Config());
    const Layer layer = Layer::fc("f", 16, 8, zoo::cfg8x8());
    MemoryModel mem;
    BlockBases bases;
    bases.input = mem.allocate(layer.inputCount());
    bases.weights = mem.allocate(layer.weightCount());
    bases.output = mem.allocate(layer.outputCount());
    InstructionBlock block = compiler.emitFc(layer, bases, 4, 8);

    ArtifactCache cache;
    const auto first = cache.plan(block);
    const auto again = cache.plan(block);
    EXPECT_EQ(first.get(), again.get());
    EXPECT_EQ(cache.planCount(), 1u);
    EXPECT_EQ(cache.planHitCount(), 1u);
    EXPECT_EQ(cache.planSize(), 1u);

    // The name is display-only: a renamed copy shares the plan.
    InstructionBlock renamed = block;
    renamed.name = "other";
    EXPECT_EQ(cache.plan(renamed).get(), first.get());
    EXPECT_EQ(cache.planCount(), 1u);

    // Different content (a shifted base address) lowers separately.
    InstructionBlock moved = block;
    moved.baseAddr[0] += 1;
    EXPECT_NE(ExecPlan::blockKey(moved), ExecPlan::blockKey(block));
    EXPECT_NE(cache.plan(moved).get(), first.get());
    EXPECT_EQ(cache.planCount(), 2u);

    cache.clear();
    EXPECT_EQ(cache.planCount(), 0u);
    EXPECT_EQ(cache.planSize(), 0u);
}

TEST(PlanCache, InjectedCacheIsolatesAccounting)
{
    const Compiler compiler(batch1Config());
    const Layer layer = Layer::fc("f", 20, 10, zoo::cfg8x8());
    MemoryModel mem;
    BlockBases bases;
    bases.input = mem.allocate(layer.inputCount());
    bases.weights = mem.allocate(layer.weightCount());
    bases.output = mem.allocate(layer.outputCount());
    const InstructionBlock block = compiler.emitFc(layer, bases, 5, 10);

    // A private cache sees exactly this interpreter's traffic, no
    // matter what other tests did to the process cache.
    ArtifactCache cache;
    Interpreter interp(mem, &cache);
    interp.run(block);
    interp.run(block);
    interp.run(block);
    EXPECT_EQ(cache.planCount(), 1u);
    EXPECT_EQ(cache.planHitCount(), 2u);
    EXPECT_EQ(cache.planSize(), 1u);
}

TEST(PlanCache, InterpreterRunUsesProcessCache)
{
    const Compiler compiler(batch1Config());
    const Layer layer = Layer::fc("f", 12, 6, zoo::cfg4x4());
    MemoryModel mem;
    BlockBases bases;
    bases.input = mem.allocate(layer.inputCount());
    bases.weights = mem.allocate(layer.weightCount());
    bases.output = mem.allocate(layer.outputCount());
    const InstructionBlock block = compiler.emitFc(layer, bases, 3, 6);

    ArtifactCache &cache = ArtifactCache::process();
    const std::size_t builds0 = cache.planCount();
    const std::size_t hits0 = cache.planHitCount();
    Interpreter interp(mem);
    interp.run(block);
    interp.run(block);
    EXPECT_EQ(cache.planCount() + cache.planHitCount(),
              builds0 + hits0 + 2);
    // The second run is served from the cache (the first may be a
    // hit too when another test already lowered this block).
    EXPECT_GE(cache.planHitCount(), hits0 + 1);
}

} // namespace
} // namespace bitfusion
