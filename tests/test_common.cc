/**
 * @file
 * Unit tests for the common substrate: bit utilities, the
 * deterministic PRNG, and the table/geomean helpers.
 */

#include <gtest/gtest.h>

#include "src/common/bitutils.h"
#include "src/common/prng.h"
#include "src/common/table.h"

namespace bitfusion {
namespace {

TEST(BitUtils, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(1ULL << 40, 3), ((1ULL << 40) + 2) / 3);
}

TEST(BitUtils, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xffu);
    EXPECT_EQ(lowMask(64), ~0ULL);
}

TEST(BitUtils, SignExtend)
{
    EXPECT_EQ(signExtend(0x3, 2), -1);
    EXPECT_EQ(signExtend(0x2, 2), -2);
    EXPECT_EQ(signExtend(0x1, 2), 1);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0x7f, 8), 127);
    EXPECT_EQ(signExtend(0xffff, 16), -1);
}

TEST(BitUtils, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(16));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(12));
    EXPECT_EQ(log2Exact(1), 0u);
    EXPECT_EQ(log2Exact(16), 4u);
}

TEST(BitUtils, BitBrickLanes)
{
    EXPECT_EQ(bitBrickLanes(1), 1u);
    EXPECT_EQ(bitBrickLanes(2), 1u);
    EXPECT_EQ(bitBrickLanes(4), 2u);
    EXPECT_EQ(bitBrickLanes(8), 4u);
    EXPECT_EQ(bitBrickLanes(16), 8u);
}

TEST(BitUtils, SignedRanges)
{
    EXPECT_EQ(signedMin(2), -2);
    EXPECT_EQ(signedMax(2), 1);
    EXPECT_EQ(signedMin(8), -128);
    EXPECT_EQ(signedMax(8), 127);
    EXPECT_EQ(unsignedMax(8), 255);
}

TEST(BitUtils, Clamping)
{
    EXPECT_EQ(clampSigned(200, 8), 127);
    EXPECT_EQ(clampSigned(-200, 8), -128);
    EXPECT_EQ(clampSigned(5, 8), 5);
    EXPECT_EQ(clampUnsigned(-3, 8), 0);
    EXPECT_EQ(clampUnsigned(300, 8), 255);
    EXPECT_EQ(clampUnsigned(42, 8), 42);
}

TEST(Prng, Deterministic)
{
    Prng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer)
{
    Prng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 16; ++i)
        any_diff |= a.next() != b.next();
    EXPECT_TRUE(any_diff);
}

TEST(Prng, RangesRespected)
{
    Prng p(7);
    for (int i = 0; i < 1000; ++i) {
        const auto u = p.nextUnsigned(4);
        EXPECT_GE(u, 0);
        EXPECT_LE(u, 15);
        const auto s = p.nextSigned(4);
        EXPECT_GE(s, -8);
        EXPECT_LE(s, 7);
        const double d = p.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        EXPECT_LT(p.below(10), 10u);
    }
}

TEST(Prng, CoversFullRange)
{
    Prng p(11);
    bool seen[16] = {};
    for (int i = 0; i < 1000; ++i)
        seen[p.nextUnsigned(4)] = true;
    for (int v = 0; v < 16; ++v)
        EXPECT_TRUE(seen[v]) << "value " << v << " never generated";
}

TEST(Table, Geomean)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, 4.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Table, RendersAlignedRows)
{
    TextTable t({"A", "LongHeader"});
    t.addRow({"x", "1"});
    t.addRow({"yyyy", "2"});
    const std::string s = t.render();
    EXPECT_NE(s.find("A"), std::string::npos);
    EXPECT_NE(s.find("LongHeader"), std::string::npos);
    EXPECT_NE(s.find("yyyy"), std::string::npos);
    // Header, separator, two rows.
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::times(2.5, 1), "2.5x");
}

TEST(TableDeath, RowWidthMismatchPanics)
{
    TextTable t({"A", "B"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

} // namespace
} // namespace bitfusion
