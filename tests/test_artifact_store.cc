/**
 * @file
 * Persistent artifact store: frame verification, corruption
 * injection, serde round-trips, cross-cache/-thread/-process races,
 * and golden byte-parity with store-less runs.
 *
 * The store (src/core/artifact_store.h) must never change an
 * answer: a warm start has to reproduce the store-less run byte for
 * byte (sweep JSON, serve reports, interpreter stats AND memory end
 * state), any malformed record -- truncated, bit-flipped,
 * zero-filled, version-bumped, endian-foreign -- must read as a miss
 * that falls back to a clean recompile, and racing publishers
 * (threads or processes) must leave exactly one valid record per
 * key and no temp-file debris. Every suite here is prefixed Store so
 * the TSan CI job can select the whole file with one filter.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bitutils.h"
#include "src/common/hash.h"
#include "src/common/prng.h"
#include "src/compiler/codegen.h"
#include "src/core/artifact_cache.h"
#include "src/core/artifact_store.h"
#include "src/core/platform_registry.h"
#include "src/dnn/model_zoo.h"
#include "src/isa/exec_plan.h"
#include "src/isa/interpreter.h"
#include "src/isa/memory.h"
#include "src/isa/plan_serde.h"
#include "src/runner/figures.h"
#include "src/runner/sweep.h"
#include "src/serve/serving_engine.h"

namespace bitfusion {
namespace {

namespace fs = std::filesystem;

/** Unique store root under the system temp dir, removed on exit. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        static std::atomic<unsigned> seq{0};
        path = (fs::temp_directory_path() /
                ("bitfusion-store-test." + std::to_string(::getpid()) +
                 "." + std::to_string(seq.fetch_add(1))))
                   .string();
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

std::size_t
countFiles(const std::string &dir, const std::string &ext)
{
    std::size_t n = 0;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ext)
            ++n;
    return n;
}

/**
 * Recompute the trailing checksum after a test mutated earlier frame
 * bytes, so the mutation itself -- not the checksum -- is what the
 * loader has to catch.
 */
void
refreshChecksum(std::string &frame)
{
    ASSERT_GT(frame.size(), 8u);
    const std::uint64_t sum = xxhash64(frame.data(), frame.size() - 8);
    std::memcpy(&frame[frame.size() - 8], &sum, 8);
}

/** Small fc network with a nonempty compile step on bitfusion. */
Network
smallFcNet(const std::string &name = "store-net")
{
    return Network(name, {Layer::fc("fc1", 64, 32, zoo::cfg8x8()),
                          Layer::fc("fc2", 32, 16, zoo::cfg4x4())});
}

const Platform &
bitfusionPlatform()
{
    static const std::unique_ptr<Platform> platform =
        PlatformRegistry::builtin().build(
            PlatformRegistry::builtin().parse("bitfusion"));
    return *platform;
}

AcceleratorConfig
batch1Config()
{
    AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    cfg.batch = 1;
    return cfg;
}

/** A compiler-emitted block to exercise the plan-serde path. */
InstructionBlock
smallFcBlock(const FusionConfig &cfg)
{
    const Compiler compiler(batch1Config());
    const Layer layer = Layer::fc("f", 24, 10, cfg);
    MemoryModel mem;
    BlockBases bases;
    bases.input = mem.allocate(layer.inputCount());
    bases.weights = mem.allocate(layer.weightCount());
    bases.output = mem.allocate(layer.outputCount());
    return compiler.emitFc(layer, bases, 5, 8);
}

// ------------------------------------------------- frame round-trip

TEST(StoreFrame, PublishThenLoadRoundTripsBinaryPayloads)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    // Embedded NULs, high bytes, and an empty payload all round-trip.
    const std::string payload("\x00\x01\xff with\nnewlines\x00", 18);
    ASSERT_TRUE(store.publish("key-a", payload));
    ASSERT_TRUE(store.publish("key-empty", ""));

    const auto got = store.load("key-a");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);
    const auto empty = store.load("key-empty");
    ASSERT_TRUE(empty.has_value());
    EXPECT_EQ(*empty, "");

    EXPECT_FALSE(store.load("key-absent").has_value());

    const auto st = store.stats();
    EXPECT_EQ(st.publishes, 2u);
    EXPECT_EQ(st.hits, 2u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_EQ(st.corrupt, 0u);
    EXPECT_EQ(st.publishFailures, 0u);
    EXPECT_EQ(countFiles(dir.path, ".bfa"), 2u);
    EXPECT_EQ(countFiles(dir.path, ".tmp"), 0u);
}

TEST(StoreFrame, RepublishOverwritesWithEqualBytes)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    ASSERT_TRUE(store.publish("key", "payload"));
    const std::string first = readFile(store.pathFor("key"));
    ASSERT_TRUE(store.publish("key", "payload"));
    EXPECT_EQ(readFile(store.pathFor("key")), first);
    EXPECT_EQ(countFiles(dir.path, ".bfa"), 1u);
    EXPECT_EQ(countFiles(dir.path, ".tmp"), 0u);
}

TEST(StoreFrame, KeyEchoMismatchReadsAsMissNeverTheWrongRecord)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    ASSERT_TRUE(store.publish("key-a", "payload-a"));
    // Simulate a filename-hash collision: the record for key-a sits
    // at key-b's path. The frame verifies, but the echoed key must
    // reject it.
    fs::copy_file(store.pathFor("key-a"), store.pathFor("key-b"));
    EXPECT_FALSE(store.load("key-b").has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
    // The original record is untouched and still loads.
    const auto got = store.load("key-a");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, "payload-a");
}

// ------------------------------------------------ corruption injection

TEST(StoreCorruption, TruncationAtEveryRegionIsDetected)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const std::string key = "trunc-key";
    ASSERT_TRUE(store.publish(key, "truncation payload"));
    const std::string path = store.pathFor(key);
    const std::string frame = readFile(path);

    // Empty file, mid-magic, mid-header, mid-key, mid-payload, and
    // one byte short of the checksum.
    const std::size_t cuts[] = {0,
                                3,
                                15,
                                16 + 4,
                                16 + key.size() + 8 + 5,
                                frame.size() - 1};
    std::size_t expectCorrupt = 0;
    for (const std::size_t cut : cuts) {
        ASSERT_LT(cut, frame.size());
        writeFile(path, frame.substr(0, cut));
        EXPECT_FALSE(store.load(key).has_value()) << "cut " << cut;
        EXPECT_EQ(store.stats().corrupt, ++expectCorrupt)
            << "cut " << cut;
    }

    // The store never deletes what it rejected; a republish heals it.
    ASSERT_TRUE(store.publish(key, "truncation payload"));
    const auto healed = store.load(key);
    ASSERT_TRUE(healed.has_value());
    EXPECT_EQ(*healed, "truncation payload");
}

TEST(StoreCorruption, BitFlipAnywhereFailsTheChecksum)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const std::string key = "flip-key";
    ASSERT_TRUE(store.publish(key, "bit flip payload"));
    const std::string path = store.pathFor(key);
    const std::string frame = readFile(path);

    // One flipped bit per frame region: magic, version, endian tag,
    // key length, key bytes, payload length, payload bytes, and the
    // checksum itself.
    const std::size_t offsets[] = {1,
                                   5,
                                   9,
                                   13,
                                   16 + 2,
                                   16 + key.size() + 3,
                                   16 + key.size() + 8 + 4,
                                   frame.size() - 2};
    std::size_t expectCorrupt = 0;
    for (const std::size_t off : offsets) {
        ASSERT_LT(off, frame.size());
        std::string bad = frame;
        bad[off] = static_cast<char>(bad[off] ^ 0x10);
        writeFile(path, bad);
        EXPECT_FALSE(store.load(key).has_value()) << "offset " << off;
        EXPECT_EQ(store.stats().corrupt, ++expectCorrupt)
            << "offset " << off;
    }

    writeFile(path, frame);
    EXPECT_TRUE(store.load(key).has_value());
}

TEST(StoreCorruption, ZeroFilledPayloadIsDetected)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const std::string key = "zero-key";
    ASSERT_TRUE(store.publish(key, "zero fill payload"));
    const std::string path = store.pathFor(key);
    std::string frame = readFile(path);
    for (std::size_t i = 16 + key.size() + 8; i < frame.size() - 8;
         ++i)
        frame[i] = '\0';
    writeFile(path, frame);
    EXPECT_FALSE(store.load(key).has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(StoreCorruption, VersionSkewIsRejectedBeforeTheChecksum)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const std::string key = "version-key";
    ASSERT_TRUE(store.publish(key, "versioned payload"));
    const std::string path = store.pathFor(key);
    std::string frame = readFile(path);

    // A future format version with an internally consistent checksum:
    // only the version check can catch it.
    const std::uint32_t future = ArtifactStore::kFormatVersion + 1;
    std::memcpy(&frame[4], &future, 4);
    refreshChecksum(frame);
    writeFile(path, frame);
    EXPECT_FALSE(store.load(key).has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(StoreCorruption, ForeignEndiannessIsRejectedBeforeTheChecksum)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const std::string key = "endian-key";
    ASSERT_TRUE(store.publish(key, "endian payload"));
    const std::string path = store.pathFor(key);
    std::string frame = readFile(path);

    // The tag as a byte-swapped machine would have written it, with
    // a recomputed checksum -- the scalar fields that follow would
    // all decode wrong, so the tag must gate everything after it.
    std::uint32_t tag = 0;
    std::memcpy(&tag, &frame[8], 4);
    const std::uint32_t swapped = ((tag & 0xff) << 24) |
                                  ((tag & 0xff00) << 8) |
                                  ((tag >> 8) & 0xff00) | (tag >> 24);
    std::memcpy(&frame[8], &swapped, 4);
    refreshChecksum(frame);
    writeFile(path, frame);
    EXPECT_FALSE(store.load(key).has_value());
    EXPECT_EQ(store.stats().corrupt, 1u);
}

TEST(StoreCorruption, CacheFallsBackToRecompileOnCorruptArtifact)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const Platform &platform = bitfusionPlatform();
    const Network net = smallFcNet();

    // Publish, then corrupt the record in place.
    {
        ArtifactCache cache;
        cache.attachStore(&store);
        ASSERT_NE(cache.get(platform, net).artifact, nullptr);
        EXPECT_EQ(cache.compileCount(), 1u);
    }
    ASSERT_EQ(countFiles(dir.path, ".bfa"), 1u);
    std::string path;
    for (const auto &entry : fs::directory_iterator(dir.path))
        path = entry.path().string();
    std::string frame = readFile(path);
    frame[frame.size() / 2] =
        static_cast<char>(frame[frame.size() / 2] ^ 0x40);
    writeFile(path, frame);

    // A fresh cache rejects the record and compiles cleanly.
    ArtifactCache cache;
    cache.attachStore(&store);
    const auto outcome = cache.get(platform, net);
    ASSERT_NE(outcome.artifact, nullptr);
    EXPECT_EQ(cache.compileCount(), 1u);
    EXPECT_EQ(cache.storeHitCount(), 0u);
    EXPECT_GE(store.stats().corrupt, 1u);
}

TEST(StoreCorruption, CacheFallsBackOnWellFramedGarbagePayload)
{
    // A frame that verifies but whose payload is not a serialized
    // artifact exercises the deserialization-failure path (SerdeError
    // inside the cache) rather than the store's frame checks.
    TempDir dir;
    ArtifactStore store(dir.path);
    const Platform &platform = bitfusionPlatform();
    const Network net = smallFcNet();

    const std::string artifactKey = "artifact|v" +
                                    std::to_string(kPlanSerdeVersion) +
                                    "|" + platform.compileKey() + '#' +
                                    networkFingerprint(net);
    ASSERT_TRUE(store.publish(artifactKey, "not an artifact"));

    ArtifactCache cache;
    cache.attachStore(&store);
    const auto outcome = cache.get(platform, net);
    ASSERT_NE(outcome.artifact, nullptr);
    EXPECT_EQ(cache.compileCount(), 1u);
    EXPECT_EQ(cache.storeHitCount(), 0u);
    // The garbage record was replaced by the recompile's publish.
    ArtifactCache warm;
    warm.attachStore(&store);
    ASSERT_NE(warm.get(platform, net).artifact, nullptr);
    EXPECT_EQ(warm.compileCount(), 0u);
    EXPECT_EQ(warm.storeHitCount(), 1u);
}

TEST(StoreCorruption, PlanCacheFallsBackOnGarbagePayload)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const InstructionBlock block = smallFcBlock(zoo::cfg8x8());

    const std::string planKey = "plan|v" +
                                std::to_string(kPlanSerdeVersion) +
                                "|" + ExecPlan::blockKey(block);
    ASSERT_TRUE(store.publish(planKey, "not a plan"));

    ArtifactCache cache;
    cache.attachStore(&store);
    ASSERT_NE(cache.plan(block), nullptr);
    EXPECT_EQ(cache.planCount(), 1u);
    EXPECT_EQ(cache.planStoreHitCount(), 0u);

    ArtifactCache warm;
    warm.attachStore(&store);
    ASSERT_NE(warm.plan(block), nullptr);
    EXPECT_EQ(warm.planCount(), 0u);
    EXPECT_EQ(warm.planStoreHitCount(), 1u);
}

// ------------------------------------------------- serde round-trips

/** Compare every InterpStats field with a named message. */
void
expectStatsEqual(const InterpStats &legacy, const InterpStats &plan,
                 const std::string &what)
{
    for (unsigned b = 0; b < 3; ++b) {
        EXPECT_EQ(legacy.dramLoadElems[b], plan.dramLoadElems[b])
            << what << " dramLoadElems[" << b << "]";
        EXPECT_EQ(legacy.dramStoreElems[b], plan.dramStoreElems[b])
            << what << " dramStoreElems[" << b << "]";
        EXPECT_EQ(legacy.bufReads[b], plan.bufReads[b])
            << what << " bufReads[" << b << "]";
        EXPECT_EQ(legacy.bufWrites[b], plan.bufWrites[b])
            << what << " bufWrites[" << b << "]";
        EXPECT_EQ(legacy.bufHighWater[b], plan.bufHighWater[b])
            << what << " bufHighWater[" << b << "]";
    }
    EXPECT_EQ(legacy.macs, plan.macs) << what << " macs";
    EXPECT_EQ(legacy.bitBrickOps, plan.bitBrickOps)
        << what << " bitBrickOps";
    EXPECT_EQ(legacy.auxOps, plan.auxOps) << what << " auxOps";
    EXPECT_TRUE(legacy == plan) << what << " InterpStats operator==";
}

void
expectMemoryEqual(const MemoryModel &a, const MemoryModel &b,
                  const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::uint64_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a.read(i), b.read(i)) << what << " address " << i;
}

constexpr DispatchTier kAllTiers[kDispatchTierCount] = {
    DispatchTier::Switch, DispatchTier::Threaded,
    DispatchTier::Specialized};

/**
 * The serde contract on one block: the lowered plan serializes
 * deterministically, deserializes to a plan that re-serializes to
 * the same bytes, and the deserialized plan reproduces the reference
 * walk's stats and memory end-state bit-for-bit on every dispatch
 * tier. The raw block serde must round-trip to an equal blockKey.
 */
void
checkSerdeRoundTrip(const InstructionBlock &block,
                    const MemoryModel &seed, const std::string &what)
{
    ByteWriter bw;
    serializeBlock(bw, block);
    ByteReader br(bw.bytes());
    const InstructionBlock back = deserializeBlock(br);
    EXPECT_TRUE(br.atEnd()) << what;
    EXPECT_EQ(ExecPlan::blockKey(back), ExecPlan::blockKey(block))
        << what;
    ByteWriter bw2;
    serializeBlock(bw2, back);
    EXPECT_EQ(bw2.bytes(), bw.bytes()) << what;

    const auto plan = ExecPlan::build(block);
    const std::string bytes = serializePlan(*plan);
    EXPECT_EQ(serializePlan(*plan), bytes)
        << what << " serialization must be deterministic";
    const auto revived = deserializePlan(bytes);
    ASSERT_NE(revived, nullptr) << what;
    EXPECT_EQ(serializePlan(*revived), bytes) << what;
    EXPECT_EQ(revived->fused(), plan->fused()) << what;
    EXPECT_EQ(revived->memoized(), plan->memoized()) << what;
    EXPECT_EQ(revived->kernelName(), plan->kernelName()) << what;
    EXPECT_EQ(revived->memoryExtent(), plan->memoryExtent()) << what;

    MemoryModel legacyMem = seed;
    Interpreter legacy(legacyMem);
    legacy.runLegacy(block);
    for (DispatchTier tier : kAllTiers) {
        const std::string where =
            what + " [" + dispatchTierName(tier) + "]";
        MemoryModel planMem = seed;
        Interpreter interp(planMem);
        interp.run(*revived, tier);
        expectStatsEqual(legacy.stats(), interp.stats(), where);
        expectMemoryEqual(legacyMem, planMem, where);
    }
}

/**
 * Random valid block the compiler would never emit -- same
 * generator as test_interp_plan.cc's fuzz corpus (PR 5): sparse
 * loop ids, random transfer placement, set-rows 2-D weight DMA, and
 * a MAC or pooling body.
 */
InstructionBlock
fuzzBlock(Prng &prng, MemoryModel &mem)
{
    const FusionConfig cfgs[] = {zoo::cfg1x1(), zoo::cfg2x2(),
                                 zoo::cfg4x1(), zoo::cfg4x4(),
                                 zoo::cfg8x8(), zoo::cfg16x16()};
    const FusionConfig cfg = cfgs[prng.below(6)];
    const unsigned depth = 1 + static_cast<unsigned>(prng.below(4));

    std::vector<unsigned> ids;
    for (unsigned i = 0; i < 48; ++i)
        ids.push_back(i);
    for (unsigned i = 47; i > 0; --i)
        std::swap(ids[i], ids[prng.below(i + 1)]);
    ids.resize(depth);

    std::vector<std::uint64_t> iters(depth);
    for (unsigned d = 0; d < depth; ++d)
        iters[d] = 1 + prng.below(3);

    InstructionBlock b;
    b.name = "fuzz";
    b.config = cfg;
    b.actShift = static_cast<unsigned>(prng.below(4));
    b.actOutBits = prng.below(2) ? 8 : 0;

    auto &ins = b.instructions;
    ins.push_back(Instruction::setup(cfg.aBits, cfg.wBits, cfg.aSigned,
                                     cfg.wSigned));
    for (unsigned d = 0; d < depth; ++d)
        ins.push_back(Instruction::loop(ids[d], iters[d]));

    const auto IB = BufferId::Ibuf;
    const auto OB = BufferId::Obuf;
    const auto WB = BufferId::Wbuf;
    const auto ACC = AddrSpace::BufAccess;
    const auto MEM = AddrSpace::Mem;
    const auto FILL = AddrSpace::BufFill;

    const unsigned obLevel =
        1 + static_cast<unsigned>(prng.below(depth));

    auto maxAddr = [&](unsigned buf) {
        std::uint64_t top = 0;
        for (const Instruction &inst : ins) {
            if (inst.op != Opcode::GenAddr ||
                inst.buffer() != static_cast<BufferId>(buf) ||
                inst.space() != ACC) {
                continue;
            }
            for (unsigned d = 0; d < depth; ++d)
                if (ids[d] == inst.id && iters[d] > 0)
                    top += (iters[d] - 1) * inst.fullImm();
        }
        return top;
    };
    auto emitAccess = [&](BufferId buf, unsigned level) {
        for (unsigned d = 0; d < level; ++d)
            if (prng.below(2))
                ins.push_back(Instruction::genAddr(
                    buf, ACC, ids[d], 1 + prng.below(3)));
    };
    emitAccess(IB, depth);
    emitAccess(WB, depth);
    emitAccess(OB, obLevel);

    const std::uint64_t ibufNeed =
        maxAddr(static_cast<unsigned>(IB)) + 1;
    const std::uint64_t obufNeed =
        maxAddr(static_cast<unsigned>(OB)) + 1;
    const std::uint64_t wbufAccessNeed =
        maxAddr(static_cast<unsigned>(WB)) + 1;

    const std::uint64_t wbRows = 1 + prng.below(3);
    const std::uint64_t wbWords = divCeil(wbufAccessNeed, wbRows);
    ins.push_back(
        Instruction::genAddr(WB, MEM, addr_id::dmaRow, wbWords));
    ins.push_back(
        Instruction::genAddr(WB, FILL, addr_id::dmaRow, wbWords));

    const std::uint64_t ibufBase = mem.allocate(ibufNeed);
    const std::uint64_t obufBase = mem.allocate(obufNeed);
    const std::uint64_t wbufBase = mem.allocate(wbRows * wbWords);
    b.baseAddr = {ibufBase, obufBase, wbufBase};
    Prng fill(prng.next());
    for (std::uint64_t i = 0; i < ibufNeed; ++i)
        mem.write(ibufBase + i,
                  cfg.aSigned ? fill.nextSigned(cfg.aBits)
                              : fill.nextUnsigned(cfg.aBits));
    for (std::uint64_t i = 0; i < wbRows * wbWords; ++i)
        mem.write(wbufBase + i,
                  cfg.wSigned ? fill.nextSigned(cfg.wBits)
                              : fill.nextUnsigned(cfg.wBits));

    const unsigned ldLevel =
        static_cast<unsigned>(prng.below(obLevel + 1));
    ins.push_back(Instruction::ldMem(IB, ldLevel, ibufNeed));
    ins.push_back(Instruction::setRows(ldLevel, wbRows));
    ins.push_back(Instruction::ldMem(WB, ldLevel, wbWords));
    ins.push_back(Instruction::ldMem(OB, ldLevel, obufNeed));
    const bool pooling = prng.below(4) == 0;
    ins.push_back(Instruction::rdBuf(OB, obLevel));
    if (pooling) {
        ins.push_back(Instruction::compute(ComputeFn::Reset, obLevel));
        ins.push_back(Instruction::rdBuf(IB, depth));
        ins.push_back(Instruction::compute(ComputeFn::Max, depth));
    } else {
        ins.push_back(Instruction::rdBuf(IB, depth));
        ins.push_back(Instruction::rdBuf(WB, depth));
        ins.push_back(Instruction::compute(ComputeFn::Mac, depth));
    }
    ins.push_back(Instruction::wrBuf(OB, obLevel, true));
    ins.push_back(Instruction::stMem(OB, ldLevel, obufNeed, true,
                                     prng.below(2) != 0));
    ins.push_back(Instruction::blockEnd(0));
    b.validate();
    return b;
}

TEST(StoreRoundTrip, CompilerBlocksAllConfigs)
{
    const Compiler compiler(batch1Config());
    const FusionConfig cfgs[] = {zoo::cfg1x1(), zoo::cfg2x2(),
                                 zoo::cfg4x1(), zoo::cfg4x4(),
                                 zoo::cfg8x8(), zoo::cfg16x16()};
    unsigned seed = 700;
    for (const FusionConfig &cfg : cfgs) {
        // One conv (fused 3-D nest) and one fc (2-D set-rows DMA)
        // per paper config.
        {
            const Layer layer =
                Layer::conv("c", 4, 7, 7, 6, 3, 1, 1, cfg, 2);
            Prng prng(++seed);
            MemoryModel mem;
            BlockBases bases;
            const unsigned hp = layer.inH + 2 * layer.pad;
            const unsigned wp = layer.inW + 2 * layer.pad;
            bases.input = mem.allocate(
                static_cast<std::size_t>(layer.inC) * hp * wp);
            for (std::uint64_t i = 0;
                 i < static_cast<std::uint64_t>(layer.inC) * hp * wp;
                 ++i)
                mem.write(bases.input + i,
                          cfg.aSigned ? prng.nextSigned(cfg.aBits)
                                      : prng.nextUnsigned(cfg.aBits));
            bases.weights = mem.allocate(layer.weightCount());
            for (std::uint64_t i = 0; i < layer.weightCount(); ++i)
                mem.write(bases.weights + i,
                          cfg.wSigned ? prng.nextSigned(cfg.wBits)
                                      : prng.nextUnsigned(cfg.wBits));
            bases.output = mem.allocate(layer.outputCount());
            ActFusion act;
            act.enabled = true;
            act.shift = 3;
            act.outBits = 8;
            checkSerdeRoundTrip(compiler.emitConv(layer, bases, 3, act),
                                mem, "conv " + cfg.toString());
        }
        {
            const Layer layer = Layer::fc("f", 24, 10, cfg);
            Prng prng(++seed);
            MemoryModel mem;
            BlockBases bases;
            bases.input = mem.allocate(layer.inputCount());
            for (std::uint64_t i = 0; i < layer.inputCount(); ++i)
                mem.write(bases.input + i,
                          cfg.aSigned ? prng.nextSigned(cfg.aBits)
                                      : prng.nextUnsigned(cfg.aBits));
            bases.weights = mem.allocate(layer.weightCount());
            for (std::uint64_t i = 0; i < layer.weightCount(); ++i)
                mem.write(bases.weights + i,
                          cfg.wSigned ? prng.nextSigned(cfg.wBits)
                                      : prng.nextUnsigned(cfg.wBits));
            bases.output = mem.allocate(layer.outC);
            checkSerdeRoundTrip(compiler.emitFc(layer, bases, 5, 8),
                                mem, "fc " + cfg.toString());
        }
    }
}

TEST(StoreRoundTrip, FuzzedBlocks)
{
    // Same generator and seed family as the PR 5 fuzz corpus.
    Prng prng(20260808);
    for (unsigned round = 0; round < 40; ++round) {
        MemoryModel mem;
        const InstructionBlock block = fuzzBlock(prng, mem);
        checkSerdeRoundTrip(block, mem,
                            "fuzz round " + std::to_string(round));
    }
}

/**
 * Shrink a zoo layer to interpreter scale (same reductions as
 * test_interp_plan.cc) so the full catalog round-trips in test time.
 */
Layer
shrinkLayer(const Layer &l)
{
    Layer s = l;
    const unsigned g = std::max(1u, l.groups);
    auto capChannels = [g](unsigned c, unsigned cap) {
        unsigned limit = std::max(g, cap - cap % g);
        unsigned v = std::min(c, limit);
        v -= v % g;
        return std::max(v, g);
    };
    switch (l.kind) {
      case LayerKind::Conv:
        s.inC = capChannels(l.inC, 8);
        s.outC = capChannels(l.outC, 8);
        s.inH = std::min(l.inH, std::max(l.kH, 6u));
        s.inW = std::min(l.inW, std::max(l.kW, 6u));
        break;
      case LayerKind::FullyConnected:
      case LayerKind::Rnn:
      case LayerKind::Lstm:
        s.inC = std::min(l.inC, 48u);
        s.outC = std::min(l.outC, 24u);
        break;
      case LayerKind::Pool:
        s.inC = std::min(l.inC, 6u);
        s.inH = std::min(l.inH, std::max(l.kH * 2, 8u));
        s.inW = std::min(l.inW, std::max(l.kW * 2, 8u));
        break;
      case LayerKind::Activation:
        s.inC = std::min(l.inC, 4u);
        s.inH = std::min(l.inH, 6u);
        s.inW = std::min(l.inW, 6u);
        break;
    }
    return s;
}

Network
shrinkNetwork(const Network &net)
{
    std::vector<Layer> layers;
    for (const Layer &l : net.layers())
        layers.push_back(shrinkLayer(l));
    return Network(net.name() + "-small", layers);
}

/** Random representable input/weight image for a compiled network. */
MemoryModel
seedMemory(const CompiledNetwork &cn, unsigned seed)
{
    std::uint64_t total = 0;
    for (const LayerSchedule &sched : cn.schedules)
        total = std::max(
            total, ExecPlan::build(sched.block)->memoryExtent());

    MemoryModel mem;
    mem.allocate(total);
    Prng prng(seed);
    for (const LayerSchedule &sched : cn.schedules) {
        const Layer &l = sched.layer;
        const auto &base = sched.block.baseAddr;
        const std::uint64_t inElems =
            l.kind == LayerKind::Conv
                ? static_cast<std::uint64_t>(l.inC) *
                      (l.inH + 2 * l.pad) * (l.inW + 2 * l.pad)
                : l.inputCount();
        for (std::uint64_t i = 0; i < inElems; ++i)
            mem.write(base[0] + i,
                      l.bits.aSigned ? prng.nextSigned(l.bits.aBits)
                                     : prng.nextUnsigned(l.bits.aBits));
        if (sched.usesMacArray) {
            for (std::uint64_t i = 0; i < l.weightCount(); ++i)
                mem.write(base[2] + i,
                          l.bits.wSigned
                              ? prng.nextSigned(l.bits.wBits)
                              : prng.nextUnsigned(l.bits.wBits));
        }
    }
    return mem;
}

TEST(StoreRoundTrip, ModelZooNetworksByteStableAndParityIdentical)
{
    const Compiler compiler(batch1Config());
    unsigned seed = 4200;
    for (const zoo::Benchmark &bench : zoo::all()) {
        for (const Network *variant :
             {&bench.quantized, &bench.baseline}) {
            const Network net = shrinkNetwork(*variant);
            const CompiledNetwork cn = compiler.compile(net);

            // Network serde: byte-stable round trip.
            const std::string bytes = serializeCompiledNetwork(cn);
            const CompiledNetwork back =
                deserializeCompiledNetwork(bytes);
            EXPECT_EQ(serializeCompiledNetwork(back), bytes)
                << net.name();
            ASSERT_EQ(back.schedules.size(), cn.schedules.size())
                << net.name();

            // The deserialized network's blocks reproduce the
            // original compile's reference walk exactly -- stats and
            // memory -- on every dispatch tier.
            const MemoryModel seedMem = seedMemory(cn, ++seed);
            MemoryModel legacyMem = seedMem;
            Interpreter legacy(legacyMem);
            for (const LayerSchedule &sched : cn.schedules)
                legacy.runLegacy(sched.block);

            for (DispatchTier tier : kAllTiers) {
                const std::string where = net.name() + " [" +
                                          dispatchTierName(tier) + "]";
                MemoryModel planMem = seedMem;
                Interpreter interp(planMem);
                for (const LayerSchedule &sched : back.schedules)
                    interp.run(*ExecPlan::build(sched.block), tier);
                expectStatsEqual(legacy.stats(), interp.stats(),
                                 where);
                expectMemoryEqual(legacyMem, planMem, where);
            }
        }
    }
}

// ----------------------------------------------- cache warm starts

TEST(StoreCache, ArtifactWarmStartAcrossFreshCaches)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const Platform &platform = bitfusionPlatform();
    const Network net = smallFcNet();

    ArtifactCache cold;
    cold.attachStore(&store);
    EXPECT_EQ(cold.store(), &store);
    const auto first = cold.get(platform, net);
    ASSERT_NE(first.artifact, nullptr);
    EXPECT_TRUE(first.compiled);
    EXPECT_EQ(cold.compileCount(), 1u);
    EXPECT_EQ(cold.storeHitCount(), 0u);

    ArtifactCache warm;
    warm.attachStore(&store);
    const auto second = warm.get(platform, net);
    ASSERT_NE(second.artifact, nullptr);
    EXPECT_EQ(warm.compileCount(), 0u);
    EXPECT_EQ(warm.storeHitCount(), 1u);
    // The loaded artifact is byte-equivalent to the compiled one.
    EXPECT_EQ(platform.serializeArtifact(*second.artifact),
              platform.serializeArtifact(*first.artifact));

    // In-memory hits never touch the store again.
    const auto sBefore = store.stats();
    ASSERT_NE(warm.get(platform, net).artifact, nullptr);
    EXPECT_EQ(warm.hitCount(), 1u);
    EXPECT_EQ(store.stats().hits, sBefore.hits);
}

TEST(StoreCache, PlanWarmStartAcrossFreshCaches)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const InstructionBlock block = smallFcBlock(zoo::cfg8x8());

    ArtifactCache cold;
    cold.attachStore(&store);
    const auto built = cold.plan(block);
    ASSERT_NE(built, nullptr);
    EXPECT_EQ(cold.planCount(), 1u);

    ArtifactCache warm;
    warm.attachStore(&store);
    const auto loaded = warm.plan(block);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(warm.planCount(), 0u);
    EXPECT_EQ(warm.planStoreHitCount(), 1u);
    EXPECT_EQ(serializePlan(*loaded), serializePlan(*built));
}

TEST(StoreCache, DetachedCacheNeverTouchesTheStore)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const Platform &platform = bitfusionPlatform();
    const Network net = smallFcNet();
    {
        ArtifactCache seeded;
        seeded.attachStore(&store);
        ASSERT_NE(seeded.get(platform, net).artifact, nullptr);
    }

    ArtifactCache detached;
    EXPECT_EQ(detached.store(), nullptr);
    ASSERT_NE(detached.get(platform, net).artifact, nullptr);
    EXPECT_EQ(detached.compileCount(), 1u);
    EXPECT_EQ(detached.storeHitCount(), 0u);
    EXPECT_EQ(store.stats().hits, 0u);

    // clear() keeps the attachment; detach is explicit.
    ArtifactCache attached;
    attached.attachStore(&store);
    attached.clear();
    EXPECT_EQ(attached.store(), &store);
    attached.attachStore(nullptr);
    EXPECT_EQ(attached.store(), nullptr);
}

// -------------------------------------------------------- races

TEST(StoreRace, PrivateCachesRacingColdStoreLeaveOneRecord)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const Platform &platform = bitfusionPlatform();
    const Network net = smallFcNet();

    constexpr unsigned kThreads = 8;
    std::vector<std::string> bytes(kThreads);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            // Each worker is its own "process": a private cache over
            // the shared store, so every one races the publish.
            ArtifactCache cache;
            cache.attachStore(&store);
            const auto outcome = cache.get(platform, net);
            if (outcome.artifact != nullptr)
                bytes[t] =
                    platform.serializeArtifact(*outcome.artifact);
        });
    }
    for (auto &w : workers)
        w.join();

    ASSERT_FALSE(bytes[0].empty());
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(bytes[t], bytes[0]) << "thread " << t;
    EXPECT_EQ(countFiles(dir.path, ".bfa"), 1u);
    EXPECT_EQ(countFiles(dir.path, ".tmp"), 0u);

    // Whatever record won the renames, a fresh cache warm-starts.
    ArtifactCache warm;
    warm.attachStore(&store);
    ASSERT_NE(warm.get(platform, net).artifact, nullptr);
    EXPECT_EQ(warm.compileCount(), 0u);
    EXPECT_EQ(warm.storeHitCount(), 1u);
}

TEST(StoreRace, SharedCacheResolvesOnceUnderContention)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const Platform &platform = bitfusionPlatform();
    const Network net = smallFcNet();

    ArtifactCache cache;
    cache.attachStore(&store);
    constexpr unsigned kThreads = 8;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&] {
            const auto outcome = cache.get(platform, net);
            EXPECT_NE(outcome.artifact, nullptr);
        });
    }
    for (auto &w : workers)
        w.join();

    // Exactly one resolution happened, however the threads raced.
    EXPECT_EQ(cache.compileCount() + cache.storeHitCount(), 1u);
    EXPECT_EQ(cache.hitCount(), kThreads - 1);
    EXPECT_EQ(countFiles(dir.path, ".tmp"), 0u);
}

TEST(StoreRace, PlanPublishRaceIsByteIdentical)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const InstructionBlock block = smallFcBlock(zoo::cfg4x4());

    constexpr unsigned kThreads = 8;
    std::vector<std::string> bytes(kThreads);
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            ArtifactCache cache;
            cache.attachStore(&store);
            const auto plan = cache.plan(block);
            if (plan != nullptr)
                bytes[t] = serializePlan(*plan);
        });
    }
    for (auto &w : workers)
        w.join();

    ASSERT_FALSE(bytes[0].empty());
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(bytes[t], bytes[0]) << "thread " << t;
    EXPECT_EQ(countFiles(dir.path, ".bfa"), 1u);
    EXPECT_EQ(countFiles(dir.path, ".tmp"), 0u);
}

TEST(StoreRace, TwoProcessColdRaceIsSafe)
{
    TempDir dir;
    const std::string side = dir.path + ".child-bytes";
    const Network net = smallFcNet();
    const PlatformSpec spec =
        PlatformRegistry::builtin().parse("bitfusion");

    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
        // Child: a genuinely separate process with its own store
        // handle, cache, and platform, racing the same cold key. No
        // gtest in here -- failures surface as exit codes.
        ArtifactStore store(dir.path);
        ArtifactCache cache;
        cache.attachStore(&store);
        const auto platform = PlatformRegistry::builtin().build(spec);
        const auto outcome = cache.get(*platform, net);
        if (outcome.artifact == nullptr)
            _exit(10);
        const std::string mine =
            platform->serializeArtifact(*outcome.artifact);
        std::ofstream out(side, std::ios::binary);
        out.write(mine.data(),
                  static_cast<std::streamsize>(mine.size()));
        out.close();
        _exit(out.good() ? 0 : 11);
    }

    ArtifactStore store(dir.path);
    ArtifactCache cache;
    cache.attachStore(&store);
    const auto platform = PlatformRegistry::builtin().build(spec);
    const auto outcome = cache.get(*platform, net);
    ASSERT_NE(outcome.artifact, nullptr);
    const std::string mine =
        platform->serializeArtifact(*outcome.artifact);

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    // Both processes computed byte-identical artifacts, exactly one
    // record survived, and no temp files leaked.
    EXPECT_EQ(readFile(side), mine);
    EXPECT_EQ(countFiles(dir.path, ".bfa"), 1u);
    EXPECT_EQ(countFiles(dir.path, ".tmp"), 0u);

    // The surviving record is valid: a third "process" warm-starts.
    ArtifactCache warm;
    warm.attachStore(&store);
    ASSERT_NE(warm.get(*platform, net).artifact, nullptr);
    EXPECT_EQ(warm.compileCount(), 0u);
    EXPECT_EQ(warm.storeHitCount(), 1u);

    std::error_code ec;
    fs::remove(side, ec);
}

// ------------------------------------------------- golden parity

TEST(StoreGolden, SweepsAreByteIdenticalColdAndWarm)
{
    for (const char *id : {"fig13", "fig14", "fig17", "fig18"}) {
        const figures::Figure *fig = figures::find(id);
        ASSERT_NE(fig, nullptr) << id;
        const SweepSpec spec = fig->spec();

        // Store-less baseline at the goldens' recorded thread count.
        SweepOptions base;
        base.threads = 2;
        ArtifactCache plain;
        base.cache = &plain;
        const std::string expected =
            SweepRunner(base).run(spec).json(false);

        TempDir dir;
        ArtifactStore store(dir.path);

        ArtifactCache coldCache;
        SweepOptions coldOpts = base;
        coldOpts.cache = &coldCache;
        coldOpts.store = &store;
        EXPECT_EQ(SweepRunner(coldOpts).run(spec).json(false),
                  expected)
            << id << " cold";
        EXPECT_GT(store.stats().publishes, 0u) << id;

        ArtifactCache warmCache;
        SweepOptions warmOpts = base;
        warmOpts.cache = &warmCache;
        warmOpts.store = &store;
        EXPECT_EQ(SweepRunner(warmOpts).run(spec).json(false),
                  expected)
            << id << " warm";
        // The warm run resolved everything from disk: zero compiles,
        // zero plan lowerings.
        EXPECT_EQ(warmCache.compileCount(), 0u) << id;
        EXPECT_EQ(warmCache.planCount(), 0u) << id;
        EXPECT_GT(warmCache.storeHitCount(), 0u) << id;
        EXPECT_EQ(countFiles(dir.path, ".tmp"), 0u) << id;
    }
}

TEST(StoreGolden, Fig13WarmStoreMatchesTheCommittedGolden)
{
    std::ifstream in(std::string(BITFUSION_SOURCE_DIR) +
                     "/tests/golden/fig13.json");
    ASSERT_TRUE(in.good());
    std::stringstream golden;
    golden << in.rdbuf();
    std::string expected = golden.str();
    ASSERT_FALSE(expected.empty());
    if (expected.back() == '\n')
        expected.pop_back(); // the CLI appends one newline

    const figures::Figure *fig = figures::find("fig13");
    ASSERT_NE(fig, nullptr);
    const SweepSpec spec = fig->spec();

    TempDir dir;
    ArtifactStore store(dir.path);
    for (const bool warm : {false, true}) {
        ArtifactCache cache;
        SweepOptions opts;
        opts.threads = 2; // the goldens' recorded thread count
        opts.cache = &cache;
        opts.store = &store;
        EXPECT_EQ(SweepRunner(opts).run(spec).json(false), expected)
            << (warm ? "warm" : "cold");
        if (warm) {
            EXPECT_EQ(cache.compileCount(), 0u);
        }
    }
}

TEST(StoreGolden, ServeFifoR1WarmStoreMatchesTheGoldenReport)
{
    using serve::ServeOptions;
    using serve::ServeReport;
    using serve::ServingEngine;
    using serve::TraceSpec;

    std::ifstream in(std::string(BITFUSION_SOURCE_DIR) +
                     "/tests/golden/serve_fifo_r1.json");
    ASSERT_TRUE(in.good());
    std::stringstream golden;
    golden << in.rdbuf();
    std::string expected = golden.str();
    ASSERT_FALSE(expected.empty());
    if (expected.back() == '\n')
        expected.pop_back();

    TraceSpec traceSpec;
    traceSpec.seed = 7;
    traceSpec.requests = 400;
    traceSpec.meanGapUs = 1500.0;
    traceSpec.deadlineSlackUs = 20000.0;

    TempDir dir;
    ArtifactStore store(dir.path);
    for (const bool warm : {false, true}) {
        ArtifactCache cache;
        ServeOptions opts;
        opts.threads = 1;
        opts.maxWaitUs = 500.0;
        opts.cache = &cache;
        opts.store = &store;
        ServingEngine engine(
            PlatformRegistry::builtin().parse("bitfusion"), opts);
        const ServeReport report =
            engine.run(serve::syntheticTrace(traceSpec));
        // The report -- including its "compiles" counter -- is
        // byte-identical whether the work was compiled or loaded.
        EXPECT_EQ(report.json(true), expected)
            << (warm ? "warm" : "cold");
        if (warm) {
            EXPECT_EQ(cache.compileCount(), 0u);
            EXPECT_GT(cache.storeHitCount(), 0u);
        }
    }
}

} // namespace
} // namespace bitfusion
