/**
 * @file
 * Assembler tests: every mnemonic parses, parse(disassemble(x)) == x
 * across compiler-emitted blocks, and malformed input fails loudly.
 */

#include <gtest/gtest.h>

#include "src/compiler/codegen.h"
#include "src/dnn/model_zoo.h"
#include "src/isa/assembler.h"
#include "src/isa/interpreter.h"
#include "src/isa/memory.h"

namespace bitfusion {
namespace {

void
expectSame(const Instruction &a, const Instruction &b)
{
    EXPECT_EQ(a.op, b.op) << b.toString();
    EXPECT_EQ(a.id, b.id) << b.toString();
    EXPECT_EQ(a.spec, b.spec) << b.toString();
    EXPECT_EQ(a.fullImm(), b.fullImm()) << b.toString();
}

TEST(Assembler, ParsesEveryMnemonic)
{
    const Instruction cases[] = {
        Instruction::setup(4, 1, false, false),
        Instruction::setup(16, 16, true, true),
        Instruction::loop(5, 1234),
        Instruction::genAddr(BufferId::Ibuf, AddrSpace::BufAccess, 3, 7),
        Instruction::genAddr(BufferId::Wbuf, AddrSpace::Mem, 1,
                             1 << 20),
        Instruction::genAddr(BufferId::Obuf, AddrSpace::BufFill, 2, 64),
        Instruction::ldMem(BufferId::Ibuf, 0, 4096),
        Instruction::stMem(BufferId::Obuf, 1, 64, true, true),
        Instruction::stMem(BufferId::Obuf, 2, 32, false, false),
        Instruction::rdBuf(BufferId::Wbuf, 4),
        Instruction::wrBuf(BufferId::Obuf, 3, true),
        Instruction::compute(ComputeFn::Mac, 8),
        Instruction::compute(ComputeFn::Max, 5),
        Instruction::compute(ComputeFn::Reset, 3),
        Instruction::compute(ComputeFn::ReluQuant, 1, (8 << 8) | 3),
        Instruction::setRows(2, 16),
        Instruction::blockEnd(9),
    };
    for (const auto &inst : cases) {
        const Instruction back = Assembler::parseLine(inst.toString());
        expectSame(inst, back);
    }
}

TEST(Assembler, RoundTripsCompilerOutput)
{
    const Compiler compiler(AcceleratorConfig::eyerissMatched45());
    for (const auto &b : zoo::all()) {
        const CompiledNetwork cn = compiler.compile(b.quantized);
        for (const auto &s : cn.schedules) {
            const auto back =
                Assembler::parse(s.block.disassemble());
            ASSERT_EQ(back.size(), s.block.instructions.size())
                << b.name << "/" << s.layer.name;
            for (std::size_t i = 0; i < back.size(); ++i)
                expectSame(s.block.instructions[i], back[i]);
        }
    }
}

TEST(Assembler, IgnoresCommentsAndBlankLines)
{
    const auto prog = Assembler::parse(
        "; a comment line\n"
        "\n"
        "   setup a4u w2s  ; trailing comment\n"
        "loop id=0 iters=10\n");
    ASSERT_EQ(prog.size(), 2u);
    EXPECT_EQ(prog[0].op, Opcode::Setup);
    EXPECT_EQ(prog[1].op, Opcode::Loop);
    EXPECT_EQ(prog[1].fullImm(), 10u);
}

TEST(Assembler, ParsesIndentedBlocks)
{
    const auto prog = Assembler::parse(
        "setup a2u w2s\n"
        "loop id=0 iters=4\n"
        "  loop id=1 iters=2\n"
        "    compute mac @L2\n"
        "block-end next=0\n");
    ASSERT_EQ(prog.size(), 5u);
    EXPECT_EQ(prog[3].op, Opcode::Compute);
    EXPECT_EQ(prog[3].id, 2);
}

TEST(AssemblerDeath, RejectsMalformedInput)
{
    EXPECT_DEATH(Assembler::parseLine("frobnicate x=1"), "unknown opcode");
    EXPECT_DEATH(Assembler::parseLine("loop id=1"), "loop needs");
    EXPECT_DEATH(Assembler::parseLine("setup a4x w2s"), "suffix");
    EXPECT_DEATH(Assembler::parseLine("ld-mem XBUF words=4 @L0"),
                 "unknown buffer");
    EXPECT_DEATH(Assembler::parseLine("gen-addr IBUF.zap loop=0 stride=1"),
                 "address space");
    EXPECT_DEATH(Assembler::parseLine("compute mac @L2/post"),
                 "no post form");
    EXPECT_DEATH(Assembler::parseLine("ld-mem IBUF words=4 @L0 +act"),
                 "unexpected trailing");
}

TEST(Assembler, HandwrittenBlockExecutes)
{
    // A complete hand-written FC block (4 inputs, 2 outputs) straight
    // from assembly text to functional execution.
    const std::string text =
        "setup a8u w8s\n"
        "loop id=0 iters=2\n"   // oc
        "loop id=1 iters=4\n"   // ic
        "gen-addr IBUF.buf loop=1 stride=1\n"
        "gen-addr WBUF.buf loop=0 stride=4\n"
        "gen-addr WBUF.buf loop=1 stride=1\n"
        "gen-addr OBUF.buf loop=0 stride=1\n"
        "ld-mem IBUF words=4 @L0\n"
        "ld-mem WBUF words=8 @L0\n"
        "ld-mem OBUF words=2 @L0\n"
        "rd-buf OBUF @L1\n"
        "rd-buf IBUF @L2\n"
        "rd-buf WBUF @L2\n"
        "compute mac @L2\n"
        "wr-buf OBUF @L1/post\n"
        "st-mem OBUF words=2 @L0/post\n"
        "block-end next=0\n";

    InstructionBlock block;
    block.name = "hand-written";
    block.config = FusionConfig{8, 8, false, true};
    block.instructions = Assembler::parse(text);
    block.validate();

    MemoryModel mem;
    block.baseAddr[0] = mem.allocate(4); // inputs
    block.baseAddr[1] = mem.allocate(2); // outputs
    block.baseAddr[2] = mem.allocate(8); // weights
    const std::int64_t in[4] = {1, 2, 3, 4};
    const std::int64_t w[8] = {1, 0, -1, 2, 5, 5, 5, 5};
    for (int i = 0; i < 4; ++i)
        mem.write(block.baseAddr[0] + i, in[i]);
    for (int i = 0; i < 8; ++i)
        mem.write(block.baseAddr[2] + i, w[i]);

    Interpreter interp(mem);
    interp.run(block);
    EXPECT_EQ(mem.read(block.baseAddr[1] + 0), 1 + 0 - 3 + 8);
    EXPECT_EQ(mem.read(block.baseAddr[1] + 1), 5 * (1 + 2 + 3 + 4));
}

} // namespace
} // namespace bitfusion
