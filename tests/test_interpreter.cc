/**
 * @file
 * End-to-end functional verification: Fusion-ISA blocks emitted by
 * the compiler, executed by the interpreter (through the BitBrick
 * decomposition path), must reproduce the golden nested-loop
 * reference bit-exactly -- across layer kinds, bitwidths, strides,
 * padding, groups, tiling factors, and fused activations.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/compiler/codegen.h"
#include "src/dnn/model_zoo.h"
#include "src/dnn/reference.h"
#include "src/dnn/tensor.h"
#include "src/isa/interpreter.h"
#include "src/isa/memory.h"

namespace bitfusion {
namespace {

/** Write a CHW tensor into memory with zero padding. */
std::uint64_t
writePadded(MemoryModel &mem, const Tensor &t, unsigned pad)
{
    const unsigned hp = t.h() + 2 * pad;
    const unsigned wp = t.w() + 2 * pad;
    const std::uint64_t base =
        mem.allocate(static_cast<std::size_t>(t.c()) * hp * wp);
    for (unsigned c = 0; c < t.c(); ++c)
        for (unsigned y = 0; y < t.h(); ++y)
            for (unsigned x = 0; x < t.w(); ++x)
                mem.write(base +
                              (static_cast<std::uint64_t>(c) * hp +
                               (y + pad)) * wp + (x + pad),
                          t.at(c, y, x));
    return base;
}

std::uint64_t
writeFlat(MemoryModel &mem, const Tensor &t)
{
    const std::uint64_t base = mem.allocate(t.size());
    for (std::size_t i = 0; i < t.size(); ++i)
        mem.write(base + i, t[i]);
    return base;
}

Compiler
testCompiler()
{
    return Compiler(AcceleratorConfig::eyerissMatched45());
}

/** Run a conv block through the interpreter and compare. */
void
checkConv(const Layer &layer, std::uint64_t out_tile, unsigned seed,
          const ActFusion &act = {})
{
    Prng prng(seed);
    Tensor input(layer.inC, layer.inH, layer.inW);
    input.fillRandom(prng, layer.bits.aBits, layer.bits.aSigned);
    Tensor weights(layer.weightCount());
    weights.fillRandom(prng, layer.bits.wBits, layer.bits.wSigned);

    MemoryModel mem;
    BlockBases bases;
    bases.input = writePadded(mem, input, layer.pad);
    bases.weights = writeFlat(mem, weights);
    bases.output = mem.allocate(layer.outputCount());

    const Compiler compiler = testCompiler();
    const InstructionBlock block =
        compiler.emitConv(layer, bases, out_tile, act);
    Interpreter interp(mem);
    interp.run(block);

    Tensor expect = Reference::conv(layer, input, weights);
    if (act.enabled) {
        expect = Reference::relu(expect);
        expect = Reference::requantize(expect, act.outBits, act.shift);
    }
    for (std::size_t i = 0; i < expect.size(); ++i)
        ASSERT_EQ(mem.read(bases.output + i), expect[i])
            << layer.name << " output " << i;

    // MAC count conservation.
    EXPECT_EQ(interp.stats().macs, layer.macsPerSample());
}

void
checkFc(const Layer &layer, std::uint64_t out_tile,
        std::uint64_t in_tile, unsigned seed, const ActFusion &act = {})
{
    Prng prng(seed);
    Tensor input(static_cast<std::size_t>(layer.inC));
    input.fillRandom(prng, layer.bits.aBits, layer.bits.aSigned);
    Tensor weights(layer.weightCount());
    weights.fillRandom(prng, layer.bits.wBits, layer.bits.wSigned);

    MemoryModel mem;
    BlockBases bases;
    bases.input = writeFlat(mem, input);
    bases.weights = writeFlat(mem, weights);
    bases.output = mem.allocate(layer.outC);

    const Compiler compiler = testCompiler();
    const InstructionBlock block =
        compiler.emitFc(layer, bases, out_tile, in_tile, act);
    Interpreter interp(mem);
    interp.run(block);

    Tensor expect = Reference::fullyConnected(layer, input, weights);
    if (act.enabled) {
        expect = Reference::relu(expect);
        expect = Reference::requantize(expect, act.outBits, act.shift);
    }
    for (std::size_t i = 0; i < expect.size(); ++i)
        ASSERT_EQ(mem.read(bases.output + i), expect[i])
            << layer.name << " output " << i;
    EXPECT_EQ(interp.stats().macs, layer.macsPerSample());
}

TEST(InterpreterConv, BasicEightBit)
{
    checkConv(Layer::conv("c", 3, 8, 8, 8, 3, 1, 1, zoo::cfg8x8()), 4,
              1);
}

TEST(InterpreterConv, Binary)
{
    checkConv(Layer::conv("c", 4, 6, 6, 8, 3, 1, 1, zoo::cfg1x1()), 8,
              2);
}

TEST(InterpreterConv, TernaryWeights)
{
    checkConv(Layer::conv("c", 4, 7, 7, 6, 3, 1, 1, zoo::cfg2x2()), 2,
              3);
}

TEST(InterpreterConv, MixedFourOne)
{
    checkConv(Layer::conv("c", 5, 9, 9, 10, 3, 2, 0, zoo::cfg4x1()), 5,
              4);
}

TEST(InterpreterConv, SixteenBitSigned)
{
    checkConv(Layer::conv("c", 2, 5, 5, 4, 3, 1, 1, zoo::cfg16x16()), 4,
              5);
}

TEST(InterpreterConv, StridedNoPad)
{
    checkConv(Layer::conv("c", 3, 11, 11, 4, 3, 2, 0, zoo::cfg8x8()), 4,
              6);
}

TEST(InterpreterConv, LargeKernelWithPad)
{
    checkConv(Layer::conv("c", 2, 12, 12, 4, 5, 1, 2, zoo::cfg8x8()), 2,
              7);
}

TEST(InterpreterConv, GroupedConvolution)
{
    checkConv(Layer::conv("c", 8, 6, 6, 8, 3, 1, 1, zoo::cfg4x4(), 2),
              4, 8);
}

TEST(InterpreterConv, FourGroups)
{
    checkConv(Layer::conv("c", 8, 5, 5, 16, 3, 1, 1, zoo::cfg4x4(), 4),
              2, 9);
}

TEST(InterpreterConv, TileOfOne)
{
    checkConv(Layer::conv("c", 3, 6, 6, 5, 3, 1, 1, zoo::cfg8x8()), 1,
              10);
}

TEST(InterpreterConv, NonDividingTileShrinksToDivisor)
{
    // out_tile 7 against 10 output channels -> emitter picks 5.
    checkConv(Layer::conv("c", 3, 6, 6, 10, 3, 1, 1, zoo::cfg8x8()), 7,
              11);
}

TEST(InterpreterConv, FusedActivation)
{
    ActFusion act;
    act.enabled = true;
    act.shift = 4;
    act.outBits = 8;
    checkConv(Layer::conv("c", 3, 8, 8, 8, 3, 1, 1, zoo::cfg8x8()), 4,
              12, act);
}

TEST(InterpreterConv, OneByOneKernel)
{
    checkConv(Layer::conv("c", 6, 5, 5, 8, 1, 1, 0, zoo::cfg4x4()), 4,
              13);
}

TEST(InterpreterFc, BasicEightBit)
{
    checkFc(Layer::fc("f", 32, 16, zoo::cfg8x8()), 8, 8, 20);
}

TEST(InterpreterFc, Binary)
{
    checkFc(Layer::fc("f", 64, 10, zoo::cfg1x1()), 5, 16, 21);
}

TEST(InterpreterFc, FourFour)
{
    checkFc(Layer::fc("f", 48, 24, zoo::cfg4x4()), 6, 12, 22);
}

TEST(InterpreterFc, SixteenBit)
{
    checkFc(Layer::fc("f", 20, 12, zoo::cfg16x16()), 4, 5, 23);
}

TEST(InterpreterFc, DegenerateTiles)
{
    checkFc(Layer::fc("f", 16, 8, zoo::cfg8x8()), 1, 1, 24);
    checkFc(Layer::fc("f", 16, 8, zoo::cfg8x8()), 8, 16, 25);
}

TEST(InterpreterFc, FusedActivation)
{
    ActFusion act;
    act.enabled = true;
    act.shift = 2;
    act.outBits = 4;
    checkFc(Layer::fc("f", 32, 16, zoo::cfg8x8()), 4, 8, 26, act);
}

TEST(InterpreterFc, RnnCellAsConcatenatedFc)
{
    // The compiler lowers an RNN cell to an FC over [x; h]; the
    // reference computes the same pre-activation values with a
    // rearranged weight layout.
    const Layer rnn = Layer::rnn("r", 12, 10, zoo::cfg4x4());
    Prng prng(27);
    Tensor x(static_cast<std::size_t>(12)), h(static_cast<std::size_t>(10));
    x.fillRandom(prng, 4, false);
    h.fillRandom(prng, 4, false);
    Tensor weights(rnn.weightCount());
    weights.fillRandom(prng, 4, true);

    // Concatenated input and per-row [Wx | Wh] weights.
    Tensor cat(static_cast<std::size_t>(22));
    for (unsigned i = 0; i < 12; ++i)
        cat[i] = x[i];
    for (unsigned i = 0; i < 10; ++i)
        cat[12 + i] = h[i];
    Tensor wcat(rnn.weightCount());
    for (unsigned j = 0; j < 10; ++j) {
        for (unsigned i = 0; i < 12; ++i)
            wcat[j * 22 + i] = weights[j * 12 + i];
        for (unsigned i = 0; i < 10; ++i)
            wcat[j * 22 + 12 + i] = weights[120 + j * 10 + i];
    }

    MemoryModel mem;
    BlockBases bases;
    bases.input = writeFlat(mem, cat);
    bases.weights = writeFlat(mem, wcat);
    bases.output = mem.allocate(10);
    const Compiler compiler = testCompiler();
    const InstructionBlock block = compiler.emitFc(rnn, bases, 5, 11);
    Interpreter interp(mem);
    interp.run(block);

    const Tensor expect = Reference::rnnCell(rnn, x, h, weights);
    for (unsigned j = 0; j < 10; ++j) {
        // Reference applies relu; the raw block does not.
        const std::int64_t raw = mem.read(bases.output + j);
        EXPECT_EQ(std::max<std::int64_t>(raw, 0), expect[j]);
    }
}

TEST(InterpreterPool, MatchesReference)
{
    const Layer pool = Layer::pool("p", 4, 8, 8, 2, 2);
    Prng prng(30);
    Tensor input(4, 8, 8);
    input.fillRandom(prng, 8, false);

    MemoryModel mem;
    BlockBases bases;
    bases.input = writeFlat(mem, input);
    bases.output = mem.allocate(pool.outputCount());
    const Compiler compiler = testCompiler();
    Interpreter interp(mem);
    interp.run(compiler.emitPool(pool, bases));

    const Tensor expect = Reference::maxPool(pool, input);
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(mem.read(bases.output + i), expect[i]);
}

TEST(InterpreterPool, OverlappingWindows)
{
    // AlexNet-style 3x3 stride-2 pooling.
    const Layer pool = Layer::pool("p", 2, 13, 13, 3, 2);
    Prng prng(31);
    Tensor input(2, 13, 13);
    input.fillRandom(prng, 8, true);

    MemoryModel mem;
    BlockBases bases;
    bases.input = writeFlat(mem, input);
    bases.output = mem.allocate(pool.outputCount());
    const Compiler compiler = testCompiler();
    Interpreter interp(mem);
    interp.run(compiler.emitPool(pool, bases));

    const Tensor expect = Reference::maxPool(pool, input);
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(mem.read(bases.output + i), expect[i]);
}

TEST(InterpreterActivation, ReluRequantMatchesReference)
{
    const Layer act = Layer::activation("a", 3, 5, 5);
    Prng prng(32);
    Tensor input(3, 5, 5);
    input.fillRandom(prng, 16, true); // signed inputs exercise relu

    MemoryModel mem;
    BlockBases bases;
    bases.input = writeFlat(mem, input);
    bases.output = mem.allocate(act.outputCount());
    const Compiler compiler = testCompiler();
    Interpreter interp(mem);
    interp.run(compiler.emitActivation(act, bases, 3, 8));

    const Tensor expect =
        Reference::requantize(Reference::relu(input), 8, 3);
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(mem.read(bases.output + i), expect[i]);
}

/** Random sweep across conv shapes and bitwidth configs. */
class InterpreterConvSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(InterpreterConvSweep, RandomLayerMatchesReference)
{
    const int cfg_idx = std::get<0>(GetParam());
    const int shape_idx = std::get<1>(GetParam());
    const FusionConfig cfgs[] = {zoo::cfg1x1(), zoo::cfg2x2(),
                                 zoo::cfg4x1(), zoo::cfg4x4(),
                                 zoo::cfg8x8(), zoo::cfg16x16()};
    struct Shape
    {
        unsigned c, h, oc, k, s, p, g;
    };
    const Shape shapes[] = {
        {3, 8, 6, 3, 1, 1, 1},  {4, 10, 8, 5, 2, 2, 1},
        {2, 6, 4, 1, 1, 0, 1},  {6, 7, 6, 3, 1, 0, 3},
        {8, 6, 12, 3, 2, 1, 4},
    };
    const Shape &s = shapes[shape_idx];
    checkConv(Layer::conv("sweep", s.c, s.h, s.h, s.oc, s.k, s.s, s.p,
                          cfgs[cfg_idx], s.g),
              3, 100 + cfg_idx * 8 + shape_idx);
}

INSTANTIATE_TEST_SUITE_P(Shapes, InterpreterConvSweep,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 5)));

TEST(InterpreterStats, TracksTrafficAndOccupancy)
{
    const Layer fc = Layer::fc("f", 32, 16, zoo::cfg8x8());
    Prng prng(40);
    Tensor input(static_cast<std::size_t>(32));
    input.fillRandom(prng, 8, false);
    Tensor weights(fc.weightCount());
    weights.fillRandom(prng, 8, true);

    MemoryModel mem;
    BlockBases bases;
    bases.input = writeFlat(mem, input);
    bases.weights = writeFlat(mem, weights);
    bases.output = mem.allocate(16);
    const Compiler compiler = testCompiler();
    Interpreter interp(mem);
    interp.run(compiler.emitFc(fc, bases, 8, 16));

    const InterpStats &st = interp.stats();
    // Weights loaded exactly once (each tile fetched once).
    EXPECT_EQ(st.dramLoadElems[static_cast<unsigned>(BufferId::Wbuf)],
              fc.weightCount());
    // Outputs stored exactly once.
    EXPECT_EQ(st.dramStoreElems[static_cast<unsigned>(BufferId::Obuf)],
              16u);
    // Every MAC reads one input and one weight from the buffers.
    EXPECT_EQ(st.bufReads[static_cast<unsigned>(BufferId::Ibuf)],
              fc.macsPerSample());
    EXPECT_EQ(st.bufReads[static_cast<unsigned>(BufferId::Wbuf)],
              fc.macsPerSample());
    EXPECT_EQ(st.macs, fc.macsPerSample());
    EXPECT_GT(st.bitBrickOps, 0u);
    // 8x8 -> 16 BitBrick ops per MAC.
    EXPECT_EQ(st.bitBrickOps, st.macs * 16);
}

} // namespace
} // namespace bitfusion
