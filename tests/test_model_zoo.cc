/**
 * @file
 * Model-zoo tests: the eight benchmarks must reproduce the paper's
 * Table II op counts and the Fig. 1 bitwidth characteristics.
 */

#include <gtest/gtest.h>

#include "src/dnn/model_zoo.h"

namespace bitfusion {
namespace {

TEST(ModelZoo, AllEightBenchmarksPresent)
{
    const auto all = zoo::all();
    ASSERT_EQ(all.size(), 8u);
    const char *names[] = {"AlexNet", "Cifar-10", "LSTM",  "LeNet-5",
                           "ResNet-18", "RNN",    "SVHN",  "VGG-7"};
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].name, names[i]);
}

/** Mops within tolerance of Table II (ResNet-18 deviates; see
 *  EXPERIMENTS.md). */
TEST(ModelZoo, TableTwoMacCounts)
{
    for (const auto &b : zoo::all()) {
        const double mops =
            static_cast<double>(b.quantized.totalMacs()) / 1e6;
        if (b.name == "ResNet-18")
            continue;
        EXPECT_NEAR(mops, b.paperMops, 0.15 * b.paperMops) << b.name;
    }
}

TEST(ModelZoo, AlexNetMatchesPaperExactly)
{
    // 2,678 Mops in Table II; the 2x-wide WRPN model.
    const auto b = zoo::alexnet();
    EXPECT_NEAR(static_cast<double>(b.quantized.totalMacs()) / 1e6,
                2678.0, 5.0);
    // Regular model ~ 666M + 58.6M FC MACs.
    EXPECT_NEAR(static_cast<double>(b.baseline.totalMacs()) / 1e6,
                724.0, 5.0);
}

TEST(ModelZoo, Cifar10MatchesPaperExactly)
{
    EXPECT_NEAR(
        static_cast<double>(zoo::cifar10().quantized.totalMacs()) / 1e6,
        617.0, 2.0);
}

TEST(ModelZoo, RecurrentModelsMatchTableTwo)
{
    EXPECT_NEAR(
        static_cast<double>(zoo::rnn().quantized.totalMacs()) / 1e6,
        17.0, 0.5);
    EXPECT_NEAR(
        static_cast<double>(zoo::lstm().quantized.totalMacs()) / 1e6,
        13.0, 0.5);
}

TEST(ModelZoo, MacFractionAboveNinetyNinePercent)
{
    // The Fig. 1 table: >99% of all ops are multiply-adds.
    for (const auto &b : zoo::all())
        EXPECT_GT(b.quantized.macFraction(), 0.99) << b.name;
}

TEST(ModelZoo, BinaryNetworksAreBinaryDominated)
{
    // Fig. 1: Cifar-10 and SVHN run ~99% of MACs at 1b/1b.
    for (const auto &b : {zoo::cifar10(), zoo::svhn()}) {
        const auto prof = b.quantized.macBitwidthProfile();
        const auto it = prof.find("1b/1b");
        ASSERT_NE(it, prof.end()) << b.name;
        EXPECT_GT(it->second, 0.95) << b.name;
    }
}

TEST(ModelZoo, TernaryNetworksUseTwoBit)
{
    for (const auto &b : {zoo::lenet5(), zoo::vgg7()}) {
        const auto prof = b.quantized.macBitwidthProfile();
        const auto it = prof.find("2b/2b");
        ASSERT_NE(it, prof.end()) << b.name;
        EXPECT_GT(it->second, 0.90) << b.name;
    }
}

TEST(ModelZoo, AlexNetBitwidthSplitMatchesFigOne)
{
    // Fig. 1: AlexNet splits between 4b/1b (dominant) and 8b/8b
    // (first conv + last FC). Fig. 1's 85/15 split is on the regular
    // model; the 2x-wide model shifts further toward 4b/1b because
    // the interior layers quadruple while conv1 only doubles.
    const auto prof = zoo::alexnet().quantized.macBitwidthProfile();
    ASSERT_TRUE(prof.count("4b/1b"));
    ASSERT_TRUE(prof.count("8b/8b"));
    EXPECT_GT(prof.at("4b/1b"), 0.80);
    EXPECT_LT(prof.at("8b/8b"), 0.20);
    EXPECT_NEAR(prof.at("4b/1b") + prof.at("8b/8b"), 1.0, 1e-9);

    // The regular-width model reproduces the published 85/15 split.
    Network regular = zoo::alexnet().baseline;
    std::vector<Layer> layers = regular.layers();
    for (auto &l : layers) {
        if (!l.usesMacArray())
            continue;
        const bool edge = l.name == "conv1" || l.name == "fc8";
        l.bits = edge ? zoo::cfg8x8() : zoo::cfg4x1();
    }
    const auto rprof =
        Network("a", layers).macBitwidthProfile();
    EXPECT_NEAR(rprof.at("4b/1b"), 0.85, 0.03);
    EXPECT_NEAR(rprof.at("8b/8b"), 0.15, 0.03);
}

TEST(ModelZoo, RecurrentsAreFourBit)
{
    for (const auto &b : {zoo::rnn(), zoo::lstm()}) {
        const auto prof = b.quantized.macBitwidthProfile();
        ASSERT_TRUE(prof.count("4b/4b")) << b.name;
        EXPECT_DOUBLE_EQ(prof.at("4b/4b"), 1.0) << b.name;
    }
}

TEST(ModelZoo, WideModelsQuadrupleConvMacs)
{
    // The 2x-wide WRPN models double channels on both sides of the
    // interior convolutions -> ~4x MACs vs the regular baselines.
    const auto a = zoo::alexnet();
    const double ratio =
        static_cast<double>(a.quantized.totalMacs()) /
        static_cast<double>(a.baseline.totalMacs());
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 4.2);
    const auto r = zoo::resnet18();
    const double rr = static_cast<double>(r.quantized.totalMacs()) /
                      static_cast<double>(r.baseline.totalMacs());
    EXPECT_GT(rr, 3.0);
    EXPECT_LT(rr, 4.2);
}

TEST(ModelZoo, BaselinesShareTopologyWhereNotWidened)
{
    // Cifar-10/SVHN/LeNet/VGG-7/RNN/LSTM baselines have identical op
    // counts to their quantized variants (only bitwidths differ).
    for (const auto &b : {zoo::cifar10(), zoo::svhn(), zoo::lenet5(),
                          zoo::vgg7(), zoo::rnn(), zoo::lstm()}) {
        EXPECT_EQ(b.quantized.totalMacs(), b.baseline.totalMacs())
            << b.name;
        EXPECT_EQ(b.quantized.totalWeights(), b.baseline.totalWeights())
            << b.name;
    }
}

TEST(ModelZoo, BaselinesAreSixteenBit)
{
    for (const auto &b : zoo::all())
        for (const auto &l : b.baseline.layers()) {
            if (l.usesMacArray()) {
                EXPECT_EQ(l.bits.aBits, 16u) << b.name << "/" << l.name;
            }
        }
}

TEST(ModelZoo, ConvNetStructureSane)
{
    // For the strictly sequential networks, every layer's input
    // shape chains from the previous layer's output shape.
    // (ResNet-18 is excluded: residual/downsample branches are not
    // sequential.)
    for (const auto &b : {zoo::alexnet(), zoo::cifar10(), zoo::svhn(),
                          zoo::lenet5(), zoo::vgg7()}) {
        std::uint64_t prev_out = 0;
        for (const auto &l : b.quantized.layers()) {
            if (prev_out != 0) {
                EXPECT_EQ(l.inputCount(), prev_out)
                    << b.name << "/" << l.name;
            }
            prev_out = l.outputCount();
        }
    }
}

} // namespace
} // namespace bitfusion
