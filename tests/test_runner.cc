/**
 * @file
 * Sweep-runner tests: grid expansion, compiled-network cache
 * behavior, determinism across thread counts, result lookup, and
 * the JSON output shape.
 */

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/core/artifact_cache.h"
#include "src/dnn/model_zoo.h"
#include "src/runner/figures.h"
#include "src/baselines/eyeriss.h"
#include "src/runner/sweep.h"
#include "src/sim/bitfusion_platform.h"

namespace bitfusion {
namespace {

/**
 * Sweep options with a caller-owned artifact cache, so each test's
 * hit/miss accounting is isolated from the process-level cache the
 * other tests (and the serving engine) share.
 */
SweepOptions
isolated(unsigned threads, ArtifactCache &cache)
{
    SweepOptions opts;
    opts.threads = threads;
    opts.cache = &cache;
    return opts;
}

/** Small two-layer network so sweeps stay fast. */
Network
tinyNet(const std::string &name, unsigned out_c)
{
    Network net(name, {});
    net.add(Layer::fc("fc1", 64, out_c, zoo::cfg8x8()));
    net.add(Layer::fc("fc2", out_c, 16, zoo::cfg4x4()));
    return net;
}

SweepSpec
tinySpec(std::vector<unsigned> batches = {})
{
    SweepSpec spec;
    spec.name = "tiny";
    spec.platforms = {
        bitfusionPlatform(AcceleratorConfig::eyerissMatched45(), "bf-a"),
        bitfusionPlatform(AcceleratorConfig::stripesTileMatched45(), "bf-b"),
        eyerissPlatform(),
    };
    spec.networks = {
        SweepNetwork::uniform("net64", tinyNet("net64", 64)),
        SweepNetwork::uniform("net128", tinyNet("net128", 128)),
    };
    spec.batches = std::move(batches);
    return spec;
}

TEST(SweepGrid, ExpansionIsPlatformMajor)
{
    const SweepSpec spec = tinySpec();
    const auto cells = SweepRunner::expand(spec);
    ASSERT_EQ(cells.size(), spec.cellCount());
    ASSERT_EQ(cells.size(), 3u * 2u);
    // Platform-major, then network; batch 0 = platform default.
    EXPECT_EQ(cells[0].platformIndex, 0u);
    EXPECT_EQ(cells[0].networkIndex, 0u);
    EXPECT_EQ(cells[0].batch, 0u);
    EXPECT_EQ(cells[1].platformIndex, 0u);
    EXPECT_EQ(cells[1].networkIndex, 1u);
    EXPECT_EQ(cells[5].platformIndex, 2u);
    EXPECT_EQ(cells[5].networkIndex, 1u);
}

TEST(SweepGrid, BatchOverridesMultiplyTheGrid)
{
    const SweepSpec spec = tinySpec({1, 8, 32});
    const auto cells = SweepRunner::expand(spec);
    ASSERT_EQ(cells.size(), 3u * 2u * 3u);
    // Batch is the innermost dimension.
    EXPECT_EQ(cells[0].batch, 1u);
    EXPECT_EQ(cells[1].batch, 8u);
    EXPECT_EQ(cells[2].batch, 32u);
    EXPECT_EQ(cells[3].networkIndex, 1u);
    EXPECT_EQ(cells[3].batch, 1u);
}

TEST(SweepCache, OneCompilePerDistinctConfigNetworkBatch)
{
    // Two platforms differing only in bandwidth/frequency share
    // compiled networks: the compile key covers exactly what the
    // Compiler consumes.
    SweepSpec spec;
    spec.name = "cache";
    AcceleratorConfig a = AcceleratorConfig::eyerissMatched45();
    AcceleratorConfig b = a;
    b.bwBitsPerCycle = 512;
    b.freqMHz = 980.0;
    spec.platforms = {bitfusionPlatform(a, "slow"),
                      bitfusionPlatform(b, "fast")};
    spec.networks = {SweepNetwork::uniform("net64", tinyNet("net64", 64))};

    ArtifactCache cache;
    const SweepResult result = SweepRunner(isolated(1, cache)).run(spec);
    EXPECT_EQ(result.compileCount(), 1u);
    EXPECT_EQ(result.cacheHits(), 1u);
    EXPECT_EQ(result.cells().size(), 2u);
    EXPECT_EQ(cache.compileCount(), 1u);
}

TEST(SweepCache, DistinctBatchesCompileSeparately)
{
    // cfg.batch feeds the compiler (schedule n-dimension), so each
    // batch size is its own cache entry.
    SweepSpec spec;
    spec.name = "cache-batch";
    spec.platforms = {bitfusionPlatform(
        AcceleratorConfig::eyerissMatched45(), "bf")};
    spec.networks = {SweepNetwork::uniform("net64", tinyNet("net64", 64))};
    spec.batches = {1, 4, 16};

    ArtifactCache cache;
    const SweepResult result = SweepRunner(isolated(1, cache)).run(spec);
    EXPECT_EQ(result.compileCount(), 3u);
    EXPECT_EQ(result.cacheHits(), 0u);
}

TEST(SweepCache, SecondSweepReusesTheSharedCache)
{
    // The cache outlives a single run: a repeated sweep (same spec,
    // same cache) performs no new compilation -- visible on the
    // cache's own counters -- while the recorded sweep counters stay
    // a pure function of the spec and the results stay identical.
    const SweepSpec spec = tinySpec();
    ArtifactCache cache;
    const SweepResult first = SweepRunner(isolated(1, cache)).run(spec);
    EXPECT_GT(first.compileCount(), 0u);
    EXPECT_EQ(cache.compileCount(), first.compileCount());
    EXPECT_EQ(cache.hitCount(), 0u);

    const SweepResult again = SweepRunner(isolated(1, cache)).run(spec);
    EXPECT_EQ(again.compileCount(), first.compileCount());
    EXPECT_EQ(again.cacheHits(), first.cacheHits());
    EXPECT_EQ(cache.compileCount(), first.compileCount());
    EXPECT_EQ(cache.hitCount(), first.compileCount());
    ASSERT_EQ(first.cells().size(), again.cells().size());
    for (std::size_t i = 0; i < first.cells().size(); ++i) {
        EXPECT_EQ(first.cells()[i].stats.totalCycles,
                  again.cells()[i].stats.totalCycles);
    }
}

TEST(SweepCache, GeometryChangeSharesCompiledNetwork)
{
    // Tiling is buffer-driven; the array geometry only matters at
    // simulation time, so geometry variants share the cache while
    // a scratchpad change is a genuine miss.
    SweepSpec spec;
    spec.name = "cache-geom";
    AcceleratorConfig a = AcceleratorConfig::eyerissMatched45();
    AcceleratorConfig b = a;
    b.rows = 16;
    b.cols = 32;
    AcceleratorConfig c = a;
    c.wbufBits *= 2;
    spec.platforms = {bitfusionPlatform(a, "wide"),
                      bitfusionPlatform(b, "tall"),
                      bitfusionPlatform(c, "bigbuf")};
    spec.networks = {SweepNetwork::uniform("net64", tinyNet("net64", 64))};

    ArtifactCache cache;
    const SweepResult result = SweepRunner(isolated(1, cache)).run(spec);
    EXPECT_EQ(result.compileCount(), 2u);
    EXPECT_EQ(result.cacheHits(), 1u);
    // The geometry variants still simulate differently.
    EXPECT_NE(result.stats("wide", "net64").totalCycles,
              result.stats("tall", "net64").totalCycles);
}

TEST(SweepRunner, DeterministicAcrossThreadCounts)
{
    const SweepSpec spec = tinySpec({1, 16});
    // One fresh cache per run so the recorded compile/hit counts in
    // the JSON dumps match as well.
    ArtifactCache cacheSerial, cacheParallel;
    const SweepResult serial =
        SweepRunner(isolated(1, cacheSerial)).run(spec);
    const SweepResult parallel =
        SweepRunner(isolated(8, cacheParallel)).run(spec);

    ASSERT_EQ(serial.cells().size(), parallel.cells().size());
    for (std::size_t i = 0; i < serial.cells().size(); ++i) {
        const auto &s = serial.cells()[i];
        const auto &p = parallel.cells()[i];
        EXPECT_EQ(s.platform, p.platform);
        EXPECT_EQ(s.network, p.network);
        EXPECT_EQ(s.batch, p.batch);
        EXPECT_EQ(s.stats.totalCycles, p.stats.totalCycles);
        EXPECT_DOUBLE_EQ(s.stats.energy().totalJ(),
                         p.stats.energy().totalJ());
        ASSERT_EQ(s.stats.layers.size(), p.stats.layers.size());
        for (std::size_t l = 0; l < s.stats.layers.size(); ++l) {
            EXPECT_EQ(s.stats.layers[l].cycles,
                      p.stats.layers[l].cycles);
            EXPECT_EQ(s.stats.layers[l].dramLoadBits,
                      p.stats.layers[l].dramLoadBits);
        }
    }
    // The JSON dumps differ only in the recorded thread count.
    EXPECT_EQ(serial.threadsUsed(), 1u);
    std::string sj = serial.json();
    std::string pj = parallel.json();
    const auto strip = [](std::string &s) {
        const auto pos = s.find("\"threads\"");
        ASSERT_NE(pos, std::string::npos);
        s.erase(pos, s.find(',', pos) - pos);
    };
    strip(sj);
    strip(pj);
    EXPECT_EQ(sj, pj);
}

TEST(SweepResult, LookupByNameAndBatch)
{
    const SweepSpec spec = tinySpec({1, 16});
    const SweepResult result = SweepRunner({2}).run(spec);

    const SweepCellResult *c = result.find("bf-a", "net128", 16);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->batch, 16u);
    EXPECT_EQ(c->stats.batch, 16u);
    // batch 0 matches the first cell of the pair (batch 1 here).
    EXPECT_EQ(result.find("bf-a", "net128")->batch, 1u);
    EXPECT_EQ(result.find("nope", "net128"), nullptr);
    EXPECT_GT(result.stats("eyeriss", "net64", 16).totalCycles, 0u);
}

TEST(SweepResult, JsonShape)
{
    const SweepSpec spec = tinySpec();
    const SweepResult result = SweepRunner({1}).run(spec);
    const std::string doc = result.json();

    EXPECT_NE(doc.find("\"sweep\": \"tiny\""), std::string::npos);
    EXPECT_NE(doc.find("\"threads\": 1"), std::string::npos);
    EXPECT_NE(doc.find("\"compiles\""), std::string::npos);
    EXPECT_NE(doc.find("\"cache_hits\""), std::string::npos);
    EXPECT_NE(doc.find("\"cells\""), std::string::npos);
    EXPECT_NE(doc.find("\"platform\": \"bf-a\""), std::string::npos);
    EXPECT_NE(doc.find("\"network\": \"net64\""), std::string::npos);
    EXPECT_NE(doc.find("\"total_cycles\""), std::string::npos);
    EXPECT_NE(doc.find("\"energy_j\""), std::string::npos);
    // Per-layer detail only on request.
    EXPECT_EQ(doc.find("\"layers\""), std::string::npos);
    EXPECT_NE(result.json(true).find("\"layers\""), std::string::npos);
}

TEST(SweepResult, JsonEscapesStrings)
{
    EXPECT_EQ(json::Value::quote("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    json::Value obj = json::Value::object();
    obj.set("k", json::Value::array().push(1u).push(true).push("x"));
    EXPECT_EQ(obj.dump(), "{\"k\":[1,true,\"x\"]}");
}

TEST(SweepRunner, EffectiveThreadsClampsToCells)
{
    SweepRunner runner({64});
    EXPECT_EQ(runner.effectiveThreads(4), 4u);
    EXPECT_EQ(runner.effectiveThreads(1000), 64u);
    // threads=0 resolves to hardware concurrency, at least 1.
    EXPECT_GE(SweepRunner({0}).effectiveThreads(8), 1u);
}

TEST(Figures, RegistryCoversAllPaperFigures)
{
    const char *expected[] = {
        "fig1", "fig10", "fig13", "fig14", "fig15", "fig16", "fig17",
        "fig18", "table2", "table3", "ablation-style",
        "ablation-codeopt", "ablation-bitwidth", "dse",
    };
    for (const char *id : expected) {
        const figures::Figure *f = figures::find(id);
        ASSERT_NE(f, nullptr) << id;
        EXPECT_EQ(f->id, id);
        EXPECT_FALSE(f->title.empty());
    }
    EXPECT_EQ(figures::find("fig99"), nullptr);
    EXPECT_EQ(figures::all().size(), std::size(expected));
}

TEST(Figures, SweepSpecsExpandAndName)
{
    // Every figure with a grid must expand, carry its own id as the
    // sweep name, and validate.
    for (const auto &figure : figures::all()) {
        const SweepSpec spec = figure.spec();
        if (spec.platforms.empty())
            continue;
        EXPECT_EQ(spec.name, figure.id);
        const auto cells = SweepRunner::expand(spec);
        EXPECT_EQ(cells.size(), spec.cellCount());
        EXPECT_GT(cells.size(), 0u);
    }
}

} // namespace
} // namespace bitfusion
