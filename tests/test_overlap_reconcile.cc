/**
 * @file
 * Overlap-vs-interpreter reconciliation: the overlap timing model's
 * per-channel busy times are analytic; this suite cross-checks them
 * against what the Fusion-ISA interpreter actually executes and
 * moves on a small network zoo, then checks the overlap composition
 * identity on every platform x paper benchmark.
 *
 * What reconciles exactly (no tolerance):
 *  - DRAM channel: the analytic per-layer load/store bits equal the
 *    interpreter's ld-mem/st-mem element counts at the layer
 *    bitwidths, including on layers whose working set does not fit
 *    (tiled weights/inputs are refetched identically by the codegen
 *    loop nest and the analytic traffic planner), and therefore the
 *    analytic memCycles equal divCeil(interpreter bits, bw).
 *  - Compute channel: the MAC count the interpreter executes equals
 *    the analytic count, and the analytic busy time satisfies
 *    utilization == macs / (computeCycles * peakMacsPerCycle).
 *
 * Where the analytic prologue/epilogue model diverges from pure
 * instruction counts, the checks are one-sided bounds instead of
 * equality: the interpreter has no notion of the systolic pipeline
 * fill, so the interpreter-derived ideal compute busy is a lower
 * bound (computeCycles >= ceil(macs / peak)), and the overlap run
 * total obeys
 *     max(interp mem busy, interp ideal compute) <= overlap total
 *     <= simple total.
 * The composition identity itself --
 *     overlap total == max(sum compute + max fill, sum mem)
 * -- is checked on every platform and benchmark with a tolerance of
 * one cycle per layer (per-layer cycles are truncated to integers
 * when the walk finishes, so the reconstructed fill absorbs up to
 * one cycle of rounding per layer; the GPU's seconds-to-cycles
 * conversion rounds the same way).
 */

#include <gtest/gtest.h>

#include "src/common/bitutils.h"
#include "src/compiler/codegen.h"
#include "src/core/platform_registry.h"
#include "src/dnn/model_zoo.h"
#include "src/dnn/tensor.h"
#include "src/isa/interpreter.h"
#include "src/sim/simulator.h"
#include "src/sim/systolic.h"

namespace bitfusion {
namespace {

/** Batch-1 configuration: the interpreter executes one sample. */
AcceleratorConfig
batch1Config()
{
    AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    cfg.batch = 1;
    return cfg;
}

/** Interpreter-side traffic of one compiled fc schedule. */
struct InterpTraffic
{
    std::uint64_t loadBits = 0;
    std::uint64_t storeBits = 0;
    std::uint64_t macs = 0;
};

InterpTraffic
interpretFc(const AcceleratorConfig &cfg, const Layer &layer,
            const LayerSchedule &sched)
{
    Prng prng(layer.inC * 31 + layer.outC);
    Tensor input(layer.inputCount());
    input.fillRandom(prng, layer.bits.aBits, layer.bits.aSigned);
    Tensor weights(layer.weightCount());
    weights.fillRandom(prng, layer.bits.wBits, layer.bits.wSigned);

    MemoryModel mem;
    BlockBases bases;
    bases.input = mem.allocate(input.size());
    for (std::size_t i = 0; i < input.size(); ++i)
        mem.write(bases.input + i, input[i]);
    bases.weights = mem.allocate(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i)
        mem.write(bases.weights + i, weights[i]);
    bases.output = mem.allocate(layer.outputCount());

    const Compiler compiler(cfg);
    Interpreter interp(mem);
    interp.run(
        compiler.emitFc(layer, bases, sched.tile.mt, sched.tile.kt));

    const InterpStats &is = interp.stats();
    InterpTraffic t;
    // Buffer 0 holds activations at aBits, buffer 2 weights at
    // wBits, buffer 1 the outputs at the schedule's output width.
    t.loadBits = is.dramLoadElems[0] * layer.bits.aBits +
                 is.dramLoadElems[2] * layer.bits.wBits;
    t.storeBits = is.dramStoreElems[1] * sched.outBits;
    t.macs = is.macs;
    return t;
}

/**
 * The reconciliation zoo: resident and deliberately tiled fc layers
 * across the paper's bitwidth configs (kt < k forces reduction
 * tiling, mt < m output tiling; both refetch DRAM data).
 */
std::vector<Layer>
reconcileZoo()
{
    return {
        Layer::fc("resident", 64, 32, zoo::cfg8x8()),
        Layer::fc("tiled-k", 4096, 64, zoo::cfg8x8()),
        Layer::fc("tiled-m", 256, 2048, zoo::cfg8x8()),
        Layer::fc("tiled-both", 2048, 2048, zoo::cfg8x8()),
        Layer::fc("low-bits", 1024, 1024, zoo::cfg4x1()),
        Layer::fc("ternary", 512, 512, zoo::cfg2x2()),
    };
}

TEST(OverlapReconcile, DramTrafficMatchesInterpreterExactly)
{
    const AcceleratorConfig cfg = batch1Config();
    const Compiler compiler(cfg);
    const Simulator sim(cfg);
    for (const Layer &layer : reconcileZoo()) {
        Network net("n", {layer});
        const CompiledNetwork cn = compiler.compile(net);
        ASSERT_EQ(cn.schedules.size(), 1u) << layer.name;
        const LayerSchedule &sched = cn.schedules[0];
        const LayerStats st = sim.runSchedule(sched);
        const InterpTraffic it = interpretFc(cfg, layer, sched);

        EXPECT_EQ(st.dramLoadBits, it.loadBits) << layer.name;
        EXPECT_EQ(st.dramStoreBits, it.storeBits) << layer.name;
        // The shared DRAM channel's busy time follows directly.
        EXPECT_EQ(st.memCycles,
                  divCeil(it.loadBits + it.storeBits,
                          cfg.bwBitsPerCycle))
            << layer.name;
    }
}

TEST(OverlapReconcile, ComputeBusyMatchesInterpreterMacs)
{
    const AcceleratorConfig cfg = batch1Config();
    const Compiler compiler(cfg);
    const Simulator sim(cfg);
    const SystolicArray array(cfg);
    for (const Layer &layer : reconcileZoo()) {
        Network net("n", {layer});
        const CompiledNetwork cn = compiler.compile(net);
        const LayerSchedule &sched = cn.schedules[0];
        const LayerStats st = sim.runSchedule(sched);
        const InterpTraffic it = interpretFc(cfg, layer, sched);

        EXPECT_EQ(it.macs, st.macs) << layer.name;
        const std::uint64_t peak =
            array.peakMacsPerCycle(layer.bits);
        // The interpreter knows nothing of array geometry: its MAC
        // count only lower-bounds the analytic busy time...
        EXPECT_GE(st.computeCycles, divCeil(it.macs, peak))
            << layer.name;
        // ...but the analytic model must account for every idle MAC
        // slot it charges: utilization ties the two exactly.
        EXPECT_DOUBLE_EQ(st.utilization,
                         static_cast<double>(it.macs) /
                             (static_cast<double>(st.computeCycles) *
                              static_cast<double>(peak)))
            << layer.name;
    }
}

TEST(OverlapReconcile, OverlapTotalBoundedByInterpreterChannels)
{
    // A multi-layer network: the overlap total must lie between the
    // interpreter-derived per-channel busy totals (which exclude the
    // pipeline prologue) and the simple-model total (which charges
    // every layer's fill).
    const AcceleratorConfig cfg = batch1Config();
    const Compiler compiler(cfg);
    const Simulator sim(cfg);
    std::vector<Layer> layers = reconcileZoo();
    Network net("chain", layers);
    const CompiledNetwork cn = compiler.compile(net);
    ASSERT_EQ(cn.schedules.size(), layers.size());

    std::uint64_t memBusy = 0, idealCompute = 0;
    const SystolicArray array(cfg);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const InterpTraffic it =
            interpretFc(cfg, layers[i], cn.schedules[i]);
        memBusy += divCeil(it.loadBits + it.storeBits,
                           cfg.bwBitsPerCycle);
        idealCompute +=
            divCeil(it.macs, array.peakMacsPerCycle(layers[i].bits));
    }

    const RunStats overlap =
        sim.run(cn, TimingModel::Overlap);
    const RunStats simple = sim.run(cn, TimingModel::Simple);
    EXPECT_GE(overlap.totalCycles, memBusy);
    EXPECT_GE(overlap.totalCycles, idealCompute);
    EXPECT_LE(overlap.totalCycles, simple.totalCycles);
}

TEST(OverlapReconcile, IdentityHoldsOnAllPlatformsAndZoo)
{
    // overlap total == max(sum compute + deepest fill, sum mem),
    // with the fill of each layer reconstructed from the simple run
    // (fill = cycles - max(compute, mem)); tolerance is one cycle of
    // truncation per layer.
    const PlatformRegistry &registry = PlatformRegistry::builtin();
    const char *tokens[] = {"bitfusion", "bitfusion:16nm", "eyeriss",
                            "stripes", "gpu:titan-xp-int8"};
    for (const char *token : tokens) {
        const PlatformSpec spec = registry.parse(token);
        const auto platform = registry.build(spec);
        for (const auto &bench : zoo::all()) {
            const Network &net =
                spec.runsQuantized ? bench.quantized : bench.baseline;
            RunOptions opts;
            opts.timing = TimingModel::Simple;
            const RunStats simple = platform->run(net, opts);
            opts.timing = TimingModel::Overlap;
            const RunStats overlap = platform->run(net, opts);

            double computeBusy = 0.0, memBusy = 0.0, maxFill = 0.0;
            for (const auto &l : simple.layers) {
                computeBusy += static_cast<double>(l.computeCycles);
                memBusy += static_cast<double>(l.memCycles);
                const double fill =
                    static_cast<double>(l.cycles) -
                    static_cast<double>(
                        std::max(l.computeCycles, l.memCycles));
                maxFill = std::max(maxFill, fill);
            }
            const double expected =
                std::max(computeBusy + maxFill, memBusy);
            const double tolerance =
                static_cast<double>(simple.layers.size()) + 2.0;
            EXPECT_NEAR(static_cast<double>(overlap.totalCycles),
                        expected, tolerance)
                << token << " " << bench.name;
            EXPECT_LE(overlap.totalCycles, simple.totalCycles)
                << token << " " << bench.name;
        }
    }
}

} // namespace
} // namespace bitfusion
