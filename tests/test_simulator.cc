/**
 * @file
 * Simulator tests: systolic mapping properties, cycle-count
 * invariants, bandwidth/batch monotonicity, tile scaling, and the
 * configuration presets.
 */

#include <gtest/gtest.h>

#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"
#include "src/sim/systolic.h"

namespace bitfusion {
namespace {

TEST(Config, PresetsValidate)
{
    AcceleratorConfig::eyerissMatched45().validate();
    AcceleratorConfig::stripesTileMatched45().validate();
    AcceleratorConfig::gpuScale16().validate();
}

TEST(Config, EyerissMatchedMatchesPaper)
{
    const auto cfg = AcceleratorConfig::eyerissMatched45();
    EXPECT_EQ(cfg.fusionUnits(), 512u);
    EXPECT_EQ(cfg.onChipBits(), 112ULL * 1024 * 8);
    EXPECT_EQ(cfg.bwBitsPerCycle, 128u);
    EXPECT_DOUBLE_EQ(cfg.freqMHz, 500.0);
    EXPECT_EQ(cfg.batch, 16u);
}

TEST(Config, GpuScaleMatchesPaper)
{
    const auto cfg = AcceleratorConfig::gpuScale16();
    EXPECT_EQ(cfg.fusionUnits(), 4096u);
    EXPECT_EQ(cfg.onChipBits(), 896ULL * 1024 * 8);
    EXPECT_EQ(cfg.tech, TechNode::Nm16);
}

TEST(ConfigDeath, RejectsBadConfigs)
{
    AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    cfg.rows = 0;
    EXPECT_DEATH(cfg.validate(), "rows");
    cfg = AcceleratorConfig::eyerissMatched45();
    cfg.bwBitsPerCycle = 0;
    EXPECT_DEATH(cfg.validate(), "bandwidth");
    cfg = AcceleratorConfig::eyerissMatched45();
    cfg.bricksPerUnit = 12;
    EXPECT_DEATH(cfg.validate(), "power of two");
}

TEST(Systolic, PeakMacsMatchFusedPEs)
{
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    const SystolicArray arr(cfg);
    // 512 units x 16 PEs at binary.
    EXPECT_EQ(arr.peakMacsPerCycle(zoo::cfg1x1()), 512ULL * 16);
    EXPECT_EQ(arr.peakMacsPerCycle(zoo::cfg2x2()), 512ULL * 16);
    EXPECT_EQ(arr.peakMacsPerCycle(zoo::cfg4x4()), 512ULL * 4);
    EXPECT_EQ(arr.peakMacsPerCycle(zoo::cfg8x8()), 512u);
    // 16-bit: one PE per unit over four temporal passes.
    EXPECT_EQ(arr.peakMacsPerCycle(zoo::cfg16x16()), 512u / 4);
}

TEST(Systolic, UtilizationNeverExceedsOne)
{
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    const SystolicArray arr(cfg);
    const std::uint64_t ms[] = {1, 8, 64, 100, 1024, 8192};
    const std::uint64_t ks[] = {1, 8, 100, 5000};
    const std::uint64_t ns[] = {1, 16, 10000};
    for (auto m : ms)
        for (auto k : ks)
            for (auto n : ns) {
                const auto t = arr.map(m, k, n, n, zoo::cfg4x4());
                EXPECT_LE(t.utilization, 1.0 + 1e-9)
                    << m << " " << k << " " << n;
                EXPECT_GT(t.utilization, 0.0);
                EXPECT_GE(t.cycles, 1u);
            }
}

TEST(Systolic, FullDimsReachNearPeak)
{
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    const SystolicArray arr(cfg);
    // m = cols*PEs, k = rows multiples, long n stream.
    const auto t = arr.map(64 * 4, 8 * 100, 100000, 100000,
                           zoo::cfg4x4());
    EXPECT_GT(t.utilization, 0.99);
}

TEST(Systolic, CyclesScaleWithTemporalPasses)
{
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    const SystolicArray arr(cfg);
    const auto t8 = arr.map(512, 800, 1000, 1000, zoo::cfg8x8());
    const auto t16 = arr.map(512, 800, 1000, 1000, zoo::cfg16x16());
    // Same spatial mapping, 4x temporal cost.
    EXPECT_NEAR(static_cast<double>(t16.cycles) / t8.cycles, 4.0, 0.2);
}

TEST(Systolic, LowerBitwidthNeverSlower)
{
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    const SystolicArray arr(cfg);
    const FusionConfig order[] = {zoo::cfg16x16(), zoo::cfg8x8(),
                                  zoo::cfg4x4(), zoo::cfg2x2()};
    std::uint64_t prev = ~0ULL;
    for (const auto &c : order) {
        const auto t = arr.map(4096, 4096, 256, 256, c);
        EXPECT_LE(t.cycles, prev) << c.toString();
        prev = t.cycles;
    }
}

TEST(Simulator, MacConservationAcrossZoo)
{
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    for (const auto &b : zoo::all()) {
        const RunStats rs = acc.run(b.quantized);
        std::uint64_t expect = 0;
        for (const auto &l : b.quantized.layers())
            expect += l.macsPerSample();
        EXPECT_EQ(rs.totalMacs(), expect * rs.batch) << b.name;
    }
}

TEST(Simulator, CyclesBoundedByPeak)
{
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    const SystolicArray arr(acc.config());
    for (const auto &b : zoo::all()) {
        const RunStats rs = acc.run(b.quantized);
        // No layer may beat the binary peak rate.
        for (const auto &l : rs.layers) {
            if (l.macs == 0)
                continue;
            const double rate = static_cast<double>(l.macs) / l.cycles;
            EXPECT_LE(rate, static_cast<double>(
                                arr.peakMacsPerCycle(zoo::cfg1x1())) +
                                1e-9)
                << b.name << "/" << l.name;
        }
    }
}

TEST(Simulator, MoreBandwidthNeverSlower)
{
    for (const auto &b : zoo::all()) {
        double prev = 1e300;
        for (std::uint64_t bw : {32, 64, 128, 256, 512}) {
            AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
            cfg.bwBitsPerCycle = bw;
            Accelerator acc(cfg);
            const double sec = acc.run(b.quantized).secondsPerSample();
            EXPECT_LE(sec, prev * 1.0001) << b.name << " bw=" << bw;
            prev = sec;
        }
    }
}

TEST(Simulator, BiggerBatchNeverSlowerPerSample)
{
    for (const auto &b : zoo::all()) {
        double prev = 1e300;
        for (unsigned batch : {1, 4, 16, 64}) {
            AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
            cfg.batch = batch;
            Accelerator acc(cfg);
            const double sec = acc.run(b.quantized).secondsPerSample();
            EXPECT_LE(sec, prev * 1.05) << b.name << " batch=" << batch;
            prev = sec;
        }
    }
}

TEST(Simulator, RecurrentNetsAreBandwidthBound)
{
    // Fig. 15's defining feature: RNN/LSTM scale linearly with
    // bandwidth.
    for (const auto &b : {zoo::rnn(), zoo::lstm()}) {
        AcceleratorConfig lo = AcceleratorConfig::eyerissMatched45();
        lo.bwBitsPerCycle = 128;
        AcceleratorConfig hi = lo;
        hi.bwBitsPerCycle = 512;
        const double s_lo =
            Accelerator(lo).run(b.quantized).secondsPerSample();
        const double s_hi =
            Accelerator(hi).run(b.quantized).secondsPerSample();
        EXPECT_GT(s_lo / s_hi, 3.0) << b.name;
    }
}

TEST(Simulator, ConvNetsSaturateWithBandwidth)
{
    AcceleratorConfig lo = AcceleratorConfig::eyerissMatched45();
    AcceleratorConfig hi = lo;
    hi.bwBitsPerCycle = 512;
    const auto b = zoo::cifar10();
    const double s_lo =
        Accelerator(lo).run(b.quantized).secondsPerSample();
    const double s_hi =
        Accelerator(hi).run(b.quantized).secondsPerSample();
    EXPECT_LT(s_lo / s_hi, 2.0);
}

TEST(Simulator, TilesScaleComputeBoundLayers)
{
    AcceleratorConfig one = AcceleratorConfig::eyerissMatched45();
    AcceleratorConfig four = one;
    four.tiles = 4;
    four.batch = 16;
    const auto b = zoo::vgg7();
    const double s1 =
        Accelerator(one).run(b.quantized).secondsPerSample();
    const double s4 =
        Accelerator(four).run(b.quantized).secondsPerSample();
    EXPECT_GT(s1 / s4, 2.0);
    EXPECT_LE(s1 / s4, 4.2);
}

TEST(Simulator, EnergyComponentsPositiveAndConsistent)
{
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    for (const auto &b : zoo::all()) {
        const RunStats rs = acc.run(b.quantized);
        const ComponentEnergy e = rs.energy();
        EXPECT_GT(e.computeJ, 0.0) << b.name;
        EXPECT_GT(e.bufferJ, 0.0) << b.name;
        EXPECT_GT(e.dramJ, 0.0) << b.name;
        EXPECT_DOUBLE_EQ(e.rfJ, 0.0) << b.name; // no RF in Bit Fusion
        EXPECT_NEAR(e.totalJ(),
                    e.computeJ + e.bufferJ + e.dramJ, 1e-15);
    }
}

TEST(Simulator, SixteenNmUsesLessOnChipEnergy)
{
    AcceleratorConfig n45 = AcceleratorConfig::eyerissMatched45();
    AcceleratorConfig n16 = n45;
    n16.tech = TechNode::Nm16;
    const auto b = zoo::lenet5();
    const ComponentEnergy e45 =
        Accelerator(n45).run(b.quantized).energy();
    const ComponentEnergy e16 =
        Accelerator(n16).run(b.quantized).energy();
    EXPECT_LT(e16.computeJ, e45.computeJ);
    EXPECT_LT(e16.bufferJ, e45.bufferJ);
    // DRAM interface energy does not scale with the logic node.
    EXPECT_DOUBLE_EQ(e16.dramJ, e45.dramJ);
}

TEST(Simulator, LayerFusionReducesTrafficAndTime)
{
    AcceleratorConfig fused = AcceleratorConfig::eyerissMatched45();
    AcceleratorConfig unfused = fused;
    unfused.layerFusion = false;
    const auto b = zoo::cifar10();
    const RunStats rf = Accelerator(fused).run(b.quantized);
    const RunStats ru = Accelerator(unfused).run(b.quantized);
    auto dram = [](const RunStats &rs) {
        std::uint64_t bits = 0;
        for (const auto &l : rs.layers)
            bits += l.dramLoadBits + l.dramStoreBits;
        return bits;
    };
    EXPECT_LT(dram(rf), dram(ru));
    EXPECT_LE(rf.seconds(), ru.seconds());
}

TEST(Simulator, PowerBudgetOfSixteenNmConfig)
{
    // §V-A: the scaled configuration consumes ~895 mW. Average power
    // = energy / time must land in the sub-watt regime.
    Accelerator acc(AcceleratorConfig::gpuScale16());
    std::vector<double> watts;
    for (const auto &b : zoo::all()) {
        const RunStats rs = acc.run(b.quantized);
        watts.push_back(rs.energy().totalJ() / rs.seconds());
    }
    const double avg = geomean(watts);
    EXPECT_GT(avg, 0.05);
    EXPECT_LT(avg, 5.0);
}

} // namespace
} // namespace bitfusion
