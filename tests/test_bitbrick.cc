/**
 * @file
 * BitBrick unit tests: exhaustive over the full 2-bit x 2-bit x
 * sign x sign input space, checking the behavioural decode/multiply
 * and the gate-level HA/FA model against plain integer arithmetic.
 */

#include <gtest/gtest.h>

#include "src/arch/bitbrick.h"

namespace bitfusion {
namespace {

TEST(BitBrick, DecodeUnsignedRange)
{
    EXPECT_EQ(BitBrick::decode(0, false), 0);
    EXPECT_EQ(BitBrick::decode(1, false), 1);
    EXPECT_EQ(BitBrick::decode(2, false), 2);
    EXPECT_EQ(BitBrick::decode(3, false), 3);
}

TEST(BitBrick, DecodeSignedRange)
{
    EXPECT_EQ(BitBrick::decode(0, true), 0);
    EXPECT_EQ(BitBrick::decode(1, true), 1);
    EXPECT_EQ(BitBrick::decode(2, true), -2);
    EXPECT_EQ(BitBrick::decode(3, true), -1);
}

TEST(BitBrick, DecodeIgnoresHighBits)
{
    EXPECT_EQ(BitBrick::decode(0xf7, false), 3);
    EXPECT_EQ(BitBrick::decode(0xf6, true), -2);
}

/** (x, y, sx, sy) packed into one int for the exhaustive sweep. */
class BitBrickExhaustive : public ::testing::TestWithParam<int>
{
  protected:
    std::uint8_t x() const { return GetParam() & 0x3; }
    std::uint8_t y() const { return (GetParam() >> 2) & 0x3; }
    bool sx() const { return (GetParam() >> 4) & 1; }
    bool sy() const { return (GetParam() >> 5) & 1; }
};

TEST_P(BitBrickExhaustive, BehaviouralMatchesIntegerMultiply)
{
    const int expect =
        BitBrick::decode(x(), sx()) * BitBrick::decode(y(), sy());
    EXPECT_EQ(BitBrick::multiply(x(), y(), sx(), sy()), expect);
}

TEST_P(BitBrickExhaustive, GateLevelMatchesBehavioural)
{
    EXPECT_EQ(BitBrick::multiplyGateLevel(x(), y(), sx(), sy()),
              BitBrick::multiply(x(), y(), sx(), sy()));
}

TEST_P(BitBrickExhaustive, ProductFitsSixBits)
{
    const int p = BitBrick::multiply(x(), y(), sx(), sy());
    EXPECT_GE(p, -32);
    EXPECT_LE(p, 31);
}

INSTANTIATE_TEST_SUITE_P(AllOperands, BitBrickExhaustive,
                         ::testing::Range(0, 64));

TEST(BitBrick, EvaluateAppliesShift)
{
    const BitBrickOp op{3, 3, false, false, 4};
    EXPECT_EQ(BitBrick::evaluate(op), 9 << 4);
}

TEST(BitBrick, EvaluateShiftOfNegativeProduct)
{
    const BitBrickOp op{2, 3, true, false, 2}; // -2 * 3 = -6
    EXPECT_EQ(BitBrick::evaluate(op), -24);
}

} // namespace
} // namespace bitfusion
