/**
 * @file
 * Baseline platform model tests: Eyeriss row-stationary utilization
 * and traffic, Stripes bit-serial scaling, and the GPU rooflines.
 */

#include <gtest/gtest.h>

#include "src/baselines/eyeriss.h"
#include "src/baselines/gpu.h"
#include "src/baselines/stripes.h"
#include "src/dnn/model_zoo.h"

namespace bitfusion {
namespace {

TEST(Eyeriss, ConvUtilizationReasonable)
{
    const EyerissModel m;
    // 3x3 conv with tall output: 4 sets of 3 rows fill the 12-row
    // array fully.
    const Layer c3 =
        Layer::conv("c", 64, 56, 56, 64, 3, 1, 1, zoo::cfg16x16());
    EXPECT_GT(m.utilization(c3), 0.9);
    // 11x11 kernel only fits one set (11 of 12 rows).
    const Layer c11 =
        Layer::conv("c", 3, 227, 227, 96, 11, 4, 0, zoo::cfg16x16());
    EXPECT_NEAR(m.utilization(c11), (11.0 / 12.0) * (55.0 / 56.0),
                0.02);
    // Tiny 6-row output strands half the columns.
    const Layer small =
        Layer::conv("c", 256, 8, 8, 256, 3, 1, 1, zoo::cfg16x16());
    EXPECT_LT(m.utilization(small), 0.8);
}

TEST(Eyeriss, FcUtilizationTracksBatch)
{
    EyerissConfig cfg;
    cfg.batch = 16;
    const EyerissModel m16(cfg);
    cfg.batch = 4;
    const EyerissModel m4(cfg);
    const Layer fc = Layer::fc("f", 4096, 1000, zoo::cfg16x16());
    EXPECT_GT(m16.utilization(fc), m4.utilization(fc));
    EXPECT_LE(m16.utilization(fc), 1.0);
}

TEST(Eyeriss, SixteenBitTrafficAndRf)
{
    const EyerissModel m;
    const RunStats rs = m.run(zoo::lenet5().baseline);
    EXPECT_GT(rs.totalCycles, 0u);
    for (const auto &l : rs.layers) {
        // 4 RF accesses x 16 bits per MAC.
        EXPECT_EQ(l.rfBits, l.macs * 64) << l.name;
        EXPECT_GT(l.energy.rfJ, 0.0) << l.name;
    }
}

TEST(Eyeriss, RfDominatesComputeEnergy)
{
    // The Fig. 14 signature: Eyeriss spends more in its register
    // files than in its multipliers.
    const EyerissModel m;
    const ComponentEnergy e = m.run(zoo::cifar10().baseline).energy();
    EXPECT_GT(e.rfJ, e.computeJ);
}

TEST(Eyeriss, ComputeRateBoundedByPEs)
{
    const EyerissModel m;
    for (const auto &b : zoo::all()) {
        const RunStats rs = m.run(b.baseline);
        const double rate =
            static_cast<double>(rs.totalMacs()) / rs.totalCycles;
        EXPECT_LE(rate, 168.0 + 1e-9) << b.name;
    }
}

TEST(Stripes, PeakScalesInverselyWithWeightBits)
{
    const StripesModel m;
    EXPECT_DOUBLE_EQ(m.peakMacsPerCycle(1), 4096.0);
    EXPECT_DOUBLE_EQ(m.peakMacsPerCycle(2), 2048.0);
    EXPECT_DOUBLE_EQ(m.peakMacsPerCycle(8), 512.0);
    EXPECT_DOUBLE_EQ(m.peakMacsPerCycle(16), 256.0);
}

TEST(Stripes, TileGeometry)
{
    const StripesConfig cfg;
    EXPECT_EQ(cfg.mParallel() * cfg.kParallel() * cfg.nParallel(),
              cfg.sips);
}

TEST(Stripes, RuntimeScalesWithWeightBits)
{
    // Same topology at 1-bit vs 8-bit weights: compute time ~8x.
    auto with_bits = [](unsigned wb) {
        FusionConfig c{8, 8, false, wb > 1};
        c.wBits = wb;
        Network net("t", {});
        net.add(Layer::conv("c", 64, 32, 32, 256, 3, 1, 1, c));
        StripesConfig scfg;
        scfg.bwBitsPerCycle = 1 << 20; // remove the memory bound
        return StripesModel(scfg).run(net).totalCycles;
    };
    const double ratio = static_cast<double>(with_bits(8)) /
                         static_cast<double>(with_bits(1));
    EXPECT_NEAR(ratio, 8.0, 0.5);
}

TEST(Stripes, InputBitwidthGivesNoBenefit)
{
    // The defining Stripes limitation: activations always 16-bit.
    auto with_abits = [](unsigned ab) {
        FusionConfig c{ab, 2, false, true};
        Network net("t", {});
        net.add(Layer::conv("c", 64, 32, 32, 128, 3, 1, 1, c));
        return StripesModel().run(net).totalCycles;
    };
    EXPECT_EQ(with_abits(2), with_abits(8));
}

TEST(Stripes, UtilizationBounded)
{
    const StripesModel m;
    for (const auto &b : zoo::all()) {
        const RunStats rs = m.run(b.quantized);
        for (const auto &l : rs.layers)
            EXPECT_LE(l.utilization, 1.0 + 1e-9)
                << b.name << "/" << l.name;
    }
}

TEST(Gpu, SpecsMatchTableIII)
{
    const GpuSpec tx2 = GpuSpec::tegraX2Fp32();
    const GpuSpec txp = GpuSpec::titanXpFp32();
    // 3584 cores @ 1531 MHz vs 256 @ 875 MHz: ~24.5x peak.
    EXPECT_NEAR(txp.peakMacsPerSec / tx2.peakMacsPerSec, 24.5, 0.5);
    const GpuSpec int8 = GpuSpec::titanXpInt8();
    EXPECT_DOUBLE_EQ(int8.peakMacsPerSec, 4.0 * txp.peakMacsPerSec);
    EXPECT_EQ(int8.bytesPerElem, 1.0);
}

TEST(Gpu, TitanBeatsTegraEverywhere)
{
    const GpuModel tx2(GpuSpec::tegraX2Fp32());
    const GpuModel txp(GpuSpec::titanXpFp32());
    for (const auto &b : zoo::all()) {
        const double s_tx2 = tx2.run(b.baseline).secondsPerSample();
        const double s_txp = txp.run(b.baseline).secondsPerSample();
        EXPECT_GT(s_tx2 / s_txp, 1.0) << b.name;
    }
}

TEST(Gpu, SmallModelsUnderutilizeBigGpu)
{
    // The Fig. 17 shape: LeNet/RNN gain far less from the Titan than
    // the large CNNs do.
    const GpuModel tx2(GpuSpec::tegraX2Fp32());
    const GpuModel txp(GpuSpec::titanXpFp32());
    auto speedup = [&](const zoo::Benchmark &b) {
        return tx2.run(b.baseline).secondsPerSample() /
               txp.run(b.baseline).secondsPerSample();
    };
    EXPECT_GT(speedup(zoo::resnet18()), speedup(zoo::lenet5()));
    EXPECT_GT(speedup(zoo::alexnet()), speedup(zoo::rnn()));
}

TEST(Gpu, Int8FasterThanFp32OnComputeBoundNets)
{
    const GpuModel fp32(GpuSpec::titanXpFp32());
    const GpuModel int8(GpuSpec::titanXpInt8());
    for (const auto &b : {zoo::alexnet(), zoo::resnet18(), zoo::vgg7()}) {
        EXPECT_LT(int8.run(b.baseline).secondsPerSample(),
                  fp32.run(b.baseline).secondsPerSample())
            << b.name;
    }
}

TEST(Gpu, MemoryBoundLayersLimitedByBandwidth)
{
    // A weight-heavy FC at batch 1 is bandwidth-bound: time >=
    // bytes / bandwidth.
    Network net("fc", {});
    net.add(Layer::fc("f", 8192, 8192, zoo::cfg16x16()));
    const GpuSpec spec = GpuSpec::titanXpFp32();
    const GpuModel m(spec, 1);
    const double sec = m.run(net).seconds();
    const double bytes = 8192.0 * 8192.0 * 4.0;
    EXPECT_GE(sec, bytes / spec.memBytesPerSec * 0.99);
}

} // namespace
} // namespace bitfusion
