/**
 * @file
 * Scheduler and fleet invariants: EDF ordering and its miss
 * advantage over FIFO on a contended deadlined trace, the lookahead
 * scheduler's head-of-line starvation bound, SLO-aware batching
 * meeting a p99 budget FIFO misses, heterogeneous routing to the
 * cheapest platform, determinism across replica and thread counts,
 * fleet parsing, and the R=1 fifo byte-parity lock against the
 * pre-scheduler golden report.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/baselines/gpu.h"
#include "src/core/artifact_cache.h"
#include "src/dnn/model_zoo.h"
#include "src/serve/scheduler.h"
#include "src/serve/serving_engine.h"
#include "src/sim/bitfusion_platform.h"

namespace bitfusion {
namespace {

using serve::ClosedLoopSpec;
using serve::InferenceRequest;
using serve::Percentiles;
using serve::ServeOptions;
using serve::ServeReport;
using serve::ServingEngine;
using serve::TraceSpec;

/** Small two-layer network so engine runs stay fast. */
Network
tinyNet(const std::string &name, unsigned out_c)
{
    Network net(name, {});
    net.add(Layer::fc("fc1", 64, out_c, zoo::cfg8x8()));
    net.add(Layer::fc("fc2", out_c, 16, zoo::cfg4x4()));
    return net;
}

/** Catalog entry whose quantized and baseline variants coincide. */
zoo::Benchmark
tinyBench(const std::string &name, unsigned out_c)
{
    zoo::Benchmark bench;
    bench.name = name;
    bench.quantized = tinyNet(name, out_c);
    bench.baseline = bench.quantized;
    return bench;
}

PlatformSpec
bfSpec()
{
    return bitfusionPlatform(AcceleratorConfig::eyerissMatched45(), "bf");
}

std::vector<zoo::Benchmark>
tinyCatalog()
{
    return {tinyBench("netA", 64), tinyBench("netB", 128)};
}

/** Engine over tiny networks with a private cache. */
ServingEngine
tinyEngine(ArtifactCache &cache, ServeOptions opts,
           std::vector<PlatformSpec> fleet = {bfSpec()})
{
    opts.threads = opts.threads != 0 ? opts.threads : 1;
    opts.cache = &cache;
    ServingEngine engine(std::move(fleet), opts);
    engine.setCatalog(tinyCatalog());
    return engine;
}

InferenceRequest
req(std::uint64_t id, const std::string &network, unsigned samples,
    double arrivalUs, double deadlineUs = 0.0)
{
    InferenceRequest r;
    r.id = id;
    r.network = network;
    r.samples = samples;
    r.arrivalUs = arrivalUs;
    r.deadlineUs = deadlineUs;
    return r;
}

/** Simulated latency of @p net at @p batch on @p spec (us). */
double
platformLatencyUs(PlatformSpec spec, const Network &net, unsigned batch)
{
    spec.batch = batch;
    const auto platform = PlatformRegistry::builtin().build(spec);
    return platform->run(net).seconds() * 1e6;
}

TEST(ServeSchedRegistry, KnowsTheFourPolicies)
{
    for (const char *name : {"fifo", "lookahead", "edf", "slo"}) {
        const auto sched = serve::makeScheduler(name);
        EXPECT_STREQ(sched->name(), name);
    }
    EXPECT_DEATH(serve::makeScheduler("lifo"), "unknown scheduler");
}

TEST(ServeSchedDeath, RejectsMisconfiguredPolicies)
{
    ArtifactCache cache;
    ServeOptions opts;
    opts.maxBatch = 4;
    opts.scheduler = "lookahead"; // window left at 0
    {
        ServingEngine engine = tinyEngine(cache, opts);
        EXPECT_DEATH(engine.run({req(0, "netA", 1, 0.0)}), "starvation bound");
    }
    opts.scheduler = "slo"; // budget left at 0
    {
        ServingEngine engine = tinyEngine(cache, opts);
        EXPECT_DEATH(engine.run({req(0, "netA", 1, 0.0)}), "latency budget");
    }
    // One spec + replicas is fine; an explicit fleet + replicas is
    // ambiguous and fatal, as is an empty fleet.
    ServeOptions fleetOpts;
    fleetOpts.replicas = 2;
    EXPECT_DEATH(ServingEngine({bfSpec(), bfSpec()}, fleetOpts),
                 "explicit fleet");
    EXPECT_DEATH(ServingEngine(std::vector<PlatformSpec>{}, {}),
                 "must not be empty");
}

TEST(ServeSchedEdf, TightestDeadlinePicksTheBatch)
{
    // All arrive together; FIFO would serve the netA head first, but
    // the netB requests hold the tight deadlines. Within netB, the
    // 400 us deadline outranks the earlier-queued 500 us one when
    // the cap forces them apart.
    ArtifactCache cache;
    ServeOptions opts;
    opts.maxBatch = 1;
    opts.scheduler = "edf";
    ServingEngine engine = tinyEngine(cache, opts);
    const ServeReport report = engine.run(
        {req(0, "netA", 1, 0.0, 50000.0), req(1, "netB", 1, 0.0, 500.0),
         req(2, "netB", 1, 0.0, 400.0)});
    ASSERT_EQ(report.batches.size(), 3u);
    EXPECT_EQ(report.batches[0].network, "netB");
    EXPECT_EQ(report.batches[1].network, "netB");
    EXPECT_EQ(report.batches[2].network, "netA");
    ASSERT_EQ(report.requests.size(), 3u);
    // id 2 (deadline 400) dispatches before id 1 (deadline 500).
    EXPECT_LT(report.requests[2].dispatchUs, report.requests[1].dispatchUs);
    EXPECT_DOUBLE_EQ(report.requests[2].dispatchUs, 0.0);
}

TEST(ServeSchedEdf, DeadlineFreeRequestsSortLast)
{
    ArtifactCache cache;
    ServeOptions opts;
    opts.maxBatch = 1;
    opts.scheduler = "edf";
    ServingEngine engine = tinyEngine(cache, opts);
    const ServeReport report = engine.run(
        {req(0, "netA", 1, 0.0), req(1, "netB", 1, 0.0, 900.0)});
    ASSERT_EQ(report.batches.size(), 2u);
    EXPECT_EQ(report.batches[0].network, "netB");
}

/** Seeded contended trace with alternating tight/loose deadlines. */
std::vector<InferenceRequest>
contendedDeadlineTrace(double tightUs, double looseUs)
{
    TraceSpec spec;
    spec.seed = 11;
    spec.requests = 120;
    spec.meanGapUs = 0.5; // well past saturation for the tiny nets
    spec.maxSamples = 2;
    spec.networks = {"netA", "netB"};
    auto trace = serve::syntheticTrace(spec);
    for (auto &r : trace)
        r.deadlineUs = r.arrivalUs + (r.id % 2 == 0 ? tightUs : looseUs);
    return trace;
}

TEST(ServeSchedEdf, StrictlyFewerMissesThanFifoUnderContention)
{
    const double latFull =
        platformLatencyUs(bfSpec(), tinyNet("netB", 128), 4);
    const auto trace = contendedDeadlineTrace(4.0 * latFull, 400.0 * latFull);

    ServeOptions opts;
    opts.maxBatch = 4;
    ArtifactCache cacheF, cacheE;
    opts.scheduler = "fifo";
    ServingEngine fifo = tinyEngine(cacheF, opts);
    opts.scheduler = "edf";
    ServingEngine edf = tinyEngine(cacheE, opts);

    const ServeReport fifoReport = fifo.run(trace);
    const ServeReport edfReport = edf.run(trace);
    // The trace is contended enough that FIFO misses tight deadlines.
    EXPECT_GT(fifoReport.deadlineMisses, 0u);
    EXPECT_LT(edfReport.deadlineMisses, fifoReport.deadlineMisses);
}

TEST(ServeSchedLookahead, PrefersTheFullerBatch)
{
    // Head is a lone netA request; three netB requests coalesce into
    // a fuller batch, so lookahead serves netB first (FIFO would
    // serve netA).
    ArtifactCache cache;
    ServeOptions opts;
    opts.maxBatch = 4;
    opts.scheduler = "lookahead";
    opts.maxWaitUs = 1e6; // head far from overdue
    ServingEngine engine = tinyEngine(cache, opts);
    const ServeReport report = engine.run(
        {req(0, "netA", 1, 0.0), req(1, "netB", 1, 0.0),
         req(2, "netB", 1, 0.0), req(3, "netB", 1, 0.0)});
    ASSERT_EQ(report.batches.size(), 2u);
    EXPECT_EQ(report.batches[0].network, "netB");
    EXPECT_EQ(report.batches[0].samples, 3u);
    EXPECT_EQ(report.batches[1].network, "netA");
}

TEST(ServeSchedLookahead, NeverStarvesHeadBeyondTheWindow)
{
    // A lone netA head against a deep netB backlog that always
    // forms fuller batches. Lookahead may bypass the head, but once
    // it has waited out the window the head's network must be
    // served, so its queueing delay is bounded by the window plus
    // one in-flight batch.
    const double window = 20.0;
    std::vector<InferenceRequest> trace;
    trace.push_back(req(0, "netA", 1, 0.0));
    for (std::uint64_t i = 1; i <= 60; ++i)
        trace.push_back(req(i, "netB", 2, 0.0));

    ArtifactCache cache;
    ServeOptions opts;
    opts.maxBatch = 4;
    opts.scheduler = "lookahead";
    opts.maxWaitUs = window;
    ServingEngine engine = tinyEngine(cache, opts);
    const ServeReport report = engine.run(trace);

    // The head was actually bypassed at least once...
    ASSERT_GT(report.batches.size(), 1u);
    EXPECT_EQ(report.batches[0].network, "netB");
    // ...but never starved past the window + one in-flight batch.
    double longestBatchUs = 0.0;
    for (const auto &b : report.batches)
        longestBatchUs = std::max(longestBatchUs, b.latencyUs);
    ASSERT_EQ(report.requests[0].request.network, "netA");
    EXPECT_LE(report.requests[0].queueUs(), window + longestBatchUs + 1e-9);
}

TEST(ServeSchedSlo, MeetsAP99BudgetFifoMisses)
{
    // Sparse lone arrivals under a long batching window: FIFO holds
    // every unfilled batch for the whole window, so its p99 blows
    // the budget; the SLO scheduler derives its batch timer from the
    // budget instead, so every request's end-to-end latency stays
    // inside it (up to float reassociation of the large arrivals).
    const double lat1 = platformLatencyUs(bfSpec(), tinyNet("netA", 64), 1);
    const double budget = 3.0 * lat1;
    const double window = std::max(30000.0, 10.0 * lat1);

    std::vector<InferenceRequest> trace;
    for (std::uint64_t i = 0; i < 40; ++i)
        trace.push_back(
            req(i, "netA", 1, static_cast<double>(i) * 20.0 * window));

    ServeOptions opts;
    opts.maxBatch = 4;
    opts.maxWaitUs = window;
    ArtifactCache cacheF, cacheS;
    opts.scheduler = "fifo";
    ServingEngine fifo = tinyEngine(cacheF, opts);
    opts.scheduler = "slo";
    opts.sloBudgetUs = budget;
    opts.maxWaitUs = 0.0; // slo derives its own timer
    ServingEngine slo = tinyEngine(cacheS, opts);

    const double fifoP99 = fifo.run(trace).latencyUs().p99;
    const ServeReport sloReport = slo.run(trace);
    EXPECT_GT(fifoP99, budget);
    EXPECT_LE(sloReport.latencyUs().p99, budget + 1e-6);
    EXPECT_LE(sloReport.latencyUs().max, budget + 1e-6);
}

TEST(ServeSchedSlo, GrowsTheBatchOnlyWithinTheBudget)
{
    // The head's budget-derived timer admits the 0.4*B arrival, but
    // the 0.95*B arrival lands after the timer's last viable firing
    // time (budget - lat2), so the batch leaves without it -- at
    // exactly that causal firing time, not at the head's arrival.
    const double lat2 = platformLatencyUs(bfSpec(), tinyNet("netA", 64), 2);
    const double budget = 3.0 * lat2;

    ArtifactCache cache;
    ServeOptions opts;
    opts.maxBatch = 4;
    opts.scheduler = "slo";
    opts.sloBudgetUs = budget;
    ServingEngine engine = tinyEngine(cache, opts);
    const ServeReport report = engine.run(
        {req(0, "netA", 1, 0.0), req(1, "netA", 1, 0.4 * budget),
         req(2, "netA", 1, 0.95 * budget)});
    ASSERT_EQ(report.batches.size(), 2u);
    EXPECT_EQ(report.batches[0].samples, 2u);
    EXPECT_NEAR(report.batches[0].dispatchUs, budget - lat2, 1e-9);
    EXPECT_EQ(report.batches[1].samples, 1u);
    // Every member of the waited batch stays inside its budget.
    EXPECT_LE(report.requests[0].latencyUs(), budget + 1e-6);
    EXPECT_LE(report.requests[1].latencyUs(), budget + 1e-6);
}

TEST(ServeSchedSlo, HeterogeneousFleetEstimatesOnlyFreeReplicas)
{
    // Fast bitfusion replica + slow GPU replica. While the fast
    // replica is busy, only the slow one can take the next batch, so
    // the scheduler's latency oracle must quote the slow platform:
    // the head's budget is then unmeetable and the batch falls back
    // to an immediate FIFO fill instead of admitting a future joiner
    // into a batch that would blow its budget on the slow replica.
    const double lat1 = platformLatencyUs(bfSpec(), tinyNet("netA", 64), 1);
    const PlatformSpec slow = gpuPlatform(GpuSpec::tegraX2Fp32());
    const double latSlow = platformLatencyUs(slow, tinyNet("netA", 64), 1);
    const double budget = 3.0 * lat1;
    ASSERT_GT(latSlow, budget);

    ArtifactCache cache;
    ServeOptions opts;
    opts.maxBatch = 3;
    opts.scheduler = "slo";
    opts.sloBudgetUs = budget;
    ServingEngine engine = tinyEngine(cache, opts, {bfSpec(), slow});
    // req0-2 fill the fast replica; req3 must plan against the slow
    // one; req4 arrives while the fast replica is still busy.
    const ServeReport report = engine.run(
        {req(0, "netA", 1, 0.0), req(1, "netA", 1, 0.0),
         req(2, "netA", 1, 0.0), req(3, "netA", 1, 0.0),
         req(4, "netA", 1, 0.5)});
    ASSERT_EQ(report.batches.size(), 3u);
    EXPECT_EQ(report.batches[0].samples, 3u);
    EXPECT_EQ(report.batches[0].replica, 0u);
    // The slow-replica batch is a lone fallback fill: req4 was NOT
    // pulled into a budget-blown batch...
    EXPECT_EQ(report.batches[1].samples, 1u);
    EXPECT_EQ(report.batches[1].replica, 1u);
    // ...and instead meets its budget on the fast replica later.
    EXPECT_EQ(report.batches[2].replica, 0u);
    EXPECT_LE(report.requests[4].latencyUs(), budget + 1e-6);
}

TEST(ServeFleet, ReplicasIncreaseThroughputDeterministically)
{
    // A backlog of whole-batch requests: R replicas drain it ~R
    // times faster, and the usage accounting adds up.
    std::vector<InferenceRequest> trace;
    for (std::uint64_t i = 0; i < 16; ++i)
        trace.push_back(req(i, i % 2 == 0 ? "netA" : "netB", 4, 0.0));

    ServeOptions opts;
    opts.maxBatch = 4;
    ArtifactCache cache1, cache4;
    ServingEngine one = tinyEngine(cache1, opts);
    opts.replicas = 4;
    ServingEngine four = tinyEngine(cache4, opts);

    const ServeReport r1 = one.run(trace);
    const ServeReport r4 = four.run(trace);
    ASSERT_EQ(r1.replicas.size(), 1u);
    ASSERT_EQ(r4.replicas.size(), 4u);
    EXPECT_FALSE(r1.fleetReport());
    EXPECT_TRUE(r4.fleetReport());
    EXPECT_LT(r4.makespanUs, 0.5 * r1.makespanUs);

    std::uint64_t samples = 0;
    std::size_t batches = 0;
    double energy = 0.0;
    for (const auto &rep : r4.replicas) {
        EXPECT_EQ(rep.platform, "bf");
        EXPECT_GE(rep.utilization, 0.0);
        EXPECT_LE(rep.utilization, 1.0);
        samples += rep.samples;
        batches += rep.batches;
        energy += rep.energyJ;
    }
    EXPECT_EQ(samples, r4.totalSamples);
    EXPECT_EQ(batches, r4.batches.size());
    EXPECT_NEAR(energy, r4.energyJ, 1e-12);
}

TEST(ServeFleet, HeterogeneousRoutingPicksTheCheapestPlatform)
{
    // Two single-replica classes with different speeds; sparse lone
    // requests see both replicas free, so every batch must land on
    // whichever platform serves the network cheapest.
    const PlatformSpec fast = bfSpec();
    const PlatformSpec slow = gpuPlatform(GpuSpec::tegraX2Fp32());
    const double latFast = platformLatencyUs(fast, tinyNet("netA", 64), 1);
    const double latSlow = platformLatencyUs(slow, tinyNet("netA", 64), 1);
    ASSERT_NE(latFast, latSlow);
    const unsigned cheaper = latFast < latSlow ? 0u : 1u;

    std::vector<InferenceRequest> trace;
    for (std::uint64_t i = 0; i < 6; ++i)
        trace.push_back(req(i, "netA", 1, static_cast<double>(i) * 1e9));

    ArtifactCache cache;
    ServeOptions opts;
    opts.maxBatch = 1;
    ServingEngine engine = tinyEngine(cache, opts, {fast, slow});
    const ServeReport report = engine.run(trace);
    ASSERT_EQ(report.replicas.size(), 2u);
    ASSERT_EQ(report.batches.size(), 6u);
    for (const auto &batch : report.batches)
        EXPECT_EQ(batch.replica, cheaper);
    EXPECT_EQ(report.replicas[cheaper].batches, 6u);
    EXPECT_EQ(report.replicas[1u - cheaper].batches, 0u);
}

TEST(ServeFleet, SameNameDifferentConfigsStayDistinctClasses)
{
    // Class identity folds in the built platform's configuration,
    // so two hand-built specs sharing a display name but holding
    // different configs must not merge into one class.
    const PlatformSpec a = bitfusionPlatform(
        AcceleratorConfig::eyerissMatched45(), "twin");
    const PlatformSpec b =
        bitfusionPlatform(AcceleratorConfig::gpuScale16(), "twin");
    const double latA = platformLatencyUs(a, tinyNet("netA", 64), 1);
    const double latB = platformLatencyUs(b, tinyNet("netA", 64), 1);
    ASSERT_NE(latA, latB);

    ArtifactCache cache;
    ServeOptions opts;
    opts.maxBatch = 1;
    ServingEngine engine = tinyEngine(cache, opts, {a, b});
    // Two simultaneous lone requests land on both replicas, each
    // charged its own config's latency.
    const ServeReport report =
        engine.run({req(0, "netA", 1, 0.0), req(1, "netA", 1, 0.0)});
    ASSERT_EQ(report.batches.size(), 2u);
    EXPECT_NE(report.batches[0].latencyUs, report.batches[1].latencyUs);
}

TEST(ServeFleet, DeterministicAcrossThreadCountsAndRuns)
{
    TraceSpec traceSpec;
    traceSpec.seed = 11;
    traceSpec.requests = 200;
    traceSpec.meanGapUs = 50.0;
    traceSpec.maxSamples = 4;
    traceSpec.deadlineSlackUs = 5000.0;
    traceSpec.networks = {"netA", "netB"};
    const auto trace = serve::syntheticTrace(traceSpec);

    const std::vector<PlatformSpec> fleet = {
        bfSpec(), bfSpec(), gpuPlatform(GpuSpec::titanXpInt8()),
        gpuPlatform(GpuSpec::tegraX2Fp32())};

    ServeOptions opts;
    opts.maxBatch = 4;
    opts.scheduler = "edf";
    ArtifactCache cache1, cacheN;
    opts.threads = 1;
    ServingEngine serial = tinyEngine(cache1, opts, fleet);
    opts.threads = 8;
    ServingEngine parallel = tinyEngine(cacheN, opts, fleet);

    const std::string a = serial.run(trace).json(true);
    const std::string b = parallel.run(trace).json(true);
    EXPECT_EQ(a, b);
    // A fresh engine over a fresh cache reproduces the report
    // byte-for-byte (same seed, same fleet).
    ArtifactCache cacheAgain;
    opts.threads = 1;
    ServingEngine again = tinyEngine(cacheAgain, opts, fleet);
    EXPECT_EQ(again.run(trace).json(true), a);
}

TEST(ServeFleet, ClosedLoopGrantsDeadlineSlack)
{
    ArtifactCache cache;
    ServeOptions opts;
    opts.maxBatch = 4;
    ServingEngine engine = tinyEngine(cache, opts);
    ClosedLoopSpec load;
    load.clients = 2;
    load.requests = 8;
    load.networks = {"netA"};
    load.deadlineSlackUs = 1234.0;
    const ServeReport report = engine.runClosedLoop(load);
    ASSERT_EQ(report.requests.size(), 8u);
    for (const auto &r : report.requests) {
        EXPECT_DOUBLE_EQ(r.request.deadlineUs, r.request.arrivalUs + 1234.0);
    }
}

TEST(ServeFleet, ParseFleetRoundTripsTokens)
{
    const auto fleet = PlatformRegistry::builtin().parseFleet(
        "bitfusion,bitfusion:16nm,eyeriss,gpu:titan-xp-int8");
    ASSERT_EQ(fleet.size(), 4u);
    EXPECT_EQ(fleet[0].kind, "bitfusion");
    EXPECT_EQ(fleet[1].name, "bitfusion-4096fu-16nm");
    EXPECT_EQ(fleet[2].kind, "eyeriss");
    EXPECT_EQ(fleet[3].name, "titan-xp-int8");
    EXPECT_DEATH(PlatformRegistry::builtin().parseFleet("bitfusion,,eyeriss"),
                 "empty element");
    EXPECT_DEATH(PlatformRegistry::builtin().parseFleet(""),
                 "at least one platform");
}

TEST(ServeParity, FifoR1ReportMatchesThePreSchedulerGolden)
{
    // The exact workload behind tests/golden/serve_fifo_r1.json
    // (generated by the pre-scheduler engine): default platform and
    // catalog, seeded open-loop trace, 500 us window. The refactor
    // onto Scheduler + fleet must reproduce it byte-for-byte.
    std::ifstream in(std::string(BITFUSION_SOURCE_DIR) +
                     "/tests/golden/serve_fifo_r1.json");
    ASSERT_TRUE(in.good());
    std::stringstream golden;
    golden << in.rdbuf();
    std::string expected = golden.str();
    ASSERT_FALSE(expected.empty());
    if (expected.back() == '\n')
        expected.pop_back(); // the CLI appends one newline

    TraceSpec traceSpec;
    traceSpec.seed = 7;
    traceSpec.requests = 400;
    traceSpec.meanGapUs = 1500.0;
    traceSpec.deadlineSlackUs = 20000.0;

    ServeOptions opts;
    opts.threads = 1;
    opts.maxWaitUs = 500.0;
    ServingEngine engine(PlatformRegistry::builtin().parse("bitfusion"), opts);
    const ServeReport report = engine.run(serve::syntheticTrace(traceSpec));
    EXPECT_EQ(report.json(true), expected);
}

} // namespace
} // namespace bitfusion
