/**
 * @file
 * Tests for the fusion microarchitecture: FusionConfig accounting,
 * the spatial shift-add tree, the temporal design, the hybrid Fusion
 * Unit, and the hardware cost library.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/arch/fusion_config.h"
#include "src/arch/fusion_unit.h"
#include "src/arch/hw_model.h"
#include "src/arch/spatial_fusion.h"
#include "src/arch/temporal_unit.h"
#include "src/common/prng.h"

namespace bitfusion {
namespace {

TEST(FusionConfig, FusedPEsMatchPaperFigure2)
{
    // Fig. 2(b): 16 Fused-PEs for binary/ternary.
    EXPECT_EQ(FusionConfig({1, 1, false, false}).fusedPEs(), 16u);
    EXPECT_EQ(FusionConfig({2, 2, true, true}).fusedPEs(), 16u);
    // Fig. 2(c): 4 Fused-PEs at 8-bit inputs x 2-bit weights.
    EXPECT_EQ(FusionConfig({8, 2, false, true}).fusedPEs(), 4u);
    // Fig. 2(d): one Fused-PE at 8x8.
    EXPECT_EQ(FusionConfig({8, 8, false, true}).fusedPEs(), 1u);
    // Mixed 4-bit cases from §II-A: 8/2, 4/4, 2/8 all use 4 bricks.
    EXPECT_EQ(FusionConfig({4, 4, false, true}).fusedPEs(), 4u);
    EXPECT_EQ(FusionConfig({2, 8, false, true}).fusedPEs(), 4u);
    EXPECT_EQ(FusionConfig({4, 2, false, true}).fusedPEs(), 8u);
}

TEST(FusionConfig, TemporalPassesFor16Bit)
{
    EXPECT_EQ(FusionConfig({8, 8, false, true}).temporalPasses(), 1u);
    EXPECT_EQ(FusionConfig({16, 8, true, true}).temporalPasses(), 2u);
    EXPECT_EQ(FusionConfig({8, 16, false, true}).temporalPasses(), 2u);
    EXPECT_EQ(FusionConfig({16, 16, true, true}).temporalPasses(), 4u);
}

TEST(FusionConfig, SixteenBitUsesFullUnitSpatially)
{
    const FusionConfig c{16, 16, true, true};
    EXPECT_EQ(c.bricksPerProduct(), 16u);
    EXPECT_EQ(c.fusedPEs(), 1u);
}

TEST(FusionConfigDeath, RejectsUnsupportedWidths)
{
    EXPECT_DEATH(FusionConfig({3, 4, false, true}).validate(),
                 "unsupported");
    EXPECT_DEATH(FusionConfig({4, 32, false, true}).validate(),
                 "unsupported");
    EXPECT_DEATH(FusionConfig({1, 1, true, false}).validate(),
                 "binary");
}

TEST(FusionConfig, ToStringFormat)
{
    EXPECT_EQ(FusionConfig({4, 1, false, false}).toString(), "4b/1b");
    EXPECT_EQ(FusionConfig({16, 8, true, true}).toString(), "16b/8b");
}

TEST(SpatialFusionTree, StructureOver16Bricks)
{
    const SpatialFusionTree tree(16);
    EXPECT_EQ(tree.levels(), 2u);
    // ceil(16/4) + ceil(4/4) = 5 four-input adders.
    EXPECT_EQ(tree.adderCount(), 5u);
    EXPECT_EQ(tree.shifterCount(), 15u);
}

TEST(SpatialFusionTree, CombineSumsShiftedProducts)
{
    const SpatialFusionTree tree(16);
    // 4-bit x 4-bit decomposition of 11 x 6 (paper Fig. 6).
    std::vector<BitBrickOp> ops = {
        {3, 2, false, false, 0}, // low x low
        {3, 1, false, false, 2}, // low x hi
        {2, 2, false, false, 2}, // hi x low
        {2, 1, false, false, 4}, // hi x hi
    };
    EXPECT_EQ(tree.combine(ops), 66);
}

TEST(SpatialFusionTree, EmptyCombineIsZero)
{
    EXPECT_EQ(SpatialFusionTree(16).combine({}), 0);
}

TEST(SpatialFusionTreeDeath, OverCapacityPanics)
{
    SpatialFusionTree tree(4);
    std::vector<BitBrickOp> ops(5, BitBrickOp{1, 1, false, false, 0});
    EXPECT_DEATH(tree.combine(ops), "BitBricks");
}

TEST(TemporalUnit, CyclesPerProductScalesWithLanes)
{
    EXPECT_EQ(TemporalUnit::cyclesPerProduct({2, 2, false, true}), 1u);
    EXPECT_EQ(TemporalUnit::cyclesPerProduct({4, 4, false, true}), 4u);
    EXPECT_EQ(TemporalUnit::cyclesPerProduct({8, 8, false, true}), 16u);
    EXPECT_EQ(TemporalUnit::cyclesPerProduct({16, 16, true, true}), 64u);
    EXPECT_EQ(TemporalUnit::cyclesPerProduct({8, 2, false, true}), 4u);
}

TEST(TemporalUnit, AccumulatesCorrectProducts)
{
    TemporalUnit unit;
    const FusionConfig c{8, 8, false, true};
    unsigned cycles = unit.multiplyAccumulate(200, -100, c);
    EXPECT_EQ(cycles, 16u);
    EXPECT_EQ(unit.value(), -20000);
    unit.multiplyAccumulate(3, 5, c);
    EXPECT_EQ(unit.value(), -20000 + 15);
    EXPECT_EQ(unit.cycles(), 32u);
    unit.reset();
    EXPECT_EQ(unit.value(), 0);
    EXPECT_EQ(unit.cycles(), 0u);
}

/** Sweep of FusionUnit multiply-accumulate over all configs. */
class FusionUnitSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    FusionConfig
    cfg() const
    {
        static const unsigned widths[] = {1, 2, 4, 8, 16};
        const unsigned a = widths[std::get<0>(GetParam())];
        const unsigned w = widths[std::get<1>(GetParam())];
        return FusionConfig{a, w, false, w > 1};
    }
};

TEST_P(FusionUnitSweep, MatchesIntegerDotProduct)
{
    const FusionConfig c = cfg();
    FusionUnit unit;
    unit.configure(c);
    Prng prng(99 + c.aBits * 100 + c.wBits);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<std::pair<std::int64_t, std::int64_t>> pairs;
        std::int64_t expect = 0;
        const unsigned n =
            1 + static_cast<unsigned>(prng.below(unit.fusedPEs()));
        for (unsigned i = 0; i < n; ++i) {
            const std::int64_t a = prng.nextUnsigned(c.aBits);
            const std::int64_t w = c.wSigned ? prng.nextSigned(c.wBits)
                                             : prng.nextUnsigned(c.wBits);
            pairs.emplace_back(a, w);
            expect += a * w;
        }
        const std::int64_t carry =
            prng.nextSigned(20); // incoming partial sum
        EXPECT_EQ(unit.multiplyAccumulate(pairs, carry), carry + expect);
    }
}

TEST_P(FusionUnitSweep, CycleCostMatchesTemporalPasses)
{
    const FusionConfig c = cfg();
    FusionUnit unit;
    unit.configure(c);
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs(
        unit.fusedPEs(), {1, 1});
    const auto before = unit.stats().cycles;
    unit.multiplyAccumulate(pairs);
    EXPECT_EQ(unit.stats().cycles - before, c.temporalPasses());
}

TEST_P(FusionUnitSweep, BitBrickOpCountMatchesDecomposition)
{
    const FusionConfig c = cfg();
    FusionUnit unit;
    unit.configure(c);
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs(
        unit.fusedPEs(), {1, 1});
    unit.multiplyAccumulate(pairs);
    EXPECT_EQ(unit.stats().bitBrickOps,
              static_cast<std::uint64_t>(unit.fusedPEs()) *
                  bitBrickLanes(c.aBits) * bitBrickLanes(c.wBits));
}

INSTANTIATE_TEST_SUITE_P(AllWidths, FusionUnitSweep,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 5)));

TEST(FusionUnitDeath, TooManyPairsPanics)
{
    FusionUnit unit;
    unit.configure({8, 8, false, true});
    std::vector<std::pair<std::int64_t, std::int64_t>> pairs(2, {1, 1});
    EXPECT_DEATH(unit.multiplyAccumulate(pairs), "Fused-PEs");
}

TEST(HwModel, Figure10Constants)
{
    const UnitCost fu = HwModel::fusionUnit45();
    const UnitCost tmp = HwModel::temporalDesign45();
    EXPECT_NEAR(fu.totalAreaUm2(), 1394.0, 1.0);
    EXPECT_NEAR(tmp.totalAreaUm2(), 4906.0, 1.0);
    // Paper: 3.5x area and 3.2x power reduction.
    EXPECT_NEAR(tmp.totalAreaUm2() / fu.totalAreaUm2(), 3.5, 0.1);
    EXPECT_NEAR(tmp.totalPowerNw() / fu.totalPowerNw(), 3.2, 0.1);
}

TEST(HwModel, BudgetYields512Units)
{
    EXPECT_EQ(HwModel::fusionUnitsForBudget(1.1), 512u);
}

TEST(HwModel, TechScaling16nm)
{
    // 0.42 C x 0.86^2 V^2.
    EXPECT_NEAR(HwModel::energyScale(TechNode::Nm16), 0.3106, 1e-3);
    EXPECT_DOUBLE_EQ(HwModel::energyScale(TechNode::Nm45), 1.0);
    EXPECT_LT(HwModel::areaScale(TechNode::Nm16), 0.2);
}

TEST(HwModel, MacEnergyScalesWithBitwidth)
{
    const double e11 = HwModel::macEnergyPj(1, 1);
    const double e44 = HwModel::macEnergyPj(4, 4);
    const double e88 = HwModel::macEnergyPj(8, 8);
    const double e1616 = HwModel::macEnergyPj(16, 16);
    EXPECT_LT(e11, e44);
    EXPECT_LT(e44, e88);
    EXPECT_LT(e88, e1616);
    // Quadratic with operand width: 8/8 uses 16x the bricks of 2/2,
    // each paying its share of the shared tree pass.
    EXPECT_NEAR(e88 / HwModel::macEnergyPj(2, 2), 16.0, 1e-9);
    // 16 nm cheaper than 45 nm.
    EXPECT_LT(HwModel::macEnergyPj(8, 8, TechNode::Nm16), e88);
}

} // namespace
} // namespace bitfusion
