/**
 * @file
 * Integration tests: the headline claims of the paper must hold in
 * the reproduction -- Bit Fusion beats Eyeriss and Stripes on every
 * benchmark with the right ordering, the energy model reproduces the
 * Fig. 14 shape, and the interpreter's traffic counts reconcile with
 * the analytical simulator on a fully-resident layer.
 */

#include <gtest/gtest.h>

#include "src/baselines/eyeriss.h"
#include "src/baselines/stripes.h"
#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"
#include "src/dnn/tensor.h"
#include "src/isa/interpreter.h"

namespace bitfusion {
namespace {

TEST(Headline, BitFusionBeatsEyerissEverywhere)
{
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    const EyerissModel eyeriss;
    std::vector<double> speedups, energy;
    for (const auto &b : zoo::all()) {
        const RunStats bf = acc.run(b.quantized);
        const RunStats ey = eyeriss.run(b.baseline);
        const double sp = ey.secondsPerSample() / bf.secondsPerSample();
        const double er = ey.energyPerSampleJ() / bf.energyPerSampleJ();
        EXPECT_GT(sp, 1.0) << b.name;
        EXPECT_GT(er, 1.0) << b.name;
        speedups.push_back(sp);
        energy.push_back(er);
    }
    // Paper: 3.9x / 5.1x geomean. The reproduction lands in the same
    // regime (see EXPERIMENTS.md for the per-benchmark record).
    EXPECT_GT(geomean(speedups), 3.0);
    EXPECT_LT(geomean(speedups), 10.0);
    EXPECT_GT(geomean(energy), 3.5);
    EXPECT_LT(geomean(energy), 12.0);
}

TEST(Headline, OrderingMatchesPaper)
{
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    const EyerissModel eyeriss;
    auto speedup = [&](const zoo::Benchmark &b) {
        return eyeriss.run(b.baseline).secondsPerSample() /
               acc.run(b.quantized).secondsPerSample();
    };
    // Cifar-10 (binary, deep) gains the most; the 2x-wide ResNet-18
    // gains the least; the bandwidth-bound recurrent models and the
    // wide AlexNet sit in the low group (Fig. 13).
    const double cifar = speedup(zoo::cifar10());
    EXPECT_GT(cifar, speedup(zoo::svhn()));
    EXPECT_GT(speedup(zoo::svhn()), speedup(zoo::resnet18()));
    EXPECT_GT(speedup(zoo::vgg7()), speedup(zoo::lstm()));
    EXPECT_GT(cifar, speedup(zoo::alexnet()));
}

TEST(Headline, BitFusionBeatsStripesEverywhere)
{
    Accelerator acc(AcceleratorConfig::stripesTileMatched45());
    const StripesModel stripes;
    std::vector<double> speedups, energy;
    for (const auto &b : zoo::all()) {
        const RunStats bf = acc.run(b.quantized);
        const RunStats st = stripes.run(b.quantized);
        const double sp = st.secondsPerSample() / bf.secondsPerSample();
        const double er = st.energyPerSampleJ() / bf.energyPerSampleJ();
        // The weight-traffic-bound recurrent models tie (both
        // platforms fetch identical weight bits); everything else
        // Bit Fusion wins outright.
        EXPECT_GE(sp, 0.95) << b.name;
        EXPECT_GE(er, 0.95) << b.name;
        speedups.push_back(sp);
        energy.push_back(er);
    }
    EXPECT_GT(geomean(speedups), 1.2);
    EXPECT_GT(geomean(energy), 1.2);
}

TEST(Headline, EnergyBreakdownShape)
{
    // Fig. 14: Bit Fusion is DRAM-dominated with zero RF energy;
    // Eyeriss spends a large share in register files; both spend
    // >60% on memory (buffers + RF + DRAM).
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    const EyerissModel eyeriss;
    for (const auto &b : zoo::all()) {
        const ComponentEnergy bf = acc.run(b.quantized).energy();
        EXPECT_EQ(bf.rfJ, 0.0) << b.name;
        EXPECT_GT(bf.dramJ / bf.totalJ(), 0.1) << b.name;
        const double bf_mem =
            (bf.bufferJ + bf.dramJ) / bf.totalJ();
        EXPECT_GT(bf_mem, 0.4) << b.name;

        const ComponentEnergy ey = eyeriss.run(b.baseline).energy();
        EXPECT_GT(ey.rfJ / ey.totalJ(), 0.1) << b.name;
        // RF always costs more than the multipliers themselves
        // (4 x 16-bit accesses per MAC).
        EXPECT_GT(ey.rfJ, ey.computeJ) << b.name;
        const double ey_mem =
            (ey.bufferJ + ey.rfJ + ey.dramJ) / ey.totalJ();
        EXPECT_GT(ey_mem, 0.6) << b.name;
    }
}

TEST(Headline, AlexNetPerLayerConv1MatchesPaper)
{
    // §V-B1 table: the 8b/8b conv1 gains 1.67x over Eyeriss (the
    // one per-layer datum our model reproduces almost exactly).
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    const EyerissModel eyeriss;
    const auto b = zoo::alexnet();
    const RunStats bf = acc.run(b.quantized);
    const RunStats ey = eyeriss.run(b.baseline);
    ASSERT_FALSE(bf.layers.empty());
    ASSERT_FALSE(ey.layers.empty());
    EXPECT_EQ(bf.layers[0].name, "conv1");
    const double sp = static_cast<double>(ey.layers[0].cycles) /
                      static_cast<double>(bf.layers[0].cycles);
    EXPECT_NEAR(sp, 1.67, 0.5);
}

TEST(Integration, InterpreterTrafficReconcilesWithSimulator)
{
    // For a layer whose working set is fully resident, the
    // analytical simulator's DRAM traffic must equal what the
    // interpreter actually moves: weights once, inputs once,
    // outputs once.
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    const Compiler compiler(cfg);
    const Layer fc = Layer::fc("f", 64, 32, zoo::cfg8x8());

    Network net("tiny", {fc});
    CompiledNetwork cn = compiler.compile(net);
    ASSERT_EQ(cn.schedules.size(), 1u);
    const Simulator sim(cfg);
    const LayerStats st = sim.runSchedule(cn.schedules[0]);

    // Interpreter side (single sample).
    Prng prng(50);
    Tensor input(static_cast<std::size_t>(64));
    input.fillRandom(prng, 8, false);
    Tensor weights(fc.weightCount());
    weights.fillRandom(prng, 8, true);
    MemoryModel mem;
    BlockBases bases;
    bases.input = mem.allocate(64);
    for (unsigned i = 0; i < 64; ++i)
        mem.write(bases.input + i, input[i]);
    bases.weights = mem.allocate(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i)
        mem.write(bases.weights + i, weights[i]);
    bases.output = mem.allocate(32);
    Interpreter interp(mem);
    interp.run(compiler.emitFc(fc, bases, cn.schedules[0].tile.mt,
                               cn.schedules[0].tile.kt));

    const auto &is = interp.stats();
    const std::uint64_t interp_load_bits =
        is.dramLoadElems[0] * 8 +        // IBUF at 8-bit activations
        is.dramLoadElems[2] * 8;         // WBUF at 8-bit weights
    // Simulator counts the full batch; inputs scale with batch,
    // weights are fetched once.
    const std::uint64_t weights_bits = fc.weightCount() * 8;
    const std::uint64_t inputs_bits = 64 * 8;
    EXPECT_EQ(interp_load_bits, weights_bits + inputs_bits);
    EXPECT_EQ(st.dramLoadBits,
              weights_bits + inputs_bits * cfg.batch);
    // Outputs once on both sides.
    EXPECT_EQ(is.dramStoreElems[1], 32u);
}

TEST(Integration, CompiledBlocksDisassembleForWholeZoo)
{
    const Compiler compiler(AcceleratorConfig::eyerissMatched45());
    for (const auto &b : zoo::all()) {
        const CompiledNetwork cn = compiler.compile(b.quantized);
        for (const auto &s : cn.schedules) {
            const std::string d = s.block.disassemble();
            EXPECT_NE(d.find("setup"), std::string::npos);
            EXPECT_NE(d.find("block-end"), std::string::npos);
        }
    }
}

TEST(Integration, RunStatsTimeConversions)
{
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    const RunStats rs = acc.run(zoo::lenet5().quantized);
    EXPECT_NEAR(rs.seconds(),
                static_cast<double>(rs.totalCycles) / 500e6, 1e-12);
    EXPECT_NEAR(rs.secondsPerSample() * rs.batch, rs.seconds(), 1e-12);
    EXPECT_GT(rs.energyPerSampleJ(), 0.0);
}

} // namespace
} // namespace bitfusion
