/**
 * @file
 * Compiler tests: tile feasibility and traffic properties, loop
 * ordering decisions, layer fusion, and whole-network compilation
 * invariants across the model zoo.
 */

#include <gtest/gtest.h>

#include "src/compiler/codegen.h"
#include "src/compiler/tiling.h"
#include "src/dnn/model_zoo.h"

namespace bitfusion {
namespace {

AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    return cfg;
}

TEST(Tiler, TilesRespectBufferBudgets)
{
    const AcceleratorConfig cfg = smallConfig();
    const Tiler tiler(cfg);
    const struct
    {
        std::uint64_t m, k, n;
        FusionConfig bits;
    } cases[] = {
        {8192, 18432, 16, zoo::cfg4x1()},   // AlexNet 2x fc6
        {512, 2400, 11664, zoo::cfg4x1()},  // AlexNet 2x conv2
        {128, 1152, 16384, zoo::cfg1x1()},  // Cifar conv2
        {2915, 5830, 16, zoo::cfg4x4()},    // RNN
        {10, 10, 1, zoo::cfg8x8()},         // tiny
        {1, 1, 1, zoo::cfg16x16()},         // degenerate
    };
    for (const auto &c : cases) {
        const Tiling t = tiler.chooseTiles(c.m, c.k, c.n, c.bits, 8);
        EXPECT_GE(t.mt, 1u);
        EXPECT_GE(t.kt, 1u);
        EXPECT_GE(t.nt, 1u);
        EXPECT_LE(t.mt, c.m);
        EXPECT_LE(t.kt, c.k);
        EXPECT_LE(t.nt, c.n);
        // Weight tile fits half the weight buffer (or is minimal).
        if (t.mt * t.kt > 1) {
            EXPECT_LE(t.mt * t.kt * c.bits.wBits, cfg.wbufBits / 2)
                << c.m << "x" << c.k;
        }
        // Input and output tiles fit their halves.
        EXPECT_LE(t.kt * t.nt * c.bits.aBits, cfg.ibufBits / 2 +
                      t.kt * c.bits.aBits);
        EXPECT_LE(t.mt * t.nt * 32, cfg.obufBits / 2 + t.mt * 32);
    }
}

TEST(Tiler, SmallLayersStayResident)
{
    const Tiler tiler(smallConfig());
    // Weights fit entirely -> whole-matrix tile, whole-stream nt.
    const Tiling t = tiler.chooseTiles(32, 64, 100, zoo::cfg8x8(), 8);
    EXPECT_EQ(t.mt, 32u);
    EXPECT_EQ(t.kt, 64u);
    EXPECT_LE(t.nt, 100u); // OBUF residency may tile the stream
    // One weight fetch, one input fetch: resident weights are never
    // refetched even when the stream is tiled.
    EXPECT_EQ(Tiler::trafficBits(LoopOrder::InputStationary, t, 32, 64,
                                 100, 1000, 2000, 500),
              3500u);
}

TEST(Tiler, TrafficFormulas)
{
    const Tiling t{16, 32, 8};
    // n_total 32 -> 4 n-tiles; m 64 -> 4 m-tiles.
    EXPECT_EQ(Tiler::trafficBits(LoopOrder::InputStationary, t, 64, 320,
                                 32, 100, 10, 1),
              10 + 100 * 4 + 1u);
    EXPECT_EQ(Tiler::trafficBits(LoopOrder::WeightStationary, t, 64, 320,
                                 32, 100, 10, 1),
              100 + 10 * 4 + 1u);
}

TEST(Tiler, OrderPicksCheaperDirection)
{
    const AcceleratorConfig cfg = smallConfig();
    const Tiler tiler(cfg);
    const Tiling t{16, 32, 8};
    // Huge weights, small inputs -> keep weights resident.
    EXPECT_EQ(tiler.chooseOrder(t, 64, 320, 32, 1'000'000, 10, 1),
              LoopOrder::WeightStationary);
    // Huge inputs, small weights -> keep inputs resident.
    EXPECT_EQ(tiler.chooseOrder(t, 64, 320, 32, 10, 1'000'000, 1),
              LoopOrder::InputStationary);
}

TEST(Tiler, DisabledOrderingFallsBackToInputStationary)
{
    AcceleratorConfig cfg = smallConfig();
    cfg.loopOrdering = false;
    const Tiler tiler(cfg);
    const Tiling t{16, 32, 8};
    EXPECT_EQ(tiler.chooseOrder(t, 64, 320, 32, 1'000'000, 10, 1),
              LoopOrder::InputStationary);
}

TEST(Compiler, CompilesEveryZooNetwork)
{
    const Compiler compiler(smallConfig());
    for (const auto &b : zoo::all()) {
        const CompiledNetwork cn = compiler.compile(b.quantized);
        EXPECT_FALSE(cn.schedules.empty()) << b.name;
        for (const auto &s : cn.schedules) {
            s.block.validate();
            if (s.usesMacArray) {
                // GEMM dims conserve the layer's MACs.
                EXPECT_EQ(s.m * s.k * s.n,
                          s.layer.macsPerSample())
                    << b.name << "/" << s.layer.name;
            }
        }
    }
}

TEST(Compiler, LayerFusionAbsorbsActAndPool)
{
    const Compiler compiler(smallConfig());
    const CompiledNetwork cn =
        compiler.compile(zoo::cifar10().quantized);
    // conv1 is followed by act; conv2 by act+pool.
    ASSERT_GE(cn.schedules.size(), 2u);
    EXPECT_EQ(cn.schedules[0].layer.name, "conv1");
    EXPECT_TRUE(cn.schedules[0].fusedActivation);
    EXPECT_EQ(cn.schedules[1].layer.name, "conv2");
    EXPECT_TRUE(cn.schedules[1].fusedActivation);
    EXPECT_TRUE(cn.schedules[1].fusedPool);
    // Fused pool shrinks the DRAM output footprint.
    EXPECT_EQ(cn.schedules[1].outElems,
              cn.schedules[1].layer.outputCount() / 4);
    // No standalone act/pool schedules for fused layers.
    for (const auto &s : cn.schedules)
        EXPECT_TRUE(s.usesMacArray) << s.layer.name;
}

TEST(Compiler, FusionDisabledKeepsAuxLayers)
{
    AcceleratorConfig cfg = smallConfig();
    cfg.layerFusion = false;
    const Compiler compiler(cfg);
    const CompiledNetwork cn =
        compiler.compile(zoo::cifar10().quantized);
    EXPECT_EQ(cn.schedules.size(),
              zoo::cifar10().quantized.layers().size());
    bool any_aux = false;
    for (const auto &s : cn.schedules)
        any_aux |= !s.usesMacArray;
    EXPECT_TRUE(any_aux);
}

TEST(Compiler, FusedOutputBitsTrackConsumer)
{
    const Compiler compiler(smallConfig());
    const CompiledNetwork cn =
        compiler.compile(zoo::cifar10().quantized);
    // conv1 (8b/8b) feeds the binary conv2 -> outputs stored at 1 bit.
    EXPECT_EQ(cn.schedules[0].outBits, 1u);
    // Unfused outputs would be 32-bit; fused ones never are.
    for (const auto &s : cn.schedules) {
        if (s.fusedActivation) {
            EXPECT_LT(s.outBits, 32u) << s.layer.name;
        }
    }
}

TEST(Compiler, TotalMacsScaleWithBatch)
{
    const Compiler compiler(smallConfig());
    const CompiledNetwork cn = compiler.compile(zoo::lenet5().quantized);
    EXPECT_EQ(cn.totalMacs(),
              zoo::lenet5().quantized.totalMacs() * cn.batch);
}

TEST(Compiler, BlocksCarryLayerBitwidths)
{
    const Compiler compiler(smallConfig());
    for (const auto &b : zoo::all()) {
        const CompiledNetwork cn = compiler.compile(b.quantized);
        for (const auto &s : cn.schedules) {
            if (s.usesMacArray) {
                EXPECT_EQ(s.block.config, s.layer.bits)
                    << b.name << "/" << s.layer.name;
            }
        }
    }
}

TEST(Compiler, ConvBlockLoopsCoverAllMacs)
{
    const Compiler compiler(smallConfig());
    const Layer conv =
        Layer::conv("c", 8, 10, 10, 16, 3, 1, 1, zoo::cfg4x4(), 2);
    const InstructionBlock blk =
        compiler.emitConv(conv, BlockBases{}, 8);
    EXPECT_EQ(blk.innermostIterations(), conv.macsPerSample());
}

TEST(Compiler, FcBlockLoopsCoverAllMacs)
{
    const Compiler compiler(smallConfig());
    const Layer fc = Layer::fc("f", 128, 64, zoo::cfg2x2());
    const InstructionBlock blk =
        compiler.emitFc(fc, BlockBases{}, 16, 32);
    EXPECT_EQ(blk.innermostIterations(), fc.macsPerSample());
}

TEST(LargestDivisor, PinnedResults)
{
    // The sqrt-enumeration rewrite must reproduce the old linear
    // scan exactly: the largest divisor of value that is <= cap.
    EXPECT_EQ(Compiler::largestDivisor(12, 5), 4u);
    EXPECT_EQ(Compiler::largestDivisor(13, 5), 1u);   // prime
    EXPECT_EQ(Compiler::largestDivisor(16, 16), 16u); // cap == value
    EXPECT_EQ(Compiler::largestDivisor(16, 100), 16u);
    EXPECT_EQ(Compiler::largestDivisor(100, 10), 10u);
    EXPECT_EQ(Compiler::largestDivisor(100, 9), 5u);
    EXPECT_EQ(Compiler::largestDivisor(36, 35), 18u);
    EXPECT_EQ(Compiler::largestDivisor(97, 96), 1u);  // prime, big cap
    EXPECT_EQ(Compiler::largestDivisor(1, 1), 1u);
    EXPECT_EQ(Compiler::largestDivisor(7, 0), 1u);    // degenerate cap
    // Perfect squares hit the d * d == value boundary.
    EXPECT_EQ(Compiler::largestDivisor(49, 48), 7u);
    EXPECT_EQ(Compiler::largestDivisor(49, 7), 7u);
    EXPECT_EQ(Compiler::largestDivisor(49, 6), 1u);
    // A paper-sized case: AlexNet 2x fc6 output dim.
    EXPECT_EQ(Compiler::largestDivisor(8192, 100), 64u);
}

TEST(LargestDivisor, MatchesLinearReference)
{
    for (std::uint64_t value = 1; value <= 400; ++value) {
        for (std::uint64_t cap : {std::uint64_t{1}, std::uint64_t{2},
                                  std::uint64_t{7}, std::uint64_t{19},
                                  value / 2, value}) {
            if (cap == 0)
                continue;
            std::uint64_t expect = 1;
            for (std::uint64_t d = std::min(cap, value); d >= 1; --d) {
                if (value % d == 0) {
                    expect = d;
                    break;
                }
            }
            ASSERT_EQ(Compiler::largestDivisor(value, cap), expect)
                << "value " << value << " cap " << cap;
        }
    }
}

} // namespace
} // namespace bitfusion
