/**
 * @file
 * Fault-tolerant serving tests: the outage-argument parser and spec
 * validation, FaultTimeline point queries and query-order
 * independence, in-flight batch loss with retry/backoff recovery,
 * hedged re-dispatch with first-completion-wins accounting, the
 * retry-budget bound under a dead-majority fleet, availability
 * reconciliation, chaos determinism across worker-thread counts, the
 * network-switch penalty, and the dormant-knob report shape.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "src/core/artifact_cache.h"
#include "src/dnn/model_zoo.h"
#include "src/serve/faults.h"
#include "src/serve/serving_engine.h"
#include "src/sim/bitfusion_platform.h"

namespace bitfusion {
namespace {

using serve::FaultEvent;
using serve::FaultSpec;
using serve::FaultTimeline;
using serve::InferenceRequest;
using serve::RetryPolicy;
using serve::ServeOptions;
using serve::ServeReport;
using serve::ServingEngine;
using serve::TraceSpec;

/** Small two-layer network so engine runs stay fast. */
Network
tinyNet(const std::string &name, unsigned out_c)
{
    Network net(name, {});
    net.add(Layer::fc("fc1", 64, out_c, zoo::cfg8x8()));
    net.add(Layer::fc("fc2", out_c, 16, zoo::cfg4x4()));
    return net;
}

/** Catalog entry whose quantized and baseline variants coincide. */
zoo::Benchmark
tinyBench(const std::string &name, unsigned out_c)
{
    zoo::Benchmark bench;
    bench.name = name;
    bench.quantized = tinyNet(name, out_c);
    bench.baseline = bench.quantized;
    return bench;
}

PlatformSpec
bfSpec()
{
    return bitfusionPlatform(AcceleratorConfig::eyerissMatched45(), "bf");
}

/** Engine over tiny networks with a private cache. */
ServingEngine
tinyEngine(ArtifactCache &cache, ServeOptions opts)
{
    opts.threads = 1;
    if (opts.maxBatch == 0)
        opts.maxBatch = 4;
    opts.cache = &cache;
    ServingEngine engine(bfSpec(), opts);
    engine.setCatalog({tinyBench("netA", 64), tinyBench("netB", 128)});
    return engine;
}

InferenceRequest
req(std::uint64_t id, const std::string &network, unsigned samples,
    double arrivalUs, double deadlineUs = 0.0)
{
    InferenceRequest r;
    r.id = id;
    r.network = network;
    r.samples = samples;
    r.arrivalUs = arrivalUs;
    r.deadlineUs = deadlineUs;
    return r;
}

/** Simulated latency of a one-request batch, measured fault-free. */
double
batchLatencyUs(const std::string &network)
{
    ArtifactCache cache;
    ServeOptions opts;
    opts.retainRecords = true;
    ServingEngine engine = tinyEngine(cache, opts);
    const ServeReport report = engine.run({req(0, network, 1, 0.0)});
    EXPECT_EQ(report.batches.size(), 1u);
    return report.batches[0].latencyUs;
}

// ------------------------------------------------ outage-event parsing

TEST(FaultEventParse, AcceptsTheDocumentedForms)
{
    const FaultEvent permanent =
        serve::parseFaultEvent("2@1500.5", "--fail-replica");
    EXPECT_EQ(permanent.target, 2u);
    EXPECT_DOUBLE_EQ(permanent.atUs, 1500.5);
    EXPECT_DOUBLE_EQ(permanent.forUs, 0.0);

    const FaultEvent bounded =
        serve::parseFaultEvent("0@2e6:for=50000", "--fail-rack");
    EXPECT_EQ(bounded.target, 0u);
    EXPECT_DOUBLE_EQ(bounded.atUs, 2e6);
    EXPECT_DOUBLE_EQ(bounded.forUs, 50000.0);
}

TEST(FaultEventParse, RejectsMalformedArguments)
{
    EXPECT_DEATH(serve::parseFaultEvent("bogus", "--fail-replica"),
                 "ID@T");
    EXPECT_DEATH(serve::parseFaultEvent("x@5", "--fail-replica"),
                 "malformed target id");
    EXPECT_DEATH(serve::parseFaultEvent("1@abc", "--fail-replica"),
                 "malformed outage start time");
    EXPECT_DEATH(serve::parseFaultEvent("1@5:for=xyz", "--fail-rack"),
                 "malformed outage duration");
    EXPECT_DEATH(serve::parseFaultEvent("1@5:dur=9", "--fail-rack"),
                 "got duration");
    EXPECT_DEATH(serve::parseFaultEvent("1@5:for=0", "--fail-rack"),
                 "must be positive");
}

TEST(FaultSpecValidate, RejectsMispairedKnobs)
{
    FaultSpec mtbfOnly;
    mtbfOnly.mtbfUs = 1000.0;
    EXPECT_DEATH(mtbfOnly.validate(2), "MTBF and MTTR together");

    FaultSpec outOfRange;
    outOfRange.replicaEvents.push_back(FaultEvent{5, 0.0, 0.0});
    EXPECT_DEATH(outOfRange.validate(2), "targets replica 5");

    FaultSpec rackless;
    rackless.rackEvents.push_back(FaultEvent{0, 0.0, 0.0});
    EXPECT_DEATH(rackless.validate(4), "positive rack size");

    FaultSpec wideRack;
    wideRack.rackSize = 8;
    EXPECT_DEATH(wideRack.validate(4), "exceeds the fleet");

    FaultSpec badRackTarget;
    badRackTarget.rackSize = 2;
    badRackTarget.rackEvents.push_back(FaultEvent{2, 0.0, 0.0});
    EXPECT_DEATH(badRackTarget.validate(4), "targets rack 2");
}

TEST(RetryPolicyValidate, RejectsMispairedKnobs)
{
    RetryPolicy noRetries;
    noRetries.backoffBaseUs = 100.0;
    EXPECT_DEATH(noRetries.validate(), "maxAttempts > 1");

    RetryPolicy badJitter;
    badJitter.maxAttempts = 3;
    badJitter.jitterFrac = 1.5;
    EXPECT_DEATH(badJitter.validate(), "jitter fraction");

    RetryPolicy bothHedges;
    bothHedges.hedgeDelayUs = 100.0;
    bothHedges.hedgeP99Multiplier = 2.0;
    EXPECT_DEATH(bothHedges.validate(), "not both");
}

// ------------------------------------------------------ fault timeline

TEST(FaultTimelineQueries, ExplicitOutagesAnswerPointQueries)
{
    FaultSpec spec;
    spec.replicaEvents.push_back(FaultEvent{0, 100.0, 50.0});
    spec.replicaEvents.push_back(FaultEvent{0, 130.0, 100.0});
    spec.replicaEvents.push_back(FaultEvent{1, 500.0, 0.0});
    FaultTimeline timeline(spec, 2);

    // Replica 0: [100, 150) and [130, 230) merge to [100, 230).
    EXPECT_TRUE(timeline.upAt(0, 99.0));
    EXPECT_FALSE(timeline.upAt(0, 100.0));
    EXPECT_FALSE(timeline.upAt(0, 229.0));
    EXPECT_TRUE(timeline.upAt(0, 230.0));
    EXPECT_DOUBLE_EQ(timeline.upAfter(0, 150.0), 230.0);
    EXPECT_DOUBLE_EQ(timeline.upAfter(0, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(timeline.nextDownWithin(0, 0.0, 300.0), 100.0);
    EXPECT_DOUBLE_EQ(timeline.nextDownWithin(0, 100.0, 300.0),
                     std::numeric_limits<double>::infinity());
    EXPECT_DOUBLE_EQ(timeline.downUsWithin(0, 1000.0), 130.0);
    EXPECT_DOUBLE_EQ(timeline.downUsWithin(0, 200.0), 100.0);

    // Replica 1 never recovers from 500.
    EXPECT_TRUE(timeline.upAt(1, 499.0));
    EXPECT_FALSE(timeline.upAt(1, 500.0));
    EXPECT_TRUE(std::isinf(timeline.upAfter(1, 500.0)));

    EXPECT_FALSE(timeline.anyDownAt(0.0));
    EXPECT_TRUE(timeline.anyDownAt(120.0));
    EXPECT_DOUBLE_EQ(timeline.lastRecoveryBefore(1000.0), 230.0);
    EXPECT_DOUBLE_EQ(timeline.lastRecoveryBefore(200.0), 0.0);
}

TEST(FaultTimelineQueries, RackEventsCoverTheWholeRack)
{
    FaultSpec spec;
    spec.rackSize = 2;
    spec.rackEvents.push_back(FaultEvent{1, 50.0, 25.0});
    FaultTimeline timeline(spec, 5);

    // Rack 1 owns replicas 2 and 3; the short final rack (replica 4)
    // and rack 0 are untouched.
    EXPECT_TRUE(timeline.upAt(0, 60.0));
    EXPECT_TRUE(timeline.upAt(1, 60.0));
    EXPECT_FALSE(timeline.upAt(2, 60.0));
    EXPECT_FALSE(timeline.upAt(3, 60.0));
    EXPECT_TRUE(timeline.upAt(4, 60.0));
}

TEST(FaultTimelineQueries, SeededLayoutIsQueryOrderIndependent)
{
    FaultSpec spec;
    spec.seed = 42;
    spec.mtbfUs = 5000.0;
    spec.mttrUs = 1000.0;
    FaultTimeline ascending(spec, 3);
    FaultTimeline descending(spec, 3);

    // Ask one timeline forward in time and the other backward (and
    // across replicas in opposite orders): lazy extension must give
    // bit-identical answers either way.
    std::vector<double> grid;
    for (int i = 0; i <= 200; ++i)
        grid.push_back(250.0 * i);
    std::vector<std::vector<bool>> forward(3);
    for (std::size_t r = 0; r < 3; ++r) {
        for (double t : grid)
            forward[r].push_back(ascending.upAt(r, t));
    }
    for (std::size_t r = 3; r-- > 0;) {
        for (std::size_t i = grid.size(); i-- > 0;) {
            EXPECT_EQ(descending.upAt(r, grid[i]), forward[r][i])
                << "replica " << r << " t " << grid[i];
        }
    }

    // Some failures actually occurred on the grid, and the per-lane
    // streams differ (independent per-replica derivation).
    bool anyDown = false;
    for (const auto &lane : forward) {
        for (bool up : lane)
            anyDown = anyDown || !up;
    }
    EXPECT_TRUE(anyDown);
    EXPECT_NE(forward[0], forward[1]);
}

// ------------------------------------------- loss, retry, and recovery

TEST(ServeFaults, InFlightBatchLossRetriesAndRecovers)
{
    const double latency = batchLatencyUs("netA");

    ArtifactCache cache;
    ServeOptions opts;
    opts.retainRecords = true;
    opts.faults.replicaEvents.push_back(
        FaultEvent{0, 0.5 * latency, 2.0 * latency});
    opts.retry.maxAttempts = 2;
    ServingEngine engine = tinyEngine(cache, opts);

    const ServeReport report = engine.run({req(0, "netA", 1, 0.0)});

    // The outage opens mid-compute: the batch is destroyed, the
    // request re-enters immediately (no backoff), waits out the
    // repair, and completes on the second attempt.
    EXPECT_EQ(report.requestsIssued, 1u);
    EXPECT_EQ(report.requestCount, 1u);
    EXPECT_EQ(report.requestLossEvents, 1u);
    EXPECT_EQ(report.retriesIssued, 1u);
    EXPECT_EQ(report.requestsRecovered, 1u);
    EXPECT_EQ(report.requestsAbandoned, 0u);
    EXPECT_EQ(report.lostBatches, 1u);
    EXPECT_EQ(report.batchCount, 1u);

    ASSERT_EQ(report.requests.size(), 1u);
    const auto &rec = report.requests[0];
    EXPECT_EQ(rec.attempts, 2u);
    EXPECT_TRUE(rec.recovered);
    EXPECT_FALSE(rec.hedged);
    // The recovered latency spans every attempt: the original
    // arrival survives the retry round trip.
    EXPECT_DOUBLE_EQ(rec.request.arrivalUs, 0.0);
    EXPECT_NEAR(rec.finishUs, 3.5 * latency, 1e-6);
    EXPECT_NEAR(report.makespanUs, 3.5 * latency, 1e-6);

    // Availability: the replica was down [0.5L, 2.5L); destroyed
    // compute is waste, not busy time.
    ASSERT_EQ(report.replicas.size(), 1u);
    EXPECT_NEAR(report.replicas[0].downUs, 2.0 * latency, 1e-6);
    EXPECT_EQ(report.replicas[0].lostBatches, 1u);
    EXPECT_NEAR(report.replicas[0].wastedUs, 0.5 * latency, 1e-6);
    EXPECT_NEAR(report.replicas[0].busyUs, latency, 1e-6);
    EXPECT_NEAR(report.lastRecoveryUs, 2.5 * latency, 1e-6);
    EXPECT_NEAR(report.drainAfterRecoveryUs, latency, 1e-6);
    EXPECT_NEAR(report.fleetDownUs, 2.0 * latency, 1e-6);
    EXPECT_GT(report.fleetAvailability(), 0.0);
    EXPECT_LT(report.fleetAvailability(), 1.0);
}

TEST(ServeFaults, ExhaustedAttemptsAbandonTheRequest)
{
    const double latency = batchLatencyUs("netA");

    ArtifactCache cache;
    ServeOptions opts;
    opts.retainRecords = true;
    // The replica never recovers; maxAttempts stays at 1, so the
    // one lost request is abandoned rather than retried.
    opts.faults.replicaEvents.push_back(
        FaultEvent{0, 0.5 * latency, 0.0});
    opts.retry.maxAttempts = 1;
    opts.retry.hedgeDelayUs = 0.0;
    opts.faults.seed = 3;
    ServingEngine engine = tinyEngine(cache, opts);

    const ServeReport report = engine.run({req(0, "netA", 1, 0.0)});
    EXPECT_EQ(report.requestsIssued, 1u);
    EXPECT_EQ(report.requestCount, 0u);
    EXPECT_EQ(report.requestLossEvents, 1u);
    EXPECT_EQ(report.retriesIssued, 0u);
    EXPECT_EQ(report.requestsAbandoned, 1u);
    EXPECT_EQ(report.batchCount, 0u);
    EXPECT_DOUBLE_EQ(report.energyJ, 0.0);
}

TEST(ServeFaults, HedgeWinsWhenThePrimaryReplicaDies)
{
    const double latency = batchLatencyUs("netA");

    ArtifactCache cache;
    ServeOptions opts;
    opts.replicas = 2;
    opts.retainRecords = true;
    // Replica 0 (the cheapest-tie primary) dies mid-compute; the
    // hedge fired earlier onto replica 1 survives and serves the
    // request with no loss event at all.
    opts.faults.replicaEvents.push_back(
        FaultEvent{0, 0.6 * latency, 0.0});
    opts.retry.hedgeDelayUs = 0.2 * latency;
    ServingEngine engine = tinyEngine(cache, opts);

    const ServeReport report = engine.run({req(0, "netA", 1, 0.0)});
    EXPECT_EQ(report.requestCount, 1u);
    EXPECT_EQ(report.requestLossEvents, 0u);
    EXPECT_EQ(report.hedgesIssued, 1u);
    EXPECT_EQ(report.hedgesWon, 1u);
    EXPECT_EQ(report.hedgesCancelled, 0u);
    EXPECT_EQ(report.hedgesLost, 0u);
    EXPECT_EQ(report.lostBatches, 1u); // the destroyed primary

    ASSERT_EQ(report.requests.size(), 1u);
    const auto &rec = report.requests[0];
    EXPECT_TRUE(rec.hedged);
    EXPECT_FALSE(rec.recovered);
    EXPECT_EQ(rec.attempts, 1u);
    EXPECT_EQ(rec.replica, 1u);
    EXPECT_NEAR(rec.finishUs, 1.2 * latency, 1e-6);

    // The winner's compute is the only busy time and energy; the
    // primary's burned 0.6 L is waste.
    ASSERT_EQ(report.replicas.size(), 2u);
    EXPECT_NEAR(report.replicas[0].wastedUs, 0.6 * latency, 1e-6);
    EXPECT_EQ(report.replicas[0].batches, 0u);
    EXPECT_NEAR(report.replicas[1].busyUs, latency, 1e-6);
    EXPECT_EQ(report.replicas[1].batches, 1u);
}

TEST(ServeFaults, CancelledHedgeChargesWasteNotEnergy)
{
    const double latency = batchLatencyUs("netA");

    ArtifactCache cache;
    ServeOptions baseOpts;
    ServingEngine plain = tinyEngine(cache, baseOpts);
    const double oneBatchJ =
        plain.run({req(0, "netA", 1, 0.0)}).energyJ;

    ArtifactCache cache2;
    ServeOptions opts;
    opts.replicas = 2;
    opts.retainRecords = true;
    // No faults at all: the hedge always fires (delay < latency) and
    // always loses the race to the identical primary, so every
    // hedge is cancelled at the primary's completion.
    opts.retry.hedgeDelayUs = 0.5 * latency;
    ServingEngine engine = tinyEngine(cache2, opts);

    const ServeReport report = engine.run({req(0, "netA", 1, 0.0)});
    EXPECT_EQ(report.hedgesIssued, 1u);
    EXPECT_EQ(report.hedgesWon, 0u);
    EXPECT_EQ(report.hedgesCancelled, 1u);
    EXPECT_EQ(report.hedgesLost, 0u);
    EXPECT_EQ(report.lostBatches, 0u);
    // First-completion-wins: the loser burned [0.5 L, L) of compute
    // as waste, and the run's energy is one batch, not two.
    EXPECT_NEAR(report.replicas[1].wastedUs, 0.5 * latency, 1e-6);
    EXPECT_EQ(report.replicas[1].batches, 0u);
    EXPECT_DOUBLE_EQ(report.energyJ, oneBatchJ);
}

TEST(ServeFaults, RetryBudgetBoundsTheStormUnderADeadMajority)
{
    // All timescales hang off the measured batch latency so outage
    // onsets actually land inside in-flight windows (the tiny nets
    // compute in about a microsecond).
    const double latency = batchLatencyUs("netA");

    TraceSpec traceSpec;
    traceSpec.seed = 11;
    traceSpec.requests = 60;
    traceSpec.meanGapUs = 0.25 * latency;
    traceSpec.networks = {"netA", "netB"};

    ArtifactCache cache;
    ServeOptions opts;
    opts.replicas = 4;
    // Three of four replicas are dead from the start; the survivor
    // flaps hard. Attempts are effectively unbounded, so only the
    // global budget separates this from a retry storm.
    opts.faults.replicaEvents.push_back(FaultEvent{1, 0.0, 0.0});
    opts.faults.replicaEvents.push_back(FaultEvent{2, 0.0, 0.0});
    opts.faults.replicaEvents.push_back(FaultEvent{3, 0.0, 0.0});
    opts.faults.mtbfUs = 4.0 * latency;
    opts.faults.mttrUs = 2.0 * latency;
    opts.faults.seed = 5;
    opts.retry.maxAttempts = 100;
    opts.retry.retryBudget = 5;
    ServingEngine engine = tinyEngine(cache, opts);

    const ServeReport report =
        engine.run(serve::syntheticTrace(traceSpec));
    EXPECT_LE(report.retriesIssued, 5u);
    EXPECT_GT(report.requestLossEvents, 0u);
    // Reconciliation holds even mid-storm.
    EXPECT_EQ(report.requestsIssued,
              report.requestCount + report.shedRequests +
                  report.requestsAbandoned);
}

// ------------------------------------------ reconciliation and shape

TEST(ServeFaults, AvailabilityReconcilesUnderFullChaos)
{
    // Timescales hang off the measured batch latency so the seeded
    // fault process is dense relative to in-flight windows.
    const double latency = batchLatencyUs("netA");

    TraceSpec traceSpec;
    traceSpec.seed = 7;
    traceSpec.requests = 300;
    traceSpec.meanGapUs = 0.5 * latency;
    traceSpec.deadlineSlackUs = 2000.0 * latency;
    traceSpec.networks = {"netA", "netB"};

    ArtifactCache cache;
    ServeOptions opts;
    opts.replicas = 3;
    opts.maxQueueDepth = 64;
    opts.shedUnmeetable = true;
    opts.retainRecords = true;
    opts.faults.mtbfUs = 6.0 * latency;
    opts.faults.mttrUs = 2.0 * latency;
    opts.faults.seed = 9;
    opts.retry.maxAttempts = 3;
    opts.retry.backoffBaseUs = 0.5 * latency;
    opts.retry.jitterFrac = 0.25;
    opts.retry.hedgeDelayUs = 0.5 * latency;
    ServingEngine engine = tinyEngine(cache, opts);

    const ServeReport report =
        engine.run(serve::syntheticTrace(traceSpec));

    // Every issued request ends exactly one way.
    EXPECT_EQ(report.requestsIssued, 300u);
    EXPECT_EQ(report.requestsIssued,
              report.requestCount + report.shedRequests +
                  report.requestsAbandoned);
    // Every hedge ends exactly one way.
    EXPECT_EQ(report.hedgesIssued,
              report.hedgesWon + report.hedgesCancelled +
                  report.hedgesLost);
    // Retries never exceed losses, recoveries never exceed retries.
    EXPECT_LE(report.retriesIssued, report.requestLossEvents);
    EXPECT_LE(report.requestsRecovered, report.retriesIssued);
    EXPECT_GT(report.requestLossEvents, 0u);
    EXPECT_GT(report.requestsRecovered, 0u);
    // Per-request attempts sum to dispatch consumption: served
    // requests' (attempts - 1) retries plus abandoned ones' count
    // equal the retries the engine issued... the weaker per-record
    // invariant checked here is that recovered records carry their
    // extra attempts.
    std::size_t extraAttempts = 0;
    for (const auto &rec : report.requests) {
        EXPECT_GE(rec.attempts, 1u);
        if (rec.recovered) {
            EXPECT_GT(rec.attempts, 1u);
        }
        extraAttempts += rec.attempts - 1;
    }
    EXPECT_LE(extraAttempts, report.retriesIssued);
    EXPECT_GT(report.fleetDownUs, 0.0);
    EXPECT_LT(report.fleetAvailability(), 1.0);
    EXPECT_LE(report.goodput(), 1.0);
}

TEST(ServeFaults, ChaosRunIsByteIdenticalAcrossThreadCounts)
{
    TraceSpec traceSpec;
    traceSpec.seed = 21;
    traceSpec.requests = 250;
    traceSpec.meanGapUs = 350.0;
    traceSpec.networks = {"netA", "netB"};

    const auto runWith = [&](unsigned threads) {
        ArtifactCache cache;
        ServeOptions opts;
        opts.maxBatch = 4;
        opts.cache = &cache;
        opts.threads = threads;
        opts.replicas = 3;
        opts.retainRecords = true;
        opts.faults.mtbfUs = 120000.0;
        opts.faults.mttrUs = 30000.0;
        opts.faults.seed = 13;
        opts.retry.maxAttempts = 4;
        opts.retry.backoffBaseUs = 800.0;
        opts.retry.jitterFrac = 0.5;
        opts.retry.hedgeP99Multiplier = 3.0;
        ServingEngine engine(bfSpec(), opts);
        engine.setCatalog(
            {tinyBench("netA", 64), tinyBench("netB", 128)});
        return engine.run(serve::syntheticTrace(traceSpec)).json(true);
    };

    const std::string one = runWith(1);
    const std::string eight = runWith(8);
    EXPECT_EQ(one, eight);
    // And a rerun at the same thread count reproduces itself.
    EXPECT_EQ(one, runWith(1));
    EXPECT_NE(one.find("\"availability\""), std::string::npos);
}

TEST(ServeFaults, DormantKnobsLeaveTheReportShapeUntouched)
{
    const std::vector<InferenceRequest> trace = {
        req(0, "netA", 1, 0.0), req(1, "netB", 2, 100.0)};

    ArtifactCache cache;
    ServeOptions opts;
    opts.retainRecords = true;
    ServingEngine engine = tinyEngine(cache, opts);
    const ServeReport dormant = engine.run(trace);
    EXPECT_FALSE(dormant.faultReport);
    EXPECT_FALSE(dormant.switchReport);
    const std::string json = dormant.json(true);
    EXPECT_EQ(json.find("\"availability\""), std::string::npos);
    EXPECT_EQ(json.find("\"attempts\""), std::string::npos);
    EXPECT_EQ(json.find("\"network_switches\""), std::string::npos);
    EXPECT_EQ(json.find("\"down_us\""), std::string::npos);

    ArtifactCache cache2;
    ServeOptions active = opts;
    active.faults.mtbfUs = 1e9;
    active.faults.mttrUs = 1.0;
    ServingEngine chaotic = tinyEngine(cache2, active);
    const std::string activeJson = chaotic.run(trace).json(true);
    EXPECT_NE(activeJson.find("\"availability\""), std::string::npos);
    EXPECT_NE(activeJson.find("\"attempts\""), std::string::npos);
    EXPECT_NE(activeJson.find("\"down_us\""), std::string::npos);
}

// ------------------------------------------------ network-switch cost

TEST(ServeSwitchPenalty, ChargedOncePerNetworkChange)
{
    const double latencyA = batchLatencyUs("netA");
    const double penalty = 750.0;

    // Alternating networks with max batch 1: every batch reloads.
    std::vector<InferenceRequest> trace;
    for (std::uint64_t i = 0; i < 6; ++i)
        trace.push_back(req(i, i % 2 == 0 ? "netA" : "netB", 1, 0.0));

    ArtifactCache cache;
    ServeOptions opts;
    opts.maxBatch = 1;
    opts.retainRecords = true;
    opts.switchPenaltyUs = penalty;
    ServingEngine engine = tinyEngine(cache, opts);
    const ServeReport report = engine.run(trace);

    EXPECT_TRUE(report.switchReport);
    EXPECT_FALSE(report.faultReport);
    EXPECT_EQ(report.networkSwitches, 6u);
    EXPECT_DOUBLE_EQ(report.switchPenaltyTotalUs, 6.0 * penalty);
    ASSERT_EQ(report.batches.size(), 6u);
    EXPECT_NEAR(report.batches[0].latencyUs, latencyA + penalty,
                1e-6);
    EXPECT_NE(report.json().find("\"network_switches\""),
              std::string::npos);

    // A same-network stream on the same options pays the cold start
    // only once.
    ArtifactCache cache2;
    ServingEngine warm = tinyEngine(cache2, opts);
    std::vector<InferenceRequest> same;
    for (std::uint64_t i = 0; i < 6; ++i)
        same.push_back(req(i, "netA", 1, 0.0));
    const ServeReport warmReport = warm.run(same);
    EXPECT_EQ(warmReport.networkSwitches, 1u);
    EXPECT_DOUBLE_EQ(warmReport.switchPenaltyTotalUs, penalty);
}

// --------------------------------------------- trace-parser hardening

TEST(TraceParserHardening, FatalWithSourceAndLineContext)
{
    EXPECT_DEATH(serve::parseTrace("1.0 netA\n", "day.trace"),
                 "day.trace:1");
    EXPECT_DEATH(
        serve::parseTrace("1.0 netA 1\nabc netB 1\n", "day.trace"),
        "day.trace:2.*malformed arrival time");
    EXPECT_DEATH(serve::parseTrace("12abc netA 1\n", "day.trace"),
                 "malformed arrival time");
    EXPECT_DEATH(serve::parseTrace("1.0 netA 2x\n", "day.trace"),
                 "bad sample count");
    EXPECT_DEATH(serve::parseTrace("5.0 netA 1\n1.0 netA 1\n"),
                 "out of order");
    EXPECT_DEATH(serve::parseTrace("1.0 netA 1 5.0 junk\n"),
                 "trailing");
}

TEST(TraceParserHardening, CommentsAndBlanksStillSkip)
{
    const auto trace = serve::parseTrace(
        "# header\n\n  \t\n1.5 netA 2\n# tail\n3.5 netB 1 9.0\n");
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_DOUBLE_EQ(trace[0].arrivalUs, 1.5);
    EXPECT_EQ(trace[0].samples, 2u);
    EXPECT_DOUBLE_EQ(trace[1].deadlineUs, 9.0);
}

} // namespace
} // namespace bitfusion
