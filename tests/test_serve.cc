/**
 * @file
 * Serving-engine tests: batch coalescing against the max batch and
 * deadlines, the batching window, latency percentiles on hand-built
 * traces, open- and closed-loop determinism across worker-thread
 * counts, trace round-trips, and the process-level artifact cache
 * shared between the serving engine and the sweep runner.
 */

#include <gtest/gtest.h>

#include "src/core/artifact_cache.h"
#include "src/dnn/model_zoo.h"
#include "src/runner/sweep.h"
#include "src/serve/serving_engine.h"
#include "src/sim/bitfusion_platform.h"
#include "src/sim/simulator.h"

namespace bitfusion {
namespace {

using serve::ClosedLoopSpec;
using serve::InferenceRequest;
using serve::Percentiles;
using serve::ServeOptions;
using serve::ServeReport;
using serve::ServingEngine;
using serve::TraceSpec;

/** Small two-layer network so engine runs stay fast. */
Network
tinyNet(const std::string &name, unsigned out_c)
{
    Network net(name, {});
    net.add(Layer::fc("fc1", 64, out_c, zoo::cfg8x8()));
    net.add(Layer::fc("fc2", out_c, 16, zoo::cfg4x4()));
    return net;
}

/** Catalog entry whose quantized and baseline variants coincide. */
zoo::Benchmark
tinyBench(const std::string &name, unsigned out_c)
{
    zoo::Benchmark bench;
    bench.name = name;
    bench.quantized = tinyNet(name, out_c);
    bench.baseline = bench.quantized;
    return bench;
}

PlatformSpec
bfSpec()
{
    return bitfusionPlatform(AcceleratorConfig::eyerissMatched45(), "bf");
}

/** Engine over tiny networks with a private cache and fixed options. */
ServingEngine
tinyEngine(ArtifactCache &cache, unsigned maxBatch = 4,
           double maxWaitUs = 0.0)
{
    ServeOptions opts;
    opts.threads = 1;
    opts.maxBatch = maxBatch;
    opts.maxWaitUs = maxWaitUs;
    opts.cache = &cache;
    ServingEngine engine(bfSpec(), opts);
    engine.setCatalog({tinyBench("netA", 64), tinyBench("netB", 128)});
    return engine;
}

InferenceRequest
req(std::uint64_t id, const std::string &network, unsigned samples,
    double arrivalUs, double deadlineUs = 0.0)
{
    InferenceRequest r;
    r.id = id;
    r.network = network;
    r.samples = samples;
    r.arrivalUs = arrivalUs;
    r.deadlineUs = deadlineUs;
    return r;
}

TEST(ServePercentiles, NearestRankOnKnownSample)
{
    std::vector<double> values;
    for (int i = 100; i >= 1; --i)
        values.push_back(i);
    const Percentiles p = serve::percentiles(values);
    EXPECT_DOUBLE_EQ(p.p50, 50.0);
    EXPECT_DOUBLE_EQ(p.p95, 95.0);
    EXPECT_DOUBLE_EQ(p.p99, 99.0);
    EXPECT_DOUBLE_EQ(p.mean, 50.5);
    EXPECT_DOUBLE_EQ(p.max, 100.0);

    const Percentiles one = serve::percentiles({42.0});
    EXPECT_DOUBLE_EQ(one.p50, 42.0);
    EXPECT_DOUBLE_EQ(one.p99, 42.0);

    const Percentiles none = serve::percentiles({});
    EXPECT_DOUBLE_EQ(none.p50, 0.0);
    EXPECT_DOUBLE_EQ(none.max, 0.0);
}

TEST(ServeBatching, CoalescesFifoUpToMaxBatch)
{
    ArtifactCache cache;
    ServingEngine engine = tinyEngine(cache, 4);
    std::vector<InferenceRequest> trace;
    for (std::uint64_t i = 0; i < 6; ++i)
        trace.push_back(req(i, "netA", 1, 0.0));

    const ServeReport report = engine.run(trace);
    ASSERT_EQ(report.batches.size(), 2u);
    EXPECT_EQ(report.batches[0].samples, 4u);
    EXPECT_EQ(report.batches[0].requests, 4u);
    EXPECT_EQ(report.batches[1].samples, 2u);
    ASSERT_EQ(report.requests.size(), 6u);
    // FIFO: the first four requests ride the first batch.
    for (std::uint64_t i = 0; i < 6; ++i) {
        EXPECT_EQ(report.requests[i].request.id, i);
        EXPECT_EQ(report.requests[i].batchSamples, i < 4 ? 4u : 2u);
    }
    EXPECT_EQ(report.totalSamples, 6u);
}

TEST(ServeBatching, CoalescesWholeRequestsOnly)
{
    // 3+2 exceeds the cap, so the 2-sample requests pair up in the
    // second batch; a request's samples never split across batches.
    ArtifactCache cache;
    ServingEngine engine = tinyEngine(cache, 4);
    const ServeReport report = engine.run({req(0, "netA", 3, 0.0),
                                           req(1, "netA", 2, 0.0),
                                           req(2, "netA", 2, 0.0)});
    ASSERT_EQ(report.batches.size(), 2u);
    EXPECT_EQ(report.batches[0].samples, 3u);
    EXPECT_EQ(report.batches[0].requests, 1u);
    EXPECT_EQ(report.batches[1].samples, 4u);
    EXPECT_EQ(report.batches[1].requests, 2u);
}

TEST(ServeBatching, HeadOfLineNetworkPicksTheBatch)
{
    ArtifactCache cache;
    ServingEngine engine = tinyEngine(cache, 4);
    const ServeReport report = engine.run(
        {req(0, "netA", 1, 0.0), req(1, "netB", 1, 0.0),
         req(2, "netA", 1, 0.0), req(3, "netB", 1, 0.0)});
    ASSERT_EQ(report.batches.size(), 2u);
    EXPECT_EQ(report.batches[0].network, "netA");
    EXPECT_EQ(report.batches[0].samples, 2u);
    EXPECT_EQ(report.batches[1].network, "netB");
    EXPECT_EQ(report.batches[1].samples, 2u);
}

TEST(ServeBatching, WindowWaitsThenTimerFires)
{
    // A lone unfilled batch waits out the full batching window.
    ArtifactCache cache;
    ServingEngine engine = tinyEngine(cache, 4, 500.0);
    const ServeReport report = engine.run({req(0, "netA", 1, 0.0)});
    ASSERT_EQ(report.batches.size(), 1u);
    EXPECT_DOUBLE_EQ(report.batches[0].dispatchUs, 500.0);
    EXPECT_DOUBLE_EQ(report.requests[0].queueUs(), 500.0);
}

TEST(ServeBatching, WindowDispatchesEarlyWhenFull)
{
    ArtifactCache cache;
    ServingEngine engine = tinyEngine(cache, 2, 1000.0);
    const ServeReport report =
        engine.run({req(0, "netA", 1, 0.0), req(1, "netA", 1, 300.0)});
    ASSERT_EQ(report.batches.size(), 1u);
    EXPECT_EQ(report.batches[0].samples, 2u);
    // The batch fills at the second arrival, not at the timer.
    EXPECT_DOUBLE_EQ(report.batches[0].dispatchUs, 300.0);
}

TEST(ServeBatching, DeadlineCutsTheWindowShort)
{
    // The head's 200 us deadline overrides the 1000 us window; the
    // 500 us arrival misses the batch and is served next.
    ArtifactCache cache;
    ServingEngine engine = tinyEngine(cache, 4, 1000.0);
    const ServeReport report = engine.run(
        {req(0, "netA", 1, 0.0, 200.0), req(1, "netA", 1, 500.0)});
    ASSERT_EQ(report.batches.size(), 2u);
    EXPECT_DOUBLE_EQ(report.batches[0].dispatchUs, 200.0);
    EXPECT_EQ(report.batches[0].requests, 1u);
    EXPECT_EQ(report.deadlineMisses, 0u);
}

TEST(ServeBatching, LateDispatchCountsAsDeadlineMiss)
{
    // The cap-filling head batch occupies the platform; the second
    // request's 1 us deadline passes while it queues.
    ArtifactCache cache;
    ServingEngine engine = tinyEngine(cache, 4);
    const ServeReport report = engine.run(
        {req(0, "netA", 4, 0.0), req(1, "netA", 1, 0.0, 1.0)});
    ASSERT_EQ(report.requests.size(), 2u);
    EXPECT_FALSE(report.requests[0].deadlineMissed);
    EXPECT_TRUE(report.requests[1].deadlineMissed);
    EXPECT_EQ(report.deadlineMisses, 1u);
    EXPECT_GT(report.requests[1].dispatchUs, 1.0);
}

TEST(ServeLatency, MatchesThePlatformBatchLatency)
{
    // Widely spaced arrivals with no window: each request's latency
    // is exactly its own batch-size simulation on the platform.
    ArtifactCache cache;
    ServingEngine engine = tinyEngine(cache, 4);
    const ServeReport report =
        engine.run({req(0, "netA", 1, 0.0), req(1, "netA", 4, 1e6)});

    PlatformSpec spec = bfSpec();
    spec.batch = 1;
    const auto p1 = PlatformRegistry::builtin().build(spec);
    const double lat1 =
        p1->run(tinyNet("netA", 64)).seconds() * 1e6;
    spec.batch = 4;
    const auto p4 = PlatformRegistry::builtin().build(spec);
    const double lat4 =
        p4->run(tinyNet("netA", 64)).seconds() * 1e6;

    ASSERT_EQ(report.requests.size(), 2u);
    EXPECT_DOUBLE_EQ(report.requests[0].latencyUs(), lat1);
    EXPECT_DOUBLE_EQ(report.requests[0].queueUs(), 0.0);
    // finish - arrival reassociates the sum, so allow one ulp of the
    // 1e6 us arrival offset.
    EXPECT_NEAR(report.requests[1].latencyUs(), lat4, 1e-6);
}

TEST(ServeDeterminism, ThreadCountDoesNotChangeTheReport)
{
    TraceSpec traceSpec;
    traceSpec.seed = 11;
    traceSpec.requests = 200;
    traceSpec.meanGapUs = 50.0;
    traceSpec.maxSamples = 4;
    traceSpec.networks = {"netA", "netB"};
    const auto trace = serve::syntheticTrace(traceSpec);

    ArtifactCache cache1, cacheN;
    ServeOptions opts;
    opts.maxBatch = 4;
    opts.maxWaitUs = 100.0;
    opts.threads = 1;
    opts.cache = &cache1;
    ServingEngine serial(bfSpec(), opts);
    serial.setCatalog({tinyBench("netA", 64), tinyBench("netB", 128)});
    opts.threads = 8;
    opts.cache = &cacheN;
    ServingEngine parallel(bfSpec(), opts);
    parallel.setCatalog({tinyBench("netA", 64), tinyBench("netB", 128)});

    const std::string a = serial.run(trace).json(true);
    const std::string b = parallel.run(trace).json(true);
    EXPECT_EQ(a, b);
}

TEST(ServeDeterminism, SyntheticTraceIsSeedStable)
{
    TraceSpec spec;
    spec.seed = 5;
    spec.requests = 50;
    const auto a = serve::syntheticTrace(spec);
    const auto b = serve::syntheticTrace(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].network, b[i].network);
        EXPECT_EQ(a[i].samples, b[i].samples);
        EXPECT_DOUBLE_EQ(a[i].arrivalUs, b[i].arrivalUs);
    }
    spec.seed = 6;
    const auto c = serve::syntheticTrace(spec);
    bool differs = false;
    for (std::size_t i = 0; i < a.size() && !differs; ++i)
        differs = a[i].network != c[i].network ||
                  a[i].arrivalUs != c[i].arrivalUs;
    EXPECT_TRUE(differs);
}

TEST(ServeClosedLoop, ServesExactlyTheQuota)
{
    ArtifactCache cache;
    ServingEngine engine = tinyEngine(cache, 4);
    ClosedLoopSpec load;
    load.clients = 3;
    load.requests = 10;
    load.samples = 2;
    load.networks = {"netA"};
    const ServeReport report = engine.runClosedLoop(load);
    EXPECT_EQ(report.mode, "closed-loop");
    ASSERT_EQ(report.requests.size(), 10u);
    EXPECT_EQ(report.totalSamples, 20u);
    for (std::size_t i = 0; i < report.requests.size(); ++i)
        EXPECT_EQ(report.requests[i].request.id, i);

    // Same seed, fresh engine: byte-identical report.
    ArtifactCache cache2;
    ServingEngine again = tinyEngine(cache2, 4);
    EXPECT_EQ(again.runClosedLoop(load).json(true), report.json(true));
}

TEST(ServeCache, SharedWithTheSweepRunnerAcrossSubsystems)
{
    // A sweep compiles (netA, batch 16); the serving engine then
    // serves a 16-sample request of the same network on the same
    // platform configuration without recompiling.
    ArtifactCache cache;
    SweepSpec spec;
    spec.name = "warm";
    spec.platforms = {bfSpec()};
    spec.networks = {SweepNetwork::uniform("netA", tinyNet("netA", 64))};
    SweepOptions sweepOpts;
    sweepOpts.threads = 1;
    sweepOpts.cache = &cache;
    const SweepResult sweep = SweepRunner(sweepOpts).run(spec);
    EXPECT_EQ(sweep.compileCount(), 1u);
    EXPECT_EQ(cache.compileCount(), 1u);

    ServeOptions opts;
    opts.threads = 1;
    opts.cache = &cache;
    ServingEngine engine(bfSpec(), opts); // platform batch 16
    engine.setCatalog({tinyBench("netA", 64)});
    const ServeReport report = engine.run({req(0, "netA", 16, 0.0)});
    EXPECT_EQ(report.compiles, 0u);
    EXPECT_GE(report.cacheHits, 1u);
    EXPECT_EQ(cache.compileCount(), 1u);

    // And the reverse: a repeated sweep performs no new compilation
    // (the cache's compile counter stays put).
    const SweepResult again = SweepRunner(sweepOpts).run(spec);
    EXPECT_EQ(again.compileCount(), 1u);
    EXPECT_EQ(cache.compileCount(), 1u);
}

TEST(ServeCache, OneCompilePerDistinctShape)
{
    // Three batch shapes of netA, one of netB: four compiles, and
    // repeating every shape adds only hits.
    ArtifactCache cache;
    ServingEngine engine = tinyEngine(cache, 4);
    const ServeReport report = engine.run(
        {req(0, "netA", 1, 0.0), req(1, "netA", 2, 1e7),
         req(2, "netA", 1, 2e7), req(3, "netA", 4, 3e7),
         req(4, "netB", 4, 4e7), req(5, "netA", 4, 5e7)});
    // Prewarm compiles both networks at the cap (4); the 1- and
    // 2-sample shapes compile lazily at dispatch.
    EXPECT_EQ(cache.compileCount(), 4u);
    EXPECT_EQ(report.compiles, 4u);
    EXPECT_EQ(report.distinctBatchShapes, 4u);
    EXPECT_EQ(report.batches.size(), 6u);
}

TEST(ServeTrace, FormatParseRoundTrip)
{
    TraceSpec spec;
    spec.seed = 9;
    spec.requests = 20;
    spec.deadlineSlackUs = 1234.5;
    const auto trace = serve::syntheticTrace(spec);
    const std::string text = serve::formatTrace(trace);
    const auto parsed = serve::parseTrace(text);
    ASSERT_EQ(parsed.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(parsed[i].id, i);
        EXPECT_EQ(parsed[i].network, trace[i].network);
        EXPECT_EQ(parsed[i].samples, trace[i].samples);
        EXPECT_NEAR(parsed[i].arrivalUs, trace[i].arrivalUs, 1e-6);
        EXPECT_NEAR(parsed[i].deadlineUs, trace[i].deadlineUs, 1e-6);
    }
    // Formatting the parsed trace reproduces the text byte-for-byte.
    EXPECT_EQ(serve::formatTrace(parsed), text);

    EXPECT_TRUE(serve::parseTrace("# only a comment\n\n").empty());
}

TEST(ServeDeath, RejectsBadTracesAndRequests)
{
    EXPECT_DEATH(serve::parseTrace("12.0 netA\n"), "malformed");
    EXPECT_DEATH(serve::parseTrace("5.0 netA 1\n1.0 netA 1\n"),
                 "out of order");
    EXPECT_DEATH(serve::parseTrace("5.0 netA 0\n"),
                 "bad sample count");
    EXPECT_DEATH(serve::parseTrace("5.0 netA -1\n"),
                 "bad sample count");
    EXPECT_DEATH(serve::parseTrace("5.0 netA 1 garbage\n"),
                 "malformed deadline");
    EXPECT_DEATH(serve::parseTrace("5.0 netA 1 9.0 extra\n"),
                 "trailing");

    ArtifactCache cache;
    ServingEngine engine = tinyEngine(cache, 4);
    EXPECT_DEATH(engine.run({req(0, "netA", 5, 0.0)}), "max batch");
    EXPECT_DEATH(engine.run({req(0, "nope", 1, 0.0)}), "no network");
    EXPECT_DEATH(engine.run({req(0, "netA", 1, 5.0),
                             req(1, "netA", 1, 0.0)}),
                 "arrival-ordered");
}

} // namespace
} // namespace bitfusion
