/**
 * @file
 * Fusion-ISA tests: instruction construction, 32-bit encode/decode
 * round trips (including wide-immediate extension words), block
 * validation, and disassembly.
 */

#include <gtest/gtest.h>

#include "src/compiler/codegen.h"
#include "src/dnn/model_zoo.h"
#include "src/isa/block.h"
#include "src/isa/instruction.h"

namespace bitfusion {
namespace {

TEST(Instruction, BitwidthCodes)
{
    EXPECT_EQ(encodeBits(1), 0u);
    EXPECT_EQ(encodeBits(16), 4u);
    for (unsigned b : {1u, 2u, 4u, 8u, 16u})
        EXPECT_EQ(decodeBits(encodeBits(b)), b);
}

TEST(Instruction, SetupCarriesConfig)
{
    const Instruction i = Instruction::setup(4, 2, false, true);
    EXPECT_EQ(i.op, Opcode::Setup);
    EXPECT_EQ(decodeBits((i.imm >> 8) & 0xff), 4u);
    EXPECT_EQ(decodeBits(i.imm & 0xff), 2u);
    EXPECT_FALSE(i.spec & 1);
    EXPECT_TRUE(i.spec & 2);
}

TEST(Instruction, FieldAccessors)
{
    const Instruction ld = Instruction::ldMem(BufferId::Wbuf, 2, 64);
    EXPECT_EQ(ld.buffer(), BufferId::Wbuf);
    EXPECT_EQ(ld.id, 2);
    EXPECT_EQ(ld.fullImm(), 64u);
    EXPECT_FALSE(ld.isPost());

    const Instruction st =
        Instruction::stMem(BufferId::Obuf, 1, 32, true, true);
    EXPECT_TRUE(st.isPost());
    EXPECT_TRUE(st.isActivate());

    const Instruction ga = Instruction::genAddr(
        BufferId::Ibuf, AddrSpace::BufAccess, 3, 7);
    EXPECT_EQ(ga.space(), AddrSpace::BufAccess);
    EXPECT_EQ(ga.buffer(), BufferId::Ibuf);

    const Instruction cm = Instruction::compute(ComputeFn::Max, 5);
    EXPECT_EQ(cm.fn(), ComputeFn::Max);
}

TEST(Instruction, EncodeDecodeRoundTripNarrow)
{
    const Instruction insts[] = {
        Instruction::setup(8, 2, false, true),
        Instruction::loop(3, 100),
        Instruction::genAddr(BufferId::Wbuf, AddrSpace::Mem, 1, 128),
        Instruction::genAddr(BufferId::Obuf, AddrSpace::BufFill, 2, 9),
        Instruction::ldMem(BufferId::Ibuf, 0, 4096),
        Instruction::stMem(BufferId::Obuf, 1, 16, true, true),
        Instruction::rdBuf(BufferId::Wbuf, 4),
        Instruction::wrBuf(BufferId::Obuf, 3, true),
        Instruction::compute(ComputeFn::Mac, 4),
        Instruction::setRows(2, 8),
        Instruction::blockEnd(7),
    };
    for (const auto &inst : insts) {
        std::uint32_t words[2];
        const unsigned n = encode(inst, words);
        EXPECT_EQ(n, 1u) << inst.toString();
        unsigned consumed = 0;
        const Instruction back = decode(words, &consumed);
        EXPECT_EQ(consumed, 1u);
        EXPECT_EQ(back.op, inst.op) << inst.toString();
        EXPECT_EQ(back.id, inst.id) << inst.toString();
        EXPECT_EQ(back.spec, inst.spec) << inst.toString();
        EXPECT_EQ(back.imm, inst.imm) << inst.toString();
    }
}

TEST(Instruction, EncodeDecodeRoundTripWide)
{
    // Strides and word counts beyond 16 bits use an extension word.
    const Instruction insts[] = {
        Instruction::loop(1, 1ULL << 20),
        Instruction::genAddr(BufferId::Wbuf, AddrSpace::Mem, 2,
                             151'000'000ULL),
        Instruction::ldMem(BufferId::Ibuf, 0, 1ULL << 18),
    };
    for (const auto &inst : insts) {
        std::uint32_t words[2];
        const unsigned n = encode(inst, words);
        EXPECT_EQ(n, 2u) << inst.toString();
        unsigned consumed = 0;
        const Instruction back = decode(words, &consumed);
        EXPECT_EQ(consumed, 2u);
        EXPECT_EQ(back.fullImm(), inst.fullImm()) << inst.toString();
        EXPECT_EQ(back.op, inst.op);
        EXPECT_EQ(back.spec, inst.spec) << inst.toString();
    }
}

TEST(Instruction, ToStringIsInformative)
{
    EXPECT_NE(Instruction::setup(4, 2, false, true).toString().find("a4"),
              std::string::npos);
    EXPECT_NE(Instruction::ldMem(BufferId::Wbuf, 2, 64)
                  .toString()
                  .find("WBUF"),
              std::string::npos);
    EXPECT_NE(Instruction::compute(ComputeFn::Mac, 4)
                  .toString()
                  .find("mac"),
              std::string::npos);
    EXPECT_NE(Instruction::stMem(BufferId::Obuf, 1, 8, true, true)
                  .toString()
                  .find("+act"),
              std::string::npos);
}

TEST(Block, EncodeWordsRoundTrip)
{
    const Compiler compiler(AcceleratorConfig::eyerissMatched45());
    const Layer fc = Layer::fc("fc", 64, 32, zoo::cfg4x4());
    const InstructionBlock b =
        compiler.emitFc(fc, BlockBases{}, 16, 16);
    const auto words = b.encodeWords();
    const auto back = InstructionBlock::decodeWords(words);
    ASSERT_EQ(back.size(), b.instructions.size());
    for (std::size_t i = 0; i < back.size(); ++i) {
        EXPECT_EQ(back[i].op, b.instructions[i].op);
        EXPECT_EQ(back[i].fullImm(), b.instructions[i].fullImm());
        EXPECT_EQ(back[i].id, b.instructions[i].id);
        EXPECT_EQ(back[i].spec, b.instructions[i].spec);
    }
}

TEST(Block, LoopAccounting)
{
    const Compiler compiler(AcceleratorConfig::eyerissMatched45());
    const Layer fc = Layer::fc("fc", 64, 32, zoo::cfg4x4());
    const InstructionBlock b =
        compiler.emitFc(fc, BlockBases{}, 16, 16);
    EXPECT_EQ(b.loopCount(), 4u);
    // Product of loop extents covers every MAC exactly once.
    EXPECT_EQ(b.innermostIterations(), 64ULL * 32);
    EXPECT_EQ(b.loopIterations(0) * b.loopIterations(2), 32u);
    EXPECT_EQ(b.loopIterations(1) * b.loopIterations(3), 64u);
}

TEST(BlockDeath, ValidationCatchesStructuralErrors)
{
    InstructionBlock b;
    b.name = "bad";
    EXPECT_DEATH(b.validate(), "empty");

    b.instructions = {Instruction::loop(0, 4),
                      Instruction::blockEnd(0)};
    EXPECT_DEATH(b.validate(), "setup");

    b.instructions = {Instruction::setup(4, 4, false, true),
                      Instruction::loop(0, 4)};
    EXPECT_DEATH(b.validate(), "block-end");

    b.instructions = {Instruction::setup(4, 4, false, true),
                      Instruction::loop(0, 4), Instruction::loop(0, 2),
                      Instruction::blockEnd(0)};
    EXPECT_DEATH(b.validate(), "duplicate");

    b.instructions = {Instruction::setup(4, 4, false, true),
                      Instruction::loop(0, 4),
                      Instruction::compute(ComputeFn::Mac, 3),
                      Instruction::blockEnd(0)};
    EXPECT_DEATH(b.validate(), "level");
}

TEST(Block, DisassemblyMentionsEveryOpcode)
{
    const Compiler compiler(AcceleratorConfig::eyerissMatched45());
    const Layer fc = Layer::fc("fc", 64, 32, zoo::cfg4x4());
    const InstructionBlock b =
        compiler.emitFc(fc, BlockBases{}, 16, 16);
    const std::string d = b.disassemble();
    for (const char *tok : {"setup", "loop", "gen-addr", "ld-mem",
                            "st-mem", "rd-buf", "wr-buf", "compute",
                            "block-end"})
        EXPECT_NE(d.find(tok), std::string::npos) << tok;
}

TEST(Block, PaperInstructionBudget)
{
    // Paper §IV-A: blocks of 30-86 instructions cover LSTM, CNN,
    // pooling and fully-connected layers.
    const Compiler compiler(AcceleratorConfig::eyerissMatched45());
    for (const auto &bench : zoo::all()) {
        const CompiledNetwork cn = compiler.compile(bench.quantized);
        for (const auto &s : cn.schedules) {
            EXPECT_GE(s.block.instructions.size(), 8u) << s.layer.name;
            EXPECT_LE(s.block.instructions.size(), 86u) << s.layer.name;
        }
    }
}

} // namespace
} // namespace bitfusion
