/**
 * @file
 * Tests for the extension features: fixed-point LSTM cell execution,
 * within-layer bitwidth variation (multiple blocks per layer), and
 * the report writers.
 */

#include <gtest/gtest.h>

#include "src/compiler/mixed_precision.h"
#include "src/core/accelerator.h"
#include "src/core/report.h"
#include "src/dnn/model_zoo.h"
#include "src/dnn/reference.h"

namespace bitfusion {
namespace {

// ---------------------------------------------------------------
// Fixed-point LSTM cell.
// ---------------------------------------------------------------

TEST(LstmCell, HardSigmoidShape)
{
    const unsigned f = 8; // Q8
    const std::int64_t one = 1 << f;
    EXPECT_EQ(Reference::hardSigmoid(0, f), one / 2);
    EXPECT_EQ(Reference::hardSigmoid(4 * one, f), one); // saturates high
    EXPECT_EQ(Reference::hardSigmoid(-4 * one, f), 0);  // saturates low
    EXPECT_EQ(Reference::hardSigmoid(one, f), one / 2 + one / 4);
    // Monotone.
    std::int64_t prev = -1;
    for (std::int64_t x = -5 * one; x <= 5 * one; x += one / 4) {
        const std::int64_t y = Reference::hardSigmoid(x, f);
        EXPECT_GE(y, prev);
        prev = y;
    }
}

TEST(LstmCell, HardTanhShape)
{
    const unsigned f = 8;
    const std::int64_t one = 1 << f;
    EXPECT_EQ(Reference::hardTanh(0, f), 0);
    EXPECT_EQ(Reference::hardTanh(one / 2, f), one / 2);
    EXPECT_EQ(Reference::hardTanh(3 * one, f), one);
    EXPECT_EQ(Reference::hardTanh(-3 * one, f), -one);
}

TEST(LstmCell, ZeroWeightsKeepDecayedState)
{
    // With all-zero weights: i=f=o=sigmoid(0)=0.5, g=0;
    // c' = 0.5*c, h' = 0.5*tanh(0.5*c).
    const unsigned f = 8;
    const std::int64_t one = 1 << f;
    const Layer l = Layer::lstm("l", 2, 2, zoo::cfg4x4());
    Tensor x(static_cast<std::size_t>(2)), h(static_cast<std::size_t>(2)),
        c(static_cast<std::size_t>(2));
    c[0] = one;      // 1.0
    c[1] = one / 2;  // 0.5
    Tensor w(l.weightCount());
    const Tensor out = Reference::lstmCell(l, x, h, c, w, f);
    EXPECT_EQ(out[2], one / 2);     // c'[0] = 0.5
    EXPECT_EQ(out[3], one / 4);     // c'[1] = 0.25
    EXPECT_EQ(out[0], one / 4);     // h'[0] = 0.5 * tanh(0.5) = 0.25
    EXPECT_EQ(out[1], one / 8);     // h'[1] = 0.5 * 0.25
}

TEST(LstmCell, ForgetGateSaturationPreservesCell)
{
    // Large positive forget-gate pre-activation -> f = 1; with i
    // saturated low, c' = c exactly.
    const unsigned f = 8;
    const std::int64_t one = 1 << f;
    const Layer l = Layer::lstm("l", 1, 1, zoo::cfg4x4());
    Tensor x(static_cast<std::size_t>(1)), h(static_cast<std::size_t>(1)),
        c(static_cast<std::size_t>(1));
    x[0] = one; // 1.0 input
    c[0] = 100;
    // Gate order [Wi | Wf | Wg | Wo], each 1 x 2 over [x; h].
    Tensor w(l.weightCount());
    w[0] = -8 * one; // Wi.x: i saturates to 0
    w[2] = 8 * one;  // Wf.x: f saturates to 1
    w[4] = 0;        // Wg
    w[6] = 0;        // Wo: o = 0.5
    const Tensor out = Reference::lstmCell(l, x, h, c, w, f);
    EXPECT_EQ(out[1], 100);              // c preserved
    EXPECT_EQ(out[0], (one / 2) * 100 >> f); // h = 0.5 * tanh(c)
}

TEST(LstmCell, GateMatrixMatchesFcLowering)
{
    // The pre-activation z of every gate equals the FC lowering the
    // compiler emits for the LSTM layer's (4h x (in+h)) matrix.
    const unsigned f = 6;
    const Layer l = Layer::lstm("l", 3, 4, zoo::cfg4x4());
    Prng prng(61);
    Tensor x(static_cast<std::size_t>(3)), h(static_cast<std::size_t>(4)),
        c(static_cast<std::size_t>(4));
    x.fillRandom(prng, 4, true);
    h.fillRandom(prng, 4, true);
    Tensor w(l.weightCount());
    w.fillRandom(prng, 4, true);

    Tensor cat(static_cast<std::size_t>(7));
    for (int i = 0; i < 3; ++i)
        cat[i] = x[i];
    for (int i = 0; i < 4; ++i)
        cat[3 + i] = h[i];
    const Layer fc = Layer::fc("z", 7, 16, zoo::cfg4x4());
    const Tensor z = Reference::fullyConnected(fc, cat, w);

    const Tensor out = Reference::lstmCell(l, x, h, c, w, f);
    for (unsigned j = 0; j < 4; ++j) {
        const std::int64_t i_g =
            Reference::hardSigmoid(z[0 * 4 + j] >> f, f);
        const std::int64_t f_g =
            Reference::hardSigmoid(z[1 * 4 + j] >> f, f);
        const std::int64_t g_g =
            Reference::hardTanh(z[2 * 4 + j] >> f, f);
        const std::int64_t o_g =
            Reference::hardSigmoid(z[3 * 4 + j] >> f, f);
        const std::int64_t c_new =
            ((f_g * c[j]) >> f) + ((i_g * g_g) >> f);
        EXPECT_EQ(out[4 + j], c_new) << j;
        const std::int64_t h_new =
            (o_g * Reference::hardTanh(c_new, f)) >> f;
        EXPECT_EQ(out[j], h_new) << j;
    }
}

// ---------------------------------------------------------------
// Within-layer bitwidth variation.
// ---------------------------------------------------------------

TEST(MixedPrecision, SplitConservesWorkExactly)
{
    const Layer conv =
        Layer::conv("c", 64, 14, 14, 100, 3, 1, 1, zoo::cfg8x8());
    const auto parts = splitByOutputChannels(
        conv, {{0.25, zoo::cfg8x8()}, {0.75, zoo::cfg2x2()}});
    ASSERT_EQ(parts.size(), 2u);
    EXPECT_EQ(parts[0].outC + parts[1].outC, conv.outC);
    EXPECT_EQ(parts[0].macsPerSample() + parts[1].macsPerSample(),
              conv.macsPerSample());
    EXPECT_EQ(parts[0].weightCount() + parts[1].weightCount(),
              conv.weightCount());
    EXPECT_EQ(parts[0].bits.aBits, 8u);
    EXPECT_EQ(parts[1].bits.wBits, 2u);
}

TEST(MixedPrecision, ThreeWaySplitOfFc)
{
    const Layer fc = Layer::fc("f", 512, 1000, zoo::cfg8x8());
    const auto parts = splitByOutputChannels(
        fc, {{0.5, zoo::cfg2x2()},
             {0.3, zoo::cfg4x4()},
             {0.2, zoo::cfg8x8()}});
    ASSERT_EQ(parts.size(), 3u);
    unsigned total = 0;
    for (const auto &p : parts)
        total += p.outC;
    EXPECT_EQ(total, 1000u);
    EXPECT_EQ(parts[0].outC, 500u);
    EXPECT_EQ(parts[1].outC, 300u);
    EXPECT_EQ(parts[2].outC, 200u);
}

TEST(MixedPrecision, CompilesToOneBlockPerSlice)
{
    const Layer conv =
        Layer::conv("c", 32, 16, 16, 64, 3, 1, 1, zoo::cfg8x8());
    const auto parts = splitByOutputChannels(
        conv, {{0.5, zoo::cfg8x8()}, {0.5, zoo::cfg2x2()}});
    Network net("mixed", {parts[0], parts[1]});
    const Compiler compiler(AcceleratorConfig::eyerissMatched45());
    const CompiledNetwork cn = compiler.compile(net);
    ASSERT_EQ(cn.schedules.size(), 2u);
    EXPECT_EQ(cn.schedules[0].block.config, zoo::cfg8x8());
    EXPECT_EQ(cn.schedules[1].block.config, zoo::cfg2x2());
    // Each block re-fuses the array via its own setup instruction.
    EXPECT_EQ(cn.schedules[0].block.instructions.front().op,
              Opcode::Setup);
    EXPECT_EQ(cn.schedules[1].block.instructions.front().op,
              Opcode::Setup);
}

TEST(MixedPrecision, LowerPrecisionSliceRunsFaster)
{
    const Layer conv =
        Layer::conv("c", 256, 14, 14, 512, 3, 1, 1, zoo::cfg8x8());
    const auto parts = splitByOutputChannels(
        conv, {{0.5, zoo::cfg8x8()}, {0.5, zoo::cfg2x2()}});
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    const RunStats mixed =
        acc.run(Network("mixed", {parts[0], parts[1]}));
    const RunStats uniform = acc.run(Network("uniform", {conv}));
    // Half the channels at ternary precision beats all-8-bit.
    EXPECT_LT(mixed.totalCycles, uniform.totalCycles);
}

TEST(MixedPrecisionDeath, RejectsBadSplits)
{
    const Layer conv =
        Layer::conv("c", 8, 8, 8, 16, 3, 1, 1, zoo::cfg8x8());
    EXPECT_DEATH(splitByOutputChannels(conv, {}), "no parts");
    EXPECT_DEATH(
        splitByOutputChannels(conv, {{-0.5, zoo::cfg8x8()},
                                     {1.5, zoo::cfg8x8()}}),
        "non-positive");
    const Layer pool = Layer::pool("p", 8, 8, 8, 2, 2);
    EXPECT_DEATH(splitByOutputChannels(pool, {{1.0, zoo::cfg8x8()}}),
                 "conv/fc");
}

// ---------------------------------------------------------------
// Report writers.
// ---------------------------------------------------------------

TEST(Report, CsvHasHeaderAndOneRowPerLayer)
{
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    const RunStats rs = acc.run(zoo::lenet5().quantized);
    const std::string csv = report::csv(rs);
    const auto lines = std::count(csv.begin(), csv.end(), '\n');
    EXPECT_EQ(static_cast<std::size_t>(lines), rs.layers.size() + 1);
    EXPECT_NE(csv.find("layer,config,macs"), std::string::npos);
    EXPECT_NE(csv.find("conv1"), std::string::npos);
}

TEST(Report, SummaryMentionsKeyNumbers)
{
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    const RunStats rs = acc.run(zoo::lenet5().quantized);
    const std::string s = report::summary(rs);
    EXPECT_NE(s.find("LeNet-5"), std::string::npos);
    EXPECT_NE(s.find("cycles/batch"), std::string::npos);
    EXPECT_NE(s.find("uJ"), std::string::npos);
}

TEST(Report, VersusComputesRatios)
{
    Accelerator a(AcceleratorConfig::eyerissMatched45());
    AcceleratorConfig slow_cfg = AcceleratorConfig::eyerissMatched45();
    slow_cfg.bwBitsPerCycle = 32;
    Accelerator b(slow_cfg);
    const RunStats fast = a.run(zoo::rnn().quantized);
    const RunStats slow = b.run(zoo::rnn().quantized);
    const std::string s = report::versus(fast, slow);
    EXPECT_NE(s.find("speedup"), std::string::npos);
    EXPECT_NE(s.find("RNN"), std::string::npos);
}

TEST(ReportDeath, VersusRejectsDifferentNetworks)
{
    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    const RunStats a = acc.run(zoo::rnn().quantized);
    const RunStats b = acc.run(zoo::lstm().quantized);
    EXPECT_DEATH(report::versus(a, b), "different networks");
}

} // namespace
} // namespace bitfusion
