/**
 * @file
 * Artifact-store GC tests: age-ranked eviction down to a byte
 * budget, the only-valid-records rule (in-flight temp files, corrupt
 * records, and foreign files are never deleted), dry-run inertness,
 * and deterministic ranking for a fixed tree. Suites are prefixed
 * Store so the TSan CI job's filter covers this file too.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/artifact_store.h"

namespace bitfusion {
namespace {

namespace fs = std::filesystem;

/** Unique store root under the system temp dir, removed on exit. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        static std::atomic<unsigned> seq{0};
        path = (fs::temp_directory_path() /
                ("bitfusion-gc-test." + std::to_string(::getpid()) +
                 "." + std::to_string(seq.fetch_add(1))))
                   .string();
        std::error_code ec;
        fs::remove_all(path, ec);
    }

    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

/**
 * Publish @p n records of @p payloadBytes each and pin their
 * modification times to a strict age order (key-0 oldest), so the
 * eviction ranking is deterministic regardless of how fast the
 * filesystem stamped the writes.
 */
std::vector<std::string>
seedRecords(const ArtifactStore &store, std::size_t n,
            std::size_t payloadBytes)
{
    std::vector<std::string> keys;
    const auto base = fs::file_time_type::clock::now() -
                      std::chrono::hours(24);
    for (std::size_t i = 0; i < n; ++i) {
        const std::string key = "key-" + std::to_string(i);
        EXPECT_TRUE(
            store.publish(key, std::string(payloadBytes, 'a')));
        std::error_code ec;
        fs::last_write_time(store.pathFor(key),
                            base + std::chrono::minutes(i), ec);
        EXPECT_FALSE(ec) << key;
        keys.push_back(key);
    }
    return keys;
}

TEST(StoreGc, UnderBudgetEvictsNothing)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    seedRecords(store, 4, 100);

    const auto result = store.gc(1 << 20);
    EXPECT_EQ(result.scanned, 4u);
    EXPECT_EQ(result.evicted, 0u);
    EXPECT_EQ(result.retained, 4u);
    EXPECT_EQ(result.skipped, 0u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_TRUE(store.load("key-" + std::to_string(i)));
}

TEST(StoreGc, OverBudgetEvictsOldestFirst)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const auto keys = seedRecords(store, 6, 200);
    const std::uint64_t recordBytes =
        fs::file_size(store.pathFor(keys[0]));

    // Budget for exactly three records: the three oldest go.
    const auto result = store.gc(3 * recordBytes);
    EXPECT_EQ(result.scanned, 6u);
    EXPECT_EQ(result.evicted, 3u);
    EXPECT_EQ(result.evictedBytes, 3 * recordBytes);
    EXPECT_EQ(result.retained, 3u);
    EXPECT_EQ(result.retainedBytes, 3 * recordBytes);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_FALSE(store.load(keys[i])) << keys[i];
    for (std::size_t i = 3; i < 6; ++i)
        EXPECT_TRUE(store.load(keys[i])) << keys[i];
}

TEST(StoreGc, DryRunRanksWithoutDeleting)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const auto keys = seedRecords(store, 5, 150);
    const std::uint64_t recordBytes =
        fs::file_size(store.pathFor(keys[0]));

    const auto dry = store.gc(2 * recordBytes, /*dryRun=*/true);
    EXPECT_EQ(dry.evicted, 3u);
    EXPECT_EQ(dry.retained, 2u);
    // Nothing actually left the disk.
    for (const auto &key : keys)
        EXPECT_TRUE(store.load(key)) << key;

    // The live pass agrees with the dry ranking.
    const auto live = store.gc(2 * recordBytes);
    EXPECT_EQ(live.evicted, dry.evicted);
    EXPECT_EQ(live.evictedBytes, dry.evictedBytes);
    EXPECT_FALSE(store.load(keys[0]));
    EXPECT_TRUE(store.load(keys[4]));
}

TEST(StoreGc, NeverDeletesTempCorruptOrForeignFiles)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    const auto keys = seedRecords(store, 3, 100);

    // An in-flight publish, a truncated record, a record whose bytes
    // were flipped, and a foreign file -- none are the GC's to
    // delete, even under a zero budget.
    const std::string tmpPath =
        store.pathFor("key-0") + ".1234.0.tmp";
    writeFile(tmpPath, "half-written publish");
    const std::string truncatedPath = dir.path + "/cafecafecafecafe.bfa";
    writeFile(truncatedPath, "BFAS");
    std::ifstream in(store.pathFor(keys[1]), std::ios::binary);
    std::string frame((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    frame[frame.size() / 2] ^= 0x40;
    const std::string corruptPath = dir.path + "/feedfeedfeedfeed.bfa";
    writeFile(corruptPath, frame);
    const std::string foreignPath = dir.path + "/README.txt";
    writeFile(foreignPath, "not a record");

    const auto result = store.gc(0);
    EXPECT_EQ(result.scanned, 3u);
    EXPECT_EQ(result.evicted, 3u);
    EXPECT_EQ(result.skipped, 4u);
    EXPECT_TRUE(fs::exists(tmpPath));
    EXPECT_TRUE(fs::exists(truncatedPath));
    EXPECT_TRUE(fs::exists(corruptPath));
    EXPECT_TRUE(fs::exists(foreignPath));
    for (const auto &key : keys)
        EXPECT_FALSE(store.load(key)) << key;
}

TEST(StoreGc, RelocatedValidRecordIsNotACandidate)
{
    TempDir dir;
    ArtifactStore store(dir.path);
    seedRecords(store, 1, 100);

    // A structurally valid record filed under the wrong name (its
    // embedded key does not hash to this filename) is skipped: the
    // GC only deletes what the store can prove it owns.
    std::ifstream in(store.pathFor("key-0"), std::ios::binary);
    std::string frame((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    const std::string movedPath = dir.path + "/0123456789abcdef.bfa";
    writeFile(movedPath, frame);

    const auto result = store.gc(0);
    EXPECT_EQ(result.scanned, 1u);
    EXPECT_EQ(result.skipped, 1u);
    EXPECT_TRUE(fs::exists(movedPath));
    EXPECT_FALSE(fs::exists(store.pathFor("key-0")));
}

} // namespace
} // namespace bitfusion
