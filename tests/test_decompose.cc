/**
 * @file
 * Property tests for the multiply decomposition (Eqs. 1-3): for
 * every supported bitwidth/sign combination, the sum of shifted
 * BitBrick products must equal the plain integer product. Low
 * widths are swept exhaustively, high widths randomly.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "src/arch/decompose.h"
#include "src/common/bitutils.h"
#include "src/common/prng.h"

namespace bitfusion {
namespace {

struct Case
{
    unsigned aBits, wBits;
    bool aSigned, wSigned;
};

class DecomposeSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
  protected:
    FusionConfig
    cfg() const
    {
        static const unsigned widths[] = {1, 2, 4, 8, 16};
        const unsigned a = widths[std::get<0>(GetParam())];
        const unsigned w = widths[std::get<1>(GetParam())];
        const int signs = std::get<2>(GetParam());
        FusionConfig c;
        c.aBits = a;
        c.wBits = w;
        // Binary operands are unsigned by definition.
        c.aSigned = (signs & 1) && a > 1;
        c.wSigned = (signs & 2) && w > 1;
        return c;
    }
};

TEST_P(DecomposeSweep, RandomOperandsMatchIntegerProduct)
{
    const FusionConfig c = cfg();
    Prng prng(0x5eed0000 + c.aBits * 64 + c.wBits * 4 +
              (c.aSigned ? 2 : 0) + (c.wSigned ? 1 : 0));
    for (int i = 0; i < 200; ++i) {
        const std::int64_t a = c.aSigned ? prng.nextSigned(c.aBits)
                                         : prng.nextUnsigned(c.aBits);
        const std::int64_t w = c.wSigned ? prng.nextSigned(c.wBits)
                                         : prng.nextUnsigned(c.wBits);
        const auto ops = decomposeMultiply(a, w, c);
        EXPECT_EQ(evaluateDecomposition(ops), a * w)
            << c.toString() << " a=" << a << " w=" << w;
    }
}

TEST_P(DecomposeSweep, OperandCountMatchesLaneProduct)
{
    const FusionConfig c = cfg();
    const auto ops = decomposeMultiply(0, 0, c);
    EXPECT_EQ(ops.size(), bitBrickLanes(c.aBits) * bitBrickLanes(c.wBits));
}

TEST_P(DecomposeSweep, ExtremeOperandsMatch)
{
    const FusionConfig c = cfg();
    const std::int64_t a_lo = c.aSigned ? signedMin(c.aBits) : 0;
    const std::int64_t a_hi =
        c.aSigned ? signedMax(c.aBits) : unsignedMax(c.aBits);
    const std::int64_t w_lo = c.wSigned ? signedMin(c.wBits) : 0;
    const std::int64_t w_hi =
        c.wSigned ? signedMax(c.wBits) : unsignedMax(c.wBits);
    for (std::int64_t a : {a_lo, a_hi}) {
        for (std::int64_t w : {w_lo, w_hi}) {
            const auto ops = decomposeMultiply(a, w, c);
            EXPECT_EQ(evaluateDecomposition(ops), a * w)
                << c.toString() << " a=" << a << " w=" << w;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, DecomposeSweep,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 5),
                                            ::testing::Range(0, 4)));

TEST(Decompose, ExhaustiveFourByFourSigned)
{
    FusionConfig c{4, 4, true, true};
    for (std::int64_t a = -8; a <= 7; ++a)
        for (std::int64_t w = -8; w <= 7; ++w)
            EXPECT_EQ(evaluateDecomposition(decomposeMultiply(a, w, c)),
                      a * w)
                << "a=" << a << " w=" << w;
}

TEST(Decompose, ExhaustiveFourByFourUnsigned)
{
    FusionConfig c{4, 4, false, false};
    for (std::int64_t a = 0; a <= 15; ++a)
        for (std::int64_t w = 0; w <= 15; ++w)
            EXPECT_EQ(evaluateDecomposition(decomposeMultiply(a, w, c)),
                      a * w);
}

TEST(Decompose, ExhaustiveEightByTwoMixed)
{
    FusionConfig c{8, 2, false, true};
    for (std::int64_t a = 0; a <= 255; ++a)
        for (std::int64_t w = -2; w <= 1; ++w)
            EXPECT_EQ(evaluateDecomposition(decomposeMultiply(a, w, c)),
                      a * w);
}

TEST(Decompose, PaperFigureSixExample)
{
    // 11 x 6 = 66 with 4-bit unsigned operands (paper Fig. 6).
    FusionConfig c{4, 4, false, false};
    const auto ops = decomposeMultiply(11, 6, c);
    EXPECT_EQ(ops.size(), 4u);
    EXPECT_EQ(evaluateDecomposition(ops), 66);
}

TEST(Decompose, PaperFigureSevenExample)
{
    // 15 x 1 + 10 x 2 = 35 with 4-bit x 2-bit operands (Fig. 7).
    FusionConfig c{4, 2, false, false};
    const auto a = decomposeMultiply(15, 1, c);
    const auto b = decomposeMultiply(10, 2, c);
    EXPECT_EQ(a.size() + b.size(), 4u);
    EXPECT_EQ(evaluateDecomposition(a) + evaluateDecomposition(b), 35);
}

TEST(Decompose, RejectsUnrepresentableOperands)
{
    FusionConfig c{4, 4, false, true};
    EXPECT_FALSE(representable(16, 4, false));
    EXPECT_FALSE(representable(-1, 4, false));
    EXPECT_FALSE(representable(8, 4, true));
    EXPECT_TRUE(representable(-8, 4, true));
    EXPECT_DEATH(decomposeMultiply(16, 0, c), "not representable");
}

} // namespace
} // namespace bitfusion
