/**
 * @file
 * Reproduces paper Fig. 16 (batch-size sweep) via the figure registry (src/runner).
 * Equivalent to `bitfusion_sweep --figure fig16`; accepts
 * --threads N, --json PATH.
 */

#include "src/runner/figures.h"

int
main(int argc, char **argv)
{
    return bitfusion::figures::benchMain("fig16", argc, argv);
}
