/**
 * @file
 * Reproduces paper Fig. 16: Bit Fusion per-sample throughput as the
 * batch size sweeps 1..256, normalized to batch 1.
 *
 * Paper shape (geomean): 1.00, 1.66, 2.43, 2.68, 2.68 for batch
 * 1/4/16/64/256 -- batching amortizes weight reads, so the
 * weight-bound recurrent models gain ~15-21x while the reuse-rich
 * CNNs gain ~1.2-1.5x, saturating beyond batch 64.
 */

#include <cstdio>
#include <vector>

#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

int
main()
{
    using namespace bitfusion;

    const std::vector<unsigned> batches = {1, 4, 16, 64, 256};
    const auto benches = zoo::all();

    std::printf("=== Fig. 16: per-sample speedup vs batch size "
                "(baseline batch 1) ===\n\n");

    std::vector<std::string> headers = {"Benchmark"};
    for (auto b : batches)
        headers.push_back("B=" + std::to_string(b));
    TextTable table(headers);

    std::vector<std::vector<double>> cols(batches.size());
    for (const auto &bench : benches) {
        std::vector<std::string> row = {bench.name};
        double base_sec = 0.0;
        for (std::size_t bi = 0; bi < batches.size(); ++bi) {
            AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
            cfg.batch = batches[bi];
            Accelerator acc(cfg);
            const double sec =
                acc.run(bench.quantized).secondsPerSample();
            if (bi == 0)
                base_sec = sec;
            const double speedup = base_sec / sec;
            cols[bi].push_back(speedup);
            row.push_back(TextTable::times(speedup, 2));
        }
        table.addRow(row);
    }
    std::vector<std::string> geo = {"geomean"};
    for (auto &c : cols)
        geo.push_back(TextTable::times(geomean(c), 2));
    table.addRow(geo);
    table.print();
    std::printf("\npaper geomean: 1.00  1.66  2.43  2.68  2.68 "
                "(RNN/LSTM up to 21x, CNNs ~1.2-1.5x)\n");
    return 0;
}
