/**
 * @file
 * Reproduces paper Fig. 18: Bit Fusion speedup and energy reduction
 * over Stripes, tile-for-tile (one Stripes tile of 4096 SIPs is
 * replaced by 512 Fusion Units in the same 1.1 mm^2 with the same
 * on-chip memory; §V-A).
 *
 * Paper geomeans: 2.6x speedup, 3.9x energy reduction. Stripes only
 * exploits weight bitwidth (activations fixed at 16-bit), so the
 * benchmarks with narrow activations gain the most.
 */

#include <cstdio>
#include <vector>

#include "src/baselines/stripes.h"
#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

namespace {

struct PaperRow
{
    double perf;
    double energy;
};

// Fig. 18 per-benchmark values from the paper's data table.
const PaperRow paperFig18[] = {
    {1.8, 2.7}, // AlexNet
    {4.0, 6.0}, // Cifar-10
    {2.1, 3.1}, // LSTM
    {5.2, 7.8}, // LeNet-5
    {2.6, 4.4}, // ResNet-18
    {2.0, 3.0}, // RNN
    {1.8, 2.7}, // SVHN
    {2.9, 4.4}, // VGG-7
};

} // namespace

int
main()
{
    using namespace bitfusion;

    Accelerator bf(AcceleratorConfig::stripesTileMatched45());
    StripesModel stripes;

    std::printf("=== Fig. 18: Bit Fusion improvement over Stripes "
                "(45 nm, tile-matched) ===\n\n");

    TextTable table({"Benchmark", "Speedup", "(paper)", "EnergyRed",
                     "(paper)"});
    std::vector<double> speedups, energy_reds;
    const auto benches = zoo::all();
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const auto &b = benches[i];
        // Both platforms run the same quantized models (Stripes also
        // benefits from the reduced weight bitwidths).
        const RunStats bfs = bf.run(b.quantized);
        const RunStats sts = stripes.run(b.quantized);
        const double speedup =
            sts.secondsPerSample() / bfs.secondsPerSample();
        const double energy_red =
            sts.energyPerSampleJ() / bfs.energyPerSampleJ();
        speedups.push_back(speedup);
        energy_reds.push_back(energy_red);
        table.addRow({b.name, TextTable::times(speedup, 1),
                      TextTable::times(paperFig18[i].perf, 1),
                      TextTable::times(energy_red, 1),
                      TextTable::times(paperFig18[i].energy, 1)});
    }
    table.addRow({"geomean", TextTable::times(geomean(speedups), 2),
                  "2.61x", TextTable::times(geomean(energy_reds), 2),
                  "3.97x"});
    table.print();
    return 0;
}
