/**
 * @file
 * Reproduces paper Fig. 18 (improvement over Stripes) via the figure registry (src/runner).
 * Equivalent to `bitfusion_sweep --figure fig18`; accepts
 * --threads N, --json PATH.
 */

#include "src/runner/figures.h"

int
main(int argc, char **argv)
{
    return bitfusion::figures::benchMain("fig18", argc, argv);
}
