/**
 * @file
 * Closed-loop serving benchmark: every paper platform under the same
 * always-outstanding client load, side by side -- then every
 * dispatch scheduler over one replicated fleet under the same load.
 *
 * Each platform serves the same seeded request mix (whole zoo,
 * batch-of-1 requests from N concurrent clients) through the
 * dynamic-batching ServingEngine; the first table reports throughput
 * and the latency distribution per platform. The second table holds
 * the platform fixed (Bit Fusion on --replicas R replicas, requests
 * granted a dispatch deadline) and varies the scheduler
 * (fifo/lookahead/edf/slo), so the policies' latency, miss, and
 * fill trade-offs line up in one place. Deterministic for a fixed
 * seed: rerunning prints byte-identical numbers.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/table.h"
#include "src/serve/scheduler.h"
#include "src/serve/serving_engine.h"

namespace {

using namespace bitfusion;
using namespace bitfusion::serve;

std::string
num(double v, int digits)
{
    return TextTable::num(v, digits);
}

} // namespace

int
main(int argc, char **argv)
{
    ClosedLoopSpec load;
    load.clients = 8;
    load.requests = 256;
    load.samples = 1;
    load.seed = 1;
    ServeOptions options;
    unsigned replicas = 2;
    double deadlineUs = 20000.0;
    double sloUs = 20000.0;
    double lookaheadWindowUs = 1000.0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--requests") {
            load.requests = static_cast<std::size_t>(
                cli::uintArg(argc, argv, i, "--requests"));
        } else if (arg == "--clients") {
            load.clients = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--clients", UINT32_MAX));
        } else if (arg == "--seed") {
            load.seed = cli::uintArg(argc, argv, i, "--seed");
        } else if (arg == "--replicas") {
            replicas = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--replicas", UINT32_MAX));
        } else if (arg == "--deadline-us") {
            deadlineUs = cli::doubleArg(argc, argv, i, "--deadline-us");
        } else if (arg == "--slo-us") {
            sloUs = cli::doubleArg(argc, argv, i, "--slo-us");
        } else if (arg == "--threads") {
            options.threads = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--threads", UINT32_MAX));
        } else if (arg == "--timing") {
            options.timing = timingArg(argc, argv, i);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--requests N] [--clients C] "
                         "[--seed S] [--replicas R] [--deadline-us D] "
                         "[--slo-us B] [--threads N] "
                         "[--timing simple|overlap]\n",
                         argv[0]);
            return 2;
        }
    }
    if (replicas == 0) {
        std::fprintf(stderr, "--replicas must be at least 1\n");
        return 2;
    }

    std::printf("=== Closed-loop serving: %zu requests, %u clients, "
                "seed %llu, timing=%s ===\n\n",
                load.requests, load.clients,
                static_cast<unsigned long long>(load.seed),
                toString(options.timing));

    const char *tokens[] = {"bitfusion", "eyeriss", "stripes",
                            "gpu:titan-xp-int8"};
    TextTable table({"Platform", "req/s", "samples/s", "p50 us",
                     "p99 us", "fill", "uJ/sample"});
    for (const char *token : tokens) {
        ServingEngine engine(PlatformRegistry::builtin().parse(token),
                             options);
        const ServeReport report = engine.runClosedLoop(load);
        const Percentiles lat = report.latencyUs();
        const double uj =
            report.totalSamples != 0
                ? 1e6 * report.energyJ /
                      static_cast<double>(report.totalSamples)
                : 0.0;
        table.addRow({report.platform, num(report.requestsPerSec(), 1),
                      num(report.samplesPerSec(), 1), num(lat.p50, 1),
                      num(lat.p99, 1),
                      num(100.0 * report.batchFill(), 1) + "%",
                      uj > 0.0 ? num(uj, 2) : "-"});
    }
    table.print();
    std::printf("\n(one accelerator per platform; clients keep one "
                "request outstanding; requests coalesce up to the "
                "platform batch)\n");

    // ------------------------------------------- scheduler comparison
    ClosedLoopSpec deadlined = load;
    deadlined.deadlineSlackUs = deadlineUs;

    std::printf("\n=== Schedulers: bitfusion x%u, deadline %.0f us, "
                "slo budget %.0f us ===\n\n",
                replicas, deadlineUs, sloUs);
    TextTable sched({"Scheduler", "req/s", "p50 us", "p99 us",
                     "misses", "fill", "batches"});
    for (const char *name : {"fifo", "lookahead", "edf", "slo"}) {
        ServeOptions opts = options;
        opts.replicas = replicas;
        opts.scheduler = name;
        if (opts.scheduler == "slo")
            opts.sloBudgetUs = sloUs;
        if (opts.scheduler == "lookahead")
            opts.maxWaitUs = lookaheadWindowUs;
        ServingEngine engine(
            PlatformRegistry::builtin().parse("bitfusion"), opts);
        const ServeReport report = engine.runClosedLoop(deadlined);
        const Percentiles lat = report.latencyUs();
        sched.addRow({name, num(report.requestsPerSec(), 1),
                      num(lat.p50, 1), num(lat.p99, 1),
                      std::to_string(report.deadlineMisses),
                      num(100.0 * report.batchFill(), 1) + "%",
                      std::to_string(report.batchCount)});
    }
    sched.print();
    std::printf("\n(same load on one %u-replica fleet; lookahead runs "
                "with a %.0f us starvation window; see "
                "docs/serving.md for the policies)\n",
                replicas, lookaheadWindowUs);
    return 0;
}
