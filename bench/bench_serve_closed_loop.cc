/**
 * @file
 * Closed-loop serving benchmark: every paper platform under the same
 * always-outstanding client load, side by side.
 *
 * Each platform serves the same seeded request mix (whole zoo,
 * batch-of-1 requests from N concurrent clients) through the
 * dynamic-batching ServingEngine; the table reports throughput and
 * the latency distribution per platform. Deterministic for a fixed
 * seed: rerunning prints byte-identical numbers.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/table.h"
#include "src/serve/serving_engine.h"

int
main(int argc, char **argv)
{
    using namespace bitfusion;
    using namespace bitfusion::serve;

    ClosedLoopSpec load;
    load.clients = 8;
    load.requests = 256;
    load.samples = 1;
    load.seed = 1;
    ServeOptions options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--requests") {
            load.requests = static_cast<std::size_t>(
                cli::uintArg(argc, argv, i, "--requests"));
        } else if (arg == "--clients") {
            load.clients = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--clients", UINT32_MAX));
        } else if (arg == "--seed") {
            load.seed = cli::uintArg(argc, argv, i, "--seed");
        } else if (arg == "--threads") {
            options.threads = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--threads", UINT32_MAX));
        } else if (arg == "--timing") {
            options.timing = timingArg(argc, argv, i);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--requests N] [--clients C] "
                         "[--seed S] [--threads N] "
                         "[--timing simple|overlap]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("=== Closed-loop serving: %zu requests, %u clients, "
                "seed %llu, timing=%s ===\n\n",
                load.requests, load.clients,
                static_cast<unsigned long long>(load.seed),
                toString(options.timing));

    const char *tokens[] = {"bitfusion", "eyeriss", "stripes",
                            "gpu:titan-xp-int8"};
    TextTable table({"Platform", "req/s", "samples/s", "p50 us",
                     "p99 us", "fill", "uJ/sample"});
    for (const char *token : tokens) {
        ServingEngine engine(PlatformRegistry::builtin().parse(token),
                             options);
        const ServeReport report = engine.runClosedLoop(load);
        const Percentiles lat = report.latencyUs();
        const double uj =
            report.totalSamples != 0
                ? 1e6 * report.energyJ /
                      static_cast<double>(report.totalSamples)
                : 0.0;
        table.addRow({report.platform, TextTable::num(
                          report.requestsPerSec(), 1),
                      TextTable::num(report.samplesPerSec(), 1),
                      TextTable::num(lat.p50, 1),
                      TextTable::num(lat.p99, 1),
                      TextTable::num(100.0 * report.batchFill(), 1) +
                          "%",
                      uj > 0.0 ? TextTable::num(uj, 2) : "-"});
    }
    table.print();
    std::printf("\n(one accelerator per platform; clients keep one "
                "request outstanding; requests coalesce up to the "
                "platform batch)\n");
    return 0;
}
