/**
 * @file
 * Fault-tolerant serving benchmark: goodput, availability, and
 * retry/hedge overhead versus fault intensity on a replicated fleet.
 *
 * The sweep serves the same seeded bursty (MMPP) open-loop trace
 * through a four-replica fleet while a seeded MTBF/MTTR renewal
 * process kills and revives replicas, at several fault intensities
 * from fault-free to a fleet that spends a third of the day down.
 * Retries (bounded attempts, exponential backoff with seeded jitter)
 * and p99-derived hedging are on, so the table shows what the
 * failure machinery costs and recovers: requests lost in flight,
 * retried, recovered, hedges issued and won, wasted compute, and the
 * goodput that survives. Virtual-clock metrics are deterministic for
 * a fixed seed on any machine; wall-clock entries are timing-only.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/json.h"
#include "src/common/table.h"
#include "src/serve/serving_engine.h"

namespace {

using namespace bitfusion;
using namespace bitfusion::serve;
using Clock = std::chrono::steady_clock;

std::string
num(double v, int digits)
{
    return TextTable::num(v, digits);
}

double
wallMs(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** One fault intensity: a label and the renewal-process means. */
struct ChaosLevel
{
    const char *name;
    double mtbfUs;
    double mttrUs;
};

/** The production-day engine configuration under chaos. */
ServeOptions
chaosOptions(const ChaosLevel &level, unsigned threads)
{
    ServeOptions options;
    options.threads = threads;
    options.replicas = 4;
    options.scheduler = "edf";
    options.streamingStats = true;
    options.retainRecords = false;
    options.shedUnmeetable = true;
    options.maxQueueDepth = 512;
    options.faults.seed = 17;
    options.faults.mtbfUs = level.mtbfUs;
    options.faults.mttrUs = level.mttrUs;
    options.retry.maxAttempts = 4;
    options.retry.backoffBaseUs = 500.0;
    options.retry.jitterFrac = 0.25;
    options.retry.retryBudget = 0;
    options.retry.hedgeP99Multiplier = 2.0;
    return options;
}

/** The seeded bursty day: MMPP arrivals with deadlines. */
TraceSpec
chaosTrace(std::size_t requests, double meanGapUs)
{
    TraceSpec spec;
    spec.seed = 29;
    spec.requests = requests;
    spec.meanGapUs = meanGapUs;
    spec.maxSamples = 4;
    spec.deadlineSlackUs = 20000.0;
    spec.process = ArrivalProcess::Mmpp;
    spec.burstRateMultiplier = 4.0;
    spec.meanBurstUs = 20000.0;
    spec.meanCalmUs = 200000.0;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t requests = 20000;
    unsigned threads = 0;
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--requests") {
            requests = static_cast<std::size_t>(
                cli::uintArg(argc, argv, i, "--requests"));
        } else if (arg == "--threads") {
            threads = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--threads", UINT32_MAX));
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--requests N] [--threads N] "
                         "[--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    json::Value entries = json::Value::array();
    const auto entry = [&](const std::string &name,
                           const std::string &metric, double value,
                           const char *unit) {
        entries.push(json::Value::object()
                         .set("section", "serve_chaos")
                         .set("name", name)
                         .set("metric", metric)
                         .set("value", value)
                         .set("unit", unit));
    };

    // Fault-free through a fleet that loses each replica for ~20 ms
    // out of every ~60 (availability ~2/3 per replica). The engine
    // pays for the chaos with retries, hedges, and wasted compute;
    // the benchmark prints what goodput that buys back.
    const ChaosLevel levels[] = {
        {"none", 0.0, 0.0},
        {"rare", 400000.0, 20000.0},
        {"frequent", 120000.0, 20000.0},
        {"storm", 40000.0, 20000.0},
    };

    std::printf("=== Serve chaos sweep: %zu MMPP requests per cell, "
                "4 replicas (edf), retries + p99 hedging ===\n\n",
                requests);
    TextTable table({"Chaos", "served", "shed", "aband", "lost",
                     "retried", "recov", "hedge w/i", "avail",
                     "goodput", "wasted ms", "wall ms"});
    for (const ChaosLevel &level : levels) {
        ServingEngine engine(
            PlatformRegistry::builtin().parse("bitfusion"),
            chaosOptions(level, threads));
        const std::vector<InferenceRequest> trace =
            syntheticTrace(chaosTrace(requests, 3000.0));
        const Clock::time_point start = Clock::now();
        const ServeReport report = engine.run(trace);
        const double ms = wallMs(start);

        double wastedUs = 0.0;
        for (const auto &usage : report.replicas)
            wastedUs += usage.wastedUs;
        table.addRow(
            {level.name, std::to_string(report.requestCount),
             std::to_string(report.shedRequests),
             std::to_string(report.requestsAbandoned),
             std::to_string(report.requestLossEvents),
             std::to_string(report.retriesIssued),
             std::to_string(report.requestsRecovered),
             std::to_string(report.hedgesWon) + "/" +
                 std::to_string(report.hedgesIssued),
             num(report.fleetAvailability(), 4),
             num(report.goodput(), 4), num(wastedUs / 1000.0, 1),
             num(ms, 1)});

        const std::string name = level.name;
        entry(name, "requests",
              static_cast<double>(report.requestCount), "req");
        entry(name, "shed",
              static_cast<double>(report.shedRequests), "req");
        entry(name, "abandoned",
              static_cast<double>(report.requestsAbandoned), "req");
        entry(name, "loss_events",
              static_cast<double>(report.requestLossEvents), "req");
        entry(name, "retries",
              static_cast<double>(report.retriesIssued), "req");
        entry(name, "recovered",
              static_cast<double>(report.requestsRecovered), "req");
        entry(name, "hedges_issued",
              static_cast<double>(report.hedgesIssued), "req");
        entry(name, "hedges_won",
              static_cast<double>(report.hedgesWon), "req");
        entry(name, "availability", report.fleetAvailability(), "");
        entry(name, "goodput", report.goodput(), "");
        entry(name, "wasted_us", wastedUs, "us");
        entry(name, "energy_j", report.energyJ, "J");
        entry(name, "wall_ms", ms, "ms");
    }
    table.print();
    std::printf("\n(MTBF/MTTR per chaos level: rare 400/20 ms, "
                "frequent 120/20 ms, storm 40/20 ms; avail = fleet "
                "up-fraction, goodput = served / issued; wasted = "
                "compute destroyed by outages or losing hedges)\n");

    if (!jsonPath.empty()) {
        json::Value doc = json::Value::object();
        doc.set("schema", "bitfusion-bench-1");
        doc.set("bench", "bench_serve_chaos");
        doc.set("requests", static_cast<std::uint64_t>(requests));
        doc.set("entries", std::move(entries));
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        out << doc.dump(2) << "\n";
    }
    return 0;
}
