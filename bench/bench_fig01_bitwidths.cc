/**
 * @file
 * Reproduces paper Fig. 1 (bitwidth distributions) via the figure registry (src/runner).
 * Equivalent to `bitfusion_sweep --figure fig1`; accepts
 * --threads N, --json PATH.
 */

#include "src/runner/figures.h"

int
main(int argc, char **argv)
{
    return bitfusion::figures::benchMain("fig1", argc, argv);
}
