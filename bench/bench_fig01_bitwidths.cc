/**
 * @file
 * Reproduces paper Fig. 1: (a) the fraction of multiply-add
 * operations at each activation/weight bitwidth pair, (b) the weight
 * bitwidth distribution, and the %multiply-add table, for all eight
 * benchmarks.
 */

#include <cstdio>
#include <map>
#include <set>

#include "src/common/table.h"
#include "src/dnn/model_zoo.h"

int
main()
{
    using namespace bitfusion;

    const auto benches = zoo::all();

    std::printf("=== Fig. 1(a): multiply-add bitwidth distribution "
                "(input/weight) ===\n\n");
    // Collect the union of config strings.
    std::set<std::string> configs;
    for (const auto &b : benches)
        for (const auto &[k, v] : b.quantized.macBitwidthProfile())
            configs.insert(k);

    std::vector<std::string> headers = {"Config"};
    for (const auto &b : benches)
        headers.push_back(b.name);
    TextTable macs(headers);
    for (const auto &c : configs) {
        std::vector<std::string> row = {c};
        for (const auto &b : benches) {
            const auto prof = b.quantized.macBitwidthProfile();
            const auto it = prof.find(c);
            row.push_back(TextTable::num(
                it == prof.end() ? 0.0 : 100.0 * it->second, 1));
        }
        macs.addRow(row);
    }
    macs.print();

    std::printf("\n=== Fig. 1(b): weight bitwidth distribution (%%) "
                "===\n\n");
    std::set<unsigned> wbits;
    for (const auto &b : benches)
        for (const auto &[k, v] : b.quantized.weightBitwidthProfile())
            wbits.insert(k);
    TextTable weights(headers);
    for (unsigned wb : wbits) {
        std::vector<std::string> row = {std::to_string(wb) + "-bit"};
        for (const auto &b : benches) {
            const auto prof = b.quantized.weightBitwidthProfile();
            const auto it = prof.find(wb);
            row.push_back(TextTable::num(
                it == prof.end() ? 0.0 : 100.0 * it->second, 1));
        }
        weights.addRow(row);
    }
    weights.print();

    std::printf("\n=== Fig. 1 table: %% of ops that are multiply-adds "
                "===\n\n");
    TextTable frac({"DNN", "% Multiply-Add", "(paper)"});
    const double paper_frac[] = {99.8, 99.8, 99.9, 99.4,
                                 99.9, 99.9, 99.8, 99.5};
    for (std::size_t i = 0; i < benches.size(); ++i) {
        frac.addRow({benches[i].name,
                     TextTable::num(
                         100.0 * benches[i].quantized.macFraction(), 2),
                     TextTable::num(paper_frac[i], 1)});
    }
    frac.print();
    std::printf("\npaper: on average 97.3%% of multiply-adds need four "
                "or fewer bits; >99%% of all ops are multiply-adds\n");
    return 0;
}
