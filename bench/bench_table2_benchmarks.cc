/**
 * @file
 * Reproduces paper Table II: the eight benchmarks with their
 * multiply-add counts and model-weight footprints, ours vs the
 * paper's numbers.
 *
 * Notes: the paper counts one multiply-add as one operation. Weight
 * footprints are reported at each layer's stored bitwidth; the paper
 * appears to count AlexNet at ~2 bytes/weight of the regular model,
 * so our quantized footprints differ there (see EXPERIMENTS.md).
 */

#include <cstdio>

#include "src/common/table.h"
#include "src/dnn/model_zoo.h"

int
main()
{
    using namespace bitfusion;

    std::printf("=== Table II: evaluated CNN/RNN benchmarks ===\n\n");
    TextTable table({"DNN", "Mops", "(paper)", "Weights MB", "(paper)",
                     "Params M", "Layers"});
    for (const auto &b : zoo::all()) {
        const auto &net = b.quantized;
        table.addRow({
            b.name,
            TextTable::num(static_cast<double>(net.totalMacs()) / 1e6, 0),
            TextTable::num(b.paperMops, 0),
            TextTable::num(static_cast<double>(net.totalWeightBits()) /
                               (8.0 * 1024 * 1024), 2),
            TextTable::num(b.paperWeightMB, 1),
            TextTable::num(static_cast<double>(net.totalWeights()) / 1e6,
                           2),
            std::to_string(net.layers().size()),
        });
    }
    table.print();

    std::printf("\n(regular-width baselines used on Eyeriss/GPU)\n\n");
    TextTable base({"DNN", "Mops", "Params M"});
    for (const auto &b : zoo::all()) {
        base.addRow({
            b.name,
            TextTable::num(
                static_cast<double>(b.baseline.totalMacs()) / 1e6, 0),
            TextTable::num(
                static_cast<double>(b.baseline.totalWeights()) / 1e6, 2),
        });
    }
    base.print();
    return 0;
}
