/**
 * @file
 * Reproduces paper Table II (benchmarks) via the figure registry (src/runner).
 * Equivalent to `bitfusion_sweep --figure table2`; accepts
 * --threads N, --json PATH.
 */

#include "src/runner/figures.h"

int
main(int argc, char **argv)
{
    return bitfusion::figures::benchMain("table2", argc, argv);
}
