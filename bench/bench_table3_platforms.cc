/**
 * @file
 * Reproduces paper Table III: the evaluated ASIC and GPU platform
 * parameters, as instantiated by this library's models.
 */

#include <cstdio>

#include "src/arch/hw_model.h"
#include "src/baselines/eyeriss.h"
#include "src/baselines/gpu.h"
#include "src/baselines/stripes.h"
#include "src/common/table.h"
#include "src/sim/config.h"

int
main()
{
    using namespace bitfusion;

    std::printf("=== Table III: evaluated platforms ===\n\n");

    TextTable asic({"ASIC", "Compute", "Freq MHz", "On-chip", "Tech",
                    "bits/cyc"});
    const auto bf45 = AcceleratorConfig::eyerissMatched45();
    asic.addRow({bf45.name,
                 std::to_string(bf45.fusionUnits()) + " FUs (" +
                     std::to_string(bf45.fusionUnits() *
                                    bf45.bricksPerUnit) +
                     " BitBricks)",
                 TextTable::num(bf45.freqMHz, 0),
                 TextTable::num(static_cast<double>(bf45.onChipBits()) /
                                (8 * 1024), 0) + " KB",
                 "45 nm", std::to_string(bf45.bwBitsPerCycle)});
    const EyerissConfig ey;
    asic.addRow({"eyeriss", std::to_string(ey.totalPEs()) + " PEs (" +
                     std::to_string(ey.peRows) + "x" +
                     std::to_string(ey.peCols) + ", 16-bit)",
                 TextTable::num(ey.freqMHz, 0),
                 TextTable::num(static_cast<double>(ey.sramBits) /
                                (8 * 1024), 1) + " KB",
                 "45 nm", std::to_string(ey.bwBitsPerCycle)});
    const StripesConfig st;
    asic.addRow({"stripes", std::to_string(st.tiles) + " tiles x " +
                     std::to_string(st.sips) + " SIPs",
                 TextTable::num(st.freqMHz, 0),
                 TextTable::num(static_cast<double>(st.sramBits *
                                                    st.tiles) /
                                (8 * 1024), 0) + " KB",
                 "45 nm", std::to_string(st.bwBitsPerCycle)});
    const auto bf16 = AcceleratorConfig::gpuScale16();
    asic.addRow({bf16.name,
                 std::to_string(bf16.fusionUnits()) + " FUs (" +
                     std::to_string(bf16.tiles) + " tiles)",
                 TextTable::num(bf16.freqMHz, 0),
                 TextTable::num(static_cast<double>(bf16.onChipBits()) /
                                (8 * 1024), 0) + " KB",
                 "16 nm", std::to_string(bf16.bwBitsPerCycle)});
    asic.print();

    std::printf("\n");
    TextTable gpu({"GPU", "Peak Gmac/s", "Mem GB/s", "Bytes/elem",
                   "Kernel eff"});
    for (const auto &spec : {GpuSpec::tegraX2Fp32(),
                             GpuSpec::titanXpFp32(),
                             GpuSpec::titanXpInt8()}) {
        gpu.addRow({spec.name,
                    TextTable::num(spec.peakMacsPerSec / 1e9, 0),
                    TextTable::num(spec.memBytesPerSec / 1e9, 0),
                    TextTable::num(spec.bytesPerElem, 0),
                    TextTable::num(spec.efficiency, 2)});
    }
    gpu.print();

    std::printf("\nderived: Fusion Unit %.0f um^2 at 45 nm; %u units "
                "per 1.1 mm^2 compute budget;\n16 nm scaling 0.86x V, "
                "0.42x C -> %.2fx energy, %.2fx area\n",
                HwModel::fusionUnit45().totalAreaUm2(),
                HwModel::fusionUnitsForBudget(1.1),
                HwModel::energyScale(TechNode::Nm16),
                HwModel::areaScale(TechNode::Nm16));
    return 0;
}
