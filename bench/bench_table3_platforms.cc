/**
 * @file
 * Reproduces paper Table III (platforms) via the figure registry (src/runner).
 * Equivalent to `bitfusion_sweep --figure table3`; accepts
 * --threads N, --json PATH.
 */

#include "src/runner/figures.h"

int
main(int argc, char **argv)
{
    return bitfusion::figures::benchMain("table3", argc, argv);
}
