/**
 * @file
 * Reproduces paper Fig. 17 (GPU comparison) via the figure registry (src/runner).
 * Equivalent to `bitfusion_sweep --figure fig17`; accepts
 * --threads N, --json PATH.
 */

#include "src/runner/figures.h"

int
main(int argc, char **argv)
{
    return bitfusion::figures::benchMain("fig17", argc, argv);
}
