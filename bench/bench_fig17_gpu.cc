/**
 * @file
 * Reproduces paper Fig. 17: speedup over the Tegra X2 (FP32) for
 * Titan Xp FP32, Titan Xp INT8, and Bit Fusion scaled to 16 nm
 * (4096 Fusion Units, 896 KB SRAM, 500 MHz).
 *
 * Paper geomeans over TX2: Titan-FP32 12x, Titan-INT8 19x,
 * Bit Fusion 16x -- Bit Fusion nearly matches the 250 W GPU while
 * drawing under a watt.
 */

#include <cstdio>
#include <vector>

#include "src/baselines/gpu.h"
#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

int
main()
{
    using namespace bitfusion;

    Accelerator bf(AcceleratorConfig::gpuScale16());
    const GpuModel tx2(GpuSpec::tegraX2Fp32());
    const GpuModel titan_fp32(GpuSpec::titanXpFp32());
    const GpuModel titan_int8(GpuSpec::titanXpInt8());

    std::printf("=== Fig. 17: speedup over Tegra X2 (FP32), 16 nm ===\n\n");

    TextTable table({"Benchmark", "TitanXp-FP32", "TitanXp-INT8",
                     "BitFusion-16nm"});
    std::vector<double> g_fp32, g_int8, g_bf;
    for (const auto &b : zoo::all()) {
        const double tx2_sec =
            tx2.run(b.baseline).secondsPerSample();
        const double fp32_sec =
            titan_fp32.run(b.baseline).secondsPerSample();
        // INT8 TensorRT runs the quantized graph topology at the
        // regular width (GPUs cannot exploit the 2x-wide low-bit
        // models, so they keep the regular ones; paper §V-A).
        const double int8_sec =
            titan_int8.run(b.baseline).secondsPerSample();
        const double bf_sec = bf.run(b.quantized).secondsPerSample();

        const double s_fp32 = tx2_sec / fp32_sec;
        const double s_int8 = tx2_sec / int8_sec;
        const double s_bf = tx2_sec / bf_sec;
        g_fp32.push_back(s_fp32);
        g_int8.push_back(s_int8);
        g_bf.push_back(s_bf);
        table.addRow({b.name, TextTable::times(s_fp32, 1),
                      TextTable::times(s_int8, 1),
                      TextTable::times(s_bf, 1)});
    }
    table.addRow({"geomean", TextTable::times(geomean(g_fp32), 2),
                  TextTable::times(geomean(g_int8), 2),
                  TextTable::times(geomean(g_bf), 2)});
    table.print();
    std::printf("\npaper geomean: 12x (FP32), 19x (INT8), 16x "
                "(Bit Fusion, 895 mW vs the GPU's 250 W TDP)\n");
    return 0;
}
