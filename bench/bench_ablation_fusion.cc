/**
 * @file
 * Runs the three DESIGN.md ablations via the figure registry
 * (src/runner): fusion style, code optimizations, and the
 * uniform-bitwidth sweep. Equivalent to `bitfusion_sweep --figure
 * ablation-style --figure ablation-codeopt --figure
 * ablation-bitwidth`; accepts --threads N and --json PATH (dumps
 * land in PATH.<id>.json per ablation).
 */

#include "src/runner/figures.h"

int
main(int argc, char **argv)
{
    return bitfusion::figures::benchMain(
        {"ablation-style", "ablation-codeopt", "ablation-bitwidth"},
        argc, argv);
}
