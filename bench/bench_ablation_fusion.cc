/**
 * @file
 * Ablation benches for the design choices DESIGN.md calls out:
 *
 *  1. Spatial vs temporal vs hybrid fusion: effective throughput per
 *     area of a Fusion Unit across operand bitwidths (the §III-C
 *     tradeoff that motivates the hybrid design).
 *  2. Code optimizations (§IV-B): off-chip traffic and performance
 *     with the loop-ordering and layer-fusion optimizations toggled.
 *  3. Bitwidth sensitivity: one network swept across uniform operand
 *     bitwidths, showing the near-quadratic compute scaling that
 *     motivates bit-level fusion.
 */

#include <cstdio>
#include <vector>

#include "src/arch/hw_model.h"
#include "src/arch/temporal_unit.h"
#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

namespace {

using namespace bitfusion;

void
fusionStyleAblation()
{
    std::printf("=== Ablation 1: spatial vs temporal vs hybrid fusion "
                "(throughput per area) ===\n\n");
    const double a_fu = HwModel::fusionUnit45().totalAreaUm2();
    const double a_tmp = HwModel::temporalDesign45().totalAreaUm2();

    TextTable t({"Config", "Hybrid MACs/cyc/unit", "Temporal",
                 "Hybrid MACs/cyc/mm2", "Temporal", "Advantage"});
    const FusionConfig configs[] = {
        {1, 1, false, false}, {2, 2, false, true}, {4, 2, false, true},
        {4, 4, false, true},  {8, 4, false, true}, {8, 8, false, true},
        {16, 8, true, true},  {16, 16, true, true}};
    for (const auto &c : configs) {
        // Hybrid: spatial PEs with temporal passes for 16-bit.
        const double hybrid =
            static_cast<double>(c.fusedPEs(16)) / c.temporalPasses();
        // Temporal: 16 serial units, each one product per
        // lanes(a)*lanes(w) cycles.
        const double temporal =
            16.0 / TemporalUnit::cyclesPerProduct(c);
        const double h_mm2 = hybrid / a_fu * 1e6;
        const double t_mm2 = temporal / a_tmp * 1e6;
        t.addRow({c.toString(), TextTable::num(hybrid, 2),
                  TextTable::num(temporal, 2), TextTable::num(h_mm2, 0),
                  TextTable::num(t_mm2, 0),
                  TextTable::times(h_mm2 / t_mm2, 2)});
    }
    t.print();
    std::printf("\n(same 2-bit multiplier count; the temporal design "
                "pays for per-unit wide shifters/registers, Fig. 10)\n");
}

void
codeOptAblation()
{
    std::printf("\n=== Ablation 2: code optimizations (loop ordering + "
                "layer fusion) ===\n\n");
    TextTable t({"Benchmark", "Optimized us", "NoLoopOrder",
                 "NoLayerFusion", "Neither", "Opt gain"});
    for (const auto &b : zoo::all()) {
        auto run_with = [&](bool loop_order, bool fusion) {
            AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
            cfg.loopOrdering = loop_order;
            cfg.layerFusion = fusion;
            Accelerator acc(cfg);
            return acc.run(b.quantized).secondsPerSample() * 1e6;
        };
        const double opt = run_with(true, true);
        const double no_lo = run_with(false, true);
        const double no_lf = run_with(true, false);
        const double none = run_with(false, false);
        t.addRow({b.name, TextTable::num(opt, 1),
                  TextTable::times(no_lo / opt, 2),
                  TextTable::times(no_lf / opt, 2),
                  TextTable::times(none / opt, 2),
                  TextTable::times(none / opt, 2)});
    }
    t.print();
}

void
bitwidthSweep()
{
    std::printf("\n=== Ablation 3: uniform-bitwidth sweep (VGG-7 "
                "topology) ===\n\n");
    TextTable t({"Config", "us/sample", "Speedup vs 16b",
                 "Energy uJ/sample", "Reduction vs 16b"});
    double base_sec = 0.0, base_e = 0.0;
    const unsigned widths[] = {16, 8, 4, 2, 1};
    for (unsigned w : widths) {
        FusionConfig c;
        c.aBits = w;
        c.wBits = w;
        c.aSigned = false;
        c.wSigned = w > 1;
        auto bench = zoo::vgg7();
        Network net = bench.quantized;
        // Rebuild with one uniform config.
        std::vector<Layer> layers = net.layers();
        for (auto &l : layers)
            l.bits = c;
        Network uniform(net.name(), layers);

        Accelerator acc(AcceleratorConfig::eyerissMatched45());
        const RunStats rs = acc.run(uniform);
        const double sec = rs.secondsPerSample();
        const double e = rs.energyPerSampleJ();
        if (w == 16) {
            base_sec = sec;
            base_e = e;
        }
        t.addRow({c.toString(), TextTable::num(sec * 1e6, 1),
                  TextTable::times(base_sec / sec, 2),
                  TextTable::num(e * 1e6, 1),
                  TextTable::times(base_e / e, 2)});
    }
    t.print();
    std::printf("\n(compute scales ~quadratically with operand width; "
                "traffic scales linearly -- the core Bit Fusion "
                "observation)\n");
}

} // namespace

int
main()
{
    fusionStyleAblation();
    codeOptAblation();
    bitwidthSweep();
    return 0;
}
