/**
 * @file
 * Reproduces paper Fig. 14 (energy breakdown) via the figure registry (src/runner).
 * Equivalent to `bitfusion_sweep --figure fig14`; accepts
 * --threads N, --json PATH.
 */

#include "src/runner/figures.h"

int
main(int argc, char **argv)
{
    return bitfusion::figures::benchMain("fig14", argc, argv);
}
