/**
 * @file
 * Reproduces paper Fig. 14: per-component energy breakdown
 * (compute / on-chip buffers / register file / DRAM) for Bit Fusion
 * and Eyeriss across the eight benchmarks.
 *
 * Paper shape: both platforms spend >80% on memory; Bit Fusion is
 * DRAM-dominated with no register file; Eyeriss burns a large share
 * in its per-PE register files.
 */

#include <cstdio>

#include "src/baselines/eyeriss.h"
#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

namespace {

std::string
pct(double part, double total)
{
    return bitfusion::TextTable::num(100.0 * part / total, 1) + "%";
}

} // namespace

int
main()
{
    using namespace bitfusion;

    Accelerator acc(AcceleratorConfig::eyerissMatched45());
    EyerissModel eyeriss;

    std::printf("=== Fig. 14: energy breakdown, Bit Fusion vs Eyeriss "
                "===\n\n");
    TextTable table({"Benchmark", "Platform", "Compute", "Buffers",
                     "RegFile", "DRAM", "Total uJ/sample"});
    for (const auto &b : zoo::all()) {
        const RunStats bf = acc.run(b.quantized);
        const RunStats ey = eyeriss.run(b.baseline);
        const ComponentEnergy be = bf.energy();
        const ComponentEnergy ee = ey.energy();
        table.addRow({b.name, "BitFusion", pct(be.computeJ, be.totalJ()),
                      pct(be.bufferJ, be.totalJ()),
                      pct(be.rfJ, be.totalJ()),
                      pct(be.dramJ, be.totalJ()),
                      TextTable::num(be.totalJ() / bf.batch * 1e6, 2)});
        table.addRow({b.name, "Eyeriss", pct(ee.computeJ, ee.totalJ()),
                      pct(ee.bufferJ, ee.totalJ()),
                      pct(ee.rfJ, ee.totalJ()),
                      pct(ee.dramJ, ee.totalJ()),
                      TextTable::num(ee.totalJ() / ey.batch * 1e6, 2)});
    }
    table.print();
    std::printf("\npaper shape: Bit Fusion ~67-75%% DRAM, ~13-25%% "
                "buffers, ~7-11%% compute, 0%% RF;\n"
                "Eyeriss ~21-69%% DRAM with a large register-file "
                "share (row-stationary per-PE RFs).\n");
    return 0;
}
