/**
 * @file
 * Performance benchmark harness: the repo's BENCH trajectory.
 *
 * Times the legacy recursive reference walk against every dispatch
 * tier of the compiled ExecPlan path (src/isa/exec_plan.h: switch,
 * threaded, specialized) on interpreter-bound workloads (AlexNet
 * conv layers at 8 bit, a tiled FC with 2-D set-rows DMA, low-bit
 * and 16-bit configs), the end-to-end analytic sweep wall-clock
 * (fig13, cold vs warm artifact cache), and the persistent artifact
 * store (fig13 compile phase resolved cold -- compile and publish --
 * vs warm -- loaded back from disk). Every measurement lands in
 * a machine-readable JSON dump (--json; CI archives it as
 * BENCH_<pr>.json) so later perf PRs are judged against a recorded
 * baseline; docs/performance.md documents the schema.
 *
 * The library's determinism audit bans wall-clock reads from
 * simulation inputs; here std::chrono::steady_clock is the bench's
 * *output* (measured duration), which is inherently run-dependent.
 * Every simulated/interpreted result is still checked bit-identical
 * across the paths before a time is reported: the harness exits
 * nonzero on an InterpStats mismatch, and --min-speedup (used by
 * the CI perf-smoke job) exits nonzero when the plan path fails to
 * clear the requested multiple on the smoke workload.
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/json.h"
#include "src/compiler/codegen.h"
#include "src/core/artifact_cache.h"
#include "src/core/artifact_store.h"
#include "src/dnn/model_zoo.h"
#include "src/isa/exec_plan.h"
#include "src/isa/interpreter.h"
#include "src/isa/memory.h"
#include "src/runner/figures.h"
#include "src/runner/sweep.h"

namespace {

using namespace bitfusion;

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** One interpreter workload: a named network to execute per sample. */
struct Workload
{
    std::string name;
    Network net;
};

/**
 * The classic AlexNet convolution stack at 8x8 bit, spatial dims
 * divided by @p scale -- the paper's canonical interpreter-bound
 * workload and the CI smoke gate.
 */
Workload
alexnetConv8b(unsigned scale)
{
    // The floor is the kernel size (padding keeps every output
    // nonempty), so --scale divides the MAC count by ~scale^2.
    auto dim = [scale](unsigned full, unsigned kernel) {
        return std::max(full / scale, kernel);
    };
    const FusionConfig c8 = zoo::cfg8x8();
    std::vector<Layer> layers = {
        Layer::conv("conv1", 3, dim(227, 11), dim(227, 11), 96, 11, 4,
                    0, c8),
        Layer::conv("conv2", 96, dim(27, 5), dim(27, 5), 256, 5, 1, 2,
                    c8, 2),
        Layer::conv("conv3", 256, dim(13, 3), dim(13, 3), 384, 3, 1, 1,
                    c8),
        Layer::conv("conv4", 384, dim(13, 3), dim(13, 3), 384, 3, 1, 1,
                    c8, 2),
        Layer::conv("conv5", 384, dim(13, 3), dim(13, 3), 256, 3, 1, 1,
                    c8, 2),
    };
    return {"alexnet_conv_8b", Network("alexnet-conv", layers)};
}

Workload
tiledFc8b(unsigned scale)
{
    const unsigned k = std::max(4096u / scale, 256u);
    const unsigned m = std::max(1024u / scale, 128u);
    return {"tiled_fc_8b",
            Network("tiled-fc",
                    {Layer::fc("fc", k, m, zoo::cfg8x8())})};
}

Workload
lowBitFc(unsigned scale)
{
    const unsigned k = std::max(2048u / scale, 256u);
    return {"low_bit_fc_2x2",
            Network("low-bit-fc",
                    {Layer::fc("fc", k, k / 2, zoo::cfg2x2())})};
}

Workload
baselineFc16b(unsigned scale)
{
    const unsigned k = std::max(1024u / scale, 128u);
    return {"baseline_fc_16b",
            Network("baseline-fc",
                    {Layer::fc("fc", k, k / 4, zoo::cfg16x16())})};
}

/**
 * Per-rep wall times of one execution path, reduced to the median
 * (the reported throughput: robust against a noisy neighbor rep) and
 * the min (best case; --reps 1 makes them equal).
 */
struct PathTiming
{
    double medianMs = 0;
    double minMs = 0;
};

PathTiming
reduceTimes(std::vector<double> perRepMs)
{
    PathTiming t;
    if (perRepMs.empty())
        return t;
    std::sort(perRepMs.begin(), perRepMs.end());
    t.minMs = perRepMs.front();
    const std::size_t n = perRepMs.size();
    t.medianMs = (n % 2 == 1)
                     ? perRepMs[n / 2]
                     : 0.5 * (perRepMs[n / 2 - 1] + perRepMs[n / 2]);
    return t;
}

/** Timed result of one interpreter workload, all execution paths. */
struct InterpResult
{
    std::uint64_t macs = 0;
    /** Wall time per path: legacy walk, then one entry per tier. */
    PathTiming legacy;
    PathTiming tier[kDispatchTierCount];
    double planBuildMs = 0;
    /** Stats AND memory bit-identical to legacy on every tier. */
    bool parity = false;
    bool planMemoized = false;
    bool planFused = false;
};

InterpResult
runInterpWorkload(const Workload &w, unsigned reps)
{
    AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    cfg.batch = 1;
    const Compiler compiler(cfg);
    const CompiledNetwork cn = compiler.compile(w.net);

    // Lower every block once (timed: this is the cost run() pays on
    // the first execution of a distinct block).
    InterpResult r;
    const auto buildStart = Clock::now();
    std::vector<std::shared_ptr<const ExecPlan>> plans;
    for (const LayerSchedule &sched : cn.schedules)
        plans.push_back(ExecPlan::build(sched.block));
    r.planBuildMs = msSince(buildStart);

    std::uint64_t extent = 0;
    for (const auto &plan : plans) {
        extent = std::max(extent, plan->memoryExtent());
        r.planMemoized = r.planMemoized || plan->memoized();
        r.planFused = r.planFused || plan->fused();
    }

    // Zero-filled memory: representable under every config, and the
    // interpreters' cost is data-independent.
    MemoryModel seedMem;
    seedMem.allocate(extent);

    MemoryModel legacyMem = seedMem;
    Interpreter legacy(legacyMem);
    std::vector<double> times;
    times.reserve(reps);
    for (unsigned rep = 0; rep < reps; ++rep) {
        const auto start = Clock::now();
        for (const LayerSchedule &sched : cn.schedules)
            legacy.runLegacy(sched.block);
        times.push_back(msSince(start));
    }
    r.legacy = reduceTimes(times);
    r.macs = legacy.stats().macs / reps;

    r.parity = true;
    for (unsigned t = 0; t < kDispatchTierCount; ++t) {
        const DispatchTier tierId = static_cast<DispatchTier>(t);
        MemoryModel tierMem = seedMem;
        Interpreter interp(tierMem);
        times.clear();
        for (unsigned rep = 0; rep < reps; ++rep) {
            const auto start = Clock::now();
            for (const auto &p : plans)
                interp.run(*p, tierId);
            times.push_back(msSince(start));
        }
        r.tier[t] = reduceTimes(times);

        // Full-parity check per tier: every InterpStats counter and
        // every off-chip memory word, against the legacy walk.
        bool same = legacy.stats() == interp.stats() &&
                    legacyMem.size() == tierMem.size();
        for (std::uint64_t a = 0; same && a < legacyMem.size(); ++a)
            same = legacyMem.read(a) == tierMem.read(a);
        if (!same) {
            std::fprintf(stderr,
                         "%s: %s tier diverged from the legacy walk\n",
                         w.name.c_str(), dispatchTierName(tierId));
            r.parity = false;
        }
    }
    return r;
}

/** fig13 sweep wall-clock, cold and warm artifact cache. */
struct SweepTimes
{
    double coldMs = 0;
    double warmMs = 0;
    std::size_t cells = 0;
};

SweepTimes
runSweepBench(unsigned threads)
{
    const figures::Figure *fig13 = figures::find("fig13");
    if (fig13 == nullptr) {
        std::fprintf(stderr, "fig13 is not registered\n");
        std::exit(1);
    }
    const SweepSpec spec = fig13->spec();

    ArtifactCache cache;
    SweepOptions opts;
    opts.threads = threads;
    opts.cache = &cache;
    const SweepRunner runner(opts);

    SweepTimes t;
    t.cells = spec.cellCount();
    const auto cold = Clock::now();
    runner.run(spec);
    t.coldMs = msSince(cold);
    const auto warm = Clock::now();
    runner.run(spec);
    t.warmMs = msSince(warm);
    return t;
}

/**
 * Persistent-store cold-vs-warm resolution of the fig13 compile
 * phase (src/core/artifact_store.h), plus a plan-store leg over the
 * interpreter workloads' blocks. "Cold" compiles into an empty store;
 * "warm" resolves the same keys through a fresh in-process cache and
 * must perform zero compiles and zero plan lowerings.
 */
struct StoreTimes
{
    double coldMs = 0;
    PathTiming warm;
    /** Distinct artifacts the fig13 compile phase resolves. */
    std::size_t artifacts = 0;
    std::size_t coldCompiles = 0;
    std::size_t warmCompiles = 0;
    /** Distinct plans lowered (and published) by the plan leg. */
    std::size_t planBlocks = 0;
    std::size_t warmPlanBuilds = 0;
    /** Warm passes resolved everything from the store, built nothing. */
    bool ok = true;
};

StoreTimes
runStoreBench(const std::vector<Workload> &workloads, unsigned reps)
{
    const figures::Figure *fig13 = figures::find("fig13");
    if (fig13 == nullptr) {
        std::fprintf(stderr, "fig13 is not registered\n");
        std::exit(1);
    }
    const SweepSpec spec = fig13->spec();

    namespace fs = std::filesystem;
    const fs::path root =
        fs::temp_directory_path() /
        ("bitfusion-bench-store." + std::to_string(::getpid()));
    std::error_code ec;
    fs::remove_all(root, ec);
    ArtifactStore store(root.string());

    // fig13 has no batch overrides: one platform instance per spec
    // row, resolved against the network variant the platform runs.
    // This is exactly the sweep's compile phase, isolated so the
    // simulation phase doesn't dilute the cold/warm contrast.
    const PlatformRegistry &registry = PlatformRegistry::builtin();
    std::vector<std::unique_ptr<Platform>> built;
    for (const PlatformSpec &ps : spec.platforms)
        built.push_back(registry.build(ps));
    auto resolveAll = [&](ArtifactCache &cache) {
        std::size_t resolved = 0;
        for (std::size_t p = 0; p < spec.platforms.size(); ++p) {
            if (built[p]->compileKey().empty())
                continue;
            for (const SweepNetwork &net : spec.networks) {
                const Network &variant = spec.platforms[p].runsQuantized
                                             ? net.quantized
                                             : net.baseline;
                if (cache.get(*built[p], variant).artifact != nullptr)
                    ++resolved;
            }
        }
        return resolved;
    };

    StoreTimes t;
    ArtifactCache cold;
    cold.attachStore(&store);
    const auto coldStart = Clock::now();
    t.artifacts = resolveAll(cold);
    t.coldMs = msSince(coldStart);
    t.coldCompiles = cold.compileCount();

    // Each warm rep uses a fresh cache so every resolve goes to the
    // store; the median absorbs a noisy rep the same way the interp
    // timings do.
    std::vector<double> warmTimes;
    warmTimes.reserve(reps);
    for (unsigned rep = 0; rep < reps; ++rep) {
        ArtifactCache warm;
        warm.attachStore(&store);
        const auto warmStart = Clock::now();
        const std::size_t resolved = resolveAll(warm);
        warmTimes.push_back(msSince(warmStart));
        t.warmCompiles += warm.compileCount();
        t.ok = t.ok && resolved == t.artifacts &&
               warm.compileCount() == 0 &&
               warm.storeHitCount() == t.artifacts;
    }
    t.warm = reduceTimes(warmTimes);

    // Plan-store leg: lower every interpreter workload's blocks
    // through a store-backed cache, then re-resolve them through a
    // fresh cache over the same store. The warm pass must perform
    // zero lowerings -- pure deserialization.
    {
        ArtifactCache planCold;
        planCold.attachStore(&store);
        ArtifactCache planWarm;
        planWarm.attachStore(&store);
        AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
        cfg.batch = 1;
        const Compiler compiler(cfg);
        for (const Workload &w : workloads) {
            const CompiledNetwork cn = compiler.compile(w.net);
            for (const LayerSchedule &sched : cn.schedules)
                planCold.plan(sched.block);
            for (const LayerSchedule &sched : cn.schedules)
                planWarm.plan(sched.block);
        }
        t.planBlocks = planCold.planCount();
        t.warmPlanBuilds = planWarm.planCount();
        t.ok = t.ok && t.warmPlanBuilds == 0 &&
               planWarm.planStoreHitCount() == t.planBlocks;
    }

    fs::remove_all(root, ec);
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned scale = 4;
    unsigned reps = 1;
    unsigned threads = 1;
    double minSpeedup = 0;
    double minSpeedup16b = 0;
    double minStoreSpeedup = 0;
    std::string jsonPath;
    bool skipSweep = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scale") {
            scale = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--scale", UINT32_MAX));
            if (scale == 0)
                scale = 1;
        } else if (arg == "--reps") {
            reps = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--reps", UINT32_MAX));
            if (reps == 0)
                reps = 1;
        } else if (arg == "--threads") {
            threads = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--threads", UINT32_MAX));
        } else if (arg == "--quick") {
            scale = 8;
        } else if (arg == "--full") {
            scale = 1;
        } else if (arg == "--min-speedup") {
            minSpeedup = cli::doubleArg(argc, argv, i, "--min-speedup");
        } else if (arg == "--min-speedup-16b") {
            minSpeedup16b =
                cli::doubleArg(argc, argv, i, "--min-speedup-16b");
        } else if (arg == "--min-store-speedup") {
            minStoreSpeedup =
                cli::doubleArg(argc, argv, i, "--min-store-speedup");
        } else if (arg == "--json") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--json needs a path\n");
                return 2;
            }
            jsonPath = argv[++i];
        } else if (arg == "--skip-sweep") {
            skipSweep = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: bench_perf [--scale N] [--quick | --full]\n"
                "                  [--reps N] [--threads N]\n"
                "                  [--min-speedup X]\n"
                "                  [--min-speedup-16b X]\n"
                "                  [--min-store-speedup X]\n"
                "                  [--json PATH] [--skip-sweep]\n"
                "\n"
                "Times the legacy interpreter walk against every\n"
                "ExecPlan dispatch tier (switch, threaded,\n"
                "specialized), the fig13 sweep wall-clock, and the\n"
                "persistent artifact store (fig13 compile phase,\n"
                "cold store vs warm store); --reps N reports the\n"
                "median (and records the min) over N timed\n"
                "repetitions. See docs/performance.md.\n");
            return 0;
        } else {
            std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
            return 2;
        }
    }

    // The bench times every tier explicitly, but a BITFUSION_DISPATCH
    // override still steers the end-to-end sweep below (and any
    // Interpreter::run default path); validate it up front so a typo
    // fails loudly instead of being silently ignored under
    // --skip-sweep.
    (void)defaultDispatchTier();

    const std::vector<Workload> workloads = {
        alexnetConv8b(scale),
        tiledFc8b(scale),
        lowBitFc(scale),
        baselineFc16b(scale),
    };

    json::Value entries = json::Value::array();
    std::printf("interpreter throughput (scale %u, reps %u, "
                "Mmac/s per path, median over reps)\n",
                scale, reps);
    std::printf("%-18s %9s %9s %9s %9s %9s %9s %9s\n", "workload",
                "Mmacs", "legacy", "switch", "threaded", "special",
                "speedup", "build ms");

    // The product tables must be built at most once per distinct
    // memoizable config for the whole process: the workload set has
    // two (8x8 and 2x2; 16x16 exceeds the table), and every further
    // plan lowering must hit the cache.
    const ProductTableCacheStats cacheBefore = productTableCacheStats();

    bool parityOk = true;
    double smokeSpeedup = 0;
    double speedup16b = 0;
    for (const Workload &w : workloads) {
        const InterpResult r = runInterpWorkload(w, reps);
        parityOk = parityOk && r.parity;
        const double mmacs = static_cast<double>(r.macs) / 1e6;
        auto rate = [mmacs](double ms) {
            return ms > 0 ? mmacs / (ms / 1e3) : 0;
        };
        const unsigned spec =
            static_cast<unsigned>(DispatchTier::Specialized);
        const double speedup =
            r.tier[spec].medianMs > 0
                ? r.legacy.medianMs / r.tier[spec].medianMs
                : 0;
        if (w.name == "alexnet_conv_8b")
            smokeSpeedup = speedup;
        if (w.name == "baseline_fc_16b")
            speedup16b = speedup;
        std::printf(
            "%-18s %9.2f %9.1f %9.1f %9.1f %9.1f %8.1fx %9.2f%s\n",
            w.name.c_str(), mmacs, rate(r.legacy.medianMs),
            rate(r.tier[0].medianMs), rate(r.tier[1].medianMs),
            rate(r.tier[spec].medianMs), speedup, r.planBuildMs,
            r.parity ? "" : "  PARITY MISMATCH");

        auto entry = [&](const std::string &metric, double value,
                         const char *unit) {
            entries.push(json::Value::object()
                             .set("section", "interp")
                             .set("name", w.name)
                             .set("metric", metric)
                             .set("value", value)
                             .set("unit", unit));
        };
        entry("macs", static_cast<double>(r.macs), "mac");
        entry("legacy_mmacs_per_s", rate(r.legacy.medianMs), "Mmac/s");
        entry("legacy_mmacs_per_s_min", rate(r.legacy.minMs),
              "Mmac/s");
        for (unsigned t = 0; t < kDispatchTierCount; ++t) {
            const std::string tierName =
                dispatchTierName(static_cast<DispatchTier>(t));
            entry(tierName + "_mmacs_per_s", rate(r.tier[t].medianMs),
                  "Mmac/s");
            entry(tierName + "_mmacs_per_s_min", rate(r.tier[t].minMs),
                  "Mmac/s");
        }
        // plan_* keeps the BENCH trajectory comparable across PRs:
        // the plan path IS the specialized tier (the run() default).
        entry("plan_mmacs_per_s", rate(r.tier[spec].medianMs),
              "Mmac/s");
        entry("speedup", speedup, "x");
        entry("speedup_switch",
              r.tier[0].medianMs > 0
                  ? r.legacy.medianMs / r.tier[0].medianMs
                  : 0,
              "x");
        entry("speedup_threaded",
              r.tier[1].medianMs > 0
                  ? r.legacy.medianMs / r.tier[1].medianMs
                  : 0,
              "x");
        entry("plan_build_ms", r.planBuildMs, "ms");
        entry("stats_parity", r.parity ? 1 : 0, "bool");
        // Marks which MAC regime ran: memoized product table vs the
        // exact >8-bit decomposition fallback (trend tooling must
        // not compare speedups across the two).
        entry("memoized", r.planMemoized ? 1 : 0, "bool");
        // Whether the specialized tier bound a fused reduction nest.
        entry("fused", r.planFused ? 1 : 0, "bool");
    }

    const ProductTableCacheStats cacheAfter = productTableCacheStats();
    const std::uint64_t cacheBuilds =
        cacheAfter.builds - cacheBefore.builds;
    const std::uint64_t cacheHits = cacheAfter.hits - cacheBefore.hits;
    if (cacheBuilds > 2 || cacheHits == 0) {
        std::fprintf(stderr,
                     "FAIL: product-table cache rebuilt (%llu builds, "
                     "%llu hits across the workload set; expected at "
                     "most 2 builds and nonzero hits)\n",
                     static_cast<unsigned long long>(cacheBuilds),
                     static_cast<unsigned long long>(cacheHits));
        return 1;
    }

    if (!skipSweep) {
        const SweepTimes t = runSweepBench(threads);
        std::printf("\nfig13 sweep wall-clock (%zu cells, %u "
                    "thread%s): cold %.1f ms, warm %.1f ms\n",
                    t.cells, threads == 0 ? 0 : threads,
                    threads == 1 ? "" : "s", t.coldMs, t.warmMs);
        auto entry = [&](const char *metric, double value) {
            entries.push(json::Value::object()
                             .set("section", "sweep")
                             .set("name", "fig13")
                             .set("metric", metric)
                             .set("value", value)
                             .set("unit", "ms"));
        };
        entry("wall_ms_cold", t.coldMs);
        entry("wall_ms_warm", t.warmMs);
    }

    const StoreTimes st = runStoreBench(workloads, reps);
    const double storeSpeedup =
        st.warm.medianMs > 0 ? st.coldMs / st.warm.medianMs : 0;
    // The gate compares against the best warm rep: the warm side is
    // sub-millisecond, so a single noisy rep would otherwise flip a
    // pass into a spurious failure.
    const double storeSpeedupBest =
        st.warm.minMs > 0 ? st.coldMs / st.warm.minMs : 0;
    std::printf("\npersistent store, fig13 compile phase (%zu "
                "artifacts): cold %.1f ms, warm %.1f ms (%.1fx), "
                "warm compiles %zu; plan store: %zu blocks, warm "
                "builds %zu%s\n",
                st.artifacts, st.coldMs, st.warm.medianMs,
                storeSpeedup, st.warmCompiles, st.planBlocks,
                st.warmPlanBuilds, st.ok ? "" : "  STORE MISMATCH");
    {
        auto entry = [&](const char *name, const char *metric,
                         double value, const char *unit) {
            entries.push(json::Value::object()
                             .set("section", "store")
                             .set("name", name)
                             .set("metric", metric)
                             .set("value", value)
                             .set("unit", unit));
        };
        entry("fig13", "wall_ms_cold", st.coldMs, "ms");
        entry("fig13", "wall_ms_warm", st.warm.medianMs, "ms");
        entry("fig13", "wall_ms_warm_min", st.warm.minMs, "ms");
        entry("fig13", "speedup", storeSpeedup, "x");
        entry("fig13", "speedup_best", storeSpeedupBest, "x");
        entry("fig13", "artifacts",
              static_cast<double>(st.artifacts), "count");
        entry("fig13", "cold_compiles",
              static_cast<double>(st.coldCompiles), "count");
        entry("fig13", "warm_compiles",
              static_cast<double>(st.warmCompiles), "count");
        entry("interp_blocks", "plan_blocks",
              static_cast<double>(st.planBlocks), "count");
        entry("interp_blocks", "warm_plan_builds",
              static_cast<double>(st.warmPlanBuilds), "count");
        entry("fig13", "store_ok", st.ok ? 1 : 0, "bool");
    }

    if (!jsonPath.empty()) {
        json::Value doc = json::Value::object();
        doc.set("schema", "bitfusion-bench-1");
        doc.set("bench", "bench_perf");
        doc.set("scale", scale);
        doc.set("reps", reps);
        doc.set("entries", std::move(entries));
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        out << doc.dump(2) << "\n";
    }

    if (!parityOk) {
        std::fprintf(stderr,
                     "FAIL: a dispatch tier diverged from the legacy "
                     "walk (stats or memory)\n");
        return 1;
    }
    if (minSpeedup > 0 && smokeSpeedup < minSpeedup) {
        std::fprintf(stderr,
                     "FAIL: alexnet_conv_8b speedup %.2fx below the "
                     "--min-speedup %.2fx gate\n",
                     smokeSpeedup, minSpeedup);
        return 1;
    }
    if (minSpeedup16b > 0 && speedup16b < minSpeedup16b) {
        std::fprintf(stderr,
                     "FAIL: baseline_fc_16b speedup %.2fx below the "
                     "--min-speedup-16b %.2fx gate\n",
                     speedup16b, minSpeedup16b);
        return 1;
    }
    if (!st.ok) {
        std::fprintf(stderr,
                     "FAIL: a warm store pass compiled or lowered "
                     "instead of loading (see STORE MISMATCH above)\n");
        return 1;
    }
    if (minStoreSpeedup > 0 && storeSpeedupBest < minStoreSpeedup) {
        std::fprintf(stderr,
                     "FAIL: warm-store fig13 compile phase %.2fx "
                     "(best warm rep) below the --min-store-speedup "
                     "%.2fx gate\n",
                     storeSpeedupBest, minStoreSpeedup);
        return 1;
    }
    return 0;
}
