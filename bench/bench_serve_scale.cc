/**
 * @file
 * Million-request serving benchmark: p99 latency and energy versus
 * offered load per dispatch scheduler, plus wall-clock per simulated
 * request at streaming scale.
 *
 * The sweep serves the same seeded bursty (MMPP) open-loop trace
 * through every dispatch policy at several offered loads, with
 * streaming statistics on, per-request record retention off, and
 * admission control shedding both over-depth and unmeetable-deadline
 * arrivals -- the configuration a production-scale day runs at. The
 * scale run then serves --scale-requests (default 1e6) requests
 * once and reports the engine's wall-clock cost per simulated
 * request. Virtual-clock metrics (served/shed counts, p99, energy)
 * are deterministic for a fixed seed on any machine, so tools/
 * bench_diff.py pins them across the BENCH trajectory
 * (BENCH_8.json); wall-clock entries are timing-only.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/cli.h"
#include "src/common/json.h"
#include "src/common/table.h"
#include "src/serve/scheduler.h"
#include "src/serve/serving_engine.h"

namespace {

using namespace bitfusion;
using namespace bitfusion::serve;
using Clock = std::chrono::steady_clock;

std::string
num(double v, int digits)
{
    return TextTable::num(v, digits);
}

double
wallMs(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** The production-day engine configuration for one policy. */
ServeOptions
scaleOptions(const std::string &scheduler, unsigned threads)
{
    ServeOptions options;
    options.threads = threads;
    options.scheduler = scheduler;
    options.streamingStats = true;
    options.retainRecords = false;
    options.shedUnmeetable = true;
    options.maxQueueDepth = 256;
    if (scheduler == "fifo" || scheduler == "lookahead")
        options.maxWaitUs = 400.0;
    if (scheduler == "slo")
        options.sloBudgetUs = 30000.0;
    return options;
}

/** The seeded bursty day: MMPP arrivals with a flash crowd. */
TraceSpec
scaleTrace(std::size_t requests, double meanGapUs)
{
    TraceSpec spec;
    spec.seed = 29;
    spec.requests = requests;
    spec.meanGapUs = meanGapUs;
    spec.maxSamples = 4;
    spec.deadlineSlackUs = 20000.0;
    spec.process = ArrivalProcess::Mmpp;
    spec.burstRateMultiplier = 4.0;
    spec.meanBurstUs = 20000.0;
    spec.meanCalmUs = 200000.0;
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t requests = 20000;
    std::size_t scaleRequests = 1000000;
    unsigned threads = 0;
    std::string jsonPath;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--requests") {
            requests = static_cast<std::size_t>(
                cli::uintArg(argc, argv, i, "--requests"));
        } else if (arg == "--scale-requests") {
            scaleRequests = static_cast<std::size_t>(
                cli::uintArg(argc, argv, i, "--scale-requests"));
        } else if (arg == "--threads") {
            threads = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--threads", UINT32_MAX));
        } else if (arg == "--json" && i + 1 < argc) {
            jsonPath = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--requests N] "
                         "[--scale-requests N] [--threads N] "
                         "[--json PATH]\n",
                         argv[0]);
            return 2;
        }
    }

    json::Value entries = json::Value::array();
    const auto entry = [&](const char *section,
                           const std::string &name,
                           const std::string &metric, double value,
                           const char *unit) {
        entries.push(json::Value::object()
                         .set("section", section)
                         .set("name", name)
                         .set("metric", metric)
                         .set("value", value)
                         .set("unit", unit));
    };

    // -------------------- p99 / energy vs offered load per policy
    std::printf("=== Serve scale sweep: %zu MMPP requests per cell, "
                "streaming stats, admission control ===\n\n",
                requests);
    TextTable table({"Scheduler", "gap us", "served", "shed",
                     "misses", "p99 us", "energy J", "wall ms"});
    // Spans light load, near-saturation, and deep overload for one
    // bitfusion replica (capacity is roughly a 3000 us mean gap at
    // this request mix).
    const double gaps[] = {8000.0, 3000.0, 1000.0};
    for (const char *scheduler :
         {"fifo", "lookahead", "edf", "slo"}) {
        for (double gapUs : gaps) {
            ServingEngine engine(
                PlatformRegistry::builtin().parse("bitfusion"),
                scaleOptions(scheduler, threads));
            const std::vector<InferenceRequest> trace =
                syntheticTrace(scaleTrace(requests, gapUs));
            const Clock::time_point start = Clock::now();
            const ServeReport report = engine.run(trace);
            const double ms = wallMs(start);
            const double p99 = report.latencyUs().p99;
            table.addRow({scheduler, num(gapUs, 0),
                          std::to_string(report.requestCount),
                          std::to_string(report.shedRequests),
                          std::to_string(report.deadlineMisses),
                          num(p99, 1), num(report.energyJ, 3),
                          num(ms, 1)});

            const std::string name =
                std::string(scheduler) + "@gap" +
                num(gapUs, 0);
            entry("serve", name, "requests",
                  static_cast<double>(report.requestCount), "req");
            entry("serve", name, "samples",
                  static_cast<double>(report.totalSamples),
                  "sample");
            entry("serve", name, "batches",
                  static_cast<double>(report.batchCount), "batch");
            entry("serve", name, "shed",
                  static_cast<double>(report.shedRequests), "req");
            entry("serve", name, "misses",
                  static_cast<double>(report.deadlineMisses), "req");
            entry("serve", name, "p99_us", p99, "us");
            entry("serve", name, "energy_j", report.energyJ, "J");
            entry("serve", name, "wall_ms", ms, "ms");
            entry("serve", name, "wall_ns_per_req",
                  1e6 * ms / static_cast<double>(requests), "ns");
        }
    }
    table.print();
    std::printf("\n(one bitfusion replica; MMPP burst x4; deadline "
                "20000 us; shed = admission control, misses = "
                "dispatched late)\n");

    // ----------------------- wall-clock per simulated request at 1e6
    if (scaleRequests > 0) {
        ServingEngine engine(
            PlatformRegistry::builtin().parse("bitfusion"),
            scaleOptions("fifo", threads));
        const std::vector<InferenceRequest> trace =
            syntheticTrace(scaleTrace(scaleRequests, 3000.0));
        const Clock::time_point start = Clock::now();
        const ServeReport report = engine.run(trace);
        const double ms = wallMs(start);
        const double nsPerReq =
            1e6 * ms / static_cast<double>(scaleRequests);
        std::printf("\nscale run: %zu requests (fifo) in %.1f ms "
                    "wall -- %.0f ns per simulated request, %zu "
                    "served, %zu shed\n",
                    scaleRequests, ms, nsPerReq, report.requestCount,
                    report.shedRequests);
        const std::string name = "mmpp_fifo_scale";
        entry("serve_scale", name, "requests",
              static_cast<double>(report.requestCount), "req");
        entry("serve_scale", name, "shed",
              static_cast<double>(report.shedRequests), "req");
        entry("serve_scale", name, "misses",
              static_cast<double>(report.deadlineMisses), "req");
        entry("serve_scale", name, "p99_us", report.latencyUs().p99,
              "us");
        entry("serve_scale", name, "energy_j", report.energyJ, "J");
        entry("serve_scale", name, "wall_ms", ms, "ms");
        entry("serve_scale", name, "wall_ns_per_req", nsPerReq, "ns");
    }

    if (!jsonPath.empty()) {
        json::Value doc = json::Value::object();
        doc.set("schema", "bitfusion-bench-1");
        doc.set("bench", "bench_serve_scale");
        doc.set("requests", static_cast<std::uint64_t>(requests));
        doc.set("scale_requests",
                static_cast<std::uint64_t>(scaleRequests));
        doc.set("entries", std::move(entries));
        std::ofstream out(jsonPath);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         jsonPath.c_str());
            return 1;
        }
        out << doc.dump(2) << "\n";
    }
    return 0;
}
