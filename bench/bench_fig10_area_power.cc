/**
 * @file
 * Reproduces paper Fig. 10 (Fusion Unit area/power) via the figure registry (src/runner).
 * Equivalent to `bitfusion_sweep --figure fig10`; accepts
 * --threads N, --json PATH.
 */

#include "src/runner/figures.h"

int
main(int argc, char **argv)
{
    return bitfusion::figures::benchMain("fig10", argc, argv);
}
