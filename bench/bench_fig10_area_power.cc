/**
 * @file
 * Reproduces paper Fig. 10: area and power of a 16-BitBrick Fusion
 * Unit (hybrid spatio-temporal fusion) versus the temporal design,
 * split into BitBricks / shift-add / register, with the reduction
 * factors. Also reports the derived Fusion-Unit count for the
 * 1.1 mm^2 Eyeriss-matched compute budget.
 */

#include <cstdio>

#include "src/arch/hw_model.h"
#include "src/arch/spatial_fusion.h"
#include "src/common/table.h"

int
main()
{
    using namespace bitfusion;

    const UnitCost fu = HwModel::fusionUnit45();
    const UnitCost tmp = HwModel::temporalDesign45();

    std::printf("=== Fig. 10: Fusion Unit vs temporal design "
                "(45 nm, 16 BitBricks) ===\n\n");

    TextTable area({"Area (um^2)", "BitBricks", "Shift-Add", "Register",
                    "Total"});
    area.addRow({"Temporal", TextTable::num(tmp.bitBricksAreaUm2, 0),
                 TextTable::num(tmp.shiftAddAreaUm2, 0),
                 TextTable::num(tmp.registerAreaUm2, 0),
                 TextTable::num(tmp.totalAreaUm2(), 0)});
    area.addRow({"Fusion Unit", TextTable::num(fu.bitBricksAreaUm2, 0),
                 TextTable::num(fu.shiftAddAreaUm2, 0),
                 TextTable::num(fu.registerAreaUm2, 0),
                 TextTable::num(fu.totalAreaUm2(), 0)});
    area.addRow({"Reduction",
                 TextTable::times(tmp.bitBricksAreaUm2 /
                                  fu.bitBricksAreaUm2, 1),
                 TextTable::times(tmp.shiftAddAreaUm2 /
                                  fu.shiftAddAreaUm2, 1),
                 TextTable::times(tmp.registerAreaUm2 /
                                  fu.registerAreaUm2, 1),
                 TextTable::times(tmp.totalAreaUm2() / fu.totalAreaUm2(),
                                  1)});
    area.print();

    std::printf("\n");
    TextTable power({"Power (nW)", "BitBricks", "Shift-Add", "Register",
                     "Total"});
    power.addRow({"Temporal", TextTable::num(tmp.bitBricksPowerNw, 0),
                  TextTable::num(tmp.shiftAddPowerNw, 0),
                  TextTable::num(tmp.registerPowerNw, 0),
                  TextTable::num(tmp.totalPowerNw(), 0)});
    power.addRow({"Fusion Unit", TextTable::num(fu.bitBricksPowerNw, 0),
                  TextTable::num(fu.shiftAddPowerNw, 0),
                  TextTable::num(fu.registerPowerNw, 0),
                  TextTable::num(fu.totalPowerNw(), 0)});
    power.addRow({"Reduction",
                  TextTable::times(tmp.bitBricksPowerNw /
                                   fu.bitBricksPowerNw, 1),
                  TextTable::times(tmp.shiftAddPowerNw /
                                   fu.shiftAddPowerNw, 1),
                  TextTable::times(tmp.registerPowerNw /
                                   fu.registerPowerNw, 1),
                  TextTable::times(tmp.totalPowerNw() / fu.totalPowerNw(),
                                   1)});
    power.print();

    const SpatialFusionTree tree(16);
    std::printf("\nshift-add tree over 16 BitBricks: %u levels, "
                "%u four-input adders, %u shift units\n",
                tree.levels(), tree.adderCount(), tree.shifterCount());
    std::printf("Fusion Units in the 1.1 mm^2 compute budget: %u\n",
                HwModel::fusionUnitsForBudget(1.1));
    std::printf("paper reference: 3.5x area and 3.2x power reduction; "
                "512 Fusion Units per 1.1 mm^2 tile\n");
    return 0;
}
