/**
 * @file
 * Reproduces paper Fig. 15: Bit Fusion performance as the off-chip
 * bandwidth sweeps 32..512 bits/cycle, normalized to the default 128
 * bits/cycle.
 *
 * Paper shape (geomean): 0.25x, 0.51x, 1.00x, 1.91x, 2.86x -- the
 * recurrent networks scale almost linearly (bandwidth-bound), the
 * CNNs saturate (compute-bound with data reuse).
 */

#include <cstdio>
#include <vector>

#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

int
main()
{
    using namespace bitfusion;

    const std::vector<std::uint64_t> widths = {32, 64, 128, 256, 512};
    const auto benches = zoo::all();

    std::printf("=== Fig. 15: speedup vs off-chip bandwidth (baseline "
                "128 bits/cycle) ===\n\n");

    // Baseline latencies at 128 bits/cycle.
    std::vector<double> base;
    {
        Accelerator acc(AcceleratorConfig::eyerissMatched45());
        for (const auto &b : benches)
            base.push_back(acc.run(b.quantized).secondsPerSample());
    }

    std::vector<std::string> headers = {"Benchmark"};
    for (auto w : widths)
        headers.push_back(std::to_string(w) + "b/cyc");
    TextTable table(headers);

    std::vector<std::vector<double>> cols(widths.size());
    for (std::size_t bi = 0; bi < benches.size(); ++bi) {
        std::vector<std::string> row = {benches[bi].name};
        for (std::size_t wi = 0; wi < widths.size(); ++wi) {
            AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
            cfg.bwBitsPerCycle = widths[wi];
            Accelerator acc(cfg);
            const double sec =
                acc.run(benches[bi].quantized).secondsPerSample();
            const double speedup = base[bi] / sec;
            cols[wi].push_back(speedup);
            row.push_back(TextTable::times(speedup, 2));
        }
        table.addRow(row);
    }
    std::vector<std::string> geo = {"geomean"};
    for (auto &c : cols)
        geo.push_back(TextTable::times(geomean(c), 2));
    table.addRow(geo);
    table.print();
    std::printf("\npaper geomean: 0.25x  0.51x  1.00x  1.91x  2.86x\n");
    return 0;
}
