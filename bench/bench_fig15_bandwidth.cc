/**
 * @file
 * Reproduces paper Fig. 15 (bandwidth sweep) via the figure registry (src/runner).
 * Equivalent to `bitfusion_sweep --figure fig15`; accepts
 * --threads N, --json PATH.
 */

#include "src/runner/figures.h"

int
main(int argc, char **argv)
{
    return bitfusion::figures::benchMain("fig15", argc, argv);
}
