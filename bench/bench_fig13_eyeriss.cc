/**
 * @file
 * Reproduces paper Fig. 13 (improvement over Eyeriss) via the figure registry (src/runner).
 * Equivalent to `bitfusion_sweep --figure fig13`; accepts
 * --threads N, --json PATH, --per-layer.
 */

#include "src/runner/figures.h"

int
main(int argc, char **argv)
{
    return bitfusion::figures::benchMain("fig13", argc, argv);
}
