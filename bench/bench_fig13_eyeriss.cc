/**
 * @file
 * Reproduces paper Fig. 13: Bit Fusion speedup and energy reduction
 * over Eyeriss across the eight benchmarks (area-matched 1.1 mm^2,
 * 45 nm, 500 MHz, batch 16), plus the per-layer AlexNet breakdown
 * quoted in §V-B1 (pass --per-layer).
 *
 * Paper reference (geomean): 3.9x speedup, 5.1x energy reduction.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/baselines/eyeriss.h"
#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

namespace {

struct PaperRow
{
    double perf;
    double energy;
};

// Fig. 13 per-benchmark values from the paper's data table.
const PaperRow paperFig13[] = {
    {1.9, 1.5},  // AlexNet
    {13.0, 14.0}, // Cifar-10
    {2.4, 4.8},  // LSTM
    {2.7, 4.3},  // LeNet-5
    {1.9, 1.9},  // ResNet-18
    {2.7, 5.1},  // RNN
    {8.6, 10.0}, // SVHN
    {7.7, 9.9},  // VGG-7
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace bitfusion;
    const bool per_layer =
        argc > 1 && std::strcmp(argv[1], "--per-layer") == 0;

    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    Accelerator acc(cfg);
    EyerissModel eyeriss;

    std::printf("=== Fig. 13: Bit Fusion improvement over Eyeriss "
                "(45 nm, area-matched, batch %u) ===\n\n", cfg.batch);

    TextTable table({"Benchmark", "Speedup", "(paper)", "EnergyRed",
                     "(paper)"});
    std::vector<double> speedups, energy_reds;
    const auto benches = zoo::all();
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const auto &b = benches[i];
        const RunStats bf = acc.run(b.quantized);
        const RunStats ey = eyeriss.run(b.baseline);

        const double speedup =
            ey.secondsPerSample() / bf.secondsPerSample();
        const double energy_red =
            ey.energyPerSampleJ() / bf.energyPerSampleJ();
        speedups.push_back(speedup);
        energy_reds.push_back(energy_red);
        table.addRow({b.name, TextTable::times(speedup, 1),
                      TextTable::times(paperFig13[i].perf, 1),
                      TextTable::times(energy_red, 1),
                      TextTable::times(paperFig13[i].energy, 1)});
    }
    table.addRow({"geomean", TextTable::times(geomean(speedups), 2),
                  "3.90x", TextTable::times(geomean(energy_reds), 2),
                  "5.10x"});
    table.print();

    if (per_layer) {
        std::printf("\n=== AlexNet per-layer improvement over Eyeriss "
                    "(paper §V-B1 table) ===\n\n");
        const auto b = zoo::alexnet();
        const RunStats bf = acc.run(b.quantized);
        const RunStats ey = eyeriss.run(b.baseline);
        TextTable pl({"Layer", "Config", "Speedup", "EnergyRed"});
        for (std::size_t i = 0;
             i < bf.layers.size() && i < ey.layers.size(); ++i) {
            const auto &lb = bf.layers[i];
            const auto &le = ey.layers[i];
            const double sp = static_cast<double>(le.cycles) /
                              static_cast<double>(lb.cycles);
            const double er =
                le.energy.totalJ() / lb.energy.totalJ();
            pl.addRow({lb.name, lb.config, TextTable::times(sp, 2),
                       TextTable::times(er, 2)});
        }
        pl.print();
        std::printf("\npaper: conv 8/8 1.67x/6.5x, conv 4/1 6.4x/16.8x, "
                    "fc 4/1 3.3x/30.7x, fc 8/8 1.0x/10.3x\n");
    }
    return 0;
}
