/**
 * @file
 * Fusion-ISA inspection: compile a layer, disassemble its block,
 * show the binary encoding, then execute it functionally on real
 * data through the interpreter and verify against the reference --
 * the full hardware-software contract in one program.
 */

#include <cstdio>

#include "src/compiler/codegen.h"
#include "src/dnn/model_zoo.h"
#include "src/dnn/reference.h"
#include "src/isa/interpreter.h"

int
main()
{
    using namespace bitfusion;

    const Compiler compiler(AcceleratorConfig::eyerissMatched45());

    // A small ternary conv layer with a fused ReLU/requantize.
    const Layer conv =
        Layer::conv("demo_conv", 4, 8, 8, 8, 3, 1, 1, zoo::cfg2x2());
    ActFusion act;
    act.enabled = true;
    act.shift = 2;
    act.outBits = 2;

    // Wire the block to a concrete memory image.
    Prng prng(2024);
    Tensor input(conv.inC, conv.inH, conv.inW);
    input.fillRandom(prng, 2, false);
    Tensor weights(conv.weightCount());
    weights.fillRandom(prng, 2, true);

    MemoryModel mem;
    BlockBases bases;
    const unsigned hp = conv.inH + 2, wp = conv.inW + 2;
    bases.input = mem.allocate(conv.inC * hp * wp);
    for (unsigned c = 0; c < conv.inC; ++c)
        for (unsigned y = 0; y < conv.inH; ++y)
            for (unsigned x = 0; x < conv.inW; ++x)
                mem.write(bases.input + (c * hp + y + 1) * wp + x + 1,
                          input.at(c, y, x));
    bases.weights = mem.allocate(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i)
        mem.write(bases.weights + i, weights[i]);
    bases.output = mem.allocate(conv.outputCount());

    const InstructionBlock block = compiler.emitConv(conv, bases, 4, act);

    std::printf("=== disassembly ===\n%s\n",
                block.disassemble().c_str());

    const auto words = block.encodeWords();
    std::printf("=== binary encoding: %zu instructions, %zu words "
                "(%zu bytes) ===\n",
                block.instructions.size(), words.size(),
                words.size() * 4);
    for (std::size_t i = 0; i < words.size() && i < 12; ++i)
        std::printf("  %08x\n", words[i]);
    std::printf("  ...\n\n");

    Interpreter interp(mem);
    interp.run(block);

    Tensor expect = Reference::conv(conv, input, weights);
    expect = Reference::relu(expect);
    expect = Reference::requantize(expect, act.outBits, act.shift);

    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < expect.size(); ++i)
        if (mem.read(bases.output + i) != expect[i])
            ++mismatches;

    const auto &st = interp.stats();
    std::printf("=== execution (functional interpreter) ===\n");
    std::printf("macs            : %llu\n",
                static_cast<unsigned long long>(st.macs));
    std::printf("bitbrick ops    : %llu (1 per MAC at 2b/2b)\n",
                static_cast<unsigned long long>(st.bitBrickOps));
    std::printf("dram loads      : I=%llu W=%llu O=%llu elements\n",
                static_cast<unsigned long long>(st.dramLoadElems[0]),
                static_cast<unsigned long long>(st.dramLoadElems[2]),
                static_cast<unsigned long long>(st.dramLoadElems[1]));
    std::printf("outputs checked : %zu, mismatches vs reference: %zu\n",
                expect.size(), mismatches);
    return mismatches == 0 ? 0 : 1;
}
