/**
 * @file
 * Minimal sweep-engine example: build a custom grid (two Bit Fusion
 * configurations x two benchmarks x three batch sizes), run it on
 * the thread pool, and consume the deterministic result table.
 */

#include <cstdio>

#include "src/dnn/model_zoo.h"
#include "src/runner/sweep.h"
#include "src/sim/bitfusion_platform.h"

int
main()
{
    using namespace bitfusion;

    // A bandwidth ablation of the Eyeriss-matched configuration.
    AcceleratorConfig fast = AcceleratorConfig::eyerissMatched45();
    fast.bwBitsPerCycle = 512;

    SweepSpec spec;
    spec.name = "example";
    spec.platforms = {
        bitfusionPlatform(AcceleratorConfig::eyerissMatched45(), "base"),
        bitfusionPlatform(fast, "bw512"),
    };
    spec.networks = {
        SweepNetwork::fromBenchmark(zoo::lenet5()),
        SweepNetwork::fromBenchmark(zoo::lstm()),
    };
    spec.batches = {1, 16, 64};

    const SweepResult result = SweepRunner().run(spec);
    std::printf("%zu cells, %zu compiles, %zu cache hits\n\n",
                result.cells().size(), result.compileCount(),
                result.cacheHits());

    // The bandwidth-bound LSTM speeds up with DRAM bandwidth; the
    // reuse-heavy CNN barely moves (the Fig. 15 effect).
    for (const auto &cell : result.cells()) {
        std::printf("%-6s %-8s batch %-3u -> %8.1f us/sample\n",
                    cell.platform.c_str(), cell.network.c_str(),
                    cell.batch,
                    cell.stats.secondsPerSample() * 1e6);
    }

    const double base =
        result.stats("base", "LSTM", 16).secondsPerSample();
    const double fastSec =
        result.stats("bw512", "LSTM", 16).secondsPerSample();
    std::printf("\nLSTM @ batch 16: 4x bandwidth -> %.2fx faster\n",
                base / fastSec);
    return 0;
}
