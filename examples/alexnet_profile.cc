/**
 * @file
 * AlexNet end-to-end profile: compile the 2x-wide quantized AlexNet,
 * run it against Eyeriss, and print a per-layer comparison -- the
 * workload the paper's §V-B1 analysis walks through.
 *
 * Usage: example_alexnet_profile [batch]
 */

#include <cstdio>
#include <cstdlib>

#include "src/baselines/eyeriss.h"
#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

int
main(int argc, char **argv)
{
    using namespace bitfusion;

    AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    if (argc > 1)
        cfg.batch = static_cast<unsigned>(std::atoi(argv[1]));

    Accelerator acc(cfg);
    EyerissConfig ecfg;
    ecfg.batch = cfg.batch;
    EyerissModel eyeriss(ecfg);

    const auto bench = zoo::alexnet();
    const RunStats bf = acc.run(bench.quantized);
    const RunStats ey = eyeriss.run(bench.baseline);

    std::printf("AlexNet, batch %u: Bit Fusion %.2f ms/sample vs "
                "Eyeriss %.2f ms/sample (%.2fx)\n\n",
                cfg.batch, bf.secondsPerSample() * 1e3,
                ey.secondsPerSample() * 1e3,
                ey.secondsPerSample() / bf.secondsPerSample());

    TextTable t({"Layer", "Config", "MACs/batch", "BF cycles",
                 "BF util", "BF DRAM Mb", "Eyeriss cycles", "Speedup"});
    std::size_t ei = 0;
    for (const auto &l : bf.layers) {
        const LayerStats &e = ey.layers[ei++];
        t.addRow({l.name, l.config,
                  TextTable::num(static_cast<double>(l.macs) / 1e6, 0) +
                      "M",
                  std::to_string(l.cycles),
                  TextTable::num(100.0 * l.utilization, 1) + "%",
                  TextTable::num(
                      static_cast<double>(l.dramLoadBits +
                                          l.dramStoreBits) / 1e6, 1),
                  std::to_string(e.cycles),
                  TextTable::times(static_cast<double>(e.cycles) /
                                   static_cast<double>(l.cycles), 2)});
    }
    t.print();

    std::printf("\nnote: Bit Fusion runs the 2x-wide WRPN model "
                "(~4x the MACs) at 4b/1b; Eyeriss runs the regular\n"
                "model at 16-bit. The per-layer speedups match the "
                "paper's §V-B1 table shape.\n");
    return 0;
}
