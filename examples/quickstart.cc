/**
 * @file
 * Quickstart: configure a Bit Fusion accelerator, run a benchmark
 * network, and print the performance/energy report.
 */

#include <cstdio>

#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

int
main()
{
    using namespace bitfusion;

    // The paper's Eyeriss-matched configuration: 512 Fusion Units
    // (16x32) in 1.1 mm^2 at 45 nm, 112 KB SRAM, 500 MHz, batch 16.
    const AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
    Accelerator acc(cfg);

    const auto bench = zoo::lenet5();
    const CompiledNetwork compiled = acc.compile(bench.quantized);
    const RunStats stats = acc.run(compiled);

    std::printf("network          : %s\n", stats.network.c_str());
    std::printf("batch            : %u\n", stats.batch);
    std::printf("total MACs/batch : %llu\n",
                static_cast<unsigned long long>(stats.totalMacs()));
    std::printf("cycles/batch     : %llu\n",
                static_cast<unsigned long long>(stats.totalCycles));
    std::printf("latency/sample   : %.3f us\n",
                stats.secondsPerSample() * 1e6);
    const ComponentEnergy e = stats.energy();
    std::printf("energy/sample    : %.3f uJ (compute %.1f%%, buffers "
                "%.1f%%, DRAM %.1f%%)\n",
                e.totalJ() / stats.batch * 1e6,
                100.0 * e.computeJ / e.totalJ(),
                100.0 * e.bufferJ / e.totalJ(),
                100.0 * e.dramJ / e.totalJ());

    std::printf("\nper-layer:\n");
    for (const auto &l : stats.layers) {
        std::printf("  %-12s %-7s cycles=%-10llu util=%4.1f%%\n",
                    l.name.c_str(), l.config.c_str(),
                    static_cast<unsigned long long>(l.cycles),
                    100.0 * l.utilization);
    }
    return 0;
}
