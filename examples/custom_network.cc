/**
 * @file
 * Building and evaluating a custom quantized network on Bit Fusion:
 * a small keyword-spotting-style CNN+GRU-ish stack with per-layer
 * bitwidths, swept across candidate quantization policies to show
 * how bit-level fusion turns lower bitwidths into speedups.
 */

#include <cstdio>
#include <vector>

#include "src/common/table.h"
#include "src/core/accelerator.h"
#include "src/dnn/model_zoo.h"

namespace {

using namespace bitfusion;

/** A small audio-style network at the given uniform body config. */
Network
makeKwsNet(const FusionConfig &body)
{
    // 40x101 "MFCC spectrogram" input, 1 channel.
    Network net("kws-cnn-rnn", {});
    net.add(Layer::conv("conv1", 1, 40, 101, 64, 3, 1, 1, zoo::cfg8x8()));
    net.add(Layer::activation("act1", 64, 40, 101));
    net.add(Layer::pool("pool1", 64, 40, 101, 2, 2));
    net.add(Layer::conv("conv2", 64, 20, 50, 128, 3, 1, 1, body));
    net.add(Layer::activation("act2", 128, 20, 50));
    net.add(Layer::pool("pool2", 128, 20, 50, 2, 2));
    net.add(Layer::conv("conv3", 128, 10, 25, 128, 3, 1, 1, body));
    net.add(Layer::activation("act3", 128, 10, 25));
    net.add(Layer::rnn("rnn", 128 * 10 * 25 / 25, 512, body));
    net.add(Layer::fc("fc", 512, 12, zoo::cfg8x8()));
    return net;
}

} // namespace

int
main()
{
    using namespace bitfusion;

    Accelerator acc(AcceleratorConfig::eyerissMatched45());

    std::printf("Quantization-policy sweep on a custom keyword-"
                "spotting network\n(batch %u, Eyeriss-matched 45 nm "
                "configuration)\n\n",
                acc.config().batch);

    struct Policy
    {
        const char *name;
        FusionConfig body;
    };
    const Policy policies[] = {
        {"16-bit body", zoo::cfg16x16()},
        {"8-bit body", zoo::cfg8x8()},
        {"4-bit body", zoo::cfg4x4()},
        {"4b act/2b wgt", {4, 2, false, true}},
        {"ternary body", zoo::cfg2x2()},
    };

    TextTable t({"Policy", "us/sample", "Speedup", "uJ/sample",
                 "EnergyRed", "Peak MACs/cyc"});
    double base_sec = 0.0, base_e = 0.0;
    for (const auto &p : policies) {
        const Network net = makeKwsNet(p.body);
        const RunStats rs = acc.run(net);
        const double sec = rs.secondsPerSample();
        const double e = rs.energyPerSampleJ();
        if (base_sec == 0.0) {
            base_sec = sec;
            base_e = e;
        }
        const SystolicArray arr(acc.config());
        t.addRow({p.name, TextTable::num(sec * 1e6, 1),
                  TextTable::times(base_sec / sec, 2),
                  TextTable::num(e * 1e6, 2),
                  TextTable::times(base_e / e, 2),
                  std::to_string(arr.peakMacsPerCycle(p.body))});
    }
    t.print();

    std::printf("\nthe per-layer setup instruction re-fuses the "
                "BitBricks between blocks, so the 8-bit edge layers\n"
                "and the low-bitwidth body coexist in one compiled "
                "program.\n");
    return 0;
}
