/**
 * @file
 * DianNao/DaDianNao-class baseline: NFU tiles of 16-bit multipliers
 * feeding adder trees, with (in the DaDianNao configuration) the
 * full synapse array resident in on-chip eDRAM.
 *
 * The model captures the two behaviours the comparison turns on:
 * the fixed neurons x synapses NFU shape strands multipliers on
 * layers whose GEMM does not align with it, and weight residency
 * removes the dominant DRAM term entirely when the network fits the
 * eDRAM -- the DaDianNao pitch -- but falls back to streaming when
 * it does not.
 *
 * Registered as the "dadiannao" kind through the same
 * PlatformRegistry door an out-of-tree backend uses.
 */

#ifndef BITFUSION_BASELINES_DIANNAO_H
#define BITFUSION_BASELINES_DIANNAO_H

#include "src/core/platform.h"
#include "src/core/platform_registry.h"
#include "src/core/stats.h"
#include "src/dnn/network.h"

namespace bitfusion {

/** Configuration of the DianNao-family NFU model. */
struct DianNaoConfig
{
    std::string name = "dadiannao";
    /** Output neurons per tile NFU. */
    unsigned neurons = 16;
    /** Synapses (reduction inputs) per neuron. */
    unsigned synapses = 16;
    /** NFU tiles (DaDianNao node: 16; DianNao: 1). */
    unsigned tiles = 16;
    double freqMHz = 606.0;
    /** Operand width; the NFU datapath is 16-bit fixed point. */
    unsigned operandBits = 16;
    /** On-chip eDRAM for resident synapses, in bits (36 MB). */
    std::uint64_t edramBits = 36ULL * 1024 * 1024 * 8;
    /** Activation buffer capacity in bits. */
    std::uint64_t sramBits = 4ULL * 1024 * 1024 * 8;
    /** Keep weights resident in eDRAM when the network fits. */
    bool weightsResident = true;
    std::uint64_t bwBitsPerCycle = 256;
    unsigned batch = 16;

    unsigned macsPerCycle() const { return tiles * neurons * synapses; }

    /** The multi-tile eDRAM node (16 tiles, 36 MB, 606 MHz). */
    static DianNaoConfig dadiannao();
    /** The original single-tile accelerator (980 MHz, streamed). */
    static DianNaoConfig diannao();
};

/** Analytical NFU simulator; the "dadiannao" Platform. */
class DianNaoModel : public Platform
{
  public:
    explicit DianNaoModel(const DianNaoConfig &cfg = DianNaoConfig{});

    using Platform::run;

    std::string name() const override { return cfg.name; }

    PlatformInfo describe() const override;

    /** Run a (regular-precision) network for one batch. */
    RunStats run(const Network &net,
                 const RunOptions &opts) const override;

    /** True when @p net's weights fit the eDRAM resident set. */
    bool weightsFit(const Network &net) const;

    const DianNaoConfig &config() const { return cfg; }

  private:
    LayerStats runLayer(const Layer &layer, bool resident,
                        LayerPhases &phases) const;

    DianNaoConfig cfg;
};

/** DianNao-family spec (16-bit, runs the regular-width model). */
PlatformSpec diannaoPlatform(DianNaoConfig cfg = {});

/** Register the "dadiannao" kind (called by builtin()). */
void registerDianNaoPlatform(PlatformRegistry &r);

} // namespace bitfusion

#endif // BITFUSION_BASELINES_DIANNAO_H
