/**
 * @file
 * Stripes baseline model (paper comparison point [2]).
 *
 * Stripes executes DNNs with bit-serial arithmetic on the weight
 * side: activations are 16-bit parallel, weights stream one bit per
 * cycle through Serial Inner-Product units (SIPs), so runtime scales
 * with the weight bitwidth while input bitwidth gives no benefit.
 * Following §V-A, the comparison is tile-for-tile: one Stripes tile
 * (4096 SIPs) occupies the same 1.1 mm^2 the 512-Fusion-Unit array
 * does, with the same on-chip memory and off-chip bandwidth.
 */

#ifndef BITFUSION_BASELINES_STRIPES_H
#define BITFUSION_BASELINES_STRIPES_H

#include "src/core/platform.h"
#include "src/core/platform_registry.h"
#include "src/core/stats.h"
#include "src/dnn/network.h"

namespace bitfusion {

/** Configuration of the Stripes tile model. */
struct StripesConfig
{
    /** SIPs per tile (Table III). */
    unsigned sips = 4096;
    /** Parallel 1-bit weight lanes per inner product. */
    unsigned lanesPerSip = 16;
    /** Parallel output windows per tile (Stripes processes 16
     *  filters x 16 windows x 16 reduction lanes per cycle). */
    unsigned windows = 16;
    /** Fixed activation bitwidth. */
    unsigned actBits = 16;
    /** Stripes frequency (Table III). */
    double freqMHz = 980.0;
    /** Data-parallel tiles sharing the DRAM interface. */
    unsigned tiles = 16;
    /** On-chip storage per tile, matched to the Bit Fusion array. */
    std::uint64_t sramBits = 112ULL * 1024 * 8;
    std::uint64_t bwBitsPerCycle = 256;
    unsigned batch = 16;

    /** Output (filter) parallelism of the tile. */
    unsigned mParallel() const { return sips / lanesPerSip / windows; }
    /** Reduction parallelism of the tile. */
    unsigned kParallel() const { return lanesPerSip; }
    /** Streaming (window) parallelism of the tile. */
    unsigned nParallel() const { return windows; }
};

/** Analytical bit-serial tile simulator; the "stripes" Platform. */
class StripesModel : public Platform
{
  public:
    explicit StripesModel(const StripesConfig &cfg = StripesConfig{});

    using Platform::run;

    std::string name() const override { return "stripes-45nm"; }

    PlatformInfo describe() const override;

    /**
     * Run a quantized network for one batch. Weight bitwidths come
     * from the per-layer fusion configs; activations execute at the
     * fixed 16-bit width regardless of the model's activation
     * quantization (the defining Stripes limitation).
     */
    RunStats run(const Network &net,
                 const RunOptions &opts) const override;

    /** Peak MACs/cycle at a weight bitwidth (exposed for tests). */
    double peakMacsPerCycle(unsigned w_bits) const;

    const StripesConfig &config() const { return cfg; }

  private:
    LayerStats runLayer(const Layer &layer, unsigned out_bits,
                        LayerPhases &phases) const;

    StripesConfig cfg;
};

/** Stripes baseline spec (runs the quantized model, per Fig. 18). */
PlatformSpec stripesPlatform(StripesConfig cfg = {});

/** Register the "stripes" kind (called by builtin()). */
void registerStripesPlatform(PlatformRegistry &r);

} // namespace bitfusion

#endif // BITFUSION_BASELINES_STRIPES_H
