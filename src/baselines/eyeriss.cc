#include "src/baselines/eyeriss.h"

#include <algorithm>

#include "src/common/bitutils.h"
#include "src/common/logging.h"
#include "src/energy/energy_model.h"

namespace bitfusion {

EyerissModel::EyerissModel(const EyerissConfig &cfg) : cfg(cfg)
{
}

PlatformInfo
EyerissModel::describe() const
{
    PlatformInfo info;
    info.name = name();
    info.kind = "eyeriss";
    info.compute = std::to_string(cfg.totalPEs()) + " PEs (" +
                   std::to_string(cfg.peRows) + "x" +
                   std::to_string(cfg.peCols) + ", 16-bit)";
    info.freqMHz = cfg.freqMHz;
    info.onChipBits = cfg.sramBits;
    info.bwBitsPerCycle = cfg.bwBitsPerCycle;
    info.batch = cfg.batch;
    return info;
}

double
EyerissModel::utilization(const Layer &layer) const
{
    switch (layer.kind) {
      case LayerKind::Conv: {
        // Row stationary: a PE set spans kH rows vertically and up
        // to peCols output rows horizontally; sets replicate across
        // the array. Fractional fill on both axes is the mapping
        // loss.
        const unsigned kh = std::min(layer.kH, cfg.peRows);
        const unsigned sets_v = cfg.peRows / kh;
        const double v_util =
            static_cast<double>(sets_v * kh) / cfg.peRows;
        const unsigned oh = layer.outH();
        double h_util;
        if (oh >= cfg.peCols) {
            const unsigned passes = static_cast<unsigned>(
                divCeil(oh, cfg.peCols));
            h_util = static_cast<double>(oh) / (passes * cfg.peCols);
        } else {
            h_util = static_cast<double>(oh) / cfg.peCols;
        }
        return v_util * h_util;
      }
      case LayerKind::FullyConnected:
      case LayerKind::Rnn:
      case LayerKind::Lstm:
        // FC maps with batch as the horizontal reuse dimension; a
        // small batch strands columns.
        return std::min(1.0, static_cast<double>(cfg.batch) /
                                 cfg.peCols);
      default:
        return 0.0;
    }
}

LayerStats
EyerissModel::runLayer(const Layer &layer, unsigned out_bits,
                       LayerPhases &phases) const
{
    LayerStats st;
    st.name = layer.name;
    st.config = "16b/16b";

    const std::uint64_t batch = cfg.batch;
    st.macs = layer.macsPerSample() * batch;
    const double util = std::max(utilization(layer), 1e-3);
    st.utilization = util;
    st.computeCycles = static_cast<std::uint64_t>(
        static_cast<double>(st.macs) / (cfg.totalPEs() * util));

    // Off-chip traffic at 16-bit operands, with the same tiling and
    // loop-ordering reuse logic the Bit Fusion compiler applies, run
    // against Eyeriss's single shared buffer.
    const std::uint64_t w_bits = layer.weightCount() * cfg.operandBits;
    const std::uint64_t i_bits =
        layer.inputCount() * cfg.operandBits * batch;
    const std::uint64_t o_bits =
        layer.outputCount() * out_bits * batch;
    const auto gemm = layer.gemmShape();
    const std::uint64_t n_total =
        (layer.kind == LayerKind::Conv ? gemm.n : 1) * batch;

    const TrafficPlan plan = planDramTraffic(
        sharedBufferConfig(cfg.peRows, cfg.peCols, cfg.sramBits,
                           cfg.bwBitsPerCycle, cfg.batch),
        gemm.m, gemm.k, n_total, w_bits, i_bits, o_bits,
        FusionConfig{16, 16, true, true}, out_bits);
    st.dramLoadBits = plan.loadBits;
    st.dramStoreBits = plan.storeBits;
    st.memCycles =
        divCeil(st.dramLoadBits + st.dramStoreBits, cfg.bwBitsPerCycle);

    // Register files: input + weight + psum read + psum write per
    // MAC at 16 bits.
    st.rfBits = st.macs * 4 * cfg.operandBits;
    // Global buffer traffic: the row-stationary RF hierarchy filters
    // most reuse, so the global buffer sees each off-chip transfer
    // once plus one extra pass over the inputs.
    st.sramBits = st.dramLoadBits + i_bits + o_bits;

    phases = LayerPhases::fromBits(st.computeCycles, st.dramLoadBits,
                                   st.dramStoreBits, cfg.bwBitsPerCycle,
                                   0);

    EnergyModel::applyEyeriss(st, cfg.sramBits);
    return st;
}

PlatformSpec
eyerissPlatform(EyerissConfig cfg)
{
    PlatformConfig::Ops<EyerissConfig> ops;
    ops.batch = [](const EyerissConfig &c) { return c.batch; };
    ops.equals = [](const EyerissConfig &a, const EyerissConfig &b) {
        return a.peRows == b.peRows && a.peCols == b.peCols &&
               a.freqMHz == b.freqMHz && a.sramBits == b.sramBits &&
               a.operandBits == b.operandBits &&
               a.bwBitsPerCycle == b.bwBitsPerCycle &&
               a.batch == b.batch;
    };
    ops.describe = [](const EyerissConfig &c) {
        return "eyeriss: " + std::to_string(c.totalPEs()) +
               " row-stationary PEs";
    };
    PlatformSpec spec;
    spec.name = "eyeriss";
    spec.kind = "eyeriss";
    spec.config = PlatformConfig::wrap(cfg, ops);
    spec.runsQuantized = false;
    return spec;
}

void
registerEyerissPlatform(PlatformRegistry &r)
{
    r.add({"eyeriss", "(no variants)",
           "row-stationary 16-bit PE array baseline (Fig. 13/14)",
           [](const std::string &variant) {
               if (!variant.empty())
                   BF_FATAL("eyeriss takes no variant, got '", variant,
                            "'");
               return eyerissPlatform();
           },
           [](const PlatformSpec &spec) -> std::unique_ptr<Platform> {
               EyerissConfig cfg = spec.config.as<EyerissConfig>();
               if (spec.batch != 0)
                   cfg.batch = spec.batch;
               return std::make_unique<EyerissModel>(cfg);
           }});
}

RunStats
EyerissModel::run(const Network &net, const RunOptions &opts) const
{
    RunStats rs;
    rs.platform = name();
    rs.network = net.name();
    rs.batch = cfg.batch;
    rs.freqMHz = cfg.freqMHz;

    LayerWalk walk(opts.timing);
    for (const auto &layer : net.layers()) {
        if (!layer.usesMacArray()) {
            // Pooling/activation ride along with the producing
            // layer's dataflow; their cost is folded into the conv
            // passes in Eyeriss and is negligible next to the MACs.
            continue;
        }
        // Outputs leave quantized to 16 bits after the fused
        // activation path.
        LayerPhases phases;
        LayerStats st = runLayer(layer, cfg.operandBits, phases);
        walk.add(std::move(st), phases);
    }
    walk.finish(rs);
    return rs;
}

} // namespace bitfusion
