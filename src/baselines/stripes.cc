#include "src/baselines/stripes.h"

#include <algorithm>

#include "src/common/bitutils.h"
#include "src/common/logging.h"
#include "src/energy/energy_model.h"

namespace bitfusion {

StripesModel::StripesModel(const StripesConfig &cfg) : cfg(cfg)
{
}

PlatformInfo
StripesModel::describe() const
{
    PlatformInfo info;
    info.name = name();
    info.kind = "stripes";
    info.compute = std::to_string(cfg.tiles) + " tiles x " +
                   std::to_string(cfg.sips) + " SIPs";
    info.freqMHz = cfg.freqMHz;
    info.onChipBits = cfg.sramBits * cfg.tiles;
    info.bwBitsPerCycle = cfg.bwBitsPerCycle;
    info.batch = cfg.batch;
    return info;
}

double
StripesModel::peakMacsPerCycle(unsigned w_bits) const
{
    BF_ASSERT(w_bits >= 1 && w_bits <= 16);
    return static_cast<double>(cfg.sips) / w_bits;
}

LayerStats
StripesModel::runLayer(const Layer &layer, unsigned out_bits,
                       LayerPhases &phases) const
{
    const unsigned w_bits = std::max(1u, layer.bits.wBits);
    LayerStats st;
    st.name = layer.name;
    st.config = "16b/" + std::to_string(w_bits) + "b";

    const std::uint64_t batch = cfg.batch;
    st.macs = layer.macsPerSample() * batch;

    const auto gemm = layer.gemmShape();
    const std::uint64_t n_total =
        (layer.kind == LayerKind::Conv ? gemm.n : 1) * batch;
    // Tiles split the batch; each tile computes its share.
    const std::uint64_t n_tile =
        (layer.kind == LayerKind::Conv ? gemm.n : 1) *
        divCeil(batch, cfg.tiles);
    const std::uint64_t m_passes = divCeil(gemm.m, cfg.mParallel());
    const std::uint64_t k_passes = divCeil(gemm.k, cfg.kParallel());
    const std::uint64_t n_passes = divCeil(n_tile, cfg.nParallel());
    // Each (m, k, n) group needs w_bits serial cycles.
    st.computeCycles = m_passes * k_passes * n_passes * w_bits;
    const double ideal = static_cast<double>(st.macs) /
                         (peakMacsPerCycle(w_bits) * cfg.tiles);
    st.utilization = ideal / static_cast<double>(st.computeCycles);

    // Traffic: weights at w_bits, activations at the fixed 16 bits,
    // with the same tiling/ordering reuse logic as Bit Fusion.
    const std::uint64_t w_bits_total = layer.weightCount() * w_bits;
    const std::uint64_t i_bits =
        layer.inputCount() * cfg.actBits * batch;
    const std::uint64_t o_bits =
        layer.outputCount() * out_bits * batch;
    // Stripes activations are 16-bit; weights serialize at w_bits.
    const TrafficPlan plan = planDramTraffic(
        sharedBufferConfig(cfg.kParallel(), cfg.mParallel(),
                           cfg.sramBits, cfg.bwBitsPerCycle, cfg.batch),
        gemm.m, gemm.k, n_total, w_bits_total, i_bits, o_bits,
        FusionConfig{16, 16, true, true}, out_bits);
    st.dramLoadBits = plan.loadBits;
    st.dramStoreBits = plan.storeBits;
    st.memCycles =
        divCeil(st.dramLoadBits + st.dramStoreBits, cfg.bwBitsPerCycle);

    // On-chip traffic: serial weight bits re-read per streamed
    // position; 16-bit activations re-read per output pass.
    st.sramBits = st.macs * w_bits + st.macs * cfg.actBits /
                                         cfg.kParallel() +
                  2 * gemm.m * n_total * 32;

    phases = LayerPhases::fromBits(st.computeCycles, st.dramLoadBits,
                                   st.dramStoreBits, cfg.bwBitsPerCycle,
                                   0);

    EnergyModel::applyStripes(st, w_bits, cfg.sramBits);
    return st;
}

PlatformSpec
stripesPlatform(StripesConfig cfg)
{
    PlatformConfig::Ops<StripesConfig> ops;
    ops.batch = [](const StripesConfig &c) { return c.batch; };
    ops.equals = [](const StripesConfig &a, const StripesConfig &b) {
        return a.sips == b.sips && a.lanesPerSip == b.lanesPerSip &&
               a.windows == b.windows && a.actBits == b.actBits &&
               a.freqMHz == b.freqMHz && a.tiles == b.tiles &&
               a.sramBits == b.sramBits &&
               a.bwBitsPerCycle == b.bwBitsPerCycle &&
               a.batch == b.batch;
    };
    ops.describe = [](const StripesConfig &c) {
        return "stripes: " + std::to_string(c.tiles) + " tiles x " +
               std::to_string(c.sips) + " SIPs";
    };
    PlatformSpec spec;
    spec.name = "stripes";
    spec.kind = "stripes";
    spec.config = PlatformConfig::wrap(cfg, ops);
    spec.runsQuantized = true;
    return spec;
}

void
registerStripesPlatform(PlatformRegistry &r)
{
    r.add({"stripes", "(no variants)",
           "bit-serial weight SIP tile baseline (Fig. 18)",
           [](const std::string &variant) {
               if (!variant.empty())
                   BF_FATAL("stripes takes no variant, got '", variant,
                            "'");
               return stripesPlatform();
           },
           [](const PlatformSpec &spec) -> std::unique_ptr<Platform> {
               StripesConfig cfg = spec.config.as<StripesConfig>();
               if (spec.batch != 0)
                   cfg.batch = spec.batch;
               return std::make_unique<StripesModel>(cfg);
           }});
}

RunStats
StripesModel::run(const Network &net, const RunOptions &opts) const
{
    RunStats rs;
    rs.platform = name();
    rs.network = net.name();
    rs.batch = cfg.batch;
    rs.freqMHz = cfg.freqMHz;

    LayerWalk walk(opts.timing);
    for (const auto &layer : net.layers()) {
        if (!layer.usesMacArray())
            continue;
        LayerPhases phases;
        LayerStats st = runLayer(layer, cfg.actBits, phases);
        walk.add(std::move(st), phases);
    }
    walk.finish(rs);
    return rs;
}

} // namespace bitfusion
