#include "src/baselines/stripes.h"

#include <algorithm>

#include "src/common/bitutils.h"
#include "src/common/logging.h"
#include "src/compiler/tiling.h"
#include "src/energy/energy_model.h"

namespace bitfusion {

StripesModel::StripesModel(const StripesConfig &cfg) : cfg(cfg)
{
}

double
StripesModel::peakMacsPerCycle(unsigned w_bits) const
{
    BF_ASSERT(w_bits >= 1 && w_bits <= 16);
    return static_cast<double>(cfg.sips) / w_bits;
}

LayerStats
StripesModel::runLayer(const Layer &layer, unsigned out_bits) const
{
    const unsigned w_bits = std::max(1u, layer.bits.wBits);
    LayerStats st;
    st.name = layer.name;
    st.config = "16b/" + std::to_string(w_bits) + "b";

    const std::uint64_t batch = cfg.batch;
    st.macs = layer.macsPerSample() * batch;

    const auto gemm = layer.gemmShape();
    const std::uint64_t n_total =
        (layer.kind == LayerKind::Conv ? gemm.n : 1) * batch;
    // Tiles split the batch; each tile computes its share.
    const std::uint64_t n_tile =
        (layer.kind == LayerKind::Conv ? gemm.n : 1) *
        divCeil(batch, cfg.tiles);
    const std::uint64_t m_passes = divCeil(gemm.m, cfg.mParallel());
    const std::uint64_t k_passes = divCeil(gemm.k, cfg.kParallel());
    const std::uint64_t n_passes = divCeil(n_tile, cfg.nParallel());
    // Each (m, k, n) group needs w_bits serial cycles.
    st.computeCycles = m_passes * k_passes * n_passes * w_bits;
    const double ideal = static_cast<double>(st.macs) /
                         (peakMacsPerCycle(w_bits) * cfg.tiles);
    st.utilization = ideal / static_cast<double>(st.computeCycles);

    // Traffic: weights at w_bits, activations at the fixed 16 bits,
    // with the same tiling/ordering reuse logic as Bit Fusion.
    const std::uint64_t w_bits_total = layer.weightCount() * w_bits;
    const std::uint64_t i_bits =
        layer.inputCount() * cfg.actBits * batch;
    const std::uint64_t o_bits =
        layer.outputCount() * out_bits * batch;
    AcceleratorConfig tile_cfg;
    tile_cfg.rows = cfg.kParallel();
    tile_cfg.cols = cfg.mParallel();
    tile_cfg.wbufBits = cfg.sramBits / 2;
    tile_cfg.ibufBits = cfg.sramBits / 4;
    tile_cfg.obufBits = cfg.sramBits / 4;
    tile_cfg.batch = cfg.batch;
    const Tiler tiler(tile_cfg);
    // Stripes activations are 16-bit; weights serialize at w_bits.
    FusionConfig op{16, 16, true, true};
    const Tiling tile =
        tiler.chooseTiles(gemm.m, gemm.k, n_total, op, out_bits);
    const LoopOrder order = tiler.chooseOrder(
        tile, gemm.m, gemm.k, n_total, w_bits_total, i_bits, o_bits);
    st.dramLoadBits = Tiler::trafficBits(order, tile, gemm.m, gemm.k,
                                         n_total, w_bits_total, i_bits,
                                         0);
    st.dramStoreBits = o_bits;
    st.memCycles =
        divCeil(st.dramLoadBits + st.dramStoreBits, cfg.bwBitsPerCycle);

    // On-chip traffic: serial weight bits re-read per streamed
    // position; 16-bit activations re-read per output pass.
    st.sramBits = st.macs * w_bits + st.macs * cfg.actBits /
                                         cfg.kParallel() +
                  2 * gemm.m * n_total * 32;

    st.cycles = std::max(st.computeCycles, st.memCycles);
    EnergyModel::applyStripes(st, w_bits, cfg.sramBits);
    return st;
}

RunStats
StripesModel::run(const Network &net) const
{
    RunStats rs;
    rs.platform = "stripes-45nm";
    rs.network = net.name();
    rs.batch = cfg.batch;
    rs.freqMHz = cfg.freqMHz;

    for (const auto &layer : net.layers()) {
        if (!layer.usesMacArray())
            continue;
        LayerStats st = runLayer(layer, cfg.actBits);
        rs.totalCycles += st.cycles;
        rs.layers.push_back(std::move(st));
    }
    return rs;
}

} // namespace bitfusion
