/**
 * @file
 * Eyeriss baseline model (paper comparison point [1]).
 *
 * Eyeriss is a 12x14 (168 PE) row-stationary accelerator operating
 * on 16-bit operands at 500 MHz with 181.5 KB of on-chip SRAM and a
 * per-PE register file (Table III). The model reproduces the
 * characteristics the Fig. 13/14 comparisons depend on:
 *
 *  - mapping utilization of the row-stationary dataflow (filter rows
 *    vertically, output rows horizontally, replicated over channels;
 *    FC layers reuse weights across the batch dimension only);
 *  - fixed 16-bit operand traffic to SRAM and DRAM;
 *  - register-file traffic of ~4 accesses per MAC (input, weight,
 *    partial-sum read and write), the dominant energy term the
 *    paper's Fig. 14 shows.
 */

#ifndef BITFUSION_BASELINES_EYERISS_H
#define BITFUSION_BASELINES_EYERISS_H

#include "src/core/platform.h"
#include "src/core/platform_registry.h"
#include "src/core/stats.h"
#include "src/dnn/network.h"

namespace bitfusion {

/** Configuration of the Eyeriss platform model. */
struct EyerissConfig
{
    unsigned peRows = 12;
    unsigned peCols = 14;
    double freqMHz = 500.0;
    /** On-chip SRAM in bits (181.5 KB, Table III). */
    std::uint64_t sramBits = 181ULL * 1024 * 8 + 512 * 8;
    /** Operand width (bits). */
    unsigned operandBits = 16;
    /** Off-chip bandwidth, matched to Bit Fusion's default. */
    std::uint64_t bwBitsPerCycle = 128;
    unsigned batch = 16;

    unsigned totalPEs() const { return peRows * peCols; }
};

/** Analytical row-stationary simulator; the "eyeriss" Platform. */
class EyerissModel : public Platform
{
  public:
    explicit EyerissModel(const EyerissConfig &cfg = EyerissConfig{});

    using Platform::run;

    std::string name() const override { return "eyeriss-45nm"; }

    PlatformInfo describe() const override;

    /** Run a (regular-precision) network for one batch. */
    RunStats run(const Network &net,
                 const RunOptions &opts) const override;

    /** Mapping utilization of one layer (exposed for tests). */
    double utilization(const Layer &layer) const;

    const EyerissConfig &config() const { return cfg; }

  private:
    LayerStats runLayer(const Layer &layer, unsigned out_bits,
                        LayerPhases &phases) const;

    EyerissConfig cfg;
};

/** Eyeriss baseline spec (16-bit, runs the regular-width model). */
PlatformSpec eyerissPlatform(EyerissConfig cfg = {});

/** Register the "eyeriss" kind (called by builtin()). */
void registerEyerissPlatform(PlatformRegistry &r);

} // namespace bitfusion

#endif // BITFUSION_BASELINES_EYERISS_H
