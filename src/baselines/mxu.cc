#include "src/baselines/mxu.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/bitutils.h"
#include "src/common/logging.h"
#include "src/energy/energy_model.h"

namespace bitfusion {

MxuConfig
MxuConfig::v1()
{
    return MxuConfig{};
}

MxuConfig
MxuConfig::edge()
{
    MxuConfig cfg;
    cfg.name = "mxu-edge";
    cfg.rows = 64;
    cfg.cols = 64;
    cfg.sramBits = 2ULL * 1024 * 1024 * 8;
    cfg.bwBitsPerCycle = 128;
    return cfg;
}

MxuModel::MxuModel(const MxuConfig &cfg) : cfg(cfg)
{
}

PlatformInfo
MxuModel::describe() const
{
    PlatformInfo info;
    info.name = name();
    info.kind = "mxu";
    info.compute = std::to_string(cfg.rows) + "x" +
                   std::to_string(cfg.cols) +
                   " weight-stationary 8-bit MACs";
    info.freqMHz = cfg.freqMHz;
    info.onChipBits = cfg.sramBits;
    info.bwBitsPerCycle = cfg.bwBitsPerCycle;
    info.batch = cfg.batch;
    return info;
}

std::uint64_t
MxuModel::tilePasses(std::uint64_t m, std::uint64_t k) const
{
    return divCeil(k, cfg.rows) * divCeil(m, cfg.cols);
}

LayerStats
MxuModel::runLayer(const Layer &layer, LayerPhases &phases) const
{
    LayerStats st;
    st.name = layer.name;
    st.config = "8b/8b";

    const std::uint64_t batch = cfg.batch;
    st.macs = layer.macsPerSample() * batch;

    const auto gemm = layer.gemmShape();
    const std::uint64_t n_total =
        (layer.kind == LayerKind::Conv ? gemm.n : 1) * batch;
    const std::uint64_t k_passes = divCeil(gemm.k, cfg.rows);
    const std::uint64_t m_passes = divCeil(gemm.m, cfg.cols);

    // Weight-stationary execution: each (k, m) weight tile shifts
    // down the array (rows cycles, double-buffered against the
    // previous drain) and then streams every activation column
    // through it. A GEMM smaller than the array still pays the full
    // stream-through -- the utilization cliff the fused small-tile
    // fabric avoids.
    st.computeCycles = k_passes * m_passes * (n_total + cfg.rows);
    st.utilization =
        static_cast<double>(st.macs) /
        (static_cast<double>(st.computeCycles) * cfg.totalMacs());

    // Off-chip traffic at fixed 8-bit operands, with the shared
    // tiling/loop-ordering reuse logic over the unified buffer.
    const std::uint64_t w_bits = layer.weightCount() * cfg.operandBits;
    const std::uint64_t i_bits =
        layer.inputCount() * cfg.operandBits * batch;
    const std::uint64_t o_bits =
        layer.outputCount() * cfg.operandBits * batch;
    const TrafficPlan plan = planDramTraffic(
        sharedBufferConfig(cfg.rows, cfg.cols, cfg.sramBits,
                           cfg.bwBitsPerCycle, cfg.batch),
        gemm.m, gemm.k, n_total, w_bits, i_bits, o_bits,
        FusionConfig{8, 8, true, true}, cfg.operandBits);
    st.dramLoadBits = plan.loadBits;
    st.dramStoreBits = plan.storeBits;
    st.memCycles =
        divCeil(st.dramLoadBits + st.dramStoreBits, cfg.bwBitsPerCycle);

    // No per-PE register files: weights sit in the array and partial
    // sums ripple systolically. The unified buffer sees each
    // off-chip transfer once, the activations once per column-tile
    // pass, and the 32-bit accumulators twice per reduction pass
    // beyond the first.
    st.rfBits = 0;
    const std::uint64_t acc_bits =
        layer.outputCount() * batch * 32ULL;
    st.sramBits = st.dramLoadBits + i_bits * m_passes +
                  2 * (k_passes - 1) * acc_bits;

    // The drain of the last column is the array-depth pipeline fill.
    phases = LayerPhases::fromBits(st.computeCycles, st.dramLoadBits,
                                   st.dramStoreBits, cfg.bwBitsPerCycle,
                                   cfg.cols);

    EnergyModel::applyFixedPoint(st, EnergyModel::fixed8MacPj,
                                 cfg.sramBits);
    return st;
}

RunStats
MxuModel::run(const Network &net, const RunOptions &opts) const
{
    RunStats rs;
    rs.platform = name();
    rs.network = net.name();
    rs.batch = cfg.batch;
    rs.freqMHz = cfg.freqMHz;

    LayerWalk walk(opts.timing);
    for (const auto &layer : net.layers()) {
        if (!layer.usesMacArray())
            continue;
        LayerPhases phases;
        LayerStats st = runLayer(layer, phases);
        walk.add(std::move(st), phases);
    }
    walk.finish(rs);
    return rs;
}

PlatformSpec
mxuPlatform(MxuConfig cfg)
{
    PlatformConfig::Ops<MxuConfig> ops;
    ops.batch = [](const MxuConfig &c) { return c.batch; };
    ops.equals = [](const MxuConfig &a, const MxuConfig &b) {
        return a.name == b.name && a.rows == b.rows &&
               a.cols == b.cols && a.freqMHz == b.freqMHz &&
               a.operandBits == b.operandBits &&
               a.sramBits == b.sramBits &&
               a.bwBitsPerCycle == b.bwBitsPerCycle &&
               a.batch == b.batch;
    };
    ops.describe = [](const MxuConfig &c) {
        return c.name + ": " + std::to_string(c.rows) + "x" +
               std::to_string(c.cols) + " weight-stationary MXU";
    };
    PlatformSpec spec;
    spec.name = cfg.name;
    spec.kind = "mxu";
    spec.config = PlatformConfig::wrap(std::move(cfg), ops);
    spec.runsQuantized = true;
    return spec;
}

void
registerMxuPlatform(PlatformRegistry &r)
{
    r.add({"mxu", "v1 (default) | edge",
           "TPU-v1-class weight-stationary 8-bit matrix unit",
           [](const std::string &variant) {
               const std::string v = canonicalVariant(variant);
               if (v.empty() || v == "v1")
                   return mxuPlatform(MxuConfig::v1());
               if (v == "edge")
                   return mxuPlatform(MxuConfig::edge());
               BF_FATAL("unknown mxu variant '", variant,
                        "' (try v1, edge)");
           },
           [](const PlatformSpec &spec) -> std::unique_ptr<Platform> {
               MxuConfig cfg = spec.config.as<MxuConfig>();
               if (spec.batch != 0)
                   cfg.batch = spec.batch;
               return std::make_unique<MxuModel>(cfg);
           }});
}

} // namespace bitfusion
