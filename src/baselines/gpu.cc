#include "src/baselines/gpu.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace bitfusion {

GpuSpec
GpuSpec::tegraX2Fp32()
{
    // 256 CUDA cores x 875 MHz (Table III) x 1 MAC/core/cycle.
    // 15 W: Tegra X2 max-P board budget (Fig. 17 energy bars).
    return GpuSpec{"tegra-x2-fp32", 256.0 * 875e6, 58e9, 4.0,
                   8192.0, 20e-6, 0.75, 15.0};
}

GpuSpec
GpuSpec::titanXpFp32()
{
    // 3584 CUDA cores x 1531 MHz.
    // 250 W TDP; INT8 inherits it (same board, same power rail).
    return GpuSpec{"titan-xp-fp32", 3584.0 * 1531e6, 547e9, 4.0,
                   131072.0, 8e-6, 0.75, 250.0};
}

GpuSpec
GpuSpec::titanXpInt8()
{
    // dp4a: 4x the FP32 math rate; INT8 kernels are somewhat less
    // efficient (quantize/dequantize epilogues).
    GpuSpec s = titanXpFp32();
    s.name = "titan-xp-int8";
    s.peakMacsPerSec *= 4.0;
    s.bytesPerElem = 1.0;
    // TensorRT INT8 kernels reach a smaller fraction of the dp4a
    // peak (quantize/dequantize epilogues, alignment); calibrated so
    // INT8 lands ~1.6x over FP32 end to end, as the paper measures.
    s.efficiency = 0.30;
    return s;
}

PlatformSpec
gpuPlatform(GpuSpec gpuSpec)
{
    PlatformConfig::Ops<GpuSpec> ops;
    // GpuSpec carries no batch field; the models default to the
    // paper's batch 16.
    ops.batch = [](const GpuSpec &) { return kGpuDefaultBatch; };
    ops.equals = [](const GpuSpec &a, const GpuSpec &b) {
        return a.name == b.name &&
               a.peakMacsPerSec == b.peakMacsPerSec &&
               a.memBytesPerSec == b.memBytesPerSec &&
               a.bytesPerElem == b.bytesPerElem &&
               a.occupancyKnee == b.occupancyKnee &&
               a.launchOverheadSec == b.launchOverheadSec &&
               a.efficiency == b.efficiency &&
               a.boardPowerW == b.boardPowerW;
    };
    ops.describe = [](const GpuSpec &s) {
        return s.name + ": " +
               std::to_string(static_cast<long long>(
                   s.peakMacsPerSec / 1e9)) +
               " Gmac/s roofline";
    };
    PlatformSpec spec;
    spec.name = gpuSpec.name;
    spec.kind = "gpu";
    spec.config = PlatformConfig::wrap(std::move(gpuSpec), ops);
    spec.runsQuantized = false;
    return spec;
}

void
registerGpuPlatform(PlatformRegistry &r)
{
    r.add({"gpu", "tegra-x2-fp32 | titan-xp-fp32 | titan-xp-int8",
           "TensorRT roofline baselines (Fig. 17)",
           [](const std::string &variant) {
               const std::string v = canonicalVariant(variant);
               if (v == "tegrax2fp32" || v == "tegrax2")
                   return gpuPlatform(GpuSpec::tegraX2Fp32());
               if (v == "titanxpfp32")
                   return gpuPlatform(GpuSpec::titanXpFp32());
               if (v == "titanxpint8")
                   return gpuPlatform(GpuSpec::titanXpInt8());
               BF_FATAL("unknown gpu variant '", variant,
                        "' (try tegra-x2-fp32, titan-xp-fp32, "
                        "titan-xp-int8)");
           },
           [](const PlatformSpec &spec) -> std::unique_ptr<Platform> {
               return std::make_unique<GpuModel>(
                   spec.config.as<GpuSpec>(), spec.effectiveBatch());
           }});
}

GpuModel::GpuModel(GpuSpec spec, unsigned batch)
    : _spec(std::move(spec)), batch(batch)
{
    BF_ASSERT(batch > 0);
}

PlatformInfo
GpuModel::describe() const
{
    PlatformInfo info;
    info.name = _spec.name;
    info.kind = "gpu";
    info.compute = std::to_string(static_cast<long long>(
                       _spec.peakMacsPerSec / 1e9)) +
                   " Gmac/s roofline";
    info.freqMHz = 1000.0; // cycles reported as nanoseconds
    info.batch = batch;
    return info;
}

RunStats
GpuModel::run(const Network &net, const RunOptions &opts) const
{
    RunStats rs;
    rs.platform = _spec.name;
    rs.network = net.name();
    rs.batch = batch;
    // Phase times are in seconds; report them as 1 GHz pseudo-cycles
    // (nanoseconds).
    rs.freqMHz = 1000.0;
    LayerWalk walk(opts.timing, 1e9);
    for (const auto &layer : net.layers()) {
        if (!layer.usesMacArray())
            continue;

        const auto gemm = layer.gemmShape();
        const double macs =
            static_cast<double>(layer.macsPerSample()) * batch;

        // Occupancy: one thread per output element is the natural
        // GEMM parallelization.
        const double n_total =
            static_cast<double>(layer.kind == LayerKind::Conv ? gemm.n
                                                              : 1) *
            batch;
        const double threads = static_cast<double>(gemm.m) * n_total;
        const double occupancy =
            std::min(1.0, threads / _spec.occupancyKnee);

        const double compute_sec =
            macs / (_spec.peakMacsPerSec * _spec.efficiency * occupancy);
        const double bytes =
            (static_cast<double>(layer.weightCount()) +
             static_cast<double>(layer.inputCount()) * batch +
             static_cast<double>(layer.outputCount()) * batch) *
            _spec.bytesPerElem;
        const double mem_sec = bytes / _spec.memBytesPerSec;

        LayerStats st;
        st.name = layer.name;
        st.config = _spec.name;
        st.macs = static_cast<std::uint64_t>(macs);
        st.computeCycles =
            static_cast<std::uint64_t>(compute_sec * 1e9);
        st.memCycles = static_cast<std::uint64_t>(mem_sec * 1e9);
        st.utilization = occupancy;

        // Board power x wall time, using the Simple-timing layer
        // latency so the energy column never depends on --timing
        // (a board burns power while the kernel runs either way).
        const double layer_sec = std::max(compute_sec, mem_sec) +
                                 _spec.launchOverheadSec;
        st.energy.computeJ = _spec.boardPowerW * layer_sec;

        // Kernel-launch overhead is the per-layer pipeline fill; the
        // Overlap model hides all but one launch (CUDA streams).
        LayerPhases phases;
        phases.computeUnits = compute_sec;
        phases.memUnits = mem_sec;
        phases.fillUnits = _spec.launchOverheadSec;
        walk.add(std::move(st), phases);
    }
    const double total_sec = walk.finish(rs);
    // Re-derive totalCycles with the seed's exact float ordering so
    // figure output stays bit-identical under Simple timing.
    rs.totalCycles = static_cast<std::uint64_t>(total_sec * rs.freqMHz *
                                                1e6);
    return rs;
}

} // namespace bitfusion
