#include "src/baselines/gpu.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace bitfusion {

GpuSpec
GpuSpec::tegraX2Fp32()
{
    // 256 CUDA cores x 875 MHz (Table III) x 1 MAC/core/cycle.
    return GpuSpec{"tegra-x2-fp32", 256.0 * 875e6, 58e9, 4.0,
                   8192.0, 20e-6, 0.75};
}

GpuSpec
GpuSpec::titanXpFp32()
{
    // 3584 CUDA cores x 1531 MHz.
    return GpuSpec{"titan-xp-fp32", 3584.0 * 1531e6, 547e9, 4.0,
                   131072.0, 8e-6, 0.75};
}

GpuSpec
GpuSpec::titanXpInt8()
{
    // dp4a: 4x the FP32 math rate; INT8 kernels are somewhat less
    // efficient (quantize/dequantize epilogues).
    GpuSpec s = titanXpFp32();
    s.name = "titan-xp-int8";
    s.peakMacsPerSec *= 4.0;
    s.bytesPerElem = 1.0;
    // TensorRT INT8 kernels reach a smaller fraction of the dp4a
    // peak (quantize/dequantize epilogues, alignment); calibrated so
    // INT8 lands ~1.6x over FP32 end to end, as the paper measures.
    s.efficiency = 0.30;
    return s;
}

GpuModel::GpuModel(GpuSpec spec, unsigned batch)
    : _spec(std::move(spec)), batch(batch)
{
    BF_ASSERT(batch > 0);
}

RunStats
GpuModel::run(const Network &net) const
{
    RunStats rs;
    rs.platform = _spec.name;
    rs.network = net.name();
    rs.batch = batch;
    rs.freqMHz = 1000.0; // report cycles as microseconds

    double total_sec = 0.0;
    for (const auto &layer : net.layers()) {
        if (!layer.usesMacArray())
            continue;

        const auto gemm = layer.gemmShape();
        const double macs =
            static_cast<double>(layer.macsPerSample()) * batch;

        // Occupancy: one thread per output element is the natural
        // GEMM parallelization.
        const double n_total =
            static_cast<double>(layer.kind == LayerKind::Conv ? gemm.n
                                                              : 1) *
            batch;
        const double threads = static_cast<double>(gemm.m) * n_total;
        const double occupancy =
            std::min(1.0, threads / _spec.occupancyKnee);

        const double compute_sec =
            macs / (_spec.peakMacsPerSec * _spec.efficiency * occupancy);
        const double bytes =
            (static_cast<double>(layer.weightCount()) +
             static_cast<double>(layer.inputCount()) * batch +
             static_cast<double>(layer.outputCount()) * batch) *
            _spec.bytesPerElem;
        const double mem_sec = bytes / _spec.memBytesPerSec;
        const double layer_sec =
            std::max(compute_sec, mem_sec) + _spec.launchOverheadSec;

        LayerStats st;
        st.name = layer.name;
        st.config = _spec.name;
        st.macs = static_cast<std::uint64_t>(macs);
        st.cycles = static_cast<std::uint64_t>(layer_sec * 1e9);
        st.utilization = occupancy;
        total_sec += layer_sec;
        rs.layers.push_back(std::move(st));
    }
    rs.totalCycles = static_cast<std::uint64_t>(total_sec * rs.freqMHz *
                                                1e6);
    return rs;
}

} // namespace bitfusion
