#include "src/baselines/diannao.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/bitutils.h"
#include "src/common/logging.h"
#include "src/energy/energy_model.h"

namespace bitfusion {

DianNaoConfig
DianNaoConfig::dadiannao()
{
    return DianNaoConfig{};
}

DianNaoConfig
DianNaoConfig::diannao()
{
    DianNaoConfig cfg;
    cfg.name = "diannao";
    cfg.tiles = 1;
    cfg.freqMHz = 980.0;
    cfg.edramBits = 0;
    // NBin + NBout + SB (2 KB + 2 KB + 32 KB).
    cfg.sramBits = 36ULL * 1024 * 8;
    cfg.weightsResident = false;
    cfg.bwBitsPerCycle = 128;
    return cfg;
}

DianNaoModel::DianNaoModel(const DianNaoConfig &cfg) : cfg(cfg)
{
}

PlatformInfo
DianNaoModel::describe() const
{
    PlatformInfo info;
    info.name = name();
    info.kind = "dadiannao";
    info.compute = std::to_string(cfg.tiles) + " NFU tiles x " +
                   std::to_string(cfg.neurons) + "n x " +
                   std::to_string(cfg.synapses) + "s (16-bit)";
    info.freqMHz = cfg.freqMHz;
    info.onChipBits = cfg.edramBits + cfg.sramBits;
    info.bwBitsPerCycle = cfg.bwBitsPerCycle;
    info.batch = cfg.batch;
    return info;
}

bool
DianNaoModel::weightsFit(const Network &net) const
{
    if (!cfg.weightsResident)
        return false;
    std::uint64_t weight_bits = 0;
    for (const auto &layer : net.layers())
        weight_bits += layer.weightCount() * cfg.operandBits;
    return weight_bits <= cfg.edramBits;
}

LayerStats
DianNaoModel::runLayer(const Layer &layer, bool resident,
                       LayerPhases &phases) const
{
    LayerStats st;
    st.name = layer.name;
    st.config = "16b/16b";

    const std::uint64_t batch = cfg.batch;
    st.macs = layer.macsPerSample() * batch;

    const auto gemm = layer.gemmShape();
    const std::uint64_t n_total =
        (layer.kind == LayerKind::Conv ? gemm.n : 1) * batch;
    // Tiles split the output-neuron dimension; every tile's NFU
    // consumes `synapses` inputs per neuron per cycle. Fractional
    // fill on either axis strands multipliers.
    const std::uint64_t m_passes =
        divCeil(gemm.m, cfg.tiles * cfg.neurons);
    const std::uint64_t k_passes = divCeil(gemm.k, cfg.synapses);
    st.computeCycles = m_passes * k_passes * n_total;
    st.utilization =
        static_cast<double>(st.macs) /
        (static_cast<double>(st.computeCycles) * cfg.macsPerCycle());

    const std::uint64_t w_bits = layer.weightCount() * cfg.operandBits;
    const std::uint64_t i_bits =
        layer.inputCount() * cfg.operandBits * batch;
    const std::uint64_t o_bits =
        layer.outputCount() * cfg.operandBits * batch;
    // Resident synapses never touch DRAM; otherwise weights stream
    // through the shared tiling/loop-ordering planner like every
    // other baseline.
    const TrafficPlan plan = planDramTraffic(
        sharedBufferConfig(cfg.synapses, cfg.tiles * cfg.neurons,
                           cfg.sramBits, cfg.bwBitsPerCycle, cfg.batch),
        gemm.m, gemm.k, n_total, resident ? 0 : w_bits, i_bits, o_bits,
        FusionConfig{16, 16, true, true}, cfg.operandBits);
    st.dramLoadBits = plan.loadBits;
    st.dramStoreBits = plan.storeBits;
    st.memCycles =
        divCeil(st.dramLoadBits + st.dramStoreBits, cfg.bwBitsPerCycle);

    // NFU pipeline registers see input + synapse per MAC; the
    // buffers see each off-chip transfer once, one pass over the
    // activations, and (when resident) one pass over the synapses
    // from eDRAM.
    st.rfBits = st.macs * 2 * cfg.operandBits;
    st.sramBits = st.dramLoadBits + i_bits + o_bits +
                  (resident ? w_bits : 0);

    phases = LayerPhases::fromBits(st.computeCycles, st.dramLoadBits,
                                   st.dramStoreBits, cfg.bwBitsPerCycle,
                                   0);

    EnergyModel::applyFixedPoint(st, EnergyModel::fixed16MacPj,
                                 cfg.sramBits);
    return st;
}

RunStats
DianNaoModel::run(const Network &net, const RunOptions &opts) const
{
    RunStats rs;
    rs.platform = name();
    rs.network = net.name();
    rs.batch = cfg.batch;
    rs.freqMHz = cfg.freqMHz;

    const bool resident = weightsFit(net);
    LayerWalk walk(opts.timing);
    for (const auto &layer : net.layers()) {
        if (!layer.usesMacArray())
            continue;
        LayerPhases phases;
        LayerStats st = runLayer(layer, resident, phases);
        walk.add(std::move(st), phases);
    }
    walk.finish(rs);
    return rs;
}

PlatformSpec
diannaoPlatform(DianNaoConfig cfg)
{
    PlatformConfig::Ops<DianNaoConfig> ops;
    ops.batch = [](const DianNaoConfig &c) { return c.batch; };
    ops.equals = [](const DianNaoConfig &a, const DianNaoConfig &b) {
        return a.name == b.name && a.neurons == b.neurons &&
               a.synapses == b.synapses && a.tiles == b.tiles &&
               a.freqMHz == b.freqMHz &&
               a.operandBits == b.operandBits &&
               a.edramBits == b.edramBits &&
               a.sramBits == b.sramBits &&
               a.weightsResident == b.weightsResident &&
               a.bwBitsPerCycle == b.bwBitsPerCycle &&
               a.batch == b.batch;
    };
    ops.describe = [](const DianNaoConfig &c) {
        return c.name + ": " + std::to_string(c.tiles) +
               " NFU tiles, " +
               (c.weightsResident ? "eDRAM-resident" : "streamed") +
               " synapses";
    };
    PlatformSpec spec;
    spec.name = cfg.name;
    spec.kind = "dadiannao";
    spec.config = PlatformConfig::wrap(std::move(cfg), ops);
    spec.runsQuantized = false;
    return spec;
}

void
registerDianNaoPlatform(PlatformRegistry &r)
{
    r.add({"dadiannao", "dadiannao (default) | diannao",
           "DianNao-family 16-bit NFU with eDRAM-resident synapses",
           [](const std::string &variant) {
               const std::string v = canonicalVariant(variant);
               if (v.empty() || v == "dadiannao")
                   return diannaoPlatform(DianNaoConfig::dadiannao());
               if (v == "diannao")
                   return diannaoPlatform(DianNaoConfig::diannao());
               BF_FATAL("unknown dadiannao variant '", variant,
                        "' (try dadiannao, diannao)");
           },
           [](const PlatformSpec &spec) -> std::unique_ptr<Platform> {
               DianNaoConfig cfg = spec.config.as<DianNaoConfig>();
               if (spec.batch != 0)
                   cfg.batch = spec.batch;
               return std::make_unique<DianNaoModel>(cfg);
           }});
}

} // namespace bitfusion
