/**
 * @file
 * TPU-v1-class weight-stationary matrix unit (MXU) baseline.
 *
 * The design point is a large square systolic array of 8-bit MACs
 * holding a weight tile stationary while activations stream through:
 * a k x m weight tile loads once, then n activations flow in and
 * partial sums drain after an array-depth pipeline fill. Runtime is
 * dominated by weight-tile reloads whenever the GEMM exceeds the
 * array (the TPU-v1 "big matrix or bust" effect), which is exactly
 * the contrast with Bit Fusion's fusible small-tile fabric: the MXU
 * wins on large uniform 8-bit GEMMs and strands silicon on the small
 * recurrent layers the paper's benchmark suite emphasizes.
 *
 * Registered as the "mxu" kind through the same PlatformRegistry
 * door an out-of-tree backend uses; core headers do not know it.
 */

#ifndef BITFUSION_BASELINES_MXU_H
#define BITFUSION_BASELINES_MXU_H

#include "src/core/platform.h"
#include "src/core/platform_registry.h"
#include "src/core/stats.h"
#include "src/dnn/network.h"

namespace bitfusion {

/** Configuration of the weight-stationary MXU model. */
struct MxuConfig
{
    std::string name = "mxu-v1";
    /** Array rows (reduction dimension; weights load down rows). */
    unsigned rows = 256;
    /** Array columns (output-channel dimension). */
    unsigned cols = 256;
    double freqMHz = 700.0;
    /** Operand width; the MXU is a fixed 8-bit design. */
    unsigned operandBits = 8;
    /** Unified activation/accumulator buffer in bits (24 MiB). */
    std::uint64_t sramBits = 24ULL * 1024 * 1024 * 8;
    std::uint64_t bwBitsPerCycle = 384;
    unsigned batch = 16;

    unsigned totalMacs() const { return rows * cols; }

    /** The datacenter design point (256x256, 24 MiB, 700 MHz). */
    static MxuConfig v1();
    /** An edge-scale cut (64x64, 2 MiB, narrower DRAM). */
    static MxuConfig edge();
};

/** Analytical weight-stationary simulator; the "mxu" Platform. */
class MxuModel : public Platform
{
  public:
    explicit MxuModel(const MxuConfig &cfg = MxuConfig{});

    using Platform::run;

    std::string name() const override { return cfg.name; }

    PlatformInfo describe() const override;

    /** Run a quantized (8-bit) network for one batch. */
    RunStats run(const Network &net,
                 const RunOptions &opts) const override;

    /** Weight-tile passes of one layer GEMM (exposed for tests). */
    std::uint64_t tilePasses(std::uint64_t m, std::uint64_t k) const;

    const MxuConfig &config() const { return cfg; }

  private:
    LayerStats runLayer(const Layer &layer, LayerPhases &phases) const;

    MxuConfig cfg;
};

/** MXU spec (runs the quantized model variant). */
PlatformSpec mxuPlatform(MxuConfig cfg = {});

/** Register the "mxu" kind (called by builtin()). */
void registerMxuPlatform(PlatformRegistry &r);

} // namespace bitfusion

#endif // BITFUSION_BASELINES_MXU_H
