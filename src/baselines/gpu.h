/**
 * @file
 * GPU baseline models for the Fig. 17 comparison: Tegra X2 (FP32)
 * and Titan Xp (FP32 and INT8), per the Table III parameters.
 *
 * The paper measures TensorRT on physical boards; we substitute a
 * roofline model per layer -- time is the max of the compute roof
 * (peak ops scaled by an occupancy-style utilization) and the memory
 * roof (bytes over bandwidth) plus a fixed kernel-launch overhead.
 * The roofline reproduces exactly the effects Fig. 17 turns on:
 * small recurrent models underutilize the big GPU, INT8 packs 4x
 * the math but only helps compute-bound layers.
 */

#ifndef BITFUSION_BASELINES_GPU_H
#define BITFUSION_BASELINES_GPU_H

#include <string>

#include "src/core/platform.h"
#include "src/core/platform_registry.h"
#include "src/core/stats.h"
#include "src/dnn/network.h"

namespace bitfusion {

/** Default inference batch for the GPU models (paper batch 16). */
constexpr unsigned kGpuDefaultBatch = 16;

/** One GPU platform (Table III). */
struct GpuSpec
{
    std::string name;
    /** Peak multiply-add throughput, MACs per second. */
    double peakMacsPerSec;
    /** Off-chip bandwidth, bytes per second. */
    double memBytesPerSec;
    /** Bytes per operand element (4 = FP32, 1 = INT8). */
    double bytesPerElem;
    /** Threads needed to reach peak (occupancy knee). */
    double occupancyKnee;
    /** Per-layer kernel launch overhead, seconds. */
    double launchOverheadSec;
    /** Throughput derating for non-ideal kernels. */
    double efficiency;
    /** Board power while a kernel runs, watts (energy = P x t). */
    double boardPowerW;

    /** Tegra X2, FP32 (256 cores @ 875 MHz nominal, ~58 GB/s). */
    static GpuSpec tegraX2Fp32();
    /** Titan Xp, FP32 (3584 cores @ 1531 MHz, 547 GB/s). */
    static GpuSpec titanXpFp32();
    /** Titan Xp, INT8 dp4a (4x FP32 math rate). */
    static GpuSpec titanXpInt8();
};

/** Roofline executor for a GPU spec; the "gpu" Platform. */
class GpuModel : public Platform
{
  public:
    explicit GpuModel(GpuSpec spec, unsigned batch = kGpuDefaultBatch);

    using Platform::run;

    std::string name() const override { return _spec.name; }

    PlatformInfo describe() const override;

    /** Run a network for one batch; energy is board power x time. */
    RunStats run(const Network &net,
                 const RunOptions &opts) const override;

    const GpuSpec &spec() const { return _spec; }

  private:
    GpuSpec _spec;
    unsigned batch;
};

/** GPU baseline spec (runs the regular-width model, per §V-A). */
PlatformSpec gpuPlatform(GpuSpec spec);

/** Register the "gpu" kind (called by builtin()). */
void registerGpuPlatform(PlatformRegistry &r);

} // namespace bitfusion

#endif // BITFUSION_BASELINES_GPU_H
