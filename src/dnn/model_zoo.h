/**
 * @file
 * The eight benchmark DNNs of the paper (Table II), with the
 * per-layer bitwidths of Fig. 1.
 *
 * Two variants exist per benchmark:
 *  - quantized(): the reduced-bitwidth model Bit Fusion and Stripes
 *    execute. For AlexNet and ResNet-18 these are the 2x-wide WRPN
 *    models (double channel counts), per paper §V-A.
 *  - baseline(): the regular-width model Eyeriss (16-bit) and the
 *    GPUs execute.
 *
 * Topologies follow the sources cited in the paper (BinaryNet/QNN
 * nets for Cifar-10 and SVHN, TWN nets for LeNet-5 and VGG-7, PTB
 * recurrent models for RNN/LSTM); hidden sizes for RNN/LSTM are
 * chosen so MAC counts match Table II.
 */

#ifndef BITFUSION_DNN_MODEL_ZOO_H
#define BITFUSION_DNN_MODEL_ZOO_H

#include <string>
#include <vector>

#include "src/dnn/network.h"

namespace bitfusion {
namespace zoo {

/** Quantized and regular-width variants of one benchmark. */
struct Benchmark
{
    /** Benchmark name as it appears in the paper's figures. */
    std::string name;
    /** Reduced-bitwidth model for Bit Fusion / Stripes. */
    Network quantized;
    /** Regular model for Eyeriss / GPUs (treated as 16-bit/FP). */
    Network baseline;
    /** Paper Table II "Multiply-Add Operations" in Mops. */
    double paperMops;
    /** Paper Table II "Model Weights" in MBytes. */
    double paperWeightMB;
};

Benchmark alexnet();
Benchmark cifar10();
Benchmark lstm();
Benchmark lenet5();
Benchmark resnet18();
Benchmark rnn();
Benchmark svhn();
Benchmark vgg7();

/** All eight benchmarks in the paper's figure order. */
std::vector<Benchmark> all();

// Bitwidth configurations used by the zoo (activations unsigned
// post-ReLU, weights signed except binary).

/** 8-bit activations x 8-bit weights. */
FusionConfig cfg8x8();
/** 4-bit activations x binary weights. */
FusionConfig cfg4x1();
/** Binary activations x binary weights. */
FusionConfig cfg1x1();
/** 2-bit activations x ternary weights. */
FusionConfig cfg2x2();
/** 4-bit activations x 4-bit weights. */
FusionConfig cfg4x4();
/** 16-bit x 16-bit (baseline precision). */
FusionConfig cfg16x16();

} // namespace zoo
} // namespace bitfusion

#endif // BITFUSION_DNN_MODEL_ZOO_H
