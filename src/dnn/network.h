/**
 * @file
 * Whole-network container plus the bitwidth-profile accounting used
 * for the Fig. 1 reproduction.
 */

#ifndef BITFUSION_DNN_NETWORK_H
#define BITFUSION_DNN_NETWORK_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/dnn/layer.h"

namespace bitfusion {

/** A DNN: an ordered list of layers plus bookkeeping. */
class Network
{
  public:
    Network() = default;
    Network(std::string name, std::vector<Layer> layers);

    const std::string &name() const { return _name; }
    const std::vector<Layer> &layers() const { return _layers; }

    /** Append a layer (chainable builder style). */
    Network &add(Layer layer);

    /** Total multiply-adds per input sample. */
    std::uint64_t totalMacs() const;
    /** Total non-MAC ops per input sample. */
    std::uint64_t totalAuxOps() const;
    /** Total parameters. */
    std::uint64_t totalWeights() const;
    /** Total weight footprint in bits at each layer's bitwidth. */
    std::uint64_t totalWeightBits() const;

    /**
     * Fraction of all ops that are multiply-adds (the >99% column of
     * the Fig. 1 table).
     */
    double macFraction() const;

    /**
     * Fraction of multiply-adds per activation/weight bitwidth pair,
     * keyed by the "aB/wB" string (Fig. 1a).
     */
    std::map<std::string, double> macBitwidthProfile() const;

    /**
     * Fraction of weights per weight bitwidth (Fig. 1b).
     */
    std::map<unsigned, double> weightBitwidthProfile() const;

  private:
    std::string _name;
    std::vector<Layer> _layers;
};

} // namespace bitfusion

#endif // BITFUSION_DNN_NETWORK_H
