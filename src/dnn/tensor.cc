#include "src/dnn/tensor.h"

#include "src/common/logging.h"

namespace bitfusion {

Tensor::Tensor(unsigned c, unsigned h, unsigned w)
    : _c(c), _h(h), _w(w),
      data(static_cast<std::size_t>(c) * h * w, 0)
{
}

Tensor::Tensor(std::size_t n) : _c(static_cast<unsigned>(n)), _h(1), _w(1),
                                data(n, 0)
{
}

std::int64_t &
Tensor::at(unsigned c, unsigned y, unsigned x)
{
    BF_ASSERT(c < _c && y < _h && x < _w, "tensor index out of range");
    return data[(static_cast<std::size_t>(c) * _h + y) * _w + x];
}

std::int64_t
Tensor::at(unsigned c, unsigned y, unsigned x) const
{
    BF_ASSERT(c < _c && y < _h && x < _w, "tensor index out of range");
    return data[(static_cast<std::size_t>(c) * _h + y) * _w + x];
}

void
Tensor::fillRandom(Prng &prng, unsigned bits, bool is_signed)
{
    for (auto &v : data)
        v = is_signed ? prng.nextSigned(bits) : prng.nextUnsigned(bits);
}

} // namespace bitfusion
