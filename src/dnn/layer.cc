#include "src/dnn/layer.h"

#include "src/common/logging.h"

namespace bitfusion {

std::string
toString(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv: return "conv";
      case LayerKind::FullyConnected: return "fc";
      case LayerKind::Pool: return "pool";
      case LayerKind::Activation: return "act";
      case LayerKind::Rnn: return "rnn";
      case LayerKind::Lstm: return "lstm";
    }
    BF_PANIC("unknown layer kind");
}

unsigned
Layer::outH() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Pool:
        BF_ASSERT(inH + 2 * pad >= kH, "layer ", name, ": kernel taller ",
                  "than padded input");
        return (inH + 2 * pad - kH) / stride + 1;
      case LayerKind::Activation:
        return inH;
      default:
        return 1;
    }
}

unsigned
Layer::outW() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Pool:
        BF_ASSERT(inW + 2 * pad >= kW, "layer ", name, ": kernel wider ",
                  "than padded input");
        return (inW + 2 * pad - kW) / stride + 1;
      case LayerKind::Activation:
        return inW;
      default:
        return 1;
    }
}

std::uint64_t
Layer::macsPerSample() const
{
    switch (kind) {
      case LayerKind::Conv:
        return static_cast<std::uint64_t>(outC) * outH() * outW() *
               (inC / groups) * kH * kW;
      case LayerKind::FullyConnected:
        return static_cast<std::uint64_t>(inC) * outC;
      case LayerKind::Rnn:
        // h' = f(Wx x + Wh h): two dense products into the hidden
        // state, one timestep.
        return static_cast<std::uint64_t>(inC + outC) * outC;
      case LayerKind::Lstm:
        // Four gates, each (Wx x + Wh h).
        return 4ULL * (inC + outC) * outC;
      case LayerKind::Pool:
      case LayerKind::Activation:
        return 0;
    }
    BF_PANIC("unknown layer kind");
}

std::uint64_t
Layer::auxOpsPerSample() const
{
    switch (kind) {
      case LayerKind::Pool:
        return static_cast<std::uint64_t>(inC) * outH() * outW() * kH * kW;
      case LayerKind::Activation:
        return static_cast<std::uint64_t>(inC) * inH * inW;
      case LayerKind::Rnn:
        return outC;
      case LayerKind::Lstm:
        // Gate nonlinearities plus elementwise cell updates.
        return 7ULL * outC;
      default:
        return 0;
    }
}

std::uint64_t
Layer::weightCount() const
{
    switch (kind) {
      case LayerKind::Conv:
        return static_cast<std::uint64_t>(outC) * (inC / groups) * kH * kW;
      case LayerKind::FullyConnected:
        return static_cast<std::uint64_t>(inC) * outC;
      case LayerKind::Rnn:
        return static_cast<std::uint64_t>(inC + outC) * outC;
      case LayerKind::Lstm:
        return 4ULL * (inC + outC) * outC;
      case LayerKind::Pool:
      case LayerKind::Activation:
        return 0;
    }
    BF_PANIC("unknown layer kind");
}

std::uint64_t
Layer::inputCount() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Pool:
      case LayerKind::Activation:
        return static_cast<std::uint64_t>(inC) * inH * inW;
      case LayerKind::FullyConnected:
        return inC;
      case LayerKind::Rnn:
      case LayerKind::Lstm:
        // Input features plus the recurrent hidden state.
        return static_cast<std::uint64_t>(inC) + outC;
    }
    BF_PANIC("unknown layer kind");
}

std::uint64_t
Layer::outputCount() const
{
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::Pool:
        return static_cast<std::uint64_t>(outC) * outH() * outW();
      case LayerKind::Activation:
        return static_cast<std::uint64_t>(inC) * inH * inW;
      case LayerKind::FullyConnected:
      case LayerKind::Rnn:
        return outC;
      case LayerKind::Lstm:
        return 2ULL * outC; // hidden state and cell state
    }
    BF_PANIC("unknown layer kind");
}

std::uint64_t
Layer::weightBits() const
{
    return weightCount() * bits.wBits;
}

bool
Layer::usesMacArray() const
{
    return kind == LayerKind::Conv || kind == LayerKind::FullyConnected ||
           kind == LayerKind::Rnn || kind == LayerKind::Lstm;
}

Layer::GemmShape
Layer::gemmShape() const
{
    switch (kind) {
      case LayerKind::Conv:
        return {outC, static_cast<std::uint64_t>(inC / groups) * kH * kW,
                static_cast<std::uint64_t>(outH()) * outW()};
      case LayerKind::FullyConnected:
        return {outC, inC, 1};
      case LayerKind::Rnn:
        return {outC, static_cast<std::uint64_t>(inC) + outC, 1};
      case LayerKind::Lstm:
        return {4ULL * outC, static_cast<std::uint64_t>(inC) + outC, 1};
      case LayerKind::Pool:
      case LayerKind::Activation:
        return {0, 0, 0};
    }
    BF_PANIC("unknown layer kind");
}

Layer
Layer::conv(std::string name, unsigned in_c, unsigned in_h, unsigned in_w,
            unsigned out_c, unsigned k, unsigned stride, unsigned pad,
            FusionConfig bits, unsigned groups)
{
    BF_ASSERT(groups >= 1 && in_c % groups == 0 && out_c % groups == 0,
              "conv ", name, ": channels not divisible by groups");
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::Conv;
    l.bits = bits;
    l.inC = in_c;
    l.inH = in_h;
    l.inW = in_w;
    l.outC = out_c;
    l.kH = l.kW = k;
    l.stride = stride;
    l.pad = pad;
    l.groups = groups;
    return l;
}

Layer
Layer::fc(std::string name, unsigned in_c, unsigned out_c, FusionConfig bits)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::FullyConnected;
    l.bits = bits;
    l.inC = in_c;
    l.outC = out_c;
    return l;
}

Layer
Layer::pool(std::string name, unsigned c, unsigned in_h, unsigned in_w,
            unsigned k, unsigned stride)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::Pool;
    l.inC = c;
    l.outC = c;
    l.inH = in_h;
    l.inW = in_w;
    l.kH = l.kW = k;
    l.stride = stride;
    return l;
}

Layer
Layer::activation(std::string name, unsigned c, unsigned h, unsigned w)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::Activation;
    l.inC = c;
    l.outC = c;
    l.inH = h;
    l.inW = w;
    return l;
}

Layer
Layer::rnn(std::string name, unsigned in_c, unsigned hidden,
           FusionConfig bits)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::Rnn;
    l.bits = bits;
    l.inC = in_c;
    l.outC = hidden;
    return l;
}

Layer
Layer::lstm(std::string name, unsigned in_c, unsigned hidden,
            FusionConfig bits)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::Lstm;
    l.bits = bits;
    l.inC = in_c;
    l.outC = hidden;
    return l;
}

} // namespace bitfusion
