#include "src/dnn/reference.h"

#include <algorithm>

#include "src/common/bitutils.h"
#include "src/common/logging.h"

namespace bitfusion {

Tensor
Reference::conv(const Layer &layer, const Tensor &input,
                const Tensor &weights)
{
    BF_ASSERT(layer.kind == LayerKind::Conv);
    BF_ASSERT(input.c() == layer.inC && input.h() == layer.inH &&
              input.w() == layer.inW, "conv input shape mismatch");
    BF_ASSERT(weights.size() == layer.weightCount(),
              "conv weight count mismatch");

    const unsigned out_h = layer.outH();
    const unsigned out_w = layer.outW();
    const unsigned ic_per_group = layer.inC / layer.groups;
    const unsigned oc_per_group = layer.outC / layer.groups;

    Tensor out(layer.outC, out_h, out_w);
    for (unsigned oc = 0; oc < layer.outC; ++oc) {
        const unsigned g = oc / oc_per_group;
        for (unsigned oy = 0; oy < out_h; ++oy) {
            for (unsigned ox = 0; ox < out_w; ++ox) {
                std::int64_t acc = 0;
                for (unsigned ic = 0; ic < ic_per_group; ++ic) {
                    for (unsigned ky = 0; ky < layer.kH; ++ky) {
                        const int iy = static_cast<int>(oy * layer.stride +
                                                        ky) -
                                       static_cast<int>(layer.pad);
                        if (iy < 0 || iy >= static_cast<int>(layer.inH))
                            continue;
                        for (unsigned kx = 0; kx < layer.kW; ++kx) {
                            const int ix =
                                static_cast<int>(ox * layer.stride + kx) -
                                static_cast<int>(layer.pad);
                            if (ix < 0 || ix >= static_cast<int>(layer.inW))
                                continue;
                            const std::size_t widx =
                                ((static_cast<std::size_t>(oc) *
                                      ic_per_group +
                                  ic) * layer.kH + ky) * layer.kW + kx;
                            acc += input.at(g * ic_per_group + ic,
                                            static_cast<unsigned>(iy),
                                            static_cast<unsigned>(ix)) *
                                   weights[widx];
                        }
                    }
                }
                out.at(oc, oy, ox) = acc;
            }
        }
    }
    return out;
}

Tensor
Reference::fullyConnected(const Layer &layer, const Tensor &input,
                          const Tensor &weights)
{
    BF_ASSERT(layer.kind == LayerKind::FullyConnected);
    BF_ASSERT(input.size() == layer.inC, "fc input size mismatch");
    BF_ASSERT(weights.size() == layer.weightCount(),
              "fc weight count mismatch");

    Tensor out(static_cast<std::size_t>(layer.outC));
    for (unsigned o = 0; o < layer.outC; ++o) {
        std::int64_t acc = 0;
        for (unsigned i = 0; i < layer.inC; ++i)
            acc += input[i] *
                   weights[static_cast<std::size_t>(o) * layer.inC + i];
        out[o] = acc;
    }
    return out;
}

Tensor
Reference::maxPool(const Layer &layer, const Tensor &input)
{
    BF_ASSERT(layer.kind == LayerKind::Pool);
    const unsigned out_h = layer.outH();
    const unsigned out_w = layer.outW();

    Tensor out(layer.inC, out_h, out_w);
    for (unsigned c = 0; c < layer.inC; ++c) {
        for (unsigned oy = 0; oy < out_h; ++oy) {
            for (unsigned ox = 0; ox < out_w; ++ox) {
                std::int64_t best = INT64_MIN;
                for (unsigned ky = 0; ky < layer.kH; ++ky) {
                    for (unsigned kx = 0; kx < layer.kW; ++kx) {
                        const unsigned iy = oy * layer.stride + ky;
                        const unsigned ix = ox * layer.stride + kx;
                        if (iy >= layer.inH || ix >= layer.inW)
                            continue;
                        best = std::max(best, input.at(c, iy, ix));
                    }
                }
                out.at(c, oy, ox) = best;
            }
        }
    }
    return out;
}

Tensor
Reference::relu(const Tensor &input)
{
    Tensor out = input;
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = std::max<std::int64_t>(out[i], 0);
    return out;
}

Tensor
Reference::requantize(const Tensor &input, unsigned bits, unsigned shift)
{
    Tensor out = input;
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = clampUnsigned(out[i] >> shift, bits);
    return out;
}

std::int64_t
Reference::hardSigmoid(std::int64_t x, unsigned frac_bits)
{
    const std::int64_t one = std::int64_t{1} << frac_bits;
    const std::int64_t half = one / 2;
    const std::int64_t y = (x >> 2) + half;
    return std::max<std::int64_t>(0, std::min(one, y));
}

std::int64_t
Reference::hardTanh(std::int64_t x, unsigned frac_bits)
{
    const std::int64_t one = std::int64_t{1} << frac_bits;
    return std::max(-one, std::min(one, x));
}

Tensor
Reference::lstmCell(const Layer &layer, const Tensor &x, const Tensor &h,
                    const Tensor &c, const Tensor &weights,
                    unsigned frac_bits)
{
    BF_ASSERT(layer.kind == LayerKind::Lstm);
    const unsigned hidden = layer.outC;
    const unsigned in_c = layer.inC;
    BF_ASSERT(x.size() == in_c && h.size() == hidden &&
              c.size() == hidden, "lstm state size mismatch");
    BF_ASSERT(weights.size() == layer.weightCount(),
              "lstm weight count mismatch");

    const std::size_t row = in_c + hidden;
    auto gate_z = [&](unsigned gate, unsigned j) {
        std::int64_t acc = 0;
        const std::size_t base =
            (static_cast<std::size_t>(gate) * hidden + j) * row;
        for (unsigned i = 0; i < in_c; ++i)
            acc += x[i] * weights[base + i];
        for (unsigned k = 0; k < hidden; ++k)
            acc += h[k] * weights[base + in_c + k];
        // The matrix product accumulates at Q(2*frac); rescale back.
        return acc >> frac_bits;
    };

    Tensor out(static_cast<std::size_t>(2) * hidden);
    for (unsigned j = 0; j < hidden; ++j) {
        const std::int64_t i_g = hardSigmoid(gate_z(0, j), frac_bits);
        const std::int64_t f_g = hardSigmoid(gate_z(1, j), frac_bits);
        const std::int64_t g_g = hardTanh(gate_z(2, j), frac_bits);
        const std::int64_t o_g = hardSigmoid(gate_z(3, j), frac_bits);
        const std::int64_t c_new =
            ((f_g * c[j]) >> frac_bits) + ((i_g * g_g) >> frac_bits);
        const std::int64_t h_new =
            (o_g * hardTanh(c_new, frac_bits)) >> frac_bits;
        out[j] = h_new;
        out[hidden + j] = c_new;
    }
    return out;
}

Tensor
Reference::rnnCell(const Layer &layer, const Tensor &x, const Tensor &h,
                   const Tensor &weights)
{
    BF_ASSERT(layer.kind == LayerKind::Rnn);
    BF_ASSERT(x.size() == layer.inC && h.size() == layer.outC,
              "rnn input/state size mismatch");
    BF_ASSERT(weights.size() == layer.weightCount(),
              "rnn weight count mismatch");

    const std::size_t wx_size =
        static_cast<std::size_t>(layer.outC) * layer.inC;
    Tensor out(static_cast<std::size_t>(layer.outC));
    for (unsigned j = 0; j < layer.outC; ++j) {
        std::int64_t acc = 0;
        for (unsigned i = 0; i < layer.inC; ++i)
            acc += x[i] *
                   weights[static_cast<std::size_t>(j) * layer.inC + i];
        for (unsigned k = 0; k < layer.outC; ++k)
            acc += h[k] *
                   weights[wx_size +
                           static_cast<std::size_t>(j) * layer.outC + k];
        out[j] = std::max<std::int64_t>(acc, 0);
    }
    return out;
}

} // namespace bitfusion
