/**
 * @file
 * Layer descriptors for the DNN substrate.
 *
 * A layer carries its shape, kind, and the operand bitwidths the
 * quantized model uses for it (paper Fig. 1: bitwidths vary per layer
 * and per network). All op/footprint accounting used by the
 * simulator, the baselines, and the Table II bench lives here.
 */

#ifndef BITFUSION_DNN_LAYER_H
#define BITFUSION_DNN_LAYER_H

#include <cstdint>
#include <string>

#include "src/arch/fusion_config.h"

namespace bitfusion {

/** Kinds of layers the accelerator supports (paper §II, §IV). */
enum class LayerKind
{
    Conv,           ///< 2-D convolution.
    FullyConnected, ///< Dense matrix-vector (matrix-matrix batched).
    Pool,           ///< Max/average pooling (pooling unit).
    Activation,     ///< Elementwise nonlinearity (activation unit).
    Rnn,            ///< Vanilla recurrent cell, one timestep.
    Lstm,           ///< LSTM cell (4 gates), one timestep.
};

/** Printable name of a layer kind. */
std::string toString(LayerKind kind);

/**
 * One layer of a network.
 *
 * Shape conventions:
 *  - Conv: input (inC, inH, inW), kernels (outC, inC, kH, kW), output
 *    (outC, outH, outW) with outH/outW derived from stride/pad.
 *  - FullyConnected: inC inputs, outC outputs (H = W = 1).
 *  - Pool/Activation: channel/spatial dims of their input.
 *  - Rnn/Lstm: inC input features, outC hidden units, one timestep.
 */
struct Layer
{
    std::string name;
    LayerKind kind = LayerKind::Conv;
    /** Operand bitwidths for this layer. */
    FusionConfig bits;

    unsigned inC = 1, inH = 1, inW = 1;
    unsigned outC = 1;
    unsigned kH = 1, kW = 1;
    unsigned stride = 1, pad = 0;
    /** Conv groups (AlexNet's grouped convolutions). */
    unsigned groups = 1;

    /** Derived output height. */
    unsigned outH() const;
    /** Derived output width. */
    unsigned outW() const;

    /** Multiply-add count for one input sample. */
    std::uint64_t macsPerSample() const;
    /** Non-MAC ops (pool compares, activation evaluations). */
    std::uint64_t auxOpsPerSample() const;
    /** Weight (parameter) count. */
    std::uint64_t weightCount() const;
    /** Input activation element count per sample. */
    std::uint64_t inputCount() const;
    /** Output activation element count per sample. */
    std::uint64_t outputCount() const;
    /** Weight footprint in bits at this layer's weight bitwidth. */
    std::uint64_t weightBits() const;

    /** True for layers executed on the systolic array. */
    bool usesMacArray() const;

    /**
     * GEMM view of the layer as mapped onto the systolic array:
     * M = independent outputs, K = reduction length, N = spatial
     * positions per sample that share weights.
     */
    struct GemmShape
    {
        std::uint64_t m;
        std::uint64_t k;
        std::uint64_t n;
    };
    GemmShape gemmShape() const;

    // --- Convenience constructors -------------------------------

    static Layer conv(std::string name, unsigned in_c, unsigned in_h,
                      unsigned in_w, unsigned out_c, unsigned k,
                      unsigned stride, unsigned pad, FusionConfig bits,
                      unsigned groups = 1);
    static Layer fc(std::string name, unsigned in_c, unsigned out_c,
                    FusionConfig bits);
    static Layer pool(std::string name, unsigned c, unsigned in_h,
                      unsigned in_w, unsigned k, unsigned stride);
    static Layer activation(std::string name, unsigned c, unsigned h,
                            unsigned w);
    static Layer rnn(std::string name, unsigned in_c, unsigned hidden,
                     FusionConfig bits);
    static Layer lstm(std::string name, unsigned in_c, unsigned hidden,
                      FusionConfig bits);
};

} // namespace bitfusion

#endif // BITFUSION_DNN_LAYER_H
