#include "src/dnn/model_zoo.h"

namespace bitfusion {
namespace zoo {

FusionConfig
cfg8x8()
{
    return FusionConfig{8, 8, false, true};
}

FusionConfig
cfg4x1()
{
    return FusionConfig{4, 1, false, false};
}

FusionConfig
cfg1x1()
{
    return FusionConfig{1, 1, false, false};
}

FusionConfig
cfg2x2()
{
    return FusionConfig{2, 2, false, true};
}

FusionConfig
cfg4x4()
{
    return FusionConfig{4, 4, false, true};
}

FusionConfig
cfg16x16()
{
    return FusionConfig{16, 16, true, true};
}

namespace {

/**
 * AlexNet (Krizhevsky one-weird-trick single-tower layout with the
 * original grouped conv2/4/5). @p width scales channel counts
 * (2x-wide WRPN model for Bit Fusion); the ImageNet input (3ch) and
 * the 1000-way classifier stay fixed.
 */
Network
buildAlexnet(unsigned width, FusionConfig first, FusionConfig mid,
             FusionConfig fc, FusionConfig last)
{
    const unsigned w = width;
    Network net("AlexNet", {});
    net.add(Layer::conv("conv1", 3, 227, 227, 96 * w, 11, 4, 0, first));
    net.add(Layer::activation("relu1", 96 * w, 55, 55));
    net.add(Layer::pool("pool1", 96 * w, 55, 55, 3, 2));
    net.add(Layer::conv("conv2", 96 * w, 27, 27, 256 * w, 5, 1, 2, mid, 2));
    net.add(Layer::activation("relu2", 256 * w, 27, 27));
    net.add(Layer::pool("pool2", 256 * w, 27, 27, 3, 2));
    net.add(Layer::conv("conv3", 256 * w, 13, 13, 384 * w, 3, 1, 1, mid));
    net.add(Layer::activation("relu3", 384 * w, 13, 13));
    net.add(Layer::conv("conv4", 384 * w, 13, 13, 384 * w, 3, 1, 1, mid, 2));
    net.add(Layer::activation("relu4", 384 * w, 13, 13));
    net.add(Layer::conv("conv5", 384 * w, 13, 13, 256 * w, 3, 1, 1, mid, 2));
    net.add(Layer::activation("relu5", 256 * w, 13, 13));
    net.add(Layer::pool("pool5", 256 * w, 13, 13, 3, 2));
    net.add(Layer::fc("fc6", 256 * w * 6 * 6, 4096 * w, fc));
    net.add(Layer::activation("relu6", 4096 * w, 1, 1));
    net.add(Layer::fc("fc7", 4096 * w, 4096 * w, fc));
    net.add(Layer::activation("relu7", 4096 * w, 1, 1));
    net.add(Layer::fc("fc8", 4096 * w, 1000, last));
    return net;
}

/**
 * The BinaryNet/QNN CIFAR-10 ConvNet: three double-conv stages of
 * width @p c1, 2*c1, 4*c1 plus two 1024-unit FC layers. Used (with
 * different widths) for both the Cifar-10 and SVHN benchmarks.
 */
Network
buildQnnConvnet(const std::string &name, unsigned c1, unsigned fc_units,
                FusionConfig first, FusionConfig bin, FusionConfig last)
{
    const unsigned c2 = 2 * c1, c3 = 4 * c1;
    Network net(name, {});
    net.add(Layer::conv("conv1", 3, 32, 32, c1, 3, 1, 1, first));
    net.add(Layer::activation("act1", c1, 32, 32));
    net.add(Layer::conv("conv2", c1, 32, 32, c1, 3, 1, 1, bin));
    net.add(Layer::activation("act2", c1, 32, 32));
    net.add(Layer::pool("pool1", c1, 32, 32, 2, 2));
    net.add(Layer::conv("conv3", c1, 16, 16, c2, 3, 1, 1, bin));
    net.add(Layer::activation("act3", c2, 16, 16));
    net.add(Layer::conv("conv4", c2, 16, 16, c2, 3, 1, 1, bin));
    net.add(Layer::activation("act4", c2, 16, 16));
    net.add(Layer::pool("pool2", c2, 16, 16, 2, 2));
    net.add(Layer::conv("conv5", c2, 8, 8, c3, 3, 1, 1, bin));
    net.add(Layer::activation("act5", c3, 8, 8));
    net.add(Layer::conv("conv6", c3, 8, 8, c3, 3, 1, 1, bin));
    net.add(Layer::activation("act6", c3, 8, 8));
    net.add(Layer::pool("pool3", c3, 8, 8, 2, 2));
    net.add(Layer::fc("fc1", c3 * 4 * 4, fc_units, bin));
    net.add(Layer::activation("act7", fc_units, 1, 1));
    net.add(Layer::fc("fc2", fc_units, fc_units, bin));
    net.add(Layer::activation("act8", fc_units, 1, 1));
    net.add(Layer::fc("fc3", fc_units, 10, last));
    return net;
}

/** One ResNet basic block (two 3x3 convs; optional downsample). */
void
addBasicBlock(Network &net, const std::string &prefix, unsigned in_c,
              unsigned out_c, unsigned in_hw, unsigned stride,
              FusionConfig bits)
{
    const unsigned out_hw = in_hw / stride;
    net.add(Layer::conv(prefix + "_conv1", in_c, in_hw, in_hw, out_c, 3,
                        stride, 1, bits));
    net.add(Layer::activation(prefix + "_relu1", out_c, out_hw, out_hw));
    net.add(Layer::conv(prefix + "_conv2", out_c, out_hw, out_hw, out_c, 3,
                        1, 1, bits));
    if (in_c != out_c || stride != 1) {
        net.add(Layer::conv(prefix + "_down", in_c, in_hw, in_hw, out_c, 1,
                            stride, 0, bits));
    }
    net.add(Layer::activation(prefix + "_relu2", out_c, out_hw, out_hw));
}

/** ResNet-18 at channel multiplier @p width. */
Network
buildResnet18(unsigned width, FusionConfig first, FusionConfig body,
              FusionConfig last)
{
    const unsigned w = width;
    Network net("ResNet-18", {});
    net.add(Layer::conv("conv1", 3, 224, 224, 64 * w, 7, 2, 3, first));
    net.add(Layer::activation("relu1", 64 * w, 112, 112));
    net.add(Layer::pool("pool1", 64 * w, 112, 112, 2, 2));
    addBasicBlock(net, "s1b1", 64 * w, 64 * w, 56, 1, body);
    addBasicBlock(net, "s1b2", 64 * w, 64 * w, 56, 1, body);
    addBasicBlock(net, "s2b1", 64 * w, 128 * w, 56, 2, body);
    addBasicBlock(net, "s2b2", 128 * w, 128 * w, 28, 1, body);
    addBasicBlock(net, "s3b1", 128 * w, 256 * w, 28, 2, body);
    addBasicBlock(net, "s3b2", 256 * w, 256 * w, 14, 1, body);
    addBasicBlock(net, "s4b1", 256 * w, 512 * w, 14, 2, body);
    addBasicBlock(net, "s4b2", 512 * w, 512 * w, 7, 1, body);
    net.add(Layer::pool("avgpool", 512 * w, 7, 7, 7, 7));
    net.add(Layer::fc("fc", 512 * w, 1000, last));
    return net;
}

/** TWN LeNet-5 (32/64 conv filters, 1024-unit FC). */
Network
buildLenet5(FusionConfig bits)
{
    Network net("LeNet-5", {});
    net.add(Layer::conv("conv1", 1, 28, 28, 32, 5, 1, 2, bits));
    net.add(Layer::activation("act1", 32, 28, 28));
    net.add(Layer::pool("pool1", 32, 28, 28, 2, 2));
    net.add(Layer::conv("conv2", 32, 14, 14, 64, 5, 1, 2, bits));
    net.add(Layer::activation("act2", 64, 14, 14));
    net.add(Layer::pool("pool2", 64, 14, 14, 2, 2));
    net.add(Layer::fc("fc1", 64 * 7 * 7, 1024, bits));
    net.add(Layer::activation("act3", 1024, 1, 1));
    net.add(Layer::fc("fc2", 1024, 10, bits));
    return net;
}

/** TWN VGG-7 on CIFAR-10 (96/192/384 double-conv stages). */
Network
buildVgg7(FusionConfig first, FusionConfig body)
{
    Network net("VGG-7", {});
    net.add(Layer::conv("conv1", 3, 32, 32, 96, 3, 1, 1, first));
    net.add(Layer::activation("act1", 96, 32, 32));
    net.add(Layer::conv("conv2", 96, 32, 32, 96, 3, 1, 1, body));
    net.add(Layer::activation("act2", 96, 32, 32));
    net.add(Layer::pool("pool1", 96, 32, 32, 2, 2));
    net.add(Layer::conv("conv3", 96, 16, 16, 192, 3, 1, 1, body));
    net.add(Layer::activation("act3", 192, 16, 16));
    net.add(Layer::conv("conv4", 192, 16, 16, 192, 3, 1, 1, body));
    net.add(Layer::activation("act4", 192, 16, 16));
    net.add(Layer::pool("pool2", 192, 16, 16, 2, 2));
    net.add(Layer::conv("conv5", 192, 8, 8, 384, 3, 1, 1, body));
    net.add(Layer::activation("act5", 384, 8, 8));
    net.add(Layer::conv("conv6", 384, 8, 8, 384, 3, 1, 1, body));
    net.add(Layer::activation("act6", 384, 8, 8));
    net.add(Layer::pool("pool3", 384, 8, 8, 2, 2));
    net.add(Layer::fc("fc1", 384 * 4 * 4, 1024, body));
    net.add(Layer::activation("act7", 1024, 1, 1));
    net.add(Layer::fc("fc2", 1024, 10, body));
    return net;
}

/** PTB vanilla RNN language model, one timestep. */
Network
buildRnn(FusionConfig bits)
{
    Network net("RNN", {});
    // Hidden size chosen so one timestep is ~17M MACs (Table II).
    net.add(Layer::rnn("rnn", 2915, 2915, bits));
    return net;
}

/** PTB LSTM language model, one timestep. */
Network
buildLstm(FusionConfig bits)
{
    Network net("LSTM", {});
    // 8*h^2 MACs per step ~= 13M (Table II) -> h = 1275.
    net.add(Layer::lstm("lstm", 1275, 1275, bits));
    return net;
}

} // namespace

Benchmark
alexnet()
{
    return Benchmark{
        "AlexNet",
        buildAlexnet(2, cfg8x8(), cfg4x1(), cfg4x1(), cfg8x8()),
        buildAlexnet(1, cfg16x16(), cfg16x16(), cfg16x16(), cfg16x16()),
        2678.0, 116.3};
}

Benchmark
cifar10()
{
    return Benchmark{
        "Cifar-10",
        buildQnnConvnet("Cifar-10", 128, 1024, cfg8x8(), cfg1x1(),
                        cfg8x8()),
        buildQnnConvnet("Cifar-10", 128, 1024, cfg16x16(), cfg16x16(),
                        cfg16x16()),
        617.0, 3.3};
}

Benchmark
lstm()
{
    return Benchmark{"LSTM", buildLstm(cfg4x4()), buildLstm(cfg16x16()),
                     13.0, 6.2};
}

Benchmark
lenet5()
{
    return Benchmark{"LeNet-5", buildLenet5(cfg2x2()),
                     buildLenet5(cfg16x16()), 16.0, 0.5};
}

Benchmark
resnet18()
{
    return Benchmark{
        "ResNet-18",
        buildResnet18(2, cfg8x8(), cfg2x2(), cfg8x8()),
        buildResnet18(1, cfg16x16(), cfg16x16(), cfg16x16()),
        4269.0, 13.0};
}

Benchmark
rnn()
{
    return Benchmark{"RNN", buildRnn(cfg4x4()), buildRnn(cfg16x16()),
                     17.0, 8.0};
}

Benchmark
svhn()
{
    return Benchmark{
        "SVHN",
        buildQnnConvnet("SVHN", 64, 1024, cfg8x8(), cfg1x1(), cfg8x8()),
        buildQnnConvnet("SVHN", 64, 1024, cfg16x16(), cfg16x16(),
                        cfg16x16()),
        158.0, 0.8};
}

Benchmark
vgg7()
{
    return Benchmark{"VGG-7", buildVgg7(cfg8x8(), cfg2x2()),
                     buildVgg7(cfg16x16(), cfg16x16()), 317.0, 2.7};
}

std::vector<Benchmark>
all()
{
    return {alexnet(), cifar10(), lstm(),  lenet5(),
            resnet18(), rnn(),    svhn(),  vgg7()};
}

} // namespace zoo
} // namespace bitfusion
