/**
 * @file
 * Functional fixed-point reference executor.
 *
 * This is the golden model: plain nested-loop integer execution of
 * each layer kind. The ISA interpreter's output must match it
 * bit-exactly, which ties the whole compile-execute path back to
 * textbook semantics.
 */

#ifndef BITFUSION_DNN_REFERENCE_H
#define BITFUSION_DNN_REFERENCE_H

#include "src/dnn/layer.h"
#include "src/dnn/tensor.h"

namespace bitfusion {

/** Nested-loop reference implementations of the layer kinds. */
class Reference
{
  public:
    /**
     * Convolution: input (inC, inH, inW), weights flat
     * (outC, inC/groups, kH, kW), zero padding, no bias.
     */
    static Tensor conv(const Layer &layer, const Tensor &input,
                       const Tensor &weights);

    /** Fully connected: out[o] = sum_i in[i] * w[o*inC + i]. */
    static Tensor fullyConnected(const Layer &layer, const Tensor &input,
                                 const Tensor &weights);

    /** Max pooling. */
    static Tensor maxPool(const Layer &layer, const Tensor &input);

    /** ReLU activation. */
    static Tensor relu(const Tensor &input);

    /**
     * Requantize to an unsigned @p bits value with a right shift:
     * v -> clamp(v >> shift, 0, 2^bits - 1). The simple static
     * scaling quantized inference uses between layers.
     */
    static Tensor requantize(const Tensor &input, unsigned bits,
                             unsigned shift);

    /**
     * Vanilla RNN cell, one timestep:
     * h'[j] = relu(sum_i x[i]*Wx[j,i] + sum_k h[k]*Wh[j,k]).
     * Weights are flat: Wx (hidden x inC) then Wh (hidden x hidden).
     */
    static Tensor rnnCell(const Layer &layer, const Tensor &x,
                          const Tensor &h, const Tensor &weights);

    /**
     * Fixed-point hard sigmoid in Q(frac_bits):
     * y = clamp(x/4 + 0.5, 0, 1). The piecewise-linear gate
     * nonlinearity quantized recurrent models use.
     */
    static std::int64_t hardSigmoid(std::int64_t x, unsigned frac_bits);

    /** Fixed-point hard tanh: y = clamp(x, -1, 1) in Q(frac_bits). */
    static std::int64_t hardTanh(std::int64_t x, unsigned frac_bits);

    /**
     * LSTM cell, one timestep, fixed point Q(frac_bits).
     *
     * Weights are flat gate blocks [Wi | Wf | Wg | Wo], each of shape
     * (hidden x (inC + hidden)) over the concatenated [x; h] input
     * (the layout the compiler's matrix block produces). The state
     * tensors c and h update in place semantics:
     *   i = hsig(zi), f = hsig(zf), g = htanh(zg), o = hsig(zo)
     *   c' = f*c + i*g ;  h' = o * htanh(c')
     * with Q-format rescaling after every product.
     *
     * @return Tensor of 2*hidden elements: h' followed by c'.
     */
    static Tensor lstmCell(const Layer &layer, const Tensor &x,
                           const Tensor &h, const Tensor &c,
                           const Tensor &weights, unsigned frac_bits);

  private:
    Reference() = default;
};

} // namespace bitfusion

#endif // BITFUSION_DNN_REFERENCE_H
