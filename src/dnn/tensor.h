/**
 * @file
 * Minimal integer tensor used by the functional reference executor
 * and the ISA interpreter. Values are stored as int64 regardless of
 * the logical bitwidth; the logical width/signedness is carried
 * alongside so producers can validate representability.
 */

#ifndef BITFUSION_DNN_TENSOR_H
#define BITFUSION_DNN_TENSOR_H

#include <cstdint>
#include <vector>

#include "src/common/prng.h"

namespace bitfusion {

/** Dense CHW / flat integer tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Construct a zero-filled CHW tensor. */
    Tensor(unsigned c, unsigned h, unsigned w);

    /** Construct a zero-filled flat tensor. */
    explicit Tensor(std::size_t n);

    unsigned c() const { return _c; }
    unsigned h() const { return _h; }
    unsigned w() const { return _w; }
    std::size_t size() const { return data.size(); }

    std::int64_t &at(unsigned c, unsigned y, unsigned x);
    std::int64_t at(unsigned c, unsigned y, unsigned x) const;

    std::int64_t &operator[](std::size_t i) { return data[i]; }
    std::int64_t operator[](std::size_t i) const { return data[i]; }

    const std::vector<std::int64_t> &raw() const { return data; }

    /** Fill with uniform values representable in (bits, is_signed). */
    void fillRandom(Prng &prng, unsigned bits, bool is_signed);

  private:
    unsigned _c = 0, _h = 0, _w = 0;
    std::vector<std::int64_t> data;
};

} // namespace bitfusion

#endif // BITFUSION_DNN_TENSOR_H
