#include "src/dnn/network.h"

#include "src/common/logging.h"

namespace bitfusion {

Network::Network(std::string name, std::vector<Layer> layers)
    : _name(std::move(name)), _layers(std::move(layers))
{
}

Network &
Network::add(Layer layer)
{
    _layers.push_back(std::move(layer));
    return *this;
}

std::uint64_t
Network::totalMacs() const
{
    std::uint64_t total = 0;
    for (const auto &l : _layers)
        total += l.macsPerSample();
    return total;
}

std::uint64_t
Network::totalAuxOps() const
{
    std::uint64_t total = 0;
    for (const auto &l : _layers)
        total += l.auxOpsPerSample();
    return total;
}

std::uint64_t
Network::totalWeights() const
{
    std::uint64_t total = 0;
    for (const auto &l : _layers)
        total += l.weightCount();
    return total;
}

std::uint64_t
Network::totalWeightBits() const
{
    std::uint64_t total = 0;
    for (const auto &l : _layers)
        total += l.weightBits();
    return total;
}

double
Network::macFraction() const
{
    const double macs = static_cast<double>(totalMacs());
    const double aux = static_cast<double>(totalAuxOps());
    BF_ASSERT(macs + aux > 0.0, "empty network ", _name);
    return macs / (macs + aux);
}

std::map<std::string, double>
Network::macBitwidthProfile() const
{
    std::map<std::string, double> bits_to_macs;
    std::uint64_t total = 0;
    for (const auto &l : _layers) {
        const std::uint64_t macs = l.macsPerSample();
        if (macs == 0)
            continue;
        bits_to_macs[l.bits.toString()] += static_cast<double>(macs);
        total += macs;
    }
    for (auto &[k, v] : bits_to_macs)
        v /= static_cast<double>(total);
    return bits_to_macs;
}

std::map<unsigned, double>
Network::weightBitwidthProfile() const
{
    std::map<unsigned, double> bits_to_weights;
    std::uint64_t total = 0;
    for (const auto &l : _layers) {
        const std::uint64_t w = l.weightCount();
        if (w == 0)
            continue;
        bits_to_weights[l.bits.wBits] += static_cast<double>(w);
        total += w;
    }
    for (auto &[k, v] : bits_to_weights)
        v /= static_cast<double>(total);
    return bits_to_weights;
}

} // namespace bitfusion
