#include "src/compiler/codegen.h"

#include <algorithm>

#include "src/common/bitutils.h"
#include "src/common/logging.h"

namespace bitfusion {

Compiler::Compiler(const AcceleratorConfig &cfg) : cfg(cfg), tiler(this->cfg)
{
    this->cfg.validate();
}

std::uint64_t
Compiler::largestDivisor(std::uint64_t value, std::uint64_t cap)
{
    // sqrt(value) divisor enumeration instead of the old linear scan
    // down from cap (which was O(value) per layer for prime-ish layer
    // dimensions). Divisors pair up as (d, value / d) with d <=
    // sqrt(value) <= value / d: the cofactors value / d shrink as d
    // grows, so the first cofactor <= cap is the answer; if no
    // cofactor qualifies the best small divisor <= cap wins.
    BF_ASSERT(value >= 1);
    if (cap >= value)
        return value;
    std::uint64_t best = 1;
    for (std::uint64_t d = 1; d * d <= value; ++d) {
        if (value % d != 0)
            continue;
        const std::uint64_t cofactor = value / d;
        if (cofactor <= cap)
            return cofactor;
        if (d <= cap)
            best = d;
    }
    return best;
}

InstructionBlock
Compiler::emitConv(const Layer &layer, const BlockBases &bases,
                   std::uint64_t out_tile, const ActFusion &act) const
{
    BF_ASSERT(layer.kind == LayerKind::Conv, "emitConv on non-conv layer");
    const unsigned icpg = layer.inC / layer.groups;
    const unsigned ocpg = layer.outC / layer.groups;
    const std::uint64_t toc = largestDivisor(ocpg, out_tile);
    const std::uint64_t hp = layer.inH + 2 * layer.pad;
    const std::uint64_t wp = layer.inW + 2 * layer.pad;
    const std::uint64_t oh = layer.outH(), ow = layer.outW();
    const std::uint64_t ohw = oh * ow;
    const std::uint64_t khw = static_cast<std::uint64_t>(layer.kH) *
                              layer.kW;

    InstructionBlock b;
    b.name = layer.name;
    b.config = layer.bits;
    b.baseAddr = {bases.input, bases.output, bases.weights};
    b.actShift = act.shift;
    b.actOutBits = act.outBits;

    auto &ins = b.instructions;
    ins.push_back(Instruction::setup(layer.bits.aBits, layer.bits.wBits,
                                     layer.bits.aSigned,
                                     layer.bits.wSigned));

    // Loop nest (ids are nest positions): tg, tocg, oc, oy, ox, ic,
    // ky, kx. Six layer loops plus the two tiling loops -- the
    // "six ... increases to 12 after tiling" growth the paper
    // describes, halved here because the input stays resident.
    ins.push_back(Instruction::loop(0, layer.groups));
    ins.push_back(Instruction::loop(1, ocpg / toc));
    ins.push_back(Instruction::loop(2, toc));
    ins.push_back(Instruction::loop(3, oh));
    ins.push_back(Instruction::loop(4, ow));
    ins.push_back(Instruction::loop(5, icpg));
    ins.push_back(Instruction::loop(6, layer.kH));
    ins.push_back(Instruction::loop(7, layer.kW));

    // Address expressions (Eq. 4).
    const auto IB = BufferId::Ibuf;
    const auto OB = BufferId::Obuf;
    const auto WB = BufferId::Wbuf;
    const auto MEM = AddrSpace::Mem;
    const auto ACC = AddrSpace::BufAccess;
    // IBUF access: padded input element (tg*icpg + ic, oy*s + ky,
    // ox*s + kx).
    ins.push_back(Instruction::genAddr(IB, ACC, 0, icpg * hp * wp));
    ins.push_back(Instruction::genAddr(IB, ACC, 5, hp * wp));
    ins.push_back(Instruction::genAddr(IB, ACC, 3, layer.stride * wp));
    ins.push_back(Instruction::genAddr(IB, ACC, 6, wp));
    ins.push_back(Instruction::genAddr(IB, ACC, 4, layer.stride));
    ins.push_back(Instruction::genAddr(IB, ACC, 7, 1));
    // WBUF fill: weight tile of (toc x icpg x kH x kW), contiguous.
    ins.push_back(Instruction::genAddr(WB, MEM, 0, ocpg * icpg * khw));
    ins.push_back(Instruction::genAddr(WB, MEM, 1, toc * icpg * khw));
    // WBUF access within the tile.
    ins.push_back(Instruction::genAddr(WB, ACC, 2, icpg * khw));
    ins.push_back(Instruction::genAddr(WB, ACC, 5, khw));
    ins.push_back(Instruction::genAddr(WB, ACC, 6, layer.kW));
    ins.push_back(Instruction::genAddr(WB, ACC, 7, 1));
    // OBUF tile of toc output channels, contiguous in memory.
    ins.push_back(Instruction::genAddr(OB, MEM, 0, ocpg * ohw));
    ins.push_back(Instruction::genAddr(OB, MEM, 1, toc * ohw));
    ins.push_back(Instruction::genAddr(OB, ACC, 2, ohw));
    ins.push_back(Instruction::genAddr(OB, ACC, 3, ow));
    ins.push_back(Instruction::genAddr(OB, ACC, 4, 1));

    // Body. The whole (padded) input is loaded once.
    ins.push_back(Instruction::ldMem(IB, 0, layer.inC * hp * wp));
    ins.push_back(Instruction::ldMem(WB, 2, toc * icpg * khw));
    ins.push_back(Instruction::ldMem(OB, 2, toc * ohw));
    ins.push_back(Instruction::rdBuf(OB, 5));
    ins.push_back(Instruction::rdBuf(IB, 8));
    ins.push_back(Instruction::rdBuf(WB, 8));
    ins.push_back(Instruction::compute(ComputeFn::Mac, 8));
    ins.push_back(Instruction::wrBuf(OB, 5, true));
    ins.push_back(Instruction::stMem(OB, 2, toc * ohw, true,
                                     act.enabled));
    ins.push_back(Instruction::blockEnd(0));
    b.validate();
    return b;
}

InstructionBlock
Compiler::emitFc(const Layer &layer, const BlockBases &bases,
                 std::uint64_t out_tile, std::uint64_t in_tile,
                 const ActFusion &act) const
{
    // FC, RNN and LSTM all lower to a dense matrix-vector product
    // over (possibly concatenated) inputs.
    BF_ASSERT(layer.kind == LayerKind::FullyConnected ||
              layer.kind == LayerKind::Rnn ||
              layer.kind == LayerKind::Lstm,
              "emitFc on unsupported layer kind");
    const auto gemm = layer.gemmShape();
    const std::uint64_t oc_total = gemm.m;
    const std::uint64_t ic_total = gemm.k;
    const std::uint64_t toc = largestDivisor(oc_total, out_tile);
    const std::uint64_t tic = largestDivisor(ic_total, in_tile);

    InstructionBlock b;
    b.name = layer.name;
    b.config = layer.bits;
    b.baseAddr = {bases.input, bases.output, bases.weights};
    b.actShift = act.shift;
    b.actOutBits = act.outBits;

    auto &ins = b.instructions;
    ins.push_back(Instruction::setup(layer.bits.aBits, layer.bits.wBits,
                                     layer.bits.aSigned,
                                     layer.bits.wSigned));

    // Fig. 12(b): tiled, output-stationary nest.
    ins.push_back(Instruction::loop(0, oc_total / toc)); // t_oc
    ins.push_back(Instruction::loop(1, ic_total / tic)); // t_ic
    ins.push_back(Instruction::loop(2, toc));            // oc
    ins.push_back(Instruction::loop(3, tic));            // ic

    const auto IB = BufferId::Ibuf;
    const auto OB = BufferId::Obuf;
    const auto WB = BufferId::Wbuf;
    const auto MEM = AddrSpace::Mem;
    const auto ACC = AddrSpace::BufAccess;
    const auto FILL = AddrSpace::BufFill;

    ins.push_back(Instruction::genAddr(IB, MEM, 1, tic));
    ins.push_back(Instruction::genAddr(IB, ACC, 3, 1));
    // Weight tile: toc rows of tic words, row stride = full input
    // width in memory, packed rows in the buffer.
    ins.push_back(Instruction::genAddr(WB, MEM, 0, toc * ic_total));
    ins.push_back(Instruction::genAddr(WB, MEM, 1, tic));
    ins.push_back(Instruction::genAddr(WB, MEM, addr_id::dmaRow,
                                       ic_total));
    ins.push_back(Instruction::genAddr(WB, FILL, addr_id::dmaRow, tic));
    ins.push_back(Instruction::genAddr(WB, ACC, 2, tic));
    ins.push_back(Instruction::genAddr(WB, ACC, 3, 1));
    ins.push_back(Instruction::genAddr(OB, MEM, 0, toc));
    ins.push_back(Instruction::genAddr(OB, ACC, 2, 1));

    ins.push_back(Instruction::ldMem(OB, 1, toc));
    ins.push_back(Instruction::ldMem(IB, 2, tic));
    ins.push_back(Instruction::setRows(2, toc));
    ins.push_back(Instruction::ldMem(WB, 2, tic));
    ins.push_back(Instruction::rdBuf(OB, 3));
    ins.push_back(Instruction::rdBuf(IB, 4));
    ins.push_back(Instruction::rdBuf(WB, 4));
    ins.push_back(Instruction::compute(ComputeFn::Mac, 4));
    ins.push_back(Instruction::wrBuf(OB, 3, true));
    ins.push_back(Instruction::stMem(OB, 1, toc, true, act.enabled));
    ins.push_back(Instruction::blockEnd(0));
    b.validate();
    return b;
}

InstructionBlock
Compiler::emitPool(const Layer &layer, const BlockBases &bases) const
{
    BF_ASSERT(layer.kind == LayerKind::Pool, "emitPool on non-pool layer");
    const std::uint64_t hw = static_cast<std::uint64_t>(layer.inH) *
                             layer.inW;
    const std::uint64_t oh = layer.outH(), ow = layer.outW();
    const std::uint64_t ohw = oh * ow;

    InstructionBlock b;
    b.name = layer.name;
    // Pooling compares whatever precision flows through; the config
    // only matters for operand footprints.
    b.config = layer.bits;
    b.baseAddr = {bases.input, bases.output, bases.weights};

    auto &ins = b.instructions;
    ins.push_back(Instruction::setup(layer.bits.aBits, layer.bits.wBits,
                                     layer.bits.aSigned,
                                     layer.bits.wSigned));
    ins.push_back(Instruction::loop(0, layer.inC));
    ins.push_back(Instruction::loop(1, oh));
    ins.push_back(Instruction::loop(2, ow));
    ins.push_back(Instruction::loop(3, layer.kH));
    ins.push_back(Instruction::loop(4, layer.kW));

    const auto IB = BufferId::Ibuf;
    const auto OB = BufferId::Obuf;
    const auto ACC = AddrSpace::BufAccess;
    ins.push_back(Instruction::genAddr(IB, ACC, 0, hw));
    ins.push_back(Instruction::genAddr(IB, ACC, 1, layer.stride *
                                                       layer.inW));
    ins.push_back(Instruction::genAddr(IB, ACC, 3, layer.inW));
    ins.push_back(Instruction::genAddr(IB, ACC, 2, layer.stride));
    ins.push_back(Instruction::genAddr(IB, ACC, 4, 1));
    ins.push_back(Instruction::genAddr(OB, ACC, 0, ohw));
    ins.push_back(Instruction::genAddr(OB, ACC, 1, ow));
    ins.push_back(Instruction::genAddr(OB, ACC, 2, 1));

    ins.push_back(Instruction::ldMem(IB, 0, layer.inC * hw));
    ins.push_back(Instruction::compute(ComputeFn::Reset, 3));
    ins.push_back(Instruction::rdBuf(IB, 5));
    ins.push_back(Instruction::compute(ComputeFn::Max, 5));
    ins.push_back(Instruction::wrBuf(OB, 3, true));
    ins.push_back(Instruction::stMem(OB, 0, layer.inC * ohw, true));
    ins.push_back(Instruction::blockEnd(0));
    b.validate();
    return b;
}

InstructionBlock
Compiler::emitActivation(const Layer &layer, const BlockBases &bases,
                         unsigned shift, unsigned out_bits) const
{
    BF_ASSERT(layer.kind == LayerKind::Activation,
              "emitActivation on non-activation layer");
    const std::uint64_t n = layer.inputCount();

    InstructionBlock b;
    b.name = layer.name;
    b.config = layer.bits;
    b.baseAddr = {bases.input, bases.output, bases.weights};

    auto &ins = b.instructions;
    ins.push_back(Instruction::setup(layer.bits.aBits, layer.bits.wBits,
                                     layer.bits.aSigned,
                                     layer.bits.wSigned));
    ins.push_back(Instruction::loop(0, n));

    const auto IB = BufferId::Ibuf;
    const auto OB = BufferId::Obuf;
    ins.push_back(Instruction::genAddr(IB, AddrSpace::BufAccess, 0, 1));
    ins.push_back(Instruction::genAddr(OB, AddrSpace::BufAccess, 0, 1));

    ins.push_back(Instruction::ldMem(IB, 0, n));
    ins.push_back(Instruction::rdBuf(IB, 1));
    ins.push_back(Instruction::compute(
        ComputeFn::ReluQuant, 1,
        static_cast<unsigned>((out_bits << 8) | (shift & 0xff))));
    ins.push_back(Instruction::wrBuf(OB, 1, true));
    ins.push_back(Instruction::stMem(OB, 0, n, true));
    ins.push_back(Instruction::blockEnd(0));
    b.validate();
    return b;
}

CompiledNetwork
Compiler::compile(const Network &net) const
{
    CompiledNetwork out;
    out.networkName = net.name();
    out.batch = cfg.batch;

    const auto &layers = net.layers();
    // Virtual bump allocator for memory bases (elements).
    std::uint64_t next_base = 0;
    auto alloc = [&next_base](std::uint64_t elems) {
        const std::uint64_t base = next_base;
        next_base += elems;
        return base;
    };

    for (std::size_t i = 0; i < layers.size(); ++i) {
        const Layer &layer = layers[i];
        LayerSchedule sched;
        sched.layer = layer;
        sched.usesMacArray = layer.usesMacArray();

        if (layer.usesMacArray()) {
            // Layer fusion: absorb a following activation, then a
            // following pool, into the drain path.
            std::size_t j = i;
            ActFusion act;
            if (cfg.layerFusion && j + 1 < layers.size() &&
                layers[j + 1].kind == LayerKind::Activation) {
                sched.fusedActivation = true;
                ++j;
            }
            if (cfg.layerFusion && j + 1 < layers.size() &&
                layers[j + 1].kind == LayerKind::Pool) {
                sched.fusedPool = true;
                ++j;
            }
            // Output precision after the fused drain path: the next
            // MAC layer's activation width, or 8 bits at the network
            // edge. Without a fused activation the raw 32-bit
            // partial sums go to DRAM.
            unsigned consumer_bits = 8;
            for (std::size_t k2 = j + 1; k2 < layers.size(); ++k2) {
                if (layers[k2].usesMacArray()) {
                    consumer_bits = layers[k2].bits.aBits;
                    break;
                }
            }
            sched.outBits = sched.fusedActivation ? consumer_bits : 32;
            if (sched.fusedActivation) {
                act.enabled = true;
                // Static requantization: keep the top consumer_bits
                // of a full-precision accumulator (shape only; the
                // shift does not affect timing).
                act.shift = 8;
                act.outBits = consumer_bits;
            }

            const auto gemm = layer.gemmShape();
            sched.m = gemm.m;
            sched.k = gemm.k;
            const bool spatial = layer.kind == LayerKind::Conv;
            sched.n = spatial ? gemm.n : 1;
            const std::uint64_t n_total =
                sched.n * static_cast<std::uint64_t>(cfg.batch);
            sched.tile = tiler.chooseTiles(sched.m, sched.k, n_total,
                                           layer.bits, sched.outBits);
            sched.outElems = layer.outputCount();
            if (sched.fusedPool) {
                const Layer &pool = layers[j];
                sched.outElems = pool.outputCount();
            }

            const std::uint64_t w_bits = layer.weightBits();
            const std::uint64_t i_bits = layer.inputCount() *
                                         layer.bits.aBits * cfg.batch;
            const std::uint64_t o_bits =
                sched.outElems * sched.outBits * cfg.batch;
            sched.order = tiler.chooseOrder(sched.tile, sched.m, sched.k,
                                            n_total,
                                            w_bits, i_bits, o_bits);

            BlockBases bases;
            const std::uint64_t hp = layer.inH + 2 * layer.pad;
            const std::uint64_t wpad = layer.inW + 2 * layer.pad;
            bases.input = alloc(layer.kind == LayerKind::Conv
                                    ? layer.inC * hp * wpad
                                    : layer.inputCount());
            bases.weights = alloc(layer.weightCount());
            bases.output = alloc(layer.outputCount());

            if (layer.kind == LayerKind::Conv) {
                sched.block = emitConv(layer, bases, sched.tile.mt, act);
            } else {
                sched.block =
                    emitFc(layer, bases, sched.tile.mt, sched.tile.kt,
                           act);
            }
            i = j; // skip fused layers
        } else if (layer.kind == LayerKind::Pool) {
            BlockBases bases;
            bases.input = alloc(layer.inputCount());
            bases.output = alloc(layer.outputCount());
            sched.outBits = layer.bits.aBits;
            sched.outElems = layer.outputCount();
            sched.block = emitPool(layer, bases);
        } else {
            BlockBases bases;
            bases.input = alloc(layer.inputCount());
            bases.output = alloc(layer.outputCount());
            sched.outBits = layer.bits.aBits;
            sched.outElems = layer.outputCount();
            sched.block = emitActivation(layer, bases, 8, 8);
        }
        out.schedules.push_back(std::move(sched));
    }
    return out;
}

} // namespace bitfusion
