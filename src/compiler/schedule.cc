#include "src/compiler/schedule.h"

namespace bitfusion {

std::uint64_t
CompiledNetwork::totalMacs() const
{
    std::uint64_t total = 0;
    for (const auto &s : schedules)
        total += s.layer.macsPerSample();
    return total * batch;
}

} // namespace bitfusion
