/**
 * @file
 * Fusion-ISA code generation.
 *
 * Emits one instruction block per layer (or fused layer group),
 * realizing the paper's block structure: setup / loop nest /
 * gen-addr address expressions / ld-st-rd-wr / compute / block-end,
 * with the tiling and loop-ordering optimizations of §IV-B applied.
 */

#ifndef BITFUSION_COMPILER_CODEGEN_H
#define BITFUSION_COMPILER_CODEGEN_H

#include <cstdint>

#include "src/compiler/schedule.h"
#include "src/compiler/tiling.h"
#include "src/dnn/network.h"
#include "src/sim/config.h"

namespace bitfusion {

/** Memory bases an emitted block binds to. */
struct BlockBases
{
    std::uint64_t input = 0;
    std::uint64_t output = 0;
    std::uint64_t weights = 0;
};

/** Fused-activation parameters applied on the OBUF drain path. */
struct ActFusion
{
    bool enabled = false;
    /** Right shift applied during requantization. */
    unsigned shift = 0;
    /** Output bitwidth after requantization (0 = no clamp). */
    unsigned outBits = 0;
};

/** The Bit Fusion compiler. */
class Compiler
{
  public:
    explicit Compiler(const AcceleratorConfig &cfg);

    /**
     * Compile a network: apply layer fusion, choose tiles and loop
     * orders, and emit one block per schedule. Memory bases are
     * assigned from a virtual bump allocator.
     */
    CompiledNetwork compile(const Network &net) const;

    // Block emitters (public so tests can wire blocks to a real
    // MemoryModel).

    /**
     * Convolution block. The input is expected stored padded:
     * (inC, inH + 2 pad, inW + 2 pad) row-major.
     * @p out_tile output channels kept per tile; must divide
     * outC/groups (the emitter shrinks it to the nearest divisor).
     */
    InstructionBlock emitConv(const Layer &layer, const BlockBases &bases,
                              std::uint64_t out_tile,
                              const ActFusion &act = {}) const;

    /**
     * Fully-connected block (Fig. 12(b) shape: tiled, output
     * stationary). @p out_tile / @p in_tile shrink to divisors of
     * outC / inC.
     */
    InstructionBlock emitFc(const Layer &layer, const BlockBases &bases,
                            std::uint64_t out_tile, std::uint64_t in_tile,
                            const ActFusion &act = {}) const;

    /** Max-pooling block (pooling unit). */
    InstructionBlock emitPool(const Layer &layer,
                              const BlockBases &bases) const;

    /** Activation block (activation unit): relu + requantize. */
    InstructionBlock emitActivation(const Layer &layer,
                                    const BlockBases &bases,
                                    unsigned shift,
                                    unsigned out_bits) const;

    const AcceleratorConfig &config() const { return cfg; }

    /**
     * Largest divisor of @p value that is <= @p cap (1 when @p cap
     * is 0). Runs a sqrt(value) divisor enumeration; public so the
     * unit tests can pin its results against a linear reference.
     */
    static std::uint64_t largestDivisor(std::uint64_t value,
                                        std::uint64_t cap);

  private:
    AcceleratorConfig cfg;
    Tiler tiler;
};

} // namespace bitfusion

#endif // BITFUSION_COMPILER_CODEGEN_H
