#include "src/compiler/mixed_precision.h"

#include <cmath>

#include "src/common/logging.h"

namespace bitfusion {

std::vector<Layer>
splitByOutputChannels(const Layer &layer,
                      const std::vector<PrecisionPart> &parts)
{
    if (parts.empty())
        BF_FATAL("splitByOutputChannels: no parts given");
    if (layer.kind != LayerKind::Conv &&
        layer.kind != LayerKind::FullyConnected)
        BF_FATAL("splitByOutputChannels supports conv/fc layers only");
    if (layer.groups != 1)
        BF_FATAL("splitByOutputChannels does not support grouped conv");

    double total = 0.0;
    for (const auto &p : parts) {
        if (p.fraction <= 0.0)
            BF_FATAL("precision part with non-positive fraction");
        total += p.fraction;
    }
    if (total > 1.0 + 1e-9)
        BF_FATAL("precision fractions exceed 1.0");

    std::vector<Layer> out;
    unsigned assigned = 0;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        unsigned oc;
        if (i + 1 == parts.size()) {
            oc = layer.outC - assigned;
        } else {
            oc = static_cast<unsigned>(
                std::lround(parts[i].fraction * layer.outC));
            oc = std::min(oc, layer.outC - assigned -
                                  static_cast<unsigned>(parts.size() -
                                                        1 - i));
            oc = std::max(oc, 1u);
        }
        BF_ASSERT(assigned + oc <= layer.outC,
                  "channel split overflows the layer");
        Layer sub = layer;
        sub.name = layer.name + "." + std::to_string(i);
        sub.outC = oc;
        sub.bits = parts[i].bits;
        out.push_back(std::move(sub));
        assigned += oc;
    }
    BF_ASSERT(assigned == layer.outC, "channel split left a remainder");
    return out;
}

} // namespace bitfusion
