/**
 * @file
 * Compiler output: per-layer schedules and the compiled network.
 *
 * A schedule couples the Fusion-ISA instruction block of a layer (or
 * fused layer group) with the tiling/ordering decisions the timing
 * simulator consumes.
 */

#ifndef BITFUSION_COMPILER_SCHEDULE_H
#define BITFUSION_COMPILER_SCHEDULE_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/dnn/layer.h"
#include "src/isa/block.h"

namespace bitfusion {

/** Tile sizes chosen for a MAC layer. */
struct Tiling
{
    /** Output-dimension tile (outputs resident in WBUF/OBUF). */
    std::uint64_t mt = 1;
    /** Reduction-dimension tile. */
    std::uint64_t kt = 1;
    /** Streaming-dimension tile (spatial x batch positions). */
    std::uint64_t nt = 1;
};

/** Loop-order decision for the outer (DRAM) loops. */
enum class LoopOrder
{
    InputStationary, ///< n outermost kept resident; weights refetched.
    WeightStationary ///< m outermost kept resident; inputs refetched.
};

/** One compiled layer (or fused layer group). */
struct LayerSchedule
{
    /** The primary layer (the MAC layer of a fused group). */
    Layer layer;
    /** Activation fused into this block's drain path. */
    bool fusedActivation = false;
    /** Pooling fused into this block's drain path. */
    bool fusedPool = false;
    /** Bitwidth of the outputs written to DRAM. */
    unsigned outBits = 32;
    /** Output elements per sample after any fused pooling. */
    std::uint64_t outElems = 0;

    /** GEMM dims per sample (m = outputs, k = reduction, n = reuse). */
    std::uint64_t m = 0, k = 0, n = 0;
    /** Tiling decision. */
    Tiling tile;
    /** Outer loop order decision. */
    LoopOrder order = LoopOrder::InputStationary;

    /** The Fusion-ISA block implementing this schedule. */
    InstructionBlock block;

    /** True for conv/fc/rnn/lstm groups (ran on the MAC array). */
    bool usesMacArray = false;
};

/** A whole network compiled for one accelerator configuration. */
struct CompiledNetwork
{
    std::string networkName;
    unsigned batch = 1;
    std::vector<LayerSchedule> schedules;

    /** Total MACs per batch across all schedules. */
    std::uint64_t totalMacs() const;
};

} // namespace bitfusion

#endif // BITFUSION_COMPILER_SCHEDULE_H
