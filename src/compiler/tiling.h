/**
 * @file
 * Loop tiling (paper §IV-B): choose tile sizes so the working set of
 * the inner loops fits the scratchpads, and pick the outer loop order
 * that minimizes off-chip traffic.
 */

#ifndef BITFUSION_COMPILER_TILING_H
#define BITFUSION_COMPILER_TILING_H

#include "src/compiler/schedule.h"
#include "src/sim/config.h"

namespace bitfusion {

/**
 * Tile-size and loop-order selection.
 *
 * Owns a copy of the configuration so instances (and the Compiler
 * objects embedding them) are safely copyable and usable from
 * concurrent sweep workers; all methods are const.
 */
class Tiler
{
  public:
    explicit Tiler(const AcceleratorConfig &cfg) : cfg(cfg) {}

    /**
     * Choose tiles for a MAC layer with GEMM dims (m, k, n_total)
     * and the layer's operand bitwidths. Scratchpads are halved for
     * double buffering. Guarantees every tile dimension >= 1 and
     * kt >= min(k, rows) so reduction passes stay efficient.
     */
    Tiling
    chooseTiles(std::uint64_t m, std::uint64_t k, std::uint64_t n_total,
                const FusionConfig &bits, unsigned out_bits) const;

    /**
     * Off-chip traffic (bits) of a schedule under a given loop
     * order. @p w_bits_total / @p i_bits_total / @p o_bits_total are
     * the single-copy footprints per batch. Fully resident operands
     * (tile covering the whole matrix/stream) are fetched once.
     */
    static std::uint64_t
    trafficBits(LoopOrder order, const Tiling &tile, std::uint64_t m,
                std::uint64_t k, std::uint64_t n_total,
                std::uint64_t w_bits_total, std::uint64_t i_bits_total,
                std::uint64_t o_bits_total);

    /**
     * Pick the loop order minimizing traffic (the loop-ordering
     * optimization). When the optimization is disabled in the
     * config, always returns InputStationary.
     */
    LoopOrder
    chooseOrder(const Tiling &tile, std::uint64_t m, std::uint64_t k,
                std::uint64_t n_total, std::uint64_t w_bits_total,
                std::uint64_t i_bits_total,
                std::uint64_t o_bits_total) const;

  private:
    AcceleratorConfig cfg;
};

} // namespace bitfusion

#endif // BITFUSION_COMPILER_TILING_H
