/**
 * @file
 * Within-layer bitwidth variation (paper §IV-A).
 *
 * The Fusion-ISA fixes one fusion configuration per instruction
 * block, but the paper notes the microarchitecture "can readily
 * support [within-layer variation] by using multiple instruction
 * blocks for an individual layer". This pass realizes that: a
 * conv/FC layer whose output channels tolerate different precisions
 * is split into channel-sliced sub-layers, each compiled to its own
 * block with its own setup configuration.
 */

#ifndef BITFUSION_COMPILER_MIXED_PRECISION_H
#define BITFUSION_COMPILER_MIXED_PRECISION_H

#include <utility>
#include <vector>

#include "src/dnn/layer.h"

namespace bitfusion {

/** One precision region: a fraction of output channels + config. */
struct PrecisionPart
{
    /** Fraction of the layer's output channels (sums to ~1). */
    double fraction;
    /** Fusion configuration for this slice. */
    FusionConfig bits;
};

/**
 * Split @p layer (conv or fully-connected, ungrouped) by output
 * channels into one sub-layer per part. Channel counts are rounded
 * with the remainder folded into the last part; every sub-layer
 * keeps the full input, so the MAC total is conserved exactly.
 * Fatal on empty parts, non-positive fractions, or unsupported
 * layer kinds.
 */
std::vector<Layer>
splitByOutputChannels(const Layer &layer,
                      const std::vector<PrecisionPart> &parts);

} // namespace bitfusion

#endif // BITFUSION_COMPILER_MIXED_PRECISION_H
