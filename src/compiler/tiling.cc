#include "src/compiler/tiling.h"

#include <algorithm>

#include "src/common/bitutils.h"
#include "src/common/logging.h"

namespace bitfusion {

Tiling
Tiler::chooseTiles(std::uint64_t m, std::uint64_t k, std::uint64_t n_total,
                   const FusionConfig &bits, unsigned out_bits) const
{
    cfg.validate();
    (void)out_bits;
    // Half of each scratchpad is usable by a tile; the other half is
    // the double-buffer shadow that hides DRAM latency.
    const std::uint64_t wbuf = std::max<std::uint64_t>(cfg.wbufBits / 2, 1);
    const std::uint64_t ibuf = std::max<std::uint64_t>(cfg.ibufBits / 2, 1);
    const std::uint64_t obuf = std::max<std::uint64_t>(cfg.obufBits / 2, 1);
    const unsigned acc_bits = 32; // partial sums accumulate at 32-bit

    const std::uint64_t w_total = m * k * bits.wBits;
    const std::uint64_t i_total = k * n_total * bits.aBits;
    const std::uint64_t o_total = m * n_total * acc_bits;

    // Search power-of-two tile candidates for the (mt, kt, nt)
    // triple minimizing off-chip traffic under the residency
    // constraints:  mt*kt*wBits <= wbuf,  kt*nt*aBits <= ibuf,
    // mt*nt*acc <= obuf (partials live in OBUF across k-tiles).
    Tiling best;
    std::uint64_t best_cost = ~0ULL;
    for (std::uint64_t kt = 1;; kt *= 2) {
        kt = std::min(kt, k);
        for (std::uint64_t mt = 1;; mt *= 2) {
            mt = std::min(mt, m);
            if (mt * kt * bits.wBits > wbuf && !(mt == 1 && kt == 1))
                break;
            std::uint64_t nt =
                std::min(ibuf / std::max<std::uint64_t>(1, kt * bits.aBits),
                         obuf / std::max<std::uint64_t>(1, mt * acc_bits));
            nt = std::max<std::uint64_t>(1, std::min(nt, n_total));

            Tiling t{mt, kt, nt};
            const std::uint64_t cost = std::min(
                trafficBits(LoopOrder::InputStationary, t, m, k,
                            n_total, w_total, i_total, o_total),
                trafficBits(LoopOrder::WeightStationary, t, m, k,
                            n_total, w_total, i_total, o_total));
            if (cost < best_cost ||
                (cost == best_cost && mt * kt > best.mt * best.kt)) {
                best_cost = cost;
                best = t;
            }
            if (mt == m)
                break;
        }
        if (kt == k)
            break;
    }
    BF_ASSERT(best_cost != ~0ULL, "tile search found no feasible tile");
    return best;
}

std::uint64_t
Tiler::trafficBits(LoopOrder order, const Tiling &tile, std::uint64_t m,
                   std::uint64_t k, std::uint64_t n_total,
                   std::uint64_t w_bits_total, std::uint64_t i_bits_total,
                   std::uint64_t o_bits_total)
{
    const std::uint64_t n_tiles = divCeil(n_total, tile.nt);
    const std::uint64_t m_tiles = divCeil(m, tile.mt);
    const bool weights_resident = tile.mt >= m && tile.kt >= k;
    const bool inputs_resident = tile.kt >= k && tile.nt >= n_total;
    switch (order) {
      case LoopOrder::InputStationary:
        // Inputs fetched once; each n-tile revisits all weight tiles
        // unless the whole weight matrix stays on chip.
        return i_bits_total +
               w_bits_total * (weights_resident ? 1 : n_tiles) +
               o_bits_total;
      case LoopOrder::WeightStationary:
        // Weights fetched once; each m-tile revisits all input tiles
        // unless the whole input stream stays on chip.
        return w_bits_total +
               i_bits_total * (inputs_resident ? 1 : m_tiles) +
               o_bits_total;
    }
    BF_PANIC("unknown loop order");
}

LoopOrder
Tiler::chooseOrder(const Tiling &tile, std::uint64_t m, std::uint64_t k,
                   std::uint64_t n_total, std::uint64_t w_bits_total,
                   std::uint64_t i_bits_total,
                   std::uint64_t o_bits_total) const
{
    if (!cfg.loopOrdering)
        return LoopOrder::InputStationary;
    const std::uint64_t in_stat =
        trafficBits(LoopOrder::InputStationary, tile, m, k, n_total,
                    w_bits_total, i_bits_total, o_bits_total);
    const std::uint64_t w_stat =
        trafficBits(LoopOrder::WeightStationary, tile, m, k, n_total,
                    w_bits_total, i_bits_total, o_bits_total);
    return w_stat < in_stat ? LoopOrder::WeightStationary
                            : LoopOrder::InputStationary;
}

} // namespace bitfusion
