#include "src/isa/block.h"

#include <set>
#include <sstream>

#include "src/common/logging.h"

namespace bitfusion {

unsigned
InstructionBlock::loopCount() const
{
    unsigned n = 0;
    for (const auto &i : instructions)
        if (i.op == Opcode::Loop)
            ++n;
    return n;
}

std::uint64_t
InstructionBlock::loopIterations(unsigned idx) const
{
    unsigned n = 0;
    for (const auto &i : instructions) {
        if (i.op == Opcode::Loop) {
            if (n == idx)
                return i.fullImm();
            ++n;
        }
    }
    BF_PANIC("loop index ", idx, " out of range");
}

std::uint64_t
InstructionBlock::innermostIterations() const
{
    std::uint64_t total = 1;
    for (const auto &i : instructions)
        if (i.op == Opcode::Loop)
            total *= i.fullImm();
    return total;
}

void
InstructionBlock::validate() const
{
    if (instructions.empty())
        BF_FATAL("block '", name, "' is empty");
    if (instructions.front().op != Opcode::Setup)
        BF_FATAL("block '", name, "' does not start with setup");
    if (instructions.back().op != Opcode::BlockEnd)
        BF_FATAL("block '", name, "' does not end with block-end");

    std::set<unsigned> loop_ids;
    unsigned loops = 0;
    for (const auto &inst : instructions) {
        switch (inst.op) {
          case Opcode::Setup:
            break;
          case Opcode::Loop:
            if (!loop_ids.insert(inst.id).second)
                BF_FATAL("block '", name, "': duplicate loop id ",
                         static_cast<int>(inst.id));
            ++loops;
            break;
          case Opcode::GenAddr:
            if (inst.id < 48 && !loop_ids.count(inst.id))
                BF_FATAL("block '", name, "': gen-addr references ",
                         "undeclared loop ", static_cast<int>(inst.id));
            break;
          case Opcode::LdMem:
          case Opcode::StMem:
          case Opcode::RdBuf:
          case Opcode::WrBuf:
          case Opcode::Compute:
          case Opcode::SetRows:
            // Body instructions may sit at most one level inside the
            // loops declared so far (level == loops means innermost
            // body of the declared nest).
            if (inst.id > loops)
                BF_FATAL("block '", name, "': instruction at level ",
                         static_cast<int>(inst.id), " but only ", loops,
                         " loops declared before it");
            break;
          case Opcode::BlockEnd:
            break;
        }
    }
    config.validate();
}

std::vector<std::uint32_t>
InstructionBlock::encodeWords() const
{
    std::vector<std::uint32_t> words;
    words.reserve(instructions.size() + 4);
    std::uint32_t buf[2];
    for (const auto &inst : instructions) {
        const unsigned n = encode(inst, buf);
        words.push_back(buf[0]);
        if (n == 2)
            words.push_back(buf[1]);
    }
    return words;
}

std::vector<Instruction>
InstructionBlock::decodeWords(const std::vector<std::uint32_t> &words)
{
    std::vector<Instruction> out;
    std::size_t pos = 0;
    while (pos < words.size()) {
        unsigned consumed = 0;
        out.push_back(decode(words.data() + pos, &consumed));
        pos += consumed;
    }
    return out;
}

std::string
InstructionBlock::disassemble() const
{
    std::ostringstream os;
    os << "; block '" << name << "' config " << config.toString()
       << " bases I=" << baseAddr[0] << " O=" << baseAddr[1]
       << " W=" << baseAddr[2] << "\n";
    unsigned depth = 0;
    for (const auto &inst : instructions) {
        unsigned indent = depth;
        if (inst.op == Opcode::Setup || inst.op == Opcode::BlockEnd ||
            inst.op == Opcode::GenAddr) {
            indent = 0;
        } else if (inst.op != Opcode::Loop) {
            indent = inst.id;
        }
        os << std::string(2 * indent, ' ') << inst.toString() << "\n";
        if (inst.op == Opcode::Loop)
            ++depth;
    }
    return os.str();
}

} // namespace bitfusion
