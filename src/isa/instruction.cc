#include "src/isa/instruction.h"

#include <sstream>

#include "src/common/logging.h"

namespace bitfusion {

namespace {

constexpr std::uint8_t extensionFlag = 1u << 3;

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Setup: return "setup";
      case Opcode::Loop: return "loop";
      case Opcode::GenAddr: return "gen-addr";
      case Opcode::LdMem: return "ld-mem";
      case Opcode::StMem: return "st-mem";
      case Opcode::RdBuf: return "rd-buf";
      case Opcode::WrBuf: return "wr-buf";
      case Opcode::Compute: return "compute";
      case Opcode::SetRows: return "set-rows";
      case Opcode::BlockEnd: return "block-end";
    }
    BF_PANIC("unknown opcode");
}

const char *
bufferName(BufferId buf)
{
    switch (buf) {
      case BufferId::Ibuf: return "IBUF";
      case BufferId::Obuf: return "OBUF";
      case BufferId::Wbuf: return "WBUF";
    }
    BF_PANIC("unknown buffer");
}

const char *
fnName(ComputeFn fn)
{
    switch (fn) {
      case ComputeFn::Mac: return "mac";
      case ComputeFn::Max: return "max";
      case ComputeFn::ReluQuant: return "relu-quant";
      case ComputeFn::Reset: return "reset";
    }
    BF_PANIC("unknown compute fn");
}

} // namespace

unsigned
encodeBits(unsigned bits)
{
    switch (bits) {
      case 1: return 0;
      case 2: return 1;
      case 4: return 2;
      case 8: return 3;
      case 16: return 4;
    }
    BF_FATAL("unsupported bitwidth ", bits);
}

unsigned
decodeBits(unsigned code)
{
    BF_ASSERT(code <= 4, "bad bitwidth code ", code);
    return 1u << code;
}

BufferId
Instruction::buffer() const
{
    return static_cast<BufferId>(spec & 0x3);
}

ComputeFn
Instruction::fn() const
{
    return static_cast<ComputeFn>(spec & 0x7);
}

AddrSpace
Instruction::space() const
{
    if (spec & 0x4)
        return AddrSpace::BufAccess;
    if (spec & 0x10)
        return AddrSpace::BufFill;
    return AddrSpace::Mem;
}

std::string
Instruction::toString() const
{
    std::ostringstream os;
    os << opcodeName(op);
    switch (op) {
      case Opcode::Setup:
        os << " a" << decodeBits((imm >> 8) & 0xff)
           << (spec & 1 ? "s" : "u") << " w" << decodeBits(imm & 0xff)
           << (spec & 2 ? "s" : "u");
        break;
      case Opcode::Loop:
        os << " id=" << static_cast<int>(id) << " iters=" << fullImm();
        break;
      case Opcode::GenAddr:
        os << " " << bufferName(buffer())
           << (space() == AddrSpace::Mem ? ".mem" :
               space() == AddrSpace::BufAccess ? ".buf" : ".fill")
           << " loop=" << static_cast<int>(id) << " stride=" << fullImm();
        break;
      case Opcode::LdMem:
      case Opcode::StMem:
        os << " " << bufferName(buffer()) << " words=" << fullImm()
           << " @L" << static_cast<int>(id) << (isPost() ? "/post" : "")
           << (op == Opcode::StMem && isActivate() ? " +act" : "");
        break;
      case Opcode::RdBuf:
      case Opcode::WrBuf:
        os << " " << bufferName(buffer()) << " @L" << static_cast<int>(id)
           << (isPost() ? "/post" : "");
        break;
      case Opcode::Compute:
        os << " " << fnName(fn()) << " @L" << static_cast<int>(id);
        if (fn() == ComputeFn::ReluQuant)
            os << " shift=" << (imm & 0xff) << " bits="
               << ((imm >> 8) & 0xff);
        break;
      case Opcode::SetRows:
        os << " rows=" << fullImm() << " @L" << static_cast<int>(id);
        break;
      case Opcode::BlockEnd:
        os << " next=" << imm;
        break;
    }
    return os.str();
}

Instruction
Instruction::setup(unsigned a_bits, unsigned w_bits, bool a_signed,
                   bool w_signed)
{
    Instruction i;
    i.op = Opcode::Setup;
    i.spec = static_cast<std::uint8_t>((a_signed ? 1 : 0) |
                                       (w_signed ? 2 : 0));
    i.imm = static_cast<std::uint16_t>((encodeBits(a_bits) << 8) |
                                       encodeBits(w_bits));
    return i;
}

Instruction
Instruction::loop(unsigned loop_id, std::uint64_t iterations)
{
    BF_ASSERT(loop_id < 48, "loop id out of range");
    BF_ASSERT(iterations > 0, "loop with zero iterations");
    Instruction i;
    i.op = Opcode::Loop;
    i.id = static_cast<std::uint8_t>(loop_id);
    i.imm = static_cast<std::uint16_t>(iterations & 0xffff);
    i.immHi = static_cast<std::uint32_t>(iterations >> 16);
    return i;
}

Instruction
Instruction::genAddr(BufferId buf, AddrSpace space, unsigned loop_id,
                     std::uint64_t stride)
{
    BF_ASSERT(loop_id < 64, "gen-addr id out of range");
    Instruction i;
    i.op = Opcode::GenAddr;
    i.id = static_cast<std::uint8_t>(loop_id);
    i.spec = static_cast<std::uint8_t>(
        static_cast<unsigned>(buf) |
        (space == AddrSpace::BufAccess ? 0x4 :
         space == AddrSpace::BufFill ? 0x10 : 0x0));
    i.imm = static_cast<std::uint16_t>(stride & 0xffff);
    i.immHi = static_cast<std::uint32_t>(stride >> 16);
    return i;
}

namespace {

Instruction
memInstr(Opcode op, BufferId buf, unsigned level, std::uint64_t words,
         bool post)
{
    Instruction i;
    i.op = op;
    i.id = static_cast<std::uint8_t>(level);
    i.spec = static_cast<std::uint8_t>(static_cast<unsigned>(buf) |
                                       (post ? 0x10 : 0x0));
    i.imm = static_cast<std::uint16_t>(words & 0xffff);
    i.immHi = static_cast<std::uint32_t>(words >> 16);
    return i;
}

} // namespace

Instruction
Instruction::ldMem(BufferId buf, unsigned level, std::uint64_t words,
                   bool post)
{
    return memInstr(Opcode::LdMem, buf, level, words, post);
}

Instruction
Instruction::stMem(BufferId buf, unsigned level, std::uint64_t words,
                   bool post, bool activate)
{
    Instruction i = memInstr(Opcode::StMem, buf, level, words, post);
    if (activate)
        i.spec |= 0x4;
    return i;
}

Instruction
Instruction::rdBuf(BufferId buf, unsigned level, bool post)
{
    return memInstr(Opcode::RdBuf, buf, level, 0, post);
}

Instruction
Instruction::wrBuf(BufferId buf, unsigned level, bool post)
{
    return memInstr(Opcode::WrBuf, buf, level, 0, post);
}

Instruction
Instruction::compute(ComputeFn fn, unsigned level, unsigned imm)
{
    Instruction i;
    i.op = Opcode::Compute;
    i.id = static_cast<std::uint8_t>(level);
    i.spec = static_cast<std::uint8_t>(fn);
    i.imm = static_cast<std::uint16_t>(imm);
    return i;
}

Instruction
Instruction::setRows(unsigned level, std::uint64_t rows, bool post)
{
    Instruction i;
    i.op = Opcode::SetRows;
    i.id = static_cast<std::uint8_t>(level);
    i.spec = post ? 0x10 : 0x0;
    i.imm = static_cast<std::uint16_t>(rows & 0xffff);
    i.immHi = static_cast<std::uint32_t>(rows >> 16);
    return i;
}

Instruction
Instruction::blockEnd(unsigned next_block)
{
    Instruction i;
    i.op = Opcode::BlockEnd;
    i.imm = static_cast<std::uint16_t>(next_block);
    return i;
}

unsigned
encode(const Instruction &inst, std::uint32_t out[2])
{
    const bool wide = inst.immHi != 0;
    std::uint8_t spec = inst.spec;
    if (wide)
        spec |= extensionFlag;
    out[0] = (static_cast<std::uint32_t>(inst.op) << 27) |
             ((static_cast<std::uint32_t>(inst.id) & 0x3f) << 21) |
             ((static_cast<std::uint32_t>(spec) & 0x1f) << 16) |
             inst.imm;
    if (wide) {
        out[1] = inst.immHi;
        return 2;
    }
    return 1;
}

Instruction
decode(const std::uint32_t *words, unsigned *consumed)
{
    const std::uint32_t w = words[0];
    Instruction i;
    i.op = static_cast<Opcode>((w >> 27) & 0x1f);
    i.id = static_cast<std::uint8_t>((w >> 21) & 0x3f);
    std::uint8_t spec = static_cast<std::uint8_t>((w >> 16) & 0x1f);
    i.imm = static_cast<std::uint16_t>(w & 0xffff);
    const bool wide = (spec & extensionFlag) != 0;
    i.spec = spec & static_cast<std::uint8_t>(~extensionFlag);
    if (wide) {
        i.immHi = words[1];
        *consumed = 2;
    } else {
        i.immHi = 0;
        *consumed = 1;
    }
    return i;
}

} // namespace bitfusion
