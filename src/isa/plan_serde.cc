/**
 * @file
 * Binary serialization for blocks, compiled networks, and plans.
 *
 * Layout discipline: every write has a read in the same order, every
 * variable-length field is length-prefixed, and every enum or index
 * is range-checked on the way in so a checksum-valid but hostile
 * payload still cannot build an out-of-bounds plan. See plan_serde.h
 * for the contract.
 */

#include "src/isa/plan_serde.h"

#include <utility>
#include <vector>

#include "src/isa/exec_kernels.h"
#include "src/isa/exec_plan.h"

namespace bitfusion {

namespace {

/** Payload type tags (first byte, before the version word). */
constexpr std::uint8_t kBlockTag = 'B';
constexpr std::uint8_t kNetworkTag = 'N';
constexpr std::uint8_t kPlanTag = 'P';

void
writeTag(ByteWriter &out, std::uint8_t tag)
{
    out.u8(tag);
    out.u32(kPlanSerdeVersion);
}

void
checkTag(ByteReader &in, std::uint8_t tag, const char *what)
{
    if (in.u8() != tag)
        throw SerdeError(std::string("payload is not a serialized ") +
                         what);
    const std::uint32_t version = in.u32();
    if (version != kPlanSerdeVersion)
        throw SerdeError("serde version mismatch: payload v" +
                         std::to_string(version) + ", expected v" +
                         std::to_string(kPlanSerdeVersion));
}

unsigned
checkedBits(unsigned bits)
{
    switch (bits) {
      case 1:
      case 2:
      case 4:
      case 8:
      case 16: return bits;
      default: break;
    }
    throw SerdeError("unsupported operand bitwidth " +
                     std::to_string(bits));
}

unsigned
checkedShift(std::uint32_t shift)
{
    if (shift >= 64)
        throw SerdeError("requantization shift " +
                         std::to_string(shift) + " out of range");
    return shift;
}

void
writeConfig(ByteWriter &out, const FusionConfig &cfg)
{
    out.u8(static_cast<std::uint8_t>(cfg.aBits));
    out.u8(static_cast<std::uint8_t>(cfg.wBits));
    out.u8(cfg.aSigned ? 1 : 0);
    out.u8(cfg.wSigned ? 1 : 0);
}

FusionConfig
readConfig(ByteReader &in)
{
    FusionConfig cfg;
    cfg.aBits = checkedBits(in.u8());
    cfg.wBits = checkedBits(in.u8());
    cfg.aSigned = in.u8() != 0;
    cfg.wSigned = in.u8() != 0;
    return cfg;
}

void
writeLayer(ByteWriter &out, const Layer &layer)
{
    out.str(layer.name);
    out.u8(static_cast<std::uint8_t>(layer.kind));
    writeConfig(out, layer.bits);
    const unsigned dims[] = {layer.inC, layer.inH,    layer.inW,
                             layer.outC, layer.kH,    layer.kW,
                             layer.stride, layer.pad, layer.groups};
    for (unsigned d : dims)
        out.u32(d);
}

Layer
readLayer(ByteReader &in)
{
    Layer layer;
    layer.name = in.str();
    const std::uint8_t kind = in.u8();
    if (kind > static_cast<std::uint8_t>(LayerKind::Lstm))
        throw SerdeError("unknown layer kind " + std::to_string(kind));
    layer.kind = static_cast<LayerKind>(kind);
    layer.bits = readConfig(in);
    unsigned *const dims[] = {&layer.inC, &layer.inH,    &layer.inW,
                              &layer.outC, &layer.kH,    &layer.kW,
                              &layer.stride, &layer.pad, &layer.groups};
    for (unsigned *d : dims)
        *d = in.u32();
    return layer;
}

void
writeSchedule(ByteWriter &out, const LayerSchedule &sched)
{
    writeLayer(out, sched.layer);
    out.u8(sched.fusedActivation ? 1 : 0);
    out.u8(sched.fusedPool ? 1 : 0);
    out.u32(sched.outBits);
    out.u64(sched.outElems);
    out.u64(sched.m);
    out.u64(sched.k);
    out.u64(sched.n);
    out.u64(sched.tile.mt);
    out.u64(sched.tile.kt);
    out.u64(sched.tile.nt);
    out.u8(static_cast<std::uint8_t>(sched.order));
    out.u8(sched.usesMacArray ? 1 : 0);
    serializeBlock(out, sched.block);
}

LayerSchedule
readSchedule(ByteReader &in)
{
    LayerSchedule sched;
    sched.layer = readLayer(in);
    sched.fusedActivation = in.u8() != 0;
    sched.fusedPool = in.u8() != 0;
    sched.outBits = in.u32();
    sched.outElems = in.u64();
    sched.m = in.u64();
    sched.k = in.u64();
    sched.n = in.u64();
    sched.tile.mt = in.u64();
    sched.tile.kt = in.u64();
    sched.tile.nt = in.u64();
    const std::uint8_t order = in.u8();
    if (order > static_cast<std::uint8_t>(LoopOrder::WeightStationary))
        throw SerdeError("unknown loop order " + std::to_string(order));
    sched.order = static_cast<LoopOrder>(order);
    sched.usesMacArray = in.u8() != 0;
    sched.block = deserializeBlock(in);
    return sched;
}

} // namespace

void
serializeBlock(ByteWriter &out, const InstructionBlock &block)
{
    writeTag(out, kBlockTag);
    out.str(block.name);
    writeConfig(out, block.config);
    for (std::uint64_t base : block.baseAddr)
        out.u64(base);
    out.u32(block.actShift);
    out.u32(block.actOutBits);
    out.u32(static_cast<std::uint32_t>(block.instructions.size()));
    for (const Instruction &inst : block.instructions) {
        out.u8(static_cast<std::uint8_t>(inst.op));
        out.u8(inst.id);
        out.u8(inst.spec);
        out.u16(inst.imm);
        out.u32(inst.immHi);
    }
}

InstructionBlock
deserializeBlock(ByteReader &in)
{
    checkTag(in, kBlockTag, "instruction block");
    InstructionBlock block;
    block.name = in.str();
    block.config = readConfig(in);
    for (std::uint64_t &base : block.baseAddr)
        base = in.u64();
    block.actShift = checkedShift(in.u32());
    block.actOutBits = in.u32();
    const std::uint32_t count = in.u32();
    block.instructions.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Instruction inst;
        const std::uint8_t op = in.u8();
        if (op > static_cast<std::uint8_t>(Opcode::BlockEnd))
            throw SerdeError("unknown opcode " + std::to_string(op));
        inst.op = static_cast<Opcode>(op);
        inst.id = in.u8();
        inst.spec = in.u8();
        inst.imm = in.u16();
        inst.immHi = in.u32();
        block.instructions.push_back(inst);
    }
    return block;
}

std::string
serializeCompiledNetwork(const CompiledNetwork &net)
{
    ByteWriter out;
    writeTag(out, kNetworkTag);
    out.str(net.networkName);
    out.u32(net.batch);
    out.u32(static_cast<std::uint32_t>(net.schedules.size()));
    for (const LayerSchedule &sched : net.schedules)
        writeSchedule(out, sched);
    return out.take();
}

CompiledNetwork
deserializeCompiledNetwork(const std::string &bytes)
{
    ByteReader in(bytes);
    checkTag(in, kNetworkTag, "compiled network");
    CompiledNetwork net;
    net.networkName = in.str();
    net.batch = in.u32();
    const std::uint32_t count = in.u32();
    net.schedules.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        net.schedules.push_back(readSchedule(in));
    in.expectEnd();
    return net;
}

/**
 * Reads and writes ExecPlan's private program representation
 * (friend of ExecPlan). All index validation happens here: loop
 * depths against the iteration array, jump targets against the
 * program length, address-term depths against the nest depth, fused
 * dims against kMaxFusedDims.
 */
struct PlanSerde
{
    static void
    writeExpr(ByteWriter &out, const ExecPlan::AddrExpr &expr)
    {
        out.u64(expr.base);
        out.u64(expr.rowStride);
        out.u32(static_cast<std::uint32_t>(expr.terms.size()));
        for (const ExecPlan::AddrTerm &term : expr.terms) {
            out.u32(term.depth);
            out.u64(term.stride);
        }
    }

    static ExecPlan::AddrExpr
    readExpr(ByteReader &in, std::size_t depth)
    {
        ExecPlan::AddrExpr expr;
        expr.base = in.u64();
        expr.rowStride = in.u64();
        const std::uint32_t count = in.u32();
        expr.terms.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            ExecPlan::AddrTerm term;
            term.depth = in.u32();
            if (term.depth >= depth)
                throw SerdeError("address term depth out of range");
            term.stride = in.u64();
            expr.terms.push_back(term);
        }
        return expr;
    }

    static void
    writeCode(ByteWriter &out,
              const std::vector<ExecPlan::CodeOp> &code)
    {
        out.u32(static_cast<std::uint32_t>(code.size()));
        for (const ExecPlan::CodeOp &op : code) {
            out.u8(static_cast<std::uint8_t>(op.kind));
            out.u8(op.buf);
            out.u16(op.loop);
            out.u32(op.target);
            out.u64(op.imm);
            out.u32(op.shift);
            out.u32(op.outBits);
            out.u8(op.activate ? 1 : 0);
        }
    }

    static std::vector<ExecPlan::CodeOp>
    readCode(ByteReader &in, std::size_t depth)
    {
        const std::uint32_t count = in.u32();
        std::vector<ExecPlan::CodeOp> code;
        code.reserve(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            ExecPlan::CodeOp op;
            const std::uint8_t kind = in.u8();
            if (kind >= ExecPlan::kOpKindCount)
                throw SerdeError("unknown plan op kind " +
                                 std::to_string(kind));
            op.kind = static_cast<ExecPlan::OpKind>(kind);
            op.buf = in.u8();
            if (op.buf >= 3)
                throw SerdeError("buffer index out of range");
            op.loop = in.u16();
            op.target = in.u32();
            op.imm = in.u64();
            op.shift = checkedShift(in.u32());
            op.outBits = in.u32();
            op.activate = in.u8() != 0;
            const bool isLoop =
                op.kind == ExecPlan::OpKind::LoopHead ||
                op.kind == ExecPlan::OpKind::LoopBack;
            if (isLoop && op.loop >= depth)
                throw SerdeError("loop index out of range");
            if (isLoop && op.target >= count)
                throw SerdeError("jump target out of range");
            code.push_back(op);
        }
        return code;
    }

    static void
    write(ByteWriter &out, const ExecPlan &plan)
    {
        writeTag(out, kPlanTag);
        writeConfig(out, plan.config_);
        out.u32(plan.actShift_);
        out.u32(plan.actOutBits_);
        out.u32(static_cast<std::uint32_t>(plan.iters_.size()));
        for (std::uint64_t it : plan.iters_)
            out.u64(it);
        for (const auto &perBuffer : plan.exprs_)
            for (const ExecPlan::AddrExpr &expr : perBuffer)
                writeExpr(out, expr);
        for (std::uint64_t size : plan.bufSize_)
            out.u64(size);
        out.u64(plan.maxRows_);
        out.u64(plan.memExtent_);
        writeCode(out, plan.code_);
        writeCode(out, plan.fusedCode_);

        const ExecPlan::FusedNest &nest = plan.fused_;
        out.u32(nest.firstLoop);
        out.u32(nest.dims);
        out.u64(nest.total);
        out.u64(nest.opsPerMac);
        out.u64(nest.lastOffA);
        out.u64(nest.lastOffW);
        writeExpr(out, nest.aOuter);
        writeExpr(out, nest.wOuter);
        out.u32(nest.proto.dims);
        for (std::uint64_t v : nest.proto.iters)
            out.u64(v);
        for (std::uint64_t v : nest.proto.aStride)
            out.u64(v);
        for (std::uint64_t v : nest.proto.wStride)
            out.u64(v);
        out.i64(nest.proto.aMin);
        out.i64(nest.proto.aMax);
        out.i64(nest.proto.wMin);
        out.i64(nest.proto.wMax);
        out.str(plan.kernelName_);
    }

    static std::shared_ptr<const ExecPlan>
    read(ByteReader &in)
    {
        checkTag(in, kPlanTag, "execution plan");
        std::shared_ptr<ExecPlan> plan(new ExecPlan);
        plan->config_ = readConfig(in);
        plan->actShift_ = checkedShift(in.u32());
        plan->actOutBits_ = in.u32();
        const std::uint32_t depth = in.u32();
        plan->iters_.reserve(depth);
        for (std::uint32_t i = 0; i < depth; ++i)
            plan->iters_.push_back(in.u64());
        for (auto &perBuffer : plan->exprs_)
            for (ExecPlan::AddrExpr &expr : perBuffer)
                expr = readExpr(in, depth);
        for (std::uint64_t &size : plan->bufSize_)
            size = in.u64();
        plan->maxRows_ = in.u64();
        plan->memExtent_ = in.u64();
        plan->code_ = readCode(in, depth);
        plan->fusedCode_ = readCode(in, depth);

        ExecPlan::FusedNest &nest = plan->fused_;
        nest.firstLoop = in.u32();
        nest.dims = in.u32();
        if (nest.dims > kMaxFusedDims)
            throw SerdeError("fused nest too deep");
        if (nest.dims > 0 &&
            (nest.firstLoop > depth || nest.firstLoop + nest.dims > depth))
            throw SerdeError("fused nest exceeds loop depth");
        nest.total = in.u64();
        nest.opsPerMac = in.u64();
        nest.lastOffA = in.u64();
        nest.lastOffW = in.u64();
        nest.aOuter = readExpr(in, depth);
        nest.wOuter = readExpr(in, depth);
        nest.proto.dims = in.u32();
        if (nest.proto.dims != nest.dims)
            throw SerdeError("fused prototype dims mismatch");
        for (std::uint64_t &v : nest.proto.iters)
            v = in.u64();
        for (std::uint64_t &v : nest.proto.aStride)
            v = in.u64();
        for (std::uint64_t &v : nest.proto.wStride)
            v = in.u64();
        nest.proto.aMin = in.i64();
        nest.proto.aMax = in.i64();
        nest.proto.wMin = in.i64();
        nest.proto.wMax = in.i64();
        plan->kernelName_ = in.str();
        in.expectEnd();

        // The two non-serialized members are pure functions of the
        // config: the memo table (process-shared) and the fused
        // kernel binding. Re-derive them exactly as build() does.
        plan->memo_ = productTableFor(plan->config_);
        nest.kernel = nest.dims > 0
                          ? selectMacNestKernel(plan->config_)
                          : nullptr;
        return plan;
    }
};

std::string
serializePlan(const ExecPlan &plan)
{
    ByteWriter out;
    PlanSerde::write(out, plan);
    return out.take();
}

std::shared_ptr<const ExecPlan>
deserializePlan(const std::string &bytes)
{
    ByteReader in(bytes);
    return PlanSerde::read(in);
}

} // namespace bitfusion
