/**
 * @file
 * Compiled execution plans for Fusion-ISA blocks.
 *
 * The interpreter's reference walk (Interpreter::runLegacy) re-derives
 * everything per element: a recursive descent over the loop nest, a
 * std::map lookup per address term, a fresh BitBrick decomposition per
 * MAC, and resize churn on every transfer. An ExecPlan lowers a block
 * ONCE into a flat loop program and executes it many times:
 *
 *  - the loop nest becomes per-level instruction spans driven by an
 *    iterative walk (no recursion, no per-iteration map updates);
 *  - every gen-addr expression is resolved to (loop depth, stride)
 *    terms evaluated against a dense iteration-counter array;
 *  - scratchpad sizes come from a static high-water analysis, so the
 *    hot loop never calls resize;
 *  - ld-mem / st-mem move whole rows through MemoryModel spans (one
 *    bounds check per row instead of per element);
 *  - for operand pairs of at most 8x8 bits the BitBrick products are
 *    memoized in a per-config table built from the exact
 *    decomposeMultiply path, so results AND the bitBrickOps / macs
 *    counters stay bit-identical to the reference walk (wider
 *    operands fall back to the exact decomposition).
 *
 * Plans are immutable after build() and safe to execute concurrently;
 * all run state lives on the caller's stack. The process-level
 * ArtifactCache (src/core/artifact_cache.h) caches one plan per
 * distinct block content, shared by tests, benches, and serving.
 */

#ifndef BITFUSION_ISA_EXEC_PLAN_H
#define BITFUSION_ISA_EXEC_PLAN_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/arch/fusion_config.h"
#include "src/isa/block.h"
#include "src/isa/interpreter.h"
#include "src/isa/memory.h"

namespace bitfusion {

/**
 * Memoized BitBrick products for one fusion configuration with both
 * operands at most 8 bits wide. products[(rawA << wBits) | rawW] is
 * exactly evaluateDecomposition(decomposeMultiply(a, w, cfg)), and
 * opsPerMac is the (value-independent) decomposition size, so the
 * memoized MAC path reproduces the reference walk bit-for-bit.
 */
struct ProductTable
{
    unsigned aBits = 0;
    unsigned wBits = 0;
    /** BitBrick ops per MAC: aLanes x wLanes, value-independent. */
    std::uint64_t opsPerMac = 0;
    /** Representable operand ranges (the reference walk asserts). */
    std::int64_t aMin = 0, aMax = 0, wMin = 0, wMax = 0;
    /** Shifted-product sums, indexed by the raw operand encodings. */
    std::vector<std::int64_t> products;
};

/**
 * Process-level memo table for @p cfg, built on first use; nullptr
 * when either operand exceeds 8 bits (the table would not fit).
 */
const ProductTable *productTableFor(const FusionConfig &cfg);

/** One lowered, recursion-free Fusion-ISA block. See file docs. */
class ExecPlan
{
  public:
    /** Lower @p block into a plan. The block must validate(). */
    static std::shared_ptr<const ExecPlan>
    build(const InstructionBlock &block);

    /**
     * Content identity of a block: two blocks with equal keys lower
     * to interchangeable plans (the name is deliberately excluded).
     * This is the ArtifactCache's plan-cache key.
     */
    static std::string blockKey(const InstructionBlock &block);

    /**
     * Execute the plan. @p buffers are the interpreter's scratchpads:
     * resized once to the static high-water sizes and zero-filled, so
     * the hot loop never reallocates. Stats accumulate into @p stats
     * exactly as the reference walk would.
     */
    void execute(MemoryModel &memory, InterpStats &stats,
                 std::array<std::vector<std::int64_t>, 3> &buffers) const;

    /** Static per-buffer size (elements) the plan executes within. */
    const std::array<std::uint64_t, 3> &
    bufferSizes() const
    {
        return bufSize_;
    }

    /**
     * One past the largest off-chip address any transfer can touch:
     * a MemoryModel of at least this size executes the plan without
     * tripping the bounds checks. Harness code (parity tests, the
     * perf bench) sizes synthetic memories from this.
     */
    std::uint64_t memoryExtent() const { return memExtent_; }

    /** Nest depth (number of loops). */
    unsigned depth() const { return static_cast<unsigned>(iters_.size()); }

    /** True when the MAC path runs on the memoized product table. */
    bool memoized() const { return memo_ != nullptr; }

  private:
    ExecPlan() = default;

    /** One (loop depth, stride) address term. */
    struct AddrTerm
    {
        unsigned depth;
        std::uint64_t stride;
    };

    /** A fully resolved gen-addr expression for one (buffer, space). */
    struct AddrExpr
    {
        /** Constant part (the memory base for the Mem space). */
        std::uint64_t base = 0;
        /** Stride of the 2-D DMA row counter (addr_id::dmaRow). */
        std::uint64_t rowStride = 0;
        std::vector<AddrTerm> terms;
    };

    /** Lowered body operation. */
    enum class OpKind : std::uint8_t
    {
        LdMem,
        StMem,
        SetRows,
        RdBuf,
        WrBuf,
        Mac,
        MaxOp,
        ReluQuant,
        Reset,
    };

    struct Op
    {
        OpKind kind;
        std::uint8_t buf = 0;
        /** Words per row (transfers) or row count (set-rows). */
        std::uint64_t imm = 0;
        /** Relu-quant requantization shift. */
        unsigned shift = 0;
        /** Relu-quant output width (0 = no clamp). */
        unsigned outBits = 0;
        /** St-mem drain-path activation flag. */
        bool activate = false;
    };

    /** Pre/post instruction spans of one nest level. */
    struct Level
    {
        std::vector<Op> pre;
        std::vector<Op> post;
    };

    struct Runtime;

    std::uint64_t evalMax(const AddrExpr &e) const;
    void execSpan(const std::vector<Op> &ops, Runtime &rt) const;
    void transfer(const Op &op, bool to_buffer, Runtime &rt) const;

    /** Iteration counts by loop depth. */
    std::vector<std::uint64_t> iters_;
    /** Body spans; levels_[d] runs inside loops 0..d-1. */
    std::vector<Level> levels_;
    /** exprs_[buffer][space]; see AddrSpace. */
    AddrExpr exprs_[3][3];
    /** Static high-water scratchpad sizes. */
    std::array<std::uint64_t, 3> bufSize_{0, 0, 0};
    /** Largest set-rows immediate (row bound of the 2-D DMAs). */
    std::uint64_t maxRows_ = 1;
    /** Static bound on off-chip addresses; see memoryExtent(). */
    std::uint64_t memExtent_ = 0;

    FusionConfig config_;
    unsigned actShift_ = 0;
    unsigned actOutBits_ = 0;
    /** Memoized MAC products; nullptr -> exact decomposition. */
    const ProductTable *memo_ = nullptr;
};

} // namespace bitfusion

#endif // BITFUSION_ISA_EXEC_PLAN_H
