/**
 * @file
 * Compiled execution plans for Fusion-ISA blocks.
 *
 * The interpreter's reference walk (Interpreter::runLegacy) re-derives
 * everything per element: a recursive descent over the loop nest, a
 * std::map lookup per address term, a fresh BitBrick decomposition per
 * MAC, and resize churn on every transfer. An ExecPlan lowers a block
 * ONCE into a flat threaded-code program and executes it many times:
 *
 *  - the loop nest becomes a linear instruction stream with explicit
 *    LoopHead/LoopBack jumps, driven either by a portable switch loop
 *    or by computed-goto threaded dispatch (DispatchTier, see
 *    src/isa/dispatch.h);
 *  - every gen-addr expression is resolved to (loop depth, stride)
 *    terms evaluated against a dense iteration-counter array;
 *  - the compiler's innermost RdBuf/RdBuf/Mac reduction nest is
 *    recognized at lowering time and bound to a per-(aBits, wBits,
 *    signedness) template-specialized SIMD kernel
 *    (src/isa/exec_kernels.h) that executes the whole nest per
 *    dispatch -- including the 16-bit and mixed-width configs the
 *    memo table cannot cover;
 *  - scratchpad sizes come from a static high-water analysis, so the
 *    hot loop never calls resize;
 *  - ld-mem / st-mem move whole rows through MemoryModel spans (one
 *    bounds check per row instead of per element);
 *  - for operand pairs of at most 8x8 bits the unfused MAC op reads a
 *    process-cached per-config product table whose entries equal the
 *    exact decomposeMultiply path (pinned exhaustively by
 *    tests/test_interp_plan.cc), so results AND the bitBrickOps /
 *    macs counters stay bit-identical to the reference walk.
 *
 * Plans are immutable after build() and safe to execute concurrently;
 * all run state lives on the caller's stack. The process-level
 * ArtifactCache (src/core/artifact_cache.h) caches one plan per
 * distinct block content, shared by tests, benches, and serving.
 */

#ifndef BITFUSION_ISA_EXEC_PLAN_H
#define BITFUSION_ISA_EXEC_PLAN_H

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/arch/fusion_config.h"
#include "src/isa/block.h"
#include "src/isa/dispatch.h"
#include "src/isa/exec_kernels.h"
#include "src/isa/interpreter.h"
#include "src/isa/memory.h"

namespace bitfusion {

/**
 * Memoized BitBrick products for one fusion configuration with both
 * operands at most 8 bits wide. products[(rawA << wBits) | rawW] is
 * exactly evaluateDecomposition(decomposeMultiply(a, w, cfg)) -- the
 * decomposition is an exact multiply for representable operands, so
 * the table is filled with native products and the equality is pinned
 * exhaustively by tests/test_interp_plan.cc -- and opsPerMac is the
 * (value-independent) decomposition size, so the memoized MAC path
 * reproduces the reference walk bit-for-bit.
 */
struct ProductTable
{
    unsigned aBits = 0;
    unsigned wBits = 0;
    /** BitBrick ops per MAC: aLanes x wLanes, value-independent. */
    std::uint64_t opsPerMac = 0;
    /** Representable operand ranges (the reference walk asserts). */
    std::int64_t aMin = 0, aMax = 0, wMin = 0, wMax = 0;
    /** Shifted-product sums, indexed by the raw operand encodings. */
    std::vector<std::int64_t> products;
};

/**
 * Process-level memo table for @p cfg, built on first use and shared
 * by every plan with that config; nullptr when either operand
 * exceeds 8 bits (the table would not fit).
 */
const ProductTable *productTableFor(const FusionConfig &cfg);

/** Process-level product-table cache traffic (monotonic). */
struct ProductTableCacheStats
{
    /** Tables built (one per distinct memoizable config, ever). */
    std::uint64_t builds = 0;
    /** Lookups served from an already-built table. */
    std::uint64_t hits = 0;
};

/** Snapshot of the product-table cache counters. */
ProductTableCacheStats productTableCacheStats();

/** One lowered, recursion-free Fusion-ISA block. See file docs. */
class ExecPlan
{
  public:
    /** Lower @p block into a plan. The block must validate(). */
    static std::shared_ptr<const ExecPlan>
    build(const InstructionBlock &block);

    /**
     * Content identity of a block: two blocks with equal keys lower
     * to interchangeable plans (the name is deliberately excluded).
     * This is the ArtifactCache's plan-cache key.
     */
    static std::string blockKey(const InstructionBlock &block);

    /**
     * Execute the plan on the process-default dispatch tier.
     * @p buffers are the interpreter's scratchpads: resized once to
     * the static high-water sizes and zero-filled, so the hot loop
     * never reallocates. Stats accumulate into @p stats exactly as
     * the reference walk would.
     */
    void execute(MemoryModel &memory, InterpStats &stats,
                 std::array<std::vector<std::int64_t>, 3> &buffers) const;

    /** Execute on an explicit dispatch tier (parity tests, benches). */
    void execute(MemoryModel &memory, InterpStats &stats,
                 std::array<std::vector<std::int64_t>, 3> &buffers,
                 DispatchTier tier) const;

    /** Static per-buffer size (elements) the plan executes within. */
    const std::array<std::uint64_t, 3> &
    bufferSizes() const
    {
        return bufSize_;
    }

    /**
     * One past the largest off-chip address any transfer can touch:
     * a MemoryModel of at least this size executes the plan without
     * tripping the bounds checks. Harness code (parity tests, the
     * perf bench) sizes synthetic memories from this.
     */
    std::uint64_t memoryExtent() const { return memExtent_; }

    /** Nest depth (number of loops). */
    unsigned depth() const { return static_cast<unsigned>(iters_.size()); }

    /** True when the unfused MAC path runs on the product table. */
    bool memoized() const { return memo_ != nullptr; }

    /**
     * True when the Specialized tier binds the innermost reduction
     * nest to a fused kernel (the Switch/Threaded tiers always run
     * the per-op program).
     */
    bool fused() const { return fused_.dims > 0; }

    /** Loop dimensions the fused kernel covers (0 when unfused). */
    unsigned fusedDims() const { return fused_.dims; }

    /** Fused-kernel identifier like "mac8u.8s" ("" when unfused). */
    const std::string &kernelName() const { return kernelName_; }

  private:
    ExecPlan() = default;

    /** Serialization (src/isa/plan_serde.cc) reads/writes the
     *  private program representation directly. */
    friend struct PlanSerde;

    /** One (loop depth, stride) address term. */
    struct AddrTerm
    {
        unsigned depth;
        std::uint64_t stride;
    };

    /** A fully resolved gen-addr expression for one (buffer, space). */
    struct AddrExpr
    {
        /** Constant part (the memory base for the Mem space). */
        std::uint64_t base = 0;
        /** Stride of the 2-D DMA row counter (addr_id::dmaRow). */
        std::uint64_t rowStride = 0;
        std::vector<AddrTerm> terms;
    };

    /** Lowered program operation. */
    enum class OpKind : std::uint8_t
    {
        LdMem = 0,
        StMem,
        SetRows,
        RdBuf,
        WrBuf,
        Mac,
        MaxOp,
        ReluQuant,
        Reset,
        /** Loop entry: reset the counter; jump past LoopBack when the
         *  trip count is zero. */
        LoopHead,
        /** Loop latch: bump the counter; jump to the loop top while
         *  iterations remain. */
        LoopBack,
        /** The fused reduction nest (Specialized program only). */
        FusedMac,
        /** End of program. */
        Halt,
    };
    static constexpr unsigned kOpKindCount = 13;

    struct CodeOp
    {
        OpKind kind;
        std::uint8_t buf = 0;
        /** Loop depth (LoopHead/LoopBack). */
        std::uint16_t loop = 0;
        /** Jump target (LoopHead: past the latch; LoopBack: top). */
        std::uint32_t target = 0;
        /** Words per row (transfers) or row count (set-rows). */
        std::uint64_t imm = 0;
        /** Relu-quant requantization shift. */
        unsigned shift = 0;
        /** Relu-quant output width (0 = no clamp). */
        unsigned outBits = 0;
        /** St-mem drain-path activation flag. */
        bool activate = false;
    };

    /** The fused reduction nest: everything static precomputed. */
    struct FusedNest
    {
        /** Loops [firstLoop, depth) the kernel covers; dims == 0
         *  means no nest was recognized. */
        unsigned firstLoop = 0;
        unsigned dims = 0;
        /** Total MACs per dispatch (0 skips the op entirely). */
        std::uint64_t total = 0;
        /** bitBrickOps per MAC (value-independent). */
        std::uint64_t opsPerMac = 0;
        /** Offset of the last element read per operand side. */
        std::uint64_t lastOffA = 0, lastOffW = 0;
        /** Outer-loop parts of the operand access expressions. */
        AddrExpr aOuter, wOuter;
        /** Iteration-space prototype (pointers patched per call). */
        MacNestArgs proto;
        MacNestFn kernel = nullptr;
    };

    struct Runtime;

    std::uint64_t evalMax(const AddrExpr &e) const;
    void transfer(const CodeOp &op, bool to_buffer, Runtime &rt) const;
    void doRdBuf(const CodeOp &op, Runtime &rt) const;
    void doWrBuf(const CodeOp &op, Runtime &rt) const;
    void doMac(Runtime &rt) const;
    void doMax(Runtime &rt) const;
    void doReluQuant(const CodeOp &op, Runtime &rt) const;
    void doReset(Runtime &rt) const;
    void doFusedMac(Runtime &rt) const;
    void runSwitch(const std::vector<CodeOp> &code, Runtime &rt) const;
    void runThreaded(const std::vector<CodeOp> &code, Runtime &rt) const;

    /** Iteration counts by loop depth. */
    std::vector<std::uint64_t> iters_;
    /** The lowered per-op program (Switch/Threaded tiers). */
    std::vector<CodeOp> code_;
    /** The program with the reduction nest fused (Specialized tier);
     *  empty when no nest was recognized (code_ runs instead). */
    std::vector<CodeOp> fusedCode_;
    FusedNest fused_;
    std::string kernelName_;
    /** exprs_[buffer][space]; see AddrSpace. */
    AddrExpr exprs_[3][3];
    /** Static high-water scratchpad sizes. */
    std::array<std::uint64_t, 3> bufSize_{0, 0, 0};
    /** Largest set-rows immediate (row bound of the 2-D DMAs). */
    std::uint64_t maxRows_ = 1;
    /** Static bound on off-chip addresses; see memoryExtent(). */
    std::uint64_t memExtent_ = 0;

    FusionConfig config_;
    unsigned actShift_ = 0;
    unsigned actOutBits_ = 0;
    /** Memoized MAC products; nullptr -> exact decomposition. */
    const ProductTable *memo_ = nullptr;
};

} // namespace bitfusion

#endif // BITFUSION_ISA_EXEC_PLAN_H
