/**
 * @file
 * Flat element-granular memory model used by the functional
 * interpreter. Regions are allocated per tensor; addresses in the
 * Fusion-ISA address expressions (Eq. 4) index elements.
 */

#ifndef BITFUSION_ISA_MEMORY_H
#define BITFUSION_ISA_MEMORY_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/logging.h"

namespace bitfusion {

/** Off-chip memory as seen by ld-mem / st-mem. */
class MemoryModel
{
  public:
    /** Allocate @p count zero-initialized elements; returns base. */
    std::uint64_t
    allocate(std::size_t count)
    {
        const std::uint64_t base = storage.size();
        storage.resize(storage.size() + count, 0);
        return base;
    }

    std::int64_t
    read(std::uint64_t addr) const
    {
        BF_ASSERT(addr < storage.size(), "memory read out of range");
        return storage[addr];
    }

    void
    write(std::uint64_t addr, std::int64_t value)
    {
        BF_ASSERT(addr < storage.size(), "memory write out of range");
        storage[addr] = value;
    }

    /**
     * Read-only view of @p count contiguous elements at @p addr.
     * One bounds check for the whole span; the bulk-DMA paths use
     * this instead of per-element read()/write() calls.
     */
    const std::int64_t *
    readSpan(std::uint64_t addr, std::uint64_t count) const
    {
        BF_ASSERT(addr + count <= storage.size(),
                  "memory read span out of range");
        return storage.data() + addr;
    }

    /** Mutable view of @p count contiguous elements at @p addr. */
    std::int64_t *
    writeSpan(std::uint64_t addr, std::uint64_t count)
    {
        BF_ASSERT(addr + count <= storage.size(),
                  "memory write span out of range");
        return storage.data() + addr;
    }

    std::size_t size() const { return storage.size(); }

  private:
    std::vector<std::int64_t> storage;
};

} // namespace bitfusion

#endif // BITFUSION_ISA_MEMORY_H
