/**
 * @file
 * Instruction blocks: the unit of Fusion-ISA programs.
 *
 * A block implements one DNN layer (or a group of fused layers). The
 * fusion configuration is fixed across the block (set by setup); the
 * words following setup carry the memory base addresses for the three
 * scratchpads (paper §IV-A).
 */

#ifndef BITFUSION_ISA_BLOCK_H
#define BITFUSION_ISA_BLOCK_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/arch/fusion_config.h"
#include "src/isa/instruction.h"

namespace bitfusion {

/** One block-structured Fusion-ISA program unit. */
struct InstructionBlock
{
    /** Layer (or fused-layer-group) name, for reports. */
    std::string name;
    /** Fusion configuration the setup instruction encodes. */
    FusionConfig config;
    /**
     * Memory base addresses (in elements) for IBUF, OBUF, WBUF
     * fills/drains -- the "words after the setup instruction".
     */
    std::array<std::uint64_t, 3> baseAddr{0, 0, 0};
    /** The instructions, setup first, block-end last. */
    std::vector<Instruction> instructions;
    /** Drain-path activation: requantization right shift. */
    unsigned actShift = 0;
    /** Drain-path activation: output bitwidth (0 = no clamp). */
    unsigned actOutBits = 0;

    /** Number of loop instructions (the nest depth). */
    unsigned loopCount() const;

    /** Iteration count of the loop at nest position @p idx. */
    std::uint64_t loopIterations(unsigned idx) const;

    /** Total dynamic iterations of the innermost level. */
    std::uint64_t innermostIterations() const;

    /**
     * Validate the block structure: setup first, block-end last,
     * loop ids unique, body levels within the nest depth. Fatal on
     * violation (these blocks come from the compiler; a malformed
     * block is a compiler bug surfaced to the user).
     */
    void validate() const;

    /** Encode all instructions into 32-bit words. */
    std::vector<std::uint32_t> encodeWords() const;

    /** Decode a word stream back into instructions. */
    static std::vector<Instruction>
    decodeWords(const std::vector<std::uint32_t> &words);

    /** Multi-line disassembly with nest indentation. */
    std::string disassemble() const;
};

} // namespace bitfusion

#endif // BITFUSION_ISA_BLOCK_H
