/**
 * @file
 * Specialized MAC-reduction kernels for compiled execution plans.
 *
 * When ExecPlan::build recognizes the compiler's innermost
 * RdBuf/RdBuf/Mac reduction nest (see exec_plan.cc), it binds the
 * whole nest to one of these kernels instead of dispatching the
 * three body ops per element. A kernel executes the full multi-level
 * reduction -- up to the loop that carries the accumulator -- as
 * tight nested loops with a vectorizable unit-stride inner loop.
 *
 * Bit-exactness contract: for every representable operand pair the
 * BitBrick decomposition is an exact radix-4 signed-digit multiply,
 * so evaluateDecomposition(decomposeMultiply(a, w, cfg)) == a * w.
 * The memoized ProductTable build asserts this exhaustively for
 * <= 8x8-bit configs and tests/test_interp_plan.cc pins it for the
 * 16-bit and mixed-width configs, so the kernels can use the native
 * multiplier while reproducing the reference walk bit-for-bit --
 * including the InterpStats counters, whose per-MAC decomposition
 * size is value-independent (aLanes x wLanes).
 *
 * Operands outside the configured representable range must fail
 * exactly like the reference walk (decomposeMultiply's assert). The
 * kernels accumulate a branchless "bad" mask alongside the products;
 * on a nonzero mask the caller invokes reportUnrepresentable, which
 * re-walks the nest in iteration order and routes the first
 * offending pair through decomposeMultiply for the identical panic.
 *
 * Each kernel is a template specialization over
 * (aBits, aSigned, wBits, wSigned); selectMacNestKernel picks the
 * instantiation matching a FusionConfig at plan-build time, falling
 * back to a runtime-bounds generic for widths outside the ISA's
 * {1, 2, 4, 8, 16} set (unreachable through validated configs).
 */

#ifndef BITFUSION_ISA_EXEC_KERNELS_H
#define BITFUSION_ISA_EXEC_KERNELS_H

#include <cstdint>

#include "src/arch/fusion_config.h"

namespace bitfusion {

/** Upper bound on fused reduction-nest depth (deeper nests do not
 *  fuse and run on the general dispatch loop). */
constexpr unsigned kMaxFusedDims = 4;

/**
 * One fused reduction-nest invocation. Base pointers are already
 * offset for the enclosing (non-fused) loop counters; strides and
 * trip counts are per fused dimension, outermost first. All trip
 * counts are nonzero (the caller skips empty nests).
 */
struct MacNestArgs
{
    const std::int64_t *a = nullptr;
    const std::int64_t *w = nullptr;
    std::uint64_t iters[kMaxFusedDims] = {0, 0, 0, 0};
    std::uint64_t aStride[kMaxFusedDims] = {0, 0, 0, 0};
    std::uint64_t wStride[kMaxFusedDims] = {0, 0, 0, 0};
    unsigned dims = 0;
    /** Representable operand ranges (used by the generic kernel and
     *  the failure re-walk; specialized kernels fold their own). */
    std::int64_t aMin = 0, aMax = 0, wMin = 0, wMax = 0;
};

/**
 * Execute the nest: returns the sum of products in wraparound
 * (mod 2^64) arithmetic -- identical to the reference walk's int64
 * accumulation wherever that walk is defined -- and ORs operand
 * range violations into @p bad (nonzero means some operand was not
 * representable; the accumulator is then meaningless and the caller
 * must report through reportUnrepresentable).
 */
using MacNestFn = std::uint64_t (*)(const MacNestArgs &args,
                                    std::uint64_t &bad);

/** Kernel instantiation for @p cfg. Never null. */
MacNestFn selectMacNestKernel(const FusionConfig &cfg);

/**
 * Re-walk the nest in iteration order and fail exactly like the
 * reference walk on the first operand pair outside @p cfg's
 * representable range (decomposeMultiply's assert). Panics
 * unconditionally: only called when a kernel reported a bad mask.
 */
[[noreturn]] void reportUnrepresentable(const MacNestArgs &args,
                                        const FusionConfig &cfg);

} // namespace bitfusion

#endif // BITFUSION_ISA_EXEC_KERNELS_H
