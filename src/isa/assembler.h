/**
 * @file
 * Fusion-ISA text assembler: parses the mnemonic syntax the
 * disassembler emits back into instructions, completing the
 * round-trippable toolchain (disassemble -> edit -> assemble).
 *
 * Grammar (one instruction per line; indentation and blank lines are
 * ignored; ';' starts a comment):
 *
 *   setup a<bits><u|s> w<bits><u|s>
 *   loop id=<n> iters=<n>
 *   gen-addr <IBUF|OBUF|WBUF>.<mem|buf|fill> loop=<n> stride=<n>
 *   ld-mem <buf> words=<n> @L<n>[/post]
 *   st-mem <buf> words=<n> @L<n>[/post] [+act]
 *   rd-buf <buf> @L<n>[/post]
 *   wr-buf <buf> @L<n>[/post]
 *   compute <mac|max|reset> @L<n>
 *   compute relu-quant @L<n> shift=<n> bits=<n>
 *   set-rows rows=<n> @L<n>
 *   block-end next=<n>
 */

#ifndef BITFUSION_ISA_ASSEMBLER_H
#define BITFUSION_ISA_ASSEMBLER_H

#include <string>
#include <vector>

#include "src/isa/instruction.h"

namespace bitfusion {

/** Text-to-instruction assembler. */
class Assembler
{
  public:
    /**
     * Assemble one instruction from a single line.
     * Fatal on malformed input (assembler input is user-supplied).
     */
    static Instruction parseLine(const std::string &line);

    /**
     * Assemble a multi-line program; comment-only and blank lines
     * are skipped.
     */
    static std::vector<Instruction> parse(const std::string &text);
};

} // namespace bitfusion

#endif // BITFUSION_ISA_ASSEMBLER_H
