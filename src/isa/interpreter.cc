#include "src/isa/interpreter.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "src/arch/decompose.h"
#include "src/common/bitutils.h"
#include "src/common/logging.h"
#include "src/core/artifact_cache.h"
#include "src/isa/exec_plan.h"

namespace bitfusion {

Interpreter::Interpreter(MemoryModel &memory, ArtifactCache *planCache)
    : memory(memory), planCache(planCache)
{
}

void
Interpreter::run(const InstructionBlock &b)
{
    ArtifactCache &cache =
        planCache != nullptr ? *planCache : ArtifactCache::process();
    run(*cache.plan(b));
}

void
Interpreter::run(const ExecPlan &plan)
{
    plan.execute(memory, _stats, buffers);
}

void
Interpreter::run(const ExecPlan &plan, DispatchTier tier)
{
    plan.execute(memory, _stats, buffers, tier);
}

std::uint64_t
Interpreter::evalAddr(BufferId buf, AddrSpace space, std::uint64_t row) const
{
    const AddrExpr &e = exprs[static_cast<unsigned>(buf)]
                             [static_cast<unsigned>(space)];
    std::uint64_t addr = 0;
    if (space == AddrSpace::Mem)
        addr = block->baseAddr[static_cast<unsigned>(buf)];
    for (const auto &[id, stride] : e.strides) {
        if (id == addr_id::dmaRow) {
            addr += row * stride;
        } else {
            const auto it = iter.find(id);
            BF_ASSERT(it != iter.end(), "address references loop ", id,
                      " outside its scope");
            addr += it->second * stride;
        }
    }
    return addr;
}

void
Interpreter::transfer(const Instruction &inst, bool to_buffer)
{
    const BufferId buf = inst.buffer();
    const unsigned b = static_cast<unsigned>(buf);
    const std::uint64_t words = inst.fullImm();
    const std::uint64_t rows = pendingRows;
    pendingRows = 1;
    if (rows == 0)
        return;

    auto &store = buffers[b];
    // Pre-size once per transfer: row strides are non-negative, so
    // the last row holds the high-water address. This replaces the
    // old per-row resize churn; the bufHighWater stat is unchanged
    // (it always equaled the last row's top).
    const std::uint64_t top =
        evalAddr(buf, AddrSpace::BufFill, rows - 1) + words;
    if (top > store.size())
        store.resize(top, 0);
    _stats.bufHighWater[b] =
        std::max<std::uint64_t>(_stats.bufHighWater[b], top);

    if (words > 0) {
        const bool activate = !to_buffer && inst.isActivate();
        for (std::uint64_t r = 0; r < rows; ++r) {
            const std::uint64_t mem0 = evalAddr(buf, AddrSpace::Mem, r);
            const std::uint64_t buf0 =
                evalAddr(buf, AddrSpace::BufFill, r);
            if (to_buffer) {
                std::memcpy(&store[buf0], memory.readSpan(mem0, words),
                            words * sizeof(std::int64_t));
            } else if (activate) {
                // Activation unit on the drain path (Fig. 3):
                // relu then requantize.
                std::int64_t *dst = memory.writeSpan(mem0, words);
                for (std::uint64_t kk = 0; kk < words; ++kk) {
                    std::int64_t v = store[buf0 + kk];
                    v = std::max<std::int64_t>(v, 0) >> block->actShift;
                    if (block->actOutBits)
                        v = clampUnsigned(v, block->actOutBits);
                    dst[kk] = v;
                }
                _stats.auxOps += words;
            } else {
                std::memcpy(memory.writeSpan(mem0, words), &store[buf0],
                            words * sizeof(std::int64_t));
            }
        }
    }
    if (to_buffer)
        _stats.dramLoadElems[b] += rows * words;
    else
        _stats.dramStoreElems[b] += rows * words;
}

void
Interpreter::execBody(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::LdMem:
        transfer(inst, true);
        break;
      case Opcode::StMem:
        transfer(inst, false);
        break;
      case Opcode::SetRows:
        pendingRows = inst.fullImm();
        break;
      case Opcode::RdBuf: {
        const unsigned b = static_cast<unsigned>(inst.buffer());
        const std::uint64_t addr =
            evalAddr(inst.buffer(), AddrSpace::BufAccess, 0);
        auto &store = buffers[b];
        BF_ASSERT(addr < store.size(), "rd-buf beyond filled data in ",
                  block->name);
        const std::int64_t v = store[addr];
        switch (inst.buffer()) {
          case BufferId::Ibuf: regIn = v; break;
          case BufferId::Wbuf: regWgt = v; break;
          case BufferId::Obuf: regOut = v; break;
        }
        ++_stats.bufReads[b];
        break;
      }
      case Opcode::WrBuf: {
        const unsigned b = static_cast<unsigned>(inst.buffer());
        const std::uint64_t addr =
            evalAddr(inst.buffer(), AddrSpace::BufAccess, 0);
        auto &store = buffers[b];
        if (addr >= store.size())
            store.resize(addr + 1, 0);
        _stats.bufHighWater[b] =
            std::max<std::uint64_t>(_stats.bufHighWater[b], addr + 1);
        store[addr] = regOut;
        ++_stats.bufWrites[b];
        break;
      }
      case Opcode::Compute:
        switch (inst.fn()) {
          case ComputeFn::Mac: {
            // The product goes through the BitBrick decomposition so
            // the interpreter exercises the fusion arithmetic.
            const auto ops =
                decomposeMultiply(regIn, regWgt, block->config);
            regOut += evaluateDecomposition(ops);
            ++_stats.macs;
            _stats.bitBrickOps += ops.size();
            break;
          }
          case ComputeFn::Max:
            regOut = std::max(regOut, regIn);
            ++_stats.auxOps;
            break;
          case ComputeFn::ReluQuant: {
            const unsigned shift = inst.imm & 0xff;
            const unsigned out_bits = (inst.imm >> 8) & 0xff;
            std::int64_t v = std::max<std::int64_t>(regIn, 0) >> shift;
            regOut = out_bits ? clampUnsigned(v, out_bits) : v;
            ++_stats.auxOps;
            break;
          }
          case ComputeFn::Reset:
            regOut = std::numeric_limits<std::int64_t>::min();
            break;
        }
        break;
      default:
        BF_PANIC("unexpected opcode in block body");
    }
}

void
Interpreter::runLevel(unsigned level)
{
    for (const Instruction *inst : levels[level].pre)
        execBody(*inst);
    if (level < loops.size()) {
        const LoopInfo &loop = loops[level];
        for (std::uint64_t it = 0; it < loop.iterations; ++it) {
            iter[loop.id] = it;
            runLevel(level + 1);
        }
        iter.erase(loop.id);
    }
    for (const Instruction *inst : levels[level].post)
        execBody(*inst);
}

void
Interpreter::runLegacy(const InstructionBlock &b)
{
    b.validate();
    block = &b;
    loops.clear();
    iter.clear();
    for (auto &row : exprs)
        for (auto &e : row)
            e.strides.clear();
    for (auto &buf : buffers)
        buf.clear();
    pendingRows = 1;
    regIn = regWgt = regOut = 0;

    // First pass: collect loops, address expressions, and body
    // instructions grouped by level.
    for (const auto &inst : b.instructions) {
        if (inst.op == Opcode::Loop)
            loops.push_back({inst.id, inst.fullImm()});
    }
    levels.assign(loops.size() + 1, LevelBody{});
    for (const auto &inst : b.instructions) {
        switch (inst.op) {
          case Opcode::Setup:
          case Opcode::Loop:
          case Opcode::BlockEnd:
            break;
          case Opcode::GenAddr:
            exprs[static_cast<unsigned>(inst.buffer())]
                 [static_cast<unsigned>(inst.space())]
                .strides.emplace_back(inst.id, inst.fullImm());
            break;
          default: {
            const unsigned level = inst.id;
            BF_ASSERT(level < levels.size(), "body level out of range");
            if (inst.isPost())
                levels[level].post.push_back(&inst);
            else
                levels[level].pre.push_back(&inst);
            break;
          }
        }
    }

    runLevel(0);
    block = nullptr;
}

} // namespace bitfusion
