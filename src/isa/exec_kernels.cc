#include "src/isa/exec_kernels.h"

#include "src/arch/decompose.h"
#include "src/common/bitutils.h"
#include "src/common/logging.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

// The contiguous inner loop is written so the compiler can vectorize
// it: independent lanes, reassociable (wraparound) accumulation, and
// branchless range checks folded into a lane mask. `#pragma omp simd`
// states that intent explicitly where the compiler accepts the
// pragma without -fopenmp's runtime (-fopenmp-simd, detected by
// CMake as BITFUSION_OPENMP_SIMD).
#if defined(BITFUSION_OPENMP_SIMD)
#define BF_SIMD_REDUCE _Pragma("omp simd reduction(+ : acc) reduction(| : bad)")
#else
#define BF_SIMD_REDUCE
#endif

namespace bitfusion {

namespace {

/**
 * Unit-stride reduction over @p n operand pairs. Products and the
 * accumulator are computed in uint64 (wraparound) arithmetic: exact
 * two's-complement match for the reference walk's int64 accumulation
 * on every representable operand, and no signed-overflow UB on
 * out-of-range garbage (which only feeds the bad mask, never a
 * result).
 */
inline std::uint64_t
innerContiguous(const std::int64_t *a, const std::int64_t *w,
                std::uint64_t n, std::int64_t aMin, std::int64_t aMax,
                std::int64_t wMin, std::int64_t wMax,
                std::uint64_t &badOut)
{
    std::uint64_t acc = 0;
    std::uint64_t bad = 0;
    std::uint64_t i = 0;

#if defined(__AVX2__)
    // Four int64 lanes per step. The products use _mm256_mul_epi32
    // (sign-extended low-32 multiply), exact for every in-range
    // operand: representable values span at most 17 bits. Lanes that
    // fail the range check poison the bad mask and the whole nest
    // aborts before the accumulator is consumed.
    if (n >= 4) {
        const __m256i aMinV = _mm256_set1_epi64x(aMin);
        const __m256i aMaxV = _mm256_set1_epi64x(aMax);
        const __m256i wMinV = _mm256_set1_epi64x(wMin);
        const __m256i wMaxV = _mm256_set1_epi64x(wMax);
        __m256i accV = _mm256_setzero_si256();
        __m256i badV = _mm256_setzero_si256();
        for (; i + 4 <= n; i += 4) {
            const __m256i av = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(a + i));
            const __m256i wv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(w + i));
            badV = _mm256_or_si256(
                badV,
                _mm256_or_si256(
                    _mm256_or_si256(_mm256_cmpgt_epi64(aMinV, av),
                                    _mm256_cmpgt_epi64(av, aMaxV)),
                    _mm256_or_si256(_mm256_cmpgt_epi64(wMinV, wv),
                                    _mm256_cmpgt_epi64(wv, wMaxV))));
            accV = _mm256_add_epi64(accV, _mm256_mul_epi32(av, wv));
        }
        alignas(32) std::uint64_t lanes[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), accV);
        acc = lanes[0] + lanes[1] + lanes[2] + lanes[3];
        if (!_mm256_testz_si256(badV, badV))
            bad = 1;
    }
#endif

    BF_SIMD_REDUCE
    for (std::uint64_t k = i; k < n; ++k) {
        const std::int64_t av = a[k];
        const std::int64_t wv = w[k];
        bad |= static_cast<std::uint64_t>(av < aMin) |
               static_cast<std::uint64_t>(av > aMax) |
               static_cast<std::uint64_t>(wv < wMin) |
               static_cast<std::uint64_t>(wv > wMax);
        acc += static_cast<std::uint64_t>(av) *
               static_cast<std::uint64_t>(wv);
    }
    badOut |= bad;
    return acc;
}

/** Strided inner loop (compiler-emitted nests are unit-stride; this
 *  covers hand-built and fuzzed blocks). */
inline std::uint64_t
innerStrided(const std::int64_t *a, const std::int64_t *w,
             std::uint64_t n, std::uint64_t aStride,
             std::uint64_t wStride, std::int64_t aMin,
             std::int64_t aMax, std::int64_t wMin, std::int64_t wMax,
             std::uint64_t &badOut)
{
    std::uint64_t acc = 0;
    std::uint64_t bad = 0;
    for (std::uint64_t k = 0; k < n; ++k) {
        const std::int64_t av = a[k * aStride];
        const std::int64_t wv = w[k * wStride];
        bad |= static_cast<std::uint64_t>(av < aMin) |
               static_cast<std::uint64_t>(av > aMax) |
               static_cast<std::uint64_t>(wv < wMin) |
               static_cast<std::uint64_t>(wv > wMax);
        acc += static_cast<std::uint64_t>(av) *
               static_cast<std::uint64_t>(wv);
    }
    badOut |= bad;
    return acc;
}

/**
 * Shared nest driver: up to kMaxFusedDims dimensions, padded with
 * unit outer dims so the loop structure is static. Bounds arrive by
 * value; the template kernels below pass compile-time constants that
 * fold after inlining.
 */
inline std::uint64_t
runNest(const MacNestArgs &args, std::int64_t aMin, std::int64_t aMax,
        std::int64_t wMin, std::int64_t wMax, std::uint64_t &bad)
{
    std::uint64_t it[kMaxFusedDims] = {1, 1, 1, 1};
    std::uint64_t as[kMaxFusedDims] = {0, 0, 0, 0};
    std::uint64_t ws[kMaxFusedDims] = {0, 0, 0, 0};
    const unsigned pad = kMaxFusedDims - args.dims;
    for (unsigned d = 0; d < args.dims; ++d) {
        it[pad + d] = args.iters[d];
        as[pad + d] = args.aStride[d];
        ws[pad + d] = args.wStride[d];
    }

    const bool contiguous = as[3] == 1 && ws[3] == 1;
    std::uint64_t acc = 0;
    for (std::uint64_t i0 = 0; i0 < it[0]; ++i0) {
        for (std::uint64_t i1 = 0; i1 < it[1]; ++i1) {
            for (std::uint64_t i2 = 0; i2 < it[2]; ++i2) {
                const std::int64_t *a =
                    args.a + i0 * as[0] + i1 * as[1] + i2 * as[2];
                const std::int64_t *w =
                    args.w + i0 * ws[0] + i1 * ws[1] + i2 * ws[2];
                acc += contiguous
                           ? innerContiguous(a, w, it[3], aMin, aMax,
                                             wMin, wMax, bad)
                           : innerStrided(a, w, it[3], as[3], ws[3],
                                          aMin, aMax, wMin, wMax, bad);
            }
        }
    }
    return acc;
}

/** Representable range of one operand side as compile-time constants. */
template <unsigned Bits, bool Signed>
struct Range
{
    static constexpr std::int64_t min = Signed ? signedMin(Bits) : 0;
    static constexpr std::int64_t max =
        Signed ? signedMax(Bits) : unsignedMax(Bits);
};

/** The per-config kernel: one instantiation per (aBits, aSigned,
 *  wBits, wSigned) the ISA admits. */
template <unsigned ABits, bool ASigned, unsigned WBits, bool WSigned>
std::uint64_t
macNestKernel(const MacNestArgs &args, std::uint64_t &bad)
{
    return runNest(args, Range<ABits, ASigned>::min,
                   Range<ABits, ASigned>::max,
                   Range<WBits, WSigned>::min,
                   Range<WBits, WSigned>::max, bad);
}

/** Runtime-bounds fallback for widths outside the ISA's set (not
 *  reachable through a validated FusionConfig). */
std::uint64_t
macNestGeneric(const MacNestArgs &args, std::uint64_t &bad)
{
    return runNest(args, args.aMin, args.aMax, args.wMin, args.wMax,
                   bad);
}

template <unsigned ABits, bool ASigned>
MacNestFn
selectByWeight(const FusionConfig &cfg)
{
    switch (cfg.wBits) {
      case 1:
        return cfg.wSigned ? &macNestKernel<ABits, ASigned, 1, true>
                           : &macNestKernel<ABits, ASigned, 1, false>;
      case 2:
        return cfg.wSigned ? &macNestKernel<ABits, ASigned, 2, true>
                           : &macNestKernel<ABits, ASigned, 2, false>;
      case 4:
        return cfg.wSigned ? &macNestKernel<ABits, ASigned, 4, true>
                           : &macNestKernel<ABits, ASigned, 4, false>;
      case 8:
        return cfg.wSigned ? &macNestKernel<ABits, ASigned, 8, true>
                           : &macNestKernel<ABits, ASigned, 8, false>;
      case 16:
        return cfg.wSigned ? &macNestKernel<ABits, ASigned, 16, true>
                           : &macNestKernel<ABits, ASigned, 16, false>;
      default:
        return &macNestGeneric;
    }
}

template <unsigned ABits>
MacNestFn
selectByActivationSign(const FusionConfig &cfg)
{
    return cfg.aSigned ? selectByWeight<ABits, true>(cfg)
                       : selectByWeight<ABits, false>(cfg);
}

} // namespace

MacNestFn
selectMacNestKernel(const FusionConfig &cfg)
{
    cfg.validate();
    switch (cfg.aBits) {
      case 1: return selectByActivationSign<1>(cfg);
      case 2: return selectByActivationSign<2>(cfg);
      case 4: return selectByActivationSign<4>(cfg);
      case 8: return selectByActivationSign<8>(cfg);
      case 16: return selectByActivationSign<16>(cfg);
      default: return &macNestGeneric;
    }
}

void
reportUnrepresentable(const MacNestArgs &args, const FusionConfig &cfg)
{
    // Re-walk in iteration order; the first out-of-range pair goes
    // through decomposeMultiply, whose representability assert is the
    // reference walk's exact failure.
    std::uint64_t it[kMaxFusedDims] = {1, 1, 1, 1};
    std::uint64_t as[kMaxFusedDims] = {0, 0, 0, 0};
    std::uint64_t ws[kMaxFusedDims] = {0, 0, 0, 0};
    const unsigned pad = kMaxFusedDims - args.dims;
    for (unsigned d = 0; d < args.dims; ++d) {
        it[pad + d] = args.iters[d];
        as[pad + d] = args.aStride[d];
        ws[pad + d] = args.wStride[d];
    }
    for (std::uint64_t i0 = 0; i0 < it[0]; ++i0) {
        for (std::uint64_t i1 = 0; i1 < it[1]; ++i1) {
            for (std::uint64_t i2 = 0; i2 < it[2]; ++i2) {
                for (std::uint64_t i3 = 0; i3 < it[3]; ++i3) {
                    const std::int64_t av =
                        args.a[i0 * as[0] + i1 * as[1] + i2 * as[2] +
                               i3 * as[3]];
                    const std::int64_t wv =
                        args.w[i0 * ws[0] + i1 * ws[1] + i2 * ws[2] +
                               i3 * ws[3]];
                    if (!representable(av, cfg.aBits, cfg.aSigned) ||
                        !representable(wv, cfg.wBits, cfg.wSigned))
                        decomposeMultiply(av, wv, cfg);
                }
            }
        }
    }
    BF_PANIC("fused MAC kernel flagged an unrepresentable operand, "
             "but the re-walk found none");
}

} // namespace bitfusion
