/**
 * @file
 * Fusion-ISA instruction definitions (paper Table I).
 *
 * Instructions are 32 bits: a 5-bit opcode, a 6-bit identifier field
 * (loop id for loop/gen-addr, loop level for body instructions), a
 * 5-bit operand-specification field (scratchpad id, compute fn,
 * signedness flags, post flag), and a 16-bit immediate (iteration
 * counts, strides, word counts, bitwidths).
 *
 * Blocks are structured (paper §IV-A): a block opens with setup,
 * closes with block-end, and contains a single loop nest. Non-loop
 * instructions carry the loop *level* they execute at; an instruction
 * at level v runs once per iteration combination of loops 0..v-1,
 * either before the deeper loops start (pre) or after they finish
 * (post). This realizes the iterative block semantics the paper uses
 * to amortize fetch/decode over a whole layer.
 */

#ifndef BITFUSION_ISA_INSTRUCTION_H
#define BITFUSION_ISA_INSTRUCTION_H

#include <cstdint>
#include <string>

namespace bitfusion {

/** Fusion-ISA opcodes (paper Table I). */
enum class Opcode : std::uint8_t
{
    Setup = 0,   ///< Configure fusion bitwidths for the block.
    Loop = 1,    ///< Declare a loop (id, iteration count).
    GenAddr = 2, ///< Bind an address stride to (buffer, space, loop).
    LdMem = 3,   ///< DRAM -> scratchpad transfer.
    StMem = 4,   ///< Scratchpad -> DRAM transfer.
    RdBuf = 5,   ///< Scratchpad -> operand register.
    WrBuf = 6,   ///< Operand register -> scratchpad.
    Compute = 7, ///< Execute the configured function.
    SetRows = 8, ///< Row count for the next 2-D ld-mem/st-mem.
    BlockEnd = 9 ///< End of block; immediate = next block id.
};

/** On-chip scratchpad buffers (paper Fig. 3). */
enum class BufferId : std::uint8_t
{
    Ibuf = 0, ///< Input buffer (shared across a row).
    Obuf = 1, ///< Output buffer (below column accumulators).
    Wbuf = 2, ///< Weight buffer (per Fusion Unit).
};

/** Address spaces a gen-addr stride can apply to. */
enum class AddrSpace : std::uint8_t
{
    Mem = 0,       ///< Off-chip memory side (ld-mem / st-mem).
    BufAccess = 1, ///< Scratchpad-local side of rd-buf / wr-buf.
    BufFill = 2,   ///< Scratchpad-local side of ld-mem / st-mem.
};

/** Compute functions (paper: multiply-add, max, nonlinearities). */
enum class ComputeFn : std::uint8_t
{
    Mac = 0,       ///< out += in * weight (systolic array).
    Max = 1,       ///< out = max(out, in) (pooling unit).
    ReluQuant = 2, ///< out = clamp(relu(in) >> shift) (activation).
    Reset = 3,     ///< out = -inf (pooling-window initialization).
};

/** Special gen-addr identifiers (not real loops). */
namespace addr_id {
/** DMA row counter of a 2-D ld-mem/st-mem. */
constexpr unsigned dmaRow = 59;
} // namespace addr_id

/** Bitwidth encoding used by setup immediates: 1,2,4,8,16 -> 0..4. */
unsigned encodeBits(unsigned bits);
/** Inverse of encodeBits(). */
unsigned decodeBits(unsigned code);

/** A decoded Fusion-ISA instruction. */
struct Instruction
{
    Opcode op = Opcode::Setup;
    /** Loop id (loop/gen-addr) or loop level (body instructions). */
    std::uint8_t id = 0;
    /** Operand specification (meaning depends on opcode). */
    std::uint8_t spec = 0;
    /** Immediate. */
    std::uint16_t imm = 0;
    /**
     * Extended immediate (strides/word counts that exceed 16 bits).
     * Carried as an extension word in the binary encoding; zero for
     * instructions whose immediate fits.
     */
    std::uint32_t immHi = 0;

    /** Full immediate value: (immHi << 16) | imm. */
    std::uint64_t
    fullImm() const
    {
        return (static_cast<std::uint64_t>(immHi) << 16) | imm;
    }

    /** The post flag of body instructions (spec bit 4). */
    bool isPost() const { return (spec >> 4) & 1; }

    /** Buffer targeted by memory/buffer instructions (spec[1:0]). */
    BufferId buffer() const;

    /** Compute function of a compute instruction (spec[2:0]). */
    ComputeFn fn() const;

    /** Address space of a gen-addr instruction (spec bit 2). */
    AddrSpace space() const;

    /** Human-readable disassembly. */
    std::string toString() const;

    // --- Construction helpers (used by the code generator) -------

    static Instruction setup(unsigned a_bits, unsigned w_bits,
                             bool a_signed, bool w_signed);
    static Instruction loop(unsigned loop_id, std::uint64_t iterations);
    static Instruction genAddr(BufferId buf, AddrSpace space,
                               unsigned loop_id, std::uint64_t stride);
    static Instruction ldMem(BufferId buf, unsigned level,
                             std::uint64_t words, bool post = false);
    static Instruction stMem(BufferId buf, unsigned level,
                             std::uint64_t words, bool post = false,
                             bool activate = false);

    /** Drain-path activation flag of st-mem (spec bit 2). */
    bool isActivate() const { return (spec >> 2) & 1; }
    static Instruction rdBuf(BufferId buf, unsigned level,
                             bool post = false);
    static Instruction wrBuf(BufferId buf, unsigned level,
                             bool post = false);
    static Instruction compute(ComputeFn fn, unsigned level,
                               unsigned imm = 0);
    static Instruction setRows(unsigned level, std::uint64_t rows,
                               bool post = false);
    static Instruction blockEnd(unsigned next_block);
};

/**
 * Encode to the 32-bit word stream. Instructions with a wide
 * immediate occupy two words (the second is the raw immHi with the
 * extension marker bit set in the first word's spec bit 3... see
 * encode()). Returns the number of words written (1 or 2).
 */
unsigned encode(const Instruction &inst, std::uint32_t out[2]);

/**
 * Decode from a word stream; @p consumed reports how many words the
 * instruction used.
 */
Instruction decode(const std::uint32_t *words, unsigned *consumed);

} // namespace bitfusion

#endif // BITFUSION_ISA_INSTRUCTION_H
