/**
 * @file
 * Functional interpreter for Fusion-ISA blocks.
 *
 * Executes a block instruction-accurately against the flat memory
 * model: the loop nest is walked like the hardware's iterative block
 * execution, gen-addr expressions realize Equation (4), and every
 * mac goes through the BitBrick decomposition path, so functional
 * bugs anywhere in the fusion arithmetic or the compiler's address
 * arithmetic surface as output mismatches against the golden
 * reference executor.
 *
 * The interpreter also counts the traffic the block generates
 * (DRAM bits, scratchpad accesses, compute operations); integration
 * tests reconcile these counts against the analytical performance
 * simulator.
 *
 * Two execution paths produce bit-identical memory, buffer, and
 * statistics results:
 *  - run() lowers the block once into a compiled ExecPlan
 *    (src/isa/exec_plan.h) -- flat loop program, dense stride
 *    tables, bulk row DMA, memoized BitBrick products -- and caches
 *    the plan in the process-level ArtifactCache, so repeated runs
 *    of the same block skip the lowering entirely. This is the fast
 *    path every caller should use.
 *  - runLegacy() is the original recursive walk kept as the
 *    reference for plan-vs-legacy parity tests and the perf
 *    benchmark baseline (bench/bench_perf.cc).
 */

#ifndef BITFUSION_ISA_INTERPRETER_H
#define BITFUSION_ISA_INTERPRETER_H

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "src/isa/block.h"
#include "src/isa/dispatch.h"
#include "src/isa/memory.h"

namespace bitfusion {

class ArtifactCache;
class ExecPlan;

/** Traffic and op counts observed while interpreting a block. */
struct InterpStats
{
    /** Elements moved from DRAM per buffer (ld-mem). */
    std::array<std::uint64_t, 3> dramLoadElems{0, 0, 0};
    /** Elements moved to DRAM per buffer (st-mem). */
    std::array<std::uint64_t, 3> dramStoreElems{0, 0, 0};
    /** rd-buf accesses per buffer. */
    std::array<std::uint64_t, 3> bufReads{0, 0, 0};
    /** wr-buf accesses per buffer. */
    std::array<std::uint64_t, 3> bufWrites{0, 0, 0};
    /** mac operations executed. */
    std::uint64_t macs = 0;
    /** BitBrick operations the macs decomposed into. */
    std::uint64_t bitBrickOps = 0;
    /** Non-mac compute operations (max/relu). */
    std::uint64_t auxOps = 0;
    /** High-water mark of scratchpad occupancy, in elements. */
    std::array<std::uint64_t, 3> bufHighWater{0, 0, 0};

    bool
    operator==(const InterpStats &o) const
    {
        return dramLoadElems == o.dramLoadElems &&
               dramStoreElems == o.dramStoreElems &&
               bufReads == o.bufReads && bufWrites == o.bufWrites &&
               macs == o.macs && bitBrickOps == o.bitBrickOps &&
               auxOps == o.auxOps && bufHighWater == o.bufHighWater;
    }
    bool operator!=(const InterpStats &o) const { return !(*this == o); }
};

/** Executes Fusion-ISA blocks functionally. */
class Interpreter
{
  public:
    /**
     * Interpret blocks against @p memory (shared across blocks).
     * @p planCache resolves run(block) plan lookups; nullptr uses
     * the process-level ArtifactCache::process() (tests pass a
     * private cache for isolated accounting, matching the
     * SweepOptions.cache / ServeOptions.cache pattern).
     */
    explicit Interpreter(MemoryModel &memory,
                         ArtifactCache *planCache = nullptr);

    /**
     * Execute one block to completion on the compiled-plan fast
     * path. The plan is built (or fetched) through the plan cache,
     * so every Interpreter sharing it performs one lowering per
     * distinct block content.
     */
    void run(const InstructionBlock &block);

    /** Execute a pre-built plan (callers that manage plans). */
    void run(const ExecPlan &plan);

    /** Execute a pre-built plan on an explicit dispatch tier
     *  (parity tests and the per-tier perf benchmark). */
    void run(const ExecPlan &plan, DispatchTier tier);

    /**
     * Execute one block on the original recursive reference walk.
     * Kept for plan-vs-legacy parity tests and as the perf-bench
     * baseline; results are bit-identical to run().
     */
    void runLegacy(const InstructionBlock &block);

    /** Statistics accumulated across run() calls. */
    const InterpStats &stats() const { return _stats; }

  private:
    struct AddrExpr
    {
        // (loop id or pseudo id) -> stride.
        std::vector<std::pair<unsigned, std::uint64_t>> strides;
    };

    struct LoopInfo
    {
        unsigned id;
        std::uint64_t iterations;
    };

    /** Per-level body instructions (pre and post lists). */
    struct LevelBody
    {
        std::vector<const Instruction *> pre;
        std::vector<const Instruction *> post;
    };

    void execBody(const Instruction &inst);
    void runLevel(unsigned level);
    std::uint64_t evalAddr(BufferId buf, AddrSpace space,
                           std::uint64_t row) const;
    void transfer(const Instruction &inst, bool to_buffer);

    MemoryModel &memory;
    ArtifactCache *planCache; // nullptr -> ArtifactCache::process()
    InterpStats _stats;

    // Per-block state.
    const InstructionBlock *block = nullptr;
    std::vector<LoopInfo> loops;
    std::vector<LevelBody> levels;
    std::map<unsigned, std::uint64_t> iter; // loop id -> current value
    // (buffer, space) -> expression
    AddrExpr exprs[3][3];
    std::array<std::vector<std::int64_t>, 3> buffers;
    std::uint64_t pendingRows = 1;
    std::int64_t regIn = 0, regWgt = 0, regOut = 0;
};

} // namespace bitfusion

#endif // BITFUSION_ISA_INTERPRETER_H
