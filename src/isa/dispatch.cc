#include "src/isa/dispatch.h"

#include <cstdlib>

#include "src/common/logging.h"

namespace bitfusion {

const char *
dispatchTierName(DispatchTier tier)
{
    switch (tier) {
      case DispatchTier::Switch: return "switch";
      case DispatchTier::Threaded: return "threaded";
      case DispatchTier::Specialized: return "specialized";
    }
    return "unknown";
}

bool
parseDispatchTier(const std::string &text, DispatchTier &out)
{
    if (text == "switch") {
        out = DispatchTier::Switch;
        return true;
    }
    if (text == "threaded") {
        out = DispatchTier::Threaded;
        return true;
    }
    if (text == "specialized") {
        out = DispatchTier::Specialized;
        return true;
    }
    return false;
}

DispatchTier
defaultDispatchTier()
{
    static const DispatchTier tier = [] {
        const char *env = std::getenv("BITFUSION_DISPATCH");
        if (env == nullptr || *env == '\0')
            return DispatchTier::Specialized;
        DispatchTier parsed;
        if (!parseDispatchTier(env, parsed))
            BF_FATAL("BITFUSION_DISPATCH='", env,
                     "' is not a dispatch tier (expected switch, "
                     "threaded, or specialized)");
        return parsed;
    }();
    return tier;
}

} // namespace bitfusion
