/**
 * @file
 * Execution-engine dispatch tiers for compiled plans.
 *
 * An ExecPlan's linear program can be driven three ways, each a rung
 * of the execution-engine ladder (docs/performance.md):
 *
 *  - Switch: portable switch dispatch over the opcode, one case per
 *    CodeOp kind.
 *  - Threaded: computed-goto threaded code (GCC/Clang `&&label`
 *    dispatch tables); falls back to the switch loop on compilers
 *    without the extension.
 *  - Specialized: threaded dispatch over the program whose innermost
 *    RdBuf/RdBuf/Mac reduction nest was fused at lowering time into
 *    a per-config template-specialized SIMD kernel
 *    (src/isa/exec_kernels.h).
 *
 * Every tier is bit-identical to Interpreter::runLegacy in memory,
 * scratchpad, and InterpStats terms; the parity suite in
 * tests/test_interp_plan.cc pins this. The default tier is
 * Specialized, overridable per process with
 * BITFUSION_DISPATCH=switch|threaded|specialized (unknown values are
 * a fatal configuration error).
 */

#ifndef BITFUSION_ISA_DISPATCH_H
#define BITFUSION_ISA_DISPATCH_H

#include <string>

namespace bitfusion {

/** How the plan runtime dispatches its lowered program. */
enum class DispatchTier : unsigned
{
    Switch = 0,
    Threaded = 1,
    Specialized = 2,
};

/** Number of tiers (for iteration in tests and benches). */
constexpr unsigned kDispatchTierCount = 3;

/** "switch" / "threaded" / "specialized". */
const char *dispatchTierName(DispatchTier tier);

/** Parse a tier name; returns false on unknown input. */
bool parseDispatchTier(const std::string &text, DispatchTier &out);

/**
 * The process-wide default tier: Specialized, unless the
 * BITFUSION_DISPATCH environment variable selects another (read
 * once, on first use; an unrecognized value is fatal).
 */
DispatchTier defaultDispatchTier();

} // namespace bitfusion

#endif // BITFUSION_ISA_DISPATCH_H
