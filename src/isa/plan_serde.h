/**
 * @file
 * Binary serialization for compiled artifacts: Fusion-ISA blocks,
 * whole compiled networks, and lowered execution plans.
 *
 * This is the payload layer of the persistent artifact store
 * (src/core/artifact_store.h): the store frames and checksums raw
 * bytes; this file defines what those bytes mean. Three properties
 * the store relies on:
 *
 *  - Determinism: serializing equal values yields identical bytes,
 *    so concurrent processes that compile the same key publish
 *    byte-identical records and their race is benign.
 *  - Round-trip fidelity: deserialize(serialize(x)) reproduces every
 *    field; for ExecPlan, serialize(deserialize(bytes)) == bytes.
 *    The only state not carried in the bytes -- the memoized product
 *    table and the fused-kernel function pointer -- is re-derived
 *    from the plan's FusionConfig on load, which tests pin to be
 *    bit-identical to a fresh lowering.
 *  - Hostility tolerance: every read is bounds-checked and every
 *    enum/index is range-checked; malformed input throws SerdeError
 *    (never a crash, never a partial object), which the cache layer
 *    treats as a miss and recompiles.
 *
 * Encodings are native-endian; the store's frame carries an
 * endianness tag and rejects foreign files before any payload is
 * parsed. kPlanSerdeVersion participates in store keys, so a format
 * change simply stops matching old entries instead of misreading
 * them; the per-payload tag is a second, independent guard.
 */

#ifndef BITFUSION_ISA_PLAN_SERDE_H
#define BITFUSION_ISA_PLAN_SERDE_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>

#include "src/compiler/schedule.h"
#include "src/isa/block.h"

namespace bitfusion {

class ExecPlan;

/** Serialization format version; bump on any layout change. */
constexpr std::uint32_t kPlanSerdeVersion = 1;

/**
 * Malformed serialized input. Deliberately an exception rather than
 * a fatal: corrupt store entries are an expected environmental
 * condition (torn writes, bit rot, version skew) and the correct
 * response is a clean recompile, not process death.
 */
struct SerdeError : std::runtime_error
{
    explicit SerdeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** Append-only native-endian byte sink. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

    void u16(std::uint16_t v) { raw(&v, sizeof v); }
    void u32(std::uint32_t v) { raw(&v, sizeof v); }
    void u64(std::uint64_t v) { raw(&v, sizeof v); }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    /** Length-prefixed string (u32 length + bytes). */
    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        out_.append(s);
    }

    void
    raw(const void *data, std::size_t len)
    {
        out_.append(static_cast<const char *>(data), len);
    }

    const std::string &bytes() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/**
 * Bounds-checked native-endian byte source. Every accessor throws
 * SerdeError instead of reading past the end.
 */
class ByteReader
{
  public:
    explicit ByteReader(const std::string &bytes)
        : p_(reinterpret_cast<const unsigned char *>(bytes.data())),
          end_(p_ + bytes.size())
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return *p_++;
    }

    std::uint16_t u16() { return scalar<std::uint16_t>(); }
    std::uint32_t u32() { return scalar<std::uint32_t>(); }
    std::uint64_t u64() { return scalar<std::uint64_t>(); }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    std::string
    str()
    {
        const std::uint32_t len = u32();
        need(len);
        std::string s(reinterpret_cast<const char *>(p_), len);
        p_ += len;
        return s;
    }

    bool atEnd() const { return p_ == end_; }

    /** Reject payloads with trailing garbage. */
    void
    expectEnd() const
    {
        if (!atEnd())
            throw SerdeError("trailing bytes after payload");
    }

  private:
    template <typename T>
    T
    scalar()
    {
        need(sizeof(T));
        T v;
        std::memcpy(&v, p_, sizeof v);
        p_ += sizeof v;
        return v;
    }

    void
    need(std::size_t n) const
    {
        if (static_cast<std::size_t>(end_ - p_) < n)
            throw SerdeError("truncated payload");
    }

    const unsigned char *p_;
    const unsigned char *end_;
};

/** Append @p block to @p out (nestable inside larger payloads). */
void serializeBlock(ByteWriter &out, const InstructionBlock &block);

/** Parse one block; throws SerdeError on malformed input. */
InstructionBlock deserializeBlock(ByteReader &in);

/** Standalone payload for a whole compiled network. */
std::string serializeCompiledNetwork(const CompiledNetwork &net);

/** Inverse of serializeCompiledNetwork; throws SerdeError. */
CompiledNetwork deserializeCompiledNetwork(const std::string &bytes);

/** Standalone payload for a lowered execution plan. */
std::string serializePlan(const ExecPlan &plan);

/**
 * Inverse of serializePlan; throws SerdeError. The product-table
 * memo and fused-kernel binding are re-derived from the plan's
 * config, everything else comes from the bytes.
 */
std::shared_ptr<const ExecPlan> deserializePlan(const std::string &bytes);

} // namespace bitfusion

#endif // BITFUSION_ISA_PLAN_SERDE_H
