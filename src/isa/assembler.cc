#include "src/isa/assembler.h"

#include <cctype>
#include <sstream>

#include "src/common/logging.h"

namespace bitfusion {

namespace {

/** Split a line into whitespace-separated tokens, dropping comments. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string current;
    for (char c : line) {
        if (c == ';')
            break;
        if (std::isspace(static_cast<unsigned char>(c))) {
            if (!current.empty()) {
                tokens.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty())
        tokens.push_back(current);
    return tokens;
}

/** Parse "key=value" returning value; fatal on mismatch. */
std::uint64_t
keyValue(const std::string &token, const std::string &key)
{
    const std::string prefix = key + "=";
    if (token.rfind(prefix, 0) != 0)
        BF_FATAL("expected '", key, "=<n>', got '", token, "'");
    return std::stoull(token.substr(prefix.size()));
}

BufferId
parseBuffer(const std::string &name)
{
    if (name == "IBUF")
        return BufferId::Ibuf;
    if (name == "OBUF")
        return BufferId::Obuf;
    if (name == "WBUF")
        return BufferId::Wbuf;
    BF_FATAL("unknown buffer '", name, "'");
}

/** Parse "@L<n>" or "@L<n>/post"; returns (level, post). */
std::pair<unsigned, bool>
parseLevel(const std::string &token)
{
    if (token.rfind("@L", 0) != 0)
        BF_FATAL("expected '@L<n>', got '", token, "'");
    std::size_t pos = 2;
    unsigned level = 0;
    while (pos < token.size() &&
           std::isdigit(static_cast<unsigned char>(token[pos]))) {
        level = level * 10 + (token[pos] - '0');
        ++pos;
    }
    bool post = false;
    if (pos < token.size()) {
        if (token.substr(pos) == "/post")
            post = true;
        else
            BF_FATAL("bad level suffix in '", token, "'");
    }
    return {level, post};
}

/** Parse the setup operand "a4u" / "w16s" form. */
std::pair<unsigned, bool>
parseOperand(const std::string &token, char prefix)
{
    if (token.empty() || token[0] != prefix)
        BF_FATAL("expected operand starting with '", std::string(1, prefix),
                 "', got '", token, "'");
    std::size_t pos = 1;
    unsigned bits = 0;
    while (pos < token.size() &&
           std::isdigit(static_cast<unsigned char>(token[pos]))) {
        bits = bits * 10 + (token[pos] - '0');
        ++pos;
    }
    if (pos + 1 != token.size() ||
        (token[pos] != 'u' && token[pos] != 's'))
        BF_FATAL("expected 'u' or 's' suffix in '", token, "'");
    return {bits, token[pos] == 's'};
}

} // namespace

Instruction
Assembler::parseLine(const std::string &line)
{
    const auto tok = tokenize(line);
    if (tok.empty())
        BF_FATAL("empty instruction line");
    const std::string &op = tok[0];

    if (op == "setup") {
        if (tok.size() != 3)
            BF_FATAL("setup needs two operands");
        const auto [a_bits, a_signed] = parseOperand(tok[1], 'a');
        const auto [w_bits, w_signed] = parseOperand(tok[2], 'w');
        return Instruction::setup(a_bits, w_bits, a_signed, w_signed);
    }
    if (op == "loop") {
        if (tok.size() != 3)
            BF_FATAL("loop needs id and iters");
        return Instruction::loop(
            static_cast<unsigned>(keyValue(tok[1], "id")),
            keyValue(tok[2], "iters"));
    }
    if (op == "gen-addr") {
        if (tok.size() != 4)
            BF_FATAL("gen-addr needs target, loop, stride");
        const std::size_t dot = tok[1].find('.');
        if (dot == std::string::npos)
            BF_FATAL("gen-addr target must be BUF.space");
        const BufferId buf = parseBuffer(tok[1].substr(0, dot));
        const std::string space = tok[1].substr(dot + 1);
        AddrSpace sp;
        if (space == "mem")
            sp = AddrSpace::Mem;
        else if (space == "buf")
            sp = AddrSpace::BufAccess;
        else if (space == "fill")
            sp = AddrSpace::BufFill;
        else
            BF_FATAL("unknown address space '", space, "'");
        return Instruction::genAddr(
            buf, sp, static_cast<unsigned>(keyValue(tok[2], "loop")),
            keyValue(tok[3], "stride"));
    }
    if (op == "ld-mem" || op == "st-mem") {
        if (tok.size() < 4)
            BF_FATAL(op, " needs buffer, words, level");
        const BufferId buf = parseBuffer(tok[1]);
        const std::uint64_t words = keyValue(tok[2], "words");
        const auto [level, post] = parseLevel(tok[3]);
        bool act = false;
        if (tok.size() == 5) {
            if (tok[4] != "+act" || op != "st-mem")
                BF_FATAL("unexpected trailing token '", tok[4], "'");
            act = true;
        } else if (tok.size() > 5) {
            BF_FATAL("too many operands for ", op);
        }
        return op == "ld-mem"
                   ? Instruction::ldMem(buf, level, words, post)
                   : Instruction::stMem(buf, level, words, post, act);
    }
    if (op == "rd-buf" || op == "wr-buf") {
        if (tok.size() != 3)
            BF_FATAL(op, " needs buffer and level");
        const BufferId buf = parseBuffer(tok[1]);
        const auto [level, post] = parseLevel(tok[2]);
        return op == "rd-buf" ? Instruction::rdBuf(buf, level, post)
                              : Instruction::wrBuf(buf, level, post);
    }
    if (op == "compute") {
        if (tok.size() < 3)
            BF_FATAL("compute needs fn and level");
        const auto [level, post] = parseLevel(tok[2]);
        if (post)
            BF_FATAL("compute has no post form");
        if (tok[1] == "mac")
            return Instruction::compute(ComputeFn::Mac, level);
        if (tok[1] == "max")
            return Instruction::compute(ComputeFn::Max, level);
        if (tok[1] == "reset")
            return Instruction::compute(ComputeFn::Reset, level);
        if (tok[1] == "relu-quant") {
            if (tok.size() != 5)
                BF_FATAL("relu-quant needs shift= and bits=");
            const unsigned shift =
                static_cast<unsigned>(keyValue(tok[3], "shift"));
            const unsigned bits =
                static_cast<unsigned>(keyValue(tok[4], "bits"));
            return Instruction::compute(ComputeFn::ReluQuant, level,
                                        (bits << 8) | (shift & 0xff));
        }
        BF_FATAL("unknown compute fn '", tok[1], "'");
    }
    if (op == "set-rows") {
        if (tok.size() != 3)
            BF_FATAL("set-rows needs rows and level");
        const std::uint64_t rows = keyValue(tok[1], "rows");
        const auto [level, post] = parseLevel(tok[2]);
        return Instruction::setRows(level, rows, post);
    }
    if (op == "block-end") {
        if (tok.size() != 2)
            BF_FATAL("block-end needs next=");
        return Instruction::blockEnd(
            static_cast<unsigned>(keyValue(tok[1], "next")));
    }
    BF_FATAL("unknown opcode '", op, "'");
}

std::vector<Instruction>
Assembler::parse(const std::string &text)
{
    std::vector<Instruction> out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        const auto tok = tokenize(line);
        if (tok.empty())
            continue;
        out.push_back(parseLine(line));
    }
    return out;
}

} // namespace bitfusion
