#include "src/isa/exec_plan.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <tuple>

#include "src/arch/decompose.h"
#include "src/common/bitutils.h"
#include "src/common/logging.h"

namespace bitfusion {

// ------------------------------------------------------- product table

namespace {

ProductTable
buildProductTable(const FusionConfig &cfg)
{
    ProductTable t;
    t.aBits = cfg.aBits;
    t.wBits = cfg.wBits;
    t.aMin = cfg.aSigned ? signedMin(cfg.aBits) : 0;
    t.aMax = cfg.aSigned ? signedMax(cfg.aBits) : unsignedMax(cfg.aBits);
    t.wMin = cfg.wSigned ? signedMin(cfg.wBits) : 0;
    t.wMax = cfg.wSigned ? signedMax(cfg.wBits) : unsignedMax(cfg.wBits);
    const std::uint64_t aSpan = 1ULL << cfg.aBits;
    const std::uint64_t wSpan = 1ULL << cfg.wBits;
    t.products.resize(aSpan * wSpan, 0);
    for (std::uint64_t ra = 0; ra < aSpan; ++ra) {
        const std::int64_t a =
            cfg.aSigned ? signExtend(ra, cfg.aBits)
                        : static_cast<std::int64_t>(ra);
        for (std::uint64_t rw = 0; rw < wSpan; ++rw) {
            const std::int64_t w =
                cfg.wSigned ? signExtend(rw, cfg.wBits)
                            : static_cast<std::int64_t>(rw);
            const auto ops = decomposeMultiply(a, w, cfg);
            t.products[(ra << cfg.wBits) | rw] =
                evaluateDecomposition(ops);
            // The decomposition size is value-independent (one op per
            // digit pair); record it once.
            t.opsPerMac = ops.size();
        }
    }
    return t;
}

} // namespace

const ProductTable *
productTableFor(const FusionConfig &cfg)
{
    cfg.validate();
    if (cfg.aBits > 8 || cfg.wBits > 8)
        return nullptr;

    using Key = std::tuple<unsigned, unsigned, bool, bool>;
    static std::mutex mutex;
    static std::map<Key, std::unique_ptr<ProductTable>> tables;

    const Key key{cfg.aBits, cfg.wBits, cfg.aSigned, cfg.wSigned};
    std::lock_guard<std::mutex> lock(mutex);
    auto &slot = tables[key];
    if (!slot)
        slot = std::make_unique<ProductTable>(buildProductTable(cfg));
    return slot.get();
}

// ------------------------------------------------------------ lowering

std::string
ExecPlan::blockKey(const InstructionBlock &block)
{
    std::string key;
    key.reserve(64 + block.instructions.size() * 16);
    auto num = [&key](std::uint64_t v) {
        key += std::to_string(v);
        key += ',';
    };
    num(block.config.aBits);
    num(block.config.wBits);
    num(block.config.aSigned);
    num(block.config.wSigned);
    for (std::uint64_t base : block.baseAddr)
        num(base);
    num(block.actShift);
    num(block.actOutBits);
    key += '#';
    for (const Instruction &inst : block.instructions) {
        num(static_cast<unsigned>(inst.op));
        num(inst.id);
        num(inst.spec);
        num(inst.imm);
        num(inst.immHi);
    }
    return key;
}

std::uint64_t
ExecPlan::evalMax(const AddrExpr &e) const
{
    // Largest address the expression can produce over the whole nest;
    // a zero-trip loop's body never runs, so its term contributes 0.
    std::uint64_t addr = e.base;
    for (const AddrTerm &t : e.terms)
        if (iters_[t.depth] > 0)
            addr += (iters_[t.depth] - 1) * t.stride;
    return addr;
}

std::shared_ptr<const ExecPlan>
ExecPlan::build(const InstructionBlock &block)
{
    block.validate();
    std::shared_ptr<ExecPlan> plan(new ExecPlan);
    plan->config_ = block.config;
    plan->actShift_ = block.actShift;
    plan->actOutBits_ = block.actOutBits;
    plan->memo_ = productTableFor(block.config);

    // Loop ids -> nest depth (ids are 6-bit; dmaRow is a pseudo id).
    int idToDepth[64];
    std::fill(std::begin(idToDepth), std::end(idToDepth), -1);
    for (const Instruction &inst : block.instructions) {
        if (inst.op == Opcode::Loop) {
            idToDepth[inst.id] =
                static_cast<int>(plan->iters_.size());
            plan->iters_.push_back(inst.fullImm());
        }
    }
    const unsigned depth = static_cast<unsigned>(plan->iters_.size());
    plan->levels_.assign(depth + 1, Level{});

    for (const Instruction &inst : block.instructions) {
        switch (inst.op) {
          case Opcode::Setup:
          case Opcode::Loop:
          case Opcode::BlockEnd:
            break;
          case Opcode::GenAddr: {
            AddrExpr &e =
                plan->exprs_[static_cast<unsigned>(inst.buffer())]
                            [static_cast<unsigned>(inst.space())];
            if (inst.id == addr_id::dmaRow) {
                e.rowStride += inst.fullImm();
            } else {
                const int d = idToDepth[inst.id];
                BF_ASSERT(d >= 0, "gen-addr references loop ",
                          static_cast<int>(inst.id),
                          " outside the nest in ", block.name);
                e.terms.push_back(
                    {static_cast<unsigned>(d), inst.fullImm()});
            }
            break;
          }
          default: {
            const unsigned level = inst.id;
            BF_ASSERT(level < plan->levels_.size(),
                      "body level out of range in ", block.name);
            Op op;
            switch (inst.op) {
              case Opcode::LdMem:
                op.kind = OpKind::LdMem;
                op.buf = static_cast<std::uint8_t>(inst.buffer());
                op.imm = inst.fullImm();
                break;
              case Opcode::StMem:
                op.kind = OpKind::StMem;
                op.buf = static_cast<std::uint8_t>(inst.buffer());
                op.imm = inst.fullImm();
                op.activate = inst.isActivate();
                break;
              case Opcode::SetRows:
                op.kind = OpKind::SetRows;
                op.imm = inst.fullImm();
                plan->maxRows_ =
                    std::max<std::uint64_t>(plan->maxRows_, op.imm);
                break;
              case Opcode::RdBuf:
                op.kind = OpKind::RdBuf;
                op.buf = static_cast<std::uint8_t>(inst.buffer());
                break;
              case Opcode::WrBuf:
                op.kind = OpKind::WrBuf;
                op.buf = static_cast<std::uint8_t>(inst.buffer());
                break;
              case Opcode::Compute:
                switch (inst.fn()) {
                  case ComputeFn::Mac:
                    op.kind = OpKind::Mac;
                    break;
                  case ComputeFn::Max:
                    op.kind = OpKind::MaxOp;
                    break;
                  case ComputeFn::ReluQuant:
                    op.kind = OpKind::ReluQuant;
                    op.shift = inst.imm & 0xff;
                    op.outBits = (inst.imm >> 8) & 0xff;
                    break;
                  case ComputeFn::Reset:
                    op.kind = OpKind::Reset;
                    break;
                  default:
                    // fn() is a raw 3-bit field; a decoded word
                    // stream can carry 4..7, which the reference
                    // walk executes as a silent no-op. Lower it to
                    // nothing for bit-identical parity.
                    continue;
                }
                break;
              default:
                BF_PANIC("unexpected opcode in block body");
            }
            if (inst.isPost())
                plan->levels_[level].post.push_back(op);
            else
                plan->levels_[level].pre.push_back(op);
            break;
          }
        }
    }

    // Memory-side bases come from the block; buffer-side expressions
    // start at zero, exactly like the reference walk.
    for (unsigned b = 0; b < 3; ++b)
        plan->exprs_[b][static_cast<unsigned>(AddrSpace::Mem)].base =
            block.baseAddr[b];

    // Static high-water analysis: the largest address each buffer can
    // see through any transfer fill or any rd-buf/wr-buf access. The
    // row bound of 2-D transfers is the largest set-rows immediate
    // (conservative when a smaller set-rows reaches a transfer, which
    // only over-allocates; the dynamic bufHighWater stat stays exact).
    for (const Level &level : plan->levels_) {
        for (const auto *span : {&level.pre, &level.post}) {
            for (const Op &op : *span) {
                if (op.kind == OpKind::LdMem ||
                    op.kind == OpKind::StMem) {
                    const AddrExpr &fill =
                        plan->exprs_[op.buf][static_cast<unsigned>(
                            AddrSpace::BufFill)];
                    const std::uint64_t need =
                        plan->evalMax(fill) +
                        (plan->maxRows_ - 1) * fill.rowStride + op.imm;
                    plan->bufSize_[op.buf] =
                        std::max(plan->bufSize_[op.buf], need);
                    const AddrExpr &mem =
                        plan->exprs_[op.buf][static_cast<unsigned>(
                            AddrSpace::Mem)];
                    plan->memExtent_ = std::max(
                        plan->memExtent_,
                        plan->evalMax(mem) +
                            (plan->maxRows_ - 1) * mem.rowStride +
                            op.imm);
                } else if (op.kind == OpKind::RdBuf ||
                           op.kind == OpKind::WrBuf) {
                    const AddrExpr &acc =
                        plan->exprs_[op.buf][static_cast<unsigned>(
                            AddrSpace::BufAccess)];
                    plan->bufSize_[op.buf] =
                        std::max(plan->bufSize_[op.buf],
                                 plan->evalMax(acc) + 1);
                }
            }
        }
    }
    return plan;
}

// ----------------------------------------------------------- execution

struct ExecPlan::Runtime
{
    MemoryModel &memory;
    InterpStats &stats;
    std::array<std::vector<std::int64_t>, 3> &buffers;
    const std::uint64_t *pos;
    std::uint64_t pendingRows = 1;
    std::int64_t regIn = 0, regWgt = 0, regOut = 0;
};

void
ExecPlan::transfer(const Op &op, bool to_buffer, Runtime &rt) const
{
    const unsigned b = op.buf;
    const std::uint64_t words = op.imm;
    const std::uint64_t rows = rt.pendingRows;
    rt.pendingRows = 1;
    if (rows == 0)
        return;

    const AddrExpr &mem_e =
        exprs_[b][static_cast<unsigned>(AddrSpace::Mem)];
    const AddrExpr &fill_e =
        exprs_[b][static_cast<unsigned>(AddrSpace::BufFill)];
    std::uint64_t mem0 = mem_e.base;
    for (const AddrTerm &t : mem_e.terms)
        mem0 += rt.pos[t.depth] * t.stride;
    std::uint64_t buf0 = fill_e.base;
    for (const AddrTerm &t : fill_e.terms)
        buf0 += rt.pos[t.depth] * t.stride;

    auto &store = rt.buffers[b];
    // The fill range is inside the static high-water size; the stat
    // itself tracks the dynamically reached mark (bit-identical to
    // the reference walk's per-row maximum: row strides are
    // non-negative, so the last row is the high-water row).
    const std::uint64_t top =
        buf0 + (rows - 1) * fill_e.rowStride + words;
    BF_ASSERT(top <= store.size(), "transfer beyond planned size");
    rt.stats.bufHighWater[b] =
        std::max<std::uint64_t>(rt.stats.bufHighWater[b], top);

    if (words > 0) {
        const bool activate = !to_buffer && op.activate;
        for (std::uint64_t r = 0; r < rows; ++r) {
            if (to_buffer) {
                const std::int64_t *src =
                    rt.memory.readSpan(mem0, words);
                std::memcpy(&store[buf0], src,
                            words * sizeof(std::int64_t));
            } else if (activate) {
                // Activation unit on the drain path (Fig. 3): relu
                // then requantize, per element.
                std::int64_t *dst = rt.memory.writeSpan(mem0, words);
                for (std::uint64_t kk = 0; kk < words; ++kk) {
                    std::int64_t v = store[buf0 + kk];
                    v = std::max<std::int64_t>(v, 0) >> actShift_;
                    if (actOutBits_)
                        v = clampUnsigned(v, actOutBits_);
                    dst[kk] = v;
                }
                rt.stats.auxOps += words;
            } else {
                std::memcpy(rt.memory.writeSpan(mem0, words),
                            &store[buf0], words * sizeof(std::int64_t));
            }
            mem0 += mem_e.rowStride;
            buf0 += fill_e.rowStride;
        }
    }
    if (to_buffer)
        rt.stats.dramLoadElems[b] += rows * words;
    else
        rt.stats.dramStoreElems[b] += rows * words;
}

void
ExecPlan::execSpan(const std::vector<Op> &ops, Runtime &rt) const
{
    for (const Op &op : ops) {
        switch (op.kind) {
          case OpKind::LdMem:
            transfer(op, true, rt);
            break;
          case OpKind::StMem:
            transfer(op, false, rt);
            break;
          case OpKind::SetRows:
            rt.pendingRows = op.imm;
            break;
          case OpKind::RdBuf: {
            const AddrExpr &e =
                exprs_[op.buf][static_cast<unsigned>(
                    AddrSpace::BufAccess)];
            std::uint64_t addr = e.base;
            for (const AddrTerm &t : e.terms)
                addr += rt.pos[t.depth] * t.stride;
            const auto &store = rt.buffers[op.buf];
            BF_ASSERT(addr < store.size(),
                      "rd-buf beyond planned size");
            const std::int64_t v = store[addr];
            switch (static_cast<BufferId>(op.buf)) {
              case BufferId::Ibuf: rt.regIn = v; break;
              case BufferId::Wbuf: rt.regWgt = v; break;
              case BufferId::Obuf: rt.regOut = v; break;
            }
            ++rt.stats.bufReads[op.buf];
            break;
          }
          case OpKind::WrBuf: {
            const AddrExpr &e =
                exprs_[op.buf][static_cast<unsigned>(
                    AddrSpace::BufAccess)];
            std::uint64_t addr = e.base;
            for (const AddrTerm &t : e.terms)
                addr += rt.pos[t.depth] * t.stride;
            auto &store = rt.buffers[op.buf];
            BF_ASSERT(addr < store.size(),
                      "wr-buf beyond planned size");
            store[addr] = rt.regOut;
            rt.stats.bufHighWater[op.buf] = std::max<std::uint64_t>(
                rt.stats.bufHighWater[op.buf], addr + 1);
            ++rt.stats.bufWrites[op.buf];
            break;
          }
          case OpKind::Mac:
            if (memo_) {
                BF_ASSERT(rt.regIn >= memo_->aMin &&
                          rt.regIn <= memo_->aMax,
                          "activation ", rt.regIn,
                          " not representable in ", memo_->aBits, "b");
                BF_ASSERT(rt.regWgt >= memo_->wMin &&
                          rt.regWgt <= memo_->wMax,
                          "weight ", rt.regWgt,
                          " not representable in ", memo_->wBits, "b");
                const std::uint64_t idx =
                    ((static_cast<std::uint64_t>(rt.regIn) &
                      lowMask(memo_->aBits))
                     << memo_->wBits) |
                    (static_cast<std::uint64_t>(rt.regWgt) &
                     lowMask(memo_->wBits));
                rt.regOut += memo_->products[idx];
                ++rt.stats.macs;
                rt.stats.bitBrickOps += memo_->opsPerMac;
            } else {
                const auto ops_vec =
                    decomposeMultiply(rt.regIn, rt.regWgt, config_);
                rt.regOut += evaluateDecomposition(ops_vec);
                ++rt.stats.macs;
                rt.stats.bitBrickOps += ops_vec.size();
            }
            break;
          case OpKind::MaxOp:
            rt.regOut = std::max(rt.regOut, rt.regIn);
            ++rt.stats.auxOps;
            break;
          case OpKind::ReluQuant: {
            std::int64_t v =
                std::max<std::int64_t>(rt.regIn, 0) >> op.shift;
            rt.regOut = op.outBits ? clampUnsigned(v, op.outBits) : v;
            ++rt.stats.auxOps;
            break;
          }
          case OpKind::Reset:
            rt.regOut = std::numeric_limits<std::int64_t>::min();
            break;
        }
    }
}

void
ExecPlan::execute(MemoryModel &memory, InterpStats &stats,
                  std::array<std::vector<std::int64_t>, 3> &buffers)
    const
{
    for (unsigned b = 0; b < 3; ++b)
        buffers[b].assign(bufSize_[b], 0);

    const unsigned depth = this->depth();
    std::vector<std::uint64_t> pos(depth, 0);
    Runtime rt{memory, stats, buffers, pos.data()};

    // Iterative nest walk over the per-level spans: level L's pre
    // span runs on entry, its post span after the loops below it
    // finish -- exactly the reference walk's recursion, flattened.
    execSpan(levels_[0].pre, rt);
    unsigned lv = 0; // number of loops currently entered
    while (true) {
        while (lv < depth && iters_[lv] > 0) {
            pos[lv] = 0;
            execSpan(levels_[lv + 1].pre, rt);
            ++lv;
        }
        execSpan(levels_[lv].post, rt);
        bool done = true;
        while (lv > 0) {
            --lv;
            if (++pos[lv] < iters_[lv]) {
                execSpan(levels_[lv + 1].pre, rt);
                ++lv;
                done = false;
                break;
            }
            execSpan(levels_[lv].post, rt);
        }
        if (done)
            return;
    }
}

} // namespace bitfusion
