#include "src/isa/exec_plan.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <tuple>

#include "src/arch/decompose.h"
#include "src/common/bitutils.h"
#include "src/common/logging.h"

// Threaded-code dispatch wants the GCC/Clang labels-as-values
// extension (&&label dispatch tables). Other compilers -- or a build
// with BITFUSION_NO_COMPUTED_GOTO defined -- run the Threaded tier
// on the portable switch loop instead; parity is unaffected, only
// dispatch cost.
#if defined(__GNUC__) && !defined(BITFUSION_NO_COMPUTED_GOTO)
#define BITFUSION_HAVE_COMPUTED_GOTO 1
#endif

namespace bitfusion {

// ------------------------------------------------------- product table

namespace {

/** Representable operand ranges for @p cfg. */
void
operandRanges(const FusionConfig &cfg, std::int64_t &aMin,
              std::int64_t &aMax, std::int64_t &wMin, std::int64_t &wMax)
{
    aMin = cfg.aSigned ? signedMin(cfg.aBits) : 0;
    aMax = cfg.aSigned ? signedMax(cfg.aBits) : unsignedMax(cfg.aBits);
    wMin = cfg.wSigned ? signedMin(cfg.wBits) : 0;
    wMax = cfg.wSigned ? signedMax(cfg.wBits) : unsignedMax(cfg.wBits);
}

ProductTable
buildProductTable(const FusionConfig &cfg)
{
    ProductTable t;
    t.aBits = cfg.aBits;
    t.wBits = cfg.wBits;
    operandRanges(cfg, t.aMin, t.aMax, t.wMin, t.wMax);
    // The decomposition size is value-independent (one BitBrick op
    // per digit pair); one exact call pins it.
    t.opsPerMac = decomposeMultiply(0, 0, cfg).size();
    // The table entries are native products: the BitBrick
    // decomposition is an exact multiply for every representable
    // operand pair, an equality tests/test_interp_plan.cc re-derives
    // exhaustively against decomposeMultiply for each paper config.
    // Filling with a*w instead of 2^(aBits+wBits) decomposition
    // evaluations cuts the one-time 8x8 build from ~15 ms to
    // microseconds (the BENCH_7 plan_build_ms satellite).
    const std::uint64_t aSpan = 1ULL << cfg.aBits;
    const std::uint64_t wSpan = 1ULL << cfg.wBits;
    t.products.resize(aSpan * wSpan, 0);
    for (std::uint64_t ra = 0; ra < aSpan; ++ra) {
        const std::int64_t a =
            cfg.aSigned ? signExtend(ra, cfg.aBits)
                        : static_cast<std::int64_t>(ra);
        for (std::uint64_t rw = 0; rw < wSpan; ++rw) {
            const std::int64_t w =
                cfg.wSigned ? signExtend(rw, cfg.wBits)
                            : static_cast<std::int64_t>(rw);
            t.products[(ra << cfg.wBits) | rw] = a * w;
        }
    }
    return t;
}

std::mutex &
tableMutex()
{
    static std::mutex mutex;
    return mutex;
}

ProductTableCacheStats &
tableStats()
{
    static ProductTableCacheStats stats;
    return stats;
}

} // namespace

const ProductTable *
productTableFor(const FusionConfig &cfg)
{
    cfg.validate();
    if (cfg.aBits > 8 || cfg.wBits > 8)
        return nullptr;

    using Key = std::tuple<unsigned, unsigned, bool, bool>;
    static std::map<Key, std::unique_ptr<ProductTable>> tables;

    const Key key{cfg.aBits, cfg.wBits, cfg.aSigned, cfg.wSigned};
    std::lock_guard<std::mutex> lock(tableMutex());
    auto &slot = tables[key];
    if (!slot) {
        slot = std::make_unique<ProductTable>(buildProductTable(cfg));
        ++tableStats().builds;
    } else {
        ++tableStats().hits;
    }
    return slot.get();
}

ProductTableCacheStats
productTableCacheStats()
{
    std::lock_guard<std::mutex> lock(tableMutex());
    return tableStats();
}

// ------------------------------------------------------------ lowering

std::string
ExecPlan::blockKey(const InstructionBlock &block)
{
    std::string key;
    key.reserve(64 + block.instructions.size() * 16);
    auto num = [&key](std::uint64_t v) {
        key += std::to_string(v);
        key += ',';
    };
    num(block.config.aBits);
    num(block.config.wBits);
    num(block.config.aSigned);
    num(block.config.wSigned);
    for (std::uint64_t base : block.baseAddr)
        num(base);
    num(block.actShift);
    num(block.actOutBits);
    key += '#';
    for (const Instruction &inst : block.instructions) {
        num(static_cast<unsigned>(inst.op));
        num(inst.id);
        num(inst.spec);
        num(inst.imm);
        num(inst.immHi);
    }
    return key;
}

std::uint64_t
ExecPlan::evalMax(const AddrExpr &e) const
{
    // Largest address the expression can produce over the whole nest;
    // a zero-trip loop's body never runs, so its term contributes 0.
    std::uint64_t addr = e.base;
    for (const AddrTerm &t : e.terms)
        if (iters_[t.depth] > 0)
            addr += (iters_[t.depth] - 1) * t.stride;
    return addr;
}

std::shared_ptr<const ExecPlan>
ExecPlan::build(const InstructionBlock &block)
{
    block.validate();
    std::shared_ptr<ExecPlan> plan(new ExecPlan);
    plan->config_ = block.config;
    plan->actShift_ = block.actShift;
    plan->actOutBits_ = block.actOutBits;
    plan->memo_ = productTableFor(block.config);

    // Loop ids -> nest depth (ids are 6-bit; dmaRow is a pseudo id).
    int idToDepth[64];
    std::fill(std::begin(idToDepth), std::end(idToDepth), -1);
    for (const Instruction &inst : block.instructions) {
        if (inst.op == Opcode::Loop) {
            idToDepth[inst.id] =
                static_cast<int>(plan->iters_.size());
            plan->iters_.push_back(inst.fullImm());
        }
    }
    const unsigned depth = static_cast<unsigned>(plan->iters_.size());

    // Pre/post body spans per nest level: levels[l] runs inside
    // loops 0..l-1 (levels[0] is the block prologue/epilogue). This
    // is a build-time view; the plan stores the linearized program.
    struct Level
    {
        std::vector<CodeOp> pre;
        std::vector<CodeOp> post;
    };
    std::vector<Level> levels(depth + 1);

    for (const Instruction &inst : block.instructions) {
        switch (inst.op) {
          case Opcode::Setup:
          case Opcode::Loop:
          case Opcode::BlockEnd:
            break;
          case Opcode::GenAddr: {
            AddrExpr &e =
                plan->exprs_[static_cast<unsigned>(inst.buffer())]
                            [static_cast<unsigned>(inst.space())];
            if (inst.id == addr_id::dmaRow) {
                e.rowStride += inst.fullImm();
            } else {
                const int d = idToDepth[inst.id];
                BF_ASSERT(d >= 0, "gen-addr references loop ",
                          static_cast<int>(inst.id),
                          " outside the nest in ", block.name);
                e.terms.push_back(
                    {static_cast<unsigned>(d), inst.fullImm()});
            }
            break;
          }
          default: {
            const unsigned level = inst.id;
            BF_ASSERT(level < levels.size(),
                      "body level out of range in ", block.name);
            CodeOp op{};
            switch (inst.op) {
              case Opcode::LdMem:
                op.kind = OpKind::LdMem;
                op.buf = static_cast<std::uint8_t>(inst.buffer());
                op.imm = inst.fullImm();
                break;
              case Opcode::StMem:
                op.kind = OpKind::StMem;
                op.buf = static_cast<std::uint8_t>(inst.buffer());
                op.imm = inst.fullImm();
                op.activate = inst.isActivate();
                break;
              case Opcode::SetRows:
                op.kind = OpKind::SetRows;
                op.imm = inst.fullImm();
                plan->maxRows_ =
                    std::max<std::uint64_t>(plan->maxRows_, op.imm);
                break;
              case Opcode::RdBuf:
                op.kind = OpKind::RdBuf;
                op.buf = static_cast<std::uint8_t>(inst.buffer());
                break;
              case Opcode::WrBuf:
                op.kind = OpKind::WrBuf;
                op.buf = static_cast<std::uint8_t>(inst.buffer());
                break;
              case Opcode::Compute:
                switch (inst.fn()) {
                  case ComputeFn::Mac:
                    op.kind = OpKind::Mac;
                    break;
                  case ComputeFn::Max:
                    op.kind = OpKind::MaxOp;
                    break;
                  case ComputeFn::ReluQuant:
                    op.kind = OpKind::ReluQuant;
                    op.shift = inst.imm & 0xff;
                    op.outBits = (inst.imm >> 8) & 0xff;
                    break;
                  case ComputeFn::Reset:
                    op.kind = OpKind::Reset;
                    break;
                  default:
                    // fn() is a raw 3-bit field; a decoded word
                    // stream can carry 4..7, which the reference
                    // walk executes as a silent no-op. Lower it to
                    // nothing for bit-identical parity.
                    continue;
                }
                break;
              default:
                BF_PANIC("unexpected opcode in block body");
            }
            if (inst.isPost())
                levels[level].post.push_back(op);
            else
                levels[level].pre.push_back(op);
            break;
          }
        }
    }

    // Memory-side bases come from the block; buffer-side expressions
    // start at zero, exactly like the reference walk.
    for (unsigned b = 0; b < 3; ++b)
        plan->exprs_[b][static_cast<unsigned>(AddrSpace::Mem)].base =
            block.baseAddr[b];

    // Static high-water analysis: the largest address each buffer can
    // see through any transfer fill or any rd-buf/wr-buf access. The
    // row bound of 2-D transfers is the largest set-rows immediate
    // (conservative when a smaller set-rows reaches a transfer, which
    // only over-allocates; the dynamic bufHighWater stat stays exact).
    for (const Level &level : levels) {
        for (const auto *span : {&level.pre, &level.post}) {
            for (const CodeOp &op : *span) {
                if (op.kind == OpKind::LdMem ||
                    op.kind == OpKind::StMem) {
                    const AddrExpr &fill =
                        plan->exprs_[op.buf][static_cast<unsigned>(
                            AddrSpace::BufFill)];
                    const std::uint64_t need =
                        plan->evalMax(fill) +
                        (plan->maxRows_ - 1) * fill.rowStride + op.imm;
                    plan->bufSize_[op.buf] =
                        std::max(plan->bufSize_[op.buf], need);
                    const AddrExpr &mem =
                        plan->exprs_[op.buf][static_cast<unsigned>(
                            AddrSpace::Mem)];
                    plan->memExtent_ = std::max(
                        plan->memExtent_,
                        plan->evalMax(mem) +
                            (plan->maxRows_ - 1) * mem.rowStride +
                            op.imm);
                } else if (op.kind == OpKind::RdBuf ||
                           op.kind == OpKind::WrBuf) {
                    const AddrExpr &acc =
                        plan->exprs_[op.buf][static_cast<unsigned>(
                            AddrSpace::BufAccess)];
                    plan->bufSize_[op.buf] =
                        std::max(plan->bufSize_[op.buf],
                                 plan->evalMax(acc) + 1);
                }
            }
        }
    }

    // ------------------------------------------ fused-nest recognition
    //
    // The compiler's MAC reduction is an innermost body of exactly
    // {RdBuf(Ibuf), RdBuf(Wbuf)} (either order) followed by Mac,
    // wrapped in loops whose intermediate levels carry no other ops.
    // That whole sub-nest collapses into one FusedMac op bound to a
    // per-config kernel. Fusion is vetoed when anything outside the
    // nest touches the operand buffers' counters or scratchpads in a
    // way the kernel would not reproduce:
    //  - another RdBuf/WrBuf on Ibuf/Wbuf outside the fused body
    //    (their addresses share the fused access expressions);
    //  - any other address expression referencing a fused loop (the
    //    fused program never advances those counters).
    const unsigned IBv = static_cast<unsigned>(BufferId::Ibuf);
    const unsigned WBv = static_cast<unsigned>(BufferId::Wbuf);
    const unsigned ACCv = static_cast<unsigned>(AddrSpace::BufAccess);
    if (depth > 0) {
        std::vector<CodeOp> body = levels[depth].pre;
        body.insert(body.end(), levels[depth].post.begin(),
                    levels[depth].post.end());
        const bool shape =
            body.size() == 3 && body[0].kind == OpKind::RdBuf &&
            body[1].kind == OpKind::RdBuf &&
            body[2].kind == OpKind::Mac &&
            ((body[0].buf == IBv && body[1].buf == WBv) ||
             (body[0].buf == WBv && body[1].buf == IBv));
        if (shape) {
            unsigned g = depth - 1;
            while (g > 0 && levels[g].pre.empty() &&
                   levels[g].post.empty())
                --g;
            if (depth - g > kMaxFusedDims)
                g = depth - kMaxFusedDims;

            bool ok = true;
            for (unsigned b = 0; b < 3 && ok; ++b) {
                for (unsigned s = 0; s < 3 && ok; ++s) {
                    if (s == ACCv && (b == IBv || b == WBv))
                        continue;
                    for (const AddrTerm &t : plan->exprs_[b][s].terms)
                        if (t.depth >= g)
                            ok = false;
                }
            }
            for (unsigned l = 0; l < depth && ok; ++l) {
                for (const auto *span : {&levels[l].pre,
                                         &levels[l].post}) {
                    for (const CodeOp &op : *span) {
                        if ((op.kind == OpKind::RdBuf ||
                             op.kind == OpKind::WrBuf) &&
                            (op.buf == IBv || op.buf == WBv))
                            ok = false;
                    }
                }
            }

            if (ok) {
                FusedNest &f = plan->fused_;
                f.firstLoop = g;
                f.dims = depth - g;
                std::int64_t aMin, aMax, wMin, wMax;
                operandRanges(block.config, aMin, aMax, wMin, wMax);
                f.proto.dims = f.dims;
                f.proto.aMin = aMin;
                f.proto.aMax = aMax;
                f.proto.wMin = wMin;
                f.proto.wMax = wMax;
                const AddrExpr &aAcc = plan->exprs_[IBv][ACCv];
                const AddrExpr &wAcc = plan->exprs_[WBv][ACCv];
                f.aOuter.base = aAcc.base;
                for (const AddrTerm &t : aAcc.terms) {
                    if (t.depth >= g)
                        f.proto.aStride[t.depth - g] += t.stride;
                    else
                        f.aOuter.terms.push_back(t);
                }
                f.wOuter.base = wAcc.base;
                for (const AddrTerm &t : wAcc.terms) {
                    if (t.depth >= g)
                        f.proto.wStride[t.depth - g] += t.stride;
                    else
                        f.wOuter.terms.push_back(t);
                }
                f.total = 1;
                for (unsigned d = 0; d < f.dims; ++d) {
                    const std::uint64_t it = plan->iters_[g + d];
                    f.proto.iters[d] = it;
                    f.total *= it;
                    if (it > 0) {
                        f.lastOffA += (it - 1) * f.proto.aStride[d];
                        f.lastOffW += (it - 1) * f.proto.wStride[d];
                    }
                }
                f.kernel = selectMacNestKernel(block.config);
                f.opsPerMac =
                    plan->memo_
                        ? plan->memo_->opsPerMac
                        : decomposeMultiply(0, 0, block.config).size();
                plan->kernelName_ =
                    "mac" + std::to_string(block.config.aBits) +
                    (block.config.aSigned ? "s" : "u") + "." +
                    std::to_string(block.config.wBits) +
                    (block.config.wSigned ? "s" : "u");
            }
        }
    }

    // ------------------------------------------- program linearization
    //
    // The nest becomes a flat instruction stream: LoopHead resets the
    // counter and skips a zero-trip loop; LoopBack jumps to the loop
    // top while iterations remain. The fused program replaces loops
    // [firstLoop, depth) and the body with one FusedMac op (or
    // nothing, when the static trip count is zero -- the reference
    // walk would never reach the body either).
    auto emitProgram = [&](bool withFusion) {
        std::vector<CodeOp> code;
        auto emitSpan = [&code](const std::vector<CodeOp> &span) {
            code.insert(code.end(), span.begin(), span.end());
        };
        const unsigned cut = (withFusion && plan->fused_.dims > 0)
                                 ? plan->fused_.firstLoop
                                 : depth;
        emitSpan(levels[0].pre);
        std::vector<std::size_t> heads;
        for (unsigned d = 0; d < cut; ++d) {
            heads.push_back(code.size());
            CodeOp head{};
            head.kind = OpKind::LoopHead;
            head.loop = static_cast<std::uint16_t>(d);
            code.push_back(head);
            emitSpan(levels[d + 1].pre);
        }
        if (cut < depth && plan->fused_.total > 0) {
            CodeOp f{};
            f.kind = OpKind::FusedMac;
            code.push_back(f);
        }
        for (unsigned d = cut; d-- > 0;) {
            emitSpan(levels[d + 1].post);
            CodeOp back{};
            back.kind = OpKind::LoopBack;
            back.loop = static_cast<std::uint16_t>(d);
            back.target = static_cast<std::uint32_t>(heads[d] + 1);
            code.push_back(back);
            code[heads[d]].target =
                static_cast<std::uint32_t>(code.size());
        }
        emitSpan(levels[0].post);
        CodeOp halt{};
        halt.kind = OpKind::Halt;
        code.push_back(halt);
        return code;
    };
    plan->code_ = emitProgram(false);
    if (plan->fused_.dims > 0)
        plan->fusedCode_ = emitProgram(true);

    return plan;
}

// ----------------------------------------------------------- execution

struct ExecPlan::Runtime
{
    MemoryModel &memory;
    InterpStats &stats;
    std::array<std::vector<std::int64_t>, 3> &buffers;
    std::uint64_t *pos;
    std::uint64_t pendingRows = 1;
    std::int64_t regIn = 0, regWgt = 0, regOut = 0;
};

void
ExecPlan::transfer(const CodeOp &op, bool to_buffer, Runtime &rt) const
{
    const unsigned b = op.buf;
    const std::uint64_t words = op.imm;
    const std::uint64_t rows = rt.pendingRows;
    rt.pendingRows = 1;
    if (rows == 0)
        return;

    const AddrExpr &mem_e =
        exprs_[b][static_cast<unsigned>(AddrSpace::Mem)];
    const AddrExpr &fill_e =
        exprs_[b][static_cast<unsigned>(AddrSpace::BufFill)];
    std::uint64_t mem0 = mem_e.base;
    for (const AddrTerm &t : mem_e.terms)
        mem0 += rt.pos[t.depth] * t.stride;
    std::uint64_t buf0 = fill_e.base;
    for (const AddrTerm &t : fill_e.terms)
        buf0 += rt.pos[t.depth] * t.stride;

    auto &store = rt.buffers[b];
    // The fill range is inside the static high-water size; the stat
    // itself tracks the dynamically reached mark (bit-identical to
    // the reference walk's per-row maximum: row strides are
    // non-negative, so the last row is the high-water row).
    const std::uint64_t top =
        buf0 + (rows - 1) * fill_e.rowStride + words;
    BF_ASSERT(top <= store.size(), "transfer beyond planned size");
    rt.stats.bufHighWater[b] =
        std::max<std::uint64_t>(rt.stats.bufHighWater[b], top);

    if (words > 0) {
        const bool activate = !to_buffer && op.activate;
        for (std::uint64_t r = 0; r < rows; ++r) {
            if (to_buffer) {
                const std::int64_t *src =
                    rt.memory.readSpan(mem0, words);
                std::memcpy(&store[buf0], src,
                            words * sizeof(std::int64_t));
            } else if (activate) {
                // Activation unit on the drain path (Fig. 3): relu
                // then requantize, per element.
                std::int64_t *dst = rt.memory.writeSpan(mem0, words);
                for (std::uint64_t kk = 0; kk < words; ++kk) {
                    std::int64_t v = store[buf0 + kk];
                    v = std::max<std::int64_t>(v, 0) >> actShift_;
                    if (actOutBits_)
                        v = clampUnsigned(v, actOutBits_);
                    dst[kk] = v;
                }
                rt.stats.auxOps += words;
            } else {
                std::memcpy(rt.memory.writeSpan(mem0, words),
                            &store[buf0], words * sizeof(std::int64_t));
            }
            mem0 += mem_e.rowStride;
            buf0 += fill_e.rowStride;
        }
    }
    if (to_buffer)
        rt.stats.dramLoadElems[b] += rows * words;
    else
        rt.stats.dramStoreElems[b] += rows * words;
}

inline void
ExecPlan::doRdBuf(const CodeOp &op, Runtime &rt) const
{
    const AddrExpr &e =
        exprs_[op.buf][static_cast<unsigned>(AddrSpace::BufAccess)];
    std::uint64_t addr = e.base;
    for (const AddrTerm &t : e.terms)
        addr += rt.pos[t.depth] * t.stride;
    const auto &store = rt.buffers[op.buf];
    BF_ASSERT(addr < store.size(), "rd-buf beyond planned size");
    const std::int64_t v = store[addr];
    switch (static_cast<BufferId>(op.buf)) {
      case BufferId::Ibuf: rt.regIn = v; break;
      case BufferId::Wbuf: rt.regWgt = v; break;
      case BufferId::Obuf: rt.regOut = v; break;
    }
    ++rt.stats.bufReads[op.buf];
}

inline void
ExecPlan::doWrBuf(const CodeOp &op, Runtime &rt) const
{
    const AddrExpr &e =
        exprs_[op.buf][static_cast<unsigned>(AddrSpace::BufAccess)];
    std::uint64_t addr = e.base;
    for (const AddrTerm &t : e.terms)
        addr += rt.pos[t.depth] * t.stride;
    auto &store = rt.buffers[op.buf];
    BF_ASSERT(addr < store.size(), "wr-buf beyond planned size");
    store[addr] = rt.regOut;
    rt.stats.bufHighWater[op.buf] = std::max<std::uint64_t>(
        rt.stats.bufHighWater[op.buf], addr + 1);
    ++rt.stats.bufWrites[op.buf];
}

inline void
ExecPlan::doMac(Runtime &rt) const
{
    if (memo_) {
        BF_ASSERT(rt.regIn >= memo_->aMin && rt.regIn <= memo_->aMax,
                  "activation ", rt.regIn, " not representable in ",
                  memo_->aBits, "b");
        BF_ASSERT(rt.regWgt >= memo_->wMin && rt.regWgt <= memo_->wMax,
                  "weight ", rt.regWgt, " not representable in ",
                  memo_->wBits, "b");
        const std::uint64_t idx =
            ((static_cast<std::uint64_t>(rt.regIn) &
              lowMask(memo_->aBits))
             << memo_->wBits) |
            (static_cast<std::uint64_t>(rt.regWgt) &
             lowMask(memo_->wBits));
        rt.regOut += memo_->products[idx];
        ++rt.stats.macs;
        rt.stats.bitBrickOps += memo_->opsPerMac;
    } else {
        const auto ops_vec =
            decomposeMultiply(rt.regIn, rt.regWgt, config_);
        rt.regOut += evaluateDecomposition(ops_vec);
        ++rt.stats.macs;
        rt.stats.bitBrickOps += ops_vec.size();
    }
}

inline void
ExecPlan::doMax(Runtime &rt) const
{
    rt.regOut = std::max(rt.regOut, rt.regIn);
    ++rt.stats.auxOps;
}

inline void
ExecPlan::doReluQuant(const CodeOp &op, Runtime &rt) const
{
    const std::int64_t v =
        std::max<std::int64_t>(rt.regIn, 0) >> op.shift;
    rt.regOut = op.outBits ? clampUnsigned(v, op.outBits) : v;
    ++rt.stats.auxOps;
}

inline void
ExecPlan::doReset(Runtime &rt) const
{
    rt.regOut = std::numeric_limits<std::int64_t>::min();
}

inline void
ExecPlan::doFusedMac(Runtime &rt) const
{
    const FusedNest &f = fused_;
    std::uint64_t aBase = f.aOuter.base;
    for (const AddrTerm &t : f.aOuter.terms)
        aBase += rt.pos[t.depth] * t.stride;
    std::uint64_t wBase = f.wOuter.base;
    for (const AddrTerm &t : f.wOuter.terms)
        wBase += rt.pos[t.depth] * t.stride;

    const unsigned ib = static_cast<unsigned>(BufferId::Ibuf);
    const unsigned wb = static_cast<unsigned>(BufferId::Wbuf);
    const auto &ibuf = rt.buffers[ib];
    const auto &wbuf = rt.buffers[wb];
    // One bounds check per operand per dispatch instead of one per
    // element (addresses are monotone in the fused counters).
    BF_ASSERT(aBase + f.lastOffA < ibuf.size(),
              "rd-buf beyond planned size");
    BF_ASSERT(wBase + f.lastOffW < wbuf.size(),
              "rd-buf beyond planned size");

    MacNestArgs args = f.proto;
    args.a = ibuf.data() + aBase;
    args.w = wbuf.data() + wBase;
    std::uint64_t bad = 0;
    const std::uint64_t acc = f.kernel(args, bad);
    if (bad != 0)
        reportUnrepresentable(args, config_); // [[noreturn]]

    // Same observable end-state as per-element execution: the operand
    // registers hold the last elements read, and the accumulator adds
    // the (wraparound-exact) product sum.
    rt.regIn = args.a[f.lastOffA];
    rt.regWgt = args.w[f.lastOffW];
    rt.regOut = static_cast<std::int64_t>(
        static_cast<std::uint64_t>(rt.regOut) + acc);
    rt.stats.bufReads[ib] += f.total;
    rt.stats.bufReads[wb] += f.total;
    rt.stats.macs += f.total;
    rt.stats.bitBrickOps += f.total * f.opsPerMac;
}

void
ExecPlan::runSwitch(const std::vector<CodeOp> &code, Runtime &rt) const
{
    std::size_t pc = 0;
    for (;;) {
        const CodeOp &op = code[pc];
        switch (op.kind) {
          case OpKind::LdMem: transfer(op, true, rt); break;
          case OpKind::StMem: transfer(op, false, rt); break;
          case OpKind::SetRows: rt.pendingRows = op.imm; break;
          case OpKind::RdBuf: doRdBuf(op, rt); break;
          case OpKind::WrBuf: doWrBuf(op, rt); break;
          case OpKind::Mac: doMac(rt); break;
          case OpKind::MaxOp: doMax(rt); break;
          case OpKind::ReluQuant: doReluQuant(op, rt); break;
          case OpKind::Reset: doReset(rt); break;
          case OpKind::LoopHead:
            rt.pos[op.loop] = 0;
            if (iters_[op.loop] == 0) {
                pc = op.target;
                continue;
            }
            break;
          case OpKind::LoopBack:
            if (++rt.pos[op.loop] < iters_[op.loop]) {
                pc = op.target;
                continue;
            }
            break;
          case OpKind::FusedMac: doFusedMac(rt); break;
          case OpKind::Halt: return;
        }
        ++pc;
    }
}

void
ExecPlan::runThreaded(const std::vector<CodeOp> &code, Runtime &rt) const
{
#if defined(BITFUSION_HAVE_COMPUTED_GOTO)
    // One indirect jump per op, from the op's own handler -- the
    // classic threaded-code layout: the branch predictor sees one
    // distinct jump site per opcode instead of a single shared
    // switch dispatch point.
    static const void *const kLabels[kOpKindCount] = {
        &&lLdMem,     &&lStMem,    &&lSetRows, &&lRdBuf, &&lWrBuf,
        &&lMac,       &&lMaxOp,    &&lReluQuant, &&lReset,
        &&lLoopHead,  &&lLoopBack, &&lFusedMac, &&lHalt,
    };
    const CodeOp *const base = code.data();
    const CodeOp *ip = base;
#define BF_DISPATCH() goto *kLabels[static_cast<unsigned>(ip->kind)]
    BF_DISPATCH();
lLdMem:
    transfer(*ip, true, rt);
    ++ip;
    BF_DISPATCH();
lStMem:
    transfer(*ip, false, rt);
    ++ip;
    BF_DISPATCH();
lSetRows:
    rt.pendingRows = ip->imm;
    ++ip;
    BF_DISPATCH();
lRdBuf:
    doRdBuf(*ip, rt);
    ++ip;
    BF_DISPATCH();
lWrBuf:
    doWrBuf(*ip, rt);
    ++ip;
    BF_DISPATCH();
lMac:
    doMac(rt);
    ++ip;
    BF_DISPATCH();
lMaxOp:
    doMax(rt);
    ++ip;
    BF_DISPATCH();
lReluQuant:
    doReluQuant(*ip, rt);
    ++ip;
    BF_DISPATCH();
lReset:
    doReset(rt);
    ++ip;
    BF_DISPATCH();
lLoopHead:
    rt.pos[ip->loop] = 0;
    ip = (iters_[ip->loop] == 0) ? base + ip->target : ip + 1;
    BF_DISPATCH();
lLoopBack:
    ip = (++rt.pos[ip->loop] < iters_[ip->loop]) ? base + ip->target
                                                 : ip + 1;
    BF_DISPATCH();
lFusedMac:
    doFusedMac(rt);
    ++ip;
    BF_DISPATCH();
lHalt:
    return;
#undef BF_DISPATCH
#else
    runSwitch(code, rt);
#endif
}

void
ExecPlan::execute(MemoryModel &memory, InterpStats &stats,
                  std::array<std::vector<std::int64_t>, 3> &buffers)
    const
{
    execute(memory, stats, buffers, defaultDispatchTier());
}

void
ExecPlan::execute(MemoryModel &memory, InterpStats &stats,
                  std::array<std::vector<std::int64_t>, 3> &buffers,
                  DispatchTier tier) const
{
    for (unsigned b = 0; b < 3; ++b)
        buffers[b].assign(bufSize_[b], 0);

    std::vector<std::uint64_t> pos(depth(), 0);
    Runtime rt{memory, stats, buffers, pos.data()};

    const std::vector<CodeOp> &code =
        (tier == DispatchTier::Specialized && !fusedCode_.empty())
            ? fusedCode_
            : code_;
    if (tier == DispatchTier::Switch)
        runSwitch(code, rt);
    else
        runThreaded(code, rt);
}

} // namespace bitfusion
