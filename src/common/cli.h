/**
 * @file
 * Shared flag-value parsers for the CLI binaries (tools/, bench/).
 *
 * Both parsers consume the value following argv[i] and advance i;
 * on a missing or malformed value they print a diagnostic naming
 * the flag and exit with the usage status (2). Counts and seeds go
 * through uintArg (exact, overflow-checked); time-valued flags go
 * through doubleArg (fractions allowed, non-finite rejected).
 *
 * The --timing parser with the same contract is timingArg() in
 * core/layer_walk.h, beside the TimingModel enum it produces --
 * hosting it here would invert the common -> core layering.
 */

#ifndef BITFUSION_COMMON_CLI_H
#define BITFUSION_COMMON_CLI_H

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace bitfusion {
namespace cli {

/** Non-negative finite double argument (e.g. --mean-gap-us). */
inline double
doubleArg(int argc, char **argv, int &i, const char *flag)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
    }
    char *end = nullptr;
    const double v = std::strtod(argv[++i], &end);
    if (end == argv[i] || *end != '\0' || !std::isfinite(v) || v < 0) {
        std::fprintf(stderr,
                     "%s needs a non-negative finite number, got "
                     "'%s'\n",
                     flag, argv[i]);
        std::exit(2);
    }
    return v;
}

/**
 * Non-negative integer argument, exact up to 64 bits (seeds).
 * @p max rejects values the call site would otherwise truncate when
 * narrowing (e.g. pass UINT32_MAX for flags stored in unsigned).
 */
inline std::uint64_t
uintArg(int argc, char **argv, int &i, const char *flag,
        std::uint64_t max = UINT64_MAX)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
    }
    char *end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(argv[++i], &end, 10);
    // Must start with a digit: strtoull itself skips whitespace and
    // wraps negative input modulo 2^64.
    if (end == argv[i] || *end != '\0' ||
        !std::isdigit(static_cast<unsigned char>(argv[i][0])) ||
        errno == ERANGE || v > max) {
        std::fprintf(stderr,
                     "%s needs an integer in [0, %llu], got '%s'\n",
                     flag, static_cast<unsigned long long>(max),
                     argv[i]);
        std::exit(2);
    }
    return v;
}

} // namespace cli
} // namespace bitfusion

#endif // BITFUSION_COMMON_CLI_H
