/**
 * @file
 * JSON serialization for the sweep runner.
 */

#include "src/common/json.h"

#include <cmath>
#include <cstdio>

#include "src/common/logging.h"

namespace bitfusion {
namespace json {

Value
Value::array()
{
    Value v;
    v.kind_ = Kind::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v.kind_ = Kind::Object;
    return v;
}

Value &
Value::set(const std::string &key, Value v)
{
    BF_ASSERT(kind_ == Kind::Object, "set() on non-object JSON value");
    for (auto &kv : obj_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return *this;
        }
    }
    obj_.emplace_back(key, std::move(v));
    return *this;
}

Value &
Value::push(Value v)
{
    BF_ASSERT(kind_ == Kind::Array, "push() on non-array JSON value");
    arr_.push_back(std::move(v));
    return *this;
}

std::string
Value::quote(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

namespace {

std::string
formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null"; // JSON has no inf/nan.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    const std::string pad(indent > 0 ? indent * (depth + 1) : 0, ' ');
    const std::string closePad(indent > 0 ? indent * depth : 0, ' ');
    const char *nl = indent > 0 ? "\n" : "";

    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int:
        out += std::to_string(int_);
        break;
      case Kind::Uint:
        out += std::to_string(uint_);
        break;
      case Kind::Double:
        out += formatDouble(double_);
        break;
      case Kind::String:
        out += quote(str_);
        break;
      case Kind::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            out += pad;
            arr_[i].dumpTo(out, indent, depth + 1);
            if (i + 1 < arr_.size())
                out += ',';
            out += nl;
        }
        out += closePad;
        out += ']';
        break;
      case Kind::Object:
        if (obj_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        for (std::size_t i = 0; i < obj_.size(); ++i) {
            out += pad;
            out += quote(obj_[i].first);
            out += indent > 0 ? ": " : ":";
            obj_[i].second.dumpTo(out, indent, depth + 1);
            if (i + 1 < obj_.size())
                out += ',';
            out += nl;
        }
        out += closePad;
        out += '}';
        break;
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

} // namespace json
} // namespace bitfusion
