/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: fatal() is for user error (bad
 * configuration, invalid arguments) and exits cleanly; panic() is for
 * internal invariant violations (a bug in this library) and aborts.
 */

#ifndef BITFUSION_COMMON_LOGGING_H
#define BITFUSION_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace bitfusion {

namespace detail {

[[noreturn]] void fatalExit(const std::string &msg, const char *file,
                            int line);
[[noreturn]] void panicAbort(const std::string &msg, const char *file,
                             int line);
void warnPrint(const std::string &msg);
void informPrint(const std::string &msg);

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

} // namespace bitfusion

/** Terminate due to a user-facing error (bad config, bad arguments). */
#define BF_FATAL(...) \
    ::bitfusion::detail::fatalExit( \
        ::bitfusion::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Terminate due to an internal bug (should never happen). */
#define BF_PANIC(...) \
    ::bitfusion::detail::panicAbort( \
        ::bitfusion::detail::concat(__VA_ARGS__), __FILE__, __LINE__)

/** Check an internal invariant; panic with a message if violated. */
#define BF_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::bitfusion::detail::panicAbort( \
                ::bitfusion::detail::concat("assertion failed: ", #cond, \
                                            " ", ##__VA_ARGS__), \
                __FILE__, __LINE__); \
        } \
    } while (0)

/** Non-fatal warning about questionable behaviour. */
#define BF_WARN(...) \
    ::bitfusion::detail::warnPrint(::bitfusion::detail::concat(__VA_ARGS__))

/** Informational status message. */
#define BF_INFORM(...) \
    ::bitfusion::detail::informPrint(::bitfusion::detail::concat(__VA_ARGS__))

#endif // BITFUSION_COMMON_LOGGING_H
