#include "src/common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace bitfusion {
namespace detail {

[[noreturn]] void
fatalExit(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

[[noreturn]] void
panicAbort(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
warnPrint(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informPrint(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace bitfusion
