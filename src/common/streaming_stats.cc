/**
 * @file
 * The P-squared quantile estimator (see streaming_stats.h for the
 * algorithm reference and accuracy notes).
 */

#include "src/common/streaming_stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace bitfusion {

P2Quantile::P2Quantile(double quantile) : quantile_(quantile)
{
    BF_ASSERT(quantile > 0.0 && quantile < 1.0);
}

void
P2Quantile::add(double x)
{
    if (count_ < 5) {
        height_[count_++] = x;
        if (count_ == 5) {
            std::sort(height_, height_ + 5);
            for (int i = 0; i < 5; ++i)
                position_[i] = i + 1;
            desired_[0] = 1.0;
            desired_[1] = 1.0 + 2.0 * quantile_;
            desired_[2] = 1.0 + 4.0 * quantile_;
            desired_[3] = 3.0 + 2.0 * quantile_;
            desired_[4] = 5.0;
            drift_[0] = 0.0;
            drift_[1] = quantile_ / 2.0;
            drift_[2] = quantile_;
            drift_[3] = (1.0 + quantile_) / 2.0;
            drift_[4] = 1.0;
        }
        return;
    }

    // Locate the marker cell the observation falls into, stretching
    // the extreme markers when it lands outside them.
    int k;
    if (x < height_[0]) {
        height_[0] = x;
        k = 0;
    } else if (x >= height_[4]) {
        height_[4] = x;
        k = 3;
    } else {
        k = 0;
        while (k < 3 && x >= height_[k + 1])
            ++k;
    }
    ++count_;

    for (int i = k + 1; i < 5; ++i)
        position_[i] += 1.0;
    for (int i = 0; i < 5; ++i)
        desired_[i] += drift_[i];

    // Nudge the three interior markers toward their desired
    // positions, interpolating the new height with the piecewise
    // parabola (falling back to linear when the parabola would
    // break marker monotonicity).
    for (int i = 1; i <= 3; ++i) {
        const double d = desired_[i] - position_[i];
        if ((d >= 1.0 && position_[i + 1] - position_[i] > 1.0) ||
            (d <= -1.0 && position_[i - 1] - position_[i] < -1.0)) {
            const double s = d >= 0.0 ? 1.0 : -1.0;
            const double below = position_[i] - position_[i - 1];
            const double above = position_[i + 1] - position_[i];
            const double parabolic =
                height_[i] +
                s / (position_[i + 1] - position_[i - 1]) *
                    ((below + s) * (height_[i + 1] - height_[i]) /
                         above +
                     (above - s) * (height_[i] - height_[i - 1]) /
                         below);
            if (height_[i - 1] < parabolic &&
                parabolic < height_[i + 1]) {
                height_[i] = parabolic;
            } else {
                const int j = s > 0.0 ? i + 1 : i - 1;
                height_[i] += s * (height_[j] - height_[i]) /
                              (position_[j] - position_[i]);
            }
            position_[i] += s;
        }
    }
}

double
P2Quantile::value() const
{
    if (count_ == 0)
        return 0.0;
    if (count_ <= 5) {
        // Nearest-rank over the buffered observations, matching the
        // exact serve::percentiles definition for tiny runs.
        double sorted[5];
        std::copy(height_, height_ + count_, sorted);
        std::sort(sorted, sorted + count_);
        std::size_t idx = static_cast<std::size_t>(
            std::ceil(quantile_ * static_cast<double>(count_)));
        idx = std::max<std::size_t>(idx, 1);
        return sorted[std::min(idx, count_) - 1];
    }
    return height_[2];
}

StreamingSummary::StreamingSummary()
    : p50_(0.50), p95_(0.95), p99_(0.99)
{}

void
StreamingSummary::add(double x)
{
    ++count_;
    sum_ += x;
    max_ = std::max(max_, x);
    p50_.add(x);
    p95_.add(x);
    p99_.add(x);
}

double
StreamingSummary::mean() const
{
    return count_ == 0 ? 0.0
                       : sum_ / static_cast<double>(count_);
}

} // namespace bitfusion
