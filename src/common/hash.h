/**
 * @file
 * XXH64: the 64-bit xxHash checksum, self-contained.
 *
 * The persistent artifact store (src/core/artifact_store.h) frames
 * every record with a trailing checksum so truncation and bit rot are
 * detected before a payload ever reaches a deserializer. xxHash is
 * the standard pick for this job -- non-cryptographic, a few bytes
 * per cycle, excellent avalanche -- and the reference algorithm is
 * small enough to carry inline rather than grow a dependency.
 *
 * This is the canonical XXH64 round structure (seed + four lanes over
 * 32-byte stripes, merge, tail, avalanche). Multi-byte reads are
 * native-endian: the store's frame carries an endianness tag and
 * rejects foreign-endian files before any checksum comparison, so
 * hashes never need to match across byte orders.
 */

#ifndef BITFUSION_COMMON_HASH_H
#define BITFUSION_COMMON_HASH_H

#include <cstdint>
#include <cstring>

namespace bitfusion {

namespace hash_detail {

constexpr std::uint64_t kPrime1 = 11400714785074694791ULL;
constexpr std::uint64_t kPrime2 = 14029467366897019727ULL;
constexpr std::uint64_t kPrime3 = 1609587929392839161ULL;
constexpr std::uint64_t kPrime4 = 9650029242287828579ULL;
constexpr std::uint64_t kPrime5 = 2870177450012600261ULL;

inline std::uint64_t
rotl(std::uint64_t x, unsigned r)
{
    return (x << r) | (x >> (64 - r));
}

inline std::uint64_t
read64(const unsigned char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline std::uint32_t
read32(const unsigned char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

inline std::uint64_t
round(std::uint64_t acc, std::uint64_t input)
{
    return rotl(acc + input * kPrime2, 31) * kPrime1;
}

inline std::uint64_t
mergeRound(std::uint64_t h, std::uint64_t v)
{
    h ^= round(0, v);
    return h * kPrime1 + kPrime4;
}

} // namespace hash_detail

/** XXH64 of @p len bytes at @p data. */
inline std::uint64_t
xxhash64(const void *data, std::size_t len, std::uint64_t seed = 0)
{
    using namespace hash_detail;
    const auto *p = static_cast<const unsigned char *>(data);
    const unsigned char *const end = p + len;
    std::uint64_t h;

    if (len >= 32) {
        std::uint64_t v1 = seed + kPrime1 + kPrime2;
        std::uint64_t v2 = seed + kPrime2;
        std::uint64_t v3 = seed;
        std::uint64_t v4 = seed - kPrime1;
        do {
            v1 = round(v1, read64(p));
            v2 = round(v2, read64(p + 8));
            v3 = round(v3, read64(p + 16));
            v4 = round(v4, read64(p + 24));
            p += 32;
        } while (p + 32 <= end);
        h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
        h = mergeRound(h, v1);
        h = mergeRound(h, v2);
        h = mergeRound(h, v3);
        h = mergeRound(h, v4);
    } else {
        h = seed + kPrime5;
    }

    h += static_cast<std::uint64_t>(len);
    while (p + 8 <= end) {
        h ^= round(0, read64(p));
        h = rotl(h, 27) * kPrime1 + kPrime4;
        p += 8;
    }
    if (p + 4 <= end) {
        h ^= static_cast<std::uint64_t>(read32(p)) * kPrime1;
        h = rotl(h, 23) * kPrime2 + kPrime3;
        p += 4;
    }
    while (p < end) {
        h ^= static_cast<std::uint64_t>(*p) * kPrime5;
        h = rotl(h, 11) * kPrime1;
        ++p;
    }

    h ^= h >> 33;
    h *= kPrime2;
    h ^= h >> 29;
    h *= kPrime3;
    h ^= h >> 32;
    return h;
}

} // namespace bitfusion

#endif // BITFUSION_COMMON_HASH_H
