/**
 * @file
 * Minimal JSON document builder for sweep output.
 *
 * The sweep runner emits machine-readable results next to the ASCII
 * tables; this header provides the small value tree + serializer it
 * needs without an external dependency. Object keys keep insertion
 * order so output is deterministic and diffable.
 */

#ifndef BITFUSION_COMMON_JSON_H
#define BITFUSION_COMMON_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bitfusion {
namespace json {

/** One JSON value (null / bool / number / string / array / object). */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Uint,
        Double,
        String,
        Array,
        Object
    };

    Value() : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}
    Value(std::uint64_t v) : kind_(Kind::Uint), uint_(v) {}
    Value(int v) : kind_(Kind::Int), int_(v) {}
    Value(unsigned v) : kind_(Kind::Uint), uint_(v) {}
    Value(double v) : kind_(Kind::Double), double_(v) {}
    Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), str_(s) {}

    /** Empty array value. */
    static Value array();
    /** Empty object value. */
    static Value object();

    Kind kind() const { return kind_; }

    /** Object: set a member (insertion-ordered). Returns *this. */
    Value &set(const std::string &key, Value v);
    /** Array: append an element. Returns *this. */
    Value &push(Value v);

    /** Serialize; @p indent > 0 pretty-prints with that step. */
    std::string dump(int indent = 0) const;

    /** Escape and quote a string per RFC 8259. */
    static std::string quote(const std::string &s);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string str_;
    std::vector<Value> arr_;
    std::vector<std::pair<std::string, Value>> obj_;
};

} // namespace json
} // namespace bitfusion

#endif // BITFUSION_COMMON_JSON_H
