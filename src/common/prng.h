/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic inputs in the library (synthetic tensors, property
 * tests) flow through this seeded generator so every run is exactly
 * reproducible. The core is SplitMix64, which is small, fast, and has
 * no measurable bias for our purposes.
 */

#ifndef BITFUSION_COMMON_PRNG_H
#define BITFUSION_COMMON_PRNG_H

#include <cmath>
#include <cstdint>

#include "src/common/bitutils.h"

namespace bitfusion {

/** Small deterministic PRNG (SplitMix64). */
class Prng
{
  public:
    explicit Prng(std::uint64_t seed) : state(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        BF_ASSERT(bound != 0);
        return next() % bound;
    }

    /** Uniform signed value representable in @p bits signed bits. */
    std::int64_t
    nextSigned(unsigned bits)
    {
        return signExtend(next(), bits);
    }

    /** Uniform unsigned value representable in @p bits bits. */
    std::int64_t
    nextUnsigned(unsigned bits)
    {
        return static_cast<std::int64_t>(next() & lowMask(bits));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /**
     * Exponentially distributed value with the given @p mean (> 0);
     * the inter-arrival distribution of a Poisson process. Used by
     * the serving layer's synthetic open-loop traces.
     */
    double
    nextExponential(double mean)
    {
        // 1 - u lies in (0, 1], so log() never sees zero.
        return -mean * std::log(1.0 - nextDouble());
    }

  private:
    std::uint64_t state;
};

} // namespace bitfusion

#endif // BITFUSION_COMMON_PRNG_H
