/**
 * @file
 * Streaming (constant-memory) order statistics.
 *
 * The serving layer's exact nearest-rank percentiles keep one double
 * per served request, which stops being credible somewhere around
 * 1e6 requests. P2Quantile is the P-squared algorithm of Jain and
 * Chlamtac (CACM 1985): five markers track the target quantile, its
 * neighbors at q/2 and (1+q)/2, and the extremes, adjusted by a
 * piecewise-parabolic fit on every observation -- O(1) memory and
 * O(1) update, no buffering, no randomness, so a fixed observation
 * order reproduces the estimate to the bit. StreamingSummary bundles
 * the p50/p95/p99 estimators the serving report needs with exact
 * running count, mean, and max.
 *
 * Accuracy (asserted in tests/test_serve_scale.cc): on 2e4-sample
 * uniform, exponential, and bimodal draws the P2 p50/p95/p99 land
 * within 2% relative error (+ a small absolute floor) of the exact
 * nearest-rank values; the first five observations are exact by
 * construction. The estimator is biased for heavily discrete
 * distributions (many ties), which serving latencies are not.
 */

#ifndef BITFUSION_COMMON_STREAMING_STATS_H
#define BITFUSION_COMMON_STREAMING_STATS_H

#include <cstddef>

namespace bitfusion {

/** One P-squared quantile estimator (constant memory). */
class P2Quantile
{
  public:
    /** Estimate the @p quantile in (0, 1), e.g. 0.99. */
    explicit P2Quantile(double quantile);

    /** Observe one value. */
    void add(double x);

    /**
     * Current estimate. Exact (nearest-rank over the buffered
     * observations, matching serve::percentiles) while five or fewer
     * values have been observed; 0 when empty.
     */
    double value() const;

    /** Observations so far. */
    std::size_t count() const { return count_; }

  private:
    double quantile_;
    /** Marker heights (the first five observations until primed). */
    double height_[5] = {0, 0, 0, 0, 0};
    /** Actual marker positions (1-based observation ranks). */
    double position_[5] = {0, 0, 0, 0, 0};
    /** Desired marker positions and their per-observation drift. */
    double desired_[5] = {0, 0, 0, 0, 0};
    double drift_[5] = {0, 0, 0, 0, 0};
    std::size_t count_ = 0;
};

/**
 * Constant-memory latency summary: exact count / mean / max plus
 * P-squared p50, p95, and p99. Deterministic for a fixed
 * observation order.
 */
class StreamingSummary
{
  public:
    StreamingSummary();

    void add(double x);

    std::size_t count() const { return count_; }
    double mean() const;
    double max() const { return max_; }
    double p50() const { return p50_.value(); }
    double p95() const { return p95_.value(); }
    double p99() const { return p99_.value(); }

  private:
    P2Quantile p50_;
    P2Quantile p95_;
    P2Quantile p99_;
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
};

} // namespace bitfusion

#endif // BITFUSION_COMMON_STREAMING_STATS_H
