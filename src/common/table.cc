#include "src/common/table.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/logging.h"

namespace bitfusion {

TextTable::TextTable(std::vector<std::string> headers)
    : headers(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    BF_ASSERT(cells.size() == headers.size(),
              "row width ", cells.size(), " != header width ",
              headers.size());
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers.size(), 0);
    for (std::size_t c = 0; c < headers.size(); ++c)
        widths[c] = headers[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit_row(headers);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit_row(row);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
TextTable::num(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
TextTable::times(double v, int digits)
{
    return num(v, digits) + "x";
}

double
geomean(const std::vector<double> &values)
{
    BF_ASSERT(!values.empty());
    double log_sum = 0.0;
    for (double v : values) {
        BF_ASSERT(v > 0.0, "geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace bitfusion
