/**
 * @file
 * Small bit-manipulation helpers used throughout the library.
 */

#ifndef BITFUSION_COMMON_BITUTILS_H
#define BITFUSION_COMMON_BITUTILS_H

#include <cstdint>

#include "src/common/logging.h"

namespace bitfusion {

/** Integer ceiling division. */
constexpr std::uint64_t
divCeil(std::uint64_t num, std::uint64_t den)
{
    return (num + den - 1) / den;
}

/** A mask with the low @p bits bits set. @p bits must be <= 64. */
constexpr std::uint64_t
lowMask(unsigned bits)
{
    return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

/**
 * Sign-extend the low @p bits bits of @p value to a full 64-bit signed
 * integer.
 */
constexpr std::int64_t
signExtend(std::uint64_t value, unsigned bits)
{
    const std::uint64_t m = 1ULL << (bits - 1);
    const std::uint64_t v = value & lowMask(bits);
    return static_cast<std::int64_t>((v ^ m) - m);
}

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power-of-two value. */
constexpr unsigned
log2Exact(std::uint64_t v)
{
    unsigned n = 0;
    while (v > 1) {
        v >>= 1;
        ++n;
    }
    return n;
}

/**
 * Number of BitBrick lanes (2-bit digits) an operand of @p bits bits
 * occupies. Binary (1-bit) and ternary (2-bit) operands both occupy a
 * single 2-bit lane.
 */
constexpr unsigned
bitBrickLanes(unsigned bits)
{
    return bits <= 2 ? 1 : (bits + 1) / 2;
}

/** Smallest signed value representable in @p bits bits. */
constexpr std::int64_t
signedMin(unsigned bits)
{
    return -(std::int64_t{1} << (bits - 1));
}

/** Largest signed value representable in @p bits bits. */
constexpr std::int64_t
signedMax(unsigned bits)
{
    return (std::int64_t{1} << (bits - 1)) - 1;
}

/** Largest unsigned value representable in @p bits bits. */
constexpr std::int64_t
unsignedMax(unsigned bits)
{
    return static_cast<std::int64_t>(lowMask(bits));
}

/** Clamp @p v into the representable range of @p bits signed bits. */
constexpr std::int64_t
clampSigned(std::int64_t v, unsigned bits)
{
    const std::int64_t lo = signedMin(bits);
    const std::int64_t hi = signedMax(bits);
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Clamp @p v into the representable range of @p bits unsigned bits. */
constexpr std::int64_t
clampUnsigned(std::int64_t v, unsigned bits)
{
    const std::int64_t hi = unsignedMax(bits);
    return v < 0 ? 0 : (v > hi ? hi : v);
}

} // namespace bitfusion

#endif // BITFUSION_COMMON_BITUTILS_H
