/**
 * @file
 * Plain-text table formatting for benchmark and report output.
 *
 * Every bench binary regenerates one of the paper's tables or figures;
 * this class renders the rows/series in an aligned, copy-pasteable
 * form.
 */

#ifndef BITFUSION_COMMON_TABLE_H
#define BITFUSION_COMMON_TABLE_H

#include <string>
#include <vector>

namespace bitfusion {

/** Aligned text table with a header row. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Render the table, header first, columns space-aligned. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format helper: fixed-point decimal with @p digits fractional. */
    static std::string num(double v, int digits = 2);

    /** Format helper: value with a trailing multiplication sign. */
    static std::string times(double v, int digits = 2);

  private:
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
};

/** Geometric mean of a list of strictly positive values. */
double geomean(const std::vector<double> &values);

} // namespace bitfusion

#endif // BITFUSION_COMMON_TABLE_H
