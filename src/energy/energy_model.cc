#include "src/energy/energy_model.h"

#include <cmath>

#include "src/common/logging.h"

namespace bitfusion {

double
EnergyModel::sramEnergyPerBitPj(std::uint64_t capacity_bits)
{
    BF_ASSERT(capacity_bits > 0);
    // Power-law fit: e(16 KB) = 0.10 pJ/bit, exponent 0.25.
    const double kb = static_cast<double>(capacity_bits) / (8.0 * 1024.0);
    return 0.10 * std::pow(kb / 16.0, 0.25);
}

void
EnergyModel::applyBitFusion(LayerStats &stats, unsigned a_bits,
                            unsigned w_bits,
                            std::uint64_t sram_capacity_bits,
                            TechNode tech)
{
    const double scale = HwModel::energyScale(tech);
    const double mac_pj = HwModel::macEnergyPj(a_bits, w_bits, tech);
    stats.energy.computeJ =
        static_cast<double>(stats.macs) * mac_pj * 1e-12;
    stats.energy.bufferJ = static_cast<double>(stats.sramBits) *
                           sramEnergyPerBitPj(sram_capacity_bits) *
                           scale * 1e-12;
    stats.energy.rfJ = 0.0; // systolic design has no per-PE RF
    stats.energy.dramJ =
        static_cast<double>(stats.dramLoadBits + stats.dramStoreBits) *
        dramEnergyPerBitPj * 1e-12;
}

void
EnergyModel::applyFixedPoint(LayerStats &stats, double mac_pj,
                             std::uint64_t sram_capacity_bits)
{
    stats.energy.computeJ =
        static_cast<double>(stats.macs) * mac_pj * 1e-12;
    stats.energy.bufferJ = static_cast<double>(stats.sramBits) *
                           sramEnergyPerBitPj(sram_capacity_bits) *
                           1e-12;
    stats.energy.rfJ = static_cast<double>(stats.rfBits) *
                       rfEnergyPerBitPj * 1e-12;
    stats.energy.dramJ =
        static_cast<double>(stats.dramLoadBits + stats.dramStoreBits) *
        dramEnergyPerBitPj * 1e-12;
}

void
EnergyModel::applyEyeriss(LayerStats &stats,
                          std::uint64_t sram_capacity_bits)
{
    applyFixedPoint(stats, fixed16MacPj, sram_capacity_bits);
}

void
EnergyModel::applyStripes(LayerStats &stats, unsigned w_bits,
                          std::uint64_t sram_capacity_bits)
{
    // A bit-serial MAC spends one serial step per weight bit.
    stats.energy.computeJ = static_cast<double>(stats.macs) * w_bits *
                            serialStepPj * 1e-12;
    stats.energy.bufferJ = static_cast<double>(stats.sramBits) *
                           sramEnergyPerBitPj(sram_capacity_bits) *
                           1e-12;
    stats.energy.rfJ = 0.0;
    stats.energy.dramJ =
        static_cast<double>(stats.dramLoadBits + stats.dramStoreBits) *
        dramEnergyPerBitPj * 1e-12;
}

} // namespace bitfusion
