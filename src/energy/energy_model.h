/**
 * @file
 * Energy model (substitutes CACTI-P plus the synthesis power
 * numbers). All values are dynamic energies at 45 nm; the 16 nm
 * scaling of §V-A applies to on-chip components, while DRAM interface
 * energy is node-independent.
 *
 * SRAM energy per bit follows a CACTI-style capacity power law fit
 * to published 45 nm points (~0.06 pJ/bit at 16 KB, ~0.12 pJ/bit at
 * 256 KB). Register files are small multi-ported arrays with a
 * higher per-bit cost; DRAM interface+core energy is ~20 pJ/bit,
 * the figure commonly used for DDR3-era systems.
 */

#ifndef BITFUSION_ENERGY_ENERGY_MODEL_H
#define BITFUSION_ENERGY_ENERGY_MODEL_H

#include <cstdint>

#include "src/arch/hw_model.h"
#include "src/core/stats.h"

namespace bitfusion {

/** Per-bit / per-op energy constants and conversion helpers. */
class EnergyModel
{
  public:
    /** SRAM dynamic energy per bit accessed, by array capacity. */
    static double sramEnergyPerBitPj(std::uint64_t capacity_bits);

    /** Register-file energy per bit accessed (small per-PE RFs). */
    static constexpr double rfEnergyPerBitPj = 0.05;

    /** DRAM energy per bit transferred (interface + core). */
    static constexpr double dramEnergyPerBitPj = 20.0;

    /** Eyeriss-style fixed 16-bit MAC energy at 45 nm. */
    static constexpr double fixed16MacPj = 1.6;

    /**
     * Fixed 8-bit MAC energy at 45 nm (quadratic multiplier scaling
     * from the 16-bit point, plus the non-scaling accumulate path).
     */
    static constexpr double fixed8MacPj = 0.45;

    /** Stripes-style serial step (16-bit add + latch) energy. */
    static constexpr double serialStepPj = 0.20;

    /**
     * Fill @p stats.energy for a Bit Fusion layer: compute from the
     * fusion configuration, buffers from sramBits, DRAM from the
     * transfer counts. On-chip parts scale with @p tech.
     */
    static void applyBitFusion(LayerStats &stats, unsigned a_bits,
                               unsigned w_bits,
                               std::uint64_t sram_capacity_bits,
                               TechNode tech);

    /**
     * Fill energy for a fixed-point-MAC layer: compute at @p mac_pj
     * per MAC, buffers from sramBits at the capacity power law, RF
     * from rfBits, DRAM from the transfer counts. The shared path
     * for every fixed-function baseline (Eyeriss, MXU, DianNao).
     */
    static void applyFixedPoint(LayerStats &stats, double mac_pj,
                                std::uint64_t sram_capacity_bits);

    /** Fill energy for an Eyeriss layer (16-bit, with RF). */
    static void applyEyeriss(LayerStats &stats,
                             std::uint64_t sram_capacity_bits);

    /** Fill energy for a Stripes layer (serial weights). */
    static void applyStripes(LayerStats &stats, unsigned w_bits,
                             std::uint64_t sram_capacity_bits);
};

} // namespace bitfusion

#endif // BITFUSION_ENERGY_ENERGY_MODEL_H
