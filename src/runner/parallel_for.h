/**
 * @file
 * The fixed-size thread-queue pool shared by the sweep runner and
 * the serving engine's prewarm phase.
 */

#ifndef BITFUSION_RUNNER_PARALLEL_FOR_H
#define BITFUSION_RUNNER_PARALLEL_FOR_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace bitfusion {

/**
 * Resolve a requested worker count for @p work items: 0 means
 * hardware concurrency (at least 1), and the result never exceeds
 * the number of items.
 */
inline unsigned
resolveThreads(unsigned requested, std::size_t work)
{
    unsigned n = requested;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    return static_cast<unsigned>(
        std::min<std::size_t>(n, std::max<std::size_t>(work, 1)));
}

/**
 * Run fn(0..count-1) on up to @p threads workers pulling indices
 * from a shared atomic counter. The first exception (workers should
 * not normally throw; models report user error via BF_FATAL) is
 * rethrown on the calling thread after all workers join.
 */
template <typename Fn>
void
parallelFor(std::size_t count, unsigned threads, Fn &&fn)
{
    if (count == 0)
        return;
    if (threads <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorMutex;
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(threads, count));
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace bitfusion

#endif // BITFUSION_RUNNER_PARALLEL_FOR_H
