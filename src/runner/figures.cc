/**
 * @file
 * The figure registry: one sweep grid + reporter per paper figure,
 * shared by the bench binaries and the bitfusion_sweep CLI.
 *
 * Reporters consume only the deterministic SweepResult (cells are in
 * grid order: platform-major, then network, then batch), so their
 * output is identical for any --threads value.
 */

#include "src/runner/figures.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/arch/hw_model.h"
#include "src/arch/spatial_fusion.h"
#include "src/arch/temporal_unit.h"
#include "src/baselines/eyeriss.h"
#include "src/baselines/gpu.h"
#include "src/baselines/stripes.h"
#include "src/common/cli.h"
#include "src/common/logging.h"
#include "src/common/table.h"
#include "src/dnn/model_zoo.h"
#include "src/sim/bitfusion_platform.h"

namespace bitfusion {
namespace figures {

namespace {

/** The eight paper benchmarks as sweep networks, in figure order. */
std::vector<SweepNetwork>
paperNetworks()
{
    std::vector<SweepNetwork> nets;
    for (const auto &bench : zoo::all())
        nets.push_back(SweepNetwork::fromBenchmark(bench));
    return nets;
}

/**
 * The one comparison-grid builder: any platform mix over the eight
 * paper benchmarks. fig13/14 (vs Eyeriss), fig17 (vs the GPUs),
 * fig18 (vs Stripes), and the --platform CLI all come through here.
 */
SweepSpec
comparisonSpec(const std::string &name,
               std::vector<PlatformSpec> platforms)
{
    SweepSpec spec;
    spec.name = name;
    spec.platforms = std::move(platforms);
    spec.networks = paperNetworks();
    return spec;
}

/** Cells of one platform, in grid (network-major) order. */
std::vector<const SweepCellResult *>
cellsFor(const SweepResult &result, const std::string &platform)
{
    std::vector<const SweepCellResult *> cells;
    for (const auto &c : result.cells()) {
        if (c.platform == platform)
            cells.push_back(&c);
    }
    return cells;
}

std::string
pct(double part, double total)
{
    return TextTable::num(100.0 * part / total, 1) + "%";
}

// ------------------------------------------------------------- Fig. 1

void
reportFig1(const SweepResult &, const FigureOptions &)
{
    const auto benches = zoo::all();

    std::printf("=== Fig. 1(a): multiply-add bitwidth distribution "
                "(input/weight) ===\n\n");
    std::set<std::string> configs;
    for (const auto &b : benches)
        for (const auto &[k, v] : b.quantized.macBitwidthProfile())
            configs.insert(k);

    std::vector<std::string> headers = {"Config"};
    for (const auto &b : benches)
        headers.push_back(b.name);
    TextTable macs(headers);
    for (const auto &c : configs) {
        std::vector<std::string> row = {c};
        for (const auto &b : benches) {
            const auto prof = b.quantized.macBitwidthProfile();
            const auto it = prof.find(c);
            row.push_back(TextTable::num(
                it == prof.end() ? 0.0 : 100.0 * it->second, 1));
        }
        macs.addRow(row);
    }
    macs.print();

    std::printf("\n=== Fig. 1(b): weight bitwidth distribution (%%) "
                "===\n\n");
    std::set<unsigned> wbits;
    for (const auto &b : benches)
        for (const auto &[k, v] : b.quantized.weightBitwidthProfile())
            wbits.insert(k);
    TextTable weights(headers);
    for (unsigned wb : wbits) {
        std::vector<std::string> row = {std::to_string(wb) + "-bit"};
        for (const auto &b : benches) {
            const auto prof = b.quantized.weightBitwidthProfile();
            const auto it = prof.find(wb);
            row.push_back(TextTable::num(
                it == prof.end() ? 0.0 : 100.0 * it->second, 1));
        }
        weights.addRow(row);
    }
    weights.print();

    std::printf("\n=== Fig. 1 table: %% of ops that are multiply-adds "
                "===\n\n");
    TextTable frac({"DNN", "% Multiply-Add", "(paper)"});
    const double paper_frac[] = {99.8, 99.8, 99.9, 99.4,
                                 99.9, 99.9, 99.8, 99.5};
    BF_ASSERT(benches.size() == std::size(paper_frac));
    for (std::size_t i = 0; i < benches.size(); ++i) {
        frac.addRow({benches[i].name,
                     TextTable::num(
                         100.0 * benches[i].quantized.macFraction(), 2),
                     TextTable::num(paper_frac[i], 1)});
    }
    frac.print();
    std::printf("\npaper: on average 97.3%% of multiply-adds need four "
                "or fewer bits; >99%% of all ops are multiply-adds\n");
}

// ------------------------------------------------------------ Fig. 10

void
reportFig10(const SweepResult &, const FigureOptions &)
{
    const UnitCost fu = HwModel::fusionUnit45();
    const UnitCost tmp = HwModel::temporalDesign45();

    std::printf("=== Fig. 10: Fusion Unit vs temporal design "
                "(45 nm, 16 BitBricks) ===\n\n");

    TextTable area({"Area (um^2)", "BitBricks", "Shift-Add", "Register",
                    "Total"});
    area.addRow({"Temporal", TextTable::num(tmp.bitBricksAreaUm2, 0),
                 TextTable::num(tmp.shiftAddAreaUm2, 0),
                 TextTable::num(tmp.registerAreaUm2, 0),
                 TextTable::num(tmp.totalAreaUm2(), 0)});
    area.addRow({"Fusion Unit", TextTable::num(fu.bitBricksAreaUm2, 0),
                 TextTable::num(fu.shiftAddAreaUm2, 0),
                 TextTable::num(fu.registerAreaUm2, 0),
                 TextTable::num(fu.totalAreaUm2(), 0)});
    area.addRow({"Reduction",
                 TextTable::times(tmp.bitBricksAreaUm2 /
                                  fu.bitBricksAreaUm2, 1),
                 TextTable::times(tmp.shiftAddAreaUm2 /
                                  fu.shiftAddAreaUm2, 1),
                 TextTable::times(tmp.registerAreaUm2 /
                                  fu.registerAreaUm2, 1),
                 TextTable::times(tmp.totalAreaUm2() / fu.totalAreaUm2(),
                                  1)});
    area.print();

    std::printf("\n");
    TextTable power({"Power (nW)", "BitBricks", "Shift-Add", "Register",
                     "Total"});
    power.addRow({"Temporal", TextTable::num(tmp.bitBricksPowerNw, 0),
                  TextTable::num(tmp.shiftAddPowerNw, 0),
                  TextTable::num(tmp.registerPowerNw, 0),
                  TextTable::num(tmp.totalPowerNw(), 0)});
    power.addRow({"Fusion Unit", TextTable::num(fu.bitBricksPowerNw, 0),
                  TextTable::num(fu.shiftAddPowerNw, 0),
                  TextTable::num(fu.registerPowerNw, 0),
                  TextTable::num(fu.totalPowerNw(), 0)});
    power.addRow({"Reduction",
                  TextTable::times(tmp.bitBricksPowerNw /
                                   fu.bitBricksPowerNw, 1),
                  TextTable::times(tmp.shiftAddPowerNw /
                                   fu.shiftAddPowerNw, 1),
                  TextTable::times(tmp.registerPowerNw /
                                   fu.registerPowerNw, 1),
                  TextTable::times(tmp.totalPowerNw() / fu.totalPowerNw(),
                                   1)});
    power.print();

    const SpatialFusionTree tree(16);
    std::printf("\nshift-add tree over 16 BitBricks: %u levels, "
                "%u four-input adders, %u shift units\n",
                tree.levels(), tree.adderCount(), tree.shifterCount());
    std::printf("Fusion Units in the 1.1 mm^2 compute budget: %u\n",
                HwModel::fusionUnitsForBudget(1.1));
    std::printf("paper reference: 3.5x area and 3.2x power reduction; "
                "512 Fusion Units per 1.1 mm^2 tile\n");
}

// ----------------------------------------------------- Fig. 13 / Fig. 14

SweepSpec
specEyerissComparison(const std::string &name)
{
    return comparisonSpec(
        name,
        {bitfusionPlatform(AcceleratorConfig::eyerissMatched45(), "bitfusion"),
         eyerissPlatform()});
}

struct PaperRow
{
    double perf;
    double energy;
};

// Fig. 13 per-benchmark values from the paper's data table.
const PaperRow paperFig13[] = {
    {1.9, 1.5},   // AlexNet
    {13.0, 14.0}, // Cifar-10
    {2.4, 4.8},   // LSTM
    {2.7, 4.3},   // LeNet-5
    {1.9, 1.9},   // ResNet-18
    {2.7, 5.1},   // RNN
    {8.6, 10.0},  // SVHN
    {7.7, 9.9},   // VGG-7
};

void
reportFig13(const SweepResult &result, const FigureOptions &options)
{
    const auto bf = cellsFor(result, "bitfusion");
    const auto ey = cellsFor(result, "eyeriss");
    BF_ASSERT(bf.size() == ey.size() && bf.size() == 8);

    std::printf("=== Fig. 13: Bit Fusion improvement over Eyeriss "
                "(45 nm, area-matched, batch %u) ===\n\n", bf[0]->batch);

    TextTable table({"Benchmark", "Speedup", "(paper)", "EnergyRed",
                     "(paper)"});
    std::vector<double> speedups, energy_reds;
    for (std::size_t i = 0; i < bf.size(); ++i) {
        const double speedup = ey[i]->stats.secondsPerSample() /
                               bf[i]->stats.secondsPerSample();
        const double energy_red = ey[i]->stats.energyPerSampleJ() /
                                  bf[i]->stats.energyPerSampleJ();
        speedups.push_back(speedup);
        energy_reds.push_back(energy_red);
        table.addRow({bf[i]->network, TextTable::times(speedup, 1),
                      TextTable::times(paperFig13[i].perf, 1),
                      TextTable::times(energy_red, 1),
                      TextTable::times(paperFig13[i].energy, 1)});
    }
    table.addRow({"geomean", TextTable::times(geomean(speedups), 2),
                  "3.90x", TextTable::times(geomean(energy_reds), 2),
                  "5.10x"});
    table.print();

    if (options.perLayer) {
        std::printf("\n=== AlexNet per-layer improvement over Eyeriss "
                    "(paper §V-B1 table) ===\n\n");
        const RunStats &bfs = result.stats("bitfusion", "AlexNet");
        const RunStats &eys = result.stats("eyeriss", "AlexNet");
        TextTable pl({"Layer", "Config", "Speedup", "EnergyRed",
                      "BF util"});
        for (std::size_t i = 0;
             i < bfs.layers.size() && i < eys.layers.size(); ++i) {
            const auto &lb = bfs.layers[i];
            const auto &le = eys.layers[i];
            const double sp = static_cast<double>(le.cycles) /
                              static_cast<double>(lb.cycles);
            const double er = le.energy.totalJ() / lb.energy.totalJ();
            pl.addRow({lb.name, lb.config, TextTable::times(sp, 2),
                       TextTable::times(er, 2),
                       pct(lb.utilization, 1.0)});
        }
        pl.print();
        std::printf("\npaper: conv 8/8 1.67x/6.5x, conv 4/1 6.4x/16.8x, "
                    "fc 4/1 3.3x/30.7x, fc 8/8 1.0x/10.3x\n");
    }
}

void
reportFig14(const SweepResult &result, const FigureOptions &)
{
    const auto bf = cellsFor(result, "bitfusion");
    const auto ey = cellsFor(result, "eyeriss");
    BF_ASSERT(bf.size() == ey.size());

    std::printf("=== Fig. 14: energy breakdown, Bit Fusion vs Eyeriss "
                "===\n\n");
    TextTable table({"Benchmark", "Platform", "Compute", "Buffers",
                     "RegFile", "DRAM", "Total uJ/sample"});
    for (std::size_t i = 0; i < bf.size(); ++i) {
        const ComponentEnergy be = bf[i]->stats.energy();
        const ComponentEnergy ee = ey[i]->stats.energy();
        table.addRow({bf[i]->network, "BitFusion",
                      pct(be.computeJ, be.totalJ()),
                      pct(be.bufferJ, be.totalJ()),
                      pct(be.rfJ, be.totalJ()),
                      pct(be.dramJ, be.totalJ()),
                      TextTable::num(
                          be.totalJ() / bf[i]->stats.batch * 1e6, 2)});
        table.addRow({ey[i]->network, "Eyeriss",
                      pct(ee.computeJ, ee.totalJ()),
                      pct(ee.bufferJ, ee.totalJ()),
                      pct(ee.rfJ, ee.totalJ()),
                      pct(ee.dramJ, ee.totalJ()),
                      TextTable::num(
                          ee.totalJ() / ey[i]->stats.batch * 1e6, 2)});
    }
    table.print();
    std::printf("\npaper shape: Bit Fusion ~67-75%% DRAM, ~13-25%% "
                "buffers, ~7-11%% compute, 0%% RF;\n"
                "Eyeriss ~21-69%% DRAM with a large register-file "
                "share (row-stationary per-PE RFs).\n");
}

// ------------------------------------------------------------ Fig. 15

const std::uint64_t fig15Widths[] = {32, 64, 128, 256, 512};

SweepSpec
specFig15()
{
    SweepSpec spec;
    spec.name = "fig15";
    for (std::uint64_t w : fig15Widths) {
        AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
        cfg.bwBitsPerCycle = w;
        spec.platforms.push_back(
            bitfusionPlatform(cfg, "bw" + std::to_string(w)));
    }
    spec.networks = paperNetworks();
    return spec;
}

void
reportFig15(const SweepResult &result, const FigureOptions &)
{
    std::printf("=== Fig. 15: speedup vs off-chip bandwidth (baseline "
                "128 bits/cycle) ===\n\n");

    std::vector<std::string> headers = {"Benchmark"};
    for (std::uint64_t w : fig15Widths)
        headers.push_back(std::to_string(w) + "b/cyc");
    TextTable table(headers);

    const auto base = cellsFor(result, "bw128");
    std::vector<std::vector<const SweepCellResult *>> byWidth;
    for (std::uint64_t w : fig15Widths)
        byWidth.push_back(cellsFor(result, "bw" + std::to_string(w)));
    std::vector<std::vector<double>> cols(std::size(fig15Widths));
    for (std::size_t bi = 0; bi < base.size(); ++bi) {
        std::vector<std::string> row = {base[bi]->network};
        for (std::size_t wi = 0; wi < std::size(fig15Widths); ++wi) {
            const double speedup =
                base[bi]->stats.secondsPerSample() /
                byWidth[wi][bi]->stats.secondsPerSample();
            cols[wi].push_back(speedup);
            row.push_back(TextTable::times(speedup, 2));
        }
        table.addRow(row);
    }
    std::vector<std::string> geo = {"geomean"};
    for (auto &c : cols)
        geo.push_back(TextTable::times(geomean(c), 2));
    table.addRow(geo);
    table.print();
    std::printf("\npaper geomean: 0.25x  0.51x  1.00x  1.91x  2.86x\n");
}

// ------------------------------------------------------------ Fig. 16

const unsigned fig16Batches[] = {1, 4, 16, 64, 256};

SweepSpec
specFig16()
{
    SweepSpec spec;
    spec.name = "fig16";
    spec.platforms = {bitfusionPlatform(
        AcceleratorConfig::eyerissMatched45(), "bitfusion")};
    spec.networks = paperNetworks();
    spec.batches.assign(std::begin(fig16Batches), std::end(fig16Batches));
    return spec;
}

void
reportFig16(const SweepResult &result, const FigureOptions &)
{
    std::printf("=== Fig. 16: per-sample speedup vs batch size "
                "(baseline batch 1) ===\n\n");

    std::vector<std::string> headers = {"Benchmark"};
    for (unsigned b : fig16Batches)
        headers.push_back("B=" + std::to_string(b));
    TextTable table(headers);

    std::vector<std::vector<double>> cols(std::size(fig16Batches));
    for (const auto &bench : zoo::all()) {
        std::vector<std::string> row = {bench.name};
        const double base_sec = result.stats("bitfusion", bench.name, 1)
                                    .secondsPerSample();
        for (std::size_t bi = 0; bi < std::size(fig16Batches); ++bi) {
            const double sec =
                result.stats("bitfusion", bench.name, fig16Batches[bi])
                    .secondsPerSample();
            const double speedup = base_sec / sec;
            cols[bi].push_back(speedup);
            row.push_back(TextTable::times(speedup, 2));
        }
        table.addRow(row);
    }
    std::vector<std::string> geo = {"geomean"};
    for (auto &c : cols)
        geo.push_back(TextTable::times(geomean(c), 2));
    table.addRow(geo);
    table.print();
    std::printf("\npaper geomean: 1.00  1.66  2.43  2.68  2.68 "
                "(RNN/LSTM up to 21x, CNNs ~1.2-1.5x)\n");
}

// ------------------------------------------------------------ Fig. 17

SweepSpec
specFig17()
{
    return comparisonSpec(
        "fig17",
        {bitfusionPlatform(AcceleratorConfig::gpuScale16(), "bitfusion-16nm"),
         gpuPlatform(GpuSpec::tegraX2Fp32()),
         gpuPlatform(GpuSpec::titanXpFp32()),
         gpuPlatform(GpuSpec::titanXpInt8())});
}

void
reportFig17(const SweepResult &result, const FigureOptions &)
{
    std::printf("=== Fig. 17: speedup over Tegra X2 (FP32), 16 nm "
                "===\n\n");

    TextTable table({"Benchmark", "TitanXp-FP32", "TitanXp-INT8",
                     "BitFusion-16nm"});
    std::vector<double> g_fp32, g_int8, g_bf;
    for (const auto &bench : zoo::all()) {
        const double tx2_sec =
            result.stats("tegra-x2-fp32", bench.name).secondsPerSample();
        const double fp32_sec =
            result.stats("titan-xp-fp32", bench.name).secondsPerSample();
        // INT8 TensorRT runs the quantized graph topology at the
        // regular width (GPUs cannot exploit the 2x-wide low-bit
        // models, so they keep the regular ones; paper §V-A).
        const double int8_sec =
            result.stats("titan-xp-int8", bench.name).secondsPerSample();
        const double bf_sec =
            result.stats("bitfusion-16nm", bench.name).secondsPerSample();

        const double s_fp32 = tx2_sec / fp32_sec;
        const double s_int8 = tx2_sec / int8_sec;
        const double s_bf = tx2_sec / bf_sec;
        g_fp32.push_back(s_fp32);
        g_int8.push_back(s_int8);
        g_bf.push_back(s_bf);
        table.addRow({bench.name, TextTable::times(s_fp32, 1),
                      TextTable::times(s_int8, 1),
                      TextTable::times(s_bf, 1)});
    }
    table.addRow({"geomean", TextTable::times(geomean(g_fp32), 2),
                  TextTable::times(geomean(g_int8), 2),
                  TextTable::times(geomean(g_bf), 2)});
    table.print();
    std::printf("\npaper geomean: 12x (FP32), 19x (INT8), 16x "
                "(Bit Fusion, 895 mW vs the GPU's 250 W TDP)\n");
}

// ------------------------------------------------------------ Fig. 18

// Fig. 18 per-benchmark values from the paper's data table.
const PaperRow paperFig18[] = {
    {1.8, 2.7}, // AlexNet
    {4.0, 6.0}, // Cifar-10
    {2.1, 3.1}, // LSTM
    {5.2, 7.8}, // LeNet-5
    {2.6, 4.4}, // ResNet-18
    {2.0, 3.0}, // RNN
    {1.8, 2.7}, // SVHN
    {2.9, 4.4}, // VGG-7
};

SweepSpec
specFig18()
{
    return comparisonSpec(
        "fig18",
        {bitfusionPlatform(AcceleratorConfig::stripesTileMatched45(),
                           "bitfusion"),
         // Both platforms run the same quantized models (Stripes also
         // benefits from the reduced weight bitwidths).
         stripesPlatform()});
}

void
reportFig18(const SweepResult &result, const FigureOptions &)
{
    const auto bf = cellsFor(result, "bitfusion");
    const auto st = cellsFor(result, "stripes");
    BF_ASSERT(bf.size() == st.size() && bf.size() == 8);

    std::printf("=== Fig. 18: Bit Fusion improvement over Stripes "
                "(45 nm, tile-matched) ===\n\n");

    TextTable table({"Benchmark", "Speedup", "(paper)", "EnergyRed",
                     "(paper)"});
    std::vector<double> speedups, energy_reds;
    for (std::size_t i = 0; i < bf.size(); ++i) {
        const double speedup = st[i]->stats.secondsPerSample() /
                               bf[i]->stats.secondsPerSample();
        const double energy_red = st[i]->stats.energyPerSampleJ() /
                                  bf[i]->stats.energyPerSampleJ();
        speedups.push_back(speedup);
        energy_reds.push_back(energy_red);
        table.addRow({bf[i]->network, TextTable::times(speedup, 1),
                      TextTable::times(paperFig18[i].perf, 1),
                      TextTable::times(energy_red, 1),
                      TextTable::times(paperFig18[i].energy, 1)});
    }
    table.addRow({"geomean", TextTable::times(geomean(speedups), 2),
                  "2.61x", TextTable::times(geomean(energy_reds), 2),
                  "3.97x"});
    table.print();
}

// ----------------------------------------------------------- Table II

void
reportTable2(const SweepResult &, const FigureOptions &)
{
    std::printf("=== Table II: evaluated CNN/RNN benchmarks ===\n\n");
    TextTable table({"DNN", "Mops", "(paper)", "Weights MB", "(paper)",
                     "Params M", "Layers"});
    for (const auto &b : zoo::all()) {
        const auto &net = b.quantized;
        table.addRow({
            b.name,
            TextTable::num(static_cast<double>(net.totalMacs()) / 1e6, 0),
            TextTable::num(b.paperMops, 0),
            TextTable::num(static_cast<double>(net.totalWeightBits()) /
                               (8.0 * 1024 * 1024), 2),
            TextTable::num(b.paperWeightMB, 1),
            TextTable::num(static_cast<double>(net.totalWeights()) / 1e6,
                           2),
            std::to_string(net.layers().size()),
        });
    }
    table.print();

    std::printf("\n(regular-width baselines used on Eyeriss/GPU)\n\n");
    TextTable base({"DNN", "Mops", "Params M"});
    for (const auto &b : zoo::all()) {
        base.addRow({
            b.name,
            TextTable::num(
                static_cast<double>(b.baseline.totalMacs()) / 1e6, 0),
            TextTable::num(
                static_cast<double>(b.baseline.totalWeights()) / 1e6, 2),
        });
    }
    base.print();
}

// ---------------------------------------------------------- Table III

void
reportTable3(const SweepResult &, const FigureOptions &)
{
    std::printf("=== Table III: evaluated platforms ===\n\n");

    TextTable asic({"ASIC", "Compute", "Freq MHz", "On-chip", "Tech",
                    "bits/cyc"});
    const auto bf45 = AcceleratorConfig::eyerissMatched45();
    asic.addRow({bf45.name,
                 std::to_string(bf45.fusionUnits()) + " FUs (" +
                     std::to_string(bf45.fusionUnits() *
                                    bf45.bricksPerUnit) +
                     " BitBricks)",
                 TextTable::num(bf45.freqMHz, 0),
                 TextTable::num(static_cast<double>(bf45.onChipBits()) /
                                (8 * 1024), 0) + " KB",
                 "45 nm", std::to_string(bf45.bwBitsPerCycle)});
    const EyerissConfig ey;
    asic.addRow({"eyeriss", std::to_string(ey.totalPEs()) + " PEs (" +
                     std::to_string(ey.peRows) + "x" +
                     std::to_string(ey.peCols) + ", 16-bit)",
                 TextTable::num(ey.freqMHz, 0),
                 TextTable::num(static_cast<double>(ey.sramBits) /
                                (8 * 1024), 1) + " KB",
                 "45 nm", std::to_string(ey.bwBitsPerCycle)});
    const StripesConfig st;
    asic.addRow({"stripes", std::to_string(st.tiles) + " tiles x " +
                     std::to_string(st.sips) + " SIPs",
                 TextTable::num(st.freqMHz, 0),
                 TextTable::num(static_cast<double>(st.sramBits *
                                                    st.tiles) /
                                (8 * 1024), 0) + " KB",
                 "45 nm", std::to_string(st.bwBitsPerCycle)});
    const auto bf16 = AcceleratorConfig::gpuScale16();
    asic.addRow({bf16.name,
                 std::to_string(bf16.fusionUnits()) + " FUs (" +
                     std::to_string(bf16.tiles) + " tiles)",
                 TextTable::num(bf16.freqMHz, 0),
                 TextTable::num(static_cast<double>(bf16.onChipBits()) /
                                (8 * 1024), 0) + " KB",
                 "16 nm", std::to_string(bf16.bwBitsPerCycle)});
    asic.print();

    std::printf("\n");
    TextTable gpu({"GPU", "Peak Gmac/s", "Mem GB/s", "Bytes/elem",
                   "Kernel eff"});
    for (const auto &spec : {GpuSpec::tegraX2Fp32(),
                             GpuSpec::titanXpFp32(),
                             GpuSpec::titanXpInt8()}) {
        gpu.addRow({spec.name,
                    TextTable::num(spec.peakMacsPerSec / 1e9, 0),
                    TextTable::num(spec.memBytesPerSec / 1e9, 0),
                    TextTable::num(spec.bytesPerElem, 0),
                    TextTable::num(spec.efficiency, 2)});
    }
    gpu.print();

    std::printf("\nderived: Fusion Unit %.0f um^2 at 45 nm; %u units "
                "per 1.1 mm^2 compute budget;\n16 nm scaling 0.86x V, "
                "0.42x C -> %.2fx energy, %.2fx area\n",
                HwModel::fusionUnit45().totalAreaUm2(),
                HwModel::fusionUnitsForBudget(1.1),
                HwModel::energyScale(TechNode::Nm16),
                HwModel::areaScale(TechNode::Nm16));
}

// ----------------------------------------------- Ablation: fusion style

void
reportAblationStyle(const SweepResult &, const FigureOptions &)
{
    std::printf("=== Ablation 1: spatial vs temporal vs hybrid fusion "
                "(throughput per area) ===\n\n");
    const double a_fu = HwModel::fusionUnit45().totalAreaUm2();
    const double a_tmp = HwModel::temporalDesign45().totalAreaUm2();

    TextTable t({"Config", "Hybrid MACs/cyc/unit", "Temporal",
                 "Hybrid MACs/cyc/mm2", "Temporal", "Advantage"});
    const FusionConfig configs[] = {
        {1, 1, false, false}, {2, 2, false, true}, {4, 2, false, true},
        {4, 4, false, true},  {8, 4, false, true}, {8, 8, false, true},
        {16, 8, true, true},  {16, 16, true, true}};
    for (const auto &c : configs) {
        // Hybrid: spatial PEs with temporal passes for 16-bit.
        const double hybrid =
            static_cast<double>(c.fusedPEs(16)) / c.temporalPasses();
        // Temporal: 16 serial units, each one product per
        // lanes(a)*lanes(w) cycles.
        const double temporal = 16.0 / TemporalUnit::cyclesPerProduct(c);
        const double h_mm2 = hybrid / a_fu * 1e6;
        const double t_mm2 = temporal / a_tmp * 1e6;
        t.addRow({c.toString(), TextTable::num(hybrid, 2),
                  TextTable::num(temporal, 2), TextTable::num(h_mm2, 0),
                  TextTable::num(t_mm2, 0),
                  TextTable::times(h_mm2 / t_mm2, 2)});
    }
    t.print();
    std::printf("\n(same 2-bit multiplier count; the temporal design "
                "pays for per-unit wide shifters/registers, Fig. 10)\n");
}

// -------------------------------------------- Ablation: code optimizations

SweepSpec
specAblationCodeopt()
{
    SweepSpec spec;
    spec.name = "ablation-codeopt";
    const struct
    {
        const char *name;
        bool loopOrdering;
        bool layerFusion;
    } variants[] = {
        {"opt", true, true},
        {"no-loop-order", false, true},
        {"no-layer-fusion", true, false},
        {"neither", false, false},
    };
    for (const auto &v : variants) {
        AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
        cfg.loopOrdering = v.loopOrdering;
        cfg.layerFusion = v.layerFusion;
        spec.platforms.push_back(bitfusionPlatform(cfg, v.name));
    }
    spec.networks = paperNetworks();
    return spec;
}

void
reportAblationCodeopt(const SweepResult &result, const FigureOptions &)
{
    std::printf("=== Ablation 2: code optimizations (loop ordering + "
                "layer fusion) ===\n\n");
    TextTable t({"Benchmark", "Optimized us", "NoLoopOrder",
                 "NoLayerFusion", "Neither", "Opt gain"});
    for (const auto &bench : zoo::all()) {
        const double opt =
            result.stats("opt", bench.name).secondsPerSample() * 1e6;
        const double no_lo =
            result.stats("no-loop-order", bench.name).secondsPerSample() *
            1e6;
        const double no_lf =
            result.stats("no-layer-fusion", bench.name)
                .secondsPerSample() * 1e6;
        const double none =
            result.stats("neither", bench.name).secondsPerSample() * 1e6;
        t.addRow({bench.name, TextTable::num(opt, 1),
                  TextTable::times(no_lo / opt, 2),
                  TextTable::times(no_lf / opt, 2),
                  TextTable::times(none / opt, 2),
                  TextTable::times(none / opt, 2)});
    }
    t.print();
}

// ----------------------------------------------- Ablation: bitwidth sweep

const unsigned ablationWidths[] = {16, 8, 4, 2, 1};

FusionConfig
uniformConfig(unsigned width)
{
    FusionConfig c;
    c.aBits = width;
    c.wBits = width;
    c.aSigned = false;
    c.wSigned = width > 1;
    return c;
}

SweepSpec
specAblationBitwidth()
{
    SweepSpec spec;
    spec.name = "ablation-bitwidth";
    spec.platforms = {bitfusionPlatform(
        AcceleratorConfig::eyerissMatched45(), "bitfusion")};
    const auto bench = zoo::vgg7();
    for (unsigned w : ablationWidths) {
        const FusionConfig c = uniformConfig(w);
        // Rebuild the VGG-7 topology with one uniform config.
        std::vector<Layer> layers = bench.quantized.layers();
        for (auto &l : layers)
            l.bits = c;
        spec.networks.push_back(SweepNetwork::uniform(
            c.toString(),
            Network(bench.quantized.name(), std::move(layers))));
    }
    return spec;
}

void
reportAblationBitwidth(const SweepResult &result, const FigureOptions &)
{
    std::printf("=== Ablation 3: uniform-bitwidth sweep (VGG-7 "
                "topology) ===\n\n");
    TextTable t({"Config", "us/sample", "Speedup vs 16b",
                 "Energy uJ/sample", "Reduction vs 16b"});
    const std::string base_name = uniformConfig(16).toString();
    const double base_sec =
        result.stats("bitfusion", base_name).secondsPerSample();
    const double base_e =
        result.stats("bitfusion", base_name).energyPerSampleJ();
    for (unsigned w : ablationWidths) {
        const std::string name = uniformConfig(w).toString();
        const RunStats &rs = result.stats("bitfusion", name);
        const double sec = rs.secondsPerSample();
        const double e = rs.energyPerSampleJ();
        t.addRow({name, TextTable::num(sec * 1e6, 1),
                  TextTable::times(base_sec / sec, 2),
                  TextTable::num(e * 1e6, 1),
                  TextTable::times(base_e / e, 2)});
    }
    t.print();
    std::printf("\n(compute scales ~quadratically with operand width; "
                "traffic scales linearly -- the core Bit Fusion "
                "observation)\n");
}

// ------------------------------------- Design-space exploration sweep

SweepSpec
specDse()
{
    SweepSpec spec;
    spec.name = "dse";
    const struct
    {
        unsigned rows, cols;
    } geometries[] = {{8, 32}, {8, 64}, {16, 32}, {16, 64}};
    const std::uint64_t bandwidths[] = {64, 128, 256, 512};
    for (const auto &g : geometries) {
        for (std::uint64_t bw : bandwidths) {
            AcceleratorConfig cfg = AcceleratorConfig::eyerissMatched45();
            cfg.rows = g.rows;
            cfg.cols = g.cols;
            cfg.bwBitsPerCycle = bw;
            spec.platforms.push_back(bitfusionPlatform(
                cfg, std::to_string(g.rows) + "x" +
                         std::to_string(g.cols) + "-bw" +
                         std::to_string(bw)));
        }
    }
    spec.networks = paperNetworks();
    spec.batches = {1, 4, 16, 64, 256};
    return spec;
}

void
reportDse(const SweepResult &result, const FigureOptions &)
{
    std::printf("=== Design-space exploration: array geometry x "
                "bandwidth x batch ===\n\n");
    // Deliberately no thread count here: the ASCII report must be
    // byte-identical for any --threads value (JSON carries it).
    std::printf("grid: %zu cells, %zu compiles, %zu cache hits\n\n",
                result.cells().size(), result.compileCount(),
                result.cacheHits());

    // Best configuration per network at the paper's batch 16,
    // by latency and by energy-delay product.
    TextTable t({"Benchmark", "Best latency", "us/sample",
                 "Best EDP", "uJ*us"});
    for (const auto &bench : zoo::all()) {
        const SweepCellResult *best_lat = nullptr;
        const SweepCellResult *best_edp = nullptr;
        double best_sec = 0.0, best_e = 0.0;
        for (const auto &c : result.cells()) {
            if (c.network != bench.name || c.batch != 16)
                continue;
            const double sec = c.stats.secondsPerSample();
            const double edp = sec * c.stats.energyPerSampleJ();
            if (best_lat == nullptr || sec < best_sec) {
                best_lat = &c;
                best_sec = sec;
            }
            if (best_edp == nullptr || edp < best_e) {
                best_edp = &c;
                best_e = edp;
            }
        }
        BF_ASSERT(best_lat != nullptr && best_edp != nullptr);
        t.addRow({bench.name, best_lat->platform,
                  TextTable::num(best_sec * 1e6, 1), best_edp->platform,
                  TextTable::num(best_e * 1e12, 1)});
    }
    t.print();
    std::printf("\n(full per-cell data available via --json)\n");
}

// ----------------------------------------------------------- registry

SweepSpec
emptySpec()
{
    return SweepSpec{};
}

const std::vector<Figure> &
registry()
{
    static const std::vector<Figure> figures = {
        {"fig1", "bitwidth distribution of the benchmark DNNs",
         emptySpec, reportFig1},
        {"fig10", "Fusion Unit vs temporal design area/power",
         emptySpec, reportFig10},
        {"fig13", "speedup and energy reduction over Eyeriss",
         [] { return specEyerissComparison("fig13"); }, reportFig13},
        {"fig14", "energy breakdown vs Eyeriss",
         [] { return specEyerissComparison("fig14"); }, reportFig14},
        {"fig15", "performance vs off-chip bandwidth",
         specFig15, reportFig15},
        {"fig16", "per-sample throughput vs batch size",
         specFig16, reportFig16},
        {"fig17", "speedup over the GPUs at 16 nm",
         specFig17, reportFig17},
        {"fig18", "speedup and energy reduction over Stripes",
         specFig18, reportFig18},
        {"table2", "benchmark MAC counts and weight footprints",
         emptySpec, reportTable2},
        {"table3", "evaluated platform parameters",
         emptySpec, reportTable3},
        {"ablation-style", "spatial vs temporal vs hybrid fusion",
         emptySpec, reportAblationStyle},
        {"ablation-codeopt", "loop-ordering/layer-fusion optimizations",
         specAblationCodeopt, reportAblationCodeopt},
        {"ablation-bitwidth", "uniform-bitwidth sweep of VGG-7",
         specAblationBitwidth, reportAblationBitwidth},
        {"dse", "design-space sweep: geometry x bandwidth x batch",
         specDse, reportDse},
    };
    return figures;
}

} // namespace

const std::vector<Figure> &
all()
{
    return registry();
}

const Figure *
find(const std::string &id)
{
    for (const auto &figure : registry()) {
        if (figure.id == id)
            return &figure;
    }
    return nullptr;
}

int
runPlatforms(const std::vector<std::string> &tokens, unsigned batch,
             const FigureOptions &options)
{
    const PlatformRegistry &registry = PlatformRegistry::builtin();
    std::vector<PlatformSpec> platforms;
    for (const auto &token : tokens) {
        PlatformSpec spec = registry.parse(token);
        if (batch != 0)
            spec.batch = batch;
        platforms.push_back(std::move(spec));
    }
    SweepSpec spec = comparisonSpec("custom", std::move(platforms));

    SweepRunner runner({options.threads, options.timing});
    const SweepResult result = runner.run(spec);

    std::printf("=== Custom platform comparison (timing=%s) ===\n\n",
                toString(options.timing));
    std::vector<std::string> headers = {"Benchmark"};
    for (const auto &p : spec.platforms)
        headers.push_back(p.name);
    TextTable lat(headers);
    TextTable energy(headers);
    for (const auto &net : spec.networks) {
        std::vector<std::string> lrow = {net.name};
        std::vector<std::string> erow = {net.name};
        for (const auto &p : spec.platforms) {
            const RunStats &rs = result.stats(p.name, net.name);
            lrow.push_back(
                TextTable::num(rs.secondsPerSample() * 1e6, 2));
            const double uj = rs.energyPerSampleJ() * 1e6;
            // Defensive: an out-of-tree platform without an energy
            // model prints "-" rather than a misleading 0 uJ.
            erow.push_back(uj > 0.0 ? TextTable::num(uj, 2) : "-");
        }
        lat.addRow(lrow);
        energy.addRow(erow);
    }
    std::printf("latency (us/sample):\n\n");
    lat.print();
    std::printf("\nenergy (uJ/sample):\n\n");
    energy.print();

    if (!options.jsonPath.empty()) {
        std::ofstream out(options.jsonPath);
        if (!out)
            BF_FATAL("cannot write JSON to '", options.jsonPath, "'");
        out << result.json(options.perLayer) << "\n";
    }
    return 0;
}

int
run(const Figure &figure, const FigureOptions &options)
{
    const SweepSpec spec = figure.spec();
    SweepResult result;
    if (!spec.platforms.empty()) {
        SweepRunner runner({options.threads, options.timing});
        result = runner.run(spec);
    }
    figure.report(result, options);

    if (!options.jsonPath.empty()) {
        if (spec.platforms.empty()) {
            BF_WARN("figure '", figure.id,
                    "' has no sweep grid; no JSON written");
            return 0;
        }
        std::ofstream out(options.jsonPath);
        if (!out)
            BF_FATAL("cannot write JSON to '", options.jsonPath, "'");
        out << result.json(options.perLayer) << "\n";
    }
    return 0;
}

int
runAll(const std::vector<std::string> &ids, const FigureOptions &options)
{
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const Figure *figure = find(ids[i]);
        if (figure == nullptr)
            BF_FATAL("unknown figure '", ids[i], "'");
        if (i > 0)
            std::printf("\n");
        FigureOptions figureOptions = options;
        if (!options.jsonPath.empty() && ids.size() > 1) {
            figureOptions.jsonPath =
                options.jsonPath + "." + figure->id + ".json";
        }
        const int rc = run(*figure, figureOptions);
        if (rc != 0)
            return rc;
    }
    return 0;
}

int
benchMain(const std::vector<std::string> &ids, int argc, char **argv)
{
    FigureOptions options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads") {
            options.threads = static_cast<unsigned>(
                cli::uintArg(argc, argv, i, "--threads", UINT32_MAX));
        } else if (arg == "--json" && i + 1 < argc) {
            options.jsonPath = argv[++i];
        } else if (arg == "--per-layer") {
            options.perLayer = true;
        } else if (arg == "--timing") {
            options.timing = timingArg(argc, argv, i);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--threads N] [--json PATH] "
                         "[--per-layer] [--timing simple|overlap]\n",
                         argv[0]);
            return 2;
        }
    }
    return runAll(ids, options);
}

int
benchMain(const std::string &id, int argc, char **argv)
{
    return benchMain(std::vector<std::string>{id}, argc, argv);
}

} // namespace figures
} // namespace bitfusion
