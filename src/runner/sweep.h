/**
 * @file
 * Parallel sweep engine for paper-figure reproduction.
 *
 * A sweep is the cartesian product of platforms (PlatformSpecs of
 * any registered kind) x networks x batch sizes. The runner expands
 * the grid, builds each cell's platform through the
 * PlatformRegistry, resolves each distinct (compile key, network,
 * batch) triple through the process-level ArtifactCache
 * (src/core/artifact_cache.h, shared with the serving engine), and
 * fans the simulations out across a fixed-size thread pool.
 *
 * Determinism: results are stored in grid order (platform-major,
 * then network, then batch), each worker writes only its own cell,
 * and every platform run is a pure function of its inputs (see the
 * thread-safety contract on Platform), so the result table is
 * bit-identical regardless of the thread count.
 */

#ifndef BITFUSION_RUNNER_SWEEP_H
#define BITFUSION_RUNNER_SWEEP_H

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/platform_registry.h"
#include "src/core/stats.h"
#include "src/dnn/model_zoo.h"
#include "src/dnn/network.h"

namespace bitfusion {

/**
 * One network row of a sweep grid: both model variants of a paper
 * benchmark, so each platform can pick the variant it executes.
 */
struct SweepNetwork
{
    std::string name;
    Network quantized;
    Network baseline;

    static SweepNetwork fromBenchmark(const zoo::Benchmark &bench);
    /** Single-variant entry (both platforms run the same model). */
    static SweepNetwork uniform(std::string name, Network net);
};

/** Declarative sweep grid: platforms x networks x batch sizes. */
struct SweepSpec
{
    /** Sweep identifier (e.g. "fig13"); lands in the JSON output. */
    std::string name;
    std::vector<PlatformSpec> platforms;
    std::vector<SweepNetwork> networks;
    /**
     * Batch-size overrides. Empty means one cell per
     * (platform, network) at the platform's own batch size.
     */
    std::vector<unsigned> batches;

    /** Number of grid cells the spec expands to. */
    std::size_t cellCount() const;
};

/** One expanded grid cell. */
struct SweepCell
{
    std::size_t platformIndex = 0;
    std::size_t networkIndex = 0;
    /** Batch override; 0 keeps the platform's default batch. */
    unsigned batch = 0;
};

/** Result of one cell. */
struct SweepCellResult
{
    SweepCell cell;
    /** Platform display name. */
    std::string platform;
    /** Network name. */
    std::string network;
    /** Effective batch size the cell ran at. */
    unsigned batch = 0;
    RunStats stats;
};

/** Deterministically ordered result table of one sweep. */
class SweepResult
{
  public:
    const std::string &name() const { return name_; }
    const std::vector<SweepCellResult> &cells() const { return cells_; }

    /**
     * Find a cell by platform/network name (and batch; 0 matches the
     * first cell of that pair). Returns nullptr if absent.
     */
    const SweepCellResult *find(const std::string &platform,
                                const std::string &network,
                                unsigned batch = 0) const;

    /** Like find(), but fatal when the cell is absent. */
    const RunStats &stats(const std::string &platform,
                          const std::string &network,
                          unsigned batch = 0) const;

    /**
     * Distinct compilations this sweep's grid needs. A pure function
     * of the spec: an artifact already resident in the shared cache
     * (from a previous sweep or the serving engine) still counts
     * here even though no work was redone -- cross-run reuse is
     * visible on ArtifactCache's own counters instead.
     */
    std::size_t compileCount() const { return compiles_; }
    /** Cells served by reusing another cell's compilation. */
    std::size_t cacheHits() const { return cacheHits_; }
    /** Worker threads the sweep ran with. */
    unsigned threadsUsed() const { return threads_; }
    /** Timing model the sweep ran under. */
    TimingModel timing() const { return timing_; }

    /**
     * Machine-readable dump: sweep metadata plus one record per cell
     * with cycles, time, traffic, and the energy split;
     * @p per_layer additionally embeds the per-layer stats.
     */
    std::string json(bool per_layer = false) const;

  private:
    friend class SweepRunner;

    std::string name_;
    std::vector<SweepCellResult> cells_;
    std::size_t compiles_ = 0;
    std::size_t cacheHits_ = 0;
    unsigned threads_ = 1;
    TimingModel timing_ = TimingModel::Simple;
};

class ArtifactCache;
class ArtifactStore;

/** Runner options. */
struct SweepOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** Phase-time composition used for every cell. */
    TimingModel timing = TimingModel::Simple;
    /**
     * Compiled-artifact cache to resolve compilations through;
     * nullptr uses the process-level ArtifactCache::process().
     * Tests pass a private cache for isolated accounting.
     */
    ArtifactCache *cache = nullptr;
    /**
     * Persistent store attached to the cache before the sweep
     * (core/artifact_store.h); nullptr leaves the cache's current
     * attachment -- for the process cache, the BITFUSION_STORE
     * process store -- in place.
     */
    ArtifactStore *store = nullptr;
};

/** Expands sweep grids and executes them on a thread pool. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});

    /**
     * Expand a spec into grid order: platform-major, then network,
     * then batch (exposed for tests).
     */
    static std::vector<SweepCell> expand(const SweepSpec &spec);

    /** Run every cell of the spec; see class docs for guarantees. */
    SweepResult run(const SweepSpec &spec) const;

    /** The thread count run() will use for @p cells cells. */
    unsigned effectiveThreads(std::size_t cells) const;

  private:
    SweepOptions opts;
};

} // namespace bitfusion

#endif // BITFUSION_RUNNER_SWEEP_H
