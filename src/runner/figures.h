/**
 * @file
 * Registry of the paper's figures and tables, each expressed as a
 * sweep grid plus an ASCII reporter.
 *
 * Every bench binary and the bitfusion_sweep CLI resolve figures
 * here, so one declaration drives both: the grid feeds the parallel
 * SweepRunner, the reporter renders the paper-style table from the
 * deterministic result, and the JSON dump comes for free.
 */

#ifndef BITFUSION_RUNNER_FIGURES_H
#define BITFUSION_RUNNER_FIGURES_H

#include <functional>
#include <string>
#include <vector>

#include "src/runner/sweep.h"

namespace bitfusion {
namespace figures {

/** Options shared by the bench binaries and the sweep CLI. */
struct FigureOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** When nonempty, dump the SweepResult as JSON to this path. */
    std::string jsonPath;
    /** Include per-layer detail (fig13 table, JSON layers). */
    bool perLayer = false;
    /**
     * Phase-time composition (core/layer_walk.h). Simple is the
     * seed-equivalent default every paper figure is calibrated
     * against; Overlap enables the cross-tile/cross-layer pipeline.
     */
    TimingModel timing = TimingModel::Simple;
};

/** One reproducible figure or table. */
struct Figure
{
    /** Identifier used by --figure (e.g. "fig13"). */
    std::string id;
    /** One-line description shown by --list. */
    std::string title;
    /**
     * Build the sweep grid. Figures that only print model/topology
     * properties (fig1, fig10, table2, table3) return an empty grid
     * and do all their work in report().
     */
    std::function<SweepSpec()> spec;
    /** Render the paper-style ASCII table from the sweep result. */
    std::function<void(const SweepResult &, const FigureOptions &)> report;
};

/** All registered figures, in paper order. */
const std::vector<Figure> &all();

/** Look up a figure by id; nullptr when unknown. */
const Figure *find(const std::string &id);

/** Run one figure end-to-end: sweep, report, optional JSON dump. */
int run(const Figure &figure, const FigureOptions &options);

/**
 * Run an ad-hoc heterogeneous sweep: the platforms named by
 * --platform tokens (see PlatformRegistry::parse) over the eight
 * paper benchmarks, reported as latency/energy-per-sample tables.
 * @p batch overrides every platform's batch when nonzero.
 */
int runPlatforms(const std::vector<std::string> &tokens, unsigned batch,
                 const FigureOptions &options);

/**
 * Run several figures in order with a blank line between reports;
 * a --json path is suffixed ".<id>.json" per figure when more than
 * one runs so the dumps don't overwrite each other. Fatals on an
 * unknown id.
 */
int runAll(const std::vector<std::string> &ids,
           const FigureOptions &options);

/**
 * Shared main() for the bench binaries: parse --threads/--json/
 * --per-layer/--timing, then run the named figure. Returns the
 * process exit code.
 */
int benchMain(const std::string &id, int argc, char **argv);

/** Multi-figure variant (e.g. the ablation bench); see runAll(). */
int benchMain(const std::vector<std::string> &ids, int argc,
              char **argv);

} // namespace figures
} // namespace bitfusion

#endif // BITFUSION_RUNNER_FIGURES_H
