/**
 * @file
 * Sweep grid expansion, the compiled-artifact cache, and the
 * fixed-size thread pool that executes the cells.
 */

#include "src/runner/sweep.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/core/artifact_cache.h"
#include "src/core/report.h"
#include "src/runner/parallel_for.h"

namespace bitfusion {

namespace {

/** The network variant a platform executes. */
const Network &
variantFor(const PlatformSpec &platform, const SweepNetwork &net)
{
    return platform.runsQuantized ? net.quantized : net.baseline;
}

void
validateSpec(const SweepSpec &spec)
{
    if (spec.platforms.empty())
        BF_FATAL("sweep '", spec.name, "' has no platforms");
    if (spec.networks.empty())
        BF_FATAL("sweep '", spec.name, "' has no networks");

    std::unordered_set<std::string> seen;
    for (const auto &p : spec.platforms) {
        if (p.name.empty())
            BF_FATAL("sweep '", spec.name, "' has an unnamed platform");
        if (!seen.insert(p.name).second)
            BF_FATAL("sweep '", spec.name, "' has duplicate platform '",
                     p.name, "'");
        p.config.validate();
    }
    seen.clear();
    for (const auto &n : spec.networks) {
        if (n.name.empty())
            BF_FATAL("sweep '", spec.name, "' has an unnamed network");
        if (!seen.insert(n.name).second)
            BF_FATAL("sweep '", spec.name, "' has duplicate network '",
                     n.name, "'");
    }
    for (unsigned b : spec.batches) {
        if (b == 0)
            BF_FATAL("sweep '", spec.name, "' has a zero batch size");
    }
}

} // namespace

// ------------------------------------------------------------ networks

SweepNetwork
SweepNetwork::fromBenchmark(const zoo::Benchmark &bench)
{
    SweepNetwork n;
    n.name = bench.name;
    n.quantized = bench.quantized;
    n.baseline = bench.baseline;
    return n;
}

SweepNetwork
SweepNetwork::uniform(std::string name, Network net)
{
    SweepNetwork n;
    n.name = std::move(name);
    n.quantized = net;
    n.baseline = std::move(net);
    return n;
}

std::size_t
SweepSpec::cellCount() const
{
    return platforms.size() * networks.size() *
           std::max<std::size_t>(batches.size(), 1);
}

// ---------------------------------------------------------- SweepResult

const SweepCellResult *
SweepResult::find(const std::string &platform, const std::string &network,
                  unsigned batch) const
{
    for (const auto &c : cells_) {
        if (c.platform == platform && c.network == network &&
            (batch == 0 || c.batch == batch)) {
            return &c;
        }
    }
    return nullptr;
}

const RunStats &
SweepResult::stats(const std::string &platform, const std::string &network,
                   unsigned batch) const
{
    const SweepCellResult *c = find(platform, network, batch);
    if (c == nullptr) {
        BF_FATAL("sweep '", name_, "' has no cell (", platform, ", ",
                 network, ", batch ", batch, ")");
    }
    return c->stats;
}

std::string
SweepResult::json(bool per_layer) const
{
    json::Value doc = json::Value::object();
    doc.set("sweep", name_)
        .set("timing", toString(timing_))
        .set("threads", threads_)
        .set("compiles", static_cast<std::uint64_t>(compiles_))
        .set("cache_hits", static_cast<std::uint64_t>(cacheHits_));

    json::Value cells = json::Value::array();
    for (const auto &c : cells_) {
        json::Value cell = json::Value::object();
        cell.set("platform", c.platform)
            .set("network", c.network)
            .set("batch", c.batch);
        report::fillRunJson(cell, c.stats, per_layer);
        cells.push(std::move(cell));
    }
    doc.set("cells", std::move(cells));
    return doc.dump(2);
}

// ---------------------------------------------------------- SweepRunner

SweepRunner::SweepRunner(SweepOptions opts) : opts(opts) {}

unsigned
SweepRunner::effectiveThreads(std::size_t cells) const
{
    return resolveThreads(opts.threads, cells);
}

std::vector<SweepCell>
SweepRunner::expand(const SweepSpec &spec)
{
    validateSpec(spec);
    std::vector<SweepCell> cells;
    cells.reserve(spec.cellCount());
    for (std::size_t p = 0; p < spec.platforms.size(); ++p) {
        for (std::size_t n = 0; n < spec.networks.size(); ++n) {
            if (spec.batches.empty()) {
                cells.push_back({p, n, 0});
                continue;
            }
            for (unsigned b : spec.batches)
                cells.push_back({p, n, b});
        }
    }
    return cells;
}

SweepResult
SweepRunner::run(const SweepSpec &spec) const
{
    const std::vector<SweepCell> cells = expand(spec);
    const unsigned threads = effectiveThreads(cells.size());
    const PlatformRegistry &registry = PlatformRegistry::builtin();

    // Build one platform per distinct (platform, effective batch)
    // pair -- batch is applied at build time, and cells differing
    // only in network share the instance (platforms are const and
    // thread-safe once built).
    std::vector<std::unique_ptr<Platform>> built;
    std::unordered_map<std::string, std::size_t> builtIndex;
    std::vector<const Platform *> platforms(cells.size(), nullptr);
    std::vector<unsigned> cellBatch(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        PlatformSpec cellSpec = spec.platforms[cells[i].platformIndex];
        if (cells[i].batch != 0)
            cellSpec.batch = cells[i].batch;
        cellBatch[i] = cellSpec.effectiveBatch();
        const std::string key =
            std::to_string(cells[i].platformIndex) + "|" +
            std::to_string(cellBatch[i]);
        auto [it, inserted] = builtIndex.emplace(key, built.size());
        if (inserted)
            built.push_back(registry.build(cellSpec));
        platforms[i] = built[it->second].get();
    }

    // Deduplicate the compilation work within this sweep: one job
    // per distinct (compile key, network variant) pair. Platforms
    // with an empty key (the baselines) have no compile step.
    struct CompileJob
    {
        const Platform *platform = nullptr;
        const Network *net = nullptr;
    };
    std::vector<CompileJob> jobs;
    std::unordered_map<std::string, std::size_t> keyToJob;
    std::vector<std::size_t> cellJob(cells.size(), SIZE_MAX);
    std::size_t compiledCells = 0;

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCell &cell = cells[i];
        const PlatformSpec &platform = spec.platforms[cell.platformIndex];
        const std::string platformKey = platforms[i]->compileKey();
        if (platformKey.empty())
            continue;
        ++compiledCells;
        const std::string key =
            platformKey + "|" + std::to_string(cell.networkIndex) +
            (platform.runsQuantized ? "|q" : "|b");
        auto [it, inserted] = keyToJob.emplace(key, jobs.size());
        if (inserted) {
            jobs.push_back(
                {platforms[i],
                 &variantFor(platform, spec.networks[cell.networkIndex])});
        }
        cellJob[i] = it->second;
    }

    // Phase 1: resolve every job through the shared artifact cache
    // in parallel. A job already cached by an earlier sweep (or the
    // serving engine) skips its compilation here; the recorded
    // counters stay a pure function of the spec (one compile per
    // distinct job, within-run reuse as hits) so JSON dumps -- and
    // the golden files locking them -- don't depend on what else the
    // process ran first. Cross-run reuse shows up on the
    // ArtifactCache's own counters instead.
    ArtifactCache &cache =
        opts.cache != nullptr ? *opts.cache : ArtifactCache::process();
    if (opts.store != nullptr)
        cache.attachStore(opts.store);
    std::vector<PlatformArtifactPtr> compiled(jobs.size());
    parallelFor(jobs.size(), threads, [&](std::size_t j) {
        compiled[j] =
            cache.get(*jobs[j].platform, *jobs[j].net).artifact;
    });

    // Phase 2: simulate every cell. Workers write disjoint slots of
    // the grid-ordered result vector, so output order and content
    // are independent of the thread count.
    SweepResult result;
    result.name_ = spec.name;
    result.compiles_ = jobs.size();
    result.cacheHits_ = compiledCells - jobs.size();
    result.threads_ = threads;
    result.timing_ = opts.timing;
    result.cells_.resize(cells.size());

    parallelFor(cells.size(), threads, [&](std::size_t i) {
        const SweepCell &cell = cells[i];
        const PlatformSpec &platform = spec.platforms[cell.platformIndex];
        const SweepNetwork &net = spec.networks[cell.networkIndex];

        SweepCellResult r;
        r.cell = cell;
        r.platform = platform.name;
        r.network = net.name;
        r.batch = cellBatch[i];

        RunOptions runOpts;
        runOpts.timing = opts.timing;
        if (cellJob[i] != SIZE_MAX)
            runOpts.artifact = compiled[cellJob[i]].get();
        r.stats =
            platforms[i]->run(variantFor(platform, net), runOpts);
        result.cells_[i] = std::move(r);
    });

    return result;
}

} // namespace bitfusion
