/**
 * @file
 * Sweep grid expansion, the compiled-network cache, and the
 * fixed-size thread pool that executes the cells.
 */

#include "src/runner/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/compiler/codegen.h"
#include "src/core/report.h"
#include "src/sim/simulator.h"

namespace bitfusion {

namespace {

/**
 * Run fn(0..count-1) on up to @p threads workers pulling indices
 * from a shared atomic counter. The first exception (workers should
 * not normally throw; models report user error via BF_FATAL) is
 * rethrown on the calling thread after all workers join.
 */
template <typename Fn>
void
parallelFor(std::size_t count, unsigned threads, Fn &&fn)
{
    if (count == 0)
        return;
    if (threads <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr firstError;
    std::mutex errorMutex;
    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMutex);
                if (!firstError)
                    firstError = std::current_exception();
            }
        }
    };

    const unsigned n =
        static_cast<unsigned>(std::min<std::size_t>(threads, count));
    std::vector<std::thread> pool;
    pool.reserve(n);
    for (unsigned t = 0; t < n; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();
    if (firstError)
        std::rethrow_exception(firstError);
}

/** The network variant a platform executes. */
const Network &
variantFor(const SweepPlatform &platform, const SweepNetwork &net)
{
    return platform.runsQuantized ? net.quantized : net.baseline;
}

/** Default batch of a platform when the spec gives no override. */
unsigned
defaultBatch(const SweepPlatform &platform)
{
    switch (platform.kind) {
      case PlatformKind::BitFusion:
        return platform.bf.batch;
      case PlatformKind::Eyeriss:
        return platform.eyeriss.batch;
      case PlatformKind::Stripes:
        return platform.stripes.batch;
      case PlatformKind::Gpu:
        return kGpuDefaultBatch; // GpuSpec carries no batch field.
    }
    BF_PANIC("unknown platform kind");
}

void
validateSpec(const SweepSpec &spec)
{
    if (spec.platforms.empty())
        BF_FATAL("sweep '", spec.name, "' has no platforms");
    if (spec.networks.empty())
        BF_FATAL("sweep '", spec.name, "' has no networks");

    std::unordered_set<std::string> seen;
    for (const auto &p : spec.platforms) {
        if (p.name.empty())
            BF_FATAL("sweep '", spec.name, "' has an unnamed platform");
        if (!seen.insert(p.name).second)
            BF_FATAL("sweep '", spec.name, "' has duplicate platform '",
                     p.name, "'");
        if (p.kind == PlatformKind::BitFusion)
            p.bf.validate();
    }
    seen.clear();
    for (const auto &n : spec.networks) {
        if (n.name.empty())
            BF_FATAL("sweep '", spec.name, "' has an unnamed network");
        if (!seen.insert(n.name).second)
            BF_FATAL("sweep '", spec.name, "' has duplicate network '",
                     n.name, "'");
    }
    for (unsigned b : spec.batches) {
        if (b == 0)
            BF_FATAL("sweep '", spec.name, "' has a zero batch size");
    }
}

} // namespace

// ------------------------------------------------------------ factories

SweepPlatform
SweepPlatform::bitfusion(AcceleratorConfig cfg, std::string name)
{
    SweepPlatform p;
    p.kind = PlatformKind::BitFusion;
    p.name = name.empty() ? cfg.name : std::move(name);
    p.runsQuantized = true;
    p.bf = std::move(cfg);
    return p;
}

SweepPlatform
SweepPlatform::eyerissBaseline(EyerissConfig cfg)
{
    SweepPlatform p;
    p.kind = PlatformKind::Eyeriss;
    p.name = "eyeriss";
    p.runsQuantized = false;
    p.eyeriss = cfg;
    return p;
}

SweepPlatform
SweepPlatform::stripesBaseline(StripesConfig cfg)
{
    SweepPlatform p;
    p.kind = PlatformKind::Stripes;
    p.name = "stripes";
    p.runsQuantized = true;
    p.stripes = cfg;
    return p;
}

SweepPlatform
SweepPlatform::gpuBaseline(GpuSpec spec)
{
    SweepPlatform p;
    p.kind = PlatformKind::Gpu;
    p.name = spec.name;
    p.runsQuantized = false;
    p.gpu = std::move(spec);
    return p;
}

SweepNetwork
SweepNetwork::fromBenchmark(const zoo::Benchmark &bench)
{
    SweepNetwork n;
    n.name = bench.name;
    n.quantized = bench.quantized;
    n.baseline = bench.baseline;
    return n;
}

SweepNetwork
SweepNetwork::uniform(std::string name, Network net)
{
    SweepNetwork n;
    n.name = std::move(name);
    n.quantized = net;
    n.baseline = std::move(net);
    return n;
}

std::size_t
SweepSpec::cellCount() const
{
    return platforms.size() * networks.size() *
           std::max<std::size_t>(batches.size(), 1);
}

// ---------------------------------------------------------- SweepResult

const SweepCellResult *
SweepResult::find(const std::string &platform, const std::string &network,
                  unsigned batch) const
{
    for (const auto &c : cells_) {
        if (c.platform == platform && c.network == network &&
            (batch == 0 || c.batch == batch)) {
            return &c;
        }
    }
    return nullptr;
}

const RunStats &
SweepResult::stats(const std::string &platform, const std::string &network,
                   unsigned batch) const
{
    const SweepCellResult *c = find(platform, network, batch);
    if (c == nullptr) {
        BF_FATAL("sweep '", name_, "' has no cell (", platform, ", ",
                 network, ", batch ", batch, ")");
    }
    return c->stats;
}

std::string
SweepResult::json(bool per_layer) const
{
    json::Value doc = json::Value::object();
    doc.set("sweep", name_)
        .set("threads", threads_)
        .set("compiles", static_cast<std::uint64_t>(compiles_))
        .set("cache_hits", static_cast<std::uint64_t>(cacheHits_));

    json::Value cells = json::Value::array();
    for (const auto &c : cells_) {
        json::Value cell = json::Value::object();
        cell.set("platform", c.platform)
            .set("network", c.network)
            .set("batch", c.batch);
        report::fillRunJson(cell, c.stats, per_layer);
        cells.push(std::move(cell));
    }
    doc.set("cells", std::move(cells));
    return doc.dump(2);
}

// ---------------------------------------------------------- SweepRunner

SweepRunner::SweepRunner(SweepOptions opts) : opts(opts) {}

unsigned
SweepRunner::effectiveThreads(std::size_t cells) const
{
    unsigned n = opts.threads;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 1;
    }
    return static_cast<unsigned>(
        std::min<std::size_t>(n, std::max<std::size_t>(cells, 1)));
}

std::vector<SweepCell>
SweepRunner::expand(const SweepSpec &spec)
{
    validateSpec(spec);
    std::vector<SweepCell> cells;
    cells.reserve(spec.cellCount());
    for (std::size_t p = 0; p < spec.platforms.size(); ++p) {
        for (std::size_t n = 0; n < spec.networks.size(); ++n) {
            if (spec.batches.empty()) {
                cells.push_back({p, n, 0});
                continue;
            }
            for (unsigned b : spec.batches)
                cells.push_back({p, n, b});
        }
    }
    return cells;
}

SweepResult
SweepRunner::run(const SweepSpec &spec) const
{
    const std::vector<SweepCell> cells = expand(spec);
    const unsigned threads = effectiveThreads(cells.size());

    // Deduplicate the compilation work: one job per distinct
    // (compile-relevant config, network variant, batch) triple.
    struct CompileJob
    {
        AcceleratorConfig cfg;
        const Network *net = nullptr;
    };
    std::vector<CompileJob> jobs;
    std::unordered_map<std::string, std::size_t> keyToJob;
    std::vector<std::size_t> cellJob(cells.size(), SIZE_MAX);
    std::size_t bitfusionCells = 0;

    for (std::size_t i = 0; i < cells.size(); ++i) {
        const SweepCell &cell = cells[i];
        const SweepPlatform &platform = spec.platforms[cell.platformIndex];
        if (platform.kind != PlatformKind::BitFusion)
            continue;
        ++bitfusionCells;
        AcceleratorConfig cfg = platform.bf;
        if (cell.batch != 0)
            cfg.batch = cell.batch;
        const std::string key =
            cfg.compileKey() + "|" + std::to_string(cell.networkIndex) +
            (platform.runsQuantized ? "|q" : "|b");
        auto [it, inserted] = keyToJob.emplace(key, jobs.size());
        if (inserted) {
            jobs.push_back(
                {std::move(cfg),
                 &variantFor(platform, spec.networks[cell.networkIndex])});
        }
        cellJob[i] = it->second;
    }

    // Phase 1: populate the compiled-network cache in parallel.
    std::vector<CompiledNetwork> compiled(jobs.size());
    parallelFor(jobs.size(), threads, [&](std::size_t j) {
        compiled[j] = Compiler(jobs[j].cfg).compile(*jobs[j].net);
    });

    // Phase 2: simulate every cell. Workers write disjoint slots of
    // the grid-ordered result vector, so output order and content
    // are independent of the thread count.
    SweepResult result;
    result.name_ = spec.name;
    result.compiles_ = jobs.size();
    result.cacheHits_ = bitfusionCells - jobs.size();
    result.threads_ = threads;
    result.cells_.resize(cells.size());

    parallelFor(cells.size(), threads, [&](std::size_t i) {
        const SweepCell &cell = cells[i];
        const SweepPlatform &platform = spec.platforms[cell.platformIndex];
        const SweepNetwork &net = spec.networks[cell.networkIndex];

        SweepCellResult r;
        r.cell = cell;
        r.platform = platform.name;
        r.network = net.name;
        r.batch = cell.batch != 0 ? cell.batch : defaultBatch(platform);

        switch (platform.kind) {
          case PlatformKind::BitFusion: {
            AcceleratorConfig cfg = platform.bf;
            cfg.batch = r.batch;
            r.stats = Simulator(cfg).run(compiled[cellJob[i]]);
            break;
          }
          case PlatformKind::Eyeriss: {
            EyerissConfig cfg = platform.eyeriss;
            cfg.batch = r.batch;
            r.stats = EyerissModel(cfg).run(variantFor(platform, net));
            break;
          }
          case PlatformKind::Stripes: {
            StripesConfig cfg = platform.stripes;
            cfg.batch = r.batch;
            r.stats = StripesModel(cfg).run(variantFor(platform, net));
            break;
          }
          case PlatformKind::Gpu: {
            r.stats = GpuModel(platform.gpu, r.batch)
                          .run(variantFor(platform, net));
            break;
          }
        }
        result.cells_[i] = std::move(r);
    });

    return result;
}

} // namespace bitfusion
