/**
 * @file
 * Fusion configuration: the per-layer operand bitwidth/sign setting
 * that determines how BitBricks compose into Fused-PEs.
 */

#ifndef BITFUSION_ARCH_FUSION_CONFIG_H
#define BITFUSION_ARCH_FUSION_CONFIG_H

#include <string>

namespace bitfusion {

/**
 * Operand bitwidths and signedness for one instruction block / layer.
 *
 * Bit Fusion supports operand bitwidths of 1 (binary), 2 (ternary),
 * 4, 8, and 16 bits. 1- and 2-bit operands each occupy one BitBrick
 * lane; wider operands occupy bits/2 lanes. Up to 8-bit operands are
 * handled purely spatially inside a Fusion Unit; 16-bit operands add
 * temporal passes (paper §III-C "spatio-temporal fusion").
 */
struct FusionConfig
{
    /** Activation (input) bitwidth: 1, 2, 4, 8, or 16. */
    unsigned aBits = 8;
    /** Weight bitwidth: 1, 2, 4, 8, or 16. */
    unsigned wBits = 8;
    /** Whether activations are signed. */
    bool aSigned = false;
    /** Whether weights are signed. */
    bool wSigned = true;

    /** Validate the configuration; fatal() on unsupported widths. */
    void validate() const;

    /** BitBrick lanes occupied by the activation operand (spatial). */
    unsigned aLanes() const;
    /** BitBrick lanes occupied by the weight operand (spatial). */
    unsigned wLanes() const;

    /**
     * BitBricks consumed by one product in the spatial dimension.
     * 16-bit operands are decomposed spatially only down to 8 bits;
     * the rest is temporal.
     */
    unsigned bricksPerProduct() const;

    /**
     * Temporal passes needed per product: 1 for operands up to 8
     * bits, 2 when one operand is 16-bit, 4 when both are.
     */
    unsigned temporalPasses() const;

    /**
     * Fused-PEs offered by a Fusion Unit of @p bricks BitBricks
     * (16 by default). This is the parallelism multiplier relative
     * to the 8x8-bit configuration.
     */
    unsigned fusedPEs(unsigned bricks = 16) const;

    /** Short form like "4b/2b" (activations/weights). */
    std::string toString() const;

    bool
    operator==(const FusionConfig &o) const
    {
        return aBits == o.aBits && wBits == o.wBits &&
               aSigned == o.aSigned && wSigned == o.wSigned;
    }
};

} // namespace bitfusion

#endif // BITFUSION_ARCH_FUSION_CONFIG_H
