/**
 * @file
 * BitBrick: the basic 2-bit compute unit of Bit Fusion (paper Fig. 5).
 *
 * A BitBrick multiplies two 2-bit operands, each tagged with a sign
 * bit. Signed operands lie in [-2, 1], unsigned operands in [0, 3].
 * Internally the operands are sign/zero-extended to 3 bits and fed to
 * a 3-bit signed multiplier built from half/full adders, producing a
 * 6-bit signed product.
 *
 * Two implementations are provided: a behavioural one (plain integer
 * multiply after decode) and a gate-level one that models the Fig. 5
 * half-adder/full-adder array. Tests check them against each other
 * exhaustively over all 2^6 operand/sign combinations.
 */

#ifndef BITFUSION_ARCH_BITBRICK_H
#define BITFUSION_ARCH_BITBRICK_H

#include <cstdint>

namespace bitfusion {

/** One 2-bit multiply issued to a BitBrick. */
struct BitBrickOp
{
    /** Low 2 bits of the first operand (raw encoding). */
    std::uint8_t x;
    /** Low 2 bits of the second operand (raw encoding). */
    std::uint8_t y;
    /** Whether x is the signed (most-significant) digit. */
    bool sx;
    /** Whether y is the signed (most-significant) digit. */
    bool sy;
    /**
     * Left-shift applied to the product by the surrounding shift-add
     * logic (0, 2, 4, ... depending on digit positions).
     */
    unsigned shift;
};

/**
 * The 2-bit multiply unit.
 *
 * Stateless; both entry points are static. The class exists to give
 * the microarchitectural unit a home and to count gate-level
 * resources for the area model.
 */
class BitBrick
{
  public:
    /**
     * Decode a raw 2-bit operand into its integer value.
     *
     * @param raw Low two bits of the operand encoding.
     * @param is_signed Whether the digit carries the operand's sign.
     * @return Value in [-2, 1] if signed, [0, 3] otherwise.
     */
    static int decode(std::uint8_t raw, bool is_signed);

    /**
     * Behavioural product of one BitBrick operation (before shift).
     *
     * @return 6-bit signed product in [-6, 9].
     */
    static int multiply(std::uint8_t x, std::uint8_t y, bool sx, bool sy);

    /**
     * Gate-level product: models the Fig. 5 HA/FA array over 3-bit
     * sign-extended operands with 6-bit two's-complement arithmetic.
     * Must equal multiply() for every input.
     */
    static int multiplyGateLevel(std::uint8_t x, std::uint8_t y, bool sx,
                                 bool sy);

    /** Product of an op including its shift amount. */
    static std::int64_t
    evaluate(const BitBrickOp &op)
    {
        // Shift in the unsigned domain: left-shifting a negative
        // product is undefined behaviour pre-C++20 (UBSan flags it);
        // the round-trip is bit-identical on two's complement.
        const auto product = static_cast<std::int64_t>(
            multiply(op.x, op.y, op.sx, op.sy));
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(product) << op.shift);
    }
};

} // namespace bitfusion

#endif // BITFUSION_ARCH_BITBRICK_H
