#include "src/arch/fusion_config.h"

#include "src/common/bitutils.h"
#include "src/common/logging.h"

namespace bitfusion {

namespace {

bool
supportedWidth(unsigned bits)
{
    return bits == 1 || bits == 2 || bits == 4 || bits == 8 || bits == 16;
}

/** Spatial share of an operand width (16-bit operands split 8/8). */
unsigned
spatialBits(unsigned bits)
{
    return bits > 8 ? 8 : bits;
}

} // namespace

void
FusionConfig::validate() const
{
    if (!supportedWidth(aBits) || !supportedWidth(wBits)) {
        BF_FATAL("unsupported fusion bitwidths ", aBits, "b/", wBits,
                 "b; supported widths are 1, 2, 4, 8, 16");
    }
    if (aBits == 1 && aSigned)
        BF_FATAL("1-bit (binary) activations must be unsigned (0, +1)");
    if (wBits == 1 && wSigned)
        BF_FATAL("1-bit (binary) weights must be unsigned (0, +1)");
}

unsigned
FusionConfig::aLanes() const
{
    return bitBrickLanes(spatialBits(aBits));
}

unsigned
FusionConfig::wLanes() const
{
    return bitBrickLanes(spatialBits(wBits));
}

unsigned
FusionConfig::bricksPerProduct() const
{
    return aLanes() * wLanes();
}

unsigned
FusionConfig::temporalPasses() const
{
    return (aBits > 8 ? 2 : 1) * (wBits > 8 ? 2 : 1);
}

unsigned
FusionConfig::fusedPEs(unsigned bricks) const
{
    BF_ASSERT(bricks >= bricksPerProduct(),
              "fusion unit of ", bricks, " BitBricks cannot form a ",
              toString(), " Fused-PE");
    return bricks / bricksPerProduct();
}

std::string
FusionConfig::toString() const
{
    return std::to_string(aBits) + "b/" + std::to_string(wBits) + "b";
}

} // namespace bitfusion
