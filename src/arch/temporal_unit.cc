#include "src/arch/temporal_unit.h"

#include "src/arch/decompose.h"
#include "src/common/bitutils.h"

namespace bitfusion {

void
TemporalUnit::step(const BitBrickOp &op)
{
    accumulator += BitBrick::evaluate(op);
    ++totalCycles;
}

unsigned
TemporalUnit::multiplyAccumulate(std::int64_t a, std::int64_t w,
                                 const FusionConfig &cfg)
{
    const auto ops = decomposeMultiply(a, w, cfg);
    for (const auto &op : ops)
        step(op);
    return static_cast<unsigned>(ops.size());
}

unsigned
TemporalUnit::cyclesPerProduct(const FusionConfig &cfg)
{
    return bitBrickLanes(cfg.aBits) * bitBrickLanes(cfg.wBits);
}

} // namespace bitfusion
