#include "src/arch/spatial_fusion.h"

#include "src/common/bitutils.h"
#include "src/common/logging.h"

namespace bitfusion {

SpatialFusionTree::SpatialFusionTree(unsigned bricks) : _bricks(bricks)
{
    BF_ASSERT(bricks >= 1 && isPowerOfTwo(bricks),
              "fusion tree must span a power-of-two BitBrick count");
}

unsigned
SpatialFusionTree::levels() const
{
    // log4: each level merges four children.
    unsigned n = _bricks;
    unsigned lv = 0;
    while (n > 1) {
        n = static_cast<unsigned>(divCeil(n, 4));
        ++lv;
    }
    return lv;
}

unsigned
SpatialFusionTree::adderCount() const
{
    // A 4-ary reduction over n leaves uses ceil(n/4) + ceil(n/16) +
    // ... adders.
    unsigned n = _bricks;
    unsigned adders = 0;
    while (n > 1) {
        n = static_cast<unsigned>(divCeil(n, 4));
        adders += n;
    }
    return adders;
}

unsigned
SpatialFusionTree::shifterCount() const
{
    return 3 * adderCount();
}

std::int64_t
SpatialFusionTree::combine(const std::vector<BitBrickOp> &ops) const
{
    BF_ASSERT(ops.size() <= _bricks,
              "tree over ", _bricks, " BitBricks given ", ops.size(),
              " operations");
    std::int64_t sum = 0;
    for (const auto &op : ops) {
        const int p = BitBrick::multiplyGateLevel(op.x, op.y, op.sx, op.sy);
        sum += static_cast<std::int64_t>(p) << op.shift;
    }
    return sum;
}

} // namespace bitfusion
