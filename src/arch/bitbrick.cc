#include "src/arch/bitbrick.h"

#include "src/common/bitutils.h"

namespace bitfusion {

namespace {

/**
 * Ripple-carry add of two 6-bit vectors using explicit full-adder
 * logic; models the HA/FA chains in Fig. 5. Result is modulo 2^6,
 * which is exactly the wrap-around behaviour of the 6-bit product
 * datapath.
 */
std::uint8_t
addBits6(std::uint8_t a, std::uint8_t b)
{
    std::uint8_t sum = 0;
    std::uint8_t carry = 0;
    for (unsigned i = 0; i < 6; ++i) {
        const std::uint8_t ai = (a >> i) & 1;
        const std::uint8_t bi = (b >> i) & 1;
        // Full adder: sum bit and carry-out.
        const std::uint8_t s = ai ^ bi ^ carry;
        carry = static_cast<std::uint8_t>((ai & bi) | (ai & carry) |
                                          (bi & carry));
        sum |= static_cast<std::uint8_t>(s << i);
    }
    return sum & 0x3f;
}

/** Two's complement negation on the 6-bit datapath. */
std::uint8_t
negateBits6(std::uint8_t a)
{
    return addBits6(static_cast<std::uint8_t>(~a & 0x3f), 1);
}

} // namespace

int
BitBrick::decode(std::uint8_t raw, bool is_signed)
{
    const std::uint8_t v = raw & 0x3;
    if (is_signed)
        return static_cast<int>(signExtend(v, 2));
    return v;
}

int
BitBrick::multiply(std::uint8_t x, std::uint8_t y, bool sx, bool sy)
{
    return decode(x, sx) * decode(y, sy);
}

int
BitBrick::multiplyGateLevel(std::uint8_t x, std::uint8_t y, bool sx, bool sy)
{
    // Sign/zero-extend the 2-bit operands to 3 bits (Fig. 5: x'3b,
    // y'3b), then extend further to the 6-bit product width so that
    // partial products can be added modulo 2^6.
    const std::uint8_t x3 =
        static_cast<std::uint8_t>((x & 0x3) | (sx && (x & 0x2) ? 0x4 : 0));
    const std::uint8_t y3 =
        static_cast<std::uint8_t>((y & 0x3) | (sy && (y & 0x2) ? 0x4 : 0));

    // 6-bit sign extension of the 3-bit multiplicand.
    std::uint8_t x6 = x3;
    if (x3 & 0x4)
        x6 |= 0x38;

    // Shift-and-add over the multiplier bits. The top (weight -4)
    // bit of the 3-bit signed multiplier contributes a subtraction.
    std::uint8_t acc = 0;
    for (unsigned j = 0; j < 3; ++j) {
        if (!((y3 >> j) & 1))
            continue;
        const std::uint8_t pp =
            static_cast<std::uint8_t>((x6 << j) & 0x3f);
        acc = addBits6(acc, j == 2 ? negateBits6(pp) : pp);
    }

    return static_cast<int>(signExtend(acc, 6));
}

} // namespace bitfusion
