/**
 * @file
 * Hardware cost library: area and power of the fusion logic.
 *
 * The paper implements Bit Fusion in Verilog and synthesizes it with
 * Synopsys Design Compiler in a commercial 45 nm library; its
 * published outputs (Fig. 10 and the Table III platform parameters)
 * are the only synthesis products the evaluation consumes. We encode
 * those outputs here as the technology library of the reproduction,
 * together with the 16 nm scaling rule from §V-A (0.86x voltage,
 * 0.42x capacitance, per the dark-silicon methodology [50]).
 */

#ifndef BITFUSION_ARCH_HW_MODEL_H
#define BITFUSION_ARCH_HW_MODEL_H

#include <cstdint>

namespace bitfusion {

/** Technology node of a modelled chip. */
enum class TechNode
{
    Nm45, ///< The paper's synthesis node.
    Nm16, ///< GPU-comparison node (scaled).
};

/** Area/power of one design point, split as in Fig. 10. */
struct UnitCost
{
    double bitBricksAreaUm2;
    double shiftAddAreaUm2;
    double registerAreaUm2;
    double bitBricksPowerNw;
    double shiftAddPowerNw;
    double registerPowerNw;

    double
    totalAreaUm2() const
    {
        return bitBricksAreaUm2 + shiftAddAreaUm2 + registerAreaUm2;
    }

    double
    totalPowerNw() const
    {
        return bitBricksPowerNw + shiftAddPowerNw + registerPowerNw;
    }
};

/**
 * Cost library for the fusion microarchitecture at 45 nm plus the
 * scaling helpers used by the GPU comparison.
 */
class HwModel
{
  public:
    /** Fig. 10: hybrid (spatio-temporal) Fusion Unit, 16 BitBricks. */
    static UnitCost fusionUnit45();

    /** Fig. 10: temporal design with 16 2-bit multipliers. */
    static UnitCost temporalDesign45();

    /**
     * Fusion Units that fit a compute-area budget, including the
     * systolic-array overhead (column accumulator, pooling and
     * activation units, control) amortized per unit.
     *
     * With the paper's 1.1 mm^2 Eyeriss-matched budget this yields
     * 512 units, the same count the paper uses per Stripes tile.
     */
    static unsigned fusionUnitsForBudget(double budget_mm2);

    /** Per-unit systolic overhead factor applied to Fig. 10 area. */
    static constexpr double systolicOverhead = 1.54;

    /** Energy scale factor for a node relative to 45 nm. */
    static double energyScale(TechNode node);

    /** Area scale factor for a node relative to 45 nm. */
    static double areaScale(TechNode node);

    /**
     * Dynamic energy of one BitBrick operation (one 2-bit multiply
     * feeding the shift-add tree), in picojoules at 45 nm.
     *
     * Derived from the Fig. 10 power split: the Fusion Unit spends
     * its dynamic power across 16 BitBricks plus the shared tree;
     * calibrated so an 8b/8b MAC costs ~0.94 pJ, in family with
     * published 45 nm 8-bit multiply-add energies.
     */
    static constexpr double bitBrickOpEnergyPj = 0.049;

    /**
     * Dynamic energy of one pass through the shift-add tree and
     * output register of a Fusion Unit, in picojoules at 45 nm.
     */
    static constexpr double fusionTreePassEnergyPj = 0.16;

    /**
     * Dynamic energy of one temporal-design step (2-bit multiply +
     * wide shifter + accumulator register), in picojoules at 45 nm.
     * The wide shifter/register make each step ~3.2x the power of
     * the fused datapath at the same throughput (Fig. 10).
     */
    static constexpr double temporalStepEnergyPj = 0.19;

    /**
     * Energy of one MAC at the given fusion configuration: the
     * BitBrick operations plus the amortized tree pass.
     */
    static double macEnergyPj(unsigned a_bits, unsigned w_bits,
                              TechNode node = TechNode::Nm45);
};

} // namespace bitfusion

#endif // BITFUSION_ARCH_HW_MODEL_H
