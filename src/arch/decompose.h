/**
 * @file
 * Decomposition of variable-bitwidth multiplies into BitBrick
 * operations (paper Figs. 6 and 7, Equations 1-3).
 *
 * An n-bit operand is split into 2-bit digits; every pair of digits
 * (one from each operand) becomes one BitBrickOp whose product is
 * shifted left by the sum of the digit positions. Only the top digit
 * of a signed operand is treated as signed; lower digits are
 * unsigned, exactly as in the paper's recursive formulation.
 */

#ifndef BITFUSION_ARCH_DECOMPOSE_H
#define BITFUSION_ARCH_DECOMPOSE_H

#include <cstdint>
#include <vector>

#include "src/arch/bitbrick.h"
#include "src/arch/fusion_config.h"

namespace bitfusion {

/**
 * Decompose a single multiply into BitBrick operations.
 *
 * @param a Activation value (must be representable in cfg.aBits with
 *          cfg.aSigned).
 * @param w Weight value (same contract for the weight side).
 * @param cfg Operand bitwidths and signedness.
 * @return One BitBrickOp per digit pair; the sum of their shifted
 *         products equals a*w.
 */
std::vector<BitBrickOp> decomposeMultiply(std::int64_t a, std::int64_t w,
                                          const FusionConfig &cfg);

/**
 * Evaluate a decomposition by summing shifted BitBrick products;
 * the reference for all fusion-correctness property tests.
 */
std::int64_t evaluateDecomposition(const std::vector<BitBrickOp> &ops);

/**
 * Check that a value is representable under (bits, is_signed);
 * used to validate operands at API boundaries.
 */
bool representable(std::int64_t v, unsigned bits, bool is_signed);

} // namespace bitfusion

#endif // BITFUSION_ARCH_DECOMPOSE_H
