/**
 * @file
 * Fusion Unit: 16 BitBricks plus the spatio-temporal fusion logic
 * (paper §III-C). Operands up to 8 bits are handled spatially in one
 * cycle; 16-bit operands are split into 8-bit halves processed over
 * 2 or 4 temporal passes sharing the same spatial tree.
 */

#ifndef BITFUSION_ARCH_FUSION_UNIT_H
#define BITFUSION_ARCH_FUSION_UNIT_H

#include <cstdint>
#include <utility>
#include <vector>

#include "src/arch/fusion_config.h"
#include "src/arch/spatial_fusion.h"

namespace bitfusion {

/** Execution statistics accumulated by a Fusion Unit. */
struct FusionUnitStats
{
    /** Cycles consumed. */
    std::uint64_t cycles = 0;
    /** BitBrick operations issued. */
    std::uint64_t bitBrickOps = 0;
    /** Variable-bitwidth products completed. */
    std::uint64_t products = 0;
};

/**
 * One Fusion Unit: a 4x4 physical grouping of BitBricks that fuses
 * at run time into 16/bricksPerProduct Fused-PEs.
 *
 * The functional model accepts, per invocation, one operand pair per
 * Fused-PE (all PEs share the configuration set by configure()), and
 * returns the sum of their products -- the Fusion Unit's contribution
 * to the column partial sum, matching Fig. 2(a).
 */
class FusionUnit
{
  public:
    /** Construct a unit with @p bricks BitBricks (default 16). */
    explicit FusionUnit(unsigned bricks = 16);

    /** Set the fusion configuration (the setup instruction). */
    void configure(const FusionConfig &cfg);

    /** Current configuration. */
    const FusionConfig &config() const { return cfg; }

    /** Fused-PEs offered under the current configuration. */
    unsigned fusedPEs() const { return cfg.fusedPEs(brickCount); }

    /** Number of physical BitBricks. */
    unsigned bricks() const { return brickCount; }

    /**
     * Execute one fused multiply-accumulate step: each Fused-PE
     * multiplies one (activation, weight) pair; products are summed
     * together (and into @p carry_in). At most fusedPEs() pairs.
     *
     * @param pairs Operand pairs, one per active Fused-PE.
     * @param carry_in Incoming partial sum from the neighbouring
     *                 Fusion Unit.
     * @return Outgoing partial sum.
     */
    std::int64_t multiplyAccumulate(
        const std::vector<std::pair<std::int64_t, std::int64_t>> &pairs,
        std::int64_t carry_in = 0);

    /** Execution statistics since construction. */
    const FusionUnitStats &stats() const { return _stats; }

  private:
    unsigned brickCount;
    FusionConfig cfg;
    SpatialFusionTree tree;
    FusionUnitStats _stats;
};

} // namespace bitfusion

#endif // BITFUSION_ARCH_FUSION_UNIT_H
