#include "src/arch/decompose.h"

#include "src/common/bitutils.h"
#include "src/common/logging.h"

namespace bitfusion {

namespace {

/**
 * Split a value into 2-bit digits (little-endian). Digit count is
 * bitBrickLanes(bits); for 1-bit operands the single digit is just
 * the bit itself.
 */
std::vector<std::uint8_t>
toDigits(std::int64_t v, unsigned bits)
{
    const unsigned lanes = bitBrickLanes(bits);
    const std::uint64_t raw =
        static_cast<std::uint64_t>(v) & lowMask(bits);
    std::vector<std::uint8_t> digits(lanes);
    for (unsigned i = 0; i < lanes; ++i)
        digits[i] = static_cast<std::uint8_t>((raw >> (2 * i)) & 0x3);
    return digits;
}

} // namespace

bool
representable(std::int64_t v, unsigned bits, bool is_signed)
{
    if (is_signed)
        return v >= signedMin(bits) && v <= signedMax(bits);
    return v >= 0 && v <= unsignedMax(bits);
}

std::vector<BitBrickOp>
decomposeMultiply(std::int64_t a, std::int64_t w, const FusionConfig &cfg)
{
    cfg.validate();
    BF_ASSERT(representable(a, cfg.aBits, cfg.aSigned),
              "activation ", a, " not representable in ", cfg.aBits,
              cfg.aSigned ? "b signed" : "b unsigned");
    BF_ASSERT(representable(w, cfg.wBits, cfg.wSigned),
              "weight ", w, " not representable in ", cfg.wBits,
              cfg.wSigned ? "b signed" : "b unsigned");

    const auto a_digits = toDigits(a, cfg.aBits);
    const auto w_digits = toDigits(w, cfg.wBits);

    // A 1-bit operand occupies a full 2-bit lane with a zero top bit,
    // so its single digit is never sign-bearing. For wider operands
    // only the top digit carries the sign.
    const bool a_top_signed = cfg.aSigned && cfg.aBits >= 2;
    const bool w_top_signed = cfg.wSigned && cfg.wBits >= 2;

    std::vector<BitBrickOp> ops;
    ops.reserve(a_digits.size() * w_digits.size());
    for (unsigned i = 0; i < a_digits.size(); ++i) {
        for (unsigned j = 0; j < w_digits.size(); ++j) {
            BitBrickOp op;
            op.x = a_digits[i];
            op.y = w_digits[j];
            op.sx = a_top_signed && (i + 1 == a_digits.size());
            op.sy = w_top_signed && (j + 1 == w_digits.size());
            op.shift = 2 * (i + j);
            ops.push_back(op);
        }
    }
    return ops;
}

std::int64_t
evaluateDecomposition(const std::vector<BitBrickOp> &ops)
{
    std::int64_t sum = 0;
    for (const auto &op : ops)
        sum += BitBrick::evaluate(op);
    return sum;
}

} // namespace bitfusion
