/**
 * @file
 * Temporal design: the bit-serial-style reference point from paper
 * Fig. 8 used in the Fig. 10 area/power comparison and our fusion
 * ablation.
 *
 * A temporal unit owns one BitBrick, one shifter sized for the
 * maximum supported bitwidth, and one accumulator register. It
 * executes one 2-bit partial product per cycle, shifting and
 * accumulating into the register, so an a-bit x w-bit multiply takes
 * aLanes * wLanes cycles.
 */

#ifndef BITFUSION_ARCH_TEMPORAL_UNIT_H
#define BITFUSION_ARCH_TEMPORAL_UNIT_H

#include <cstdint>
#include <vector>

#include "src/arch/bitbrick.h"
#include "src/arch/fusion_config.h"

namespace bitfusion {

/** One temporal (serial shift-accumulate) multiply-add unit. */
class TemporalUnit
{
  public:
    /** Reset the accumulator register to zero. */
    void reset() { accumulator = 0; totalCycles = 0; }

    /**
     * Execute one decomposed operation (one cycle): multiply in the
     * BitBrick, shift, accumulate.
     */
    void step(const BitBrickOp &op);

    /**
     * Execute a full variable-bitwidth multiply-accumulate: the
     * product of a and w under @p cfg is added to the accumulator,
     * one BitBrick operation per cycle.
     *
     * @return Cycles consumed.
     */
    unsigned multiplyAccumulate(std::int64_t a, std::int64_t w,
                                const FusionConfig &cfg);

    /** Current accumulator value. */
    std::int64_t value() const { return accumulator; }

    /** Total cycles consumed since reset(). */
    std::uint64_t cycles() const { return totalCycles; }

    /** Cycles one (a,w) product costs under @p cfg. */
    static unsigned cyclesPerProduct(const FusionConfig &cfg);

  private:
    std::int64_t accumulator = 0;
    std::uint64_t totalCycles = 0;
};

} // namespace bitfusion

#endif // BITFUSION_ARCH_TEMPORAL_UNIT_H
