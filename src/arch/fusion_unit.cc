#include "src/arch/fusion_unit.h"

#include "src/arch/decompose.h"
#include "src/common/logging.h"

namespace bitfusion {

FusionUnit::FusionUnit(unsigned bricks)
    : brickCount(bricks), tree(bricks)
{
    BF_ASSERT(bricks == 16 || bricks == 4 || bricks == 64,
              "fusion units are built from 4, 16, or 64 BitBricks");
}

void
FusionUnit::configure(const FusionConfig &new_cfg)
{
    new_cfg.validate();
    BF_ASSERT(new_cfg.bricksPerProduct() <= brickCount,
              "configuration ", new_cfg.toString(),
              " needs more BitBricks than this unit has");
    cfg = new_cfg;
}

std::int64_t
FusionUnit::multiplyAccumulate(
    const std::vector<std::pair<std::int64_t, std::int64_t>> &pairs,
    std::int64_t carry_in)
{
    BF_ASSERT(pairs.size() <= fusedPEs(),
              "issued ", pairs.size(), " pairs to ", fusedPEs(),
              " Fused-PEs");

    // Gather the decomposed operations of every Fused-PE. With the
    // hybrid spatio-temporal scheme each temporal pass fills the
    // spatial tree once; temporalPasses() passes complete the full
    // product set.
    std::vector<BitBrickOp> all_ops;
    for (const auto &[a, w] : pairs) {
        const auto ops = decomposeMultiply(a, w, cfg);
        all_ops.insert(all_ops.end(), ops.begin(), ops.end());
    }

    const unsigned passes = cfg.temporalPasses();
    BF_ASSERT(all_ops.size() <= static_cast<std::size_t>(brickCount) *
                  passes,
              "decomposition exceeds spatio-temporal capacity");

    // Feed the spatial tree one pass worth of operations at a time;
    // the per-pass results accumulate in the unit's output register.
    std::int64_t sum = 0;
    std::size_t issued = 0;
    unsigned used_passes = 0;
    while (issued < all_ops.size()) {
        const std::size_t n =
            std::min<std::size_t>(brickCount, all_ops.size() - issued);
        std::vector<BitBrickOp> pass(all_ops.begin() + issued,
                                     all_ops.begin() + issued + n);
        sum += tree.combine(pass);
        issued += n;
        ++used_passes;
    }
    // An idle unit (no pairs) still occupies the cycle.
    used_passes = std::max(used_passes, 1u);
    BF_ASSERT(used_passes <= passes,
              "used ", used_passes, " passes, configuration allows ",
              passes);

    _stats.cycles += passes;
    _stats.bitBrickOps += all_ops.size();
    _stats.products += pairs.size();

    return carry_in + sum;
}

} // namespace bitfusion
