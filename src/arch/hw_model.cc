#include "src/arch/hw_model.h"

#include <cmath>

#include "src/common/bitutils.h"
#include "src/common/logging.h"

namespace bitfusion {

UnitCost
HwModel::fusionUnit45()
{
    // Paper Fig. 10, "Fusion Unit" row (45 nm commercial library).
    return UnitCost{369.0, 934.0, 91.0, 46.0, 424.0, 69.0};
}

UnitCost
HwModel::temporalDesign45()
{
    // Paper Fig. 10, "Temporal" row.
    return UnitCost{463.0, 2989.0, 1454.0, 60.0, 550.0, 1103.0};
}

unsigned
HwModel::fusionUnitsForBudget(double budget_mm2)
{
    BF_ASSERT(budget_mm2 > 0.0);
    const double unit_um2 = fusionUnit45().totalAreaUm2() *
                            systolicOverhead;
    const double budget_um2 = budget_mm2 * 1e6;
    const auto units = static_cast<unsigned>(budget_um2 / unit_um2);
    // Round down to a power of two so the array keeps power-of-two
    // rows/columns (the paper's configurations are 512 and 4096).
    unsigned pow2 = 1;
    while (pow2 * 2 <= units)
        pow2 *= 2;
    return pow2;
}

double
HwModel::energyScale(TechNode node)
{
    switch (node) {
      case TechNode::Nm45:
        return 1.0;
      case TechNode::Nm16:
        // E ~ C * V^2: 0.42 capacitance x 0.86^2 voltage (paper §V-A).
        return 0.42 * 0.86 * 0.86;
    }
    BF_PANIC("unknown tech node");
}

double
HwModel::areaScale(TechNode node)
{
    switch (node) {
      case TechNode::Nm45:
        return 1.0;
      case TechNode::Nm16:
        return (16.0 / 45.0) * (16.0 / 45.0);
    }
    BF_PANIC("unknown tech node");
}

double
HwModel::macEnergyPj(unsigned a_bits, unsigned w_bits, TechNode node)
{
    const double bricks = static_cast<double>(bitBrickLanes(a_bits)) *
                          static_cast<double>(bitBrickLanes(w_bits));
    // One tree pass (16 BitBrick slots) is shared by all Fused-PEs
    // active in that cycle, so each MAC pays for the fraction of the
    // tree its bricks occupy; 16-bit MACs span multiple passes.
    const double e45 = bricks * (bitBrickOpEnergyPj +
                                 fusionTreePassEnergyPj / 16.0);
    return e45 * energyScale(node);
}

} // namespace bitfusion
