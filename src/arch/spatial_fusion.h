/**
 * @file
 * Spatial fusion: the single-cycle shift-add tree that combines the
 * decomposed products of multiple BitBricks (paper Fig. 9).
 */

#ifndef BITFUSION_ARCH_SPATIAL_FUSION_H
#define BITFUSION_ARCH_SPATIAL_FUSION_H

#include <cstdint>
#include <vector>

#include "src/arch/bitbrick.h"

namespace bitfusion {

/**
 * Combinational shift-add tree over a group of BitBricks.
 *
 * Each level of the physical tree holds three shift units and a
 * four-input adder (paper §III-C); a tree over n BitBricks has
 * log4(n) levels. Functionally the tree computes the sum of the
 * shifted BitBrick products in one cycle.
 */
class SpatialFusionTree
{
  public:
    /** Build a tree spanning @p bricks BitBricks (power of 4). */
    explicit SpatialFusionTree(unsigned bricks);

    /** Number of BitBricks this tree spans. */
    unsigned bricks() const { return _bricks; }

    /** Tree depth: log4(bricks). */
    unsigned levels() const;

    /** Total four-input adders in the tree. */
    unsigned adderCount() const;

    /** Total shift units in the tree (three per adder). */
    unsigned shifterCount() const;

    /**
     * Single-cycle combine: sum of shifted products of at most
     * bricks() operations. Uses the gate-level BitBrick product so
     * the whole path is modelled at the bit level.
     */
    std::int64_t combine(const std::vector<BitBrickOp> &ops) const;

  private:
    unsigned _bricks;
};

} // namespace bitfusion

#endif // BITFUSION_ARCH_SPATIAL_FUSION_H
