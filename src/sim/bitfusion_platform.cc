#include "src/sim/bitfusion_platform.h"

#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/sim/simulator.h"

namespace bitfusion {

namespace {

PlatformConfig::Ops<AcceleratorConfig>
bitfusionOps()
{
    PlatformConfig::Ops<AcceleratorConfig> ops;
    ops.batch = [](const AcceleratorConfig &c) { return c.batch; };
    ops.equals = [](const AcceleratorConfig &a,
                    const AcceleratorConfig &b) {
        return a.name == b.name && a.rows == b.rows &&
               a.cols == b.cols &&
               a.bricksPerUnit == b.bricksPerUnit &&
               a.tiles == b.tiles && a.ibufBits == b.ibufBits &&
               a.obufBits == b.obufBits && a.wbufBits == b.wbufBits &&
               a.bwBitsPerCycle == b.bwBitsPerCycle &&
               a.freqMHz == b.freqMHz && a.batch == b.batch &&
               a.tech == b.tech && a.layerFusion == b.layerFusion &&
               a.loopOrdering == b.loopOrdering;
    };
    ops.describe = [](const AcceleratorConfig &c) {
        return c.name + ": " + std::to_string(c.fusionUnits()) +
               " fusion units";
    };
    // Matches Simulator::compileKey(), which forwards to the config.
    ops.compileKey = [](const AcceleratorConfig &c) {
        return c.compileKey();
    };
    ops.validate = [](const AcceleratorConfig &c) { c.validate(); };
    return ops;
}

PlatformSpec
parseBitfusion(const std::string &variant)
{
    const std::string v = canonicalVariant(variant);
    if (v.empty() || v == "45nm" || v == "eyerissmatched")
        return bitfusionPlatform(AcceleratorConfig::eyerissMatched45());
    if (v == "16nm" || v == "gpuscale")
        return bitfusionPlatform(AcceleratorConfig::gpuScale16());
    if (v == "stripestile")
        return bitfusionPlatform(
            AcceleratorConfig::stripesTileMatched45());
    BF_FATAL("unknown bitfusion variant '", variant,
             "' (try 45nm, 16nm, stripes-tile)");
}

} // namespace

PlatformSpec
bitfusionPlatform(AcceleratorConfig cfg, std::string name)
{
    PlatformSpec spec;
    spec.name = name.empty() ? cfg.name : std::move(name);
    spec.kind = "bitfusion";
    spec.config = PlatformConfig::wrap(std::move(cfg), bitfusionOps());
    spec.runsQuantized = true;
    return spec;
}

void
registerBitFusionPlatform(PlatformRegistry &r)
{
    r.add({"bitfusion", "45nm (default) | 16nm | stripes-tile",
           "the fusible bit-brick systolic array (paper design)",
           parseBitfusion,
           [](const PlatformSpec &spec) -> std::unique_ptr<Platform> {
               AcceleratorConfig cfg =
                   spec.config.as<AcceleratorConfig>();
               if (spec.batch != 0)
                   cfg.batch = spec.batch;
               return std::make_unique<Simulator>(cfg);
           }});
}

} // namespace bitfusion
