/**
 * @file
 * Accelerator configuration: array geometry, scratchpad capacities,
 * off-chip bandwidth, frequency, batch, technology node, and the
 * code-optimization switches (paper §IV-B) used for ablations.
 */

#ifndef BITFUSION_SIM_CONFIG_H
#define BITFUSION_SIM_CONFIG_H

#include <cstdint>
#include <string>

#include "src/arch/hw_model.h"

namespace bitfusion {

/** Full configuration of one Bit Fusion accelerator instance. */
struct AcceleratorConfig
{
    std::string name = "bitfusion";

    /** Systolic array rows (reduction dimension). */
    unsigned rows = 8;
    /** Systolic array columns (output dimension). */
    unsigned cols = 64;
    /** BitBricks per Fusion Unit. */
    unsigned bricksPerUnit = 16;
    /**
     * Data-parallel tiles: identical arrays that split the batch and
     * share the DRAM interface (weights broadcast). The 16 nm
     * GPU-comparison configuration uses 8 tiles of 512 Fusion Units.
     */
    unsigned tiles = 1;

    /** Input buffer capacity in bits (total). */
    std::uint64_t ibufBits = 32ULL * 1024 * 8;
    /** Output buffer capacity in bits (total). */
    std::uint64_t obufBits = 16ULL * 1024 * 8;
    /** Weight buffer capacity in bits (total across Fusion Units). */
    std::uint64_t wbufBits = 64ULL * 1024 * 8;

    /** Off-chip bandwidth in bits per cycle (paper default 128). */
    std::uint64_t bwBitsPerCycle = 128;
    /** Clock frequency in MHz (matched to Eyeriss: 500). */
    double freqMHz = 500.0;
    /** Inference batch size (paper default 16). */
    unsigned batch = 16;
    /** Technology node. */
    TechNode tech = TechNode::Nm45;

    /** Enable the layer-fusion code optimization. */
    bool layerFusion = true;
    /** Enable the loop-ordering code optimization. */
    bool loopOrdering = true;

    /** Total Fusion Units across all tiles. */
    unsigned fusionUnits() const { return rows * cols * tiles; }

    /**
     * Total on-chip SRAM in bits across tiles (buffer capacities
     * are per tile).
     */
    std::uint64_t
    onChipBits() const
    {
        return (ibufBits + obufBits + wbufBits) * tiles;
    }

    /** Seconds per cycle. */
    double
    cycleSeconds() const
    {
        return 1.0 / (freqMHz * 1e6);
    }

    /** Fatal-checks the configuration. */
    void validate() const;

    /**
     * Identity string over every field the Compiler reads:
     * scratchpad capacities, batch, and the code-optimization
     * switches (tiling is buffer-driven; array geometry, bandwidth,
     * and frequency only matter at simulation time). Two
     * configurations with equal keys produce identical
     * CompiledNetworks for any network, so the sweep runner's
     * compiled-network cache shares across geometry, bandwidth, and
     * frequency sweeps. Extend this when the Compiler starts
     * consuming a new field.
     */
    std::string compileKey() const;

    /**
     * The Eyeriss-matched 45 nm configuration of §V-A: 1.1 mm^2 of
     * compute (512 Fusion Units as 16x32), 112 KB of SRAM, 500 MHz,
     * 128 bits/cycle, batch 16.
     */
    static AcceleratorConfig eyerissMatched45();

    /**
     * The Stripes-comparison configuration: identical fabric (the
     * paper replaces each Stripes tile's 4096 SIPs with 512 Fusion
     * Units in the same 1.1 mm^2), same on-chip memory.
     */
    static AcceleratorConfig stripesTileMatched45();

    /**
     * The 16 nm GPU-comparison configuration of §V-A: 4096 Fusion
     * Units, 896 KB SRAM, still 500 MHz; bandwidth scaled with the
     * fabric (GDDR-class).
     */
    static AcceleratorConfig gpuScale16();
};

} // namespace bitfusion

#endif // BITFUSION_SIM_CONFIG_H
