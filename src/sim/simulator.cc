#include "src/sim/simulator.h"

#include <algorithm>

#include "src/common/bitutils.h"
#include "src/common/logging.h"
#include "src/compiler/codegen.h"
#include "src/compiler/tiling.h"
#include "src/energy/energy_model.h"
#include "src/isa/plan_serde.h"

namespace bitfusion {

namespace {

/** Artifact wrapper around the compiler output. */
struct CompiledNetworkArtifact : PlatformArtifact
{
    explicit CompiledNetworkArtifact(CompiledNetwork net)
        : net(std::move(net))
    {
    }
    CompiledNetwork net;
};

} // namespace

Simulator::Simulator(const AcceleratorConfig &cfg)
    : cfg(cfg), array(this->cfg)
{
    this->cfg.validate();
}

PlatformInfo
Simulator::describe() const
{
    PlatformInfo info;
    info.name = cfg.name;
    info.kind = "bitfusion";
    info.compute = std::to_string(cfg.fusionUnits()) + " FUs (" +
                   std::to_string(cfg.fusionUnits() * cfg.bricksPerUnit) +
                   " BitBricks)";
    info.freqMHz = cfg.freqMHz;
    info.onChipBits = cfg.onChipBits();
    info.bwBitsPerCycle = cfg.bwBitsPerCycle;
    info.batch = cfg.batch;
    return info;
}

std::string
Simulator::compileKey() const
{
    return cfg.compileKey();
}

PlatformArtifactPtr
Simulator::compile(const Network &net) const
{
    return std::make_shared<CompiledNetworkArtifact>(
        Compiler(cfg).compile(net));
}

std::string
Simulator::serializeArtifact(const PlatformArtifact &artifact) const
{
    const auto *compiled =
        dynamic_cast<const CompiledNetworkArtifact *>(&artifact);
    BF_ASSERT(compiled != nullptr, "artifact is not a compiled network");
    return serializeCompiledNetwork(compiled->net);
}

PlatformArtifactPtr
Simulator::deserializeArtifact(const std::string &bytes) const
{
    return std::make_shared<CompiledNetworkArtifact>(
        deserializeCompiledNetwork(bytes));
}

LayerStats
Simulator::runMacLayer(const LayerSchedule &sched,
                       LayerPhases &phases) const
{
    const Layer &layer = sched.layer;
    const FusionConfig &bits = layer.bits;
    LayerStats st;
    st.name = layer.name;
    st.config = bits.toString();

    const std::uint64_t batch = cfg.batch;
    const std::uint64_t n_total = sched.n * batch;
    st.macs = layer.macsPerSample() * batch;

    // --- Compute timing --------------------------------------
    // Data-parallel tiles split the batch; each tile runs the same
    // per-layer mapping over its share of the samples.
    const std::uint64_t n_per_tile =
        sched.n * divCeil(batch, cfg.tiles);
    const SystolicTiming timing =
        array.map(sched.m, sched.k, n_per_tile, sched.tile.nt, bits);
    st.computeCycles = timing.cycles;
    st.utilization = timing.utilization;

    // --- Off-chip traffic -------------------------------------
    // Weights are shared across the batch; activations scale with it.
    const std::uint64_t w_bits = layer.weightBits();
    const std::uint64_t i_bits = layer.inputCount() * bits.aBits * batch;
    const std::uint64_t o_bits = sched.outElems * sched.outBits * batch;
    st.dramLoadBits =
        Tiler::trafficBits(sched.order, sched.tile, sched.m, sched.k,
                           n_total, w_bits, i_bits, 0);
    st.dramStoreBits = o_bits;
    st.memCycles =
        divCeil(st.dramLoadBits + st.dramStoreBits, cfg.bwBitsPerCycle);

    // --- On-chip traffic --------------------------------------
    // IBUF: each streamed input element feeds all columns at once
    // (one read per row per cycle); re-streamed per output pass.
    st.sramBits += divCeil(st.macs * bits.aBits,
                           static_cast<std::uint64_t>(cfg.cols) *
                               bits.fusedPEs(cfg.bricksPerUnit));
    // WBUF: every Fused-PE reads its weight each cycle; this is
    // where narrow weights directly cut access energy (paper §II-C).
    st.sramBits += st.macs * bits.wBits;
    // OBUF: accumulated partial written and drained once per output.
    st.sramBits += 2 * sched.m * n_total * 32;

    // Phases: off-chip transfers double-buffer against compute at
    // streaming-tile granularity; the systolic array pays one
    // rows + cols pipeline fill.
    phases = LayerPhases::fromBits(st.computeCycles, st.dramLoadBits,
                                   st.dramStoreBits, cfg.bwBitsPerCycle,
                                   cfg.rows + cfg.cols);

    EnergyModel::applyBitFusion(st, bits.aBits, bits.wBits,
                                cfg.onChipBits(), cfg.tech);
    return st;
}

LayerStats
Simulator::runAuxLayer(const LayerSchedule &sched,
                       LayerPhases &phases) const
{
    const Layer &layer = sched.layer;
    LayerStats st;
    st.name = layer.name;
    st.config = toString(layer.kind);

    const std::uint64_t batch = cfg.batch;
    const std::uint64_t ops = layer.auxOpsPerSample() * batch;
    // One pooling and one activation unit per column (Fig. 3).
    const std::uint64_t auxUnits =
        static_cast<std::uint64_t>(cfg.cols) * cfg.tiles;
    st.computeCycles = divCeil(ops, auxUnits);

    const std::uint64_t in_bits =
        layer.inputCount() * layer.bits.aBits * batch;
    const std::uint64_t out_bits =
        sched.outElems * sched.outBits * batch;
    st.dramLoadBits = in_bits;
    st.dramStoreBits = out_bits;
    st.memCycles =
        divCeil(st.dramLoadBits + st.dramStoreBits, cfg.bwBitsPerCycle);
    st.sramBits = in_bits + out_bits;
    // Aux units process one op per unit per cycle; utilization is
    // the issued ops over that capacity during the busy cycles.
    st.utilization =
        st.computeCycles == 0
            ? 0.0
            : static_cast<double>(ops) /
                  static_cast<double>(st.computeCycles * auxUnits);

    phases = LayerPhases::fromBits(st.computeCycles, st.dramLoadBits,
                                   st.dramStoreBits, cfg.bwBitsPerCycle,
                                   0);

    EnergyModel::applyBitFusion(st, layer.bits.aBits, layer.bits.wBits,
                                cfg.onChipBits(), cfg.tech);
    return st;
}

LayerStats
Simulator::statsFor(const LayerSchedule &sched, LayerPhases &phases) const
{
    return sched.usesMacArray ? runMacLayer(sched, phases)
                              : runAuxLayer(sched, phases);
}

LayerStats
Simulator::runSchedule(const LayerSchedule &sched) const
{
    LayerPhases phases;
    LayerStats st = statsFor(sched, phases);
    st.cycles =
        static_cast<std::uint64_t>(LayerWalk::simpleUnits(phases));
    return st;
}

RunStats
Simulator::run(const CompiledNetwork &net, TimingModel timing) const
{
    RunStats rs;
    rs.platform = cfg.name;
    rs.network = net.networkName;
    rs.batch = cfg.batch;
    rs.freqMHz = cfg.freqMHz;

    // Layers fused into a preceding MAC block were absorbed by the
    // compiler and do not appear as separate schedules.
    LayerWalk walk(timing);
    for (const auto &sched : net.schedules) {
        LayerPhases phases;
        LayerStats st = statsFor(sched, phases);
        walk.add(std::move(st), phases);
    }
    walk.finish(rs);
    return rs;
}

RunStats
Simulator::run(const Network &net, const RunOptions &opts) const
{
    if (opts.artifact != nullptr) {
        const auto *compiled =
            dynamic_cast<const CompiledNetworkArtifact *>(opts.artifact);
        BF_ASSERT(compiled != nullptr,
                  "artifact is not a compiled network");
        return run(compiled->net, opts.timing);
    }
    return run(Compiler(cfg).compile(net), opts.timing);
}

} // namespace bitfusion
