#include "src/sim/simulator.h"

#include <algorithm>

#include "src/common/bitutils.h"
#include "src/common/logging.h"
#include "src/compiler/tiling.h"
#include "src/energy/energy_model.h"

namespace bitfusion {

Simulator::Simulator(const AcceleratorConfig &cfg)
    : cfg(cfg), array(this->cfg)
{
    this->cfg.validate();
}

LayerStats
Simulator::runMacLayer(const LayerSchedule &sched) const
{
    const Layer &layer = sched.layer;
    const FusionConfig &bits = layer.bits;
    LayerStats st;
    st.name = layer.name;
    st.config = bits.toString();

    const std::uint64_t batch = cfg.batch;
    const std::uint64_t n_total = sched.n * batch;
    st.macs = layer.macsPerSample() * batch;

    // --- Compute timing --------------------------------------
    // Data-parallel tiles split the batch; each tile runs the same
    // per-layer mapping over its share of the samples.
    const std::uint64_t n_per_tile =
        sched.n * divCeil(batch, cfg.tiles);
    const SystolicTiming timing =
        array.map(sched.m, sched.k, n_per_tile, sched.tile.nt, bits);
    st.computeCycles = timing.cycles;
    st.utilization = timing.utilization;

    // --- Off-chip traffic -------------------------------------
    // Weights are shared across the batch; activations scale with it.
    const std::uint64_t w_bits = layer.weightBits();
    const std::uint64_t i_bits = layer.inputCount() * bits.aBits * batch;
    const std::uint64_t o_bits = sched.outElems * sched.outBits * batch;
    st.dramLoadBits =
        Tiler::trafficBits(sched.order, sched.tile, sched.m, sched.k,
                           n_total, w_bits, i_bits, 0);
    st.dramStoreBits = o_bits;
    st.memCycles =
        divCeil(st.dramLoadBits + st.dramStoreBits, cfg.bwBitsPerCycle);

    // --- On-chip traffic --------------------------------------
    // IBUF: each streamed input element feeds all columns at once
    // (one read per row per cycle); re-streamed per output pass.
    st.sramBits += divCeil(st.macs * bits.aBits,
                           static_cast<std::uint64_t>(cfg.cols) *
                               bits.fusedPEs(cfg.bricksPerUnit));
    // WBUF: every Fused-PE reads its weight each cycle; this is
    // where narrow weights directly cut access energy (paper §II-C).
    st.sramBits += st.macs * bits.wBits;
    // OBUF: accumulated partial written and drained once per output.
    st.sramBits += 2 * sched.m * n_total * 32;

    // Double buffering overlaps transfers with compute.
    st.cycles = std::max(st.computeCycles, st.memCycles) +
                cfg.rows + cfg.cols;

    EnergyModel::applyBitFusion(st, bits.aBits, bits.wBits,
                                cfg.onChipBits(), cfg.tech);
    return st;
}

LayerStats
Simulator::runAuxLayer(const LayerSchedule &sched) const
{
    const Layer &layer = sched.layer;
    LayerStats st;
    st.name = layer.name;
    st.config = toString(layer.kind);

    const std::uint64_t batch = cfg.batch;
    const std::uint64_t ops = layer.auxOpsPerSample() * batch;
    // One pooling and one activation unit per column (Fig. 3).
    st.computeCycles =
        divCeil(ops, static_cast<std::uint64_t>(cfg.cols) * cfg.tiles);

    const std::uint64_t in_bits =
        layer.inputCount() * layer.bits.aBits * batch;
    const std::uint64_t out_bits =
        sched.outElems * sched.outBits * batch;
    st.dramLoadBits = in_bits;
    st.dramStoreBits = out_bits;
    st.memCycles =
        divCeil(st.dramLoadBits + st.dramStoreBits, cfg.bwBitsPerCycle);
    st.sramBits = in_bits + out_bits;
    st.cycles = std::max(st.computeCycles, st.memCycles);
    st.utilization = 0.0;

    EnergyModel::applyBitFusion(st, layer.bits.aBits, layer.bits.wBits,
                                cfg.onChipBits(), cfg.tech);
    return st;
}

LayerStats
Simulator::runSchedule(const LayerSchedule &sched) const
{
    return sched.usesMacArray ? runMacLayer(sched) : runAuxLayer(sched);
}

RunStats
Simulator::run(const CompiledNetwork &net) const
{
    RunStats rs;
    rs.platform = cfg.name;
    rs.network = net.networkName;
    rs.batch = cfg.batch;
    rs.freqMHz = cfg.freqMHz;

    // Layers fused into a preceding MAC block were absorbed by the
    // compiler and do not appear as separate schedules.
    for (const auto &sched : net.schedules) {
        LayerStats st = runSchedule(sched);
        rs.totalCycles += st.cycles;
        rs.layers.push_back(std::move(st));
    }
    return rs;
}

} // namespace bitfusion
