#include "src/sim/systolic.h"

#include "src/common/bitutils.h"
#include "src/common/logging.h"

namespace bitfusion {

std::uint64_t
SystolicArray::peakMacsPerCycle(const FusionConfig &bits) const
{
    const std::uint64_t pes =
        static_cast<std::uint64_t>(bits.fusedPEs(cfg.bricksPerUnit));
    return static_cast<std::uint64_t>(cfg.rows) * cfg.cols * pes /
           bits.temporalPasses();
}

SystolicTiming
SystolicArray::map(std::uint64_t m, std::uint64_t k,
                   std::uint64_t n_total, std::uint64_t nt,
                   const FusionConfig &bits) const
{
    BF_ASSERT(m > 0 && k > 0 && n_total > 0, "degenerate GEMM");
    SystolicTiming t;
    const unsigned pes = bits.fusedPEs(cfg.bricksPerUnit);
    t.temporal = bits.temporalPasses();
    t.mPasses = divCeil(m, static_cast<std::uint64_t>(cfg.cols) * pes);
    t.kPasses = divCeil(k, cfg.rows);

    // Each (m-pass, k-pass) streams every N position through the
    // array. Weights feed from the per-unit WBUFs every cycle, so
    // consecutive k-passes stream back to back; the pipeline only
    // drains when the column->output mapping changes, i.e. once per
    // m-pass.
    (void)nt;
    t.fillCycles = t.mPasses * (cfg.rows + cfg.cols);
    const std::uint64_t stream =
        t.mPasses * t.kPasses * n_total * t.temporal;
    t.cycles = stream + t.fillCycles;

    const double ideal =
        static_cast<double>(m) * k * n_total /
        static_cast<double>(peakMacsPerCycle(bits));
    t.utilization = ideal / static_cast<double>(t.cycles);
    return t;
}

} // namespace bitfusion
