/**
 * @file
 * The Bit Fusion performance/energy simulator.
 *
 * Consumes compiled networks (Fusion-ISA blocks plus schedules) and
 * produces per-layer cycle counts and buffer/DRAM access counts,
 * mirroring the methodology of §V-A: compute timing from the
 * systolic mapping, off-chip transfers double-buffered against
 * compute and bounded by the configured bits/cycle.
 */

#ifndef BITFUSION_SIM_SIMULATOR_H
#define BITFUSION_SIM_SIMULATOR_H

#include "src/compiler/schedule.h"
#include "src/core/platform.h"
#include "src/core/stats.h"
#include "src/sim/config.h"
#include "src/sim/systolic.h"

namespace bitfusion {

/**
 * Cycle-level simulator for the Bit Fusion accelerator; the
 * "bitfusion" Platform implementation.
 *
 * Thread safety: run()/runSchedule()/compile() are const,
 * deterministic, and touch no global or mutable state, so one
 * instance may be shared across threads and distinct instances never
 * interfere. The sweep runner (src/runner) relies on this; keep new
 * simulator state per-call or per-instance-const.
 */
class Simulator : public Platform
{
  public:
    explicit Simulator(const AcceleratorConfig &cfg);

    using Platform::run;

    /** Canonical name (the configuration's name). */
    std::string name() const override { return cfg.name; }

    PlatformInfo describe() const override;

    /** Compilation identity: the config's compile-relevant fields. */
    std::string compileKey() const override;

    /** Compile @p net to Fusion ISA + schedules (cacheable). */
    PlatformArtifactPtr compile(const Network &net) const override;

    /** Serialize a compiled network for the persistent store. */
    std::string
    serializeArtifact(const PlatformArtifact &artifact) const override;

    /** Rebuild a compiled network from serializeArtifact() bytes. */
    PlatformArtifactPtr
    deserializeArtifact(const std::string &bytes) const override;

    /** Compile (or reuse opts.artifact) and simulate one batch. */
    RunStats run(const Network &net,
                 const RunOptions &opts) const override;

    /** Simulate a compiled network for one batch. */
    RunStats run(const CompiledNetwork &net,
                 TimingModel timing = TimingModel::Simple) const;

    /** Simulate a single schedule (exposed for unit tests). */
    LayerStats runSchedule(const LayerSchedule &sched) const;

    const AcceleratorConfig &config() const { return cfg; }

  private:
    LayerStats runMacLayer(const LayerSchedule &sched,
                           LayerPhases &phases) const;
    LayerStats runAuxLayer(const LayerSchedule &sched,
                           LayerPhases &phases) const;
    LayerStats statsFor(const LayerSchedule &sched,
                        LayerPhases &phases) const;

    AcceleratorConfig cfg;
    SystolicArray array;
};

} // namespace bitfusion

#endif // BITFUSION_SIM_SIMULATOR_H
