/**
 * @file
 * Registration unit of the "bitfusion" platform kind: wraps
 * AcceleratorConfig in the type-erased PlatformConfig handle and
 * plugs the Simulator into the PlatformRegistry. This is the
 * exemplar in-tree backend registration (docs/architecture.md,
 * "writing a backend"); core headers know nothing of it.
 */

#ifndef BITFUSION_SIM_BITFUSION_PLATFORM_H
#define BITFUSION_SIM_BITFUSION_PLATFORM_H

#include <string>

#include "src/core/platform_registry.h"
#include "src/sim/config.h"

namespace bitfusion {

/**
 * Bit Fusion platform spec (runs the quantized model variant); the
 * display name defaults to the config's name.
 */
PlatformSpec bitfusionPlatform(AcceleratorConfig cfg,
                               std::string name = "");

/** Register the "bitfusion" kind (called by builtin()). */
void registerBitFusionPlatform(PlatformRegistry &r);

} // namespace bitfusion

#endif // BITFUSION_SIM_BITFUSION_PLATFORM_H
