#include "src/sim/config.h"

#include <sstream>

#include "src/common/bitutils.h"
#include "src/common/logging.h"

namespace bitfusion {

std::string
AcceleratorConfig::compileKey() const
{
    std::ostringstream os;
    os << ibufBits << '/' << obufBits << '/' << wbufBits << '|' << 'b'
       << batch << '|' << (layerFusion ? "lf" : "-") << ','
       << (loopOrdering ? "lo" : "-");
    return os.str();
}

void
AcceleratorConfig::validate() const
{
    if (rows == 0 || cols == 0)
        BF_FATAL("array must have nonzero rows and columns");
    if (!isPowerOfTwo(bricksPerUnit))
        BF_FATAL("BitBricks per Fusion Unit must be a power of two");
    if (bwBitsPerCycle == 0)
        BF_FATAL("off-chip bandwidth must be nonzero");
    if (batch == 0)
        BF_FATAL("batch size must be nonzero");
    if (ibufBits == 0 || obufBits == 0 || wbufBits == 0)
        BF_FATAL("scratchpad capacities must be nonzero");
}

AcceleratorConfig
AcceleratorConfig::eyerissMatched45()
{
    AcceleratorConfig cfg;
    cfg.name = "bitfusion-eyeriss-matched-45nm";
    // 512 Fusion Units. The wide-shallow aspect ratio favours the
    // common large-output-channel layers and keeps the column drain
    // (one pooling/activation unit per column) rate-matched.
    cfg.rows = 8;
    cfg.cols = 64;
    cfg.ibufBits = 32ULL * 1024 * 8;
    cfg.obufBits = 16ULL * 1024 * 8;
    cfg.wbufBits = 64ULL * 1024 * 8; // 112 KB total
    cfg.bwBitsPerCycle = 128;
    cfg.freqMHz = 500.0;
    cfg.batch = 16;
    cfg.tech = TechNode::Nm45;
    return cfg;
}

AcceleratorConfig
AcceleratorConfig::stripesTileMatched45()
{
    // §V-A: each of Stripes' 16 tiles (4096 SIPs) is replaced by a
    // 512-Fusion-Unit array in the same 1.1 mm^2, with Bit Fusion
    // running at Stripes' area and frequency (980 MHz) and the same
    // total on-chip memory and DRAM interface.
    AcceleratorConfig cfg = eyerissMatched45();
    cfg.name = "bitfusion-stripes-tile-45nm";
    cfg.tiles = 16;
    cfg.freqMHz = 980.0;
    cfg.bwBitsPerCycle = 256;
    return cfg;
}

AcceleratorConfig
AcceleratorConfig::gpuScale16()
{
    AcceleratorConfig cfg;
    cfg.name = "bitfusion-4096fu-16nm";
    // 4096 Fusion Units as 8 data-parallel tiles of the 45 nm
    // 512-unit array; 896 KB SRAM total (112 KB per tile).
    cfg.rows = 8;
    cfg.cols = 64;
    cfg.tiles = 8;
    cfg.ibufBits = 32ULL * 1024 * 8;
    cfg.obufBits = 16ULL * 1024 * 8;
    cfg.wbufBits = 64ULL * 1024 * 8;
    cfg.bwBitsPerCycle = 1024; // GDDR-class interface (64 GB/s)
    cfg.freqMHz = 500.0;
    cfg.batch = 16;
    cfg.tech = TechNode::Nm16;
    return cfg;
}

} // namespace bitfusion
