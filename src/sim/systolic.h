/**
 * @file
 * Timing model of the Bit Fusion systolic array.
 *
 * The array is rows x cols Fusion Units. A layer's GEMM (M outputs,
 * K reduction, N streamed positions) maps as: reduction across the
 * rows (partial sums flow down columns, Fig. 3), outputs across the
 * columns times the per-unit Fused-PE count (each Fused-PE in a unit
 * holds a different output's weight and shares the row's input,
 * Fig. 4). Streaming N positions takes one cycle each per
 * (m-pass, k-pass) times the temporal factor of 16-bit operands.
 */

#ifndef BITFUSION_SIM_SYSTOLIC_H
#define BITFUSION_SIM_SYSTOLIC_H

#include <cstdint>

#include "src/arch/fusion_config.h"
#include "src/sim/config.h"

namespace bitfusion {

/** Cycle/utilization results of mapping one GEMM onto the array. */
struct SystolicTiming
{
    /** Output passes: ceil(M / (cols * fusedPEs)). */
    std::uint64_t mPasses = 0;
    /** Reduction passes: ceil(K / rows). */
    std::uint64_t kPasses = 0;
    /** Temporal passes per product (16-bit support). */
    unsigned temporal = 1;
    /** Pipeline fill/drain cycles charged. */
    std::uint64_t fillCycles = 0;
    /** Total busy cycles. */
    std::uint64_t cycles = 0;
    /** Fraction of peak MAC slots doing useful work. */
    double utilization = 0.0;
};

/**
 * Maps GEMMs onto the configured array.
 *
 * Owns a copy of the configuration so instances (and the Simulator
 * objects embedding them) are safely copyable and usable from
 * concurrent sweep workers; map() is const and touches no shared
 * state.
 */
class SystolicArray
{
  public:
    explicit SystolicArray(const AcceleratorConfig &cfg) : cfg(cfg) {}

    /**
     * Time a GEMM of (m, k, n_total) at the given fusion config,
     * streamed in tiles of @p nt positions.
     */
    SystolicTiming map(std::uint64_t m, std::uint64_t k,
                       std::uint64_t n_total, std::uint64_t nt,
                       const FusionConfig &bits) const;

    /** Peak MACs per cycle at a fusion configuration. */
    std::uint64_t peakMacsPerCycle(const FusionConfig &bits) const;

  private:
    AcceleratorConfig cfg;
};

} // namespace bitfusion

#endif // BITFUSION_SIM_SYSTOLIC_H
