/**
 * @file
 * Result structures shared by the Bit Fusion simulator and the
 * baseline platform models: per-layer and per-run cycle counts,
 * traffic, and the per-component energy breakdown of Fig. 14.
 */

#ifndef BITFUSION_CORE_STATS_H
#define BITFUSION_CORE_STATS_H

#include <cstdint>
#include <string>
#include <vector>

namespace bitfusion {

/** Energy split by hardware component (joules per batch). */
struct ComponentEnergy
{
    double computeJ = 0.0;
    double bufferJ = 0.0; ///< On-chip SRAM scratchpads.
    double rfJ = 0.0;     ///< Register files (Eyeriss PEs).
    double dramJ = 0.0;

    double
    totalJ() const
    {
        return computeJ + bufferJ + rfJ + dramJ;
    }

    ComponentEnergy &
    operator+=(const ComponentEnergy &o)
    {
        computeJ += o.computeJ;
        bufferJ += o.bufferJ;
        rfJ += o.rfJ;
        dramJ += o.dramJ;
        return *this;
    }
};

/** Per-layer (per-schedule) execution statistics, per batch. */
struct LayerStats
{
    std::string name;
    /** Bitwidth configuration string (e.g. "4b/1b"). */
    std::string config;
    /** Multiply-adds executed (whole batch). */
    std::uint64_t macs = 0;
    /** Cycles the compute fabric is busy. */
    std::uint64_t computeCycles = 0;
    /** Cycles the DRAM interface is busy. */
    std::uint64_t memCycles = 0;
    /** Layer latency in cycles (compute/memory overlapped). */
    std::uint64_t cycles = 0;
    /** DRAM bits moved in (loads). */
    std::uint64_t dramLoadBits = 0;
    /** DRAM bits moved out (stores). */
    std::uint64_t dramStoreBits = 0;
    /** On-chip buffer traffic in bits (IBUF/WBUF/OBUF or global). */
    std::uint64_t sramBits = 0;
    /** Register-file traffic in bits (Eyeriss-style PEs). */
    std::uint64_t rfBits = 0;
    /** Compute-array utilization during computeCycles (0..1). */
    double utilization = 0.0;
    /** Energy breakdown for this layer. */
    ComponentEnergy energy;
};

/** Whole-run statistics for one (platform, network, batch) triple. */
struct RunStats
{
    std::string platform;
    std::string network;
    unsigned batch = 1;
    std::vector<LayerStats> layers;

    /** Total latency in cycles for one batch. */
    std::uint64_t totalCycles = 0;
    /** Clock frequency used to convert cycles to time (MHz). */
    double freqMHz = 0.0;

    /** Seconds per batch. */
    double
    seconds() const
    {
        return static_cast<double>(totalCycles) / (freqMHz * 1e6);
    }

    /** Seconds per sample. */
    double
    secondsPerSample() const
    {
        return seconds() / batch;
    }

    /** Summed energy per batch. */
    ComponentEnergy
    energy() const
    {
        ComponentEnergy e;
        for (const auto &l : layers)
            e += l.energy;
        return e;
    }

    /** Energy per sample in joules. */
    double
    energyPerSampleJ() const
    {
        return energy().totalJ() / batch;
    }

    /** Total MACs per batch. */
    std::uint64_t
    totalMacs() const
    {
        std::uint64_t m = 0;
        for (const auto &l : layers)
            m += l.macs;
        return m;
    }
};

} // namespace bitfusion

#endif // BITFUSION_CORE_STATS_H
