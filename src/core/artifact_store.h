/**
 * @file
 * Persistent, content-addressed store for compiled artifacts.
 *
 * The process-level ArtifactCache (artifact_cache.h) dies with the
 * process, so every CLI invocation and CI job used to pay the full
 * compile tax again. This store persists serialized artifacts --
 * compiled networks and lowered execution plans (src/isa/
 * plan_serde.h) -- under a root directory, keyed by the same logical
 * identity the cache uses (compileKey() + network fingerprint, or
 * ExecPlan::blockKey) plus the serde format version.
 *
 * On-disk format, one file per key, named by the XXH64 of the key:
 *
 *   magic "BFAS" | u32 formatVersion | u32 endianTag | u32 keyLen |
 *   key bytes | u64 payloadLen | payload bytes | u64 xxhash64
 *
 * where the trailing hash covers everything before it. load()
 * verifies, in order: magic, endianness tag, format version, exact
 * framed length, checksum, and finally that the echoed key matches
 * the request (a filename-hash collision reads as a miss, never as
 * the wrong artifact). Any failure is counted, logged, and treated
 * as a miss -- the caller recompiles; the store never deletes or
 * rewrites a file it did not just create.
 *
 * Concurrency: lookups are plain reads of immutable published files
 * (no locks, safe across threads AND processes). publish() writes to
 * a unique "*.tmp" sibling and moves it into place with rename(),
 * which is atomic on POSIX -- readers see either no file or a
 * complete record. Racing writers are benign: serialization is
 * deterministic, so both publish byte-identical records and the
 * second rename simply replaces equal bytes.
 */

#ifndef BITFUSION_CORE_ARTIFACT_STORE_H
#define BITFUSION_CORE_ARTIFACT_STORE_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

namespace bitfusion {

/** Disk-backed artifact record store; see file docs. */
class ArtifactStore
{
  public:
    /** Frame format version; bump on any frame-layout change. */
    static constexpr std::uint32_t kFormatVersion = 1;
    /** Native-endianness marker written into every frame. */
    static constexpr std::uint32_t kEndianTag = 0x01020304;

    /**
     * Open (creating if needed) a store rooted at @p root. Fatal when
     * the directory cannot be created -- a configured-but-unusable
     * store is a user error, not a condition to limp through.
     */
    explicit ArtifactStore(std::string root);

    ArtifactStore(const ArtifactStore &) = delete;
    ArtifactStore &operator=(const ArtifactStore &) = delete;

    const std::string &root() const { return root_; }

    /**
     * Fetch the payload published under @p key. Returns nullopt on
     * absence or on any verification failure (counted separately;
     * see Stats). Never throws, never deletes.
     */
    std::optional<std::string> load(const std::string &key) const;

    /**
     * Atomically publish @p payload under @p key (temp file +
     * rename). Returns false -- after logging and cleaning up its
     * own temp file -- when the filesystem refuses; a store that
     * cannot persist degrades to recompiling, it never fails a run.
     */
    bool publish(const std::string &key,
                 const std::string &payload) const;

    /** Monotonic traffic counters. */
    struct Stats
    {
        /** Records fetched and fully verified. */
        std::size_t hits = 0;
        /** Lookups of absent keys. */
        std::size_t misses = 0;
        /** Records rejected by frame verification. */
        std::size_t corrupt = 0;
        /** Records successfully published. */
        std::size_t publishes = 0;
        /** Publish attempts the filesystem refused. */
        std::size_t publishFailures = 0;
    };
    Stats stats() const;

    /**
     * Filesystem path a record for @p key lives at (exposed so
     * tests can inject corruption into real records).
     */
    std::string pathFor(const std::string &key) const;

    /** What one gc() pass deleted (or would delete, when dry). */
    struct GcResult
    {
        /** Valid records examined. */
        std::size_t scanned = 0;
        /** Valid records evicted (or marked for eviction). */
        std::size_t evicted = 0;
        /** Bytes those evictions reclaim. */
        std::uint64_t evictedBytes = 0;
        /** Valid records kept. */
        std::size_t retained = 0;
        /** Bytes the kept records occupy. */
        std::uint64_t retainedBytes = 0;
        /** Files left alone: in-flight "*.tmp" publishes, foreign
         *  files, and records that fail frame verification (a
         *  corrupt record is evidence worth keeping, and deleting
         *  anything the store cannot prove it owns is how a GC
         *  eats someone's data). */
        std::size_t skipped = 0;
    };

    /**
     * Evict valid records, oldest modification time first, until the
     * ones left fit in @p maxBytes (ties: larger record first, then
     * filename, so a pass is deterministic for a fixed tree). Only
     * files that parse as complete, checksummed records whose
     * embedded key hashes back to their own filename are candidates;
     * everything else is skipped, never deleted. Safe against
     * concurrent readers and publishers: an unlinked record reads as
     * a plain miss, and in-flight "*.tmp" files are untouched. With
     * @p dryRun the result is computed but nothing is removed.
     */
    GcResult gc(std::uint64_t maxBytes, bool dryRun = false) const;

    /**
     * The process-wide store, or nullptr when none is configured.
     * Materialized on first call from setProcessRoot() or, failing
     * that, the BITFUSION_STORE environment variable. The process
     * ArtifactCache consults this on every miss, which is what gives
     * every existing call site warm starts with zero changes.
     */
    static ArtifactStore *process();

    /**
     * Configure the process store root (the CLIs' --store flag).
     * Must be called before the first process() use; fatal after.
     */
    static void setProcessRoot(const std::string &root);

  private:
    std::string root_;
    mutable std::mutex mutex_;
    mutable Stats stats_;
};

} // namespace bitfusion

#endif // BITFUSION_CORE_ARTIFACT_STORE_H
