#include "src/core/artifact_cache.h"

#include <utility>

#include "src/common/logging.h"

namespace bitfusion {

std::string
networkFingerprint(const Network &net)
{
    std::string key = net.name();
    for (const Layer &l : net.layers()) {
        key += '|';
        key += l.name;
        key += ';';
        key += toString(l.kind);
        key += ';';
        key += l.bits.toString();
        const unsigned dims[] = {l.inC, l.inH, l.inW,   l.outC,
                                 l.kH,  l.kW,  l.stride, l.pad,
                                 l.groups};
        for (unsigned d : dims) {
            key += ',';
            key += std::to_string(d);
        }
    }
    return key;
}

ArtifactCache &
ArtifactCache::process()
{
    static ArtifactCache cache;
    return cache;
}

ArtifactCache::Outcome
ArtifactCache::get(const Platform &platform, const Network &net)
{
    const std::string platformKey = platform.compileKey();
    if (platformKey.empty())
        return {};

    const std::string key = platformKey + '#' + networkFingerprint(net);

    std::promise<PlatformArtifactPtr> promise;
    std::shared_future<PlatformArtifactPtr> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            future = it->second;
        } else {
            ++compiles_;
            owner = true;
            future = promise.get_future().share();
            entries_.emplace(key, future);
        }
    }

    // The entry's creator compiles outside the lock so distinct keys
    // compile fully in parallel; concurrent callers of the same key
    // block on the shared future instead of compiling twice.
    if (owner) {
        try {
            promise.set_value(platform.compile(net));
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            entries_.erase(key);
            throw;
        }
    }
    return {future.get(), owner};
}

std::size_t
ArtifactCache::compileCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return compiles_;
}

std::size_t
ArtifactCache::hitCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
ArtifactCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    compiles_ = 0;
    hits_ = 0;
}

} // namespace bitfusion
