#include "src/core/artifact_cache.h"

#include <utility>

#include "src/common/logging.h"
#include "src/isa/exec_plan.h"

namespace bitfusion {

std::string
networkFingerprint(const Network &net)
{
    std::string key = net.name();
    for (const Layer &l : net.layers()) {
        key += '|';
        key += l.name;
        key += ';';
        key += toString(l.kind);
        key += ';';
        key += l.bits.toString();
        const unsigned dims[] = {l.inC, l.inH, l.inW,   l.outC,
                                 l.kH,  l.kW,  l.stride, l.pad,
                                 l.groups};
        for (unsigned d : dims) {
            key += ',';
            key += std::to_string(d);
        }
    }
    return key;
}

ArtifactCache &
ArtifactCache::process()
{
    static ArtifactCache cache;
    return cache;
}

template <typename Value, typename Build>
Value
ArtifactCache::lookupOrBuild(
    std::unordered_map<std::string, std::shared_future<Value>> &map,
    std::size_t &misses, std::size_t &hits, const std::string &key,
    Build &&build, bool *ownerOut)
{
    std::promise<Value> promise;
    std::shared_future<Value> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map.find(key);
        if (it != map.end()) {
            ++hits;
            future = it->second;
        } else {
            ++misses;
            owner = true;
            future = promise.get_future().share();
            map.emplace(key, future);
        }
    }

    // The entry's creator builds outside the lock so distinct keys
    // build fully in parallel; concurrent callers of the same key
    // block on the shared future instead of building twice.
    if (owner) {
        try {
            promise.set_value(build());
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            map.erase(key);
            throw;
        }
    }
    if (ownerOut != nullptr)
        *ownerOut = owner;
    return future.get();
}

ArtifactCache::Outcome
ArtifactCache::get(const Platform &platform, const Network &net)
{
    const std::string platformKey = platform.compileKey();
    if (platformKey.empty())
        return {};

    const std::string key = platformKey + '#' + networkFingerprint(net);
    bool compiled = false;
    PlatformArtifactPtr artifact =
        lookupOrBuild(entries_, compiles_, hits_, key,
                      [&] { return platform.compile(net); }, &compiled);
    return {std::move(artifact), compiled};
}

std::shared_ptr<const ExecPlan>
ArtifactCache::plan(const InstructionBlock &block)
{
    return lookupOrBuild(plans_, planBuilds_, planHits_,
                         ExecPlan::blockKey(block),
                         [&] { return ExecPlan::build(block); });
}

std::size_t
ArtifactCache::compileCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return compiles_;
}

std::size_t
ArtifactCache::hitCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
ArtifactCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
ArtifactCache::planCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return planBuilds_;
}

std::size_t
ArtifactCache::planHitCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return planHits_;
}

std::size_t
ArtifactCache::planSize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return plans_.size();
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    plans_.clear();
    compiles_ = 0;
    hits_ = 0;
    planBuilds_ = 0;
    planHits_ = 0;
}

} // namespace bitfusion
