#include "src/core/artifact_cache.h"

#include <utility>

#include "src/common/logging.h"
#include "src/core/artifact_store.h"
#include "src/isa/exec_plan.h"
#include "src/isa/plan_serde.h"

namespace bitfusion {

namespace {

/**
 * Store keys prefix the logical cache key with the record type and
 * the serde format version, so a format bump stops matching old
 * records (clean recompile) instead of misreading them.
 */
std::string
storeKeyFor(const char *type, const std::string &key)
{
    return std::string(type) + "|v" +
           std::to_string(kPlanSerdeVersion) + '|' + key;
}

} // namespace

std::string
networkFingerprint(const Network &net)
{
    std::string key = net.name();
    for (const Layer &l : net.layers()) {
        key += '|';
        key += l.name;
        key += ';';
        key += toString(l.kind);
        key += ';';
        key += l.bits.toString();
        const unsigned dims[] = {l.inC, l.inH, l.inW,   l.outC,
                                 l.kH,  l.kW,  l.stride, l.pad,
                                 l.groups};
        for (unsigned d : dims) {
            key += ',';
            key += std::to_string(d);
        }
    }
    return key;
}

ArtifactCache &
ArtifactCache::process()
{
    static ArtifactCache cache(true);
    return cache;
}

void
ArtifactCache::attachStore(ArtifactStore *store)
{
    std::lock_guard<std::mutex> lock(mutex_);
    store_ = store;
    followProcessStore_ = false;
}

ArtifactStore *
ArtifactCache::store() const
{
    return effectiveStore();
}

ArtifactStore *
ArtifactCache::effectiveStore() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return followProcessStore_ ? ArtifactStore::process() : store_;
}

template <typename Value, typename Build>
Value
ArtifactCache::lookupOrBuild(
    std::unordered_map<std::string, std::shared_future<Value>> &map,
    std::size_t &hits, const std::string &key, Build &&build,
    bool *ownerOut)
{
    std::promise<Value> promise;
    std::shared_future<Value> future;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = map.find(key);
        if (it != map.end()) {
            ++hits;
            future = it->second;
        } else {
            owner = true;
            future = promise.get_future().share();
            map.emplace(key, future);
        }
    }

    // The entry's creator builds outside the lock so distinct keys
    // build fully in parallel; concurrent callers of the same key
    // block on the shared future instead of building twice.
    if (owner) {
        try {
            promise.set_value(build());
        } catch (...) {
            promise.set_exception(std::current_exception());
            std::lock_guard<std::mutex> lock(mutex_);
            map.erase(key);
            throw;
        }
    }
    if (ownerOut != nullptr)
        *ownerOut = owner;
    return future.get();
}

PlatformArtifactPtr
ArtifactCache::resolveArtifact(const Platform &platform,
                               const Network &net,
                               const std::string &key)
{
    ArtifactStore *persistent = effectiveStore();
    const std::string storeKey = storeKeyFor("artifact", key);
    if (persistent != nullptr) {
        if (std::optional<std::string> bytes =
                persistent->load(storeKey)) {
            try {
                PlatformArtifactPtr artifact =
                    platform.deserializeArtifact(*bytes);
                if (artifact != nullptr) {
                    std::lock_guard<std::mutex> lock(mutex_);
                    ++storeHits_;
                    return artifact;
                }
            } catch (const std::exception &e) {
                BF_WARN("store artifact for '", key,
                        "' failed to deserialize (", e.what(),
                        "); recompiling");
            }
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++compiles_;
    }
    PlatformArtifactPtr artifact = platform.compile(net);
    if (persistent != nullptr && artifact != nullptr) {
        const std::string bytes =
            platform.serializeArtifact(*artifact);
        if (!bytes.empty())
            persistent->publish(storeKey, bytes);
    }
    return artifact;
}

std::shared_ptr<const ExecPlan>
ArtifactCache::resolvePlan(const InstructionBlock &block,
                           const std::string &key)
{
    ArtifactStore *persistent = effectiveStore();
    const std::string storeKey = storeKeyFor("plan", key);
    if (persistent != nullptr) {
        if (std::optional<std::string> bytes =
                persistent->load(storeKey)) {
            try {
                std::shared_ptr<const ExecPlan> plan =
                    deserializePlan(*bytes);
                std::lock_guard<std::mutex> lock(mutex_);
                ++planStoreHits_;
                return plan;
            } catch (const std::exception &e) {
                BF_WARN("store plan for '", block.name,
                        "' failed to deserialize (", e.what(),
                        "); relowering");
            }
        }
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++planBuilds_;
    }
    std::shared_ptr<const ExecPlan> plan = ExecPlan::build(block);
    if (persistent != nullptr)
        persistent->publish(storeKey, serializePlan(*plan));
    return plan;
}

ArtifactCache::Outcome
ArtifactCache::get(const Platform &platform, const Network &net)
{
    const std::string platformKey = platform.compileKey();
    if (platformKey.empty())
        return {};

    const std::string key = platformKey + '#' + networkFingerprint(net);
    bool resolved = false;
    PlatformArtifactPtr artifact = lookupOrBuild(
        entries_, hits_, key,
        [&] { return resolveArtifact(platform, net, key); }, &resolved);
    return {std::move(artifact), resolved};
}

std::shared_ptr<const ExecPlan>
ArtifactCache::plan(const InstructionBlock &block)
{
    const std::string key = ExecPlan::blockKey(block);
    return lookupOrBuild(plans_, planHits_, key,
                         [&] { return resolvePlan(block, key); });
}

std::size_t
ArtifactCache::compileCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return compiles_;
}

std::size_t
ArtifactCache::hitCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
ArtifactCache::storeHitCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return storeHits_;
}

std::size_t
ArtifactCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
ArtifactCache::planCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return planBuilds_;
}

std::size_t
ArtifactCache::planHitCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return planHits_;
}

std::size_t
ArtifactCache::planStoreHitCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return planStoreHits_;
}

std::size_t
ArtifactCache::planSize() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return plans_.size();
}

void
ArtifactCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    plans_.clear();
    compiles_ = 0;
    hits_ = 0;
    storeHits_ = 0;
    planBuilds_ = 0;
    planHits_ = 0;
    planStoreHits_ = 0;
}

} // namespace bitfusion
