#include "src/core/layer_walk.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/common/bitutils.h"
#include "src/common/logging.h"

namespace bitfusion {

const char *
toString(TimingModel model)
{
    switch (model) {
      case TimingModel::Simple:
        return "simple";
      case TimingModel::Overlap:
        return "overlap";
    }
    BF_PANIC("unknown timing model");
}

bool
parseTimingModel(const std::string &name, TimingModel &out)
{
    if (name == "simple") {
        out = TimingModel::Simple;
        return true;
    }
    if (name == "overlap") {
        out = TimingModel::Overlap;
        return true;
    }
    return false;
}

TimingModel
timingArg(int argc, char **argv, int &i)
{
    if (i + 1 >= argc) {
        std::fprintf(stderr, "--timing needs a value\n");
        std::exit(2);
    }
    TimingModel model;
    if (!parseTimingModel(argv[++i], model)) {
        std::fprintf(stderr, "unknown --timing '%s' (simple|overlap)\n",
                     argv[i]);
        std::exit(2);
    }
    return model;
}

LayerPhases
LayerPhases::fromBits(std::uint64_t computeCycles, std::uint64_t loadBits,
                      std::uint64_t storeBits,
                      std::uint64_t bwBitsPerCycle,
                      std::uint64_t fillCycles)
{
    LayerPhases p;
    p.computeUnits = static_cast<double>(computeCycles);
    // Combined divCeil, bit-matching the seed models' memCycles.
    p.memUnits = static_cast<double>(
        divCeil(loadBits + storeBits, bwBitsPerCycle));
    p.fillUnits = static_cast<double>(fillCycles);
    return p;
}

LayerWalk::LayerWalk(TimingModel model, double cyclesPerUnit)
    : model_(model), cyclesPerUnit_(cyclesPerUnit)
{
    BF_ASSERT(cyclesPerUnit > 0.0);
}

double
LayerWalk::simpleUnits(const LayerPhases &phases)
{
    return std::max(phases.computeUnits, phases.memUnits) +
           phases.fillUnits;
}

void
LayerWalk::add(LayerStats st, const LayerPhases &phases)
{
    layers_.push_back(std::move(st));
    phases_.push_back(phases);
}

double
LayerWalk::finish(RunStats &rs)
{
    double total = 0.0;

    if (model_ == TimingModel::Simple) {
        // Layers serialize; each pays its own pipeline fill.
        for (std::size_t i = 0; i < layers_.size(); ++i) {
            const double units = simpleUnits(phases_[i]);
            layers_[i].cycles =
                static_cast<std::uint64_t>(units * cyclesPerUnit_);
            total += units;
        }
    } else {
        // Double-buffered phase pipeline: tile t's compute overlaps
        // tile t+1's load and tile t-1's drain, including across
        // layer boundaries, so each channel's exposed time is its
        // total busy time and the run is bound by the busier
        // channel. The one thing the pipeline cannot hide is its own
        // fill: the deepest per-layer prologue/epilogue, charged
        // exactly once.
        double computeBusy = 0.0, memBusy = 0.0, prologue = 0.0;
        for (const auto &p : phases_) {
            computeBusy += p.computeUnits;
            memBusy += p.memUnits;
            prologue = std::max(prologue, p.fillUnits);
        }
        const bool computeBound = computeBusy + prologue >= memBusy;
        total = computeBound ? computeBusy + prologue : memBusy;
        // Attribute each layer its share of the bottleneck channel
        // (the prologue rides on the first layer). Per-layer cycles
        // sum to ~totalCycles; totalCycles is authoritative.
        for (std::size_t i = 0; i < layers_.size(); ++i) {
            double units = computeBound ? phases_[i].computeUnits
                                        : phases_[i].memUnits;
            if (i == 0 && computeBound)
                units += prologue;
            layers_[i].cycles =
                static_cast<std::uint64_t>(units * cyclesPerUnit_);
        }
    }

    rs.layers = std::move(layers_);
    rs.totalCycles = static_cast<std::uint64_t>(total * cyclesPerUnit_);
    layers_.clear();
    phases_.clear();
    return total;
}

AcceleratorConfig
sharedBufferConfig(unsigned rows, unsigned cols, std::uint64_t sramBits,
                   std::uint64_t bwBitsPerCycle, unsigned batch)
{
    AcceleratorConfig cfg;
    cfg.rows = rows;
    cfg.cols = cols;
    cfg.wbufBits = sramBits / 2;
    cfg.ibufBits = sramBits / 4;
    cfg.obufBits = sramBits / 4;
    cfg.bwBitsPerCycle = bwBitsPerCycle;
    cfg.batch = batch;
    return cfg;
}

TrafficPlan
planDramTraffic(const AcceleratorConfig &buffers, std::uint64_t m,
                std::uint64_t k, std::uint64_t n_total,
                std::uint64_t wBits, std::uint64_t iBits,
                std::uint64_t oBits, const FusionConfig &op,
                unsigned outBits)
{
    const Tiler tiler(buffers);
    TrafficPlan plan;
    plan.tile = tiler.chooseTiles(m, k, n_total, op, outBits);
    plan.order = tiler.chooseOrder(plan.tile, m, k, n_total, wBits,
                                   iBits, oBits);
    plan.loadBits = Tiler::trafficBits(plan.order, plan.tile, m, k,
                                       n_total, wBits, iBits, 0);
    plan.storeBits = oBits;
    return plan;
}

} // namespace bitfusion
