/**
 * @file
 * Report writers: render run statistics as human-readable summaries
 * or machine-readable CSV for downstream analysis.
 */

#ifndef BITFUSION_CORE_REPORT_H
#define BITFUSION_CORE_REPORT_H

#include <string>

#include "src/common/json.h"
#include "src/core/stats.h"

namespace bitfusion {
namespace report {

/** Energy split as a JSON object (joules). */
json::Value energyJson(const ComponentEnergy &energy);

/** One layer's stats as a JSON object. */
json::Value layerJson(const LayerStats &layer);

/**
 * Append run-level fields (cycles, time, traffic, energy; layers
 * when @p per_layer) to @p obj. Shared between report::json and the
 * sweep runner's per-cell records.
 */
void fillRunJson(json::Value &obj, const RunStats &stats,
                 bool per_layer);

/**
 * Per-layer CSV: one row per layer with cycles, traffic, utilization
 * and the energy split; header row first.
 */
std::string csv(const RunStats &stats);

/**
 * Machine-readable JSON for one run: run-level cycles/time/energy
 * plus the per-layer records, matching the per-cell shape the sweep
 * runner emits (src/runner/sweep.h).
 */
std::string json(const RunStats &stats);

/** Multi-line human-readable summary of a run. */
std::string summary(const RunStats &stats);

/**
 * Comparison line between a subject run and a baseline run on the
 * same network: speedup and energy reduction.
 */
std::string versus(const RunStats &subject, const RunStats &baseline);

} // namespace report
} // namespace bitfusion

#endif // BITFUSION_CORE_REPORT_H
