/**
 * @file
 * Report writers: render run statistics as human-readable summaries
 * or machine-readable CSV for downstream analysis.
 */

#ifndef BITFUSION_CORE_REPORT_H
#define BITFUSION_CORE_REPORT_H

#include <string>

#include "src/core/stats.h"

namespace bitfusion {
namespace report {

/**
 * Per-layer CSV: one row per layer with cycles, traffic, utilization
 * and the energy split; header row first.
 */
std::string csv(const RunStats &stats);

/** Multi-line human-readable summary of a run. */
std::string summary(const RunStats &stats);

/**
 * Comparison line between a subject run and a baseline run on the
 * same network: speedup and energy reduction.
 */
std::string versus(const RunStats &subject, const RunStats &baseline);

} // namespace report
} // namespace bitfusion

#endif // BITFUSION_CORE_REPORT_H
