/**
 * @file
 * Public entry point of the Bit Fusion library.
 *
 * Typical use:
 * @code
 *   auto cfg = AcceleratorConfig::eyerissMatched45();
 *   Accelerator acc(cfg);
 *   auto bench = zoo::alexnet();
 *   RunStats stats = acc.run(bench.quantized);
 *   std::cout << stats.secondsPerSample() << "\n";
 * @endcode
 */

#ifndef BITFUSION_CORE_ACCELERATOR_H
#define BITFUSION_CORE_ACCELERATOR_H

#include "src/compiler/codegen.h"
#include "src/core/stats.h"
#include "src/dnn/network.h"
#include "src/sim/config.h"
#include "src/sim/simulator.h"

namespace bitfusion {

/** A configured Bit Fusion accelerator instance. */
class Accelerator
{
  public:
    /** Construct from a configuration (validated on entry). */
    explicit Accelerator(const AcceleratorConfig &cfg);

    /** Compile a network for this configuration. */
    CompiledNetwork compile(const Network &net) const;

    /** Simulate a previously compiled network (one batch). */
    RunStats run(const CompiledNetwork &compiled) const;

    /** Compile-and-run convenience. */
    RunStats run(const Network &net) const;

    const AcceleratorConfig &config() const { return cfg; }
    const Compiler &compiler() const { return _compiler; }
    const Simulator &simulator() const { return sim; }

  private:
    AcceleratorConfig cfg;
    Compiler _compiler;
    Simulator sim;
};

} // namespace bitfusion

#endif // BITFUSION_CORE_ACCELERATOR_H
