/**
 * @file
 * Process-level cache of compiled platform artifacts.
 *
 * Compilation (Bit Fusion's Fusion-ISA codegen) is the expensive,
 * perfectly reusable step of a run: the artifact depends only on the
 * platform's compileKey() and the network, never on who asks. The
 * sweep runner used to keep a cache per SweepRunner::run; this class
 * hoists it to one process-wide table shared by every sweep and by
 * the serving engine (src/serve), so repeated CLI figure runs,
 * back-to-back sweeps, and a serving workload all compile each
 * distinct (compile key, network) pair exactly once.
 *
 * Thread safety: get() may be called concurrently for any mix of
 * keys. The first caller of a key compiles; concurrent callers of
 * the same key block on a shared future instead of compiling twice.
 * Distinct keys compile fully in parallel.
 *
 * Persistence: a cache may sit on top of an ArtifactStore
 * (core/artifact_store.h). A miss then probes the store before
 * compiling and publishes what it compiled, so warm processes skip
 * codegen entirely; the process() cache follows the process store
 * (BITFUSION_STORE / --store) automatically, which is what gives
 * sweeps, serving, and both CLIs warm starts with zero call-site
 * changes. Store entries that fail to deserialize are logged and
 * fall back to a clean recompile.
 */

#ifndef BITFUSION_CORE_ARTIFACT_CACHE_H
#define BITFUSION_CORE_ARTIFACT_CACHE_H

#include <cstddef>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/core/platform.h"
#include "src/dnn/network.h"

namespace bitfusion {

class ArtifactStore;
class ExecPlan;
struct InstructionBlock;

/**
 * Structural identity of a network: name plus every schedule-
 * relevant layer field. Two Network objects with equal fingerprints
 * compile to interchangeable artifacts on platforms with equal
 * compileKey().
 */
std::string networkFingerprint(const Network &net);

/** Shared compiled-artifact cache; see file docs. */
class ArtifactCache
{
  public:
    ArtifactCache() = default;
    ArtifactCache(const ArtifactCache &) = delete;
    ArtifactCache &operator=(const ArtifactCache &) = delete;

    /** The process-wide instance shared by sweeps and serving. */
    static ArtifactCache &process();

    /** Result of one lookup. */
    struct Outcome
    {
        PlatformArtifactPtr artifact;
        /** True when this call resolved the miss (by compiling or by
         *  loading a persistent-store record). */
        bool compiled = false;
    };

    /**
     * Return the artifact for (platform.compileKey(), net),
     * compiling through @p platform on a miss. Platforms with an
     * empty compileKey() have no compile step: returns a null
     * artifact and touches no counters.
     */
    Outcome get(const Platform &platform, const Network &net);

    /**
     * Return the compiled execution plan for @p block, lowering it on
     * a miss. Keyed by ExecPlan::blockKey (block content), so every
     * Interpreter in the process -- reconcile tests, benches, future
     * functional serving -- shares one lowering per distinct block.
     * Same concurrency contract as get().
     */
    std::shared_ptr<const ExecPlan> plan(const InstructionBlock &block);

    /**
     * Attach a persistent store for misses to probe and publish
     * through; nullptr detaches. The process() cache follows
     * ArtifactStore::process() until an explicit attach.
     */
    void attachStore(ArtifactStore *store);

    /** The store misses currently resolve through (may be null). */
    ArtifactStore *store() const;

    /** Compilations actually performed since construction/clear()
     *  (a miss served by the store does not count). */
    std::size_t compileCount() const;
    /** Lookups served from an existing in-process entry. */
    std::size_t hitCount() const;
    /** Misses served by deserializing a store record. */
    std::size_t storeHitCount() const;
    /** Distinct artifacts currently held. */
    std::size_t size() const;

    /** Plan lowerings actually performed since construction/clear()
     *  (a miss served by the store does not count). */
    std::size_t planCount() const;
    /** Plan lookups served from an existing in-process entry. */
    std::size_t planHitCount() const;
    /** Plan misses served by deserializing a store record. */
    std::size_t planStoreHitCount() const;
    /** Distinct plans currently held. */
    std::size_t planSize() const;

    /** Drop every entry and reset the counters (tests). The store
     *  attachment is kept. */
    void clear();

  private:
    /** process() construction: follow the process-wide store. */
    explicit ArtifactCache(bool followProcessStore)
        : followProcessStore_(followProcessStore)
    {
    }

    /** Miss path of get(): store probe -> compile -> store publish. */
    PlatformArtifactPtr resolveArtifact(const Platform &platform,
                                        const Network &net,
                                        const std::string &key);

    /** Miss path of plan(): store probe -> lower -> store publish. */
    std::shared_ptr<const ExecPlan>
    resolvePlan(const InstructionBlock &block, const std::string &key);

    /** The attached store, or the process store when following. */
    ArtifactStore *effectiveStore() const;
    /**
     * The shared memoized-future pattern behind get() and plan():
     * the first caller of a key builds outside the lock, concurrent
     * same-key callers block on the shared future, and a throwing
     * build erases its entry so a later call can retry.
     * @p ownerOut (optional) reports whether this call built.
     */
    template <typename Value, typename Build>
    Value lookupOrBuild(
        std::unordered_map<std::string, std::shared_future<Value>> &map,
        std::size_t &hits, const std::string &key, Build &&build,
        bool *ownerOut = nullptr);

    mutable std::mutex mutex_;
    std::unordered_map<std::string,
                       std::shared_future<PlatformArtifactPtr>>
        entries_;
    std::unordered_map<
        std::string,
        std::shared_future<std::shared_ptr<const ExecPlan>>>
        plans_;
    ArtifactStore *store_ = nullptr;
    bool followProcessStore_ = false;
    std::size_t compiles_ = 0;
    std::size_t hits_ = 0;
    std::size_t storeHits_ = 0;
    std::size_t planBuilds_ = 0;
    std::size_t planHits_ = 0;
    std::size_t planStoreHits_ = 0;
};

} // namespace bitfusion

#endif // BITFUSION_CORE_ARTIFACT_CACHE_H
