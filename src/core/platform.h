/**
 * @file
 * The Platform interface: one contract for every simulated machine.
 *
 * The paper's headline results are cross-platform comparisons
 * (Bit Fusion vs. Eyeriss, Stripes, and the GPUs), so the comparison
 * machinery is first-class architecture: every platform model --
 * Simulator, EyerissModel, StripesModel, GpuModel, and any future
 * backend -- implements this interface, drives its per-layer timing
 * through the shared LayerWalk phase pipeline (core/layer_walk.h),
 * and is constructed uniformly from a PlatformSpec by the
 * PlatformRegistry (core/platform_registry.h). The sweep runner,
 * figures, and CLI only ever see Platform, which is what makes a new
 * backend a ~100-line plug-in.
 */

#ifndef BITFUSION_CORE_PLATFORM_H
#define BITFUSION_CORE_PLATFORM_H

#include <cstdint>
#include <memory>
#include <string>

#include "src/core/layer_walk.h"
#include "src/core/stats.h"
#include "src/dnn/network.h"

namespace bitfusion {

/** Static description of a platform instance (Table III row). */
struct PlatformInfo
{
    /** Canonical platform name (lands in RunStats::platform). */
    std::string name;
    /** Registry kind: "bitfusion", "eyeriss", "stripes", "gpu". */
    std::string kind;
    /** Human summary of the compute fabric (e.g. "512 FUs"). */
    std::string compute;
    double freqMHz = 0.0;
    /** On-chip SRAM in bits; 0 when not modeled (GPU). */
    std::uint64_t onChipBits = 0;
    /** Off-chip bandwidth in bits/cycle; 0 when not modeled (GPU). */
    std::uint64_t bwBitsPerCycle = 0;
    /** Batch size this instance runs at. */
    unsigned batch = 0;
};

/**
 * Opaque result of Platform::compile(). Platforms with a real
 * compilation step (Bit Fusion's Fusion-ISA codegen) subclass this;
 * the sweep runner caches artifacts across cells by compileKey()
 * without knowing their type.
 */
struct PlatformArtifact
{
    virtual ~PlatformArtifact() = default;
};

using PlatformArtifactPtr = std::shared_ptr<const PlatformArtifact>;

/** Per-run options shared by every platform. */
struct RunOptions
{
    /** Phase-time composition (core/layer_walk.h). */
    TimingModel timing = TimingModel::Simple;
    /**
     * Previously compiled artifact for this (platform, network)
     * pair; nullptr compiles on the fly. Must come from a platform
     * with an equal compileKey().
     */
    const PlatformArtifact *artifact = nullptr;
};

/**
 * Abstract simulated platform.
 *
 * Thread safety contract: run()/compile() are const, deterministic,
 * and touch no mutable state, so one instance may be shared across
 * sweep workers. Implementations must preserve this.
 */
class Platform
{
  public:
    virtual ~Platform() = default;

    /** Canonical platform name (matches describe().name). */
    virtual std::string name() const = 0;

    /** Static description of this instance. */
    virtual PlatformInfo describe() const = 0;

    /**
     * Identity of the compilation this platform performs: equal keys
     * produce interchangeable artifacts for the same network. Empty
     * (the default) means the platform has no compile step and
     * compile() returns nullptr.
     */
    virtual std::string compileKey() const { return {}; }

    /** Precompile a network for reuse across run() calls. */
    virtual PlatformArtifactPtr
    compile(const Network &net) const
    {
        (void)net;
        return nullptr;
    }

    /**
     * Serialize @p artifact for the persistent store
     * (core/artifact_store.h). Must be deterministic: equal
     * artifacts yield identical bytes. The empty string (the
     * default) means this platform's artifacts are not persistable
     * and the store skips them.
     */
    virtual std::string
    serializeArtifact(const PlatformArtifact &artifact) const
    {
        (void)artifact;
        return {};
    }

    /**
     * Rebuild an artifact from serializeArtifact() bytes produced by
     * a platform with an equal compileKey(). Returns nullptr when
     * this platform does not persist artifacts; throws SerdeError
     * (src/isa/plan_serde.h) on malformed bytes. Callers treat both
     * outcomes as a cache miss and recompile.
     */
    virtual PlatformArtifactPtr
    deserializeArtifact(const std::string &bytes) const
    {
        (void)bytes;
        return nullptr;
    }

    /** Simulate one batch of @p net. */
    virtual RunStats run(const Network &net,
                         const RunOptions &opts) const = 0;

    /** Convenience: run with default options (simple timing). */
    RunStats
    run(const Network &net) const
    {
        return run(net, RunOptions{});
    }
};

} // namespace bitfusion

#endif // BITFUSION_CORE_PLATFORM_H
