#include "src/core/accelerator.h"

namespace bitfusion {

Accelerator::Accelerator(const AcceleratorConfig &cfg)
    : cfg(cfg), _compiler(this->cfg), sim(this->cfg)
{
    this->cfg.validate();
}

CompiledNetwork
Accelerator::compile(const Network &net) const
{
    return _compiler.compile(net);
}

RunStats
Accelerator::run(const CompiledNetwork &compiled) const
{
    return sim.run(compiled);
}

RunStats
Accelerator::run(const Network &net) const
{
    return sim.run(compile(net));
}

} // namespace bitfusion
