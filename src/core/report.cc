#include "src/core/report.h"

#include <sstream>

#include "src/common/logging.h"

namespace bitfusion {
namespace report {

json::Value
energyJson(const ComponentEnergy &energy)
{
    return json::Value::object()
        .set("compute", energy.computeJ)
        .set("buffers", energy.bufferJ)
        .set("rf", energy.rfJ)
        .set("dram", energy.dramJ)
        .set("total", energy.totalJ());
}

json::Value
layerJson(const LayerStats &layer)
{
    return json::Value::object()
        .set("name", layer.name)
        .set("config", layer.config)
        .set("macs", layer.macs)
        .set("compute_cycles", layer.computeCycles)
        .set("mem_cycles", layer.memCycles)
        .set("cycles", layer.cycles)
        .set("dram_load_bits", layer.dramLoadBits)
        .set("dram_store_bits", layer.dramStoreBits)
        .set("sram_bits", layer.sramBits)
        .set("rf_bits", layer.rfBits)
        .set("utilization", layer.utilization)
        .set("energy_j", energyJson(layer.energy));
}

void
fillRunJson(json::Value &obj, const RunStats &stats, bool per_layer)
{
    std::uint64_t loadBits = 0, storeBits = 0;
    for (const auto &l : stats.layers) {
        loadBits += l.dramLoadBits;
        storeBits += l.dramStoreBits;
    }
    obj.set("total_cycles", stats.totalCycles)
        .set("freq_mhz", stats.freqMHz)
        .set("seconds_per_batch", stats.seconds())
        .set("seconds_per_sample", stats.secondsPerSample())
        .set("macs", stats.totalMacs())
        .set("dram_load_bits", loadBits)
        .set("dram_store_bits", storeBits)
        .set("energy_j", energyJson(stats.energy()))
        .set("energy_per_sample_j", stats.energyPerSampleJ());
    if (per_layer) {
        json::Value layers = json::Value::array();
        for (const auto &l : stats.layers)
            layers.push(layerJson(l));
        obj.set("layers", std::move(layers));
    }
}

std::string
json(const RunStats &stats)
{
    // Qualified: inside this function, plain `json` names the
    // function, not the bitfusion::json namespace.
    bitfusion::json::Value obj = bitfusion::json::Value::object();
    obj.set("platform", stats.platform)
        .set("network", stats.network)
        .set("batch", stats.batch);
    fillRunJson(obj, stats, true);
    return obj.dump(2);
}

std::string
csv(const RunStats &stats)
{
    std::ostringstream os;
    os << "layer,config,macs,compute_cycles,mem_cycles,cycles,"
          "utilization,dram_load_bits,dram_store_bits,sram_bits,"
          "rf_bits,compute_j,buffer_j,rf_j,dram_j\n";
    for (const auto &l : stats.layers) {
        os << l.name << ',' << l.config << ',' << l.macs << ','
           << l.computeCycles << ',' << l.memCycles << ',' << l.cycles
           << ',' << l.utilization << ',' << l.dramLoadBits << ','
           << l.dramStoreBits << ',' << l.sramBits << ',' << l.rfBits
           << ',' << l.energy.computeJ << ',' << l.energy.bufferJ << ','
           << l.energy.rfJ << ',' << l.energy.dramJ << '\n';
    }
    return os.str();
}

std::string
summary(const RunStats &stats)
{
    std::ostringstream os;
    const ComponentEnergy e = stats.energy();
    os << stats.platform << " running " << stats.network << " (batch "
       << stats.batch << ")\n";
    os << "  cycles/batch    : " << stats.totalCycles << " @ "
       << stats.freqMHz << " MHz\n";
    os << "  latency/sample  : " << stats.secondsPerSample() * 1e6
       << " us\n";
    os << "  macs/batch      : " << stats.totalMacs() << "\n";
    os << "  energy/sample   : " << stats.energyPerSampleJ() * 1e6
       << " uJ (compute " << e.computeJ * 1e6 << ", buffers "
       << e.bufferJ * 1e6 << ", rf " << e.rfJ * 1e6 << ", dram "
       << e.dramJ * 1e6 << ")\n";
    return os.str();
}

std::string
versus(const RunStats &subject, const RunStats &baseline)
{
    BF_ASSERT(subject.network == baseline.network,
              "comparing runs of different networks");
    std::ostringstream os;
    os << subject.platform << " vs " << baseline.platform << " on "
       << subject.network << ": "
       << baseline.secondsPerSample() / subject.secondsPerSample()
       << "x speedup, "
       << baseline.energyPerSampleJ() / subject.energyPerSampleJ()
       << "x energy reduction";
    return os.str();
}

} // namespace report
} // namespace bitfusion
