#include "src/core/report.h"

#include <sstream>

#include "src/common/logging.h"

namespace bitfusion {
namespace report {

std::string
csv(const RunStats &stats)
{
    std::ostringstream os;
    os << "layer,config,macs,compute_cycles,mem_cycles,cycles,"
          "utilization,dram_load_bits,dram_store_bits,sram_bits,"
          "rf_bits,compute_j,buffer_j,rf_j,dram_j\n";
    for (const auto &l : stats.layers) {
        os << l.name << ',' << l.config << ',' << l.macs << ','
           << l.computeCycles << ',' << l.memCycles << ',' << l.cycles
           << ',' << l.utilization << ',' << l.dramLoadBits << ','
           << l.dramStoreBits << ',' << l.sramBits << ',' << l.rfBits
           << ',' << l.energy.computeJ << ',' << l.energy.bufferJ << ','
           << l.energy.rfJ << ',' << l.energy.dramJ << '\n';
    }
    return os.str();
}

std::string
summary(const RunStats &stats)
{
    std::ostringstream os;
    const ComponentEnergy e = stats.energy();
    os << stats.platform << " running " << stats.network << " (batch "
       << stats.batch << ")\n";
    os << "  cycles/batch    : " << stats.totalCycles << " @ "
       << stats.freqMHz << " MHz\n";
    os << "  latency/sample  : " << stats.secondsPerSample() * 1e6
       << " us\n";
    os << "  macs/batch      : " << stats.totalMacs() << "\n";
    os << "  energy/sample   : " << stats.energyPerSampleJ() * 1e6
       << " uJ (compute " << e.computeJ * 1e6 << ", buffers "
       << e.bufferJ * 1e6 << ", rf " << e.rfJ * 1e6 << ", dram "
       << e.dramJ * 1e6 << ")\n";
    return os.str();
}

std::string
versus(const RunStats &subject, const RunStats &baseline)
{
    BF_ASSERT(subject.network == baseline.network,
              "comparing runs of different networks");
    std::ostringstream os;
    os << subject.platform << " vs " << baseline.platform << " on "
       << subject.network << ": "
       << baseline.secondsPerSample() / subject.secondsPerSample()
       << "x speedup, "
       << baseline.energyPerSampleJ() / subject.energyPerSampleJ()
       << "x energy reduction";
    return os.str();
}

} // namespace report
} // namespace bitfusion
