#include "src/core/artifact_store.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace fs = std::filesystem;

namespace bitfusion {

namespace {

constexpr char kMagic[4] = {'B', 'F', 'A', 'S'};
/** magic + version + endian + keyLen. */
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 4;
constexpr std::size_t kChecksumBytes = 8;

void
appendU32(std::string &out, std::uint32_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof v);
}

void
appendU64(std::string &out, std::uint64_t v)
{
    out.append(reinterpret_cast<const char *>(&v), sizeof v);
}

std::uint32_t
readU32(const char *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

std::uint64_t
readU64(const char *p)
{
    std::uint64_t v;
    std::memcpy(&v, p, sizeof v);
    return v;
}

/**
 * Frame verifier: returns the payload, or a rejection reason via
 * @p why. Check order matters for diagnostics: structural and
 * version checks identify *why* a record is unusable before the
 * checksum condemns it as generally corrupt. @p key may be nullptr
 * (the GC scan has no key to echo-check; it compares the embedded
 * key against the filename instead) and @p keyOut, when non-null,
 * receives the embedded key of a structurally valid frame.
 */
std::optional<std::string>
verifyFrame(const std::string &frame, const std::string *key,
            const char **why, std::string *keyOut = nullptr)
{
    if (frame.size() < kHeaderBytes + 8 + kChecksumBytes) {
        *why = "truncated header";
        return std::nullopt;
    }
    if (std::memcmp(frame.data(), kMagic, sizeof kMagic) != 0) {
        *why = "bad magic";
        return std::nullopt;
    }
    if (readU32(frame.data() + 8) != ArtifactStore::kEndianTag) {
        *why = "foreign endianness";
        return std::nullopt;
    }
    if (readU32(frame.data() + 4) != ArtifactStore::kFormatVersion) {
        *why = "format version mismatch";
        return std::nullopt;
    }
    const std::uint64_t keyLen = readU32(frame.data() + 12);
    if (frame.size() < kHeaderBytes + keyLen + 8 + kChecksumBytes) {
        *why = "truncated key";
        return std::nullopt;
    }
    const std::uint64_t payloadLen =
        readU64(frame.data() + kHeaderBytes + keyLen);
    const std::uint64_t expected =
        kHeaderBytes + keyLen + 8 + payloadLen + kChecksumBytes;
    if (frame.size() != expected) {
        *why = "framed length mismatch";
        return std::nullopt;
    }
    const std::size_t hashed = frame.size() - kChecksumBytes;
    if (xxhash64(frame.data(), hashed) !=
        readU64(frame.data() + hashed)) {
        *why = "checksum mismatch";
        return std::nullopt;
    }
    if (key != nullptr &&
        (keyLen != key->size() ||
         std::memcmp(frame.data() + kHeaderBytes, key->data(),
                     keyLen) != 0)) {
        *why = "key mismatch (filename-hash collision)";
        return std::nullopt;
    }
    if (keyOut != nullptr)
        keyOut->assign(frame.data() + kHeaderBytes,
                       static_cast<std::size_t>(keyLen));
    return frame.substr(kHeaderBytes + keyLen + 8,
                        static_cast<std::size_t>(payloadLen));
}

std::string
frameRecord(const std::string &key, const std::string &payload)
{
    std::string frame;
    frame.reserve(kHeaderBytes + key.size() + 8 + payload.size() +
                  kChecksumBytes);
    frame.append(kMagic, sizeof kMagic);
    appendU32(frame, ArtifactStore::kFormatVersion);
    appendU32(frame, ArtifactStore::kEndianTag);
    appendU32(frame, static_cast<std::uint32_t>(key.size()));
    frame.append(key);
    appendU64(frame, payload.size());
    frame.append(payload);
    appendU64(frame, xxhash64(frame.data(), frame.size()));
    return frame;
}

std::string &
processRootOverride()
{
    static std::string root;
    return root;
}

std::atomic<bool> &
processMaterialized()
{
    static std::atomic<bool> flag{false};
    return flag;
}

} // namespace

ArtifactStore::ArtifactStore(std::string root)
    : root_(std::move(root))
{
    std::error_code ec;
    fs::create_directories(root_, ec);
    if (ec || !fs::is_directory(root_))
        BF_FATAL("cannot create artifact store root '", root_, "': ",
                 ec.message());
}

std::string
ArtifactStore::pathFor(const std::string &key) const
{
    char name[32];
    std::snprintf(name, sizeof name, "%016llx.bfa",
                  static_cast<unsigned long long>(
                      xxhash64(key.data(), key.size())));
    return root_ + '/' + name;
}

std::optional<std::string>
ArtifactStore::load(const std::string &key) const
{
    const std::string path = pathFor(key);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return std::nullopt;
    }
    std::string frame((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof()) {
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.misses;
        return std::nullopt;
    }

    const char *why = "unknown";
    std::optional<std::string> payload =
        verifyFrame(frame, &key, &why);
    if (!payload) {
        BF_WARN("artifact store: rejecting '", path, "': ", why,
                "; falling back to recompile");
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.corrupt;
        return std::nullopt;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.hits;
    return payload;
}

bool
ArtifactStore::publish(const std::string &key,
                       const std::string &payload) const
{
    static std::atomic<std::uint64_t> sequence{0};
    const std::string path = pathFor(key);
    const std::string tmp =
        path + '.' + std::to_string(::getpid()) + '.' +
        std::to_string(sequence.fetch_add(1)) + ".tmp";

    const std::string frame = frameRecord(key, payload);
    bool written = false;
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        written = out.write(frame.data(),
                            static_cast<std::streamsize>(frame.size()))
                      .good();
        out.close();
        written = written && out.good();
    }
    std::error_code ec;
    if (written)
        fs::rename(tmp, path, ec);
    if (!written || ec) {
        fs::remove(tmp, ec);
        BF_WARN("artifact store: cannot publish '", path,
                "'; continuing without persistence");
        std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.publishFailures;
        return false;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.publishes;
    return true;
}

ArtifactStore::GcResult
ArtifactStore::gc(std::uint64_t maxBytes, bool dryRun) const
{
    struct Candidate
    {
        std::string path;
        std::uint64_t bytes = 0;
        fs::file_time_type mtime;
    };

    GcResult result;
    std::vector<Candidate> records;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(root_, ec)) {
        if (!entry.is_regular_file(ec)) {
            ++result.skipped;
            continue;
        }
        const std::string path = entry.path().string();
        if (entry.path().extension() != ".bfa") {
            // In-flight "*.tmp" publishes and foreign files are not
            // the GC's to touch.
            ++result.skipped;
            continue;
        }
        std::ifstream in(path, std::ios::binary);
        std::string frame((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        const char *why = "unknown";
        std::string key;
        if (!in || !verifyFrame(frame, nullptr, &why, &key) ||
            pathFor(key) != path) {
            // Only records the store can prove it owns -- complete,
            // checksummed, filed under their own key -- are eviction
            // candidates; anything else stays for a human.
            ++result.skipped;
            continue;
        }
        Candidate c;
        c.path = path;
        c.bytes = frame.size();
        c.mtime = entry.last_write_time(ec);
        if (ec) {
            ++result.skipped;
            continue;
        }
        records.push_back(std::move(c));
    }
    if (ec)
        BF_FATAL("cannot scan artifact store root '", root_, "': ",
                 ec.message());

    // Oldest first; ties prefer evicting the larger record (fewer
    // deletions reach the budget), then the filename, so one tree
    // always ranks one way.
    std::sort(records.begin(), records.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  if (a.bytes != b.bytes)
                      return a.bytes > b.bytes;
                  return a.path < b.path;
              });

    std::uint64_t total = 0;
    for (const auto &c : records)
        total += c.bytes;
    result.scanned = records.size();
    result.retained = records.size();
    result.retainedBytes = total;
    for (const auto &c : records) {
        if (total <= maxBytes)
            break;
        if (!dryRun) {
            std::error_code rmEc;
            if (!fs::remove(c.path, rmEc) || rmEc) {
                // A racing GC (or operator) may have beaten us to
                // it; the record is gone either way.
                BF_WARN("artifact store gc: cannot remove '", c.path,
                        "'");
            }
        }
        total -= c.bytes;
        ++result.evicted;
        result.evictedBytes += c.bytes;
        --result.retained;
        result.retainedBytes -= c.bytes;
    }
    return result;
}

ArtifactStore::Stats
ArtifactStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

ArtifactStore *
ArtifactStore::process()
{
    static std::unique_ptr<ArtifactStore> store = [] {
        processMaterialized().store(true);
        std::string root = processRootOverride();
        if (root.empty()) {
            if (const char *env = std::getenv("BITFUSION_STORE"))
                root = env;
        }
        return root.empty() ? std::unique_ptr<ArtifactStore>()
                            : std::make_unique<ArtifactStore>(root);
    }();
    return store.get();
}

void
ArtifactStore::setProcessRoot(const std::string &root)
{
    if (processMaterialized().load())
        BF_FATAL("--store must be set before the artifact store is "
                 "first used");
    processRootOverride() = root;
}

} // namespace bitfusion
