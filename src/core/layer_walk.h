/**
 * @file
 * The shared phase-level memory pipeline every platform model walks.
 *
 * Each layer of a run decomposes into three phases on two hardware
 * channels: a DRAM *load* phase and a *drain* phase on the shared
 * off-chip channel, and a *compute* phase on the platform's compute
 * fabric, executed over double-buffered tiles. How phase times
 * compose into latency is a single run-wide decision, the
 * TimingModel:
 *
 *  - Simple: the seed-equivalent per-layer approximation. Each
 *    layer's latency is max(compute, mem) plus the layer's fixed
 *    pipeline-fill cost, and layers serialize. This is what every
 *    paper figure is calibrated against.
 *
 *  - Overlap: the phase-level double-buffered pipeline. While tile t
 *    computes, tile t+1 loads and tile t-1 drains; the same handoff
 *    happens across layer boundaries, so a compute-bound layer
 *    prefetches its memory-bound successor's tiles. With uniform
 *    tiles the exposed time collapses to the busier channel's total
 *    busy time, and the only cycles the pipeline cannot hide are one
 *    prologue/epilogue: the deepest single pipeline fill, charged
 *    once per run instead of once per layer. Overlap therefore never
 *    exceeds Simple: per run,
 *    max(sum C + maxFill, sum M) <= sum(max(C_l, M_l) + fill_l).
 *
 * The walk also hosts the DRAM traffic planner shared by the
 * baseline models (tile selection and loop ordering over a single
 * shared scratchpad), so every platform accounts off-chip traffic
 * with the same methodology (paper Section V-A).
 */

#ifndef BITFUSION_CORE_LAYER_WALK_H
#define BITFUSION_CORE_LAYER_WALK_H

#include <cstdint>
#include <string>
#include <vector>

#include "src/compiler/tiling.h"
#include "src/core/stats.h"
#include "src/sim/config.h"

namespace bitfusion {

/** How per-layer phase times compose into run latency. */
enum class TimingModel
{
    Simple, ///< Seed-equivalent: per-layer max(compute, mem) + fill.
    Overlap ///< Double-buffered phase pipeline across tiles and layers.
};

/** CLI name of a timing model ("simple" / "overlap"). */
const char *toString(TimingModel model);

/** Parse a --timing value; returns false on an unknown name. */
bool parseTimingModel(const std::string &name, TimingModel &out);

/**
 * CLI glue shared by the tools and bench binaries: parse the value
 * following argv[i] as a timing model and advance i; prints a
 * diagnostic and exits with the usage status (2) on a missing or
 * unknown name.
 */
TimingModel timingArg(int argc, char **argv, int &i);

/**
 * One layer's phase times, in a platform-chosen unit (cycles for the
 * ASIC models, seconds for the GPU roofline). The load and drain
 * phases share one DRAM channel, so they enter the composition as
 * their serialized sum (memUnits); fromBits() is the explicit
 * load/drain entry point.
 */
struct LayerPhases
{
    /**
     * Load + drain phases on the shared DRAM channel. Platforms
     * compute this from raw bit counts so integer rounding matches
     * the seed models exactly.
     */
    double memUnits = 0.0;
    /** Compute phase on the platform's compute fabric. */
    double computeUnits = 0.0;
    /**
     * Fixed pipeline-fill cost (systolic array fill, kernel launch).
     * Charged per layer under Simple; the deepest single fill is
     * charged once per run under Overlap.
     */
    double fillUnits = 0.0;

    /**
     * Phases from raw bit counts: the load and drain phases at @p
     * bwBitsPerCycle, with memUnits using the seed models' combined
     * divCeil rounding.
     */
    static LayerPhases fromBits(std::uint64_t computeCycles,
                                std::uint64_t loadBits,
                                std::uint64_t storeBits,
                                std::uint64_t bwBitsPerCycle,
                                std::uint64_t fillCycles);
};

/**
 * Accumulates per-layer stats and phase times into a RunStats under
 * one TimingModel. All four platform models drive their layer loop
 * through this walk, so the timing composition (and the figures'
 * --timing switch) behaves identically everywhere.
 *
 * Unit handling: phase times arrive in a platform-chosen unit;
 * @p cyclesPerUnit converts them to reported cycles (1.0 for the
 * ASIC models, 1e9 for the GPU's seconds).
 */
class LayerWalk
{
  public:
    explicit LayerWalk(TimingModel model, double cyclesPerUnit = 1.0);

    /**
     * Append one layer. @p st carries name/traffic/energy/
     * utilization; the walk assigns st.cycles when the run finishes.
     */
    void add(LayerStats st, const LayerPhases &phases);

    /** Seed-equivalent single-layer latency: max(compute, mem) + fill. */
    static double simpleUnits(const LayerPhases &phases);

    /**
     * Finish the walk: assigns per-layer exposed cycles, moves the
     * layers into @p rs, and sets rs.totalCycles. Returns the run
     * total in walk units (the GPU model re-derives totalCycles from
     * this to preserve the seed's exact float ordering).
     */
    double finish(RunStats &rs);

    TimingModel model() const { return model_; }

  private:
    TimingModel model_;
    double cyclesPerUnit_;
    std::vector<LayerStats> layers_;
    std::vector<LayerPhases> phases_;
};

/** Off-chip traffic plan of one layer GEMM. */
struct TrafficPlan
{
    std::uint64_t loadBits = 0;
    std::uint64_t storeBits = 0;
    Tiling tile;
    LoopOrder order = LoopOrder::InputStationary;
};

/**
 * A single shared scratchpad split the way the baseline models use
 * it: half for weights, a quarter each for activations in and out.
 */
AcceleratorConfig sharedBufferConfig(unsigned rows, unsigned cols,
                                     std::uint64_t sramBits,
                                     std::uint64_t bwBitsPerCycle,
                                     unsigned batch);

/**
 * Plan DRAM traffic of a (m, k, n_total) GEMM with the same tiling
 * and loop-ordering reuse logic the Bit Fusion compiler applies:
 * choose tiles that fit @p buffers, pick the cheaper loop order, and
 * return the resulting load traffic plus the single-copy store
 * traffic. Shared by the Eyeriss and Stripes baselines.
 */
TrafficPlan planDramTraffic(const AcceleratorConfig &buffers,
                            std::uint64_t m, std::uint64_t k,
                            std::uint64_t n_total, std::uint64_t wBits,
                            std::uint64_t iBits, std::uint64_t oBits,
                            const FusionConfig &op, unsigned outBits);

} // namespace bitfusion

#endif // BITFUSION_CORE_LAYER_WALK_H
